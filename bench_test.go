// Benchmarks regenerating the paper's evaluation artifacts.
//
// Two families:
//
//   - Simulator benchmarks (BenchmarkTable1, BenchmarkThm*,
//     BenchmarkFig3b): run the algorithms on the simulated CC/DSM
//     machines and report the paper's metric — remote memory references
//     per critical-section acquisition — as the "remoterefs/acq" and
//     "maxremoterefs" benchmark metrics. These reproduce Table 1 and
//     Theorems 1-10; ns/op is incidental here.
//
//   - Native benchmarks (BenchmarkNative*, BenchmarkResilient*,
//     BenchmarkRenaming, BenchmarkUniversal): throughput of the
//     sync/atomic implementations under real goroutine contention.
//
// Run: go test -bench=. -benchmem
package kexclusion

import (
	"fmt"
	"sync"
	"testing"

	"kexclusion/internal/algo"
	"kexclusion/internal/bench"
	"kexclusion/internal/core"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
	"kexclusion/internal/renaming"
	"kexclusion/internal/resilient"
)

// simOpts keeps simulator sub-benchmarks cheap enough to sweep broadly.
var simOpts = bench.Options{Seeds: 2, Acquisitions: 3}

// reportSim runs one simulator measurement per iteration and reports the
// paper's metric.
func reportSim(b *testing.B, pr proto.Protocol, model machine.Model, n, k, contention int) {
	b.Helper()
	var m bench.Measurement
	for i := 0; i < b.N; i++ {
		m = bench.Measure(pr, model, n, k, contention, simOpts)
	}
	b.ReportMetric(m.Mean, "remoterefs/acq")
	b.ReportMetric(float64(m.Max), "maxremoterefs")
}

// BenchmarkTable1 reproduces Table 1: every algorithm on its machine
// model(s), below and above the contention threshold k.
func BenchmarkTable1(b *testing.B) {
	const n, k = 32, 4
	for _, pr := range algo.All() {
		for _, model := range pr.Traits().Models {
			for _, c := range []int{k, n} {
				regime := "low"
				if c == n {
					regime = "high"
				}
				b.Run(fmt.Sprintf("%s/%s/%s", pr.Name(), model, regime), func(b *testing.B) {
					reportSim(b, pr, model, n, k, c)
				})
			}
		}
	}
}

// theoremBench is one Theorem 1-10 configuration.
type theoremBench struct {
	name       string
	pr         proto.Protocol
	model      machine.Model
	n, k, c    int
	paperBound int
}

func theoremBenches() []theoremBench {
	const n, k = 16, 4
	d := bench.Log2Ceil(n, k)
	return []theoremBench{
		{"Thm1_Inductive", algo.Inductive{}, machine.CacheCoherent, n, k, 0, 7 * (n - k)},
		{"Thm2_Tree", algo.Tree{}, machine.CacheCoherent, n, k, 0, 7 * k * d},
		{"Thm3_FastPath_low", algo.FastPath{}, machine.CacheCoherent, n, k, k, 7*k + 2},
		{"Thm3_FastPath_high", algo.FastPath{}, machine.CacheCoherent, n, k, 0, 7*k*(d+1) + 2},
		{"Thm4_Graceful_c8", algo.Graceful{}, machine.CacheCoherent, n, k, 8, bench.CeilDiv(8, k) * (7*k + 2)},
		{"Thm5_InductiveDSM", algo.InductiveDSM{}, machine.Distributed, n, k, 0, 14 * (n - k)},
		{"Thm6_TreeDSM", algo.TreeDSM{}, machine.Distributed, n, k, 0, 14 * k * d},
		{"Thm7_FastPathDSM_low", algo.FastPathDSM{}, machine.Distributed, n, k, k, 14*k + 2},
		{"Thm7_FastPathDSM_high", algo.FastPathDSM{}, machine.Distributed, n, k, 0, 14*k*(d+1) + 2},
		{"Thm8_GracefulDSM_c8", algo.GracefulDSM{}, machine.Distributed, n, k, 8, bench.CeilDiv(8, k) * (14*k + 2)},
		{"Thm9_AssignmentCC_low", algo.Assignment{Excl: algo.FastPath{}}, machine.CacheCoherent, n, k, k, 7*k + 2 + k},
		{"Thm10_AssignmentDSM_low", algo.Assignment{Excl: algo.FastPathDSM{}}, machine.Distributed, n, k, k, 14*k + 2 + k},
	}
}

// BenchmarkTheorems regenerates the Theorem 1-10 measurements and fails
// the benchmark run if any measured maximum exceeds its paper bound.
func BenchmarkTheorems(b *testing.B) {
	for _, tb := range theoremBenches() {
		b.Run(tb.name, func(b *testing.B) {
			var m bench.Measurement
			for i := 0; i < b.N; i++ {
				m = bench.Measure(tb.pr, tb.model, tb.n, tb.k, tb.c, simOpts)
			}
			b.ReportMetric(m.Mean, "remoterefs/acq")
			b.ReportMetric(float64(m.Max), "maxremoterefs")
			b.ReportMetric(float64(tb.paperBound), "paperbound")
			if m.Max > uint64(tb.paperBound) {
				b.Fatalf("measured %d exceeds paper bound %d", m.Max, tb.paperBound)
			}
		})
	}
}

// BenchmarkFig3b regenerates the Figure 3 contention sweep: tree versus
// fast path versus nested fast paths as contention rises past k.
func BenchmarkFig3b(b *testing.B) {
	const n, k = 16, 2
	for _, pr := range []proto.Protocol{algo.Tree{}, algo.FastPath{}, algo.Graceful{}} {
		for _, c := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/c%d", pr.Name(), c), func(b *testing.B) {
				reportSim(b, pr, machine.CacheCoherent, n, k, c)
			})
		}
	}
}

// benchContended drives a native k-exclusion with g goroutines sharing
// b.N acquire/release cycles.
func benchContended(b *testing.B, kx core.KExclusion, g int) {
	b.Helper()
	var wg sync.WaitGroup
	per := (b.N + g - 1) / g
	b.ResetTimer()
	for p := 0; p < g; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				kx.Acquire(p)
				kx.Release(p)
			}
		}(p)
	}
	wg.Wait()
}

// BenchmarkNativeKExclusion measures acquire/release throughput of every
// native implementation at three contention levels.
func BenchmarkNativeKExclusion(b *testing.B) {
	const n, k = 16, 4
	impls := []struct {
		name  string
		build func() core.KExclusion
	}{
		{"counting", func() core.KExclusion { return core.NewCounting(n, k) }},
		{"chansem", func() core.KExclusion { return core.NewChanSem(n, k) }},
		{"inductive", func() core.KExclusion { return core.NewInductive(n, k) }},
		{"tree", func() core.KExclusion { return core.NewTree(n, k) }},
		{"fastpath", func() core.KExclusion { return core.NewFastPath(n, k) }},
		{"graceful", func() core.KExclusion { return core.NewGraceful(n, k) }},
		{"localspin", func() core.KExclusion { return core.NewLocalSpin(n, k) }},
		{"lsfastpath", func() core.KExclusion { return core.NewLocalSpinFastPath(n, k) }},
	}
	for _, im := range impls {
		for _, g := range []int{1, k, n} {
			b.Run(fmt.Sprintf("%s/goroutines%d", im.name, g), func(b *testing.B) {
				benchContended(b, im.build(), g)
			})
		}
	}
}

// BenchmarkRenaming measures name acquire/release through the full
// k-assignment wrapper.
func BenchmarkRenaming(b *testing.B) {
	const n, k = 16, 4
	for _, g := range []int{1, k, n} {
		b.Run(fmt.Sprintf("goroutines%d", g), func(b *testing.B) {
			asg := renaming.New(n, k)
			var wg sync.WaitGroup
			per := (b.N + g - 1) / g
			b.ResetTimer()
			for p := 0; p < g; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						name := asg.Acquire(p)
						asg.Release(p, name)
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// BenchmarkUniversal measures the wait-free k-process core alone.
func BenchmarkUniversal(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			u := resilient.NewUniversal[int64](k, 0, nil)
			var wg sync.WaitGroup
			per := (b.N + k - 1) / k
			b.ResetTimer()
			for name := 0; name < k; name++ {
				wg.Add(1)
				go func(name int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						u.Apply(name, func(s int64) (int64, any) { return s + 1, nil })
					}
				}(name)
			}
			wg.Wait()
		})
	}
}

// BenchmarkResilientCounter measures the end-to-end methodology object
// (§1): wait-free core + k-assignment wrapper, against a plain
// mutex-protected counter for scale.
func BenchmarkResilientCounter(b *testing.B) {
	const n, k = 16, 4
	for _, g := range []int{1, k, n} {
		b.Run(fmt.Sprintf("resilient/goroutines%d", g), func(b *testing.B) {
			c := resilient.NewCounter(n, k)
			var wg sync.WaitGroup
			per := (b.N + g - 1) / g
			b.ResetTimer()
			for p := 0; p < g; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						c.Add(p, 1)
					}
				}(p)
			}
			wg.Wait()
		})
		b.Run(fmt.Sprintf("mutex/goroutines%d", g), func(b *testing.B) {
			var mu sync.Mutex
			var v int64
			var wg sync.WaitGroup
			per := (b.N + g - 1) / g
			b.ResetTimer()
			for p := 0; p < g; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						mu.Lock()
						v++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			_ = v
		})
	}
}

// BenchmarkResilientQueue measures the resilient FIFO under produce/
// consume pairs.
func BenchmarkResilientQueue(b *testing.B) {
	const n, k = 8, 2
	q := resilient.NewQueue[int](n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(0, i)
		q.Dequeue(1)
	}
}

// BenchmarkSnapshot measures the wait-free snapshot's two operations
// under writer churn.
func BenchmarkSnapshot(b *testing.B) {
	const k = 4
	b.Run("update", func(b *testing.B) {
		s := resilient.NewSnapshot[int64](k)
		for i := 0; i < b.N; i++ {
			s.Update(i%k, int64(i))
		}
	})
	b.Run("scan-quiet", func(b *testing.B) {
		s := resilient.NewSnapshot[int64](k)
		s.Update(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Scan()
		}
	})
	b.Run("scan-under-churn", func(b *testing.B) {
		s := resilient.NewSnapshot[int64](k)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < k-1; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v := int64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					v++
					s.Update(w, v)
				}
			}(w)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Scan()
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkResilientStackStore measures the remaining resilient objects.
func BenchmarkResilientStackStore(b *testing.B) {
	b.Run("stack-push-pop", func(b *testing.B) {
		st := resilient.NewStack[int](8, 2)
		for i := 0; i < b.N; i++ {
			st.Push(0, i)
			st.Pop(1)
		}
	})
	b.Run("store-put-get", func(b *testing.B) {
		kv := resilient.NewStore[int, int](8, 2)
		for i := 0; i < b.N; i++ {
			kv.Put(0, i%64, i)
			kv.Get(1, i%64)
		}
	})
}

// BenchmarkIDPool measures identity leasing.
func BenchmarkIDPool(b *testing.B) {
	for _, g := range []int{1, 4} {
		b.Run(fmt.Sprintf("goroutines%d", g), func(b *testing.B) {
			p := renaming.NewIDPool(8)
			var wg sync.WaitGroup
			per := (b.N + g - 1) / g
			b.ResetTimer()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						id := p.Get()
						p.Put(id)
					}
				}()
			}
			wg.Wait()
		})
	}
}
