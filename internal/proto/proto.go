// Package proto defines the framework in which the paper's algorithms run
// on the simulated machine: a protocol builds per-process sessions whose
// entry and exit sections advance one numbered atomic statement per step,
// exactly mirroring the paper's program notation. The package also
// provides the simulation driver that cycles processes through
// noncritical section -> entry -> critical section -> exit while metering
// remote references per acquisition, limiting contention, injecting
// crashes, and checking the k-exclusion and k-assignment invariants.
package proto

import (
	"fmt"
	"strings"

	"kexclusion/internal/machine"
)

// Session is the per-process state of one protocol instance: the program
// counter and local variables of the paper's numbered programs.
type Session interface {
	// StepAcquire executes one atomic statement of the entry section,
	// returning true when the process has entered its critical section.
	StepAcquire(m *machine.Mem, p int) bool

	// StepRelease executes one atomic statement of the exit section,
	// returning true when the process has returned to its noncritical
	// section. It must only be called after StepAcquire returned true;
	// once it returns true the session is ready for the next acquisition
	// (all protocols here are long-lived).
	StepRelease(m *machine.Mem, p int) bool

	// AssignedName returns the name held by the process while it is in
	// its critical section, for k-assignment protocols, and -1 for plain
	// k-exclusion protocols.
	AssignedName() int

	// Clone returns a deep copy of the session's local state, sharing
	// the instance's address layout (for model checking).
	Clone() Session

	// Key encodes the session's local state for state hashing.
	Key() string
}

// Instance is one built protocol instance over a particular memory.
type Instance interface {
	// NewSession creates the session for process p. Call at most once
	// per process.
	NewSession(p int) Session

	// K reports how many processes the instance admits concurrently.
	K() int
}

// Traits describe properties of a protocol that tests and the harness use
// to select the right assertions and Table 1 rows.
type Traits struct {
	// Assignment is true if the protocol solves k-assignment (sessions
	// hold names in 0..k-1 while in the critical section).
	Assignment bool

	// Resilient is true if the protocol tolerates up to k-1 undetected
	// crash failures (the paper's algorithms are; some Table 1
	// baselines are not).
	Resilient bool

	// StarvationFree is true if every nonfaulty process in its entry
	// section eventually enters its critical section under a fair
	// scheduler with at most k-1 crashes.
	StarvationFree bool

	// Models lists the memory models the protocol's complexity claims
	// apply to (it still runs correctly on either).
	Models []machine.Model
}

// BuildOptions carries bounds that some protocols need at build time.
type BuildOptions struct {
	// MaxAcquisitions bounds how many times any one process will
	// acquire, used by Figure 5's unbounded-spin-location algorithm to
	// size its P array. Zero means a generous default.
	MaxAcquisitions int
}

// Protocol constructs instances of one of the paper's algorithms.
type Protocol interface {
	Name() string
	Traits() Traits

	// Build allocates the protocol's shared variables in m for n
	// processes and k critical-section slots and returns the instance.
	// Requires 0 < k < n except where documented.
	Build(m *machine.Mem, n, k int, opt BuildOptions) Instance
}

// ---------------------------------------------------------------------------
// Trivial instance: (n,k)-exclusion with n <= k needs no synchronization.
// Compositions use it as the base case (the paper's "skip" statements).

type trivialInstance struct{ k int }

// Trivial returns an instance whose sessions enter and leave immediately,
// implementing (n,k)-exclusion for n <= k with skip statements.
func Trivial(k int) Instance { return trivialInstance{k: k} }

func (t trivialInstance) NewSession(p int) Session { return &trivialSession{} }
func (t trivialInstance) K() int                   { return t.k }

type trivialSession struct{}

func (s *trivialSession) StepAcquire(*machine.Mem, int) bool { return true }
func (s *trivialSession) StepRelease(*machine.Mem, int) bool { return true }
func (s *trivialSession) AssignedName() int                  { return -1 }
func (s *trivialSession) Clone() Session                     { return &trivialSession{} }
func (s *trivialSession) Key() string                        { return "t" }

// KeyJoin combines child state encodings into one key.
func KeyJoin(parts ...string) string { return strings.Join(parts, "|") }

// KeyF formats a session key fragment.
func KeyF(format string, args ...any) string { return fmt.Sprintf(format, args...) }
