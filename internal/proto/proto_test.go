package proto

import (
	"strings"
	"testing"
)

func TestKeyHelpers(t *testing.T) {
	if got := KeyJoin("a", "b", "c"); got != "a|b|c" {
		t.Fatalf("KeyJoin = %q", got)
	}
	if got := KeyF("x:%d:%t", 7, true); got != "x:7:true" {
		t.Fatalf("KeyF = %q", got)
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseNoncrit:  "noncrit",
		PhaseEntry:    "entry",
		PhaseCritical: "critical",
		PhaseExit:     "exit",
		PhaseDone:     "done",
	}
	for ph, want := range cases {
		if ph.String() != want {
			t.Errorf("%d renders %q, want %q", ph, ph.String(), want)
		}
	}
	if !strings.Contains(Phase(42).String(), "42") {
		t.Fatal("unknown phase must render its value")
	}
}

func TestAcqRecordTotal(t *testing.T) {
	r := AcqRecord{EntryRemote: 3, ExitRemote: 4}
	if r.Total() != 7 {
		t.Fatal("Total wrong")
	}
}
