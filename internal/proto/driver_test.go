package proto

import (
	"testing"

	"kexclusion/internal/machine"
)

// countInstance is a minimal test protocol: an honest k-exclusion via an
// atomic counter retry loop, with hooks to observe driver behaviour.
type countInstance struct {
	x machine.Addr
	k int
}

func newCountInstance(m *machine.Mem, k int) *countInstance {
	in := &countInstance{x: m.Alloc1(machine.HomeShared), k: k}
	m.Poke(in.x, int64(k))
	return in
}

func (in *countInstance) K() int { return in.k }

func (in *countInstance) NewSession(p int) Session { return &countSession{inst: in} }

type countSession struct {
	inst *countInstance
	pc   int
}

func (s *countSession) StepAcquire(m *machine.Mem, p int) bool {
	switch s.pc {
	case 0:
		if m.FAA(p, s.inst.x, -1) > 0 {
			s.pc = 2
			return true
		}
		s.pc = 1
	case 1:
		m.FAA(p, s.inst.x, 1)
		s.pc = 0
	}
	return false
}

func (s *countSession) StepRelease(m *machine.Mem, p int) bool {
	m.FAA(p, s.inst.x, 1)
	s.pc = 0
	return true
}

func (s *countSession) AssignedName() int { return -1 }
func (s *countSession) Clone() Session    { c := *s; return &c }
func (s *countSession) Key() string       { return KeyF("c:%d", s.pc) }

func TestDriverCompletesAndCounts(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 4)
	inst := newCountInstance(m, 2)
	res := Run(m, inst, false, Config{Acquisitions: 5})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if len(res.Records) != 20 {
		t.Fatalf("got %d acquisition records, want 20", len(res.Records))
	}
	if res.MaxOccupancy == 0 || res.MaxOccupancy > 2 {
		t.Fatalf("occupancy %d out of range", res.MaxOccupancy)
	}
	if res.MaxAcqRemote == 0 || res.MeanAcqRemote == 0 {
		t.Fatal("metering produced no costs")
	}
}

func TestDriverContentionCap(t *testing.T) {
	// With contention capped at 1, the counter never goes below k-1,
	// so every acquisition is the uncontended fast case: exactly one
	// remote FAA in entry and one in exit.
	m := machine.NewMem(machine.CacheCoherent, 6)
	inst := newCountInstance(m, 2)
	res := Run(m, inst, false, Config{Acquisitions: 4, MaxContention: 1})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	for _, r := range res.Records {
		if r.EntryRemote != 1 || r.ExitRemote != 1 {
			t.Fatalf("contention leaked past the cap: record %+v", r)
		}
	}
	if res.MaxOccupancy != 1 {
		t.Fatalf("occupancy %d with contention cap 1", res.MaxOccupancy)
	}
}

func TestDriverCrashStopsProcess(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 3)
	inst := newCountInstance(m, 2)
	res := Run(m, inst, false, Config{
		Acquisitions: 3,
		Crashes:      []Crash{{Proc: 1, Phase: PhaseCritical, AfterSteps: 0}},
	})
	if !res.Completed {
		t.Fatal("survivors did not complete")
	}
	// Proc 1 crashed during its first critical section: it records no
	// completed acquisitions.
	for _, r := range res.Records {
		if r.Proc == 1 {
			t.Fatalf("crashed process completed an acquisition: %+v", r)
		}
	}
}

func TestDriverDetectsIncompleteOnDeadlock(t *testing.T) {
	// Crash a process inside its critical section with k=1: nobody
	// else can ever enter, and the driver must report an incomplete
	// run rather than hang.
	m := machine.NewMem(machine.CacheCoherent, 3)
	inst := newCountInstance(m, 1)
	res := Run(m, inst, false, Config{
		Acquisitions: 2,
		Crashes:      []Crash{{Proc: 0, Phase: PhaseCritical, AfterSteps: 0}},
		StepLimit:    5000,
	})
	if res.Completed {
		t.Fatal("expected incomplete run")
	}
}

func TestDriverEntryStepBound(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 3)
	inst := newCountInstance(m, 1)
	res := Run(m, inst, false, Config{
		Acquisitions:   2,
		Crashes:        []Crash{{Proc: 0, Phase: PhaseCritical, AfterSteps: 0}},
		EntryStepBound: 50,
		StepLimit:      100000,
	})
	if len(res.Violations) == 0 {
		t.Fatal("expected starvation violations when the only slot is held by a corpse")
	}
}

func TestDriverNCSSteps(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 2)
	inst := newCountInstance(m, 1)
	res := Run(m, inst, false, Config{Acquisitions: 2, NCSSteps: 7, CSSteps: 3})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// 2 procs * 2 acquisitions, each cycle at least 7 NCS + 3 CS steps
	// plus entry/exit statements.
	if res.Steps < 2*2*(7+3+2) {
		t.Fatalf("step count %d implausibly low", res.Steps)
	}
}

func TestTrivialInstance(t *testing.T) {
	m := machine.NewMem(machine.Distributed, 3)
	inst := Trivial(3)
	res := Run(m, inst, false, Config{Acquisitions: 2})
	if !res.Completed {
		t.Fatal("trivial run did not complete")
	}
	for _, r := range res.Records {
		if r.Total() != 0 {
			t.Fatalf("trivial session cost remote refs: %+v", r)
		}
	}
	s := inst.NewSession(0)
	if s.AssignedName() != -1 || s.Key() == "" {
		t.Fatal("trivial session metadata wrong")
	}
	if c := s.Clone(); c == nil {
		t.Fatal("clone failed")
	}
}

func TestRecordedRunReplaysIdentically(t *testing.T) {
	runWith := func(s machine.Scheduler) Result {
		m := machine.NewMem(machine.CacheCoherent, 4)
		inst := newCountInstance(m, 2)
		return Run(m, inst, false, Config{Acquisitions: 3, Sched: s, NCSSteps: 1})
	}
	rec := machine.NewRecorder(machine.NewRandom(11))
	first := runWith(rec)

	replay := machine.NewReplay(rec.Log())
	second := runWith(replay)

	if replay.Diverged() {
		t.Fatal("replay diverged on an identical program")
	}
	if first.Steps != second.Steps || len(first.Records) != len(second.Records) {
		t.Fatalf("replay differs: steps %d vs %d, records %d vs %d",
			first.Steps, second.Steps, len(first.Records), len(second.Records))
	}
	for i := range first.Records {
		if first.Records[i] != second.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, first.Records[i], second.Records[i])
		}
	}
}

func TestRunProtocolConvenience(t *testing.T) {
	res := RunProtocol(testProto{}, machine.CacheCoherent, 4, 2, Config{Acquisitions: 2})
	if !res.Completed {
		t.Fatal("RunProtocol did not complete")
	}
}

type testProto struct{}

func (testProto) Name() string   { return "test-counter" }
func (testProto) Traits() Traits { return Traits{} }
func (testProto) Build(m *machine.Mem, n, k int, _ BuildOptions) Instance {
	return newCountInstance(m, k)
}
