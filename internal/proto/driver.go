package proto

import (
	"fmt"

	"kexclusion/internal/machine"
)

// Phase is a process's position in the paper's §2 process cycle.
type Phase int

const (
	// PhaseNoncrit is the noncritical section.
	PhaseNoncrit Phase = iota + 1
	// PhaseEntry is the entry section of the k-exclusion protocol.
	PhaseEntry
	// PhaseCritical is the critical section.
	PhaseCritical
	// PhaseExit is the exit section.
	PhaseExit
	// PhaseDone means the process finished all its acquisitions.
	PhaseDone
)

func (ph Phase) String() string {
	switch ph {
	case PhaseNoncrit:
		return "noncrit"
	case PhaseEntry:
		return "entry"
	case PhaseCritical:
		return "critical"
	case PhaseExit:
		return "exit"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// Crash schedules the undetectable failure of a process: after the process
// has taken AfterSteps steps within the given phase of its Acquisition-th
// acquisition cycle, it stops executing statements forever. This is
// exactly the paper's failure model (a faulty process halts outside its
// noncritical section).
type Crash struct {
	Proc        int
	Phase       Phase
	AfterSteps  int
	Acquisition int
}

// Config parameterizes one simulation run.
type Config struct {
	// Acquisitions is the number of critical-section acquisitions each
	// process performs (crashed processes may perform fewer).
	Acquisitions int

	// MaxContention caps how many processes may be outside their
	// noncritical sections simultaneously — the paper's definition of
	// contention. Zero means no cap (contention up to N).
	MaxContention int

	// CSSteps and NCSSteps are the number of scheduler steps a process
	// spends inside its critical and noncritical sections. CSSteps
	// defaults to 1 so that critical-section occupancy is observable.
	CSSteps  int
	NCSSteps int

	// Sched selects the scheduler; defaults to round-robin.
	Sched machine.Scheduler

	// Crashes lists failure injections.
	Crashes []Crash

	// StepLimit aborts the run after this many total steps (a safety
	// net against livelock; the run is then reported as incomplete).
	// Zero means a generous default derived from the configuration.
	StepLimit int

	// EntryStepBound, if positive, records a starvation violation
	// whenever a live process takes more than this many of its own
	// steps in one entry section. Enable only with a fair scheduler
	// and at most k-1 crashes.
	EntryStepBound int

	// Trace, if non-nil, receives an event for every statement
	// execution, phase change and crash. Tracing is for inspection
	// (kexsim -trace); it does not affect the run.
	Trace func(TraceEvent)
}

// AcqRecord is the cost of one completed acquisition.
type AcqRecord struct {
	Proc        int
	EntryRemote uint64
	ExitRemote  uint64
	// EntrySteps is how many of its own steps the process spent in the
	// entry section (a latency/fairness measure independent of the
	// remote-reference cost).
	EntrySteps int
	// Bypassed counts processes that were already waiting in their
	// entry sections when this process started waiting and were still
	// waiting when it entered the critical section — the number of
	// waiters it overtook. FIFO algorithms keep this at zero; the
	// paper's algorithms bound it; the spin-counter baseline does not.
	Bypassed int
}

// Total is the acquisition's combined entry+exit remote reference count,
// the unit in which all the paper's bounds are stated.
func (r AcqRecord) Total() uint64 { return r.EntryRemote + r.ExitRemote }

// Result summarizes a simulation run.
type Result struct {
	Records      []AcqRecord
	Steps        int
	Completed    bool
	MaxOccupancy int
	Violations   []string

	MaxAcqRemote   uint64
	MeanAcqRemote  float64
	MaxEntryRemote uint64
	MaxExitRemote  uint64
	MaxEntrySteps  int
	MaxBypassed    int
}

func (r *Result) record(rec AcqRecord) {
	r.Records = append(r.Records, rec)
	if t := rec.Total(); t > r.MaxAcqRemote {
		r.MaxAcqRemote = t
	}
	if rec.EntryRemote > r.MaxEntryRemote {
		r.MaxEntryRemote = rec.EntryRemote
	}
	if rec.ExitRemote > r.MaxExitRemote {
		r.MaxExitRemote = rec.ExitRemote
	}
	if rec.EntrySteps > r.MaxEntrySteps {
		r.MaxEntrySteps = rec.EntrySteps
	}
	if rec.Bypassed > r.MaxBypassed {
		r.MaxBypassed = rec.Bypassed
	}
}

func (r *Result) violate(format string, args ...any) {
	if len(r.Violations) < 32 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

type procState struct {
	sess         Session
	phase        Phase
	remain       int
	stepsInPhase int
	acqs         int
	baseline     uint64
	entryRemote  uint64
	entrySteps   int
	entrySince   int
	bypassed     int
	crashed      bool
	name         int
}

func trace(cfg Config, ev TraceEvent) {
	if cfg.Trace != nil {
		cfg.Trace(ev)
	}
}

// Run drives n sessions of inst over memory m according to cfg and
// returns the metered result. The instance must have been built for the
// same memory and process count.
func Run(m *machine.Mem, inst Instance, assignment bool, cfg Config) Result {
	n := m.Procs()
	k := inst.K()
	if cfg.Acquisitions <= 0 {
		cfg.Acquisitions = 1
	}
	if cfg.CSSteps <= 0 {
		cfg.CSSteps = 1
	}
	if cfg.Sched == nil {
		cfg.Sched = machine.NewRoundRobin()
	}
	maxContention := cfg.MaxContention
	if maxContention <= 0 || maxContention > n {
		maxContention = n
	}
	stepLimit := cfg.StepLimit
	if stepLimit <= 0 {
		stepLimit = 2000 * n * cfg.Acquisitions * (cfg.CSSteps + cfg.NCSSteps + 8)
	}

	procs := make([]*procState, n)
	for p := 0; p < n; p++ {
		procs[p] = &procState{
			sess:   inst.NewSession(p),
			phase:  PhaseNoncrit,
			remain: cfg.NCSSteps,
			name:   -1,
		}
	}

	var res Result
	runnable := make([]bool, n)

	// active counts live processes outside their noncritical sections.
	// Crashed processes still outside the NCS contribute to the
	// *protocol's* load, but they must not consume the contention cap:
	// they would hold it forever and block every remaining process from
	// ever starting, turning the throttle into a deadlock.
	active := func() int {
		a := 0
		for _, ps := range procs {
			if ps.crashed {
				continue
			}
			if ps.phase == PhaseEntry || ps.phase == PhaseCritical || ps.phase == PhaseExit {
				a++
			}
		}
		return a
	}

	occupancy := func() int {
		c := 0
		for _, ps := range procs {
			if ps.phase == PhaseCritical {
				c++
			}
		}
		return c
	}

	crashDue := func(p int, ps *procState) bool {
		for _, c := range cfg.Crashes {
			if c.Proc == p && c.Phase == ps.phase && ps.acqs == c.Acquisition && ps.stepsInPhase >= c.AfterSteps {
				return true
			}
		}
		return false
	}

	checkNames := func() {
		if !assignment {
			return
		}
		seen := make(map[int]int)
		for p, ps := range procs {
			if ps.phase != PhaseCritical {
				continue
			}
			name := ps.name
			if name < 0 || name >= k {
				res.violate("proc %d in CS with name %d outside 0..%d", p, name, k-1)
				continue
			}
			if q, dup := seen[name]; dup {
				res.violate("procs %d and %d in CS share name %d", q, p, name)
			}
			seen[name] = p
		}
	}

	for step := 0; step < stepLimit; step++ {
		// Promote ready noncritical processes into their entry
		// sections, respecting the contention cap.
		slots := maxContention - active()
		for p, ps := range procs {
			if slots <= 0 {
				break
			}
			if ps.phase == PhaseNoncrit && ps.remain <= 0 && !ps.crashed {
				ps.phase = PhaseEntry
				ps.stepsInPhase = 0
				ps.baseline = m.Stats(p).Remote
				ps.entrySince = step
				slots--
				trace(cfg, TraceEvent{Kind: TracePhase, Step: step, Proc: p,
					From: PhaseNoncrit, To: PhaseEntry, Remote: ps.baseline})
			}
		}

		anyLive := false
		for p, ps := range procs {
			runnable[p] = false
			if ps.crashed || ps.phase == PhaseDone {
				continue
			}
			if ps.phase == PhaseNoncrit && ps.remain <= 0 {
				// Waiting for a contention slot; consumes no steps.
				continue
			}
			runnable[p] = true
			anyLive = true
		}
		if !anyLive {
			break
		}

		p := cfg.Sched.Next(step, runnable)
		if p < 0 {
			break
		}
		ps := procs[p]
		res.Steps++

		if crashDue(p, ps) {
			ps.crashed = true
			trace(cfg, TraceEvent{Kind: TraceCrash, Step: step, Proc: p, From: ps.phase})
			continue
		}
		trace(cfg, TraceEvent{Kind: TraceStep, Step: step, Proc: p,
			From: ps.phase, Remote: m.Stats(p).Remote})

		switch ps.phase {
		case PhaseNoncrit:
			ps.remain--
			ps.stepsInPhase++

		case PhaseEntry:
			done := ps.sess.StepAcquire(m, p)
			ps.stepsInPhase++
			if cfg.EntryStepBound > 0 && ps.stepsInPhase > cfg.EntryStepBound {
				res.violate("proc %d starved: %d entry steps without entering CS", p, ps.stepsInPhase)
				ps.crashed = true // stop it from flooding violations
				continue
			}
			if done {
				ps.entryRemote = m.Stats(p).Remote - ps.baseline
				ps.entrySteps = ps.stepsInPhase
				// Count the waiters p overtook: still in their entry
				// sections despite having arrived before p.
				ps.bypassed = 0
				for q, qs := range procs {
					if q != p && qs.phase == PhaseEntry && !qs.crashed && qs.entrySince < ps.entrySince {
						ps.bypassed++
					}
				}
				ps.phase = PhaseCritical
				ps.remain = cfg.CSSteps
				ps.stepsInPhase = 0
				ps.name = ps.sess.AssignedName()
				trace(cfg, TraceEvent{Kind: TracePhase, Step: step, Proc: p,
					From: PhaseEntry, To: PhaseCritical, Remote: m.Stats(p).Remote})
				if occ := occupancy(); occ > res.MaxOccupancy {
					res.MaxOccupancy = occ
				}
				if occupancy() > k {
					res.violate("k-exclusion violated: %d processes in CS (k=%d)", occupancy(), k)
				}
				checkNames()
			}

		case PhaseCritical:
			ps.remain--
			ps.stepsInPhase++
			if ps.remain <= 0 {
				ps.phase = PhaseExit
				ps.stepsInPhase = 0
				ps.name = -1
				ps.baseline = m.Stats(p).Remote
			}

		case PhaseExit:
			done := ps.sess.StepRelease(m, p)
			ps.stepsInPhase++
			if done {
				exitRemote := m.Stats(p).Remote - ps.baseline
				res.record(AcqRecord{
					Proc:        p,
					EntryRemote: ps.entryRemote,
					ExitRemote:  exitRemote,
					EntrySteps:  ps.entrySteps,
					Bypassed:    ps.bypassed,
				})
				trace(cfg, TraceEvent{Kind: TracePhase, Step: step, Proc: p,
					From: PhaseExit, To: PhaseNoncrit, Remote: m.Stats(p).Remote})
				ps.acqs++
				if ps.acqs >= cfg.Acquisitions {
					ps.phase = PhaseDone
				} else {
					ps.phase = PhaseNoncrit
					ps.remain = cfg.NCSSteps
					ps.stepsInPhase = 0
				}
			}
		}
	}

	// The run completed if every non-crashed process finished.
	res.Completed = true
	for _, ps := range procs {
		if !ps.crashed && ps.phase != PhaseDone {
			res.Completed = false
			break
		}
	}
	if len(res.Records) > 0 {
		var sum uint64
		for _, r := range res.Records {
			sum += r.Total()
		}
		res.MeanAcqRemote = float64(sum) / float64(len(res.Records))
	}
	return res
}

// RunProtocol builds pr on a fresh memory with the given model and runs it.
func RunProtocol(pr Protocol, model machine.Model, n, k int, cfg Config) Result {
	m := machine.NewMem(model, n)
	inst := pr.Build(m, n, k, BuildOptions{MaxAcquisitions: cfg.Acquisitions})
	return Run(m, inst, pr.Traits().Assignment, cfg)
}
