package proto

import "fmt"

// TraceKind classifies driver trace events.
type TraceKind int

const (
	// TraceStep is the execution of one atomic statement.
	TraceStep TraceKind = iota + 1
	// TracePhase is a process moving between lifecycle phases.
	TracePhase
	// TraceCrash is a crash injection firing.
	TraceCrash
)

func (k TraceKind) String() string {
	switch k {
	case TraceStep:
		return "step"
	case TracePhase:
		return "phase"
	case TraceCrash:
		return "crash"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable event of a simulation run.
type TraceEvent struct {
	Kind TraceKind
	Step int
	Proc int
	// From and To are set for TracePhase events.
	From, To Phase
	// Remote is the process's cumulative remote-reference count at the
	// time of the event.
	Remote uint64
}

// String renders the event as one trace line.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TracePhase:
		return fmt.Sprintf("[%6d] p%-2d %s -> %s (remote=%d)", e.Step, e.Proc, e.From, e.To, e.Remote)
	case TraceCrash:
		return fmt.Sprintf("[%6d] p%-2d CRASHED in %s", e.Step, e.Proc, e.From)
	default:
		return fmt.Sprintf("[%6d] p%-2d step in %s (remote=%d)", e.Step, e.Proc, e.From, e.Remote)
	}
}
