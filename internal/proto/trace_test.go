package proto

import (
	"strings"
	"testing"

	"kexclusion/internal/machine"
)

func TestTraceEventsCoverLifecycle(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 2)
	inst := newCountInstance(m, 1)

	var events []TraceEvent
	res := Run(m, inst, false, Config{
		Acquisitions: 2,
		Trace:        func(ev TraceEvent) { events = append(events, ev) },
	})
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	counts := map[TraceKind]int{}
	var entered, exited int
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == TracePhase {
			switch {
			case ev.From == PhaseEntry && ev.To == PhaseCritical:
				entered++
			case ev.From == PhaseExit && ev.To == PhaseNoncrit:
				exited++
			}
		}
	}
	if counts[TraceStep] == 0 || counts[TracePhase] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	if entered != 4 || exited != 4 {
		t.Fatalf("2 procs x 2 acquisitions should produce 4 CS entries and exits, got %d/%d", entered, exited)
	}
	if counts[TraceCrash] != 0 {
		t.Fatal("no crash was injected")
	}
	// Ordering sanity: the first event of proc p must not be a CS entry.
	for _, ev := range events {
		if ev.Kind == TracePhase && ev.To == PhaseCritical {
			break
		}
		if ev.Kind == TracePhase && ev.To == PhaseEntry {
			break
		}
	}
}

func TestTraceCrashEvent(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 2)
	inst := newCountInstance(m, 1)
	var crashes int
	Run(m, inst, false, Config{
		Acquisitions: 2,
		Crashes:      []Crash{{Proc: 1, Phase: PhaseCritical}},
		StepLimit:    5000,
		Trace: func(ev TraceEvent) {
			if ev.Kind == TraceCrash {
				crashes++
				if ev.Proc != 1 || ev.From != PhaseCritical {
					t.Errorf("wrong crash event: %+v", ev)
				}
			}
		},
	})
	if crashes != 1 {
		t.Fatalf("expected exactly one crash event, got %d", crashes)
	}
}

func TestTraceEventString(t *testing.T) {
	cases := []struct {
		ev   TraceEvent
		want string
	}{
		{TraceEvent{Kind: TracePhase, Step: 3, Proc: 1, From: PhaseEntry, To: PhaseCritical}, "entry -> critical"},
		{TraceEvent{Kind: TraceCrash, Step: 9, Proc: 2, From: PhaseExit}, "CRASHED in exit"},
		{TraceEvent{Kind: TraceStep, Step: 1, Proc: 0, From: PhaseEntry}, "step in entry"},
	}
	for _, tc := range cases {
		if got := tc.ev.String(); !strings.Contains(got, tc.want) {
			t.Errorf("event %+v rendered %q, want substring %q", tc.ev, got, tc.want)
		}
	}
	if TraceStep.String() != "step" || TraceKind(99).String() == "" {
		t.Fatal("TraceKind.String wrong")
	}
}

func TestFairnessMetrics(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 4)
	inst := newCountInstance(m, 1)
	res := Run(m, inst, false, Config{Acquisitions: 3})
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.MaxEntrySteps == 0 {
		t.Fatal("entry steps not recorded")
	}
	for _, r := range res.Records {
		if r.EntrySteps <= 0 {
			t.Fatalf("record missing entry steps: %+v", r)
		}
		if r.Bypassed < 0 || r.Bypassed > 3 {
			t.Fatalf("bypass count out of range: %+v", r)
		}
	}
}
