package renaming

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"kexclusion/internal/core"
)

func TestLongLivedSequential(t *testing.T) {
	l := NewLongLived(3)
	a, b, c := l.Acquire(), l.Acquire(), l.Acquire()
	if a == b || b == c || a == c {
		t.Fatalf("names not distinct: %d %d %d", a, b, c)
	}
	for _, n := range []int{a, b, c} {
		if n < 0 || n >= 3 {
			t.Fatalf("name %d out of range", n)
		}
	}
	l.Release(b)
	if got := l.Acquire(); got != b {
		t.Fatalf("released name %d not reused, got %d", b, got)
	}
}

func TestLongLivedLastNameBitFree(t *testing.T) {
	l := NewLongLived(1)
	if got := l.Acquire(); got != 0 {
		t.Fatalf("k=1 name = %d, want 0", got)
	}
	l.Release(0) // no-op; must not panic
}

func TestLongLivedReleaseValidation(t *testing.T) {
	l := NewLongLived(4)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { l.Release(-1) })
	mustPanic(func() { l.Release(4) })
	mustPanic(func() { l.Release(1) }) // not held
}

// TestAssignmentUniqueNames runs N goroutines through an (N,k)-
// assignment, checking that concurrently held names are unique and in
// range — the paper's k-assignment specification.
func TestAssignmentUniqueNames(t *testing.T) {
	n, k := 12, 4
	asg := New(n, k)
	var (
		holders [4]atomic.Int64 // holders[name] = pid+1 or 0
		wg      sync.WaitGroup
	)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				name := asg.Acquire(p)
				if name < 0 || name >= k {
					t.Errorf("name %d out of range", name)
				}
				if !holders[name].CompareAndSwap(0, int64(p)+1) {
					t.Errorf("name %d already held by pid %d", name, holders[name].Load()-1)
				}
				if r%4 == 0 {
					time.Sleep(time.Microsecond)
				}
				holders[name].Store(0)
				asg.Release(p, name)
			}
		}(p)
	}
	wg.Wait()
}

// TestAssignmentOverEveryExclusion composes the renaming wrapper with
// each native k-exclusion implementation.
func TestAssignmentOverEveryExclusion(t *testing.T) {
	n, k := 8, 3
	excls := map[string]core.KExclusion{
		"inductive": core.NewInductive(n, k),
		"tree":      core.NewTree(n, k),
		"fastpath":  core.NewFastPath(n, k),
		"localspin": core.NewLocalSpin(n, k),
	}
	for name, excl := range excls {
		t.Run(name, func(t *testing.T) {
			asg := NewAssignment(excl)
			var inUse [3]atomic.Int32
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 25; r++ {
						nm := asg.Acquire(p)
						if !inUse[nm].CompareAndSwap(0, 1) {
							t.Errorf("duplicate name %d", nm)
						}
						inUse[nm].Store(0)
						asg.Release(p, nm)
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// TestAssignmentNameSpaceExact verifies the name space is exactly k:
// under full contention every name in 0..k-1 is eventually used and no
// other value appears (the paper stresses renaming into exactly k names,
// not the 2k-1 of earlier one-shot algorithms).
func TestAssignmentNameSpaceExact(t *testing.T) {
	n, k := 9, 3
	asg := New(n, k)
	var seen [3]atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				name := asg.Acquire(p)
				seen[name].Add(1)
				// Dwell in the critical section so holders overlap
				// even on a single-CPU host; otherwise name 0 would
				// just be recycled.
				time.Sleep(20 * time.Microsecond)
				asg.Release(p, name)
			}
		}(p)
	}
	wg.Wait()
	var total int64
	for name := range seen {
		c := seen[name].Load()
		if c == 0 {
			t.Errorf("name %d never assigned under full contention", name)
		}
		total += c
	}
	if total != int64(n*50) {
		t.Fatalf("acquisitions mismatch: %d want %d", total, n*50)
	}
}

func TestQuickAssignmentShapes(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := 1 + int(rawN%8)
		k := 1 + int(rawK)%n
		asg := New(n, k)
		inUse := make([]atomic.Int32, k)
		var wg sync.WaitGroup
		bad := atomic.Bool{}
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for r := 0; r < 8; r++ {
					nm := asg.Acquire(p)
					if nm < 0 || nm >= k || !inUse[nm].CompareAndSwap(0, 1) {
						bad.Store(true)
					} else {
						inUse[nm].Store(0)
					}
					asg.Release(p, nm)
				}
			}(p)
		}
		wg.Wait()
		return !bad.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentAccessors(t *testing.T) {
	asg := New(6, 2)
	if asg.K() != 2 || asg.N() != 6 {
		t.Fatalf("accessors wrong: K=%d N=%d", asg.K(), asg.N())
	}
}

func TestNewLongLivedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewLongLived(0)
}
