package renaming

import (
	"context"
	"errors"
	"testing"

	"kexclusion/internal/core"
)

func TestAssignmentAcquireCtxWithdraws(t *testing.T) {
	a := New(8, 2)
	n0 := a.Acquire(0)
	n1 := a.Acquire(1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AcquireCtx(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("AcquireCtx on full assignment = %v, want context.Canceled", err)
	}
	if _, ok := a.TryAcquire(2); ok {
		t.Fatal("TryAcquire succeeded with both slots held")
	}

	a.Release(0, n0)
	a.Release(1, n1)

	// Withdrawal must not have leaked a slot or a name: both slots and
	// both names are reacquirable, via the ctx path included.
	n2, err := a.AcquireCtx(context.Background(), 2)
	if err != nil {
		t.Fatalf("AcquireCtx after drain = %v", err)
	}
	n3, ok := a.TryAcquire(3)
	if !ok {
		t.Fatal("TryAcquire failed with a free slot")
	}
	if n2 == n3 || n2 < 0 || n2 >= 2 || n3 < 0 || n3 >= 2 {
		t.Fatalf("names %d, %d not unique in 0..1", n2, n3)
	}
	a.Release(2, n2)
	a.Release(3, n3)
}

// nonAbortable hides the Abortable surface of a real k-exclusion,
// modelling a wrapper built over an implementation without withdrawal.
type nonAbortable struct{ inner core.KExclusion }

func (n nonAbortable) Acquire(p int) { n.inner.Acquire(p) }
func (n nonAbortable) Release(p int) { n.inner.Release(p) }
func (n nonAbortable) K() int        { return n.inner.K() }
func (n nonAbortable) N() int        { return n.inner.N() }

func TestAssignmentNonAbortableFallback(t *testing.T) {
	a := NewAssignment(nonAbortable{core.NewCounting(4, 2)})
	// AcquireCtx falls back to a blocking acquire when slots are free.
	name, err := a.AcquireCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("AcquireCtx fallback = %v", err)
	}
	a.Release(0, name)
	// TryAcquire cannot promise no-wait semantics without Abortable.
	if _, ok := a.TryAcquire(0); ok {
		t.Fatal("TryAcquire succeeded on a non-abortable k-exclusion")
	}
}
