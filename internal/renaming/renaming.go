// Package renaming implements the paper's §4 long-lived renaming and
// k-assignment natively. LongLived is the test&set renaming algorithm of
// Figure 7 (the first renaming algorithm that lets processes repeatedly
// acquire and release names, with a name space of exactly k);
// Assignment composes it with any k-exclusion from internal/core to
// solve (N,k)-assignment: at most k processes hold slots, each with a
// unique name in 0..k-1.
package renaming

import (
	"context"
	"fmt"
	"sync/atomic"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
)

// LongLived is the test&set long-lived renaming object. At most k
// processes may hold names simultaneously — in the paper's methodology
// this is guaranteed by the enclosing k-exclusion, and misuse is
// detected rather than silently misbehaving.
type LongLived struct {
	// bits[i] guards name i for i in 0..k-2; the paper shows the last
	// name needs no bit (at most one process can exhaust the scan).
	bits []paddedBool
	k    int
	m    *obs.Metrics
}

type paddedBool struct {
	v atomic.Int32
	_ [60]byte
}

// NewLongLived creates a renaming object with a name space of exactly k.
func NewLongLived(k int) *LongLived {
	if k < 1 {
		panic(fmt.Sprintf("renaming: k must be at least 1, got %d", k))
	}
	return &LongLived{bits: make([]paddedBool, k-1), k: k}
}

// K reports the size of the name space.
func (l *LongLived) K() int { return l.k }

// WithMetrics attaches an observability sink counting name acquisitions
// and failed test&set probes; nil detaches. Returns l for chaining.
func (l *LongLived) WithMetrics(m *obs.Metrics) *LongLived {
	l.m = m
	return l
}

// Acquire obtains a name in 0..k-1. The caller must be one of at most k
// concurrent holders (enforce with k-exclusion; see Assignment). The
// scan test&sets each bit in order — at most k-1 remote operations — and
// the paper shows that if all k-1 bits are taken the caller is the only
// process that can be scanning, so it takes the last name bit-free.
func (l *LongLived) Acquire() int {
	var failures int64
	for name := range l.bits {
		if l.bits[name].v.CompareAndSwap(0, 1) {
			l.m.NameAcquired(failures)
			return name
		}
		failures++
	}
	l.m.NameAcquired(failures)
	return l.k - 1
}

// Release returns a name obtained from Acquire.
func (l *LongLived) Release(name int) {
	if name < 0 || name >= l.k {
		panic(fmt.Sprintf("renaming: invalid name %d for name space %d", name, l.k))
	}
	if name == l.k-1 {
		return // the last name has no bit
	}
	if !l.bits[name].v.CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("renaming: releasing name %d that is not held", name))
	}
}

// Assignment solves (N,k)-assignment: Acquire blocks until the caller
// holds one of k slots and returns a name in 0..k-1 unique among
// concurrent holders (Figure 7, Theorems 9 and 10).
type Assignment struct {
	excl  core.KExclusion
	names *LongLived
}

// NewAssignment builds a k-assignment from the given k-exclusion.
func NewAssignment(excl core.KExclusion) *Assignment {
	return &Assignment{excl: excl, names: NewLongLived(excl.K())}
}

// New builds a k-assignment for n processes and k names over the
// paper's fast-path k-exclusion (Theorem 9's composition).
func New(n, k int, opts ...core.Option) *Assignment {
	return NewAssignment(core.NewFastPath(n, k, opts...))
}

// WithMetrics attaches an observability sink to the renaming half of
// the assignment (name attempts and test&set failures). The enclosed
// k-exclusion is instrumented separately — pass core.WithMetrics when
// constructing it, typically sharing the same sink. Returns a for
// chaining.
func (a *Assignment) WithMetrics(m *obs.Metrics) *Assignment {
	a.names.WithMetrics(m)
	return a
}

// Acquire blocks process p until it holds a slot, returning its name.
func (a *Assignment) Acquire(p int) int {
	a.excl.Acquire(p)
	return a.names.Acquire()
}

// AcquireCtx is Acquire with bounded withdrawal: if ctx is done while p
// is still waiting for a slot, p withdraws from the k-exclusion entry
// section and the ctx error is returned. Name acquisition itself is
// bounded (at most k-1 test&set probes), so cancellation only applies
// to the unbounded wait. If the underlying k-exclusion does not support
// withdrawal (core.Abortable), AcquireCtx falls back to blocking.
func (a *Assignment) AcquireCtx(ctx context.Context, p int) (int, error) {
	if ab, ok := a.excl.(core.Abortable); ok {
		if err := ab.AcquireCtx(ctx, p); err != nil {
			return 0, err
		}
	} else {
		a.excl.Acquire(p)
	}
	return a.names.Acquire(), nil
}

// TryAcquire acquires a slot and name only if the slot requires no
// waiting, reporting success. False is returned — and nothing is held —
// when every slot is taken or the k-exclusion does not support
// withdrawal.
func (a *Assignment) TryAcquire(p int) (int, bool) {
	ab, ok := a.excl.(core.Abortable)
	if !ok || !ab.TryAcquire(p) {
		return 0, false
	}
	return a.names.Acquire(), true
}

// Release returns process p's slot and name.
func (a *Assignment) Release(p, name int) {
	a.names.Release(name)
	a.excl.Release(p)
}

// K reports the name-space size.
func (a *Assignment) K() int { return a.excl.K() }

// N reports the number of process identities.
func (a *Assignment) N() int { return a.excl.N() }
