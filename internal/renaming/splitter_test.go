package renaming

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSplitterSolo(t *testing.T) {
	var s Splitter
	if got := s.Split(3); got != Stop {
		t.Fatalf("solo entrant got %v, want stop", got)
	}
	// A later entrant sees the closed door.
	if got := s.Split(4); got != Right {
		t.Fatalf("late entrant got %v, want right", got)
	}
}

func TestSplitterAtMostOneStops(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		var s Splitter
		var wg sync.WaitGroup
		results := make([]Direction, 8)
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				results[p] = s.Split(p)
			}(p)
		}
		wg.Wait()
		stops, rights, downs := 0, 0, 0
		for _, d := range results {
			switch d {
			case Stop:
				stops++
			case Right:
				rights++
			case Down:
				downs++
			}
		}
		if stops > 1 {
			t.Fatalf("trial %d: %d processes stopped", trial, stops)
		}
		if rights > 7 || downs > 7 {
			t.Fatalf("trial %d: splitter bound violated (r=%d d=%d)", trial, rights, downs)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Stop.String() != "stop" || Right.String() != "right" || Down.String() != "down" {
		t.Fatal("direction strings wrong")
	}
	if Direction(9).String() == "" {
		t.Fatal("unknown direction must render")
	}
}

func TestGridSequentialNames(t *testing.T) {
	g := NewGrid(3)
	if g.K() != 3 || g.NameSpace() != 6 {
		t.Fatalf("grid shape wrong: k=%d space=%d", g.K(), g.NameSpace())
	}
	// Sequential processes all stop at the first splitter of their walk
	// once prior names are taken.
	n1 := g.Acquire(0)
	n2 := g.Acquire(1)
	n3 := g.Acquire(2)
	if n1 == n2 || n2 == n3 || n1 == n3 {
		t.Fatalf("names not unique: %d %d %d", n1, n2, n3)
	}
	g.Reset()
	if got := g.Acquire(5); got != n1 {
		t.Fatalf("after reset the first name should be reissued: got %d want %d", got, n1)
	}
}

// TestGridConcurrentUnique: k concurrent processes always obtain unique
// names within the triangular space.
func TestGridConcurrentUnique(t *testing.T) {
	const k = 5
	for trial := 0; trial < 100; trial++ {
		g := NewGrid(k)
		var wg sync.WaitGroup
		names := make([]int, k)
		for p := 0; p < k; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				names[p] = g.Acquire(p)
			}(p)
		}
		wg.Wait()
		seen := map[int]bool{}
		for p, n := range names {
			if n < 0 || n >= g.NameSpace() {
				t.Fatalf("trial %d: name %d out of space", trial, n)
			}
			if seen[n] {
				t.Fatalf("trial %d: duplicate name %d (proc %d)", trial, n, p)
			}
			seen[n] = true
		}
	}
}

// TestGridVsFig7NameSpace quantifies the paper's §4 point: the grid's
// read/write-only renaming needs a name space of k(k+1)/2, while the
// test&set scan of Figure 7 renames into exactly k.
func TestGridVsFig7NameSpace(t *testing.T) {
	for k := 1; k <= 8; k++ {
		grid := NewGrid(k).NameSpace()
		fig7 := NewLongLived(k).K()
		if fig7 != k {
			t.Fatalf("Figure 7 name space = %d, want exactly k=%d", fig7, k)
		}
		if grid != k*(k+1)/2 {
			t.Fatalf("grid name space = %d, want %d", grid, k*(k+1)/2)
		}
	}
}

func TestGridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewGrid(0)
}

// TestQuickGridUniqueness property-tests random concurrency levels.
func TestQuickGridUniqueness(t *testing.T) {
	f := func(rawK uint8) bool {
		k := 1 + int(rawK%6)
		g := NewGrid(k)
		var wg sync.WaitGroup
		names := make([]int, k)
		for p := 0; p < k; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				names[p] = g.Acquire(p)
			}(p)
		}
		wg.Wait()
		seen := map[int]bool{}
		for _, n := range names {
			if n < 0 || n >= g.NameSpace() || seen[n] {
				return false
			}
			seen[n] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
