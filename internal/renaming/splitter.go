package renaming

import (
	"fmt"
	"sync/atomic"
)

// This file implements the splitter-grid renaming of Moir & Anderson
// ("Fast, Long-Lived Renaming", the paper's reference [13]) in its
// one-shot form, as an ablation partner for Figure 7's test&set
// renaming: the grid needs only reads and writes but produces names from
// a space of size k(k+1)/2, while the paper's test&set scan produces a
// name space of exactly k — the property §4 emphasizes. Comparing the
// two quantifies what the stronger primitive buys.

// Splitter is Lamport's fast-path splitter: of the processes that enter
// concurrently, at most one stops, at most c-1 go right and at most c-1
// go down (where c is the number of entrants).
type Splitter struct {
	x atomic.Int64 // last entrant (pid+1)
	y atomic.Int32 // door closed
}

// Direction is a splitter outcome.
type Direction int

const (
	// Stop means the process owns this splitter.
	Stop Direction = iota + 1
	// Right and Down steer the process through the grid.
	Right
	Down
)

func (d Direction) String() string {
	switch d {
	case Stop:
		return "stop"
	case Right:
		return "right"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Split runs process p through the splitter.
func (s *Splitter) Split(p int) Direction {
	s.x.Store(int64(p) + 1)
	if s.y.Load() != 0 {
		return Right
	}
	s.y.Store(1)
	if s.x.Load() == int64(p)+1 {
		return Stop
	}
	return Down
}

// reset reopens the splitter; callers must guarantee quiescence.
func (s *Splitter) reset() {
	s.x.Store(0)
	s.y.Store(0)
}

// Grid is the k x k triangular splitter grid: a one-shot,
// read/write-only renaming object for at most k concurrent processes
// with a name space of size k(k+1)/2. Each process walks from the top-left
// splitter, moving right or down until a splitter stops it; at most
// k-1 processes ever leave a diagonal, so every process stops within the
// triangle and names (the triangular index of the stopping splitter) are
// unique.
type Grid struct {
	cells []Splitter
	k     int
}

// NewGrid creates a splitter grid for at most k concurrent processes.
func NewGrid(k int) *Grid {
	if k < 1 {
		panic(fmt.Sprintf("renaming: k must be at least 1, got %d", k))
	}
	return &Grid{cells: make([]Splitter, k*(k+1)/2), k: k}
}

// K reports the concurrency bound.
func (g *Grid) K() int { return g.k }

// NameSpace reports the size of the name space, k(k+1)/2.
func (g *Grid) NameSpace() int { return len(g.cells) }

// cellIndex maps grid coordinates (r right-steps, d down-steps, with
// r+d < k) to the triangular array index.
func (g *Grid) cellIndex(r, d int) int {
	diag := r + d
	return diag*(diag+1)/2 + d
}

// Acquire walks process p through the grid and returns its name in
// 0..k(k+1)/2-1. One-shot: a name, once taken, is never reissued until
// Reset. At most k processes may participate.
func (g *Grid) Acquire(p int) int {
	r, d := 0, 0
	for {
		if r+d >= g.k {
			panic("renaming: grid overflow; more than k concurrent processes")
		}
		switch g.cells[g.cellIndex(r, d)].Split(p) {
		case Stop:
			return g.cellIndex(r, d)
		case Right:
			r++
		case Down:
			d++
		}
	}
}

// Reset reopens every splitter. The caller must guarantee that no
// process is inside the grid — one-shot renaming is reusable only across
// quiescent generations (this limitation is exactly why the paper's §4
// long-lived algorithm matters).
func (g *Grid) Reset() {
	for i := range g.cells {
		g.cells[i].reset()
	}
}
