package renaming

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestIDPoolUniqueLeases(t *testing.T) {
	const n = 4
	p := NewIDPool(n)
	held := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for g := 0; g < 3*n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				id := p.Get()
				if !held[id].CompareAndSwap(0, 1) {
					t.Errorf("id %d leased twice", id)
					return
				}
				held[id].Store(0)
				p.Put(id)
			}
		}()
	}
	wg.Wait()
}

func TestIDPoolTryGet(t *testing.T) {
	p := NewIDPool(2)
	a, ok := p.TryGet()
	if !ok {
		t.Fatal("TryGet should succeed on a fresh pool")
	}
	b, ok := p.TryGet()
	if !ok || a == b {
		t.Fatalf("second lease failed or duplicated: %d %d %v", a, b, ok)
	}
	if _, ok := p.TryGet(); ok {
		t.Fatal("TryGet must fail on an exhausted pool")
	}
	p.Put(a)
	if id, ok := p.TryGet(); !ok || id != a {
		t.Fatalf("expected to re-lease %d, got %d %v", a, id, ok)
	}
}

func TestIDPoolValidation(t *testing.T) {
	p := NewIDPool(2)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewIDPool(0) })
	mustPanic(func() { p.Put(5) })
	mustPanic(func() { p.Put(0) }) // not leased
	if p.N() != 2 {
		t.Fatal("N wrong")
	}
}

func TestIDPoolBlockingGet(t *testing.T) {
	p := NewIDPool(1)
	id := p.Get()
	done := make(chan int)
	go func() { done <- p.Get() }()
	select {
	case <-done:
		t.Fatal("Get returned while pool exhausted")
	default:
	}
	p.Put(id)
	if got := <-done; got != id {
		t.Fatalf("expected blocked Get to obtain %d, got %d", id, got)
	}
}
