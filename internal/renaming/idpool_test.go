package renaming

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestIDPoolUniqueLeases(t *testing.T) {
	const n = 4
	p := NewIDPool(n)
	held := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for g := 0; g < 3*n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				id := p.Get()
				if !held[id].CompareAndSwap(0, 1) {
					t.Errorf("id %d leased twice", id)
					return
				}
				held[id].Store(0)
				p.Put(id)
			}
		}()
	}
	wg.Wait()
}

func TestIDPoolTryGet(t *testing.T) {
	p := NewIDPool(2)
	a, ok := p.TryGet()
	if !ok {
		t.Fatal("TryGet should succeed on a fresh pool")
	}
	b, ok := p.TryGet()
	if !ok || a == b {
		t.Fatalf("second lease failed or duplicated: %d %d %v", a, b, ok)
	}
	if _, ok := p.TryGet(); ok {
		t.Fatal("TryGet must fail on an exhausted pool")
	}
	p.Put(a)
	if id, ok := p.TryGet(); !ok || id != a {
		t.Fatalf("expected to re-lease %d, got %d %v", a, id, ok)
	}
}

func TestIDPoolValidation(t *testing.T) {
	p := NewIDPool(2)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewIDPool(0) })
	mustPanic(func() { p.Put(5) })
	mustPanic(func() { p.Put(0) }) // not leased
	if p.N() != 2 {
		t.Fatal("N wrong")
	}
}

// TestIDPoolChurnWithLostLeaseholder is the runtime analogue of the
// paper's one-slot-per-failure guarantee at the identity layer: while
// goroutines churn Get/Put, one leaseholder never returns its id. The
// pool must degrade by exactly that one identity — the lost id is
// never handed out again, every other id keeps circulating, and the
// churners all finish their fixed workload.
func TestIDPoolChurnWithLostLeaseholder(t *testing.T) {
	const (
		n       = 4
		workers = 3 * n
		rounds  = 200
	)
	p := NewIDPool(n)
	lost := p.Get() // the leaseholder that will never call Put

	var (
		wg     sync.WaitGroup
		leaked atomic.Int64    // times the lost id was handed out (must stay 0)
		perID  [n]atomic.Int64 // completed leases per identity
		held   [n]atomic.Int32
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := p.Get()
				if id == lost {
					leaked.Add(1)
					return
				}
				if !held[id].CompareAndSwap(0, 1) {
					t.Errorf("id %d leased twice", id)
					return
				}
				perID[id].Add(1)
				held[id].Store(0)
				p.Put(id)
			}
		}()
	}
	wg.Wait()

	if leaked.Load() != 0 {
		t.Fatalf("lost id %d was re-leased %d times", lost, leaked.Load())
	}
	total := int64(0)
	for id := range perID {
		got := perID[id].Load()
		total += got
		if id == lost && got != 0 {
			t.Errorf("lost id %d recorded %d leases", id, got)
		}
	}
	if want := int64(workers * rounds); total != want {
		t.Fatalf("churners completed %d leases, want %d (progress on N-1 identities)", total, want)
	}
	// Degraded by exactly one: with the leaseholder still gone, the
	// remaining n-1 identities are all leasable, and not one more.
	var got []int
	for {
		id, ok := p.TryGet()
		if !ok {
			break
		}
		got = append(got, id)
	}
	if len(got) != n-1 {
		t.Fatalf("pool degraded to %d identities, want %d", len(got), n-1)
	}
	for _, id := range got {
		if id == lost {
			t.Fatalf("exhaustive drain obtained the lost id %d", id)
		}
		p.Put(id)
	}
}

// TestLeaseReleaseAfterCrash exercises the session manager's
// identity-reclaim hook: for every lease, the normal teardown path and a
// crash-reclaim path race to return the same identity concurrently.
// Exactly one Release call per lease must win, raw Put's double-return
// panic must never fire, and every identity must be re-leasable
// afterwards — repeated across rounds so reclaimed identities circulate.
func TestLeaseReleaseAfterCrash(t *testing.T) {
	const (
		n      = 8
		rounds = 100
	)
	p := NewIDPool(n)
	for r := 0; r < rounds; r++ {
		leases := make([]*Lease, n)
		for i := range leases {
			l, ok := p.TryLease()
			if !ok {
				t.Fatalf("round %d: pool not fully re-leasable, got %d of %d", r, i, n)
			}
			leases[i] = l
		}
		if _, ok := p.TryLease(); ok {
			t.Fatalf("round %d: leased more than n identities", r)
		}

		var (
			wg   sync.WaitGroup
			wins atomic.Int64
		)
		for _, l := range leases {
			// Two racing releasers per lease: session exit and the
			// reclaim hook observing the dead connection.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(l *Lease) {
					defer wg.Done()
					if l.Release() {
						wins.Add(1)
					}
				}(l)
			}
		}
		wg.Wait()
		if wins.Load() != n {
			t.Fatalf("round %d: %d Release wins, want exactly %d", r, wins.Load(), n)
		}
		for _, l := range leases {
			if !l.Released() {
				t.Fatalf("round %d: lease %d not marked released", r, l.ID())
			}
			if l.Release() {
				t.Fatalf("round %d: late Release of %d won again", r, l.ID())
			}
		}
		if got := p.InUse(); got != 0 {
			t.Fatalf("round %d: %d identities still marked in use", r, got)
		}
	}
}

// TestLeaseReclaimUnderChurn races the reclaim hook against fresh
// admissions: while half the goroutines lease-and-release normally,
// the other half double-release crashed leases; identities must keep
// circulating with no duplicate grant.
func TestLeaseReclaimUnderChurn(t *testing.T) {
	const (
		n       = 4
		workers = 3 * n
		rounds  = 150
	)
	p := NewIDPool(n)
	var (
		wg   sync.WaitGroup
		held [n]atomic.Int32
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				l := p.Lease()
				if !held[l.ID()].CompareAndSwap(0, 1) {
					t.Errorf("id %d leased twice", l.ID())
					return
				}
				held[l.ID()].Store(0)
				if g%2 == 0 {
					l.Release()
					continue
				}
				// Crashed session: teardown and reclaim hook race.
				var inner sync.WaitGroup
				for c := 0; c < 2; c++ {
					inner.Add(1)
					go func() { defer inner.Done(); l.Release() }()
				}
				inner.Wait()
			}
		}(g)
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("%d identities leaked", got)
	}
}

func TestIDPoolInUse(t *testing.T) {
	p := NewIDPool(3)
	if got := p.InUse(); got != 0 {
		t.Fatalf("fresh pool InUse = %d", got)
	}
	l := p.Lease()
	if got := p.InUse(); got != 1 {
		t.Fatalf("InUse = %d, want 1", got)
	}
	if l.Released() {
		t.Fatal("fresh lease already released")
	}
	if !l.Release() {
		t.Fatal("first Release lost")
	}
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d", got)
	}
}

func TestIDPoolBlockingGet(t *testing.T) {
	p := NewIDPool(1)
	id := p.Get()
	done := make(chan int)
	go func() { done <- p.Get() }()
	select {
	case <-done:
		t.Fatal("Get returned while pool exhausted")
	default:
	}
	p.Put(id)
	if got := <-done; got != id {
		t.Fatalf("expected blocked Get to obtain %d, got %d", id, got)
	}
}
