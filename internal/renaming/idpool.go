package renaming

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// IDPool leases process identities to goroutines. Every algorithm in
// this repository is per-process — callers pass an id in [0,N) — which
// fits systems with a fixed worker set. When goroutines come and go, an
// IDPool bridges the gap: Get leases a free identity (blocking if all N
// are in use), Put returns it.
//
// Unlike LongLived, an IDPool does not assume a bound on concurrent
// callers; excess goroutines simply wait for an identity.
type IDPool struct {
	slots []poolSlot
}

type poolSlot struct {
	v atomic.Int32
	_ [60]byte
}

// NewIDPool creates a pool of n identities (0..n-1).
func NewIDPool(n int) *IDPool {
	if n < 1 {
		panic(fmt.Sprintf("renaming: pool size must be at least 1, got %d", n))
	}
	return &IDPool{slots: make([]poolSlot, n)}
}

// N reports the pool size.
func (p *IDPool) N() int { return len(p.slots) }

// Get leases a free identity, blocking until one is available.
func (p *IDPool) Get() int {
	for spin := 0; ; spin++ {
		for i := range p.slots {
			if p.slots[i].v.CompareAndSwap(0, 1) {
				return i
			}
		}
		runtime.Gosched()
	}
}

// TryGet leases a free identity without blocking; ok reports success.
func (p *IDPool) TryGet() (id int, ok bool) {
	for i := range p.slots {
		if p.slots[i].v.CompareAndSwap(0, 1) {
			return i, true
		}
	}
	return 0, false
}

// Put returns a leased identity to the pool.
func (p *IDPool) Put(id int) {
	if id < 0 || id >= len(p.slots) {
		panic(fmt.Sprintf("renaming: invalid pool id %d", id))
	}
	if !p.slots[id].v.CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("renaming: returning id %d that is not leased", id))
	}
}

// InUse counts currently leased identities. The count is a racy sum —
// exact only when leasing is quiescent — intended for stats and tests.
func (p *IDPool) InUse() int {
	n := 0
	for i := range p.slots {
		if p.slots[i].v.Load() == 1 {
			n++
		}
	}
	return n
}

// Lease is a leased identity whose release is idempotent: exactly one of
// any number of concurrent Release calls returns the identity. Raw
// Get/Put panics on double-Put because for a live process that is a
// protocol violation; a Lease exists for the owner-died case, where the
// normal teardown path and a crash-reclaim hook (e.g. a session manager
// observing a dead connection) can race to return the same identity and
// both must be safe. This is the identity-reclaim primitive behind
// treating a disconnected network client as one of the paper's crashed
// processes.
type Lease struct {
	pool     *IDPool
	id       int
	released atomic.Bool
}

// Lease leases a free identity, blocking until one is available.
func (p *IDPool) Lease() *Lease {
	return &Lease{pool: p, id: p.Get()}
}

// TryLease leases a free identity without blocking; ok reports success.
func (p *IDPool) TryLease() (*Lease, bool) {
	id, ok := p.TryGet()
	if !ok {
		return nil, false
	}
	return &Lease{pool: p, id: id}, true
}

// ID reports the leased identity.
func (l *Lease) ID() int { return l.id }

// Released reports whether the lease has already been returned.
func (l *Lease) Released() bool { return l.released.Load() }

// Release returns the identity to the pool, reporting whether this call
// was the one that returned it. Safe to call any number of times from
// any number of goroutines; after the first, the identity may already be
// leased to a new owner, so late callers must not touch it.
func (l *Lease) Release() bool {
	if l.released.Swap(true) {
		return false
	}
	l.pool.Put(l.id)
	return true
}
