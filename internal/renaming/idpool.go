package renaming

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// IDPool leases process identities to goroutines. Every algorithm in
// this repository is per-process — callers pass an id in [0,N) — which
// fits systems with a fixed worker set. When goroutines come and go, an
// IDPool bridges the gap: Get leases a free identity (blocking if all N
// are in use), Put returns it.
//
// Unlike LongLived, an IDPool does not assume a bound on concurrent
// callers; excess goroutines simply wait for an identity.
type IDPool struct {
	slots []poolSlot
}

type poolSlot struct {
	v atomic.Int32
	_ [60]byte
}

// NewIDPool creates a pool of n identities (0..n-1).
func NewIDPool(n int) *IDPool {
	if n < 1 {
		panic(fmt.Sprintf("renaming: pool size must be at least 1, got %d", n))
	}
	return &IDPool{slots: make([]poolSlot, n)}
}

// N reports the pool size.
func (p *IDPool) N() int { return len(p.slots) }

// Get leases a free identity, blocking until one is available.
func (p *IDPool) Get() int {
	for spin := 0; ; spin++ {
		for i := range p.slots {
			if p.slots[i].v.CompareAndSwap(0, 1) {
				return i
			}
		}
		runtime.Gosched()
	}
}

// TryGet leases a free identity without blocking; ok reports success.
func (p *IDPool) TryGet() (id int, ok bool) {
	for i := range p.slots {
		if p.slots[i].v.CompareAndSwap(0, 1) {
			return i, true
		}
	}
	return 0, false
}

// Put returns a leased identity to the pool.
func (p *IDPool) Put(id int) {
	if id < 0 || id >= len(p.slots) {
		panic(fmt.Sprintf("renaming: invalid pool id %d", id))
	}
	if !p.slots[id].v.CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("renaming: returning id %d that is not leased", id))
	}
}
