// Package obs is the acquisition-metrics observability layer for the
// native (goroutine) stack. The paper counts remote memory references
// per acquisition; the simulator reproduces that metric exactly, but the
// sync/atomic implementations in internal/core run on real cache
// hardware where the analogous costs — spin polls, scheduler yields, CAS
// retries, slow-path takes — are invisible unless counted. A Metrics
// sink makes them visible: every counter lives alone on its cache line,
// every write is a plain atomic add, and a nil *Metrics is a valid sink
// whose every method is a no-op, so uninstrumented code paths keep their
// current cost (the nil-sink zero-overhead contract; see
// BenchmarkObsOverhead in internal/core).
//
// Snapshot is safe to call concurrently with writers: each counter is
// read atomically, though the cut across counters is not a consistent
// global state (a reader racing an Acquired call may see the acquisition
// counted but its latency bucket not yet incremented). Snapshots marshal
// to deterministic JSON — fixed field order, fixed-length histogram — so
// reports built from them have a stable schema across runs.
package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is an atomic counter alone on its cache line, preventing
// false sharing between independently-updated metrics.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reads the counter.
func (c *Counter) Load() int64 { return c.v.Load() }

// LatencyBuckets is the fixed number of power-of-two latency histogram
// buckets: bucket i counts acquisitions whose latency in nanoseconds
// has bit-length i (i.e. lies in [2^(i-1), 2^i) for i >= 1; bucket 0 is
// sub-nanosecond). 63 bits of nanoseconds is ~292 years, so the last
// bucket also absorbs any overflow.
const LatencyBuckets = 32

// Metrics is a sink of acquisition metrics shared by every layer of the
// native stack: internal/core feeds the acquisition, path, spin and CAS
// counters; internal/renaming the name counters; internal/resilient the
// applied/helping counters; internal/faultinject the crash charges. All
// methods are safe for concurrent use and are no-ops on a nil receiver,
// so a single `m *obs.Metrics` field, left nil, costs one predicted
// branch per call site.
type Metrics struct {
	acquires   Counter
	releases   Counter
	fastPath   Counter
	slowPath   Counter
	spinPolls  Counter
	yields     Counter
	casRetries Counter

	nameAttempts Counter
	tasFailures  Counter

	appliedOps    Counter
	helpingEvents Counter

	crashCharges Counter

	aborts    Counter
	deadlines Counter
	dupeHits  Counter

	holders Counter
	peak    Counter

	latency [LatencyBuckets]Counter
}

// New creates an empty metrics sink.
func New() *Metrics { return &Metrics{} }

// latencyBucket maps a duration to its power-of-two histogram bucket.
func latencyBucket(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	return b
}

// Acquired records one completed acquisition with its entry latency:
// the acquisition count, the latency histogram, and current/peak slot
// occupancy.
func (m *Metrics) Acquired(d time.Duration) {
	if m == nil {
		return
	}
	m.acquires.Add(1)
	m.latency[latencyBucket(d)].Add(1)
	cur := m.holders.v.Add(1)
	for {
		p := m.peak.v.Load()
		if cur <= p || m.peak.v.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Released records one release, returning the slot.
func (m *Metrics) Released() {
	if m == nil {
		return
	}
	m.releases.Add(1)
	m.holders.v.Add(-1)
}

// Path records which path a fast-path composition took: slow=false is a
// bounded-decrement fast take, slow=true paid the arbitration-tree (or
// nested-level) slow path.
func (m *Metrics) Path(slow bool) {
	if m == nil {
		return
	}
	if slow {
		m.slowPath.Add(1)
	} else {
		m.fastPath.Add(1)
	}
}

// Spun records one busy-wait: polls condition evaluations, of which
// yields handed the processor back via runtime.Gosched. Call once per
// wait with locally-accumulated totals, not per poll.
func (m *Metrics) Spun(polls, yields int64) {
	if m == nil {
		return
	}
	m.spinPolls.Add(polls)
	if yields != 0 {
		m.yields.Add(yields)
	}
}

// CASRetried records n failed compare-and-swap attempts of a bounded
// decrement (the paper's footnote-2 primitive) — the native analogue of
// the coherence traffic a contended counter generates.
func (m *Metrics) CASRetried(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.casRetries.Add(n)
}

// NameAcquired records one long-lived renaming acquisition that observed
// tasFailures failed test&set probes before settling on a name.
func (m *Metrics) NameAcquired(tasFailures int64) {
	if m == nil {
		return
	}
	m.nameAttempts.Add(1)
	if tasFailures != 0 {
		m.tasFailures.Add(tasFailures)
	}
}

// OpApplied records one operation applied through the wait-free
// universal construction on behalf of its caller.
func (m *Metrics) OpApplied() {
	if m == nil {
		return
	}
	m.appliedOps.Add(1)
}

// Helped records n operations a process applied on behalf of *other*
// processes while installing a new version — the helping that makes the
// construction wait-free.
func (m *Metrics) Helped(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.helpingEvents.Add(n)
}

// CrashCharged records one injected crash that permanently consumed a
// slot (entry, holding and mid-renaming crashes; exit crashes cost
// none).
func (m *Metrics) CrashCharged() {
	if m == nil {
		return
	}
	m.crashCharges.Add(1)
}

// Aborted records one bounded withdrawal from an entry section: an
// AcquireCtx whose context expired, or a TryAcquire that found no free
// slot, gave up before a slot was granted. Unlike a crash charge a
// withdrawal costs no slot — the entry section's bookkeeping is undone.
func (m *Metrics) Aborted() {
	if m == nil {
		return
	}
	m.aborts.Add(1)
}

// DeadlineExpired records one operation cut short by a deadline at the
// serving edge: a per-op timeout, or the idle watchdog reclaiming a
// silent session's identity.
func (m *Metrics) DeadlineExpired() {
	if m == nil {
		return
	}
	m.deadlines.Add(1)
}

// DupeHit records one mutation answered from the dedup window at the
// serving edge: a retried operation whose first application was
// already linearized, re-acknowledged with its original result instead
// of being applied again.
func (m *Metrics) DupeHit() {
	if m == nil {
		return
	}
	m.dupeHits.Add(1)
}

// Snapshot is a point-in-time copy of a Metrics sink. Field order (and
// therefore JSON key order) is fixed, and the latency histogram always
// has LatencyBuckets entries, so the marshalled schema is deterministic.
type Snapshot struct {
	// Acquires and Releases count completed slot acquisitions and
	// returns across every instrumented object sharing the sink.
	Acquires int64 `json:"acquires"`
	Releases int64 `json:"releases"`
	// FastPathTakes and SlowPathTakes split acquisitions of fast-path
	// compositions by the path taken.
	FastPathTakes int64 `json:"fast_path_takes"`
	SlowPathTakes int64 `json:"slow_path_takes"`
	// SpinPolls counts busy-wait condition evaluations; Yields counts
	// the runtime.Gosched calls interleaved among them.
	SpinPolls int64 `json:"spin_polls"`
	Yields    int64 `json:"yields"`
	// CASRetries counts failed bounded-decrement CAS attempts.
	CASRetries int64 `json:"cas_retries"`
	// NameAttempts counts long-lived renaming acquisitions; TASFailures
	// the failed test&set probes they paid.
	NameAttempts int64 `json:"name_attempts"`
	TASFailures  int64 `json:"tas_failures"`
	// AppliedOps counts operations applied through the universal
	// construction; HelpingEvents those applied on behalf of others.
	AppliedOps    int64 `json:"applied_ops"`
	HelpingEvents int64 `json:"helping_events"`
	// CrashCharges counts injected slot-costing crashes.
	CrashCharges int64 `json:"crash_charges"`
	// Aborts counts bounded withdrawals from entry sections (expired
	// AcquireCtx contexts and failed TryAcquires); DeadlineExpirations
	// counts operations cut short by serving-edge deadlines.
	Aborts              int64 `json:"aborts"`
	DeadlineExpirations int64 `json:"deadline_expirations"`
	// DupeHits counts mutations answered from the dedup window (retried
	// ops re-acknowledged without re-applying).
	DupeHits int64 `json:"dupe_hits"`
	// CurrentHolders and PeakHolders track slot occupancy.
	CurrentHolders int64 `json:"current_holders"`
	PeakHolders    int64 `json:"peak_holders"`
	// LatencyNSPow2[i] counts acquisitions whose entry latency in
	// nanoseconds has bit-length i (power-of-two buckets).
	LatencyNSPow2 [LatencyBuckets]int64 `json:"latency_ns_pow2"`
}

// Snapshot copies the sink's counters. Safe to call concurrently with
// writers; a nil receiver yields the zero Snapshot.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.Acquires = m.acquires.Load()
	s.Releases = m.releases.Load()
	s.FastPathTakes = m.fastPath.Load()
	s.SlowPathTakes = m.slowPath.Load()
	s.SpinPolls = m.spinPolls.Load()
	s.Yields = m.yields.Load()
	s.CASRetries = m.casRetries.Load()
	s.NameAttempts = m.nameAttempts.Load()
	s.TASFailures = m.tasFailures.Load()
	s.AppliedOps = m.appliedOps.Load()
	s.HelpingEvents = m.helpingEvents.Load()
	s.CrashCharges = m.crashCharges.Load()
	s.Aborts = m.aborts.Load()
	s.DeadlineExpirations = m.deadlines.Load()
	s.DupeHits = m.dupeHits.Load()
	s.CurrentHolders = m.holders.Load()
	s.PeakHolders = m.peak.Load()
	for i := range s.LatencyNSPow2 {
		s.LatencyNSPow2[i] = m.latency[i].Load()
	}
	return s
}

// JSON marshals the snapshot to its deterministic encoding.
func (s Snapshot) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Snapshot contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("obs: snapshot encoding failed: %v", err))
	}
	return b
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "acquires=%d releases=%d fast=%d slow=%d", s.Acquires, s.Releases, s.FastPathTakes, s.SlowPathTakes)
	fmt.Fprintf(&b, " spin_polls=%d yields=%d cas_retries=%d", s.SpinPolls, s.Yields, s.CASRetries)
	fmt.Fprintf(&b, " names=%d tas_failures=%d", s.NameAttempts, s.TASFailures)
	fmt.Fprintf(&b, " applied=%d helped=%d crash_charges=%d", s.AppliedOps, s.HelpingEvents, s.CrashCharges)
	fmt.Fprintf(&b, " aborts=%d deadlines=%d dupe_hits=%d", s.Aborts, s.DeadlineExpirations, s.DupeHits)
	fmt.Fprintf(&b, " holders=%d peak=%d p50_acquire=%s", s.CurrentHolders, s.PeakHolders, s.QuantileAcquire(0.5))
	return b.String()
}

// QuantileAcquire reports an upper bound on the q-quantile acquisition
// latency from the power-of-two histogram (the upper edge of the bucket
// the quantile falls in). Zero when nothing was recorded.
func (s Snapshot) QuantileAcquire(q float64) time.Duration {
	total := int64(0)
	for _, c := range s.LatencyNSPow2 {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range s.LatencyNSPow2 {
		seen += c
		if seen >= target {
			return time.Duration(int64(1) << uint(i))
		}
	}
	return time.Duration(int64(1) << (LatencyBuckets - 1))
}
