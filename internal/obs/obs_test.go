package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsValid: every method must be a no-op on a nil receiver —
// the contract that lets instrumented code run uninstrumented at the
// cost of one branch.
func TestNilSinkIsValid(t *testing.T) {
	var m *Metrics
	m.Acquired(time.Microsecond)
	m.Released()
	m.Path(true)
	m.Path(false)
	m.Spun(10, 2)
	m.CASRetried(3)
	m.NameAcquired(1)
	m.OpApplied()
	m.Helped(2)
	m.CrashCharged()
	m.Aborted()
	m.DeadlineExpired()
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil sink snapshot not zero: %+v", s)
	}
}

func TestCountersRoundTrip(t *testing.T) {
	m := New()
	m.Acquired(3 * time.Nanosecond) // bucket 2 (bit-length of 3)
	m.Acquired(3 * time.Nanosecond)
	m.Path(false)
	m.Acquired(1 << 20 * time.Nanosecond) // bucket 21
	m.Path(true)
	m.Released()
	m.Spun(40, 5)
	m.CASRetried(7)
	m.NameAcquired(2)
	m.OpApplied()
	m.Helped(3)
	m.CrashCharged()
	m.Aborted()
	m.Aborted()
	m.DeadlineExpired()

	s := m.Snapshot()
	if s.Acquires != 3 || s.Releases != 1 {
		t.Fatalf("acquires/releases = %d/%d, want 3/1", s.Acquires, s.Releases)
	}
	if s.FastPathTakes != 1 || s.SlowPathTakes != 1 {
		t.Fatalf("fast/slow = %d/%d, want 1/1", s.FastPathTakes, s.SlowPathTakes)
	}
	if s.SpinPolls != 40 || s.Yields != 5 || s.CASRetries != 7 {
		t.Fatalf("spin/yield/cas = %d/%d/%d", s.SpinPolls, s.Yields, s.CASRetries)
	}
	if s.NameAttempts != 1 || s.TASFailures != 2 {
		t.Fatalf("names/tas = %d/%d", s.NameAttempts, s.TASFailures)
	}
	if s.AppliedOps != 1 || s.HelpingEvents != 3 || s.CrashCharges != 1 {
		t.Fatalf("applied/helped/charges = %d/%d/%d", s.AppliedOps, s.HelpingEvents, s.CrashCharges)
	}
	if s.Aborts != 2 || s.DeadlineExpirations != 1 {
		t.Fatalf("aborts/deadlines = %d/%d, want 2/1", s.Aborts, s.DeadlineExpirations)
	}
	if s.CurrentHolders != 2 || s.PeakHolders != 3 {
		t.Fatalf("holders/peak = %d/%d, want 2/3", s.CurrentHolders, s.PeakHolders)
	}
	if s.LatencyNSPow2[2] != 2 || s.LatencyNSPow2[21] != 1 {
		t.Fatalf("latency histogram wrong: %v", s.LatencyNSPow2)
	}
}

func TestLatencyBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clock weirdness must not panic or underflow
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{time.Duration(1) << 40, LatencyBuckets - 1}, // overflow clamps
	}
	for _, c := range cases {
		if got := latencyBucket(c.d); got != c.want {
			t.Errorf("latencyBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestPeakUnderConcurrency: peak occupancy must be the maximum of the
// concurrent holder count, not a torn read.
func TestPeakUnderConcurrency(t *testing.T) {
	m := New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Acquired(0)
				m.Released()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.CurrentHolders != 0 {
		t.Fatalf("holders = %d after balanced acquire/release", s.CurrentHolders)
	}
	if s.PeakHolders < 1 || s.PeakHolders > workers {
		t.Fatalf("peak = %d outside [1,%d]", s.PeakHolders, workers)
	}
	if s.Acquires != workers*1000 || s.Releases != workers*1000 {
		t.Fatalf("acquires/releases = %d/%d", s.Acquires, s.Releases)
	}
}

// TestSnapshotJSONDeterministicSchema: same counters, same bytes; and
// the schema (key set and order) is fixed, including the full-length
// histogram.
func TestSnapshotJSONDeterministicSchema(t *testing.T) {
	m := New()
	m.Acquired(time.Microsecond)
	a, b := m.Snapshot().JSON(), m.Snapshot().JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("same state marshalled differently:\n%s\n%s", a, b)
	}
	var decoded map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"acquires", "releases", "fast_path_takes", "slow_path_takes",
		"spin_polls", "yields", "cas_retries", "name_attempts",
		"tas_failures", "applied_ops", "helping_events", "crash_charges",
		"aborts", "deadline_expirations",
		"current_holders", "peak_holders", "latency_ns_pow2",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing key %q", key)
		}
	}
	hist, ok := decoded["latency_ns_pow2"].([]any)
	if !ok || len(hist) != LatencyBuckets {
		t.Fatalf("histogram must marshal as a fixed %d-entry array, got %v", LatencyBuckets, decoded["latency_ns_pow2"])
	}
}

func TestQuantileAcquire(t *testing.T) {
	var s Snapshot
	if s.QuantileAcquire(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	s.LatencyNSPow2[3] = 9 // nine acquisitions in [4ns, 8ns)
	s.LatencyNSPow2[10] = 1
	if got := s.QuantileAcquire(0.5); got != 8 {
		t.Fatalf("p50 = %v, want 8ns bucket edge", got)
	}
	if got := s.QuantileAcquire(1.0); got != 1<<10 {
		t.Fatalf("p100 = %v, want top occupied bucket edge", got)
	}
}
