package server

import (
	"fmt"
	"strconv"
	"strings"

	"kexclusion/internal/wire"
)

// promPhaseNames is the label set of the kexserved_phase one-hot gauge:
// every lifecycle phase, alphabetically sorted. A phase_test keeps it in
// lock-step with the Phase enum.
var promPhaseNames = []string{"degraded", "draining", "recovering", "running", "starting", "stopped"}

// renderMetrics renders a stats snapshot in the Prometheus text
// exposition format (version 0.0.4). It is a pure function of its
// arguments — the process-level gauges (goroutines, open fds) are
// parameters, not sampled here — so a golden test can pin the output
// byte-for-byte.
//
// Metric families are emitted in strict alphabetical order and every
// family carries HELP and TYPE lines, so scrapes diff cleanly and the
// order never depends on map iteration. Counters end in _total;
// instantaneous values are gauges. Per-shard families carry a shard
// label and one sample per shard, in shard order.
func renderMetrics(st wire.Stats, goroutines, openFDs int) []byte {
	var b strings.Builder
	scalar := func(name, typ, help string, v int64) {
		fmt.Fprintf(&b, "# HELP kexserved_%s %s\n# TYPE kexserved_%s %s\nkexserved_%s %d\n",
			name, help, name, typ, name, v)
	}
	gauge := func(name, help string, v int64) { scalar(name, "gauge", help, v) }
	counter := func(name, help string, v int64) { scalar(name, "counter", help, v) }
	shardFamily := func(name, typ, help string, val func(s wire.Stats, i int) string) {
		fmt.Fprintf(&b, "# HELP kexserved_shard_%s %s\n# TYPE kexserved_shard_%s %s\n",
			name, help, name, typ)
		for i := range st.PerShard {
			fmt.Fprintf(&b, "kexserved_shard_%s{shard=%q} %s\n", name, strconv.Itoa(i), val(st, i))
		}
	}
	shardCounter := func(name, help string, field func(wire.Stats, int) int64) {
		shardFamily(name, "counter", help, func(s wire.Stats, i int) string {
			return strconv.FormatInt(field(s, i), 10)
		})
	}
	shardGauge := func(name, help string, field func(wire.Stats, int) int64) {
		shardFamily(name, "gauge", help, func(s wire.Stats, i int) string {
			return strconv.FormatInt(field(s, i), 10)
		})
	}
	quantileGauge := func(name, help string, q float64) {
		shardFamily(name, "gauge", help, func(s wire.Stats, i int) string {
			return strconv.FormatFloat(s.PerShard[i].QuantileAcquire(q).Seconds(), 'g', -1, 64)
		})
	}
	b01 := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}

	gauge("active_sessions", "Currently leased process identities.", st.ActiveSessions)
	gauge("admit_queue", "Connections parked waiting for an identity (the shed watermarks' input).", st.AdmitQueue)
	counter("admitted_total", "Connections granted an identity lease.", st.Admitted)
	counter("applied_dupes_total", "Mutations answered from the dedup window without re-applying.", st.AppliedDupes)
	counter("batch_atomic_total", "Atomic groups committed all-or-nothing under one WAL record.", st.BatchAtomic)
	gauge("draining", "1 while graceful shutdown is in progress.", b01(st.Draining))
	gauge("goroutines", "Goroutines in the server process.", int64(goroutines))
	counter("idle_reclaims_total", "Sessions torn down by the idle watchdog.", st.IdleReclaims)
	gauge("inflight_ops", "Object operations currently executing (the shed ceiling's input).", st.InflightOps)
	gauge("k", "Resiliency level: concurrent holders per shard.", int64(st.K))
	counter("lease_demotions_total", "Shards self-demoted on leader lease expiry (0 off-cluster).", st.LeaseDemotions)
	counter("lease_expirations_total", "Leader lease held-to-expired transitions (0 off-cluster).", st.LeaseExpirations)
	gauge("lease_held", "1 while a quorum of peers witnesses this node's leader lease (vacuously 1 off-cluster and at quorum 1).", b01(st.LeaseHeld))
	gauge("n", "Process identities (max concurrent sessions).", int64(st.N))
	counter("notprimary_redirects_total", "Operations refused with the owning primary's address (never applied here).", st.NotPrimaryRedirects)
	counter("obj_map_ops_total", "Completed kx05 operations on map objects.", st.ObjMapOps)
	counter("obj_queue_ops_total", "Completed kx05 operations on queue objects.", st.ObjQueueOps)
	counter("obj_register_ops_total", "Completed kx05 operations on named register objects.", st.ObjRegisterOps)
	counter("obj_snapshot_ops_total", "Completed kx05 operations on k-slot snapshot objects.", st.ObjSnapshotOps)
	counter("op_deadlines_total", "Operations withdrawn on per-op deadline expiry (never applied).", st.OpDeadlines)
	gauge("open_fds", "Open file descriptors in the server process (-1 if unreadable).", int64(openFDs))

	fmt.Fprintf(&b, "# HELP kexserved_phase Server lifecycle phase as a one-hot gauge.\n# TYPE kexserved_phase gauge\n")
	for _, name := range promPhaseNames {
		fmt.Fprintf(&b, "kexserved_phase{phase=%q} %d\n", name, b01(st.Phase == name))
	}

	counter("quorum_acks_total", "Client acks released by the replication quorum gate.", st.QuorumAcks)
	counter("read_fastpath_total", "Object reads served from committed state without touching slot, WAL, or quorum.", st.ReadFastpath)

	ready := st.Phase == PhaseRunning.String() || st.Phase == PhaseDegraded.String()
	gauge("ready", "1 when the server passes its readiness probe (running or degraded).", b01(ready))
	counter("reclaimed_total", "Identity leases returned to the pool.", st.Reclaimed)
	gauge("recovered_ops", "Mutations reconstructed from the data directory at startup.", st.RecoveredOps)
	counter("rejected_total", "Connections rejected by admission backpressure.", st.Rejected)
	gauge("replica_lag_lsn", "Worst follower lag behind this node's WAL end, in records (0 off-cluster).", st.ReplicaLagLSN)
	gauge("restart_count", "Prior incarnations that opened this data directory.", st.RestartCount)

	shardCounter("aborts_total", "Bounded withdrawals from entry sections.", func(s wire.Stats, i int) int64 { return s.PerShard[i].Aborts })
	quantileGauge("acquire_latency_p50_seconds", "Median slot-acquisition latency (upper bucket edge).", 0.5)
	quantileGauge("acquire_latency_p99_seconds", "99th-percentile slot-acquisition latency (upper bucket edge).", 0.99)
	shardCounter("acquires_total", "Completed slot acquisitions.", func(s wire.Stats, i int) int64 { return s.PerShard[i].Acquires })
	shardCounter("applied_ops_total", "Operations applied through the universal construction.", func(s wire.Stats, i int) int64 { return s.PerShard[i].AppliedOps })
	shardCounter("cas_retries_total", "Failed bounded-decrement CAS attempts.", func(s wire.Stats, i int) int64 { return s.PerShard[i].CASRetries })
	shardCounter("crash_charges_total", "Injected slot-costing crashes.", func(s wire.Stats, i int) int64 { return s.PerShard[i].CrashCharges })
	shardGauge("current_holders", "Slots currently held.", func(s wire.Stats, i int) int64 { return s.PerShard[i].CurrentHolders })
	shardCounter("deadline_expirations_total", "Operations cut short by serving-edge deadlines.", func(s wire.Stats, i int) int64 { return s.PerShard[i].DeadlineExpirations })
	shardCounter("dupe_hits_total", "Mutations answered from the dedup window.", func(s wire.Stats, i int) int64 { return s.PerShard[i].DupeHits })
	shardCounter("fast_path_takes_total", "Acquisitions that took the bounded-decrement fast path.", func(s wire.Stats, i int) int64 { return s.PerShard[i].FastPathTakes })
	shardCounter("helping_events_total", "Operations applied on behalf of other processes.", func(s wire.Stats, i int) int64 { return s.PerShard[i].HelpingEvents })
	shardCounter("name_attempts_total", "Long-lived renaming acquisitions.", func(s wire.Stats, i int) int64 { return s.PerShard[i].NameAttempts })
	shardGauge("peak_holders", "Peak concurrent slot holders.", func(s wire.Stats, i int) int64 { return s.PerShard[i].PeakHolders })
	shardCounter("releases_total", "Slot returns.", func(s wire.Stats, i int) int64 { return s.PerShard[i].Releases })
	shardCounter("slow_path_takes_total", "Acquisitions that paid the arbitration-tree slow path.", func(s wire.Stats, i int) int64 { return s.PerShard[i].SlowPathTakes })
	shardCounter("spin_polls_total", "Busy-wait condition evaluations.", func(s wire.Stats, i int) int64 { return s.PerShard[i].SpinPolls })
	shardCounter("tas_failures_total", "Failed test&set probes during renaming.", func(s wire.Stats, i int) int64 { return s.PerShard[i].TASFailures })
	shardCounter("yields_total", "Scheduler yields during busy waits.", func(s wire.Stats, i int) int64 { return s.PerShard[i].Yields })

	gauge("shards", "Independent objects in the table.", int64(st.Shards))
	counter("shed_admissions_total", "Connections refused by the load-shedding watermark policy.", st.ShedAdmissions)
	counter("shed_ops_total", "Operations refused by the in-flight ceiling (never applied).", st.ShedOps)

	return []byte(b.String())
}
