package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestMaybeSnapshotCadenceInvariant hammers the applied-op counter from
// many goroutines and checks the conservation law the subtract-based
// cadence provides: every counted mutation is either still pending in
// sinceSnap or accounted to a snapshot round. The old Store(0) reset
// dropped the ops that raced in between the Add and the reset, so the
// invariant is exactly the bug's regression test.
func TestMaybeSnapshotCadenceInvariant(t *testing.T) {
	const every = 8
	s, err := New(Config{
		N: 4, K: 2, Shards: 2,
		DataDir:       t.TempDir(),
		SnapshotEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.closeLog()

	const goroutines, perG = 16, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.maybeSnapshot()
			}
		}()
	}
	wg.Wait()
	s.snapWg.Wait()

	total := int64(goroutines * perG)
	pending, snaps := s.sinceSnap.Load(), s.snaps.Load()
	if pending+every*snaps != total {
		t.Fatalf("cadence leaked ops: sinceSnap=%d + %d×snaps=%d ≠ %d counted",
			pending, every, snaps, total)
	}
	if snaps == 0 {
		t.Fatalf("no snapshot rounds ran for %d ops with SnapshotEvery=%d", total, every)
	}
}

// tempError satisfies the Temporary() probe Serve uses to classify
// accept failures, the same shape net.ErrClosed-era syscall errors had.
type tempError struct{}

func (tempError) Error() string   { return "accept: too many open files" }
func (tempError) Temporary() bool { return true }

// flakyListener fails Accept with temporary errors a fixed number of
// times, then a permanent one.
type flakyListener struct {
	mu    sync.Mutex
	temps int
	calls int
	perm  error
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls++
	if l.calls <= l.temps {
		return nil, tempError{}
	}
	return nil, l.perm
}
func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestServeRetriesTemporaryAcceptErrors plants a listener that fails
// with EMFILE-shaped temporary errors before a permanent one: Serve
// must back off and retry through the temps (never killing the accept
// loop on a transient) and surface only the permanent error.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	s, err := New(Config{N: 2, K: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	perm := errors.New("listener torn down")
	ln := &flakyListener{temps: 3, perm: perm}
	s.ln = ln

	start := time.Now()
	if err := s.Serve(); !errors.Is(err, perm) {
		t.Fatalf("Serve returned %v, want the permanent error", err)
	}
	if ln.calls != ln.temps+1 {
		t.Fatalf("Accept called %d times, want %d (each temp retried once)", ln.calls, ln.temps+1)
	}
	// Backoff 5ms, 10ms, 20ms between the four attempts.
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("Serve retried in %v, want ≥35ms of backoff", elapsed)
	}
}

// deadlineRecorderConn records the order of deadline arming vs writes,
// to pin the pre-admission hello contract: the write deadline is set
// BEFORE the refusal hello hits the socket.
type deadlineRecorderConn struct {
	mu     sync.Mutex
	events []string
}

func (c *deadlineRecorderConn) note(ev string) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}
func (c *deadlineRecorderConn) Read([]byte) (int, error) { return 0, io.EOF }
func (c *deadlineRecorderConn) Write(p []byte) (int, error) {
	c.note("write")
	return len(p), nil
}
func (c *deadlineRecorderConn) Close() error         { return nil }
func (c *deadlineRecorderConn) LocalAddr() net.Addr  { return &net.TCPAddr{} }
func (c *deadlineRecorderConn) RemoteAddr() net.Addr { return &net.TCPAddr{} }
func (c *deadlineRecorderConn) SetDeadline(time.Time) error {
	c.note("deadline")
	return nil
}
func (c *deadlineRecorderConn) SetReadDeadline(time.Time) error { return nil }
func (c *deadlineRecorderConn) SetWriteDeadline(t time.Time) error {
	if t.IsZero() {
		return nil
	}
	c.note("deadline")
	return nil
}

// TestDrainHelloArmsWriteDeadlineFirst drives handle against a draining
// server with an idle watchdog configured: the busy hello's write must
// be preceded by a write deadline, so a peer that never reads cannot
// pin the goroutine (and Shutdown) through a full TCP buffer.
func TestDrainHelloArmsWriteDeadlineFirst(t *testing.T) {
	s, err := New(Config{N: 2, K: 1, Shards: 1, IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.lc.advance(PhaseRunning)
	s.lc.advance(PhaseDraining)

	conn := &deadlineRecorderConn{}
	s.wg.Add(1)
	s.handle(conn)

	conn.mu.Lock()
	defer conn.mu.Unlock()
	if len(conn.events) < 2 || conn.events[0] != "deadline" {
		t.Fatalf("events %v: want a write deadline armed before the hello write", conn.events)
	}
	wrote := false
	for _, ev := range conn.events {
		if ev == "write" {
			wrote = true
		}
	}
	if !wrote {
		t.Fatalf("events %v: draining hello never reached the socket", conn.events)
	}
}
