package client

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/wire"
)

// scriptedEndpoint accepts one connection per script entry, running the
// entries in accept order. It returns the address and a counter of
// requests seen across all connections.
func scriptedEndpoint(t *testing.T, scripts ...func(net.Conn, *atomic.Int64)) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	reqs := &atomic.Int64{}
	go func() {
		for _, script := range scripts {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			script(conn, reqs)
			conn.Close()
		}
	}()
	return ln.Addr().String(), reqs
}

// serveOK admits the peer and answers n requests with echo semantics
// (Value = Arg), then returns (closing the conn).
func serveOK(n int) func(net.Conn, *atomic.Int64) {
	return func(conn net.Conn, reqs *atomic.Int64) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		for i := 0; i < n; i++ {
			req, err := wire.ReadRequest(conn)
			if err != nil {
				return
			}
			reqs.Add(1)
			wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
		}
	}
}

// serveBusy rejects admission with a Retry-After hint.
func serveBusy(hintMillis uint32) func(net.Conn, *atomic.Int64) {
	return func(conn net.Conn, _ *atomic.Int64) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusBusy, RetryAfterMillis: hintMillis, Msg: "all leased"})
	}
}

// serveDropAfterRequest admits, reads one request, and closes without
// answering — the ambiguous transport failure.
func serveDropAfterRequest(conn net.Conn, reqs *atomic.Int64) {
	wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
	if _, err := wire.ReadRequest(conn); err == nil {
		reqs.Add(1)
	}
}

func TestSetOpTimeoutPoisonsConnection(t *testing.T) {
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		time.Sleep(5 * time.Second) // never answer
	})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(100 * time.Millisecond)

	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("op deadline not honored: took %v", elapsed)
	}
	// The stream may hold a late response now: the client must refuse
	// further use rather than desynchronize.
	if err := c.Ping(); !errors.Is(err, ErrBroken) {
		t.Fatalf("second op after missed deadline: got %v, want ErrBroken", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&BusyError{Err: &wire.Error{Status: wire.StatusBusy}}, true},
		// An op-level busy (load shed): refused before touching the
		// table, so it is as safe to retry as an admission-level one.
		{&wire.Error{Status: wire.StatusBusy}, true},
		{&wire.Error{Status: wire.StatusTimeout}, true},
		{&wire.Error{Status: wire.StatusDraining}, true},
		{&wire.Error{Status: wire.StatusBadShard}, false},
		{&wire.Error{Status: wire.StatusInternal}, false},
		{ErrBroken, false},
		{io.EOF, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffGrowsAndHonorsHint(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	rng := rand.New(rand.NewSource(7))
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		d := p.backoff(rng, attempt, 0)
		ceil := p.BaseDelay << (attempt - 1)
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		if d < ceil/2 || d > ceil {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ceil/2, ceil)
		}
		if ceil > prevMax {
			prevMax = ceil
		}
	}
	// A server hint floors the delay.
	if d := p.backoff(rng, 1, 500*time.Millisecond); d != 500*time.Millisecond {
		t.Errorf("hint not honored: %v", d)
	}
	// A hint BELOW the computed backoff is a floor, not a replacement:
	// an eager server hint must never shrink the client's own backoff,
	// or a shedding server would teach its clients to hammer it faster.
	for attempt := 1; attempt <= 5; attempt++ {
		ceil := p.BaseDelay << (attempt - 1)
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		if d := p.backoff(rng, attempt, time.Microsecond); d < ceil/2 {
			t.Errorf("attempt %d: a %v hint shrank the backoff to %v (floor is %v)", attempt, time.Microsecond, d, ceil/2)
		}
	}
	// Same seed, same sequence: the jitter is deterministic.
	a := p.backoff(rand.New(rand.NewSource(42)), 3, 0)
	b := p.backoff(rand.New(rand.NewSource(42)), 3, 0)
	if a != b {
		t.Errorf("seeded backoff not deterministic: %v vs %v", a, b)
	}
}

func TestReconnectingHealsDroppedConnection(t *testing.T) {
	addr, reqs := scriptedEndpoint(t,
		serveOK(1),   // first conn: one ping, then the server drops it
		serveOK(100), // second conn: healthy
	)
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 3, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ping(); err != nil {
		t.Fatal(err)
	}
	// The endpoint has closed conn 1; the next idempotent op must ride
	// through the failure onto conn 2.
	if v, err := r.Get(0); err != nil || v != 0 {
		t.Fatalf("Get across a drop = %d, %v", v, err)
	}
	if r.Reconnects() != 2 {
		t.Fatalf("Reconnects = %d, want 2", r.Reconnects())
	}
	if reqs.Load() < 2 {
		t.Fatalf("server saw %d requests, want >= 2", reqs.Load())
	}
}

func TestReconnectingRidesOutBusyWithHint(t *testing.T) {
	const hintMillis = 60
	addr, _ := scriptedEndpoint(t,
		serveBusy(hintMillis),
		serveOK(10),
	)
	start := time.Now()
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 5, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatalf("busy endpoint never admitted: %v", err)
	}
	defer r.Close()
	if elapsed := time.Since(start); elapsed < hintMillis*time.Millisecond {
		t.Fatalf("redialed after %v, before the server's %dms hint", elapsed, hintMillis)
	}
	if err := r.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectingRetriesShedOpOnSameConnection: an op-level StatusBusy
// (the server's in-flight ceiling shed the operation) is retried over
// the SAME connection — the session survived; only the operation was
// refused — and the Retry-After hint carried in the response floors the
// backoff before the re-issue.
func TestReconnectingRetriesShedOpOnSameConnection(t *testing.T) {
	const hintMillis = 60
	addr, reqs := scriptedEndpoint(t,
		func(conn net.Conn, reqs *atomic.Int64) {
			wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
			// First op: shed with a hint in Value. Second op: applied.
			for i := 0; ; i++ {
				req, err := wire.ReadRequest(conn)
				if err != nil {
					return
				}
				reqs.Add(1)
				if i == 0 {
					wire.WriteResponse(conn, wire.Response{
						ID: req.ID, Status: wire.StatusBusy, Value: hintMillis,
						Data: []byte("server shedding load"),
					})
					continue
				}
				wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
			}
		},
	)
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 13, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	start := time.Now()
	if v, err := r.Add(0, 5); err != nil || v != 5 {
		t.Fatalf("Add through a shed = %d, %v", v, err)
	}
	if elapsed := time.Since(start); elapsed < hintMillis*time.Millisecond {
		t.Fatalf("re-issued after %v, before the server's %dms hint", elapsed, hintMillis)
	}
	if r.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1 (a shed op must not cost the connection)", r.Reconnects())
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (shed + re-issue)", got)
	}
}

func TestReconnectingRetriesWritesWithStableOpID(t *testing.T) {
	// Conn 1 swallows the Add (admits, reads the request, hangs up
	// without answering); conn 2 must then see the SAME mutation —
	// same nonzero session, same nonzero seq — re-issued, which is what
	// lets the server deduplicate instead of double-applying.
	seen := make(chan wire.Request, 2)
	capture := func(req wire.Request) {
		select {
		case seen <- req:
		default:
		}
	}
	addr, reqs := scriptedEndpoint(t,
		func(conn net.Conn, reqs *atomic.Int64) {
			wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
			if req, err := wire.ReadRequest(conn); err == nil {
				reqs.Add(1)
				capture(req)
			}
		},
		func(conn net.Conn, reqs *atomic.Int64) {
			wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
			for {
				req, err := wire.ReadRequest(conn)
				if err != nil {
					return
				}
				reqs.Add(1)
				capture(req)
				wire.WriteResponse(conn, wire.Response{
					ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagDuplicate, Value: 7,
				})
			}
		},
	)
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 9, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.AddOp(0, 7)
	if err != nil {
		t.Fatalf("Add across a dropped exchange failed: %v", err)
	}
	if res.Value != 7 || !res.WasDuplicate {
		t.Fatalf("OpResult = %+v, want Value 7 with WasDuplicate", res)
	}
	if r.DupeAcks() != 1 {
		t.Fatalf("DupeAcks = %d, want 1", r.DupeAcks())
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + re-issue)", got)
	}
	first, second := <-seen, <-seen
	if first.Session == 0 || first.Seq == 0 {
		t.Fatalf("mutation carried no op ID: session %#x seq %d", first.Session, first.Seq)
	}
	if first.Session != r.Session() {
		t.Fatalf("request session %#x != wrapper session %#x", first.Session, r.Session())
	}
	if second.Session != first.Session || second.Seq != first.Seq {
		t.Fatalf("re-issue changed the op ID: %#x/%d then %#x/%d",
			first.Session, first.Seq, second.Session, second.Seq)
	}
	if second.Kind != wire.KindAdd || second.Arg != 7 {
		t.Fatalf("re-issue mutated the request: %+v", second)
	}
}

// TestReconnectingSessionsUniquePerWrapper guards against the lost-
// update trap: session identity must never be derived from the jitter
// seed, because the seed is defaultable and shareable — two clients
// with the same (or default) seed sharing a session would collide in
// the server's dedup window, each answering the other's mutations.
func TestReconnectingSessionsUniquePerWrapper(t *testing.T) {
	addr, _ := scriptedEndpoint(t, serveOK(1), serveOK(1), serveOK(1))
	a, err := DialReconnecting(addr, RetryPolicy{Seed: 21}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := DialReconnecting(addr, RetryPolicy{Seed: 21}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	c, err := DialReconnecting(addr, RetryPolicy{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	for _, r := range []*Reconnecting{a, b, c} {
		if r.Session() == 0 {
			t.Fatal("session is zero (zero opts out of deduplication)")
		}
	}
	if a.Session() == b.Session() {
		t.Fatalf("two wrappers with the same seed share session %#x: their op IDs would collide", a.Session())
	}
	if a.Session() == c.Session() || b.Session() == c.Session() {
		t.Fatalf("sessions collided: %#x %#x %#x", a.Session(), b.Session(), c.Session())
	}
}

// TestReconnectingExplicitSessionHonored covers the deterministic
// opt-in: a policy carrying an explicit Session pins the identity.
func TestReconnectingExplicitSessionHonored(t *testing.T) {
	addr, _ := scriptedEndpoint(t, serveOK(1))
	r, err := DialReconnecting(addr, RetryPolicy{Session: 0xBEEF}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Session() != 0xBEEF {
		t.Fatalf("Session() = %#x, want explicit %#x", r.Session(), uint64(0xBEEF))
	}
}

func TestReconnectingBudgetExhausts(t *testing.T) {
	// Every admission attempt is met with busy and no hint.
	addr, _ := scriptedEndpoint(t,
		serveBusy(0), serveBusy(0), serveBusy(0),
	)
	_, err := DialReconnecting(addr, RetryPolicy{Seed: 11, MaxAttempts: 3, BaseDelay: time.Millisecond}, time.Second)
	if err == nil {
		t.Fatal("dial against an always-busy server succeeded")
	}
	if !strings.Contains(err.Error(), "budget of 3 attempts") {
		t.Fatalf("budget exhaustion not surfaced: %v", err)
	}
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("exhausted error does not unwrap to the last cause: %v", err)
	}
}

// serveNotPrimary admits the peer and answers n requests with a
// cluster redirect carrying hint as the owning primary's address.
func serveNotPrimary(n int, hint string) func(net.Conn, *atomic.Int64) {
	return func(conn net.Conn, reqs *atomic.Int64) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		for i := 0; i < n; i++ {
			req, err := wire.ReadRequest(conn)
			if err != nil {
				return
			}
			reqs.Add(1)
			wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusNotPrimary, Data: []byte(hint)})
		}
	}
}

func TestReconnectingFollowsNotPrimaryRedirect(t *testing.T) {
	owner, ownerReqs := scriptedEndpoint(t, serveOK(2))
	wrong, _ := scriptedEndpoint(t, serveNotPrimary(1, owner))

	r, err := DialReconnecting(wrong, RetryPolicy{Seed: 3, MaxAttempts: 2, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The redirected mutation lands on the owner with its original op ID.
	if v, err := r.Add(0, 5); err != nil || v != 5 {
		t.Fatalf("redirected Add = %d, %v", v, err)
	}
	if got := r.Redirects(); got != 1 {
		t.Fatalf("Redirects = %d, want 1", got)
	}
	// A redirect is routing, not failure: no backoff was slept and no
	// retry budget burned (MaxAttempts 2 would leave none to burn).
	if got := r.Retries(); got != 0 {
		t.Fatalf("redirect burned %d retries from the budget", got)
	}
	// The wrapper rotated: later operations dial the owner directly.
	if got := r.Addr(); got != owner {
		t.Fatalf("Addr = %q, want rotated owner %q", got, owner)
	}
	if v, err := r.Add(0, 7); err != nil || v != 7 {
		t.Fatalf("post-rotation Add = %d, %v", v, err)
	}
	if got := ownerReqs.Load(); got != 2 {
		t.Fatalf("owner saw %d requests, want 2", got)
	}
}

func TestReconnectingNotPrimaryWithoutHintBacksOff(t *testing.T) {
	// A node mid-failover knows it is not the owner but not who is: it
	// answers NotPrimary with no hint. The client keeps the connection
	// (the node still serves) and retries on the ordinary budget.
	addr, reqs := scriptedEndpoint(t, serveNotPrimary(2, ""))
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 5, MaxAttempts: 2, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	_, err = r.Get(0)
	if err == nil || !strings.Contains(err.Error(), "not_primary") {
		t.Fatalf("hint-less redirect storm resolved to %v", err)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want both budget attempts on one connection", got)
	}
	if got := r.Redirects(); got != 2 {
		t.Fatalf("Redirects = %d, want 2", got)
	}
	if got := r.Retries(); got != 1 {
		t.Fatalf("Retries = %d, want 1 backoff between the two attempts", got)
	}
}

func TestPipelineFollowsNotPrimaryRedirect(t *testing.T) {
	owner, _ := scriptedEndpoint(t, serveOK(3))
	wrong, _ := scriptedEndpoint(t, serveNotPrimary(3, owner))

	r, err := DialReconnecting(wrong, RetryPolicy{Seed: 7, MaxAttempts: 2, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	p := r.Pipeline(0)
	a := p.Add(0, 1)
	b := p.Add(0, 2)
	g := p.Get(0)
	if err := p.Flush(); err != nil {
		t.Fatalf("redirected burst: %v", err)
	}
	if res, err := a.Wait(); err != nil || res.Value != 1 {
		t.Fatalf("a = %+v, %v", res, err)
	}
	if res, err := b.Wait(); err != nil || res.Value != 2 {
		t.Fatalf("b = %+v, %v", res, err)
	}
	if res, err := g.Wait(); err != nil || res.Value != 0 {
		t.Fatalf("g = %+v, %v", res, err)
	}
	if got := r.Retries(); got != 0 {
		t.Fatalf("pipelined redirect burned %d retries from the budget", got)
	}
	if r.Redirects() == 0 {
		t.Fatal("pipelined redirect not counted")
	}
	if got := r.Addr(); got != owner {
		t.Fatalf("Addr = %q, want rotated owner %q", got, owner)
	}
}

// TestReconnectingRetriesInternalOnSameConnection: StatusInternal is
// retryable ONLY inside the wrapper (its op IDs make the ambiguous
// re-issue exactly-once — a bare client must not retry it, see
// TestRetryableClassification). The session survived — the server
// answered — so the retry stays on the same connection and pays the
// ordinary budget. This is the deposed-primary storm: quorum waits
// answer internal for up to a lease interval before the node demotes.
func TestReconnectingRetriesInternalOnSameConnection(t *testing.T) {
	addr, reqs := scriptedEndpoint(t, func(conn net.Conn, reqs *atomic.Int64) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return
		}
		reqs.Add(1)
		wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusInternal, Data: []byte("leader lease lost")})
		req, err = wire.ReadRequest(conn)
		if err != nil {
			return
		}
		reqs.Add(1)
		wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
	})
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 11, MaxAttempts: 3, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if v, err := r.Add(0, 9); err != nil || v != 9 {
		t.Fatalf("Add through an internal answer = %d, %v", v, err)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (same op ID re-issued)", got)
	}
	if got := r.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1: internal must not cost the connection", got)
	}
	if got := r.Retries(); got != 1 {
		t.Fatalf("Retries = %d, want 1: internal pays the ordinary budget", got)
	}
}

// serveNotPrimaryRetryAfter answers n requests with a hint-less
// NotPrimary carrying a Retry-After (the deposed-primary refusal: the
// ring collapsed to the refuser, so there is no redirect target, only
// "try again in a lease interval"), then serves.
func serveNotPrimaryRetryAfter(n int, millis int64) func(net.Conn, *atomic.Int64) {
	return func(conn net.Conn, reqs *atomic.Int64) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		for i := 0; i < n; i++ {
			req, err := wire.ReadRequest(conn)
			if err != nil {
				return
			}
			reqs.Add(1)
			wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusNotPrimary, Value: millis})
		}
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return
		}
		reqs.Add(1)
		wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
	}
}

// TestReconnectingNotPrimaryRetryAfterFloorsBackoff: a hint-less
// NotPrimary with a Retry-After must floor the backoff like a busy
// hint does — the hint is "the earliest a successor can exist", and
// spinning faster than that just burns the budget against a node that
// cannot serve yet.
func TestReconnectingNotPrimaryRetryAfterFloorsBackoff(t *testing.T) {
	const floor = 120 * time.Millisecond
	addr, reqs := scriptedEndpoint(t, serveNotPrimaryRetryAfter(1, floor.Milliseconds()))
	r, err := DialReconnecting(addr, RetryPolicy{Seed: 13, MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	if v, err := r.Add(0, 4); err != nil || v != 4 {
		t.Fatalf("Add through a Retry-After refusal = %d, %v", v, err)
	}
	if elapsed := time.Since(start); elapsed < floor {
		t.Fatalf("retry came back in %v, under the server's %v Retry-After floor", elapsed, floor)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 on the kept connection", got)
	}
	if got := r.Retries(); got != 1 {
		t.Fatalf("Retries = %d, want 1: a floored refusal pays the budget, it is not a free hop", got)
	}
}

// TestReconnectingIgnoresSelfHint: a refusal whose redirect hint is the
// very address the client dialed (an isolated node's ring collapses to
// itself) must be treated as hintless — backing off on the same
// connection — never as a rotation, which would redial the same node
// in a tight loop forever.
func TestReconnectingIgnoresSelfHint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	self := ln.Addr().String()
	reqs := &atomic.Int64{}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return
		}
		reqs.Add(1)
		wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusNotPrimary, Data: []byte(self)})
		req, err = wire.ReadRequest(conn)
		if err != nil {
			return
		}
		reqs.Add(1)
		wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
	}()

	r, err := DialReconnecting(self, RetryPolicy{Seed: 17, MaxAttempts: 3, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, err := r.Add(0, 6); err != nil || v != 6 {
		t.Fatalf("Add through a self-hint = %d, %v", v, err)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want both on the one kept connection", got)
	}
	if got := r.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1: a self-hint must not trigger a rotation redial", got)
	}
}

// TestReconnectingFallsBackToHomeWhenRedirectTargetDies is the failover
// healing path: a redirect rotates the client onto a primary that then
// dies. Redialing the dead address must fall back to the configured
// address — whose answer is current routing — instead of pinning the
// session to the corpse until the budget dies with it.
func TestReconnectingFallsBackToHomeWhenRedirectTargetDies(t *testing.T) {
	// A listener bound and immediately closed: dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	// Home: one connection that redirects to the dead address, then a
	// fresh connection that serves (the failover has resolved by the
	// time the client comes back).
	home, reqs := scriptedEndpoint(t, serveNotPrimary(1, dead), serveOK(1))
	r, err := DialReconnecting(home, RetryPolicy{Seed: 9, MaxAttempts: 6, BaseDelay: time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if v, err := r.Add(0, 5); err != nil || v != 5 {
		t.Fatalf("Add through a dead redirect = %d, %v", v, err)
	}
	if got := r.Addr(); got != home {
		t.Fatalf("Addr = %q, want fallback to home %q", got, home)
	}
	if got := r.Redirects(); got != 1 {
		t.Fatalf("Redirects = %d, want 1", got)
	}
	// The failed dial of the dead primary paid the ordinary budget.
	if got := r.Retries(); got < 1 {
		t.Fatalf("Retries = %d, want at least the dead-dial backoff", got)
	}
	// Same op ID on both issues: home saw the original and the re-issue.
	if got := reqs.Load(); got != 2 {
		t.Fatalf("home saw %d requests, want 2", got)
	}
}
