package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/wire"
)

// Retryable reports whether err is safe to retry for ANY operation —
// even one whose request carried no op ID — because the server
// guarantees the operation was never applied:
//
//   - BusyError: admission was refused — the session never existed.
//   - wire.StatusBusy: the server shed the operation under load (the
//     in-flight ceiling); it was refused before touching the table.
//   - wire.StatusTimeout: the per-op deadline expired while the
//     operation was still waiting for a k-assignment slot; it withdrew
//     from the entry section without touching the object.
//   - wire.StatusDraining: the server refused the operation up front.
//   - wire.StatusNotPrimary: a cluster member refused an op for a shard
//     it does not serve, before touching the object; the hinted owner
//     (Error.Msg) will apply it.
//
// Transport failures (ErrBroken, resets, EOF) are deliberately NOT
// here: the request may have been applied with its response lost, so
// blind re-issue of an ID-less mutation can double-apply. Reconnecting
// escapes that bind by giving every mutation an op ID (session × seq)
// and re-issuing it verbatim — the server's dedup window turns the
// ambiguous retry into the original result.
func Retryable(err error) bool {
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Status {
		case wire.StatusBusy, wire.StatusTimeout, wire.StatusDraining, wire.StatusNotPrimary:
			return true
		}
	}
	return false
}

// maxRedirects caps how many NotPrimary hops one operation will chase
// for free: enough for any real failover chain, small enough that two
// nodes disputing ownership mid-failover cannot bounce a client
// between them without cost forever. Past the cap a redirect still
// rotates — the hint is the freshest routing available — but pays the
// ordinary backoff budget, so the dispute terminates with the budget.
const maxRedirects = 8

// RetryPolicy shapes Reconnecting's backoff: exponential from BaseDelay
// to MaxDelay with full jitter, at most MaxAttempts tries per
// operation. The zero value gets sensible defaults; Seed makes the
// jitter sequence reproducible for tests and chaos harnesses.
type RetryPolicy struct {
	// MaxAttempts is the retry budget: total tries per operation
	// (first attempt included). Default 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. Default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps it. Default 2s.
	MaxDelay time.Duration
	// Seed fixes the jitter stream; 0 picks a fixed default seed (the
	// backoff is deterministic either way — pass different seeds to
	// decorrelate clients). The seed shapes ONLY the jitter, never the
	// wrapper's session identity: two clients sharing a seed must not
	// share an op-ID namespace, or the server's dedup window would
	// cross their operations.
	Seed int64
	// Session pins the wrapper's op-ID session identity, for harnesses
	// that need it deterministic. 0 (the default) draws a random
	// nonzero identity, which is what almost every caller wants: the
	// identity must be unique per wrapper, and anything derived from a
	// shared default would collide. Callers setting this are
	// responsible for uniqueness across concurrently live wrappers.
	Session uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff computes the sleep before retry number attempt (1-based),
// honoring the server's Retry-After hint as a floor: exponential
// growth, then full jitter in [delay/2, delay].
func (p RetryPolicy) backoff(rng *rand.Rand, attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	return d
}

// Reconnecting is a self-healing kexserved client: one logical session
// that redials through connection loss, honors the server's busy
// Retry-After hints, and retries EVERY operation within the policy's
// budget — reads and pings because they are idempotent, mutations
// because each carries a stable op ID (one session identity for the
// lifetime of the wrapper, one sequence number per logical mutation,
// reused verbatim on every re-issue), which the server deduplicates.
// A mutation whose ack was lost to a broken connection is simply sent
// again; if the first copy was applied, the answer comes back with
// WasDuplicate set and the original value. A reconnect admits under a
// fresh process identity; the watchdog on the server side is what
// guarantees the old one comes back to the pool.
//
// Methods are safe for concurrent use but serialize, like Client's.
type Reconnecting struct {
	addr        string // current dial target (rotated by cluster redirects)
	home        string // the configured address, the fallback when addr dies
	policy      RetryPolicy
	opTimeout   time.Duration
	dialTimeout time.Duration
	session     uint64

	mu    sync.Mutex
	c     *Client // nil between a drop and the next successful redial
	rng   *rand.Rand
	opSeq uint64

	reconnects atomic.Int64
	retries    atomic.Int64
	dupeAcks   atomic.Int64
	redirects  atomic.Int64
}

// DialReconnecting dials addr with the policy's budget (so a busy
// server parks the caller through backoff instead of failing the first
// admission), arming every operation with opTimeout (zero = unbounded).
func DialReconnecting(addr string, policy RetryPolicy, opTimeout time.Duration) (*Reconnecting, error) {
	policy = policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	r := &Reconnecting{
		addr:        addr,
		home:        addr,
		policy:      policy,
		opTimeout:   opTimeout,
		dialTimeout: 10 * time.Second,
		rng:         rand.New(rand.NewSource(seed)),
	}
	// One session identity for the wrapper's whole life. Random by
	// default — identity must be unique per wrapper, so it is never
	// derived from the (defaultable, shareable) jitter seed; a policy
	// with an explicit Session opts into determinism and owns
	// uniqueness.
	r.session = policy.Session
	if r.session == 0 {
		r.session = randomSession()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.connectLocked(1); err != nil {
		return nil, err
	}
	return r, nil
}

// connectLocked ensures a live connection, redialing with backoff from
// the given attempt number. Caller holds r.mu.
func (r *Reconnecting) connectLocked(attempt int) error {
	if r.c != nil {
		return nil
	}
	var lastErr error
	for ; attempt <= r.policy.MaxAttempts; attempt++ {
		c, err := DialTimeout(r.addr, r.dialTimeout)
		if err == nil {
			c.SetOpTimeout(r.opTimeout)
			// Every physical connection speaks for the same logical
			// session, so a mutation re-issued after a redial carries the
			// same op ID the lost copy did.
			c.SetSession(r.session)
			r.c = c
			r.reconnects.Add(1)
			return nil
		}
		lastErr = err
		var be *BusyError
		hint := time.Duration(0)
		if errors.As(err, &be) {
			hint = be.RetryAfter
		} else {
			// A connection-level failure (refused, reset, unreachable)
			// gets the budget — riding out partitions is the point — but
			// a typed non-busy rejection is a verdict, not weather.
			var we *wire.Error
			if errors.As(err, &we) {
				return err
			}
		}
		if r.addr != r.home {
			// The address a redirect rotated to has stopped answering —
			// a killed primary, typically. The hint is stale routing, not
			// weather: fall back to the configured address, whose answer
			// (apply, or a fresh redirect to the failover successor) is
			// current.
			r.addr = r.home
		}
		if attempt == r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		time.Sleep(r.policy.backoff(r.rng, attempt, hint))
	}
	return fmt.Errorf("client: budget of %d attempts exhausted: %w", r.policy.MaxAttempts, lastErr)
}

// isNotPrimary extracts a cluster redirect from err (nil otherwise);
// the returned error's Msg carries the owning primary's client address.
func isNotPrimary(err error) *wire.Error {
	var we *wire.Error
	if errors.As(err, &we) && we.Status == wire.StatusNotPrimary {
		return we
	}
	return nil
}

// isInternal reports a StatusInternal answer. Deliberately NOT part of
// the public Retryable: internal does not promise the op was never
// applied (an under-replicated write IS applied locally), so blind
// retry of an ID-less mutation could double-apply. Reconnecting alone
// may retry it, because its mutations carry op IDs the server's dedup
// window resolves to the original result and its reads are idempotent.
// The payoff is the deposed-primary storm: a partitioned primary
// answers internal (quorum wait failed) for up to a lease interval
// before it self-demotes to NotPrimary redirects — clients that ride
// it out with the budget land on the successor instead of failing.
func isInternal(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Status == wire.StatusInternal
}

// dropLocked discards a connection whose stream is no longer
// trustworthy. Caller holds r.mu.
func (r *Reconnecting) dropLocked() {
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// op runs one operation under the retry budget. Every operation —
// reads, pings, and ID-carrying mutations alike — survives transport
// failure: the closure is re-run against the healed connection, and
// the server's dedup window makes a re-issued mutation return its
// original result rather than double-apply. Typed terminal refusals
// (bad shard) are surfaced immediately; internal answers retry within
// the budget (see isInternal).
func (r *Reconnecting) op(do func(*Client) (int64, error)) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	hops := 0
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if err := r.connectLocked(attempt); err != nil {
			return 0, err
		}
		v, err := do(r.c)
		if err == nil {
			return v, nil
		}
		lastErr = err
		hint := time.Duration(0)
		switch {
		case isNotPrimary(err) != nil:
			// A cluster redirect: the shard lives on the hinted primary.
			// The op was refused before touching the object, so rotating
			// there and re-issuing is routing, not failure — within the
			// hop cap it burns no retry budget and sleeps no backoff.
			// Past the cap the rotation still happens (the hint is the
			// freshest routing there is) but pays the ordinary backoff
			// budget. A hint pointing back at the refusing node (its ring
			// collapsed to itself mid-partition) is no hint at all; a
			// hintless refusal while rotated off the configured address
			// falls back home, where routing may be fresher. Either way
			// the server's Retry-After (one lease interval — the earliest
			// a successor can exist) floors the backoff, so the rotation
			// cannot spin faster than ownership can actually move.
			we := isNotPrimary(err)
			r.redirects.Add(1)
			hint = time.Duration(we.RetryAfterMillis) * time.Millisecond
			target := we.Msg
			if target == r.addr {
				target = ""
			}
			if target == "" && r.addr != r.home {
				target = r.home
			}
			if target != "" {
				r.addr = target
				r.dropLocked()
				hops++
				if hops <= maxRedirects && hint == 0 {
					attempt--
					continue
				}
			}
		case Retryable(err):
			var be *BusyError
			if errors.As(err, &be) {
				hint = be.RetryAfter
				r.dropLocked() // busy arrives at admission; the conn is gone
			}
			var we *wire.Error
			if errors.As(err, &we) {
				switch we.Status {
				case wire.StatusDraining:
					r.dropLocked() // the server hangs up after a draining answer
				case wire.StatusBusy:
					// An op-level shed: the session survives — the server
					// answered and keeps serving — so keep the connection
					// and honor the hint as a backoff floor.
					hint = time.Duration(we.RetryAfterMillis) * time.Millisecond
				}
			}
		case isInternal(err):
			// Retryable only HERE (see isInternal): this wrapper's op IDs
			// make the ambiguous re-issue exactly-once. The session
			// survives — the server answered — so keep the connection and
			// pay the ordinary backoff budget.
		default:
			var we *wire.Error
			if errors.As(err, &we) {
				return 0, err // typed refusal (bad shard, internal): not transient
			}
			// Transport failure: the exchange died mid-flight. The next
			// attempt re-issues the same request — same session, same seq
			// for mutations — over a fresh connection.
			r.dropLocked()
		}
		if attempt == r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		time.Sleep(r.policy.backoff(r.rng, attempt, hint))
	}
	return 0, fmt.Errorf("client: budget of %d attempts exhausted: %w", r.policy.MaxAttempts, lastErr)
}

// opResult runs one mutation under the retry budget, assigning its op
// sequence number once — before the first attempt — and reusing it
// verbatim on every re-issue, across retries and redials alike.
func (r *Reconnecting) opResult(do func(c *Client, seq uint64) (OpResult, error)) (OpResult, error) {
	r.mu.Lock()
	r.opSeq++
	seq := r.opSeq
	r.mu.Unlock()
	var res OpResult
	_, err := r.op(func(c *Client) (int64, error) {
		var ierr error
		res, ierr = do(c, seq)
		return res.Value, ierr
	})
	if err != nil {
		return OpResult{}, err
	}
	if res.WasDuplicate {
		r.dupeAcks.Add(1)
	}
	return res, nil
}

// Ping round-trips a no-op, retrying through transport loss.
func (r *Reconnecting) Ping() error {
	_, err := r.op(func(c *Client) (int64, error) { return 0, c.Ping() })
	return err
}

// Get reads shard's value, retrying through transport loss (reads are
// idempotent).
func (r *Reconnecting) Get(shard uint32) (int64, error) {
	return r.op(func(c *Client) (int64, error) { return c.Get(shard) })
}

// Add adds delta to shard and returns the resulting value. Safe to
// retry across transport failure: the op ID assigned up front makes a
// re-issued copy a recognized duplicate, not a second application.
func (r *Reconnecting) Add(shard uint32, delta int64) (int64, error) {
	res, err := r.AddOp(shard, delta)
	return res.Value, err
}

// AddOp is Add surfacing the full OpResult — WasDuplicate reports that
// the ack came from the server's dedup window (i.e. a retry landed
// after the original had been applied).
func (r *Reconnecting) AddOp(shard uint32, delta int64) (OpResult, error) {
	return r.opResult(func(c *Client, seq uint64) (OpResult, error) {
		return c.AddOp(shard, delta, seq)
	})
}

// Set overwrites shard with v, with Add's retry discipline.
func (r *Reconnecting) Set(shard uint32, v int64) error {
	_, err := r.SetOp(shard, v)
	return err
}

// SetOp is Set surfacing the full OpResult (see AddOp).
func (r *Reconnecting) SetOp(shard uint32, v int64) (OpResult, error) {
	return r.opResult(func(c *Client, seq uint64) (OpResult, error) {
		return c.SetOp(shard, v, seq)
	})
}

// Stats fetches the server's metrics snapshot (idempotent).
func (r *Reconnecting) Stats() (wire.Stats, error) {
	var st wire.Stats
	_, err := r.op(func(c *Client) (int64, error) {
		var err error
		st, err = c.Stats()
		return 0, err
	})
	return st, err
}

// Pipeline returns a pipelined view of the session: enqueued
// operations accumulate and go to the server as one burst (kx04 batch
// frames when negotiated), each with the same per-op retry state a
// serialized operation gets — a mutation's op ID is assigned at
// enqueue and re-issued verbatim across retries and redials, so a
// burst that dies mid-flight heals exactly-once. depth is the
// auto-flush threshold: enqueueing the depth'th unflushed operation
// flushes the burst (≤ 0 means flush only on explicit Flush/Wait).
//
// A Pipeline is NOT safe for concurrent use — it models the paper's
// sequential process issuing operations ahead of their responses.
// Concurrent goroutines should each own a Pipeline; the underlying
// Reconnecting wrapper stays safe to share.
func (r *Reconnecting) Pipeline(depth int) *Pipeline {
	return &Pipeline{r: r, depth: depth}
}

// Pipeline batches operations over a Reconnecting session. See
// Reconnecting.Pipeline.
type Pipeline struct {
	r      *Reconnecting
	depth  int
	queued []*PipelineOp
}

// PipelineOp is one logical operation enqueued on a Pipeline: its wire
// shape (op ID included, fixed at enqueue) and, once its burst has
// been flushed, its outcome.
type PipelineOp struct {
	p     *Pipeline
	kind  wire.Kind
	shard uint32
	arg   int64
	seq   uint64

	done bool
	res  OpResult
	err  error
}

// Wait resolves the operation, flushing its pipeline first if needed.
func (op *PipelineOp) Wait() (OpResult, error) {
	if !op.done {
		op.p.Flush()
	}
	return op.res, op.err
}

func (p *Pipeline) enqueue(kind wire.Kind, shard uint32, arg int64, mutation bool) *PipelineOp {
	op := &PipelineOp{p: p, kind: kind, shard: shard, arg: arg}
	if mutation {
		p.r.mu.Lock()
		p.r.opSeq++
		op.seq = p.r.opSeq
		p.r.mu.Unlock()
	}
	p.queued = append(p.queued, op)
	if p.depth > 0 && len(p.queued) >= p.depth {
		// Auto-flush errors are not lost: they resolve onto the flushed
		// ops themselves, surfaced by each op's Wait.
		p.Flush()
	}
	return op
}

// Get enqueues a linearized read of shard.
func (p *Pipeline) Get(shard uint32) *PipelineOp {
	return p.enqueue(wire.KindGet, shard, 0, false)
}

// Add enqueues an exactly-once add of delta to shard.
func (p *Pipeline) Add(shard uint32, delta int64) *PipelineOp {
	return p.enqueue(wire.KindAdd, shard, delta, true)
}

// Set enqueues an exactly-once overwrite of shard with v.
func (p *Pipeline) Set(shard uint32, v int64) *PipelineOp {
	return p.enqueue(wire.KindSet, shard, v, true)
}

// Flush sends every enqueued operation and blocks until each has an
// outcome — a result, a typed terminal refusal, or a retry budget
// exhausted. The returned error is the first failed operation's (nil
// when all succeeded); per-op outcomes are on the ops themselves.
func (p *Pipeline) Flush() error {
	ops := p.queued
	p.queued = nil
	if len(ops) == 0 {
		return nil
	}
	p.r.flushOps(ops)
	for _, op := range ops {
		if op.err != nil {
			return op.err
		}
	}
	return nil
}

// flushOps runs one burst of operations under the retry budget. Each
// attempt re-issues only the still-unresolved ops (same op IDs, so the
// server's dedup window absorbs ambiguity), classifies each outcome
// with the same rules as the serialized path, and every op is
// guaranteed resolved — res or err — on return.
func (r *Reconnecting) flushOps(ops []*PipelineOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	hops := 0
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if err := r.connectLocked(attempt); err != nil {
			failUnresolved(ops, err)
			return
		}
		// Issue every unresolved op, then flush the burst as one write.
		pend := make([]*Pending, len(ops))
		for i, op := range ops {
			if op.done {
				continue
			}
			pnd, err := r.c.Go(op.kind, op.shard, op.arg, op.seq)
			if err != nil {
				break // poisoned mid-issue; unissued ops retry next attempt
			}
			pend[i] = pnd
		}
		r.c.Flush() // a failure poisons the pendings; Wait surfaces it
		var hint time.Duration
		var rotate string
		drop, unresolved := false, 0
		for i, op := range ops {
			if op.done {
				continue
			}
			if pend[i] == nil {
				unresolved++
				drop = true
				continue
			}
			res, err := pend[i].Result()
			if err == nil {
				op.res, op.done = res, true
				if res.WasDuplicate {
					r.dupeAcks.Add(1)
				}
				continue
			}
			lastErr = err
			var we *wire.Error
			switch {
			case errors.As(err, &we):
				switch we.Status {
				case wire.StatusBusy:
					// Op-level shed: the session survives; honor the hint
					// as a backoff floor and keep the connection.
					if h := time.Duration(we.RetryAfterMillis) * time.Millisecond; h > hint {
						hint = h
					}
					unresolved++
				case wire.StatusTimeout:
					unresolved++ // withdrew before applying; safe to re-issue
				case wire.StatusDraining:
					unresolved++
					drop = true // the server hangs up after a draining answer
				case wire.StatusNotPrimary:
					// Cluster redirect: refused before touching the object;
					// re-issue the burst at the hinted primary. A self-hint
					// (the refuser's ring collapsed to itself) counts as
					// hintless; hintless while off-home rotates home. The
					// Retry-After floor keeps a mid-partition burst from
					// spinning against nodes that cannot serve it yet.
					unresolved++
					r.redirects.Add(1)
					if h := time.Duration(we.RetryAfterMillis) * time.Millisecond; h > hint {
						hint = h
					}
					target := we.Msg
					if target == r.addr {
						target = ""
					}
					if target == "" && r.addr != r.home {
						target = r.home
					}
					if target != "" {
						rotate = target
					}
				case wire.StatusInternal:
					// Retryable only inside this wrapper (see isInternal):
					// every op in the burst carries its op ID, so re-issue
					// is exactly-once. Typically a quorum wait that failed
					// on a deposed primary; the budget rides it out.
					unresolved++
				default:
					op.err, op.done = err, true // typed refusal: terminal
				}
			default:
				// Transport failure mid-burst: which ops landed is
				// unknowable, but every one carries its op ID — re-issue
				// and let the dedup window sort it out.
				unresolved++
				drop = true
			}
		}
		if drop {
			r.dropLocked()
		}
		if unresolved == 0 {
			return
		}
		if rotate != "" {
			// Rotating to the redirect hint is routing, not failure:
			// within the hop cap, and with no Retry-After floor pending,
			// no budget is burned and no backoff slept; past the cap (or
			// under a floor) the rotation still happens but pays the
			// budget (the cap prices mid-failover ownership disputes
			// without pinning the burst to a stale address).
			r.addr = rotate
			r.dropLocked()
			hops++
			if hops <= maxRedirects && hint == 0 {
				attempt--
				continue
			}
		}
		if attempt == r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		time.Sleep(r.policy.backoff(r.rng, attempt, hint))
	}
	failUnresolved(ops, fmt.Errorf("client: budget of %d attempts exhausted: %w", r.policy.MaxAttempts, lastErr))
}

// failUnresolved resolves every still-open op with err.
func failUnresolved(ops []*PipelineOp, err error) {
	for _, op := range ops {
		if !op.done {
			op.err, op.done = err, true
		}
	}
}

// Session reports the stable op-ID session identity every connection
// of this wrapper speaks under.
func (r *Reconnecting) Session() uint64 { return r.session }

// Reconnects reports how many dials have succeeded (1 = the original
// admission, each later one a healed drop).
func (r *Reconnecting) Reconnects() int64 { return r.reconnects.Load() }

// Retries reports how many backoff sleeps the budget has paid for.
func (r *Reconnecting) Retries() int64 { return r.retries.Load() }

// DupeAcks reports how many mutations were acknowledged from the
// server's dedup window — each one a retry whose first copy had been
// applied with its response lost.
func (r *Reconnecting) DupeAcks() int64 { return r.dupeAcks.Load() }

// Redirects reports how many NotPrimary answers this wrapper has
// followed (or, hint-less, backed off on).
func (r *Reconnecting) Redirects() int64 { return r.redirects.Load() }

// Addr reports the address the wrapper currently dials — the original
// one until a cluster redirect rotates it to a shard's primary.
func (r *Reconnecting) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

// Close ends the session.
func (r *Reconnecting) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}
