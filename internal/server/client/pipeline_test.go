package client

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/wire"
)

// kx04Hello is the admission a batch-capable server sends.
func kx04Hello() wire.Hello {
	return wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1, Msg: wire.FeatureBatch}
}

// serveBatchEcho admits with kx04 and answers every request frame
// (plain or batch) with echo semantics (Value = Arg), mirroring the
// framing. It records how many request frames it read.
func serveBatchEcho(frames *atomic.Int64) func(net.Conn) {
	return func(conn net.Conn) {
		wire.WriteHello(conn, kx04Hello())
		for {
			reqs, batched, err := wire.ReadRequests(conn)
			if err != nil {
				return
			}
			frames.Add(1)
			resps := make([]wire.Response, len(reqs))
			for i, req := range reqs {
				resps[i] = wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg}
			}
			if batched {
				wire.WriteBatchResponses(conn, resps)
			} else {
				wire.WriteResponse(conn, resps[0])
			}
		}
	}
}

func TestPipelineBatchFraming(t *testing.T) {
	var frames atomic.Int64
	addr := fakeEndpoint(t, serveBatchEcho(&frames))
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Batched() {
		t.Fatal("kx04 hello not negotiated")
	}
	var ps []*Pending
	for i := 1; i <= 4; i++ {
		p, err := c.Go(wire.KindAdd, 0, int64(i*10), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if resp.Value != int64((i+1)*10) {
			t.Fatalf("op %d: got %d, want %d (responses out of order?)", i, resp.Value, (i+1)*10)
		}
	}
	if got := frames.Load(); got != 1 {
		t.Fatalf("4-op flush used %d request frames, want 1 batch frame", got)
	}
}

func TestPipelineSingleOpStaysPlainFrame(t *testing.T) {
	// A single-op flush must be byte-identical to the kx03 serialized
	// client even when the server negotiated batching — the server sees
	// a plain Request frame, not a 1-op batch.
	var sawBatch atomic.Bool
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, kx04Hello())
		for {
			reqs, batched, err := wire.ReadRequests(conn)
			if err != nil {
				return
			}
			if batched {
				sawBatch.Store(true)
			}
			for _, req := range reqs {
				wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
			}
		}
	})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, err := c.Add(0, 7); err != nil || v != 7 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if sawBatch.Load() {
		t.Fatal("single-op exchange used a batch frame")
	}
}

func TestPipelineKx03Fallback(t *testing.T) {
	// Against a server that never advertised kx04, a pipelined burst
	// degrades to one plain frame per op — still pipelined (written
	// back-to-back before any read), never batch-framed.
	var plainFrames atomic.Int64
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		for {
			req, err := wire.ReadRequest(conn)
			if err != nil {
				return
			}
			plainFrames.Add(1)
			wire.WriteResponse(conn, wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg})
		}
	})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Batched() {
		t.Fatal("batching negotiated against a kx03 hello")
	}
	var ps []*Pending
	for i := 1; i <= 3; i++ {
		p, err := c.Go(wire.KindAdd, 0, int64(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for i, p := range ps {
		resp, err := p.Wait()
		if err != nil || resp.Value != int64(i+1) {
			t.Fatalf("op %d: got %d, %v", i, resp.Value, err)
		}
	}
	if got := plainFrames.Load(); got != 3 {
		t.Fatalf("server saw %d plain frames, want 3", got)
	}
}

func TestPipelinePoisonFailsAllPendings(t *testing.T) {
	// Server answers the first op of the burst, then hangs up: the
	// waited-on op succeeds, every later pending fails with ErrBroken,
	// and new issues are refused.
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, kx04Hello())
		reqs, _, err := wire.ReadRequests(conn)
		if err != nil || len(reqs) == 0 {
			return
		}
		wire.WriteBatchResponses(conn, []wire.Response{
			{ID: reqs[0].ID, Status: wire.StatusOK, Value: 1},
		})
		conn.Close()
	})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p1, _ := c.Go(wire.KindAdd, 0, 1, 1)
	p2, _ := c.Go(wire.KindAdd, 0, 2, 2)
	p3, _ := c.Go(wire.KindAdd, 0, 3, 3)
	if resp, err := p1.Wait(); err != nil || resp.Value != 1 {
		t.Fatalf("p1: got %v, %v", resp.Value, err)
	}
	if _, err := p2.Wait(); !errors.Is(err, ErrBroken) {
		t.Fatalf("p2 after hangup: got %v, want ErrBroken", err)
	}
	if _, err := p3.Wait(); !errors.Is(err, ErrBroken) {
		t.Fatalf("p3 after hangup: got %v, want ErrBroken", err)
	}
	if _, err := c.Go(wire.KindPing, 0, 0, 0); !errors.Is(err, ErrBroken) {
		t.Fatalf("Go on poisoned client: got %v, want ErrBroken", err)
	}
}

func TestReconnectingPipelineHealsMidBurst(t *testing.T) {
	// First connection dies after reading one request of the burst; the
	// whole burst re-issues (same op IDs) on the healed connection.
	addr, reqs := scriptedEndpoint(t,
		serveDropAfterRequest,
		serveOK(3),
	)
	r, err := DialReconnecting(addr, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := r.Pipeline(0)
	ops := []*PipelineOp{p.Add(0, 10), p.Add(0, 20), p.Add(0, 30)}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		res, err := op.Wait()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if want := int64((i + 1) * 10); res.Value != want {
			t.Fatalf("op %d: got %d, want %d", i, res.Value, want)
		}
	}
	if r.Reconnects() < 2 {
		t.Fatalf("reconnects = %d, want ≥ 2 (burst healed a drop)", r.Reconnects())
	}
	if reqs.Load() < 4 {
		t.Fatalf("server saw %d requests, want ≥ 4 (1 dropped + 3 healed)", reqs.Load())
	}
}

func TestReconnectingPipelineTerminalPerOp(t *testing.T) {
	// A typed refusal fails only its own op; the rest of the burst
	// succeeds, and Flush surfaces the failed op's error.
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, kx04Hello())
		for {
			reqs, batched, err := wire.ReadRequests(conn)
			if err != nil {
				return
			}
			resps := make([]wire.Response, len(reqs))
			for i, req := range reqs {
				if req.Arg == 666 {
					resps[i] = wire.Response{ID: req.ID, Status: wire.StatusBadShard, Data: []byte("no such shard")}
				} else {
					resps[i] = wire.Response{ID: req.ID, Status: wire.StatusOK, Value: req.Arg}
				}
			}
			if batched {
				wire.WriteBatchResponses(conn, resps)
			} else {
				for _, resp := range resps {
					wire.WriteResponse(conn, resp)
				}
			}
		}
	})
	r, err := DialReconnecting(addr, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := r.Pipeline(0)
	good := p.Add(0, 5)
	bad := p.Add(0, 666)
	good2 := p.Add(0, 7)
	flushErr := p.Flush()
	if flushErr == nil || !strings.Contains(flushErr.Error(), "no such shard") {
		t.Fatalf("Flush: got %v, want the refused op's error", flushErr)
	}
	if res, err := good.Wait(); err != nil || res.Value != 5 {
		t.Fatalf("good: got %d, %v", res.Value, err)
	}
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "no such shard") {
		t.Fatalf("bad: got %v, want typed refusal", err)
	}
	if res, err := good2.Wait(); err != nil || res.Value != 7 {
		t.Fatalf("good2: got %d, %v", res.Value, err)
	}
}

func TestPipelineAutoFlushAtDepth(t *testing.T) {
	var frames atomic.Int64
	addr := fakeEndpoint(t, serveBatchEcho(&frames))
	r, err := DialReconnecting(addr, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := r.Pipeline(2)
	a := p.Add(0, 1)
	b := p.Add(0, 2) // depth reached: the burst flushes here
	if !a.done || !b.done {
		t.Fatal("depth-2 pipeline did not auto-flush on the second enqueue")
	}
	if res, err := a.Wait(); err != nil || res.Value != 1 {
		t.Fatalf("a: got %d, %v", res.Value, err)
	}
	if res, err := b.Wait(); err != nil || res.Value != 2 {
		t.Fatalf("b: got %d, %v", res.Value, err)
	}
}
