// Package client is the Go client for kexserved. A Client is one
// network process: Dial performs the admission handshake, receiving the
// leased process identity p in [0, N) (or a wire.StatusBusy rejection —
// backpressure, not failure), and every operation then runs under that
// identity on the server. Methods are safe for concurrent use; requests
// on one client are serialized, matching the paper's model of a process
// as a sequential thread of operations.
package client

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kexclusion/internal/wire"
)

// ErrBroken marks a client whose connection state is unknowable: an
// operation's deadline expired (or its transport failed) mid-exchange,
// so a response may be stranded half-read in the stream. Every further
// operation fails with this error immediately — the only recovery is a
// fresh Dial, which is exactly what Reconnecting automates.
var ErrBroken = errors.New("client: connection poisoned by a failed exchange; redial")

// BusyError is an admission rejection: the server's identity pool is
// exhausted (or it is draining). RetryAfter carries the server's
// backoff hint — how long it suggests waiting before redialing, zero
// when it offered none. It unwraps to the underlying *wire.Error.
type BusyError struct {
	RetryAfter time.Duration
	Err        *wire.Error
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%v (retry after %v)", e.Err, e.RetryAfter)
	}
	return e.Err.Error()
}

// Unwrap exposes the wire-level error to errors.As/Is.
func (e *BusyError) Unwrap() error { return e.Err }

// Client is one admitted kexserved session.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	nextID    uint64
	session   uint64
	opSeq     uint64
	hello     wire.Hello
	opTimeout time.Duration
	broken    bool
}

// OpResult is a mutation's outcome.
type OpResult struct {
	// Value is the acknowledged result (the shard value the mutation
	// produced — originally, if it was a duplicate).
	Value int64
	// WasDuplicate reports that the server recognized the op ID as
	// already applied and answered from its dedup window without
	// touching the object again. A retried op seeing this is the
	// exactly-once machinery working, not an error.
	WasDuplicate bool
}

// randomSession draws a nonzero session identity.
func randomSession() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if s := binary.BigEndian.Uint64(b[:]); s != 0 {
			return s
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Dial connects and performs the admission handshake. A server-side
// rejection (pool exhausted, draining) returns a *wire.Error with
// wire.StatusBusy and no Client.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect-and-handshake deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	br := bufio.NewReader(conn)
	hello, err := wire.ReadHello(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if hello.Status != wire.StatusOK {
		conn.Close()
		we := &wire.Error{Status: hello.Status, Msg: hello.Msg}
		if hello.Status == wire.StatusBusy {
			return nil, &BusyError{
				RetryAfter: time.Duration(hello.RetryAfterMillis) * time.Millisecond,
				Err:        we,
			}
		}
		return nil, we
	}
	conn.SetDeadline(time.Time{})
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	return &Client{conn: conn, br: br, bw: bufio.NewWriter(conn), hello: hello, session: randomSession()}, nil
}

// Session reports the client's op-ID session identity.
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// SetSession overrides the op-ID session identity (Dial assigns a
// random one). A wrapper that redials uses a stable session so a
// retried mutation is recognized across connections; zero disables
// deduplication entirely. Set before issuing operations.
func (c *Client) SetSession(s uint64) {
	c.mu.Lock()
	c.session = s
	c.mu.Unlock()
}

// Identity reports the process identity p the server leased to this
// session.
func (c *Client) Identity() int { return int(c.hello.Identity) }

// Hello reports the full admission handshake (server shape included).
func (c *Client) Hello() wire.Hello { return c.hello }

// SetOpTimeout bounds every subsequent operation: the whole exchange —
// write, server work, response read — must finish within d or the
// operation fails and the connection is poisoned (see ErrBroken; a
// missed deadline leaves the stream in an unknowable state). Zero
// removes the bound. Dial's handshake deadline used to be the only one
// ever armed; without this, a stalled or partitioned server hangs the
// caller for as long as the TCP stack is willing to wait.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// do runs one serialized request/response exchange. seq is the op-ID
// sequence number for mutations (zero for idempotent kinds, which are
// never deduplicated or logged).
func (c *Client) do(kind wire.Kind, shard uint32, arg int64, seq uint64) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return wire.Response{}, ErrBroken
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	c.nextID++
	req := wire.Request{ID: c.nextID, Kind: kind, Shard: shard, Arg: arg, Session: c.session, Seq: seq}
	if err := wire.WriteRequest(c.bw, req); err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(c.br)
	if err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	if resp.ID != req.ID {
		c.broken = true
		return wire.Response{}, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, resp.Err()
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.do(wire.KindPing, 0, 0, 0)
	return err
}

// Get reads shard's value, linearized with all updates.
func (c *Client) Get(shard uint32) (int64, error) {
	resp, err := c.do(wire.KindGet, shard, 0, 0)
	return resp.Value, err
}

// NextSeq allocates the next op-ID sequence number. Use with AddOp/
// SetOp to assign a mutation its ID once and reuse it verbatim on
// every retry — the contract that makes retried mutations exactly-once.
func (c *Client) NextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opSeq++
	return c.opSeq
}

// Add adds delta to shard and returns the new value.
func (c *Client) Add(shard uint32, delta int64) (int64, error) {
	res, err := c.AddOp(shard, delta, c.NextSeq())
	return res.Value, err
}

// AddOp is Add with a caller-managed op sequence number: re-issuing
// with the same seq (after a lost response) returns the original
// result with WasDuplicate set instead of adding again.
func (c *Client) AddOp(shard uint32, delta int64, seq uint64) (OpResult, error) {
	resp, err := c.do(wire.KindAdd, shard, delta, seq)
	return OpResult{Value: resp.Value, WasDuplicate: resp.Flags&wire.FlagDuplicate != 0}, err
}

// Set overwrites shard with v.
func (c *Client) Set(shard uint32, v int64) error {
	_, err := c.SetOp(shard, v, c.NextSeq())
	return err
}

// SetOp is Set with a caller-managed op sequence number (see AddOp).
func (c *Client) SetOp(shard uint32, v int64, seq uint64) (OpResult, error) {
	resp, err := c.do(wire.KindSet, shard, v, seq)
	return OpResult{Value: resp.Value, WasDuplicate: resp.Flags&wire.FlagDuplicate != 0}, err
}

// Stats fetches the server's metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.do(wire.KindStats, 0, 0, 0)
	if err != nil {
		return wire.Stats{}, err
	}
	return wire.ParseStats(resp.Data)
}

// Close ends the session cleanly; the server reclaims the identity.
func (c *Client) Close() error { return c.conn.Close() }

// HardClose kills the connection abruptly (SO_LINGER=0, so close sends
// RST and discards anything buffered) — the network form of the paper's
// crash fault, for tests that kill a session mid-operation.
func (c *Client) HardClose() error {
	if tcp, ok := c.conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	return c.conn.Close()
}
