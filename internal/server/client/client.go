// Package client is the Go client for kexserved. A Client is one
// network process: Dial performs the admission handshake, receiving the
// leased process identity p in [0, N) (or a wire.StatusBusy rejection —
// backpressure, not failure), and every operation then runs under that
// identity on the server. Methods are safe for concurrent use; requests
// on one client are serialized, matching the paper's model of a process
// as a sequential thread of operations.
//
// Operations may be pipelined: Go issues an operation and returns a
// Pending promise, Flush writes the queued burst (as kx04 batch frames
// when the server negotiated them, plain kx03 frames otherwise), and
// Pending.Wait resolves responses in issue order. A pipeline is still
// one sequential thread of operations — the server applies them in
// issue order under the session's single identity — it just keeps the
// network and the WAL's group commit full while doing so.
package client

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kexclusion/internal/wire"
)

// ErrBroken marks a client whose connection state is unknowable: an
// operation's deadline expired (or its transport failed) mid-exchange,
// so a response may be stranded half-read in the stream. Every further
// operation fails with this error immediately — the only recovery is a
// fresh Dial, which is exactly what Reconnecting automates.
var ErrBroken = errors.New("client: connection poisoned by a failed exchange; redial")

// BusyError is an admission rejection: the server's identity pool is
// exhausted (or it is draining). RetryAfter carries the server's
// backoff hint — how long it suggests waiting before redialing, zero
// when it offered none. It unwraps to the underlying *wire.Error.
type BusyError struct {
	RetryAfter time.Duration
	Err        *wire.Error
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%v (retry after %v)", e.Err, e.RetryAfter)
	}
	return e.Err.Error()
}

// Unwrap exposes the wire-level error to errors.As/Is.
func (e *BusyError) Unwrap() error { return e.Err }

// Client is one admitted kexserved session.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	nextID    uint64
	session   uint64
	opSeq     uint64
	hello     wire.Hello
	opTimeout time.Duration
	broken    bool
	brokenBy  error

	// Pipelining state. batch records whether the server's hello
	// advertised kx04 batch frames, objects whether it advertised kx05
	// object frames; queued holds operations issued with Go but not yet
	// written; frames is the FIFO of response framings still owed by
	// the server (one entry per request frame written); pending is the
	// FIFO of unresolved operations, oldest first.
	batch   bool
	objects bool
	queued  []wire.Request
	frames  []outFrame
	pending []*Pending
}

// outFrame records the framing of one written request frame, which is
// the framing the server's answer will arrive in: a plain Request
// frame is answered by one Response frame, a BatchRequest frame by
// BatchResponse frames carrying its n responses in order.
type outFrame struct {
	batched bool
	n       int
}

// Pending is one in-flight pipelined operation: a promise for its
// response. Obtain from Go, resolve with Wait.
type Pending struct {
	c    *Client
	id   uint64
	resp wire.Response
	err  error
	done bool
}

// OpResult is a mutation's outcome.
type OpResult struct {
	// Value is the acknowledged result (the shard value the mutation
	// produced — originally, if it was a duplicate).
	Value int64
	// WasDuplicate reports that the server recognized the op ID as
	// already applied and answered from its dedup window without
	// touching the object again. A retried op seeing this is the
	// exactly-once machinery working, not an error.
	WasDuplicate bool
}

// randomSession draws a nonzero session identity.
func randomSession() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if s := binary.BigEndian.Uint64(b[:]); s != 0 {
			return s
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Dial connects and performs the admission handshake. A server-side
// rejection (pool exhausted, draining) returns a *wire.Error with
// wire.StatusBusy and no Client.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect-and-handshake deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	br := bufio.NewReader(conn)
	hello, err := wire.ReadHello(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if hello.Status != wire.StatusOK {
		conn.Close()
		we := &wire.Error{Status: hello.Status, Msg: hello.Msg}
		if hello.Status == wire.StatusBusy {
			return nil, &BusyError{
				RetryAfter: time.Duration(hello.RetryAfterMillis) * time.Millisecond,
				Err:        we,
			}
		}
		return nil, we
	}
	conn.SetDeadline(time.Time{})
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	return &Client{
		conn:    conn,
		br:      br,
		bw:      bufio.NewWriter(conn),
		hello:   hello,
		session: randomSession(),
		batch:   hello.SupportsBatch(),
		objects: hello.SupportsObjects(),
	}, nil
}

// Batched reports whether the server negotiated kx04 batch frames.
// When false (a kx03 server) pipelining still works — each queued
// operation goes out as its own plain frame — but a flush is several
// frames instead of one.
func (c *Client) Batched() bool { return c.batch }

// Session reports the client's op-ID session identity.
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// SetSession overrides the op-ID session identity (Dial assigns a
// random one). A wrapper that redials uses a stable session so a
// retried mutation is recognized across connections; zero disables
// deduplication entirely. Set before issuing operations.
func (c *Client) SetSession(s uint64) {
	c.mu.Lock()
	c.session = s
	c.mu.Unlock()
}

// Identity reports the process identity p the server leased to this
// session.
func (c *Client) Identity() int { return int(c.hello.Identity) }

// Hello reports the full admission handshake (server shape included).
func (c *Client) Hello() wire.Hello { return c.hello }

// SetOpTimeout bounds every subsequent operation: the whole exchange —
// write, server work, response read — must finish within d or the
// operation fails and the connection is poisoned (see ErrBroken; a
// missed deadline leaves the stream in an unknowable state). Zero
// removes the bound. Dial's handshake deadline used to be the only one
// ever armed; without this, a stalled or partitioned server hangs the
// caller for as long as the TCP stack is willing to wait.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// Go issues one operation without waiting for its response: the
// request is queued (written on the next Flush — Wait flushes
// implicitly) and a Pending promise is returned. Issuing several
// operations before waiting is how a caller pipelines: the server
// reads the whole burst, applies it under ONE durability wait, and
// answers in one flush. seq is the op-ID sequence number for
// mutations (zero for idempotent kinds, which are never deduplicated
// or logged). Responses resolve strictly in issue order.
func (c *Client) Go(kind wire.Kind, shard uint32, arg int64, seq uint64) (*Pending, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.goLocked(kind, shard, arg, seq)
}

func (c *Client) goLocked(kind wire.Kind, shard uint32, arg int64, seq uint64) (*Pending, error) {
	if c.broken {
		return nil, c.brokenErrLocked()
	}
	c.nextID++
	req := wire.Request{ID: c.nextID, Kind: kind, Shard: shard, Arg: arg, Session: c.session, Seq: seq}
	c.queued = append(c.queued, req)
	p := &Pending{c: c, id: req.ID}
	c.pending = append(c.pending, p)
	return p, nil
}

// Flush writes every queued operation to the connection. On a kx04
// server a multi-op flush goes out as batch frames; a single-op flush
// (and every flush to a kx03 server) is a plain frame, byte-identical
// to the serialized client's stream.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Client) flushLocked() error {
	if c.broken {
		return c.brokenErrLocked()
	}
	if len(c.queued) == 0 {
		return nil
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	needObj := false
	for _, req := range c.queued {
		if req.Kind.IsObject() {
			needObj = true
			break
		}
	}
	switch {
	case needObj:
		// At least one queued op speaks kx05: the whole flush goes out
		// in object frames (legacy kinds ride along unchanged). goObj
		// refuses object ops on a non-kx05 server, so c.objects holds.
		if err := c.flushObjLocked(); err != nil {
			return err
		}
	case !c.batch || len(c.queued) == 1:
		for _, req := range c.queued {
			if err := wire.WriteRequest(c.bw, req); err != nil {
				c.poisonLocked(err)
				return err
			}
			c.frames = append(c.frames, outFrame{batched: false, n: 1})
		}
	default:
		for off := 0; off < len(c.queued); off += wire.MaxBatchOps {
			end := off + wire.MaxBatchOps
			if end > len(c.queued) {
				end = len(c.queued)
			}
			if err := wire.WriteBatchRequest(c.bw, wire.BatchRequest{Reqs: c.queued[off:end]}); err != nil {
				c.poisonLocked(err)
				return err
			}
			c.frames = append(c.frames, outFrame{batched: true, n: end - off})
		}
	}
	c.queued = c.queued[:0]
	if err := c.bw.Flush(); err != nil {
		c.poisonLocked(err)
		return err
	}
	return nil
}

// flushObjLocked writes the queued operations in kx05 object frames: a
// single op as a 0xC0 frame (answered by a plain Response), several as
// 0xC1 pipeline frames (answered by BatchResponse frames).
func (c *Client) flushObjLocked() error {
	if len(c.queued) == 1 {
		payload, err := wire.EncodeObjRequest(c.queued[0])
		if err != nil {
			c.poisonLocked(err)
			return err
		}
		if err := wire.WriteFrame(c.bw, payload); err != nil {
			c.poisonLocked(err)
			return err
		}
		c.frames = append(c.frames, outFrame{batched: false, n: 1})
		return nil
	}
	for off := 0; off < len(c.queued); off += wire.MaxBatchOps {
		end := off + wire.MaxBatchOps
		if end > len(c.queued) {
			end = len(c.queued)
		}
		payload, err := (wire.ObjBatch{Reqs: c.queued[off:end]}).Encode()
		if err != nil {
			c.poisonLocked(err)
			return err
		}
		if err := wire.WriteFrame(c.bw, payload); err != nil {
			c.poisonLocked(err)
			return err
		}
		c.frames = append(c.frames, outFrame{batched: true, n: end - off})
	}
	return nil
}

// Wait flushes any queued operations and blocks until this operation's
// response arrives, reading (and resolving) every earlier pipelined
// response on the way — responses arrive in issue order, so waiting on
// the newest operation drains the whole pipeline. The returned error
// is the operation's own wire-level error (e.g. wire.StatusBusy) or
// the transport failure that poisoned the connection.
func (p *Pending) Wait() (wire.Response, error) {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	return p.c.waitLocked(p)
}

// Result is Wait shaped as a mutation outcome.
func (p *Pending) Result() (OpResult, error) {
	resp, err := p.Wait()
	return OpResult{Value: resp.Value, WasDuplicate: resp.Flags&wire.FlagDuplicate != 0}, err
}

func (c *Client) waitLocked(p *Pending) (wire.Response, error) {
	if p.done {
		return p.resp, p.err
	}
	if err := c.flushLocked(); err != nil {
		if p.done { // a failed flush poisons, which resolves p
			return p.resp, p.err
		}
		return wire.Response{}, err
	}
	for !p.done {
		if err := c.readFrameLocked(); err != nil {
			if p.done {
				// p resolved inside the failing frame, before the stream
				// died: its answer is real even though the pipeline broke.
				return p.resp, p.err
			}
			return wire.Response{}, err
		}
	}
	return p.resp, p.err
}

// readFrameLocked consumes the server's answer to the oldest
// outstanding request frame and resolves the pendings it carries.
func (c *Client) readFrameLocked() error {
	if c.broken {
		return c.brokenErrLocked()
	}
	if len(c.frames) == 0 {
		err := errors.New("client: waiting for a response with no request frame outstanding")
		c.poisonLocked(err)
		return err
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	f := c.frames[0]
	if !f.batched {
		resp, err := wire.ReadResponse(c.br)
		if err != nil {
			c.poisonLocked(err)
			return err
		}
		c.frames = c.frames[1:]
		return c.resolveLocked(resp)
	}
	// A batch request frame is answered by one or more BatchResponse
	// frames totalling f.n responses (the server splits frames that
	// would exceed wire.MaxFrame).
	got := 0
	for got < f.n {
		batch, err := wire.ReadBatchResponse(c.br)
		if err != nil {
			c.poisonLocked(err)
			return err
		}
		if len(batch.Resps) > f.n-got {
			err := fmt.Errorf("client: server answered %d responses to a batch of %d", got+len(batch.Resps), f.n)
			c.poisonLocked(err)
			return err
		}
		for _, resp := range batch.Resps {
			if err := c.resolveLocked(resp); err != nil {
				return err
			}
		}
		got += len(batch.Resps)
	}
	c.frames = c.frames[1:]
	return nil
}

// resolveLocked matches one response to the oldest unresolved
// operation — the wire guarantees issue order, so anything else is a
// protocol violation that poisons the connection.
func (c *Client) resolveLocked(resp wire.Response) error {
	if len(c.pending) == 0 {
		err := fmt.Errorf("client: response id %d with no operation outstanding", resp.ID)
		c.poisonLocked(err)
		return err
	}
	p := c.pending[0]
	if resp.ID != p.id {
		err := fmt.Errorf("client: response id %d for request %d", resp.ID, p.id)
		c.poisonLocked(err)
		return err
	}
	c.pending = c.pending[1:]
	p.resp = resp
	p.err = resp.Err()
	p.done = true
	return nil
}

// poisonLocked marks the connection unknowable and fails every
// unresolved operation: once a write, read, or deadline fails
// mid-pipeline there is no telling which of the outstanding ops the
// server applied, so all of them answer ErrBroken (wrapping the
// cause) and the caller's exactly-once retry machinery — stable
// session, reused seq — decides what is safe to re-issue.
func (c *Client) poisonLocked(cause error) {
	if c.broken {
		return
	}
	c.broken = true
	c.brokenBy = cause
	for _, p := range c.pending {
		if !p.done {
			p.resp = wire.Response{}
			p.err = fmt.Errorf("%w (cause: %v)", ErrBroken, cause)
			p.done = true
		}
	}
	c.pending = nil
	c.queued = nil
	c.frames = nil
}

func (c *Client) brokenErrLocked() error {
	if c.brokenBy != nil {
		return fmt.Errorf("%w (cause: %v)", ErrBroken, c.brokenBy)
	}
	return ErrBroken
}

// do runs one serialized request/response exchange on the pipelined
// machinery: issue, flush, wait.
func (c *Client) do(kind wire.Kind, shard uint32, arg int64, seq uint64) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.goLocked(kind, shard, arg, seq)
	if err != nil {
		return wire.Response{}, err
	}
	return c.waitLocked(p)
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.do(wire.KindPing, 0, 0, 0)
	return err
}

// Get reads shard's value, linearized with all updates.
func (c *Client) Get(shard uint32) (int64, error) {
	resp, err := c.do(wire.KindGet, shard, 0, 0)
	return resp.Value, err
}

// NextSeq allocates the next op-ID sequence number. Use with AddOp/
// SetOp to assign a mutation its ID once and reuse it verbatim on
// every retry — the contract that makes retried mutations exactly-once.
func (c *Client) NextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opSeq++
	return c.opSeq
}

// Add adds delta to shard and returns the new value.
func (c *Client) Add(shard uint32, delta int64) (int64, error) {
	res, err := c.AddOp(shard, delta, c.NextSeq())
	return res.Value, err
}

// AddOp is Add with a caller-managed op sequence number: re-issuing
// with the same seq (after a lost response) returns the original
// result with WasDuplicate set instead of adding again.
func (c *Client) AddOp(shard uint32, delta int64, seq uint64) (OpResult, error) {
	resp, err := c.do(wire.KindAdd, shard, delta, seq)
	return OpResult{Value: resp.Value, WasDuplicate: resp.Flags&wire.FlagDuplicate != 0}, err
}

// Set overwrites shard with v.
func (c *Client) Set(shard uint32, v int64) error {
	_, err := c.SetOp(shard, v, c.NextSeq())
	return err
}

// SetOp is Set with a caller-managed op sequence number (see AddOp).
func (c *Client) SetOp(shard uint32, v int64, seq uint64) (OpResult, error) {
	resp, err := c.do(wire.KindSet, shard, v, seq)
	return OpResult{Value: resp.Value, WasDuplicate: resp.Flags&wire.FlagDuplicate != 0}, err
}

// Stats fetches the server's metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.do(wire.KindStats, 0, 0, 0)
	if err != nil {
		return wire.Stats{}, err
	}
	return wire.ParseStats(resp.Data)
}

// Close ends the session cleanly; the server reclaims the identity.
func (c *Client) Close() error { return c.conn.Close() }

// HardClose kills the connection abruptly (SO_LINGER=0, so close sends
// RST and discards anything buffered) — the network form of the paper's
// crash fault, for tests that kill a session mid-operation.
func (c *Client) HardClose() error {
	if tcp, ok := c.conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	return c.conn.Close()
}
