package client

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/wire"
)

// fakeEndpoint accepts one connection and runs serve against it.
func fakeEndpoint(t *testing.T, serve func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		serve(conn)
	}()
	return ln.Addr().String()
}

func TestDialRejectsNonProtocolEndpoint(t *testing.T) {
	addr := fakeEndpoint(t, func(conn net.Conn) {
		// A frame whose payload is not a Hello (wrong magic).
		wire.WriteFrame(conn, []byte("HTTP/1.1 200 OK\r\n\r\nhello world junk..."))
	})
	_, err := DialTimeout(addr, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want protocol-magic error, got %v", err)
	}
}

func TestDialSurfacesBusy(t *testing.T) {
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusBusy, RetryAfterMillis: 250, Msg: "all leased"})
	})
	_, err := DialTimeout(addr, 2*time.Second)
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 250*time.Millisecond {
		t.Fatalf("want *BusyError with hint, got %v", err)
	}
	// The wire-level error stays reachable through the wrapper.
	var we *wire.Error
	if !errors.As(err, &we) || we.Status != wire.StatusBusy || !strings.Contains(we.Msg, "all leased") {
		t.Fatalf("want busy *wire.Error via Unwrap, got %v", err)
	}
	if !Retryable(err) {
		t.Fatal("busy rejection not classified retryable")
	}
}

func TestDialHandshakeTimeout(t *testing.T) {
	// Endpoint accepts but never sends a Hello.
	addr := fakeEndpoint(t, func(conn net.Conn) {
		time.Sleep(5 * time.Second)
	})
	start := time.Now()
	_, err := DialTimeout(addr, 200*time.Millisecond)
	if err == nil {
		t.Fatal("handshake against a silent endpoint succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("handshake timeout not honoured: %v", time.Since(start))
	}
}

func TestResponseIDMismatch(t *testing.T) {
	addr := fakeEndpoint(t, func(conn net.Conn) {
		wire.WriteHello(conn, wire.Hello{Status: wire.StatusOK, Identity: 0, N: 1, K: 1, Shards: 1})
		req, err := wire.ReadRequest(conn)
		if err != nil {
			return
		}
		wire.WriteResponse(conn, wire.Response{ID: req.ID + 99, Status: wire.StatusOK})
	})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil || !strings.Contains(err.Error(), "response id") {
		t.Fatalf("want id-mismatch error, got %v", err)
	}
}
