package client

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"kexclusion/internal/object"
	"kexclusion/internal/wire"
)

// This file is the kx05 side of the client: typed operations on named
// objects (registers, maps, queues, k-slot snapshots) and atomic
// multi-shard groups. All of it funnels through the same pipelined
// exchange machinery as the legacy kinds — an object op is just a
// Request with Obj/Key/Arg2 that travels in an object frame.

// ErrNoObjects marks an object operation issued against a server whose
// hello did not advertise the kx05 object extension.
var ErrNoObjects = errors.New("client: server does not speak the kx05 object extension")

// ErrAtomicAborted marks an atomic group none of whose members were
// applied: some member would have been logically rejected. The op IDs
// are unspent; the caller may fix the group and re-issue it.
var ErrAtomicAborted = errors.New("client: atomic group aborted; no member was applied")

// SupportsObjects reports whether the server negotiated kx05 object
// frames.
func (c *Client) SupportsObjects() bool { return c.objects }

// ShardFor maps an object name onto a shard deterministically (FNV-1a
// over the name, mod the server's shard count). Nothing in the
// protocol requires this placement — an object lives wherever its
// creator put it — but every kexclusion tool uses ShardFor, so
// independently written clients agree on where to find an object.
func (c *Client) ShardFor(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32() % uint32(c.hello.Shards)
}

// ObjResult is a typed operation's outcome.
type ObjResult struct {
	// Value is the acknowledged result; what it means is per-kind (new
	// register value, observed map value, dequeued payload, queue
	// length...).
	Value int64
	// Found is the logical verdict: the cas swapped, the key existed,
	// the dequeue yielded a value. False is data, not an error — a
	// rejected mutation still consumed its op ID.
	Found bool
	// WasDuplicate reports the op was answered from the dedup window
	// with its original verdict (see OpResult.WasDuplicate).
	WasDuplicate bool
}

func objResult(resp wire.Response) ObjResult {
	return ObjResult{
		Value:        resp.Value,
		Found:        resp.Flags&wire.FlagFound != 0,
		WasDuplicate: resp.Flags&wire.FlagDuplicate != 0,
	}
}

// GoObj issues one kx05 operation without waiting (the object twin of
// Go). seq is the op-ID sequence number for mutations; reads pass 0.
func (c *Client) GoObj(kind wire.Kind, obj, key string, shard uint32, arg, arg2 int64, seq uint64) (*Pending, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.goObjLocked(kind, obj, key, shard, arg, arg2, seq)
}

func (c *Client) goObjLocked(kind wire.Kind, obj, key string, shard uint32, arg, arg2 int64, seq uint64) (*Pending, error) {
	if !c.objects {
		return nil, ErrNoObjects
	}
	if c.broken {
		return nil, c.brokenErrLocked()
	}
	c.nextID++
	req := wire.Request{ID: c.nextID, Kind: kind, Shard: shard, Arg: arg,
		Session: c.session, Seq: seq, Obj: obj, Key: key, Arg2: arg2}
	c.queued = append(c.queued, req)
	p := &Pending{c: c, id: req.ID}
	c.pending = append(c.pending, p)
	return p, nil
}

// doObj is one serialized kx05 exchange: issue, flush, wait.
func (c *Client) doObj(kind wire.Kind, obj, key string, shard uint32, arg, arg2 int64, seq uint64) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.goObjLocked(kind, obj, key, shard, arg, arg2, seq)
	if err != nil {
		return wire.Response{}, err
	}
	return c.waitLocked(p)
}

// Create ensures an object named name of class typ exists on the
// shard ShardFor picks (CreateOn chooses explicitly). Creation is
// idempotent: re-creating with the same class succeeds without
// touching the object, a different class is refused (Found false).
// slots is the slot count for snapshots and ignored otherwise.
func (c *Client) Create(name string, typ object.Type, slots int) (ObjResult, error) {
	return c.CreateOn(c.ShardFor(name), name, typ, slots, c.NextSeq())
}

// CreateOn is Create with a caller-chosen shard and op sequence number.
func (c *Client) CreateOn(shard uint32, name string, typ object.Type, slots int, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindCreate, name, "", shard, int64(typ), int64(slots), seq)
	return objResult(resp), err
}

// RegGet reads a named register. found false means the object does not
// exist (reads never create).
func (c *Client) RegGet(name string) (v int64, found bool, err error) {
	resp, err := c.doObj(wire.KindRegGet, name, "", c.ShardFor(name), 0, 0, 0)
	return resp.Value, resp.Flags&wire.FlagFound != 0, err
}

// RegAdd adds delta to a named register and returns the new value.
func (c *Client) RegAdd(name string, delta int64) (ObjResult, error) {
	return c.RegAddOp(c.ShardFor(name), name, delta, c.NextSeq())
}

// RegAddOp is RegAdd with caller-managed placement and op sequence
// number — reusing seq on a retry makes the mutation exactly-once.
func (c *Client) RegAddOp(shard uint32, name string, delta int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindRegAdd, name, "", shard, delta, 0, seq)
	return objResult(resp), err
}

// RegSet overwrites a named register.
func (c *Client) RegSet(name string, v int64) (ObjResult, error) {
	return c.RegSetOp(c.ShardFor(name), name, v, c.NextSeq())
}

// RegSetOp is RegSet with caller-managed placement and seq.
func (c *Client) RegSetOp(shard uint32, name string, v int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindRegSet, name, "", shard, v, 0, seq)
	return objResult(resp), err
}

// MapGet reads one key of a named map. found false means the object or
// the key is missing.
func (c *Client) MapGet(name, key string) (v int64, found bool, err error) {
	resp, err := c.doObj(wire.KindMapGet, name, key, c.ShardFor(name), 0, 0, 0)
	return resp.Value, resp.Flags&wire.FlagFound != 0, err
}

// MapPut stores key=v in a named map.
func (c *Client) MapPut(name, key string, v int64) (ObjResult, error) {
	return c.MapPutOp(c.ShardFor(name), name, key, v, c.NextSeq())
}

// MapPutOp is MapPut with caller-managed placement and seq.
func (c *Client) MapPutOp(shard uint32, name, key string, v int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindMapPut, name, key, shard, v, 0, seq)
	return objResult(resp), err
}

// MapCAS swaps key from old to new iff its current value is old (a
// missing key reads as 0, so cas(key, 0→v) initializes). Found reports
// whether the swap happened; Value is the new value when it did and
// the observed value when it did not.
func (c *Client) MapCAS(name, key string, old, new int64) (ObjResult, error) {
	return c.MapCASOp(c.ShardFor(name), name, key, old, new, c.NextSeq())
}

// MapCASOp is MapCAS with caller-managed placement and seq: re-issuing
// with the same seq returns the ORIGINAL verdict, even if the key has
// since moved — the exactly-once contract for conditional ops.
func (c *Client) MapCASOp(shard uint32, name, key string, old, new int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindMapCAS, name, key, shard, new, old, seq)
	return objResult(resp), err
}

// MapDel removes key from a named map. Found reports whether it
// existed.
func (c *Client) MapDel(name, key string) (ObjResult, error) {
	return c.MapDelOp(c.ShardFor(name), name, key, c.NextSeq())
}

// MapDelOp is MapDel with caller-managed placement and seq.
func (c *Client) MapDelOp(shard uint32, name, key string, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindMapDel, name, key, shard, 0, 0, seq)
	return objResult(resp), err
}

// QEnq appends v to a named queue and returns the queue's new length.
func (c *Client) QEnq(name string, v int64) (ObjResult, error) {
	return c.QEnqOp(c.ShardFor(name), name, v, c.NextSeq())
}

// QEnqOp is QEnq with caller-managed placement and seq.
func (c *Client) QEnqOp(shard uint32, name string, v int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindQEnq, name, "", shard, v, 0, seq)
	return objResult(resp), err
}

// QDeq pops the oldest element of a named queue. Found false means the
// queue was empty (Value 0).
func (c *Client) QDeq(name string) (ObjResult, error) {
	return c.QDeqOp(c.ShardFor(name), name, c.NextSeq())
}

// QDeqOp is QDeq with caller-managed placement and seq. Dequeue is the
// non-idempotent op the dedup window exists for: re-issuing a lost
// dequeue with its original seq returns the originally popped value
// (WasDuplicate set) instead of popping again.
func (c *Client) QDeqOp(shard uint32, name string, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindQDeq, name, "", shard, 0, 0, seq)
	return objResult(resp), err
}

// QLen reads a named queue's length. found false means no such queue.
func (c *Client) QLen(name string) (n int64, found bool, err error) {
	resp, err := c.doObj(wire.KindQLen, name, "", c.ShardFor(name), 0, 0, 0)
	return resp.Value, resp.Flags&wire.FlagFound != 0, err
}

// SnapUpdate writes v into one slot of a named k-slot snapshot object.
func (c *Client) SnapUpdate(name string, slot int, v int64) (ObjResult, error) {
	return c.SnapUpdateOp(c.ShardFor(name), name, slot, v, c.NextSeq())
}

// SnapUpdateOp is SnapUpdate with caller-managed placement and seq.
func (c *Client) SnapUpdateOp(shard uint32, name string, slot int, v int64, seq uint64) (ObjResult, error) {
	resp, err := c.doObj(wire.KindSnapUpdate, name, "", shard, v, int64(slot), seq)
	return objResult(resp), err
}

// SnapScan reads every slot of a named snapshot object at one
// linearization point. found false means no such object (nil slots).
func (c *Client) SnapScan(name string) (slots []int64, found bool, err error) {
	resp, err := c.doObj(wire.KindSnapScan, name, "", c.ShardFor(name), 0, 0, 0)
	if err != nil {
		return nil, false, err
	}
	if resp.Flags&wire.FlagFound == 0 {
		return nil, false, nil
	}
	slots, err = wire.DecodeSlots(resp.Data)
	return slots, err == nil, err
}

// AtomicOp is one member of an atomic group: a mutation plus its
// placement and op sequence number. Zero Shard with a non-empty Obj is
// filled in from ShardFor at issue time.
type AtomicOp struct {
	Kind     wire.Kind
	Obj, Key string
	Shard    uint32
	Arg      int64
	Arg2     int64
	Seq      uint64
}

// Atomic issues ops as one all-or-nothing group (a kx05 0xC2 frame):
// either every member applies — across shards, under one WAL record —
// or none does and the call fails with ErrAtomicAborted, leaving every
// member's op ID unspent. Members must be mutations; each needs its
// own Seq (AtomicSeqs assigns a fresh run). A re-issued group whose
// members already applied is answered from the dedup window.
func (c *Client) Atomic(ops []AtomicOp) ([]ObjResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.objects {
		return nil, ErrNoObjects
	}
	if c.broken {
		return nil, c.brokenErrLocked()
	}
	if len(ops) == 0 || len(ops) > wire.MaxAtomicOps {
		return nil, fmt.Errorf("client: atomic group of %d ops (want 1..%d)", len(ops), wire.MaxAtomicOps)
	}
	// The group must travel as ONE frame: flush whatever is queued
	// first, then write the 0xC2 frame directly.
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	reqs := make([]wire.Request, len(ops))
	pendings := make([]*Pending, len(ops))
	for i, op := range ops {
		shard := op.Shard
		if shard == 0 && op.Obj != "" {
			shard = c.ShardFor(op.Obj)
		}
		c.nextID++
		reqs[i] = wire.Request{ID: c.nextID, Kind: op.Kind, Shard: shard,
			Arg: op.Arg, Session: c.session, Seq: op.Seq,
			Obj: op.Obj, Key: op.Key, Arg2: op.Arg2}
		pendings[i] = &Pending{c: c, id: reqs[i].ID}
	}
	payload, err := (wire.ObjBatch{Reqs: reqs, Atomic: true}).Encode()
	if err != nil {
		return nil, err
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.bw, payload); err != nil {
		c.poisonLocked(err)
		return nil, err
	}
	c.frames = append(c.frames, outFrame{batched: true, n: len(reqs)})
	c.pending = append(c.pending, pendings...)
	if err := c.bw.Flush(); err != nil {
		c.poisonLocked(err)
		return nil, err
	}
	results := make([]ObjResult, len(ops))
	aborted := false
	var abortReason string
	var firstErr error
	for i, p := range pendings {
		resp, werr := c.waitLocked(p)
		if werr != nil {
			var we *wire.Error
			if errors.As(werr, &we) && we.Status == wire.StatusAtomicAbort {
				aborted = true
				if we.Msg != "" && abortReason == "" {
					abortReason = we.Msg
				}
				continue
			}
			if firstErr == nil {
				firstErr = werr
			}
			continue
		}
		results[i] = objResult(resp)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if aborted {
		if abortReason != "" {
			return nil, fmt.Errorf("%w: %s", ErrAtomicAborted, abortReason)
		}
		return nil, ErrAtomicAborted
	}
	return results, nil
}

// AtomicSeqs assigns a fresh op sequence number to every member of a
// group in place and returns it, for callers that build a group once
// and may re-issue it verbatim after a failure.
func (c *Client) AtomicSeqs(ops []AtomicOp) []AtomicOp {
	for i := range ops {
		ops[i].Seq = c.NextSeq()
	}
	return ops
}
