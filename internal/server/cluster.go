package server

import (
	"fmt"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
)

// ClusterConfig makes the server a member of a replicated cluster: its
// WAL batches ship to peers, client acks wait for the configured
// quorum, and the ring decides which shards this node serves.
// Requires DataDir — the WAL is the replication stream.
type ClusterConfig struct {
	// NodeID is this member's identity in the peer list.
	NodeID string
	// Peers is the full static membership, this node included.
	Peers []cluster.Peer
	// Quorum is how many nodes (this one included) must fsync a batch
	// before its client ack; 0 means a majority of the peer list.
	Quorum int
	// FailAfter, PullWait and QuorumTimeout tune the failure detector,
	// the replication long-poll, and the ack-path quorum wait (see
	// cluster.Config).
	FailAfter     time.Duration
	PullWait      time.Duration
	QuorumTimeout time.Duration
	// Lease is the leader lease interval; 0 defaults to FailAfter/2,
	// and it must be strictly shorter than FailAfter (see
	// cluster.Config.LeaseDuration).
	Lease time.Duration
}

// MajorityQuorum returns the smallest majority of n members.
func MajorityQuorum(n int) int { return n/2 + 1 }

// replIdentity returns the process identity reserved for the
// replication apply loop: one slot past the client identities (the
// table is built with N+1 process slots in cluster mode).
func (s *Server) replIdentity() int { return s.cfg.N }

// newClusterNode wires the cluster membership into a freshly built
// server (called at the end of New, after table and log exist).
func (s *Server) newClusterNode(cc *ClusterConfig) error {
	if s.log == nil {
		return fmt.Errorf("server: cluster mode requires a data directory (the WAL is the replication stream)")
	}
	quorum := cc.Quorum
	if quorum == 0 {
		quorum = MajorityQuorum(len(cc.Peers))
	}
	node, err := cluster.New(cluster.Config{
		NodeID:        cc.NodeID,
		Peers:         cc.Peers,
		Shards:        s.cfg.Shards,
		Quorum:        quorum,
		Log:           s.log,
		Backend:       &replBackend{s: s},
		FailAfter:     cc.FailAfter,
		LeaseDuration: cc.Lease,
		PullWait:      cc.PullWait,
		QuorumTimeout: cc.QuorumTimeout,
		Logf:          s.logf,
		// Promotion rides the PR 6 phase machine: each takeover gets its
		// own lifecycle cell stepping recovering → running, so ops
		// tooling watches a failover with the same vocabulary as a boot.
		OnPromoteStart: func(shards []uint32) {
			lc := NewLifecycle()
			lc.advance(PhaseRecovering)
			s.promoteMu.Lock()
			s.promoteLC = lc
			s.promoteMu.Unlock()
		},
		OnPromoteDone: func(shards []uint32) {
			s.promoteMu.Lock()
			lc := s.promoteLC
			s.promoteMu.Unlock()
			if lc != nil {
				lc.advance(PhaseRunning)
			}
			s.promotions.Add(1)
		},
		// Lease expiry steps the promotion cell running → degraded: the
		// node is alive but refuses its shards, which is exactly what
		// degraded means everywhere else in the phase machine. The next
		// successful promotion replaces the cell.
		OnDemote: func(shards []uint32) {
			s.promoteMu.Lock()
			lc := s.promoteLC
			s.promoteMu.Unlock()
			if lc != nil {
				lc.advance(PhaseDegraded)
			}
		},
	})
	if err != nil {
		return err
	}
	s.node = node
	return nil
}

// Node exposes the cluster membership (nil off-cluster).
func (s *Server) Node() *cluster.Node { return s.node }

// PromotionPhase reports the lifecycle phase of the most recent
// promotion (PhaseStarting when none has happened).
func (s *Server) PromotionPhase() Phase {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.promoteLC == nil {
		return PhaseStarting
	}
	return s.promoteLC.Phase()
}

// Promotions reports how many shard takeovers this node has completed.
func (s *Server) Promotions() int64 { return s.promotions.Load() }

// replBackend adapts the server's table and WAL to cluster.Backend.
// Replicated applies run under the reserved replication identity and
// are serialized by replMu: one more sequential process in the paper's
// model, so the wait-free core needs no new reasoning.
type replBackend struct {
	s *Server
}

// replOutcome classifies one replicated record against local state.
type replOutcome int

const (
	replApplied replOutcome = iota
	replAdopted             // applied AND crossed into a higher epoch: snapshot-fenced, not appended
	replSkipped             // at or below the local frontier in the local epoch: idempotent re-delivery
	replStale               // from an epoch the shard moved past: a deposed primary's fenced fork
	replGap                 // beyond the next version: needs a state image
	replDiverged
)

// applyOneReplicated classifies record r against the local state of
// its shard and, when it is the shard's next step, applies it. The
// caller has validated r.Shard and holds replMu.
func (b *replBackend) applyOneReplicated(r durable.Record) replOutcome {
	s := b.s
	v := s.tab.shards[r.Shard].obj.Apply(s.replIdentity(), func(st durable.ShardState) (durable.ShardState, any) {
		if r.Epoch < st.Epoch {
			return st, replStale
		}
		if r.Epoch == st.Epoch && r.Ver <= st.Ver {
			// Already inside local history — but verify it really is
			// THIS record's history while the dedup window still
			// remembers the op. Within one epoch there is a single
			// writer, so a mismatch is a genuine same-epoch fork (e.g.
			// a primary whose unsynced tail a host crash rewrote), not
			// a race.
			if !replSkipConsistent(st, r) {
				return st, replDiverged
			}
			return st, replSkipped
		}
		if r.Ver != st.Ver+1 {
			return st, replGap
		}
		// Step a clone: a record that fails the cross-check below must
		// leave the state untouched, and StepOp has already mutated its
		// argument by the time the divergence is visible.
		stepped := st.Clone()
		out := durable.StepOp(&stepped, s.cfg.DedupWindow, r.Session, r.Seq,
			durable.Op{Kind: r.Kind, Obj: r.Obj, Key: r.Key, Arg: r.Arg, Arg2: r.Arg2})
		if !out.Applied || out.Val != r.Val || out.Ver != r.Ver || out.OK != r.OK {
			return st, replDiverged
		}
		if r.Epoch > st.Epoch {
			stepped.Epoch = r.Epoch // adopt a promotion's epoch bump
			return stepped, replAdopted
		}
		return stepped, replApplied
	})
	return v.(replOutcome)
}

// ApplyReplicated folds a replicated batch into the local table and
// WAL in record order. Re-delivered records (same epoch, version at or
// below the local frontier) are skipped after a dedup cross-check —
// this is what makes mid-batch follower crashes safe: the batch
// replays from its start and already-applied records fall through. A
// record continuing the version line at a HIGHER epoch is adopted,
// epoch included — that is how a follower tracks a promotion without
// refetching state. A record from a LOWER epoch is a deposed primary's
// fork and is refused (ErrReplStale); a version gap aborts the batch
// so the caller can fall back to a state image (ErrReplGap).
//
// A type-9 atomic container replays member by member through the same
// classification, then lands in the local WAL as the one verbatim
// container record — so a follower's log stays append-for-append
// identical to the origin's and recovery replays the group as a unit.
func (b *replBackend) ApplyReplicated(recs []durable.Record) (uint64, error) {
	s := b.s
	s.replMu.Lock()
	defer s.replMu.Unlock()
	var maxLsn uint64
	for _, rec := range recs {
		if len(rec.Atomic) > 0 {
			lsn, err := b.applyReplicatedAtomic(rec)
			if err != nil {
				return maxLsn, err
			}
			if lsn > maxLsn {
				maxLsn = lsn
			}
			continue
		}
		if int(rec.Shard) >= s.cfg.Shards {
			return maxLsn, fmt.Errorf("server: replicated record for shard %d, table has %d", rec.Shard, s.cfg.Shards)
		}
		sh := s.tab.shards[rec.Shard]
		switch b.applyOneReplicated(rec) {
		case replSkipped:
			continue
		case replAdopted:
			// The record that carries a promotion's epoch bump is fenced
			// like a state install, not appended: move the sequencer onto
			// the new (epoch, version) line — aborting any old-epoch
			// waiter, whose un-appended record would otherwise leave a
			// hole — and persist a snapshot that both covers this record's
			// effect and fences whatever the deposed line managed to log.
			sh.seq.install(rec.Ver, rec.Epoch)
			if err := s.log.WriteSnapshot(s.tab.peekAll); err != nil {
				return maxLsn, err
			}
			continue
		case replStale:
			return maxLsn, fmt.Errorf("server: shard %d record at epoch %d, local state at epoch %d: %w",
				rec.Shard, rec.Epoch, sh.obj.Peek().Epoch, cluster.ErrReplStale)
		case replGap:
			return maxLsn, fmt.Errorf("server: shard %d record jumps to version %d: %w", rec.Shard, rec.Ver, cluster.ErrReplGap)
		case replDiverged:
			return maxLsn, fmt.Errorf("server: shard %d version %d (epoch %d): %w",
				rec.Shard, rec.Ver, rec.Epoch, cluster.ErrReplDiverged)
		}
		// Append the origin record verbatim to the local WAL, through
		// the same per-shard sequencer as primary appends, so the local
		// log stays a prefix-faithful transcript of every shard it
		// holds — a restart recovers replicated history exactly like
		// native history.
		if !sh.seq.waitTurn(rec.Ver, rec.Epoch) {
			// A concurrent state install moved the shard past this record
			// between the apply above and the append; the install's
			// snapshot covers it.
			continue
		}
		lsn, aerr := s.log.Append(rec)
		sh.seq.advance(rec.Ver, rec.Epoch)
		if aerr != nil {
			return maxLsn, aerr
		}
		if lsn > maxLsn {
			maxLsn = lsn
		}
	}
	return maxLsn, nil
}

// applyReplicatedAtomic folds one replicated atomic container into the
// local table and WAL. Members replay in order through the same
// classification as single records; per touched shard the group covers
// a contiguous version span, so after the members apply, ONE verbatim
// append of the container covers the whole span (the sequencer is
// advanced by install, exactly as on the origin). A partially
// re-delivered group — a previous delivery applied a prefix, then
// failed before the append — self-heals the same way batches do: the
// already-applied members classify as skipped and the container is
// still appended once, after the remaining members land.
//
// The caller holds replMu.
func (b *replBackend) applyReplicatedAtomic(rec durable.Record) (uint64, error) {
	s := b.s
	type span struct {
		firstVer, lastVer, epoch uint64
	}
	spans := make(map[uint32]*span)
	var order []uint32
	adopted := false
	for _, sub := range rec.Atomic {
		if int(sub.Shard) >= s.cfg.Shards {
			return 0, fmt.Errorf("server: replicated atomic member for shard %d, table has %d", sub.Shard, s.cfg.Shards)
		}
		switch b.applyOneReplicated(sub) {
		case replSkipped:
			continue
		case replAdopted:
			adopted = true
		case replStale:
			return 0, fmt.Errorf("server: shard %d atomic member at epoch %d, local state at epoch %d: %w",
				sub.Shard, sub.Epoch, s.tab.shards[sub.Shard].obj.Peek().Epoch, cluster.ErrReplStale)
		case replGap:
			return 0, fmt.Errorf("server: shard %d atomic member jumps to version %d: %w", sub.Shard, sub.Ver, cluster.ErrReplGap)
		case replDiverged:
			return 0, fmt.Errorf("server: shard %d atomic member at version %d (epoch %d): %w",
				sub.Shard, sub.Ver, sub.Epoch, cluster.ErrReplDiverged)
		}
		sp := spans[sub.Shard]
		if sp == nil {
			sp = &span{firstVer: sub.Ver}
			spans[sub.Shard] = sp
			order = append(order, sub.Shard)
		}
		sp.lastVer = sub.Ver
		sp.epoch = sub.Epoch
	}
	if len(spans) == 0 {
		// Fully re-delivered: every member was already in local history,
		// so the container itself was already appended.
		return 0, nil
	}
	if adopted {
		// The group carries a promotion's epoch bump: fence it with a
		// snapshot instead of an append, like a single adopted record.
		// The snapshot is a full-table image, so it covers every member.
		for _, sid := range order {
			sp := spans[sid]
			s.tab.shards[sid].seq.install(sp.lastVer, sp.epoch)
		}
		return 0, s.log.WriteSnapshot(s.tab.peekAll)
	}
	for i, sid := range order {
		sp := spans[sid]
		if !s.tab.shards[sid].seq.waitTurn(sp.firstVer, sp.epoch) {
			// A state install moved some shard past the group — unreachable
			// under replMu (installs serialize behind it), but answered
			// honestly: release the turns already taken and fence the whole
			// group beneath a snapshot, which covers every member.
			for _, held := range order[:i] {
				hp := spans[held]
				s.tab.shards[held].seq.install(hp.lastVer, hp.epoch)
			}
			s.tab.shards[sid].seq.install(sp.lastVer, sp.epoch)
			return 0, s.log.WriteSnapshot(s.tab.peekAll)
		}
	}
	lsn, aerr := s.log.Append(rec)
	for _, sid := range order {
		sp := spans[sid]
		s.tab.shards[sid].seq.install(sp.lastVer, sp.epoch)
	}
	if aerr != nil {
		return 0, aerr
	}
	return lsn, nil
}

// replSkipConsistent cross-checks a record at-or-below the local
// frontier against the shard's dedup window: if the window still
// remembers the record's op ID, its recorded version and value must
// match; if the window remembers the session but has never seen an op
// this new, local history cannot contain the record at all — despite
// claiming its version range — which is a fork. Ops that aged out of
// the window (or carried no ID) pass: the check is best-effort
// defense in depth behind epoch fencing, not a proof.
func replSkipConsistent(st durable.ShardState, r durable.Record) bool {
	if r.Session == 0 || r.Seq == 0 {
		return true
	}
	e, ok := st.Dedup[r.Session]
	if !ok {
		return true // session evicted: cannot check
	}
	if r.Seq > e.Seq {
		return false // local history claims r.Ver yet never saw this op
	}
	if r.Seq == e.Seq {
		return e.Ver == r.Ver && e.Val == r.Val && e.OK == r.OK
	}
	for _, old := range e.Recent {
		if old.Seq == r.Seq {
			return old.Ver == r.Ver && old.Val == r.Val && old.OK == r.OK
		}
	}
	return true // aged out of the per-session history window
}

// WaitLocalDurable blocks until the local WAL has fsynced lsn —
// sharing the group commit with any concurrent primary appends.
func (b *replBackend) WaitLocalDurable(lsn uint64) error {
	return b.s.tab.finishWait(lsn)
}

// InstallState folds a state image into the table, shard by shard,
// keeping only images (epoch, version)-ahead of local state —
// lexicographically, so a higher-epoch image at a LOWER version still
// replaces a deposed primary's inflated fork — then persists a local
// snapshot so the catch-up itself is durable AND the fork records in
// the local WAL are fenced beneath it. covered reports whether local
// state ended at or beyond the image on every shard it holds: false
// means the image's sender is the one who is behind (or forked), and
// the caller must not ack its log positions.
func (b *replBackend) InstallState(shards map[uint32]durable.ShardState) (bool, error) {
	s := b.s
	s.replMu.Lock()
	defer s.replMu.Unlock()
	changed := false
	covered := true
	for id, img := range shards {
		if int(id) >= s.cfg.Shards {
			return false, fmt.Errorf("server: state image holds shard %d, table has %d", id, s.cfg.Shards)
		}
		sh := s.tab.shards[id]
		im := img
		v := sh.obj.Apply(s.replIdentity(), func(st durable.ShardState) (durable.ShardState, any) {
			if im.Epoch < st.Epoch || (im.Epoch == st.Epoch && im.Ver <= st.Ver) {
				return st, false
			}
			return im.Clone(), true
		})
		if v.(bool) {
			// Versions up to im.Ver are covered by the image, not by
			// local appends: move the WAL sequencer onto the image's
			// (epoch, version) line — retreating if the image supersedes
			// an inflated fork, which aborts the fork's stranded waiters.
			sh.seq.install(im.Ver, im.Epoch)
			changed = true
		}
		if st := sh.obj.Peek(); st.Epoch != im.Epoch {
			// The image lost to a strictly higher local epoch: its sender
			// is deposed or lagging a promotion; nothing of its log may
			// be acked on the strength of this install.
			covered = false
		}
	}
	if changed {
		return covered, s.log.WriteSnapshot(s.tab.peekAll)
	}
	return covered, nil
}

// Frontier returns every shard's current mutation version and epoch.
func (b *replBackend) Frontier() (vers, epochs []uint64) {
	t := b.s.tab
	vers = make([]uint64, len(t.shards))
	epochs = make([]uint64, len(t.shards))
	for i := range t.shards {
		st := t.shards[i].obj.Peek()
		vers[i] = st.Ver
		epochs[i] = st.Epoch
	}
	return vers, epochs
}

// BumpEpochs mints the next failover epoch for each listed shard (a
// promotion fencing off the deposed primary's future writes) and
// persists a snapshot before returning, so the claim survives a
// restart and the replay invariant holds: by the time any record at
// the new epoch exists, the epoch is already on disk.
func (b *replBackend) BumpEpochs(shards []uint32) error {
	s := b.s
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for _, id := range shards {
		if int(id) >= s.cfg.Shards {
			return fmt.Errorf("server: epoch bump for shard %d, table has %d", id, s.cfg.Shards)
		}
		sh := s.tab.shards[id]
		v := sh.obj.Apply(s.replIdentity(), func(st durable.ShardState) (durable.ShardState, any) {
			ns := st.Clone()
			ns.Epoch++
			return ns, ns
		})
		ns := v.(durable.ShardState)
		sh.seq.install(ns.Ver, ns.Epoch)
	}
	return s.log.WriteSnapshot(s.tab.peekAll)
}

// StateImage returns a consistent per-shard image for a peer.
func (b *replBackend) StateImage() map[uint32]durable.ShardState {
	return b.s.tab.peekAll()
}
