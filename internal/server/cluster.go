package server

import (
	"fmt"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
)

// ClusterConfig makes the server a member of a replicated cluster: its
// WAL batches ship to peers, client acks wait for the configured
// quorum, and the ring decides which shards this node serves.
// Requires DataDir — the WAL is the replication stream.
type ClusterConfig struct {
	// NodeID is this member's identity in the peer list.
	NodeID string
	// Peers is the full static membership, this node included.
	Peers []cluster.Peer
	// Quorum is how many nodes (this one included) must fsync a batch
	// before its client ack; 0 means a majority of the peer list.
	Quorum int
	// FailAfter, PullWait and QuorumTimeout tune the failure detector,
	// the replication long-poll, and the ack-path quorum wait (see
	// cluster.Config).
	FailAfter     time.Duration
	PullWait      time.Duration
	QuorumTimeout time.Duration
}

// MajorityQuorum returns the smallest majority of n members.
func MajorityQuorum(n int) int { return n/2 + 1 }

// replIdentity returns the process identity reserved for the
// replication apply loop: one slot past the client identities (the
// table is built with N+1 process slots in cluster mode).
func (s *Server) replIdentity() int { return s.cfg.N }

// newClusterNode wires the cluster membership into a freshly built
// server (called at the end of New, after table and log exist).
func (s *Server) newClusterNode(cc *ClusterConfig) error {
	if s.log == nil {
		return fmt.Errorf("server: cluster mode requires a data directory (the WAL is the replication stream)")
	}
	quorum := cc.Quorum
	if quorum == 0 {
		quorum = MajorityQuorum(len(cc.Peers))
	}
	node, err := cluster.New(cluster.Config{
		NodeID:        cc.NodeID,
		Peers:         cc.Peers,
		Shards:        s.cfg.Shards,
		Quorum:        quorum,
		Log:           s.log,
		Backend:       &replBackend{s: s},
		FailAfter:     cc.FailAfter,
		PullWait:      cc.PullWait,
		QuorumTimeout: cc.QuorumTimeout,
		Logf:          s.logf,
		// Promotion rides the PR 6 phase machine: each takeover gets its
		// own lifecycle cell stepping recovering → running, so ops
		// tooling watches a failover with the same vocabulary as a boot.
		OnPromoteStart: func(shards []uint32) {
			lc := NewLifecycle()
			lc.advance(PhaseRecovering)
			s.promoteMu.Lock()
			s.promoteLC = lc
			s.promoteMu.Unlock()
		},
		OnPromoteDone: func(shards []uint32) {
			s.promoteMu.Lock()
			lc := s.promoteLC
			s.promoteMu.Unlock()
			if lc != nil {
				lc.advance(PhaseRunning)
			}
			s.promotions.Add(1)
		},
	})
	if err != nil {
		return err
	}
	s.node = node
	return nil
}

// Node exposes the cluster membership (nil off-cluster).
func (s *Server) Node() *cluster.Node { return s.node }

// PromotionPhase reports the lifecycle phase of the most recent
// promotion (PhaseStarting when none has happened).
func (s *Server) PromotionPhase() Phase {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.promoteLC == nil {
		return PhaseStarting
	}
	return s.promoteLC.Phase()
}

// Promotions reports how many shard takeovers this node has completed.
func (s *Server) Promotions() int64 { return s.promotions.Load() }

// replBackend adapts the server's table and WAL to cluster.Backend.
// Replicated applies run under the reserved replication identity and
// are serialized by replMu: one more sequential process in the paper's
// model, so the wait-free core needs no new reasoning.
type replBackend struct {
	s *Server
}

// replOutcome classifies one replicated record against local state.
type replOutcome int

const (
	replApplied replOutcome = iota
	replSkipped             // at or below the local frontier: idempotent re-delivery
	replGap                 // beyond the next version: needs a state image
	replDiverged
)

// ApplyReplicated folds a replicated batch into the local table and
// WAL in record order. Re-delivered records (version at or below the
// local frontier) are skipped — this is what makes mid-batch follower
// crashes safe: the batch replays from its start and already-applied
// records fall through. A version gap aborts the batch so the caller
// can fall back to a state image.
func (b *replBackend) ApplyReplicated(recs []durable.Record) (uint64, error) {
	s := b.s
	s.replMu.Lock()
	defer s.replMu.Unlock()
	var maxLsn uint64
	for _, rec := range recs {
		if int(rec.Shard) >= s.cfg.Shards {
			return maxLsn, fmt.Errorf("server: replicated record for shard %d, table has %d", rec.Shard, s.cfg.Shards)
		}
		sh := s.tab.shards[rec.Shard]
		r := rec
		v := sh.obj.Apply(s.replIdentity(), func(st durable.ShardState) (durable.ShardState, any) {
			if r.Ver <= st.Ver {
				return st, replSkipped
			}
			if r.Ver != st.Ver+1 {
				return st, replGap
			}
			// Step a clone: a record that fails the cross-check below must
			// leave the state untouched, and Step has already mutated its
			// argument by the time the divergence is visible.
			stepped := st.Clone()
			out := durable.Step(&stepped, s.cfg.DedupWindow, r.Session, r.Seq, r.Kind, r.Arg)
			if !out.Applied || out.Val != r.Val || out.Ver != r.Ver {
				return st, replDiverged
			}
			return stepped, replApplied
		})
		switch v.(replOutcome) {
		case replSkipped:
			continue
		case replGap:
			return maxLsn, fmt.Errorf("server: replicated record for shard %d jumps to version %d (gap)", rec.Shard, rec.Ver)
		case replDiverged:
			return maxLsn, fmt.Errorf("server: replicated record for shard %d version %d diverged from local application", rec.Shard, rec.Ver)
		}
		// Append the origin record verbatim to the local WAL, through
		// the same per-shard sequencer as primary appends, so the local
		// log stays a prefix-faithful transcript of every shard it
		// holds — a restart recovers replicated history exactly like
		// native history.
		sh.seq.waitTurn(rec.Ver)
		lsn, aerr := s.log.Append(rec)
		sh.seq.advance()
		if aerr != nil {
			return maxLsn, aerr
		}
		if lsn > maxLsn {
			maxLsn = lsn
		}
	}
	return maxLsn, nil
}

// WaitLocalDurable blocks until the local WAL has fsynced lsn —
// sharing the group commit with any concurrent primary appends.
func (b *replBackend) WaitLocalDurable(lsn uint64) error {
	return b.s.tab.finishWait(lsn)
}

// InstallState folds a state image into the table, shard by shard,
// keeping only images strictly newer than local state, then persists a
// local snapshot so the catch-up itself is durable (the next pull's
// ack vouches for it).
func (b *replBackend) InstallState(shards map[uint32]durable.ShardState) error {
	s := b.s
	s.replMu.Lock()
	defer s.replMu.Unlock()
	changed := false
	for id, img := range shards {
		if int(id) >= s.cfg.Shards {
			return fmt.Errorf("server: state image holds shard %d, table has %d", id, s.cfg.Shards)
		}
		sh := s.tab.shards[id]
		im := img
		v := sh.obj.Apply(s.replIdentity(), func(st durable.ShardState) (durable.ShardState, any) {
			if im.Ver <= st.Ver {
				return st, false
			}
			return im.Clone(), true
		})
		if v.(bool) {
			// Versions up to im.Ver are covered by the image, not by
			// local appends: jump the WAL sequencer past them.
			sh.seq.reset(im.Ver)
			changed = true
		}
	}
	if changed {
		return s.log.WriteSnapshot(s.tab.peekAll)
	}
	return nil
}

// Frontier returns every shard's current mutation version.
func (b *replBackend) Frontier() []uint64 {
	t := b.s.tab
	out := make([]uint64, len(t.shards))
	for i := range t.shards {
		out[i] = t.shards[i].obj.Peek().Ver
	}
	return out
}

// StateImage returns a consistent per-shard image for a peer.
func (b *replBackend) StateImage() map[uint32]durable.ShardState {
	return b.s.tab.peekAll()
}
