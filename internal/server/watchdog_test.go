package server_test

import (
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/server"
	"kexclusion/internal/wire"
)

// rawDial performs the admission handshake without the client package,
// returning the naked connection for protocol-abuse tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	hello, err := wire.ReadHello(conn)
	if err != nil {
		conn.Close()
		t.Fatalf("handshake: %v", err)
	}
	if hello.Status != wire.StatusOK {
		conn.Close()
		t.Fatalf("handshake status %v", hello.Status)
	}
	conn.SetDeadline(time.Time{})
	return conn
}

// awaitStats polls the server until cond holds or the deadline passes.
func awaitStats(t *testing.T, srv *server.Server, what string, cond func(wire.Stats) bool) wire.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never observed: %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIdleWatchdogReclaimsSilentSession is the acceptance test for the
// session watchdog: a client that goes silent (a partition, a stalled
// process, a pulled cable) loses its identity within the watchdog
// bound, every other client keeps completing operations throughout, and
// the reclaimed identity is leasable again.
func TestIdleWatchdogReclaimsSilentSession(t *testing.T) {
	const idle = 150 * time.Millisecond
	srv, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1, IdleTimeout: idle})

	silent := dial(t, addr) // goes quiet after the handshake
	busy := dial(t, addr)
	defer busy.Close()

	// The busy client must not notice its neighbor's silence: keep it
	// completing ops across the whole watchdog window.
	stop := make(chan struct{})
	busyErr := make(chan error, 1)
	go func() {
		defer close(busyErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := busy.Add(0, 1); err != nil {
				busyErr <- err
				return
			}
		}
	}()

	start := time.Now()
	st := awaitStats(t, srv, "idle reclaim", func(st wire.Stats) bool {
		return st.IdleReclaims >= 1
	})
	if st.ActiveSessions != 1 {
		t.Fatalf("after reclaim: %d active sessions, want 1", st.ActiveSessions)
	}
	// "Within the watchdog bound": generous multiple for a loaded CI
	// box, but far from unbounded.
	if elapsed := time.Since(start); elapsed > 20*idle {
		t.Fatalf("reclaim took %v, bound is the %v watchdog", elapsed, idle)
	}

	close(stop)
	if err, ok := <-busyErr; ok && err != nil {
		t.Fatalf("busy client broken by neighbor's reclaim: %v", err)
	}

	// The reclaimed identity is leasable again: with N=2 and the busy
	// session still admitted, this dial only succeeds on the freed one.
	again := dial(t, addr)
	if err := again.Ping(); err != nil {
		t.Fatalf("re-leased identity unusable: %v", err)
	}
	again.Close()

	// The silenced client's next operation observes the teardown.
	if err := silent.Ping(); err == nil {
		t.Fatal("silent client's session survived the watchdog")
	}
}

// TestIdleWatchdogMidFrameStall covers the sharper form of silence: the
// client sends part of a frame and stalls. The read deadline spans the
// whole frame, so the watchdog still fires and reclaims the identity.
func TestIdleWatchdogMidFrameStall(t *testing.T) {
	const idle = 150 * time.Millisecond
	srv, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1, IdleTimeout: idle})

	conn := rawDial(t, addr)
	defer conn.Close()
	// Announce a 10-byte frame, deliver 3 bytes, go quiet.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	conn.Write(hdr[:])
	conn.Write([]byte{1, 2, 3})

	awaitStats(t, srv, "mid-frame reclaim", func(st wire.Stats) bool {
		return st.IdleReclaims >= 1 && st.ActiveSessions == 0
	})

	// N=1: only a genuinely reclaimed identity admits the next client.
	c := dial(t, addr)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedFrameTypedReply: a peer announcing a frame beyond
// MaxFrame gets a typed refusal before the hangup — not a bare reset —
// and its identity is reclaimed, not leaked.
func TestOversizedFrameTypedReply(t *testing.T) {
	srv, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1})

	conn := rawDial(t, addr)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		t.Fatalf("no typed reply before hangup: %v", err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("status %v, want bad_request", resp.Status)
	}
	// After the refusal the server hangs up...
	if _, err := wire.ReadResponse(conn); err == nil {
		t.Fatal("connection still open after oversized frame")
	}
	// ...and the identity is back in the pool (N=1 proves it).
	awaitStats(t, srv, "oversize reclaim", func(st wire.Stats) bool {
		return st.ActiveSessions == 0 && st.Reclaimed >= 1
	})
	c := dial(t, addr)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestOpDeadlineTimeout: with every slot held, an operation that cannot
// be admitted within the per-op deadline withdraws and answers
// StatusTimeout — not applied, so a retry cannot double-apply.
func TestOpDeadlineTimeout(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	srv, addr := startServer(t, server.Config{
		N: 2, K: 1, Shards: 1,
		OpTimeout: 100 * time.Millisecond,
		ApplyGate: func(shard uint32, kind wire.Kind) {
			if kind == wire.KindAdd && armed.CompareAndSwap(true, false) {
				close(entered)
				<-gate
			}
		},
	})

	holder := dial(t, addr)
	defer holder.Close()
	waiter := dial(t, addr)
	defer waiter.Close()

	holderDone := make(chan error, 1)
	go func() {
		_, err := holder.Add(0, 1)
		holderDone <- err
	}()
	<-entered // the holder is now parked inside the core, owning the only slot

	// The waiter's Add cannot get the slot: it must come back as a
	// typed timeout within the deadline, not hang.
	_, err := waiter.Add(0, 10)
	var we *wire.Error
	if !errors.As(err, &we) || we.Status != wire.StatusTimeout {
		t.Fatalf("contended op under deadline: got %v, want status timeout", err)
	}
	if st := srv.Stats(); st.OpDeadlines < 1 {
		t.Fatalf("op deadline not counted: %+v", st)
	}

	// Free the slot; the holder's op completes untouched by its
	// neighbor's withdrawal, and the retry now applies exactly once.
	close(gate)
	if err := <-holderDone; err != nil {
		t.Fatal(err)
	}
	v, err := waiter.Add(0, 10)
	if err != nil {
		t.Fatalf("retry after timeout: %v", err)
	}
	if v != 11 {
		t.Fatalf("counter = %d, want 11: the timed-out attempt must not have applied", v)
	}
}

// TestIdleWatchdogSparesSlowOps: the watchdog bounds socket silence,
// never time spent inside the wait-free core — an operation slower than
// the idle timeout completes and the session survives.
func TestIdleWatchdogSparesSlowOps(t *testing.T) {
	const idle = 100 * time.Millisecond
	var armed atomic.Bool
	armed.Store(true)
	srv, addr := startServer(t, server.Config{
		N: 2, K: 1, Shards: 1,
		IdleTimeout: idle,
		ApplyGate: func(shard uint32, kind wire.Kind) {
			if kind == wire.KindAdd && armed.CompareAndSwap(true, false) {
				time.Sleep(3 * idle)
			}
		},
	})

	c := dial(t, addr)
	defer c.Close()
	if v, err := c.Add(0, 5); err != nil || v != 5 {
		t.Fatalf("slow op under watchdog: v=%d err=%v", v, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("session reclaimed despite in-flight op: %v", err)
	}
	if st := srv.Stats(); st.IdleReclaims != 0 {
		t.Fatalf("slow op counted as idleness: %+v", st)
	}
}

// TestBusyHelloRetryAfter: the admission rejection carries the parking
// window as its Retry-After hint.
func TestBusyHelloRetryAfter(t *testing.T) {
	const park = 20 * time.Millisecond
	_, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1, AdmitTimeout: park})
	c := dial(t, addr)
	defer c.Close()

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hello, err := wire.ReadHello(conn)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Status != wire.StatusBusy {
		t.Fatalf("status %v, want busy", hello.Status)
	}
	if want := uint32(park / time.Millisecond); hello.RetryAfterMillis != want {
		t.Fatalf("RetryAfterMillis = %d, want %d", hello.RetryAfterMillis, want)
	}
}
