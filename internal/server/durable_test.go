package server_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/server"
	"kexclusion/internal/wire"
)

// startStoppable is startServer with an explicit, idempotent stop —
// restart tests must release the data directory mid-test, not at
// cleanup time.
func startStoppable(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			if err := <-served; err != nil {
				t.Errorf("Serve returned %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return srv, addr.String(), stop
}

func TestDurableStatePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 2, DataDir: dir, Fsync: durable.SyncAlways}

	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	for i := 0; i < 10; i++ {
		if _, err := c.Add(0, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set(1, 42); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RestartCount != 0 || st.RecoveredOps != 0 {
		t.Fatalf("fresh boot stats: restart_count=%d recovered_ops=%d, want 0/0",
			st.RestartCount, st.RecoveredOps)
	}
	c.Close()
	stop()

	// Same directory, new process: every acknowledged mutation must be
	// visible, and the stats must say how it got there.
	srv2, addr2, _ := startStoppable(t, cfg)
	if rec := srv2.Recovery(); rec.RecoveredOps != 11 {
		t.Fatalf("RecoveredOps = %d, want 11", rec.RecoveredOps)
	}
	c2 := dial(t, addr2)
	defer c2.Close()
	if v, err := c2.Get(0); err != nil || v != 30 {
		t.Fatalf("shard 0 after restart = %d, %v; want 30", v, err)
	}
	if v, err := c2.Get(1); err != nil || v != 42 {
		t.Fatalf("shard 1 after restart = %d, %v; want 42", v, err)
	}
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.RestartCount != 1 {
		t.Fatalf("restart_count = %d, want 1", st2.RestartCount)
	}
	if st2.RecoveredOps != 11 {
		t.Fatalf("recovered_ops = %d, want 11", st2.RecoveredOps)
	}
}

func TestDuplicateOpAcknowledgedFromWindow(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 1, DataDir: dir, Fsync: durable.SyncAlways}

	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	c.SetSession(0xfeed)

	res, err := c.AddOp(0, 5, 1)
	if err != nil || res.Value != 5 || res.WasDuplicate {
		t.Fatalf("first AddOp = %+v, %v", res, err)
	}
	// The ambiguous retry: same session, same seq. The server must
	// answer the ORIGINAL result without applying again.
	res, err = c.AddOp(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 || !res.WasDuplicate {
		t.Fatalf("retried AddOp = %+v, want Value 5 with WasDuplicate", res)
	}
	res, err = c.AddOp(0, 3, 2)
	if err != nil || res.Value != 8 {
		t.Fatalf("next AddOp = %+v, %v; want 8", res, err)
	}
	// A re-issued older seq still inside the dedup history answers the
	// ORIGINAL result — the arg is ignored, nothing re-applies. (This is
	// what lets a pipelined burst heal after a mid-flight disconnect.)
	res, err = c.AddOp(0, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 || !res.WasDuplicate {
		t.Fatalf("windowed re-issue of seq 1 = %+v, want original Value 5 with WasDuplicate", res)
	}
	// A seq that has aged past durable.DedupDepth is a protocol error,
	// not a silent re-ack of the wrong op.
	lastSeq := uint64(2)
	for i := 0; i < durable.DedupDepth; i++ {
		lastSeq++
		if _, err := c.AddOp(0, 1, lastSeq); err != nil {
			t.Fatal(err)
		}
	}
	want := int64(8 + durable.DedupDepth)
	if _, err := c.AddOp(0, 99, 1); err == nil {
		t.Fatal("stale seq accepted")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != wire.StatusBadRequest {
			t.Fatalf("stale seq: got %v, want StatusBadRequest", err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.AppliedDupes != 2 {
		t.Fatalf("applied_dupes = %d, want 2", st.AppliedDupes)
	}
	c.Close()
	stop()

	// The dedup window is part of the durable state: a retry of a
	// session's in-flight op arriving AFTER a crash-restart must still
	// be recognized — the history travels through WAL replay and
	// snapshots like the values do.
	_, addr2, _ := startStoppable(t, cfg)
	c2 := dial(t, addr2)
	defer c2.Close()
	c2.SetSession(0xfeed)
	res, err = c2.AddOp(0, 1, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want || !res.WasDuplicate {
		t.Fatalf("post-restart retry = %+v, want original Value %d as duplicate", res, want)
	}
	if v, err := c2.Get(0); err != nil || v != want {
		t.Fatalf("value after post-restart retry = %d, %v; want %d (no double apply)", v, err, want)
	}
}

func TestInMemoryDedupWithoutDataDir(t *testing.T) {
	// No -data-dir still deduplicates within the process lifetime: the
	// window lives in the shard state either way, which is what makes
	// Reconnecting's always-retry discipline safe against any server.
	_, addr := startServer(t, server.Config{N: 4, K: 2, Shards: 1})
	c := dial(t, addr)
	defer c.Close()
	c.SetSession(0xabc)
	if res, err := c.AddOp(0, 4, 1); err != nil || res.Value != 4 || res.WasDuplicate {
		t.Fatalf("first AddOp = %+v, %v", res, err)
	}
	res, err := c.AddOp(0, 4, 1)
	if err != nil || res.Value != 4 || !res.WasDuplicate {
		t.Fatalf("retry = %+v, %v; want duplicate of 4", res, err)
	}
	if v, err := c.Get(0); err != nil || v != 4 {
		t.Fatalf("value = %d, %v; want 4", v, err)
	}
}

func TestSnapshotTriggerAndRecoveryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		N: 4, K: 2, Shards: 1, DataDir: dir,
		Fsync: durable.SyncAlways, SnapshotEvery: 8,
	}
	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	for i := 0; i < 40; i++ {
		if _, err := c.Add(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshots run in the background off the applied-op counter; wait
	// for at least one to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot written after 40 applied ops with SnapshotEvery=8")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Close()
	stop()

	srv2, addr2, _ := startStoppable(t, cfg)
	c2 := dial(t, addr2)
	defer c2.Close()
	if v, err := c2.Get(0); err != nil || v != 40 {
		t.Fatalf("recovered value = %d, %v; want 40", v, err)
	}
	if rec := srv2.Recovery(); rec.RecoveredOps != 40 {
		t.Fatalf("RecoveredOps = %d, want 40", rec.RecoveredOps)
	}
}

func TestRecoveredShardOutOfRangeRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 4, DataDir: dir, Fsync: durable.SyncAlways}
	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	if _, err := c.Add(3, 1); err != nil {
		t.Fatal(err)
	}
	c.Close()
	stop()

	// Re-opening with fewer shards than the log describes must fail
	// loudly: silently dropping shard 3's history would un-acknowledge
	// durable writes.
	cfg.Shards = 2
	if _, err := server.New(cfg); err == nil {
		t.Fatal("shrinking Shards below recovered state was accepted")
	}
}
