package server

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/wire"
)

func TestShedPolicyValidate(t *testing.T) {
	cases := []struct {
		name    string
		pol     ShedPolicy
		admit   time.Duration
		wantErr string
	}{
		{"zero policy disabled", ShedPolicy{}, 0, ""},
		{"ceiling only", ShedPolicy{MaxInFlight: 8}, 0, ""},
		{"watermarks with parking", ShedPolicy{QueueHigh: 10, QueueLow: 2}, time.Second, ""},
		{"zero low means empty-queue recovery", ShedPolicy{QueueHigh: 1}, time.Second, ""},
		{"negative high", ShedPolicy{QueueHigh: -1}, time.Second, "non-negative"},
		{"negative ceiling", ShedPolicy{MaxInFlight: -2}, 0, "non-negative"},
		{"low at high", ShedPolicy{QueueHigh: 5, QueueLow: 5}, time.Second, "below the high watermark"},
		{"low above high", ShedPolicy{QueueHigh: 5, QueueLow: 9}, time.Second, "below the high watermark"},
		{"watermarks without parking", ShedPolicy{QueueHigh: 5, QueueLow: 1}, 0, "AdmitTimeout"},
	}
	for _, tc := range cases {
		err := tc.pol.Validate(tc.admit)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestShedderWatermarkHysteresis: crossing the high watermark flips the
// lifecycle to degraded and sheds; the queue must fall to the LOW
// watermark — not merely below high — before admissions resume.
func TestShedderWatermarkHysteresis(t *testing.T) {
	lc := NewLifecycle()
	lc.advance(PhaseRunning)
	sh := newShedder(ShedPolicy{QueueHigh: 10, QueueLow: 2}, lc, 100*time.Millisecond)

	if hint, ok := sh.admit(5); !ok || hint != 0 {
		t.Fatalf("admit(5) below high = (%d, %v), want admitted", hint, ok)
	}
	hint, ok := sh.admit(10)
	if ok {
		t.Fatal("admit(10) at the high watermark admitted")
	}
	if hint == 0 {
		t.Fatal("shed admission carried no Retry-After hint")
	}
	if lc.Phase() != PhaseDegraded {
		t.Fatalf("phase = %v after crossing high watermark, want degraded", lc.Phase())
	}
	// In the hysteresis band (low < depth < high) a degraded server
	// keeps shedding.
	if _, ok := sh.admit(5); ok {
		t.Fatal("admit(5) while degraded admitted: hysteresis band must keep shedding")
	}
	if lc.Phase() != PhaseDegraded {
		t.Fatalf("phase flapped to %v inside the hysteresis band", lc.Phase())
	}
	// At the low watermark the server recovers and admits again.
	if _, ok := sh.admit(2); !ok {
		t.Fatal("admit(2) at the low watermark still shed")
	}
	if lc.Phase() != PhaseRunning {
		t.Fatalf("phase = %v after falling to low watermark, want running", lc.Phase())
	}
	if got := sh.shedAdmissions.Load(); got != 2 {
		t.Fatalf("shedAdmissions = %d, want 2", got)
	}
}

// TestShedderDrainBeatsWatermarkFlips: once the lifecycle is draining,
// neither watermark crossing moves the phase — the degraded↔running
// flips are only legal from the exact phase the shedder observed, so a
// racing drain always wins.
func TestShedderDrainBeatsWatermarkFlips(t *testing.T) {
	lc := NewLifecycle()
	lc.advance(PhaseRunning)
	lc.advance(PhaseDraining)
	sh := newShedder(ShedPolicy{QueueHigh: 4, QueueLow: 1}, lc, 50*time.Millisecond)
	sh.admit(10) // would flip degraded if legal
	if lc.Phase() != PhaseDraining {
		t.Fatalf("high-watermark crossing moved a draining server to %v", lc.Phase())
	}
	sh.admit(0) // would flip running if legal
	if lc.Phase() != PhaseDraining {
		t.Fatalf("low-watermark crossing moved a draining server to %v", lc.Phase())
	}
}

func TestShedderInflightCeiling(t *testing.T) {
	lc := NewLifecycle()
	lc.advance(PhaseRunning)
	sh := newShedder(ShedPolicy{MaxInFlight: 2}, lc, 0)
	if _, ok := sh.opBegin(); !ok {
		t.Fatal("op 1 refused under ceiling 2")
	}
	if _, ok := sh.opBegin(); !ok {
		t.Fatal("op 2 refused under ceiling 2")
	}
	hint, ok := sh.opBegin()
	if ok {
		t.Fatal("op 3 admitted past ceiling 2")
	}
	if hint == 0 {
		t.Fatal("shed op carried no Retry-After hint")
	}
	if got := sh.inflight.Load(); got != 2 {
		t.Fatalf("inflight = %d after refused op, want 2 (refusal must not leak a slot)", got)
	}
	sh.opEnd()
	if _, ok := sh.opBegin(); !ok {
		t.Fatal("op refused after a slot freed")
	}
	if got := sh.shedOps.Load(); got != 1 {
		t.Fatalf("shedOps = %d, want 1", got)
	}
	// The ceiling sheds operations, never the phase: in-flight pressure
	// is momentary, admission-queue pressure is sustained.
	if lc.Phase() != PhaseRunning {
		t.Fatalf("phase = %v, want running", lc.Phase())
	}
}

func TestShedderRetryAfterShape(t *testing.T) {
	lc := NewLifecycle()
	sh := newShedder(ShedPolicy{}, lc, 100*time.Millisecond)
	if got := sh.retryAfterMillis(0); got != 100 {
		t.Errorf("retryAfterMillis(0) = %d, want one parking window (100)", got)
	}
	if got := sh.retryAfterMillis(4); got != 500 {
		t.Errorf("retryAfterMillis(4) = %d, want 500 (grows with backlog)", got)
	}
	if got := sh.retryAfterMillis(1 << 40); got != uint32(maxRetryAfter/time.Millisecond) {
		t.Errorf("retryAfterMillis(huge) = %d, want clamp %d", got, maxRetryAfter/time.Millisecond)
	}
	// Without a parking window the default probe interval applies.
	sh0 := newShedder(ShedPolicy{}, lc, 0)
	if got := sh0.retryAfterMillis(0); got != 100 {
		t.Errorf("default-base retryAfterMillis(0) = %d, want 100", got)
	}
}

// TestServerShedsAdmissionsPastWatermark drives the policy end to end:
// a full identity pool, a parked admission queue past the high
// watermark, and then a connection that must be shed with a busy Hello
// and a hint — while /readyz-visible phase reads degraded. When the
// parked queue drains, the next arrival flips the server back to
// running.
func TestServerShedsAdmissionsPastWatermark(t *testing.T) {
	s, err := New(Config{
		N: 1, K: 1, Shards: 1,
		AdmitTimeout: 400 * time.Millisecond,
		Shed:         ShedPolicy{QueueHigh: 2, QueueLow: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}

	// Take the only identity.
	holder := dial()
	if h, err := wire.ReadHello(holder); err != nil || h.Status != wire.StatusOK {
		t.Fatalf("holder hello = %+v, %v", h, err)
	}
	// Two more connections park in the admission queue.
	parked := []net.Conn{dial(), dial()}
	deadline := time.Now().Add(2 * time.Second)
	for s.sm.parkedCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admission queue never reached 2 (at %d)", s.sm.parkedCount())
		}
		time.Sleep(time.Millisecond)
	}

	// The next arrival crosses the high watermark: shed, degraded.
	shedConn := dial()
	h, err := wire.ReadHello(shedConn)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != wire.StatusBusy {
		t.Fatalf("shed hello status = %v, want busy", h.Status)
	}
	if h.RetryAfterMillis == 0 {
		t.Fatal("shed hello carried no Retry-After hint")
	}
	if !strings.Contains(h.Msg, "degraded") {
		t.Fatalf("shed hello msg = %q, want a degraded diagnosis", h.Msg)
	}
	if got := s.Phase(); got != PhaseDegraded {
		t.Fatalf("phase = %v, want degraded", got)
	}
	if st := s.Stats(); st.Phase != "degraded" || st.ShedAdmissions == 0 {
		t.Fatalf("stats = phase %q shed %d, want degraded with sheds", st.Phase, st.ShedAdmissions)
	}

	// Let the parked windows expire (both get busy hellos) so the queue
	// empties; the next arrival observes depth 0 and flips running.
	for _, conn := range parked {
		if h, err := wire.ReadHello(conn); err != nil || h.Status != wire.StatusBusy {
			t.Fatalf("parked hello after window = %+v, %v, want busy", h, err)
		}
	}
	probe := dial()
	if _, err := wire.ReadHello(probe); err != nil {
		t.Fatal(err)
	}
	if got := s.Phase(); got != PhaseRunning {
		t.Fatalf("phase = %v after the queue drained, want running", got)
	}
}
