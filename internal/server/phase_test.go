package server

import (
	"sort"
	"testing"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseStarting:   "starting",
		PhaseRecovering: "recovering",
		PhaseRunning:    "running",
		PhaseDegraded:   "degraded",
		PhaseDraining:   "draining",
		PhaseStopped:    "stopped",
		Phase(99):       "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestPhaseReady(t *testing.T) {
	for p, want := range map[Phase]bool{
		PhaseStarting:   false,
		PhaseRecovering: false,
		PhaseRunning:    true,
		PhaseDegraded:   true,
		PhaseDraining:   false,
		PhaseStopped:    false,
	} {
		if p.Ready() != want {
			t.Errorf("%v.Ready() = %v, want %v", p, p.Ready(), want)
		}
	}
}

// TestLifecycleHappyPath walks the full line: boot with recovery, serve,
// degrade under load, recover, drain, stop.
func TestLifecycleHappyPath(t *testing.T) {
	lc := NewLifecycle()
	if lc.Phase() != PhaseStarting {
		t.Fatalf("new lifecycle in %v, want starting", lc.Phase())
	}
	for _, to := range []Phase{PhaseRecovering, PhaseRunning, PhaseDegraded, PhaseRunning, PhaseDraining, PhaseStopped} {
		if !lc.advance(to) {
			t.Fatalf("legal transition %v refused (at %v)", to, lc.Phase())
		}
		if lc.Phase() != to {
			t.Fatalf("after advance: %v, want %v", lc.Phase(), to)
		}
	}
}

// TestLifecycleIllegalTransitionsAreNoOps pins the refusals that the
// server's correctness leans on: nothing resurrects a draining or
// stopped server, and the degraded detour only exists off running.
func TestLifecycleIllegalTransitionsAreNoOps(t *testing.T) {
	cases := []struct {
		name string
		path []Phase // legal setup walk from starting
		try  Phase   // must be refused
	}{
		{"degraded from starting", nil, PhaseDegraded},
		{"degraded from recovering", []Phase{PhaseRecovering}, PhaseDegraded},
		{"recovering from running", []Phase{PhaseRunning}, PhaseRecovering},
		{"running from draining", []Phase{PhaseRunning, PhaseDraining}, PhaseRunning},
		{"degraded from draining", []Phase{PhaseRunning, PhaseDraining}, PhaseDegraded},
		{"stopped from running without drain", []Phase{PhaseRunning}, PhaseStopped},
		{"draining from stopped", []Phase{PhaseRunning, PhaseDraining, PhaseStopped}, PhaseDraining},
		{"running from stopped", []Phase{PhaseRunning, PhaseDraining, PhaseStopped}, PhaseRunning},
	}
	for _, tc := range cases {
		lc := NewLifecycle()
		for _, p := range tc.path {
			if !lc.advance(p) {
				t.Fatalf("%s: setup transition to %v refused", tc.name, p)
			}
		}
		before := lc.Phase()
		if lc.advance(tc.try) {
			t.Errorf("%s: illegal transition %v → %v performed", tc.name, before, tc.try)
		}
		if lc.Phase() != before {
			t.Errorf("%s: phase moved to %v on a refused transition", tc.name, lc.Phase())
		}
	}
}

// TestLifecycleSelfTransitionNotPerformed: advancing to the current
// phase reports false — callers use the return value to claim
// "I performed the flip" exactly once.
func TestLifecycleSelfTransitionNotPerformed(t *testing.T) {
	lc := NewLifecycle()
	lc.advance(PhaseRunning)
	if lc.advance(PhaseRunning) {
		t.Fatal("self-transition reported as performed")
	}
}

// TestPromPhaseNamesMatchLifecycle keeps the /metrics phase label set in
// lock-step with the Phase enum: every phase appears, sorted.
func TestPromPhaseNamesMatchLifecycle(t *testing.T) {
	var fromEnum []string
	for p := PhaseStarting; p <= PhaseStopped; p++ {
		fromEnum = append(fromEnum, p.String())
	}
	sort.Strings(fromEnum)
	if len(fromEnum) != len(promPhaseNames) {
		t.Fatalf("promPhaseNames has %d entries, enum has %d", len(promPhaseNames), len(fromEnum))
	}
	for i, name := range promPhaseNames {
		if name != fromEnum[i] {
			t.Fatalf("promPhaseNames[%d] = %q, want %q (sorted enum)", i, name, fromEnum[i])
		}
	}
	if !sort.StringsAreSorted(promPhaseNames) {
		t.Fatalf("promPhaseNames not sorted: %v", promPhaseNames)
	}
}
