// Package server is kexserved's engine: a TCP object server that puts
// the paper's k-assignment at the admission edge.
//
// The mapping from the paper's model to the network is direct. A
// connected client is a process: admission leases it one of N long-lived
// process identities (sessionManager), every object operation it issues
// runs under that identity through a (N, k)-assignment-wrapped wait-free
// core (table), and an abrupt disconnect is a crash fault. Concretely, a
// client that vanishes while its operation is inside the wait-free core
// is indistinguishable from the paper's stopped process: the in-flight
// operation still completes server-side (operations execute in the
// session's own goroutine, which does not die with the socket), the
// undeliverable reply is discarded, and the identity is reclaimed into
// the pool — so the wrapper absorbs the failure and every other client
// keeps its (k-1)-resilience guarantee of bounded-step progress.
//
// Graceful drain mirrors the same discipline: stop admitting, let every
// in-flight Apply finish (it is wait-free, hence bounded), and only
// force-close sockets when the caller's deadline expires.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/core"
	"kexclusion/internal/durable"
	"kexclusion/internal/object"
	"kexclusion/internal/wire"
)

// Config shapes a Server.
type Config struct {
	// N is the number of process identities (max concurrent sessions).
	N int
	// K is the resiliency level: at most K sessions inside each shard's
	// wait-free core, tolerating K-1 crashed/disconnected holders.
	K int
	// Shards is the number of independent objects in the table.
	Shards int
	// Impl names the k-exclusion from core.Registry guarding each shard
	// ("" selects fastpath, the paper's Theorem 9 composition). The
	// implementation must be (k-1)-resilient: a non-resilient gate (mcs)
	// would let one disconnected client wedge a shard for everyone,
	// which is exactly the failure mode this server exists to rule out.
	Impl string
	// AdmitTimeout is how long connection N+1 is parked waiting for an
	// identity before being rejected with wire.StatusBusy. Zero rejects
	// immediately.
	AdmitTimeout time.Duration
	// IdleTimeout is the session watchdog: a session silent for this
	// long between requests — including one that stalls mid-frame or
	// stops draining its responses — is torn down and its identity
	// reclaimed into the pool. An in-flight operation always completes
	// first (the watchdog arms around socket waits, never inside the
	// wait-free core). Zero disables the watchdog; a partitioned client
	// then holds its identity until the TCP stack gives up.
	IdleTimeout time.Duration
	// OpTimeout is the per-operation deadline: an object operation still
	// waiting for a k-assignment slot when it expires withdraws from the
	// entry section and is answered with wire.StatusTimeout — not
	// applied, safe to retry. Zero runs operations without a deadline.
	OpTimeout time.Duration
	// ApplyGate, when non-nil, is called inside every shard operation —
	// while the session holds a k-assignment slot and a name in the
	// wait-free core. It exists for crash-fault tests and chaos tooling
	// (stall a session here, then kill its socket); leave nil in
	// production.
	ApplyGate func(shard uint32, kind wire.Kind)
	// DataDir, when non-empty, makes the object table durable: New
	// recovers the table from the directory's snapshot+WAL, every
	// mutation is written ahead and acknowledged only at the configured
	// durability point, and op IDs are deduplicated across restarts.
	// Empty runs the table in memory (op IDs still deduplicate within
	// the process lifetime).
	DataDir string
	// Fsync selects when an acknowledgement implies the record has been
	// fsynced (see durable.SyncPolicy); only meaningful with DataDir.
	Fsync durable.SyncPolicy
	// FsyncInterval is the group-commit period for
	// durable.SyncInterval (default 50ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a table snapshot (and prunes the log) after
	// this many applied mutations. Default 1024; negative disables
	// automatic snapshots.
	SnapshotEvery int
	// DedupWindow bounds each shard's op-ID dedup table to this many
	// sessions (oldest evicted first). Default 1024; negative means
	// unbounded.
	DedupWindow int
	// Shed is the load-shedding policy: queue-depth watermarks that
	// flip the server degraded and shed new admissions, plus an
	// in-flight operation ceiling. The zero value disables shedding.
	Shed ShedPolicy
	// Lifecycle, when non-nil, is the externally created phase cell the
	// server drives (see NewLifecycle). Pass one when an ops endpoint
	// must answer readiness probes while New is still recovering the
	// data directory; nil makes New create its own.
	Lifecycle *Lifecycle
	// Cluster, when non-nil, runs this server as a member of a
	// replicated cluster: WAL batches ship to peers, client acks wait
	// for the configured quorum, and the placement ring decides which
	// shards this node serves (others answer StatusNotPrimary with a
	// redirect hint). Requires DataDir.
	Cluster *ClusterConfig
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Server is a TCP kexserved instance. Construct with New, bind with
// Listen, run with Serve, stop with Shutdown.
type Server struct {
	cfg  Config
	impl core.Constructor
	tab  *table
	sm   *sessionManager
	lc   *Lifecycle
	shed *shedder

	ln      net.Listener
	drainCh chan struct{}
	wg      sync.WaitGroup

	idleReclaims atomic.Int64
	opDeadlines  atomic.Int64
	appliedDupes atomic.Int64

	readFastpath atomic.Int64
	batchAtomic  atomic.Int64
	objRegOps    atomic.Int64
	objMapOps    atomic.Int64
	objQueueOps  atomic.Int64
	objSnapOps   atomic.Int64

	log      *durable.Log // nil without DataDir
	recovery durable.Recovery
	logOnce  sync.Once

	node       *cluster.Node // nil off-cluster
	replMu     sync.Mutex    // serializes replicated applies and state installs
	notPrimary atomic.Int64
	quorumAcks atomic.Int64
	promotions atomic.Int64
	promoteMu  sync.Mutex
	promoteLC  *Lifecycle

	sinceSnap   atomic.Int64
	snapRunning atomic.Bool
	snaps       atomic.Int64
	snapWg      sync.WaitGroup
}

// New validates cfg and builds the server (table and session manager
// included; no sockets yet).
func New(cfg Config) (*Server, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("server: k must be at least 1, got %d", cfg.K)
	}
	if cfg.N < cfg.K {
		return nil, fmt.Errorf("server: need n >= k, got n=%d k=%d", cfg.N, cfg.K)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: shards must be at least 1, got %d", cfg.Shards)
	}
	if cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("server: idle timeout must be non-negative, got %v", cfg.IdleTimeout)
	}
	if cfg.OpTimeout < 0 {
		return nil, fmt.Errorf("server: op timeout must be non-negative, got %v", cfg.OpTimeout)
	}
	if cfg.Impl == "" {
		cfg.Impl = "fastpath"
	}
	impl, err := core.ByName(cfg.Impl)
	if err != nil {
		return nil, err
	}
	if !impl.Resilient {
		return nil, fmt.Errorf("server: %s is not (k-1)-resilient — a disconnected client would wedge a shard for every other client; pick a resilient implementation (e.g. fastpath)", impl.Name)
	}
	if impl.FixedK != 0 && cfg.K != impl.FixedK {
		return nil, fmt.Errorf("server: %s supports only k=%d, got k=%d", impl.Name, impl.FixedK, cfg.K)
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1024
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 1024
	}
	if err := cfg.Shed.Validate(cfg.AdmitTimeout); err != nil {
		return nil, err
	}
	lc := cfg.Lifecycle
	if lc == nil {
		lc = NewLifecycle()
	}

	s := &Server{
		cfg:     cfg,
		impl:    impl,
		sm:      newSessionManager(cfg.N, cfg.AdmitTimeout),
		lc:      lc,
		shed:    newShedder(cfg.Shed, lc, cfg.AdmitTimeout),
		drainCh: make(chan struct{}),
	}
	tc := tableConfig{window: cfg.DedupWindow, dupes: &s.appliedDupes}
	if cfg.DataDir != "" {
		// The recovery window gets its own phase so readiness probes
		// report an honest not-ready while the snapshot + WAL tail
		// replay (the window rolling restarts care about).
		lc.advance(PhaseRecovering)
		log, rec, err := durable.Open(durable.Options{
			Dir:         cfg.DataDir,
			Policy:      cfg.Fsync,
			Interval:    cfg.FsyncInterval,
			DedupWindow: cfg.DedupWindow,
			Logf:        cfg.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening data dir: %w", err)
		}
		for id := range rec.Shards {
			if int(id) >= cfg.Shards {
				log.Close()
				return nil, fmt.Errorf("server: data dir %s holds shard %d but the server is configured with %d shards — restart with the original shard count", cfg.DataDir, id, cfg.Shards)
			}
		}
		s.log, s.recovery = log, rec
		tc.log, tc.recovered = log, rec.Shards
		if cfg.SnapshotEvery > 0 {
			tc.applied = s.maybeSnapshot
		}
	}
	// In cluster mode the table gets one extra process slot: identity N
	// is the replication apply loop, one more sequential process in the
	// paper's model (its applies are serialized by replMu).
	procs := cfg.N
	if cfg.Cluster != nil {
		procs++
	}
	s.tab = newTable(procs, cfg.K, cfg.Shards, impl, tc)
	if cfg.Cluster != nil {
		if err := s.newClusterNode(cfg.Cluster); err != nil {
			s.closeLog()
			return nil, err
		}
	}
	return s, nil
}

// Recovery reports what New reconstructed from the data directory (the
// zero value without one).
func (s *Server) Recovery() durable.Recovery { return s.recovery }

// maybeSnapshot counts applied mutations and, every SnapshotEvery of
// them, writes a table snapshot in the background (never two at once —
// an overrun round just rolls its count into the next).
func (s *Server) maybeSnapshot() {
	if s.sinceSnap.Add(1) < int64(s.cfg.SnapshotEvery) {
		return
	}
	if !s.snapRunning.CompareAndSwap(false, true) {
		return
	}
	// Subtract the round's quota rather than zeroing: mutations counted
	// between the Add above and this line belong to the NEXT round, and
	// a Store(0) would silently discard them — under load the cadence
	// would drift late by however many ops raced in.
	s.sinceSnap.Add(-int64(s.cfg.SnapshotEvery))
	s.snaps.Add(1)
	s.snapWg.Add(1)
	go func() {
		defer s.snapWg.Done()
		defer s.snapRunning.Store(false)
		if err := s.log.WriteSnapshot(s.tab.peekAll); err != nil {
			s.logf("snapshot failed: %v", err)
		}
	}()
}

// closeLog finishes the durability layer exactly once: waits out any
// in-flight snapshot, then closes the WAL (final fsync included).
func (s *Server) closeLog() {
	s.logOnce.Do(func() {
		if s.log == nil {
			return
		}
		s.snapWg.Wait()
		if err := s.log.Close(); err != nil {
			s.logf("closing log: %v", err)
		}
	})
}

// Listen binds the TCP address (use port 0 for an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Addr reports the bound address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until the listener closes. It returns nil
// after a graceful Shutdown and the accept error otherwise. Transient
// accept failures — EMFILE when the fd table fills under load,
// ECONNABORTED when a peer resets mid-handshake — are retried with
// capped exponential backoff (the net/http pattern) instead of killing
// the listener: a loaded server must shed the connection, not the
// accept loop.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	if s.node != nil {
		// Bring replication up before serving clients: the start-time
		// catch-up (a rejoining node must not serve stale shards) and
		// the pull loops both precede the first client ack.
		s.node.Start()
	}
	s.lc.advance(PhaseRunning)
	var delay time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining() {
				return nil
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				s.logf("accept error (retrying in %v): %v", delay, err)
				select {
				case <-time.After(delay):
				case <-s.drainCh:
					return nil
				}
				continue
			}
			return err
		}
		delay = 0
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Phase reports the server's current lifecycle phase.
func (s *Server) Phase() Phase { return s.lc.Phase() }

// draining reports whether graceful shutdown has begun (the phase is
// draining or beyond). Every admission and watchdog decision consults
// this, so "the server is going away" has one source of truth.
func (s *Server) draining() bool { return s.lc.Phase() >= PhaseDraining }

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains gracefully: stop accepting, reject parked admissions,
// wake sessions blocked reading, and wait for every in-flight operation
// to complete and its session to tear down. If ctx expires first, the
// remaining sockets are force-closed and ctx's error returned; a session
// stalled inside the wait-free core (only possible via ApplyGate) is
// abandoned to finish on its own — the identity-reclaim path still runs
// when it does.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.lc.advance(PhaseDraining) {
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
		if s.node != nil {
			// Stop replication first: quorum waiters fail fast (their
			// sessions answer StatusInternal and clients retry
			// elsewhere) instead of holding the drain for a timeout.
			s.node.Stop()
		}
		s.sm.abortReads()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeLog()
		s.lc.advance(PhaseStopped)
		return nil
	case <-ctx.Done():
		s.sm.forceClose()
		select {
		case <-done:
		case <-time.After(100 * time.Millisecond):
		}
		// Sessions abandoned inside the core may still try to append;
		// they will get errors from the closed log, which is the honest
		// outcome of a forced shutdown.
		s.closeLog()
		s.lc.advance(PhaseStopped)
		return ctx.Err()
	}
}

// Stats snapshots the server: shape, session-manager counters, and one
// metrics snapshot per shard.
func (s *Server) Stats() wire.Stats {
	st := wire.Stats{
		N:                   s.cfg.N,
		K:                   s.cfg.K,
		Shards:              s.cfg.Shards,
		Impl:                s.impl.Name,
		ActiveSessions:      s.sm.activeCount(),
		AdmitQueue:          s.sm.parkedCount(),
		InflightOps:         s.shed.inflight.Load(),
		Admitted:            s.sm.admitted.Load(),
		Rejected:            s.sm.rejected.Load(),
		Reclaimed:           s.sm.reclaimed.Load(),
		IdleReclaims:        s.idleReclaims.Load(),
		OpDeadlines:         s.opDeadlines.Load(),
		AppliedDupes:        s.appliedDupes.Load(),
		BatchAtomic:         s.batchAtomic.Load(),
		ReadFastpath:        s.readFastpath.Load(),
		ObjRegisterOps:      s.objRegOps.Load(),
		ObjMapOps:           s.objMapOps.Load(),
		ObjQueueOps:         s.objQueueOps.Load(),
		ObjSnapshotOps:      s.objSnapOps.Load(),
		NotPrimaryRedirects: s.notPrimary.Load(),
		QuorumAcks:          s.quorumAcks.Load(),
		RecoveredOps:        int64(s.recovery.RecoveredOps),
		RestartCount:        int64(s.recovery.RestartCount),
		ShedAdmissions:      s.shed.shedAdmissions.Load(),
		ShedOps:             s.shed.shedOps.Load(),
		Phase:               s.lc.Phase().String(),
		Draining:            s.draining(),
		PerShard:            s.tab.snapshots(),
	}
	if s.node != nil {
		st.ReplicaLagLSN = int64(s.node.ReplicaLag())
		st.LeaseHeld = s.node.LeaseHeld()
		st.LeaseExpirations = s.node.LeaseExpirations()
		st.LeaseDemotions = s.node.LeaseDemotions()
	} else {
		st.LeaseHeld = true // vacuous off-cluster: nobody can depose us
	}
	return st
}

// logf emits a lifecycle line when a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// handle runs one connection: admission, hello, then the request loop.
// Operations execute sequentially in this goroutine — one process
// identity is one sequential process, exactly the paper's model.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}

	// Every pre-admission Hello write arms the write deadline first: a
	// peer that connects and then reads nothing must not be able to pin
	// this goroutine through a full TCP buffer — during drain, that
	// would hold Shutdown hostage to a stranger's socket.
	bw := bufio.NewWriter(conn)
	if s.draining() {
		s.armWrite(conn)
		wire.WriteHello(bw, wire.Hello{Status: wire.StatusBusy, Msg: "server draining"})
		bw.Flush()
		return
	}
	// Shed before parking: a connection refused here never joins the
	// admission queue, which is what lets the queue drain back below the
	// low watermark.
	if hint, ok := s.shed.admit(s.sm.parkedCount()); !ok {
		s.armWrite(conn)
		wire.WriteHello(bw, wire.Hello{
			Status:           wire.StatusBusy,
			RetryAfterMillis: hint,
			Msg:              "server degraded: admission queue past the shed watermark",
		})
		bw.Flush()
		s.logf("shed %s: admission queue past watermark", conn.RemoteAddr())
		return
	}
	sess, ok := s.sm.admit(conn, s.drainCh)
	if !ok {
		// The Retry-After hint is the admission parking window: the
		// rejected client already waited that long for an identity to
		// free, so one more window is the natural next probe — combined
		// with the idle watchdog, which bounds how long a dead session
		// can sit on an identity, a freed slot is plausible by then.
		s.armWrite(conn)
		wire.WriteHello(bw, wire.Hello{
			Status:           wire.StatusBusy,
			RetryAfterMillis: uint32(s.cfg.AdmitTimeout / time.Millisecond),
			Msg:              fmt.Sprintf("all %d identities leased; retry later", s.cfg.N),
		})
		bw.Flush()
		s.logf("reject %s: pool exhausted", conn.RemoteAddr())
		return
	}
	p := sess.lease.ID()
	// Teardown doubles as the crash-reclaim hook: whether the loop ends
	// by clean close, abrupt disconnect, or drain, the identity goes
	// back to the pool only after any in-flight Apply has completed, so
	// a new owner of p can never race the dead session inside the core.
	defer s.sm.release(sess)
	defer s.logf("session p=%d %s: closed", p, conn.RemoteAddr())
	s.logf("session p=%d %s: admitted", p, conn.RemoteAddr())

	// Re-check after registering: Shutdown advances the phase before
	// sweeping read deadlines, so a session that misses the phase here was
	// already registered when the sweep ran and will be woken by it.
	if s.draining() {
		s.armWrite(conn)
		wire.WriteHello(bw, wire.Hello{Status: wire.StatusBusy, Msg: "server draining"})
		bw.Flush()
		return
	}

	hello := wire.Hello{
		Status:   wire.StatusOK,
		Identity: uint32(p),
		N:        uint32(s.cfg.N),
		K:        uint32(s.cfg.K),
		Shards:   uint32(s.cfg.Shards),
		// Advertise the kx04 batch and kx05 object extensions; kx03
		// clients ignore Msg on an OK hello, kx04 clients switch to
		// batch framing, kx05 clients additionally speak object frames.
		Msg: wire.FeatureBatch + " " + wire.FeatureObjects,
	}
	s.armWrite(conn)
	if err := wire.WriteHello(bw, hello); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// The session loop is a read-many/apply/flush-once cycle: block for
	// the first frame (the idle watchdog spans exactly this wait), then
	// drain every complete frame the client pipelined behind it, apply
	// the whole pipeline — one shed admission, one durability wait, one
	// group-commit fsync — and coalesce all responses into one flush.
	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		if s.cfg.IdleTimeout > 0 {
			// Arm the idle watchdog for this wait. Shutdown's deadline
			// sweep can race the rearm, so re-expire after checking the
			// drain flag: whichever order the two stores land in, a
			// draining server never leaves a session armed with a fresh
			// deadline.
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			if s.draining() {
				conn.SetReadDeadline(time.Now())
			}
		}
		frame, err := wire.ReadRequestFrame(br)
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrFrameTooLarge):
				// A typed refusal, then hang up: the framing itself is
				// still intact (only the announced length is absurd), so
				// the client gets a diagnosis instead of a bare reset.
				// The deferred release reclaims the identity as usual.
				s.armWrite(conn)
				wire.WriteResponse(bw, errResponse(0, wire.StatusBadRequest, err.Error()))
				bw.Flush()
				s.logf("session p=%d %s: %v", p, conn.RemoteAddr(), err)
			case errors.Is(err, os.ErrDeadlineExceeded) && !s.draining():
				// Silence — no request, a frame stalled halfway, or a
				// peer beyond a partition. The identity goes back to the
				// pool via the deferred release.
				s.idleReclaims.Add(1)
				s.logf("session p=%d %s: idle for %v, reclaiming identity", p, conn.RemoteAddr(), s.cfg.IdleTimeout)
			}
			// Otherwise EOF, reset, or the drain path expiring our read
			// deadline: either way the session is over.
			return
		}
		frames := []inFrame{{reqs: frame.Reqs, batched: frame.Batched, atomic: frame.Atomic}}
		total := len(frame.Reqs)
		// Drain the pipeline: only frames already complete in the read
		// buffer — never a blocking read, so the watchdog semantics stay
		// per-batch (armed around the one socket wait above). A frame
		// that is half-arrived, or an oversized announcement, is left
		// for the next cycle's blocking path to handle.
		for total < maxPipelineOps && completeFrameBuffered(br) {
			more, err := wire.ReadRequestFrame(br)
			if err != nil {
				return
			}
			frames = append(frames, inFrame{reqs: more.Reqs, batched: more.Batched, atomic: more.Atomic})
			total += len(more.Reqs)
		}

		resps, closing := s.serveCycle(p, frames, total)
		s.armWrite(conn)
		i, werr := 0, error(nil)
		for _, f := range frames {
			if f.batched {
				werr = wire.WriteBatchResponses(bw, resps[i:i+len(f.reqs)])
			} else {
				for j := range f.reqs {
					if werr == nil {
						werr = wire.WriteResponse(bw, resps[i+j])
					}
				}
			}
			i += len(f.reqs)
			if werr != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// The peer stopped draining its responses: same verdict
				// as read-side silence.
				s.idleReclaims.Add(1)
				s.logf("session p=%d %s: response write stalled, reclaiming identity", p, conn.RemoteAddr())
			}
			return
		}
		if closing {
			return
		}
	}
}

// maxPipelineOps caps how many operations one read/apply/flush cycle
// drains; a client pipelining deeper simply spans two cycles. Bounds
// both the response buffering and how long a cycle can defer the next
// watchdog arming.
const maxPipelineOps = 1024

// readBufSize sizes each session's read buffer: large enough to hold a
// healthy pipeline of batch frames, small enough to not matter per
// connection.
const readBufSize = 64 << 10

// inFrame is one inbound request frame: its operations, whether they
// arrived batched (responses mirror the framing), and whether they
// form a kx05 atomic group.
type inFrame struct {
	reqs    []wire.Request
	batched bool
	atomic  bool
}

// completeFrameBuffered reports whether the reader already holds one
// entire frame, so reading it cannot block. Oversized announcements
// report false: the blocking path owns the typed refusal.
func completeFrameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > wire.MaxFrame {
		return false
	}
	return br.Buffered() >= 4+int(n)
}

// serveCycle answers one drained pipeline: control operations inline,
// object operations batch-applied — admitted under the shed ceiling as
// one unit, their WAL appends funneled into a single group-commit wait
// so one fsync acknowledges the whole pipeline. Responses come back in
// request order, one per request. closing reports that the connection
// should end after the responses are flushed (drain answered).
func (s *Server) serveCycle(p int, frames []inFrame, total int) (resps []wire.Response, closing bool) {
	resps = make([]wire.Response, 0, total)
	if s.draining() {
		for _, f := range frames {
			for _, req := range f.reqs {
				resps = append(resps, errResponse(req.ID, wire.StatusDraining, "server draining"))
			}
		}
		return resps, true
	}

	objOps := 0
	for _, f := range frames {
		for _, req := range f.reqs {
			if req.Kind != wire.KindPing && req.Kind != wire.KindStats {
				objOps++
			}
		}
	}
	shedHint, admitted := uint32(0), true
	if objOps > 0 {
		shedHint, admitted = s.shed.opBeginN(objOps)
	}

	// The durability frontier: every wait-marked response is contingent
	// on maxLsn being covered, checked once after the whole pipeline has
	// applied and appended. shard and epoch feed the post-quorum fencing
	// recheck in cluster mode.
	type pendingAck struct {
		idx   int
		id    uint64
		shard uint32
		epoch uint64
	}
	var (
		waiting []pendingAck
		maxLsn  uint64
		applied int
	)
	for _, f := range frames {
		if f.atomic {
			// An atomic group is one unit: validated, committed and logged
			// under one record by applyAtomicGroup; its durability wait
			// joins the pipeline's single finishWait below.
			base := len(resps)
			var aresps []wire.Response
			if !admitted {
				for _, req := range f.reqs {
					aresps = append(aresps, busyResponse(req.ID, shedHint))
				}
			} else {
				var aacks []atomicAck
				var alsn uint64
				var afresh int
				aresps, aacks, alsn, afresh = s.applyAtomicGroup(p, f.reqs)
				for _, a := range aacks {
					waiting = append(waiting, pendingAck{idx: base + a.idx, id: a.id, shard: a.shard, epoch: a.epoch})
				}
				if len(aacks) > 0 && alsn > maxLsn {
					maxLsn = alsn
				}
				applied += afresh
				for i, req := range f.reqs {
					s.countObjOp(req, aresps[i])
				}
			}
			resps = append(resps, aresps...)
			continue
		}
		for _, req := range f.reqs {
			var resp wire.Response
			switch {
			case req.Kind == wire.KindPing:
				resp = wire.Response{ID: req.ID, Status: wire.StatusOK}
			case req.Kind == wire.KindStats:
				resp = wire.Response{ID: req.ID, Status: wire.StatusOK, Data: s.Stats().JSON()}
			case !admitted:
				resp = busyResponse(req.ID, shedHint)
			case s.node != nil && int(req.Shard) < s.cfg.Shards && !s.node.Owns(req.Shard):
				// Misrouted shard: refuse before touching the object and
				// hint the owning primary's client address in Data. The
				// op was not applied, so the client retries the same op
				// ID at the hinted address and dedup keeps it exactly
				// once. When this node knows no better primary (its own
				// lease expired, typically mid-partition), the hint is
				// empty and Value carries a Retry-After of one lease
				// interval — the earliest a usurper can exist.
				s.notPrimary.Add(1)
				resp = wire.Response{
					ID:     req.ID,
					Status: wire.StatusNotPrimary,
					Data:   []byte(s.node.PrimaryAddr(req.Shard)),
				}
				if len(resp.Data) == 0 {
					resp.Value = int64(s.node.LeaseDuration() / time.Millisecond)
				}
			case req.Kind.IsObject() && req.Kind.IsRead():
				// The read-only fast path: answered from the shard's
				// committed state, no slot, no WAL, no quorum. The Owns
				// gate above already ran, so in cluster mode only the
				// shard's primary serves it (staleness bounded by one
				// lease interval, the §12 argument).
				s.readFastpath.Add(1)
				resp = s.tab.readFast(req)
				s.countObjOp(req, resp)
			default:
				var lsn, epoch uint64
				var wait, fresh bool
				resp, lsn, epoch, wait, fresh = s.applyObjOp(p, req)
				if wait {
					waiting = append(waiting, pendingAck{idx: len(resps), id: req.ID, shard: req.Shard, epoch: epoch})
					if lsn > maxLsn {
						maxLsn = lsn
					}
				}
				if fresh {
					applied++
				}
				s.countObjOp(req, resp)
			}
			resps = append(resps, resp)
		}
	}
	if len(waiting) > 0 {
		if err := s.tab.finishWait(maxLsn); err != nil {
			// No response whose ack presumed durability may be sent:
			// the log is poisoned, so the honest answer is an internal
			// error for each — and no snapshot cadence is charged.
			for _, w := range waiting {
				resps[w.idx] = errResponse(w.id, wire.StatusInternal, err.Error())
			}
			applied = 0
		} else if s.node != nil {
			// The quorum gate: local durability covered maxLsn, now the
			// configured quorum must too — one wait for the whole
			// pipeline, the replication analogue of the group commit.
			// On timeout the ops ARE applied and locally durable, but
			// under-replicated; StatusInternal makes the client retry,
			// and dedup re-serves the original results exactly once.
			if err := s.node.WaitQuorum(maxLsn); err != nil {
				for _, w := range waiting {
					resps[w.idx] = errResponse(w.id, wire.StatusInternal, err.Error())
				}
			} else {
				// Fencing recheck: quorum acks vouch for LSN prefixes, not
				// histories. If a shard's epoch moved while this pipeline
				// waited (a state install superseded a fork this node was
				// serving), an op applied at the old epoch may be fenced
				// data — withhold its ack and let the retry settle against
				// the installed history.
				acked := 0
				for _, w := range waiting {
					if st := s.tab.shards[w.shard].obj.Peek(); st.Epoch != w.epoch {
						resps[w.idx] = errResponse(w.id, wire.StatusInternal,
							"shard re-installed at a new epoch during the quorum wait; retry")
						continue
					}
					acked++
				}
				s.quorumAcks.Add(int64(acked))
			}
		}
	}
	s.tab.noteApplied(applied)
	if objOps > 0 && admitted {
		s.shed.opEndN(objOps)
	}
	return resps, false
}

// applyObjOp runs one object operation under the configured per-op
// deadline, counting withdrawals. The durability wait is the caller's
// (see table.applyStart).
func (s *Server) applyObjOp(p int, req wire.Request) (resp wire.Response, lsn, epoch uint64, wait, fresh bool) {
	ctx := context.Background()
	if s.cfg.OpTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.OpTimeout)
		defer cancel()
	}
	resp, lsn, epoch, wait, fresh = s.tab.applyStart(ctx, p, req, s.cfg.ApplyGate)
	if resp.Status == wire.StatusTimeout {
		s.opDeadlines.Add(1)
	}
	return resp, lsn, epoch, wait, fresh
}

// countObjOp charges a completed (StatusOK) kx05 object operation to
// its object class's counter; creates count toward the class being
// created.
func (s *Server) countObjOp(req wire.Request, resp wire.Response) {
	if !req.Kind.IsObject() || resp.Status != wire.StatusOK {
		return
	}
	switch req.Kind {
	case wire.KindCreate:
		switch object.Type(req.Arg) {
		case object.TypeRegister:
			s.objRegOps.Add(1)
		case object.TypeMap:
			s.objMapOps.Add(1)
		case object.TypeQueue:
			s.objQueueOps.Add(1)
		case object.TypeSnapshot:
			s.objSnapOps.Add(1)
		}
	case wire.KindRegGet, wire.KindRegAdd, wire.KindRegSet:
		s.objRegOps.Add(1)
	case wire.KindMapGet, wire.KindMapPut, wire.KindMapCAS, wire.KindMapDel:
		s.objMapOps.Add(1)
	case wire.KindQEnq, wire.KindQDeq, wire.KindQLen:
		s.objQueueOps.Add(1)
	case wire.KindSnapUpdate, wire.KindSnapScan:
		s.objSnapOps.Add(1)
	}
}

// armWrite bounds the next response write by the idle watchdog, so a
// peer that stops reading cannot pin a session (and its identity)
// through a full TCP buffer.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
}
