package server_test

import (
	"errors"
	"testing"

	"kexclusion/internal/durable"
	"kexclusion/internal/object"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// TestObjectClassesEndToEnd drives all four kx05 object classes over a
// real socket, checks the per-class counters and the read fast path,
// then restarts the server and verifies every object recovered.
func TestObjectClassesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 4, DataDir: dir, Fsync: durable.SyncAlways}
	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	c.SetSession(0x51e5)
	if !c.SupportsObjects() {
		t.Fatal("server hello did not advertise kx05")
	}

	// Register.
	if res, err := c.Create("hits", object.TypeRegister, 0); err != nil || !res.Found {
		t.Fatalf("create register: %+v err %v", res, err)
	}
	if res, err := c.RegAdd("hits", 5); err != nil || res.Value != 5 {
		t.Fatalf("reg add: %+v err %v", res, err)
	}
	if res, err := c.RegSet("hits", 40); err != nil || !res.Found {
		t.Fatalf("reg set: %+v err %v", res, err)
	}
	if v, found, err := c.RegGet("hits"); err != nil || !found || v != 40 {
		t.Fatalf("reg get: %d found=%v err %v", v, found, err)
	}

	// Map.
	if _, err := c.Create("users", object.TypeMap, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MapPut("users", "alice", 30); err != nil {
		t.Fatal(err)
	}
	if res, err := c.MapCAS("users", "alice", 30, 31); err != nil || !res.Found || res.Value != 31 {
		t.Fatalf("cas hit: %+v err %v", res, err)
	}
	if res, err := c.MapCAS("users", "alice", 30, 99); err != nil || res.Found || res.Value != 31 {
		t.Fatalf("cas miss must report the observed value: %+v err %v", res, err)
	}
	if v, found, err := c.MapGet("users", "alice"); err != nil || !found || v != 31 {
		t.Fatalf("map get: %d found=%v err %v", v, found, err)
	}
	if v, found, err := c.MapGet("users", "nobody"); err != nil || found || v != 0 {
		t.Fatalf("missing key: %d found=%v err %v", v, found, err)
	}
	if res, err := c.MapDel("users", "alice"); err != nil || !res.Found {
		t.Fatalf("map del: %+v err %v", res, err)
	}
	if _, err := c.MapPut("users", "bob", 7); err != nil {
		t.Fatal(err)
	}

	// Queue.
	if _, err := c.Create("jobs", object.TypeQueue, 0); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if res, err := c.QEnq("jobs", i*100); err != nil || res.Value != i {
			t.Fatalf("enq %d: %+v err %v", i, res, err)
		}
	}
	if res, err := c.QDeq("jobs"); err != nil || !res.Found || res.Value != 100 {
		t.Fatalf("deq: %+v err %v", res, err)
	}
	if n, found, err := c.QLen("jobs"); err != nil || !found || n != 2 {
		t.Fatalf("qlen: %d found=%v err %v", n, found, err)
	}

	// Snapshot (the footnote-1 k-slot object): per-slot updates, one
	// linearized scan.
	if _, err := c.Create("probes", object.TypeSnapshot, 3); err != nil {
		t.Fatal(err)
	}
	for slot, v := range []int64{11, 22, 33} {
		if res, err := c.SnapUpdate("probes", slot, v); err != nil || !res.Found {
			t.Fatalf("snap update %d: %+v err %v", slot, res, err)
		}
	}
	if slots, found, err := c.SnapScan("probes"); err != nil || !found ||
		len(slots) != 3 || slots[0] != 11 || slots[1] != 22 || slots[2] != 33 {
		t.Fatalf("snap scan: %v found=%v err %v", slots, found, err)
	}

	// Class conflict: re-creating under a different class is refused
	// (Found false), the original object untouched.
	if res, err := c.Create("jobs", object.TypeMap, 0); err != nil || res.Found {
		t.Fatalf("class conflict accepted: %+v err %v", res, err)
	}

	// Reads of missing objects are data, not errors.
	if _, found, err := c.RegGet("nonesuch"); err != nil || found {
		t.Fatalf("missing object read: found=%v err %v", found, err)
	}
	// A read of the wrong class reports not-found too.
	if _, found, err := c.MapGet("hits", "k"); err != nil || found {
		t.Fatalf("wrong-class read: found=%v err %v", found, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjRegisterOps == 0 || st.ObjMapOps == 0 || st.ObjQueueOps == 0 || st.ObjSnapshotOps == 0 {
		t.Fatalf("per-class counters: reg=%d map=%d queue=%d snap=%d",
			st.ObjRegisterOps, st.ObjMapOps, st.ObjQueueOps, st.ObjSnapshotOps)
	}
	// Every read above (reg get, map gets, qlen, snap scan, the miss
	// reads) took the fast path.
	if st.ReadFastpath < 7 {
		t.Fatalf("read_fastpath = %d, want >= 7", st.ReadFastpath)
	}

	c.Close()
	stop()

	// Restart: every object class must come back from the WAL.
	_, addr2, _ := startStoppable(t, cfg)
	c2 := dial(t, addr2)
	defer c2.Close()
	if v, found, err := c2.RegGet("hits"); err != nil || !found || v != 40 {
		t.Fatalf("register after restart: %d found=%v err %v", v, found, err)
	}
	if v, found, err := c2.MapGet("users", "bob"); err != nil || !found || v != 7 {
		t.Fatalf("map after restart: %d found=%v err %v", v, found, err)
	}
	if _, found, err := c2.MapGet("users", "alice"); err != nil || found {
		t.Fatalf("deleted key resurrected: found=%v err %v", found, err)
	}
	if n, found, err := c2.QLen("jobs"); err != nil || !found || n != 2 {
		t.Fatalf("queue after restart: %d found=%v err %v", n, found, err)
	}
	if res, err := c2.QDeq("jobs"); err != nil || !res.Found || res.Value != 200 {
		t.Fatalf("queue order after restart: %+v err %v", res, err)
	}
	if slots, found, err := c2.SnapScan("probes"); err != nil || !found || len(slots) != 3 || slots[2] != 33 {
		t.Fatalf("snapshot after restart: %v found=%v err %v", slots, found, err)
	}
}

// TestObjectPipelineFrames exercises the kx05 0xC1 pipeline: a mixed
// burst of legacy and object ops in one flush resolves in issue order.
func TestObjectPipelineFrames(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 4, K: 2, Shards: 2})
	c := dial(t, addr)
	defer c.Close()

	if _, err := c.Create("ctr", object.TypeRegister, 0); err != nil {
		t.Fatal(err)
	}
	shard := c.ShardFor("ctr")
	var pendings []*client.Pending
	for i := 0; i < 10; i++ {
		p, err := c.GoObj(wire.KindRegAdd, "ctr", "", shard, 1, 0, c.NextSeq())
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
		// A legacy op rides the same object frame.
		lp, err := c.Go(wire.KindAdd, 0, 1, c.NextSeq())
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, lp)
	}
	for i, p := range pendings {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("pipelined op %d: %v", i, err)
		}
	}
	if v, found, err := c.RegGet("ctr"); err != nil || !found || v != 10 {
		t.Fatalf("after pipeline: %d found=%v err %v", v, found, err)
	}
	if v, err := c.Get(0); err != nil || v != 10 {
		t.Fatalf("legacy shard after pipeline: %d err %v", v, err)
	}
}

// TestAtomicGroupCommitAbortAndRetry pins the 0xC2 all-or-nothing
// contract end to end: a cross-shard group commits as a unit, a group
// with one rejectable member aborts without touching anything, and
// re-issuing a committed group verbatim is answered from the dedup
// window without re-applying.
func TestAtomicGroupCommitAbortAndRetry(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 4, DataDir: dir, Fsync: durable.SyncAlways}
	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	c.SetSession(0xa70)

	mustCreate := func(name string, typ object.Type) {
		t.Helper()
		if res, err := c.Create(name, typ, 0); err != nil || !res.Found {
			t.Fatalf("create %s: %+v err %v", name, res, err)
		}
	}
	mustCreate("acct:a", object.TypeRegister)
	mustCreate("acct:b", object.TypeRegister)
	mustCreate("audit", object.TypeQueue)
	if _, err := c.RegSet("acct:a", 100); err != nil {
		t.Fatal(err)
	}

	// Transfer 30 from a to b with an audit enqueue: three shards, one
	// WAL record.
	transfer := c.AtomicSeqs([]client.AtomicOp{
		{Kind: wire.KindRegAdd, Obj: "acct:a", Arg: -30},
		{Kind: wire.KindRegAdd, Obj: "acct:b", Arg: 30},
		{Kind: wire.KindQEnq, Obj: "audit", Arg: 30},
	})
	results, err := c.Atomic(transfer)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != 70 || results[1].Value != 30 || results[2].Value != 1 {
		t.Fatalf("transfer results: %+v", results)
	}

	// Re-issuing the SAME group (same op IDs) must answer from history:
	// original values, WasDuplicate set, no second transfer.
	again, err := c.Atomic(transfer)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if !r.WasDuplicate || r.Value != results[i].Value {
			t.Fatalf("retried member %d: %+v want duplicate of %+v", i, r, results[i])
		}
	}
	if v, _, err := c.RegGet("acct:a"); err != nil || v != 70 {
		t.Fatalf("retry re-applied: a=%d err %v", v, err)
	}

	// An aborting group: the CAS member observes the wrong value, so
	// NOTHING applies — including the other members — and the op IDs
	// stay unspent.
	mustCreate("conf", object.TypeMap)
	if _, err := c.MapPut("conf", "gen", 5); err != nil {
		t.Fatal(err)
	}
	bad := c.AtomicSeqs([]client.AtomicOp{
		{Kind: wire.KindRegAdd, Obj: "acct:a", Arg: -1000},
		{Kind: wire.KindMapCAS, Obj: "conf", Key: "gen", Arg: 6, Arg2: 4}, // expects 4, finds 5
	})
	if _, err := c.Atomic(bad); !errors.Is(err, client.ErrAtomicAborted) {
		t.Fatalf("rejectable group: err %v, want ErrAtomicAborted", err)
	}
	if v, _, err := c.RegGet("acct:a"); err != nil || v != 70 {
		t.Fatalf("aborted group leaked: a=%d err %v", v, err)
	}
	if v, _, err := c.MapGet("conf", "gen"); err != nil || v != 5 {
		t.Fatalf("aborted group leaked: gen=%d err %v", v, err)
	}

	// The abort left the group's op IDs unspent: fix the offending
	// member and re-issue the SAME ops — they apply fresh.
	bad[1].Arg2 = 5
	fixed, err := c.Atomic(bad)
	if err != nil {
		t.Fatal(err)
	}
	if fixed[0].WasDuplicate || fixed[0].Value != -930 || !fixed[1].Found {
		t.Fatalf("fixed group: %+v", fixed)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchAtomic != 2 {
		t.Fatalf("batch_atomic = %d, want 2 (transfer + fixed; abort and retry count nothing)", st.BatchAtomic)
	}

	c.Close()
	stop()

	// Restart: the committed groups replay atomically from their
	// type-9 records.
	_, addr2, _ := startStoppable(t, cfg)
	c2 := dial(t, addr2)
	defer c2.Close()
	if v, _, err := c2.RegGet("acct:a"); err != nil || v != -930 {
		t.Fatalf("a after restart: %d err %v", v, err)
	}
	if v, _, err := c2.RegGet("acct:b"); err != nil || v != 30 {
		t.Fatalf("b after restart: %d err %v", v, err)
	}
	if n, _, err := c2.QLen("audit"); err != nil || n != 1 {
		t.Fatalf("audit after restart: %d err %v", n, err)
	}
	if v, _, err := c2.MapGet("conf", "gen"); err != nil || v != 6 {
		t.Fatalf("gen after restart: %d err %v", v, err)
	}
}

// TestQueueDequeueExactlyOnceAcrossRestart is the ISSUE's acceptance
// scenario at the package level (kexchaos drives the same sequence
// through SIGKILL): a dequeue whose ack was lost is re-issued with its
// original op ID against the restarted server and must return the
// originally popped value — not pop again.
func TestQueueDequeueExactlyOnceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{N: 4, K: 2, Shards: 2, DataDir: dir, Fsync: durable.SyncAlways}
	_, addr, stop := startStoppable(t, cfg)
	c := dial(t, addr)
	c.SetSession(0xde9)

	if _, err := c.Create("q", object.TypeQueue, 0); err != nil {
		t.Fatal(err)
	}
	shard := c.ShardFor("q")
	for v := int64(1); v <= 3; v++ {
		if _, err := c.QEnq("q", v); err != nil {
			t.Fatal(err)
		}
	}
	const deqSeq = 77
	res, err := c.QDeqOp(shard, "q", deqSeq)
	if err != nil || !res.Found || res.Value != 1 {
		t.Fatalf("first dequeue: %+v err %v", res, err)
	}
	c.Close()
	stop()

	_, addr2, _ := startStoppable(t, cfg)
	c2 := dial(t, addr2)
	defer c2.Close()
	c2.SetSession(0xde9)
	retry, err := c2.QDeqOp(shard, "q", deqSeq)
	if err != nil {
		t.Fatal(err)
	}
	if !retry.WasDuplicate || retry.Value != 1 || !retry.Found {
		t.Fatalf("retried dequeue: %+v, want duplicate of value 1", retry)
	}
	if n, _, err := c2.QLen("q"); err != nil || n != 2 {
		t.Fatalf("queue length = %d, want 2 (no double-pop)", n)
	}
	// The next fresh dequeue continues FIFO order.
	if res, err := c2.QDeqOp(shard, "q", deqSeq+1); err != nil || res.Value != 2 {
		t.Fatalf("next dequeue: %+v err %v", res, err)
	}
}
