package server_test

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// TestPipelineBatchEndToEnd drives a pipelined burst over a real kx04
// server: one flush, one durability wait server-side, responses in
// issue order.
func TestPipelineBatchEndToEnd(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 2, Shards: 2, DataDir: t.TempDir()})
	c := dial(t, addr)
	defer c.Close()
	if !c.Batched() {
		t.Fatal("server did not advertise kx04 batching")
	}
	const depth = 16
	var ps []*client.Pending
	for i := 1; i <= depth; i++ {
		p, err := c.Go(wire.KindAdd, 0, 1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for i, p := range ps {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if resp.Value != int64(i+1) {
			t.Fatalf("op %d: running total %d, want %d (pipeline reordered?)", i, resp.Value, i+1)
		}
	}
	if v, err := c.Get(0); err != nil || v != depth {
		t.Fatalf("Get = %d, %v; want %d", v, err, depth)
	}
}

// TestPipelineHardCloseMidBatchExactlyOnce kills a session right after
// flushing a pipelined batch of mutations: whatever subset the server
// applied, re-issuing the same op IDs over a fresh session must
// converge on exactly-once application, and the dead session's
// identity must come back to the pool.
func TestPipelineHardCloseMidBatchExactlyOnce(t *testing.T) {
	_, addr := startServer(t, server.Config{
		N: 1, K: 1, Shards: 1,
		DataDir:      t.TempDir(),
		AdmitTimeout: 3 * time.Second,
		IdleTimeout:  30 * time.Second,
	})
	const session, ops = 0xfeed, 8

	c1 := dial(t, addr)
	c1.SetSession(session)
	for i := 1; i <= ops; i++ {
		if _, err := c1.Go(wire.KindAdd, 0, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	c1.HardClose() // batch is in flight; acks (if any) are discarded

	// N=1: this dial parks until the server notices the dead socket and
	// reclaims the identity — the reclaim assertion and the healing
	// session in one step.
	c2, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("identity not reclaimed after hard close: %v", err)
	}
	defer c2.Close()
	c2.SetSession(session)
	dupes := 0
	for i := 1; i <= ops; i++ {
		res, err := c2.AddOp(0, 1, uint64(i))
		if err != nil {
			t.Fatalf("re-issue seq %d: %v", i, err)
		}
		if res.WasDuplicate {
			dupes++
		}
		if res.Value != int64(i) {
			t.Fatalf("seq %d: value %d, want %d", i, res.Value, i)
		}
	}
	if v, err := c2.Get(0); err != nil || v != ops {
		t.Fatalf("final value %d, %v; want %d (exactly-once violated)", v, err, ops)
	}
	t.Logf("hard-closed batch: %d/%d ops had landed before the close", dupes, ops)
}

// TestWatchdogReclaimsIdlePipelinedSession checks the idle watchdog
// still spans the read-many loop: a session that pipelined a batch and
// then went silent is torn down, freeing its identity.
func TestWatchdogReclaimsIdlePipelinedSession(t *testing.T) {
	_, addr := startServer(t, server.Config{
		N: 1, K: 1, Shards: 1,
		AdmitTimeout: 3 * time.Second,
		IdleTimeout:  200 * time.Millisecond,
	})
	c1 := dial(t, addr)
	defer c1.Close()
	var ps []*client.Pending
	for i := 1; i <= 4; i++ {
		p, err := c1.Go(wire.KindAdd, 0, 1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// c1 now sits silent between batches — exactly where the watchdog
	// must fire. The only identity frees, admitting c2.
	c2, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("watchdog did not reclaim the idle pipelined session: %v", err)
	}
	c2.Close()
}

// TestDrainLandsMidBatch starts a graceful shutdown while a pipelined
// batch is inside the apply phase: every admitted op of the batch must
// complete and be acknowledged — drain refuses future work, it never
// abandons admitted work.
func TestDrainLandsMidBatch(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, err := server.New(server.Config{
		N: 2, K: 2, Shards: 1,
		ApplyGate: func(uint32, wire.Kind) {
			once.Do(func() {
				close(entered)
				<-release
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()

	c := dial(t, addr.String())
	defer c.Close()
	var ps []*client.Pending
	for i := 1; i <= 3; i++ {
		p, err := c.Go(wire.KindAdd, 0, 1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	<-entered // first op of the batch is inside the wait-free core

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give the drain a moment to land mid-batch, then let the op go.
	time.Sleep(50 * time.Millisecond)
	close(release)

	for i, p := range ps {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("admitted op %d abandoned by drain: %v", i, err)
		}
		if resp.Value != int64(i+1) {
			t.Fatalf("op %d: value %d, want %d", i, resp.Value, i+1)
		}
	}
	// The NEXT cycle sees the drain: a typed refusal or a closed socket.
	if _, err := c.Add(0, 1); err == nil {
		t.Fatal("op after drain succeeded")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestStockKx03ClientRoundTrips speaks raw kx03 against the kx04
// server — plain Request frames, Hello.Msg ignored, exactly what a
// pre-batching client binary does — and must see unchanged behavior.
func TestStockKx03ClientRoundTrips(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 2, Shards: 2})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	hello, err := wire.ReadHello(conn)
	if err != nil {
		t.Fatalf("kx03 hello parse: %v", err)
	}
	if hello.Status != wire.StatusOK {
		t.Fatalf("admission refused: %+v", hello)
	}
	// The capability token rides in Msg, where a kx03 client that reads
	// it sees advisory text and nothing else changed.
	if !strings.Contains(hello.Msg, wire.FeatureBatch) {
		t.Fatalf("hello.Msg = %q: kx04 capability not advertised", hello.Msg)
	}

	for i, tc := range []struct {
		kind wire.Kind
		arg  int64
		want int64
	}{
		{wire.KindAdd, 41, 41},
		{wire.KindAdd, 1, 42},
		{wire.KindGet, 0, 42},
	} {
		req := wire.Request{ID: uint64(i + 1), Kind: tc.kind, Shard: 1, Arg: tc.arg, Session: 0x5eed, Seq: uint64(i + 1)}
		if err := wire.WriteRequest(conn, req); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(conn)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if resp.ID != req.ID || resp.Status != wire.StatusOK || resp.Value != tc.want {
			t.Fatalf("op %d: got %+v, want value %d", i, resp, tc.want)
		}
	}
}
