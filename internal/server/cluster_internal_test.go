package server

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
)

// soloClusterServer builds a cluster-enabled server whose membership is
// just itself (quorum 1, loops never started) — the minimal harness for
// exercising the replication backend directly.
func soloClusterServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		N:       2,
		K:       1,
		Shards:  2,
		DataDir: filepath.Join(t.TempDir(), "solo"),
		Cluster: &ClusterConfig{
			NodeID: "solo",
			Peers: []cluster.Peer{
				{ID: "solo", ClientAddr: "127.0.0.1:1", ReplAddr: "127.0.0.1:0"},
			},
			Quorum: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.node.Stop()
		s.closeLog()
	})
	return s
}

// originRecords fabricates a primary's history for one shard: the same
// Step the origin would run, so Val/Ver cross-check on the follower.
func originRecords(shard uint32, session uint64, seqs []uint64, args []int64) []durable.Record {
	var st durable.ShardState
	recs := make([]durable.Record, 0, len(seqs))
	for i, seq := range seqs {
		out := durable.Step(&st, 1024, session, seq, durable.OpAdd, args[i])
		recs = append(recs, durable.Record{
			Session: session, Seq: seq, Shard: shard,
			Kind: durable.OpAdd, Arg: args[i], Val: out.Val, Ver: out.Ver,
		})
	}
	return recs
}

// TestReplayIdempotentAcrossBatchRestart is the follower-crash-mid-batch
// scenario: a batch is partially applied, the follower dies before
// acking, and on reconnect the whole batch is delivered again. The
// replay must skip the already-applied prefix and land the rest exactly
// once.
func TestReplayIdempotentAcrossBatchRestart(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	const session = 77
	recs := originRecords(0, session, []uint64{1, 2, 3, 4, 5, 6}, []int64{1, 2, 3, 4, 5, 6})

	// First delivery: only a prefix lands before the "crash".
	if _, err := b.ApplyReplicated(recs[:4]); err != nil {
		t.Fatalf("applying prefix: %v", err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 4 || st.Val != 1+2+3+4 {
		t.Fatalf("after prefix: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Redelivery of the full batch (what the pull loop does after a
	// restart resumes below its previous position): the first four must
	// be recognized, the last two applied.
	lsn, err := b.ApplyReplicated(recs)
	if err != nil {
		t.Fatalf("replaying full batch: %v", err)
	}
	if lsn == 0 {
		t.Fatal("replay with fresh records produced no local LSN")
	}
	st := s.tab.shards[0].obj.Peek()
	if st.Ver != 6 || st.Val != 1+2+3+4+5+6 {
		t.Fatalf("after replay: Ver=%d Val=%d (double-applied records?)", st.Ver, st.Val)
	}

	// A third, fully redundant delivery moves nothing and appends nothing.
	lsn, err = b.ApplyReplicated(recs)
	if err != nil {
		t.Fatalf("redundant replay: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("fully redundant batch claimed new LSN %d", lsn)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 6 || st.Val != 21 {
		t.Fatalf("after redundant replay: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// The dedup window replicated too: the origin's client retrying
	// against this node (post-promotion) is answered from history.
	out := durable.Step(ptr(s.tab.shards[0].obj.Peek()), 1024, session, 6, durable.OpAdd, 6)
	if !out.Duplicate || out.Val != 21 {
		t.Fatalf("replicated dedup window missed the origin's op: %+v", out)
	}
}

func ptr(s durable.ShardState) *durable.ShardState { return &s }

func TestReplayRejectsGapsAndDivergence(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(1, 9, []uint64{1, 2, 3}, []int64{10, 10, 10})
	if _, err := b.ApplyReplicated(recs[:1]); err != nil {
		t.Fatal(err)
	}

	// A record beyond the next version is a gap: the stream cannot
	// bridge it and the caller must fall back to a state image.
	if _, err := b.ApplyReplicated(recs[2:]); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("version gap accepted: %v", err)
	}

	// A record whose claimed result disagrees with local re-execution
	// is divergence, not data.
	bad := recs[1]
	bad.Val = 999
	if _, err := b.ApplyReplicated([]durable.Record{bad}); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("diverged record accepted: %v", err)
	}

	// Shard out of table range.
	oob := recs[1]
	oob.Shard = 99
	if _, err := b.ApplyReplicated([]durable.Record{oob}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}

	// The failures above must not have corrupted the good prefix.
	if st := s.tab.shards[1].obj.Peek(); st.Ver != 1 || st.Val != 10 {
		t.Fatalf("state moved on rejected records: Ver=%d Val=%d", st.Ver, st.Val)
	}
}

// TestInstallStateOnlyMovesForward pins the catch-up rule: a state
// image replaces a shard only when strictly newer, and the WAL
// sequencer jumps past the image so the next replicated record appends
// without waiting for versions the image already covers.
func TestInstallStateOnlyMovesForward(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(0, 5, []uint64{1, 2, 3, 4, 5}, []int64{1, 1, 1, 1, 1})
	if _, err := b.ApplyReplicated(recs[:3]); err != nil {
		t.Fatal(err)
	}

	// Stale image (older than local): must not regress.
	if err := b.InstallState(map[uint32]durable.ShardState{0: {Ver: 2, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 3 || st.Val != 3 {
		t.Fatalf("stale image regressed state: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Fresh image from a peer at version 4: installs, and record 5 then
	// applies on top — proving the sequencer reset to 4 (without it the
	// append of version 5 would wait forever for version 4's local
	// append, which the image made moot).
	img := map[uint32]durable.ShardState{0: {Ver: 4, Val: 4}}
	if err := b.InstallState(img); err != nil {
		t.Fatal(err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 4 || st.Val != 4 {
		t.Fatalf("fresh image not installed: Ver=%d Val=%d", st.Ver, st.Val)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.ApplyReplicated(recs[4:])
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("applying past an installed image: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append after InstallState wedged: sequencer did not reset past the image")
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 5 || st.Val != 5 {
		t.Fatalf("record after image: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Out-of-range shard in an image is rejected whole.
	if err := b.InstallState(map[uint32]durable.ShardState{9: {Ver: 1}}); err == nil {
		t.Fatal("image with out-of-range shard accepted")
	}
}
