package server

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
)

// soloClusterServer builds a cluster-enabled server whose membership is
// just itself (quorum 1, loops never started) — the minimal harness for
// exercising the replication backend directly.
func soloClusterServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		N:       2,
		K:       1,
		Shards:  2,
		DataDir: filepath.Join(t.TempDir(), "solo"),
		Cluster: &ClusterConfig{
			NodeID: "solo",
			Peers: []cluster.Peer{
				{ID: "solo", ClientAddr: "127.0.0.1:1", ReplAddr: "127.0.0.1:0"},
			},
			Quorum: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.node.Stop()
		s.closeLog()
	})
	return s
}

// originRecords fabricates a primary's history for one shard: the same
// Step the origin would run, so Val/Ver cross-check on the follower.
func originRecords(shard uint32, session uint64, seqs []uint64, args []int64) []durable.Record {
	var st durable.ShardState
	recs := make([]durable.Record, 0, len(seqs))
	for i, seq := range seqs {
		out := durable.Step(&st, 1024, session, seq, durable.OpAdd, args[i])
		recs = append(recs, durable.Record{
			Session: session, Seq: seq, Shard: shard,
			Kind: durable.OpAdd, Arg: args[i], Val: out.Val, Ver: out.Ver,
			OK: out.OK,
		})
	}
	return recs
}

// TestReplayIdempotentAcrossBatchRestart is the follower-crash-mid-batch
// scenario: a batch is partially applied, the follower dies before
// acking, and on reconnect the whole batch is delivered again. The
// replay must skip the already-applied prefix and land the rest exactly
// once.
func TestReplayIdempotentAcrossBatchRestart(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	const session = 77
	recs := originRecords(0, session, []uint64{1, 2, 3, 4, 5, 6}, []int64{1, 2, 3, 4, 5, 6})

	// First delivery: only a prefix lands before the "crash".
	if _, err := b.ApplyReplicated(recs[:4]); err != nil {
		t.Fatalf("applying prefix: %v", err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 4 || st.Val != 1+2+3+4 {
		t.Fatalf("after prefix: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Redelivery of the full batch (what the pull loop does after a
	// restart resumes below its previous position): the first four must
	// be recognized, the last two applied.
	lsn, err := b.ApplyReplicated(recs)
	if err != nil {
		t.Fatalf("replaying full batch: %v", err)
	}
	if lsn == 0 {
		t.Fatal("replay with fresh records produced no local LSN")
	}
	st := s.tab.shards[0].obj.Peek()
	if st.Ver != 6 || st.Val != 1+2+3+4+5+6 {
		t.Fatalf("after replay: Ver=%d Val=%d (double-applied records?)", st.Ver, st.Val)
	}

	// A third, fully redundant delivery moves nothing and appends nothing.
	lsn, err = b.ApplyReplicated(recs)
	if err != nil {
		t.Fatalf("redundant replay: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("fully redundant batch claimed new LSN %d", lsn)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 6 || st.Val != 21 {
		t.Fatalf("after redundant replay: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// The dedup window replicated too: the origin's client retrying
	// against this node (post-promotion) is answered from history.
	out := durable.Step(ptr(s.tab.shards[0].obj.Peek()), 1024, session, 6, durable.OpAdd, 6)
	if !out.Duplicate || out.Val != 21 {
		t.Fatalf("replicated dedup window missed the origin's op: %+v", out)
	}
}

func ptr(s durable.ShardState) *durable.ShardState { return &s }

func TestReplayRejectsGapsAndDivergence(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(1, 9, []uint64{1, 2, 3}, []int64{10, 10, 10})
	if _, err := b.ApplyReplicated(recs[:1]); err != nil {
		t.Fatal(err)
	}

	// A record beyond the next version is a gap: the stream cannot
	// bridge it and the caller must fall back to a state image.
	if _, err := b.ApplyReplicated(recs[2:]); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("version gap accepted: %v", err)
	}

	// A record whose claimed result disagrees with local re-execution
	// is divergence, not data.
	bad := recs[1]
	bad.Val = 999
	if _, err := b.ApplyReplicated([]durable.Record{bad}); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("diverged record accepted: %v", err)
	}

	// Shard out of table range.
	oob := recs[1]
	oob.Shard = 99
	if _, err := b.ApplyReplicated([]durable.Record{oob}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}

	// The failures above must not have corrupted the good prefix.
	if st := s.tab.shards[1].obj.Peek(); st.Ver != 1 || st.Val != 10 {
		t.Fatalf("state moved on rejected records: Ver=%d Val=%d", st.Ver, st.Val)
	}
}

// TestInstallStateOnlyMovesForward pins the catch-up rule: a state
// image replaces a shard only when strictly newer, and the WAL
// sequencer jumps past the image so the next replicated record appends
// without waiting for versions the image already covers.
func TestInstallStateOnlyMovesForward(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(0, 5, []uint64{1, 2, 3, 4, 5}, []int64{1, 1, 1, 1, 1})
	if _, err := b.ApplyReplicated(recs[:3]); err != nil {
		t.Fatal(err)
	}

	// Stale image (older than local): must not regress.
	if _, err := b.InstallState(map[uint32]durable.ShardState{0: {Ver: 2, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 3 || st.Val != 3 {
		t.Fatalf("stale image regressed state: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Fresh image from a peer at version 4: installs, and record 5 then
	// applies on top — proving the sequencer reset to 4 (without it the
	// append of version 5 would wait forever for version 4's local
	// append, which the image made moot).
	img := map[uint32]durable.ShardState{0: {Ver: 4, Val: 4}}
	if covered, err := b.InstallState(img); err != nil || !covered {
		t.Fatalf("installing fresh image: covered=%v err=%v", covered, err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 4 || st.Val != 4 {
		t.Fatalf("fresh image not installed: Ver=%d Val=%d", st.Ver, st.Val)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.ApplyReplicated(recs[4:])
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("applying past an installed image: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append after InstallState wedged: sequencer did not reset past the image")
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 5 || st.Val != 5 {
		t.Fatalf("record after image: Ver=%d Val=%d", st.Ver, st.Val)
	}

	// Out-of-range shard in an image is rejected whole.
	if _, err := b.InstallState(map[uint32]durable.ShardState{9: {Ver: 1}}); err == nil {
		t.Fatal("image with out-of-range shard accepted")
	}
}

// TestForkReconcileEpochDominance is the forked-history fix head on: a
// deposed primary inflated its version counter with never-acked writes,
// and the promoted peer's image — higher epoch, LOWER version — must
// still replace the fork, retreat the WAL sequencer onto the new line,
// and accept the new epoch's next record. Version-only comparison (the
// reviewed bug) would keep the fork on both counts.
func TestForkReconcileEpochDominance(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	// The fork: ten epoch-0 writes that were never quorum-acked.
	fork := originRecords(0, 31, []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		[]int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	if _, err := b.ApplyReplicated(fork); err != nil {
		t.Fatal(err)
	}

	// The acknowledged history: epoch 1 at version 5 only.
	img := map[uint32]durable.ShardState{0: {Epoch: 1, Ver: 5, Val: 500}}
	covered, err := b.InstallState(img)
	if err != nil || !covered {
		t.Fatalf("installing higher-epoch image: covered=%v err=%v", covered, err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Epoch != 1 || st.Ver != 5 || st.Val != 500 {
		t.Fatalf("inflated fork survived a higher-epoch image: %+v", st)
	}

	// The sequencer retreated with the install: version 6 of epoch 1
	// appends without waiting for the fork's versions 6..10.
	next := durable.Record{Session: 32, Seq: 1, Shard: 0,
		Kind: durable.OpAdd, Arg: 1, Val: 501, Ver: 6, Epoch: 1, OK: true}
	done := make(chan error, 1)
	go func() {
		lsn, err := b.ApplyReplicated([]durable.Record{next})
		if err == nil && lsn == 0 {
			err = errors.New("record on the installed line appended nothing")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("applying on the installed line: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append wedged: sequencer did not retreat past the fenced fork")
	}
	if st := s.tab.shards[0].obj.Peek(); st.Epoch != 1 || st.Ver != 6 || st.Val != 501 {
		t.Fatalf("after post-install record: %+v", st)
	}

	// Equal versions, different epochs: the epoch decides, not arrival
	// order or version arithmetic.
	covered, err = b.InstallState(map[uint32]durable.ShardState{0: {Epoch: 2, Ver: 6, Val: 999}})
	if err != nil || !covered {
		t.Fatalf("equal-version higher-epoch image: covered=%v err=%v", covered, err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Epoch != 2 || st.Ver != 6 || st.Val != 999 {
		t.Fatalf("equal-version fork kept over higher epoch: %+v", st)
	}
}

// TestStaleEpochRefused pins the fence itself: once a shard's epoch
// moves (a local promotion), a deposed primary's records and state
// images from the old epoch are refused — records with ErrReplStale
// (quarantining the stream), images by installing nothing and reporting
// covered=false (freezing the follower's acks).
func TestStaleEpochRefused(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(0, 41, []uint64{1}, []int64{5})
	if _, err := b.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if err := b.BumpEpochs([]uint32{0}); err != nil {
		t.Fatalf("bump: %v", err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Epoch != 1 || st.Ver != 1 || st.Val != 5 {
		t.Fatalf("after bump: %+v", st)
	}

	fork := durable.Record{Session: 41, Seq: 2, Shard: 0,
		Kind: durable.OpAdd, Arg: 9, Val: 14, Ver: 2, Epoch: 0}
	if _, err := b.ApplyReplicated([]durable.Record{fork}); !errors.Is(err, cluster.ErrReplStale) {
		t.Fatalf("stale-epoch record: err %v, want ErrReplStale", err)
	}
	covered, err := b.InstallState(map[uint32]durable.ShardState{0: {Epoch: 0, Ver: 50, Val: 999}})
	if err != nil {
		t.Fatalf("stale image: %v", err)
	}
	if covered {
		t.Fatal("stale-epoch image reported covered: its sender's acks would count toward quorum")
	}
	if st := s.tab.shards[0].obj.Peek(); st.Epoch != 1 || st.Ver != 1 || st.Val != 5 {
		t.Fatalf("stale delivery moved state: %+v", st)
	}
}

// TestApplyReplicatedAdoptsPromotionEpoch: a record that continues the
// version line at a higher epoch is a promotion observed through the
// stream. It must apply, carry its epoch into local state, and be
// fenced by a snapshot rather than appended (LSN 0); the epoch's next
// record then appends normally.
func TestApplyReplicatedAdoptsPromotionEpoch(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(1, 51, []uint64{1, 2}, []int64{3, 4})
	if _, err := b.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}

	adopt := durable.Record{Session: 51, Seq: 3, Shard: 1,
		Kind: durable.OpAdd, Arg: 5, Val: 12, Ver: 3, Epoch: 1, OK: true}
	lsn, err := b.ApplyReplicated([]durable.Record{adopt})
	if err != nil {
		t.Fatalf("epoch-crossing record: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("epoch-crossing record appended (LSN %d); must be snapshot-fenced", lsn)
	}
	if st := s.tab.shards[1].obj.Peek(); st.Epoch != 1 || st.Ver != 3 || st.Val != 12 {
		t.Fatalf("after adopt: %+v", st)
	}

	next := durable.Record{Session: 51, Seq: 4, Shard: 1,
		Kind: durable.OpAdd, Arg: 1, Val: 13, Ver: 4, Epoch: 1, OK: true}
	lsn, err = b.ApplyReplicated([]durable.Record{next})
	if err != nil || lsn == 0 {
		t.Fatalf("record after adopt: lsn=%d err=%v (sequencer not on the new epoch?)", lsn, err)
	}
	if st := s.tab.shards[1].obj.Peek(); st.Epoch != 1 || st.Ver != 4 || st.Val != 13 {
		t.Fatalf("after post-adopt record: %+v", st)
	}
}

// TestReplSkipCrossChecksDedup: within one epoch, a redelivered record
// the dedup window still remembers must match local history exactly; a
// value mismatch or a never-seen op ID inside claimed versions is a
// same-epoch fork (ErrReplDiverged), while honest redelivery skips.
func TestReplSkipCrossChecksDedup(t *testing.T) {
	s := soloClusterServer(t)
	b := &replBackend{s: s}

	recs := originRecords(0, 61, []uint64{1, 2}, []int64{1, 2})
	if _, err := b.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}

	bad := recs[1]
	bad.Val = 777
	if _, err := b.ApplyReplicated([]durable.Record{bad}); !errors.Is(err, cluster.ErrReplDiverged) {
		t.Fatalf("altered redelivery: err %v, want ErrReplDiverged", err)
	}
	// An op the window has never seen, claiming an already-covered
	// version: local history cannot contain it.
	phantom := durable.Record{Session: 61, Seq: 9, Shard: 0,
		Kind: durable.OpAdd, Arg: 1, Val: 2, Ver: 2, Epoch: 0}
	if _, err := b.ApplyReplicated([]durable.Record{phantom}); !errors.Is(err, cluster.ErrReplDiverged) {
		t.Fatalf("phantom op in covered versions: err %v, want ErrReplDiverged", err)
	}
	lsn, err := b.ApplyReplicated(recs)
	if err != nil || lsn != 0 {
		t.Fatalf("honest redelivery: lsn=%d err=%v", lsn, err)
	}
	if st := s.tab.shards[0].obj.Peek(); st.Ver != 2 || st.Val != 3 {
		t.Fatalf("state moved on rejected redelivery: %+v", st)
	}
}

// TestAppendSequencerInstallAbortsWaiters is the sequencer-wedge fix in
// isolation: a waiter parked on a version that an install retreats past
// (or whose epoch an install supersedes) must return false promptly,
// not block forever.
func TestAppendSequencerInstallAbortsWaiters(t *testing.T) {
	g := newAppendSequencer(durable.ShardState{Ver: 2}) // next append: (3, epoch 0)

	await := func(what string, ch <-chan bool, want bool) {
		t.Helper()
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("%s returned %v, want %v", what, got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s wedged after install", what)
		}
	}

	// The reviewed wedge: waitTurn(5) parked, install supersedes the
	// epoch at a LOWER version. Pre-fix this waiter never woke.
	turn := make(chan bool, 1)
	go func() { turn <- g.waitTurn(5, 0) }()
	g.install(4, 1)
	await("old-epoch waitTurn", turn, false)

	// The installed line is immediately appendable where it resumed.
	if !g.waitTurn(5, 1) {
		t.Fatal("next version of the installed line refused")
	}
	g.advance(5, 1)

	// Same-epoch supersede: an install covering the waiter's version.
	go func() { turn <- g.waitTurn(7, 1) }()
	g.install(8, 1)
	await("covered-version waitTurn", turn, false)

	// waitAppended must abort too: the record it vouches for may have
	// been fenced off with its epoch.
	appended := make(chan bool, 1)
	go func() { appended <- g.waitAppended(20, 1) }()
	g.install(1, 2)
	await("superseded waitAppended", appended, false)

	// Late arrivals from a dead epoch fail synchronously.
	if g.waitTurn(2, 1) {
		t.Fatal("waitTurn admitted an append from a superseded epoch")
	}
	if g.waitAppended(1, 1) {
		t.Fatal("waitAppended vouched for a superseded epoch")
	}
}
