package server

import "sync/atomic"

// Phase is the server lifecycle state. Every operational decision the
// server makes — admit or shed a connection, start or refuse an
// operation, arm or disarm the watchdog's drain interplay — is routed
// through the current phase, so "what is the server doing right now"
// has exactly one answer, and the ops endpoints (/readyz, /metrics)
// report that answer instead of reconstructing it from scattered flags.
//
// The legal transitions form a line with one detour:
//
//	starting → recovering → running ⇄ degraded
//	     \________\____________\________/
//	                   ↓
//	               draining → stopped
//
// starting and recovering may also step directly to running (a server
// without a data directory never recovers) or to draining/stopped (a
// shutdown or boot failure before serving began). degraded is the
// load-shedding detour: still serving, but refusing new admissions
// until the backlog clears. Once draining, nothing resurrects the
// server — a racing degraded↔running flip loses to drain by
// construction (the transition is only legal from the exact phase the
// flipper observed).
type Phase uint32

const (
	// PhaseStarting: constructed but not yet serving.
	PhaseStarting Phase = iota
	// PhaseRecovering: replaying the data directory (snapshot + WAL
	// tail) before any connection is accepted.
	PhaseRecovering
	// PhaseRunning: serving and healthy.
	PhaseRunning
	// PhaseDegraded: serving, but shedding new admissions — the
	// admission queue crossed the shed policy's high watermark and has
	// not yet fallen back to the low one.
	PhaseDegraded
	// PhaseDraining: graceful shutdown has begun; no new admissions, no
	// new operations, in-flight operations complete.
	PhaseDraining
	// PhaseStopped: every session torn down, durability closed.
	PhaseStopped
)

// String names the phase (the /readyz body and the stats `phase` field).
func (p Phase) String() string {
	switch p {
	case PhaseStarting:
		return "starting"
	case PhaseRecovering:
		return "recovering"
	case PhaseRunning:
		return "running"
	case PhaseDegraded:
		return "degraded"
	case PhaseDraining:
		return "draining"
	case PhaseStopped:
		return "stopped"
	}
	return "unknown"
}

// Ready reports whether a readiness probe should pass: the server is
// accepting work. Degraded counts as ready — it is still serving
// admitted sessions and sheds only new admissions; flipping a load
// balancer away from a degraded server would turn backpressure into an
// outage.
func (p Phase) Ready() bool { return p == PhaseRunning || p == PhaseDegraded }

// legalTransition reports whether from → to is a lawful step of the
// lifecycle machine.
func legalTransition(from, to Phase) bool {
	switch to {
	case PhaseRecovering:
		return from == PhaseStarting
	case PhaseRunning:
		return from == PhaseStarting || from == PhaseRecovering || from == PhaseDegraded
	case PhaseDegraded:
		return from == PhaseRunning
	case PhaseDraining:
		return from == PhaseStarting || from == PhaseRecovering || from == PhaseRunning || from == PhaseDegraded
	case PhaseStopped:
		// Draining is the normal road in; starting/recovering may stop
		// directly when boot fails before serving began.
		return from == PhaseDraining || from == PhaseStarting || from == PhaseRecovering
	}
	return false
}

// Lifecycle is the server's phase cell. It is created before the
// Server itself (see Config.Lifecycle) so the ops endpoints can answer
// readiness probes while the server is still recovering its data
// directory — the recovery window is exactly when an orchestrator most
// needs an honest not-ready.
//
// The zero value is invalid; use NewLifecycle.
type Lifecycle struct {
	cur atomic.Uint32
}

// NewLifecycle returns a lifecycle in PhaseStarting.
func NewLifecycle() *Lifecycle { return &Lifecycle{} }

// Phase reports the current phase.
func (lc *Lifecycle) Phase() Phase { return Phase(lc.cur.Load()) }

// advance moves to phase to if the transition is legal from the
// current phase, reporting whether this call performed it. Illegal
// transitions are silent no-ops: a shed-policy recovery racing a drain
// must lose, not error.
func (lc *Lifecycle) advance(to Phase) bool {
	for {
		cur := Phase(lc.cur.Load())
		if cur == to || !legalTransition(cur, to) {
			return false
		}
		if lc.cur.CompareAndSwap(uint32(cur), uint32(to)) {
			return true
		}
	}
}
