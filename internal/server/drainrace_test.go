package server_test

import (
	"context"
	"net"
	"testing"
	"time"

	"kexclusion/internal/server"
	"kexclusion/internal/wire"
)

// TestDrainVsWatchdogReclaim races graceful drain against the idle
// watchdog: sessions sit silent so their idle deadlines fire in the
// same window Shutdown sweeps read deadlines and tears the server down.
// Both paths end the same session loop, and both funnel into the one
// deferred release — so every identity must be reclaimed exactly once,
// however the race lands. Run under -race this also proves the two
// teardown paths share no unsynchronized state.
func TestDrainVsWatchdogReclaim(t *testing.T) {
	const n = 4
	for round := 0; round < 8; round++ {
		srv, err := server.New(server.Config{
			N: n, K: 2, Shards: 1,
			IdleTimeout: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- srv.Serve() }()

		// Admit n sessions, then leave them all silent: each one's idle
		// deadline is now ticking.
		conns := make([]net.Conn, n)
		for i := range conns {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = conn
			if h, err := wire.ReadHello(conn); err != nil || h.Status != wire.StatusOK {
				t.Fatalf("round %d: hello = %+v, %v", round, h, err)
			}
		}

		// Vary where the drain lands relative to the 20ms idle deadline —
		// before it, around it, after it — so across rounds the watchdog
		// and the drain sweep hit sessions in every interleaving.
		time.Sleep(time.Duration(round) * 4 * time.Millisecond)

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("round %d: drain failed: %v", round, err)
		}
		cancel()
		if err := <-served; err != nil {
			t.Fatalf("round %d: Serve returned %v", round, err)
		}
		for _, conn := range conns {
			conn.Close()
		}

		st := srv.Stats()
		if st.Admitted != n {
			t.Fatalf("round %d: admitted %d, want %d", round, st.Admitted, n)
		}
		// Exactly once: every admitted identity returned to the pool one
		// time, whether the watchdog or the drain sweep ended it. More
		// would mean a double release (pool corruption); fewer, a leaked
		// identity.
		if st.Reclaimed != n {
			t.Fatalf("round %d: reclaimed %d identities of %d admitted (idle_reclaims=%d)",
				round, st.Reclaimed, n, st.IdleReclaims)
		}
		if st.ActiveSessions != 0 {
			t.Fatalf("round %d: %d sessions still active after drain", round, st.ActiveSessions)
		}
		if got := srv.Phase(); got != server.PhaseStopped {
			t.Fatalf("round %d: phase = %v after drain, want stopped", round, got)
		}
	}
}
