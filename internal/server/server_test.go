package server_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// startServer builds, binds and serves a server on an ephemeral port,
// returning its address and a stop function that asserts a clean drain.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, addr.String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg  server.Config
		want string
	}{
		{server.Config{N: 4, K: 0, Shards: 1}, "k must be at least 1"},
		{server.Config{N: 2, K: 4, Shards: 1}, "n >= k"},
		{server.Config{N: 4, K: 2, Shards: 0}, "shards must be at least 1"},
		{server.Config{N: 4, K: 2, Shards: 1, Impl: "nonesuch"}, "unknown implementation"},
		{server.Config{N: 4, K: 1, Shards: 1, Impl: "mcs"}, "not (k-1)-resilient"},
		{server.Config{N: 4, K: 2, Shards: 1, IdleTimeout: -time.Second}, "idle timeout"},
		{server.Config{N: 4, K: 2, Shards: 1, OpTimeout: -time.Second}, "op timeout"},
	}
	for _, tc := range cases {
		_, err := server.New(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%+v): got %v, want error containing %q", tc.cfg, err, tc.want)
		}
	}
	if _, err := server.New(server.Config{N: 4, K: 4, Shards: 1}); err != nil {
		t.Errorf("n == k rejected: %v", err)
	}
}

func TestBasicOps(t *testing.T) {
	srv, addr := startServer(t, server.Config{N: 4, K: 2, Shards: 2})
	c := dial(t, addr)
	defer c.Close()

	if c.Identity() < 0 || c.Identity() >= 4 {
		t.Fatalf("identity %d out of range", c.Identity())
	}
	if h := c.Hello(); h.N != 4 || h.K != 2 || h.Shards != 2 {
		t.Fatalf("hello shape %+v", h)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Add(0, 5); err != nil || v != 5 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if v, err := c.Add(0, -2); err != nil || v != 3 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if err := c.Set(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(1); err != nil || v != 100 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if v, err := c.Get(0); err != nil || v != 3 {
		t.Fatalf("shards not independent: Get(0) = %d, %v", v, err)
	}

	// Out-of-range shard surfaces as a typed error, session stays usable.
	var we *wire.Error
	if _, err := c.Get(99); !errors.As(err, &we) || we.Status != wire.StatusBadShard {
		t.Fatalf("Get(99) = %v, want bad_shard", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("session unusable after bad shard: %v", err)
	}

	// Stats endpoint: both the wire form and the server's own snapshot.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.K != 2 || st.Shards != 2 || st.Impl != "fastpath" {
		t.Fatalf("stats shape %+v", st)
	}
	if st.ActiveSessions != 1 || st.Admitted != 1 {
		t.Fatalf("session counters %+v", st)
	}
	if len(st.PerShard) != 2 || st.PerShard[0].AppliedOps < 3 {
		t.Fatalf("per-shard metrics %+v", st.PerShard)
	}
	if got := srv.Stats(); got.Admitted != st.Admitted {
		t.Fatalf("server/wire stats disagree: %+v vs %+v", got, st)
	}
}

func TestConcurrentClients(t *testing.T) {
	const (
		n, k, shards = 8, 3, 4
		clients      = 8
		opsPer       = 50
	)
	// AdmitTimeout lets the verification dial below park briefly: it
	// races the server noticing the eight workers' EOFs, and with
	// immediate-reject admission that race occasionally loses.
	_, addr := startServer(t, server.Config{N: n, K: k, Shards: shards, AdmitTimeout: 5 * time.Second})

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			shard := uint32(i % shards)
			for j := 0; j < opsPer; j++ {
				if _, err := c.Add(shard, 1); err != nil {
					t.Errorf("client %d op %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	c := dial(t, addr)
	defer c.Close()
	total := int64(0)
	for sh := uint32(0); sh < shards; sh++ {
		v, err := c.Get(sh)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if want := int64(clients * opsPer); total != want {
		t.Fatalf("lost updates: total %d, want %d", total, want)
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 2, K: 1, Shards: 1})
	c1 := dial(t, addr)
	defer c1.Close()
	c2 := dial(t, addr)

	// Connection N+1 is rejected with busy, not a hang or a panic.
	_, err := client.Dial(addr)
	var we *wire.Error
	if !errors.As(err, &we) || we.Status != wire.StatusBusy {
		t.Fatalf("connection N+1: got %v, want busy", err)
	}

	// Close one session; its identity frees and a new client admits.
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := client.Dial(addr)
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("identity never freed after clean close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionParking(t *testing.T) {
	_, addr := startServer(t, server.Config{N: 1, K: 1, Shards: 1, AdmitTimeout: 5 * time.Second})
	c1 := dial(t, addr)

	// Free the only identity shortly; the parked dial should then admit
	// well within the window instead of being bounced.
	go func() {
		time.Sleep(50 * time.Millisecond)
		c1.Close()
	}()
	start := time.Now()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("parked connection not admitted: %v", err)
	}
	defer c2.Close()
	if time.Since(start) > 4*time.Second {
		t.Fatalf("parking took %v, want prompt admission after release", time.Since(start))
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestHardCloseInsideCore is the acceptance test: a client's socket is
// hard-closed (RST) while its session is inside the wait-free core —
// holding a k-assignment slot and a name — and the server must (a) keep
// serving every other client, and (b) eventually reclaim the dead
// session's identity.
func TestHardCloseInsideCore(t *testing.T) {
	const n, k = 4, 2
	gate := make(chan struct{})
	entered := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	cfg := server.Config{
		N: n, K: k, Shards: 1,
		// The first Add to pass through the core stalls on the gate.
		ApplyGate: func(shard uint32, kind wire.Kind) {
			if kind == wire.KindAdd && armed.CompareAndSwap(true, false) {
				close(entered)
				<-gate
			}
		},
	}
	srv, addr := startServer(t, cfg)

	victim := dial(t, addr)
	victimDone := make(chan error, 1)
	go func() {
		_, err := victim.Add(0, 1)
		victimDone <- err
	}()
	<-entered // the victim's session now holds a slot inside the core

	// Crash fault: kill the socket while the operation is in flight.
	if err := victim.HardClose(); err != nil {
		t.Fatal(err)
	}

	// Liveness: with one of k=2 slots held by a dead session, other
	// clients still make bounded progress through the same shard.
	c1, c2 := dial(t, addr), dial(t, addr)
	defer c1.Close()
	defer c2.Close()
	for i := 0; i < 20; i++ {
		if _, err := c1.Add(0, 1); err != nil {
			t.Fatalf("c1 op %d while dead session holds a slot: %v", i, err)
		}
		if _, err := c2.Add(0, 1); err != nil {
			t.Fatalf("c2 op %d while dead session holds a slot: %v", i, err)
		}
	}

	// The victim's client must observe the crash, not a result.
	if err := <-victimDone; err == nil {
		t.Fatal("victim's Add returned a response over a hard-closed socket")
	}

	// Let the stalled operation finish: the server completes it
	// (operations received before the disconnect still linearize),
	// discovers the dead socket, and reclaims the identity.
	close(gate)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.ActiveSessions == 2 && st.Reclaimed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim identity never reclaimed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The reclaimed identity is reusable: fill the pool to exactly N.
	var extra []*client.Client
	defer func() {
		for _, c := range extra {
			c.Close()
		}
	}()
	for len(extra) < n-2 {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("pool not refillable after reclaim: %v", err)
		}
		extra = append(extra, c)
	}

	// The victim's in-flight Add completed server-side before reclaim:
	// 1 (victim) + 40 (c1+c2).
	if v, err := c1.Get(0); err != nil || v != 41 {
		t.Fatalf("counter = %d, %v; want 41 (victim's op linearized before teardown)", v, err)
	}
}

func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	cfg := server.Config{
		N: 4, K: 2, Shards: 1,
		ApplyGate: func(shard uint32, kind wire.Kind) {
			if kind == wire.KindAdd {
				once.Do(func() { close(started) })
				<-release
			}
		},
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()

	c := dial(t, addr.String())
	defer c.Close()
	idle := dial(t, addr.String())
	defer idle.Close()

	opDone := make(chan error, 1)
	var got int64
	go func() {
		v, err := c.Add(0, 7)
		got = v
		opDone <- err
	}()
	<-started

	// Drain while the Add is in flight; release the gate shortly after
	// so the in-flight operation can complete inside the deadline.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}

	// The in-flight operation completed with its response delivered.
	if err := <-opDone; err != nil || got != 7 {
		t.Fatalf("in-flight op during drain: v=%d err=%v", got, err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}

	// New connections are refused outright.
	if _, err := client.Dial(addr.String()); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	if st := srv.Stats(); !st.Draining || st.ActiveSessions != 0 {
		t.Fatalf("post-drain stats %+v", st)
	}
}

func TestDrainDeadline(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	cfg := server.Config{
		N: 2, K: 1, Shards: 1,
		ApplyGate: func(shard uint32, kind wire.Kind) {
			if kind == wire.KindAdd {
				once.Do(func() { close(started) })
				<-release
			}
		},
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	defer func() {
		close(release) // let the stalled session finish and tear down
		<-served
	}()

	c := dial(t, addr.String())
	defer c.Close()
	go c.Add(0, 1)
	<-started

	// The gate never releases within the deadline: Shutdown must give
	// up with ctx's error instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("Shutdown took %v past its deadline", time.Since(start))
	}
}

func TestStatsJSONDeterministicSchema(t *testing.T) {
	srv, err := server.New(server.Config{N: 2, K: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := srv.Stats().JSON()
	for _, key := range []string{`"n"`, `"k"`, `"shards"`, `"impl"`, `"active_sessions"`, `"per_shard"`, `"idle_reclaims"`, `"op_deadlines"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("stats JSON missing %s: %s", key, b)
		}
	}
	if _, err := wire.ParseStats(b); err != nil {
		t.Fatal(err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	srv, err := server.New(server.Config{N: 2, K: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(); err == nil {
		t.Fatal("Serve before Listen succeeded")
	}
}

func TestRegistryImplChoices(t *testing.T) {
	// Every resilient, shape-flexible registry implementation can guard
	// the admission edge.
	for _, impl := range []string{"inductive", "tree", "fastpath", "graceful", "localspin", "lsfastpath", "counting", "chansem"} {
		impl := impl
		t.Run(impl, func(t *testing.T) {
			_, addr := startServer(t, server.Config{N: 3, K: 2, Shards: 1, Impl: impl})
			c := dial(t, addr)
			defer c.Close()
			if v, err := c.Add(0, 3); err != nil || v != 3 {
				t.Fatalf("Add = %d, %v", v, err)
			}
			if st, err := c.Stats(); err != nil || st.Impl != impl {
				t.Fatalf("stats impl = %+v, %v", st, err)
			}
		})
	}
}
