package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"kexclusion/internal/cluster"
	"kexclusion/internal/durable"
	"kexclusion/internal/server"
	"kexclusion/internal/server/client"
	"kexclusion/internal/wire"
)

// cnode is one member of an in-process test cluster.
type cnode struct {
	id   string
	addr string // client address
	srv  *server.Server
	stop func() error
	dead bool
}

// reservePort grabs an ephemeral localhost port and releases it for
// immediate reuse. The tiny window before the server rebinds it is the
// standard test trade-off for needing every address in every node's
// config before any node exists.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startTestCluster boots a size-node cluster on ephemeral ports with a
// tight failure detector, and registers cleanup for whatever the test
// has not already killed.
func startTestCluster(t *testing.T, size, shards, quorum int) []*cnode {
	t.Helper()
	peers := make([]cluster.Peer, size)
	for i := range peers {
		peers[i] = cluster.Peer{
			ID:         fmt.Sprintf("node-%d", i),
			ClientAddr: reservePort(t),
			ReplAddr:   reservePort(t),
		}
	}
	dir := t.TempDir()
	nodes := make([]*cnode, size)
	for i, p := range peers {
		srv, err := server.New(server.Config{
			N:       4,
			K:       2,
			Shards:  shards,
			DataDir: filepath.Join(dir, p.ID),
			Fsync:   durable.SyncAlways,
			Cluster: &server.ClusterConfig{
				NodeID:        p.ID,
				Peers:         peers,
				Quorum:        quorum,
				FailAfter:     400 * time.Millisecond,
				PullWait:      50 * time.Millisecond,
				QuorumTimeout: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Listen(p.ClientAddr); err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- srv.Serve() }()
		n := &cnode{id: p.ID, addr: p.ClientAddr, srv: srv}
		n.stop = func() error {
			if n.dead {
				return nil
			}
			n.dead = true
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			err := srv.Shutdown(ctx)
			if serr := <-served; serr != nil && err == nil {
				err = serr
			}
			return err
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if err := n.stop(); err != nil {
				t.Errorf("stopping %s: %v", n.id, err)
			}
		}
	})
	return nodes
}

// ownerOf finds the live node currently serving shard.
func ownerOf(t *testing.T, nodes []*cnode, shard uint32) *cnode {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if !n.dead && n.srv.Node().Owns(shard) {
				return n
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no live node serves shard %d", shard)
	return nil
}

// waitReplicated polls until every live node's followers have acked its
// whole WAL (worst-case replica lag zero everywhere).
func waitReplicated(t *testing.T, nodes []*cnode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lag := int64(0)
		for _, n := range nodes {
			if n.dead {
				continue
			}
			if l := n.srv.Stats().ReplicaLagLSN; l > lag {
				lag = l
			}
		}
		if lag == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("replicas never caught up")
}

// TestClusterReplicationRedirectAndFailover is the end-to-end story:
// ops land on ring owners under a 2-of-3 quorum, misrouted ops bounce
// with the owner's address, and killing a primary moves its shards —
// with exact state — to a successor.
func TestClusterReplicationRedirectAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node cluster test")
	}
	const shards = 4
	nodes := startTestCluster(t, 3, shards, 2)

	// A misrouted op is refused with the owner's client address, before
	// it touches the object.
	owner0 := ownerOf(t, nodes, 0)
	var wrong *cnode
	for _, n := range nodes {
		if n != owner0 {
			wrong = n
			break
		}
	}
	cw := dial(t, wrong.addr)
	var we *wire.Error
	if _, err := cw.Add(0, 1); !errors.As(err, &we) || we.Status != wire.StatusNotPrimary {
		t.Fatalf("Add on non-owner = %v, want not_primary", err)
	}
	if we.Msg != owner0.addr {
		t.Fatalf("redirect hint %q, want owner %q", we.Msg, owner0.addr)
	}
	if got := wrong.srv.Stats().NotPrimaryRedirects; got < 1 {
		t.Fatalf("NotPrimaryRedirects = %d after a redirect", got)
	}
	cw.Close()

	// Write through each shard's owner; every ack waited for the 2-of-3
	// quorum, so by the time Add returns the record is on two disks.
	want := make(map[uint32]int64)
	conns := make(map[*cnode]*client.Client)
	for s := uint32(0); s < shards; s++ {
		o := ownerOf(t, nodes, s)
		c, ok := conns[o]
		if !ok {
			c = dial(t, o.addr)
			conns[o] = c
		}
		for i := int64(1); i <= 5; i++ {
			v, err := c.Add(s, i)
			if err != nil {
				t.Fatalf("Add(%d, %d) on %s: %v", s, i, o.id, err)
			}
			want[s] += i
			if v != want[s] {
				t.Fatalf("Add(%d) = %d, want %d", s, v, want[s])
			}
		}
		if acks := o.srv.Stats().QuorumAcks; acks < 5 {
			t.Fatalf("%s QuorumAcks = %d after 5 quorum-gated ops", o.id, acks)
		}
	}
	for _, c := range conns {
		c.Close()
	}
	waitReplicated(t, nodes)

	// Kill shard 0's primary. Its shards must fall to live successors
	// carrying the exact acked state.
	victim := ownerOf(t, nodes, 0)
	if err := victim.stop(); err != nil {
		t.Fatalf("stopping %s: %v", victim.id, err)
	}
	heir := ownerOf(t, nodes, 0)
	if heir == victim {
		t.Fatal("dead node still listed as owner")
	}
	ch := dial(t, heir.addr)
	defer ch.Close()
	if v, err := ch.Get(0); err != nil || v != want[0] {
		t.Fatalf("Get(0) on successor %s = %d, %v; want %d", heir.id, v, err, want[0])
	}
	// The survivor pair still clears the 2-of-3 quorum, so writes keep
	// flowing after the failover.
	if v, err := ch.Add(0, 7); err != nil || v != want[0]+7 {
		t.Fatalf("post-failover Add = %d, %v; want %d", v, err, want[0]+7)
	}
	if heir.srv.Promotions() < 1 {
		t.Fatalf("successor %s reports no promotions", heir.id)
	}
	if ph := heir.srv.PromotionPhase(); ph != server.PhaseRunning {
		t.Fatalf("promotion phase %v, want running", ph)
	}

	// The remaining non-owner redirects to the new primary once its
	// failure detector has caught up.
	var other *cnode
	for _, n := range nodes {
		if n != heir && !n.dead {
			other = n
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hint := other.srv.Node().PrimaryAddr(0); hint == heir.addr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never redirected shard 0 to %s", other.id, heir.id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterPromotionGatedBelowQuorum is the minority-takeover guard:
// a member that has never reached a quorum of the cluster (here: one
// node of three at quorum 2, peers never started) must not promote
// itself for ANY shard, no matter how long its failure detector has
// considered the absent peers dead. Pre-fix, such a node declared its
// peers suspect after FailAfter and took over every shard — the exact
// split-brain seed the review flagged.
func TestClusterPromotionGatedBelowQuorum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node cluster test")
	}
	peers := []cluster.Peer{
		{ID: "a", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
		{ID: "b", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
		{ID: "c", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
	}
	const shards = 4
	srv, err := server.New(server.Config{
		N: 4, K: 2, Shards: shards,
		DataDir: filepath.Join(t.TempDir(), "a"),
		Fsync:   durable.SyncAlways,
		Cluster: &server.ClusterConfig{
			NodeID: "a", Peers: peers, Quorum: 2,
			FailAfter: 400 * time.Millisecond, PullWait: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(peers[0].ClientAddr); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	// Watch for several failure-detector periods: plenty of time for the
	// pre-fix behavior (suspect peers, promote) to manifest.
	deadline := time.Now().Add(4 * 400 * time.Millisecond)
	for time.Now().Before(deadline) {
		for s := uint32(0); s < shards; s++ {
			if srv.Node().Owns(s) {
				t.Fatalf("isolated minority promoted itself for shard %d", s)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if p := srv.Promotions(); p != 0 {
		t.Fatalf("isolated minority completed %d promotions", p)
	}
}

// TestClusterQuorumOneDoesNotWaitForFollowers pins the -quorum 1 mode:
// acks release on local durability alone, so a cluster of one live
// primary (followers never started) still serves.
func TestClusterQuorumOneDoesNotWaitForFollowers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node cluster test")
	}
	peers := []cluster.Peer{
		{ID: "a", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
		{ID: "b", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
		{ID: "c", ClientAddr: reservePort(t), ReplAddr: reservePort(t)},
	}
	srv, err := server.New(server.Config{
		N: 4, K: 2, Shards: 1,
		DataDir: filepath.Join(t.TempDir(), "a"),
		Fsync:   durable.SyncAlways,
		Cluster: &server.ClusterConfig{
			NodeID: "a", Peers: peers, Quorum: 1,
			FailAfter: 400 * time.Millisecond, PullWait: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(peers[0].ClientAddr); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	// Shard 0 may be placed on an absent peer; once the failure detector
	// marks both peers suspect, the lone member promotes itself for
	// every shard.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Node().Owns(0) {
		if time.Now().After(deadline) {
			t.Fatal("lone member never took over shard 0 from its absent peers")
		}
		time.Sleep(20 * time.Millisecond)
	}
	c := dial(t, peers[0].ClientAddr)
	defer c.Close()
	if v, err := c.Add(0, 1); err != nil || v != 1 {
		t.Fatalf("Add on lone primary at quorum 1 = %d, %v", v, err)
	}
}
