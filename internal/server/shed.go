package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"kexclusion/internal/wire"
)

// ShedPolicy turns the server's park-then-busy backpressure into a
// tunable load-shedding policy. Two independent controls:
//
//   - Queue-depth watermarks (QueueHigh/QueueLow) govern admission.
//     The admission queue is the set of connections parked in
//     sessionManager.admit waiting for one of the N identities to
//     free. When its depth reaches QueueHigh the server flips to
//     PhaseDegraded and sheds new connections immediately — a busy
//     Hello with a computed Retry-After, no parking — instead of
//     letting the queue grow without bound. When the depth falls back
//     to QueueLow the next admission attempt flips the server back to
//     PhaseRunning. The gap between the watermarks is hysteresis: a
//     queue oscillating around one threshold would otherwise flap the
//     phase (and every load balancer watching /readyz-adjacent
//     signals) on every connection.
//
//   - MaxInFlight bounds concurrently executing object operations
//     across all sessions. An operation beyond the ceiling is refused
//     with wire.StatusBusy before it touches the table — never
//     applied, safe to retry — with the Retry-After hint carried in
//     Response.Value (milliseconds). The k-exclusion core already
//     bounds per-shard concurrency at k; this ceiling bounds the
//     server-wide total, which is what protects the WAL and the
//     scheduler when every shard is hot at once.
//
// The zero policy disables both controls (the pre-policy behavior:
// park for AdmitTimeout, then busy).
type ShedPolicy struct {
	// QueueHigh is the parked-admission depth at which the server
	// flips to PhaseDegraded and starts shedding new connections.
	// Zero disables watermark shedding.
	QueueHigh int
	// QueueLow is the depth at or below which a degraded server
	// returns to PhaseRunning. Must be < QueueHigh when enabled; zero
	// means "recover only when the queue is empty".
	QueueLow int
	// MaxInFlight is the ceiling on concurrently executing object
	// operations. Zero means unlimited.
	MaxInFlight int
}

// Validate rejects shapes that cannot mean anything, given the
// admission parking window the policy will run against.
func (p ShedPolicy) Validate(admitTimeout time.Duration) error {
	if p.QueueHigh < 0 || p.QueueLow < 0 || p.MaxInFlight < 0 {
		return fmt.Errorf("server: shed policy values must be non-negative, got %+v", p)
	}
	if p.QueueHigh > 0 {
		if p.QueueLow >= p.QueueHigh {
			return fmt.Errorf("server: shed low watermark %d must be below the high watermark %d", p.QueueLow, p.QueueHigh)
		}
		if admitTimeout <= 0 {
			return fmt.Errorf("server: shed queue watermarks need an admission parking window (AdmitTimeout > 0) — without parking the admission queue is always empty")
		}
	}
	return nil
}

// maxRetryAfter caps the computed Retry-After hint: a client told to
// come back in a bounded interval keeps probing a recovering server;
// one told "an hour" effectively never returns.
const maxRetryAfter = 30 * time.Second

// shedder is the runtime half of a ShedPolicy: the counters and the
// phase flips. All methods are safe for concurrent use.
type shedder struct {
	pol ShedPolicy
	lc  *Lifecycle
	// base is the unit of the computed Retry-After: the admission
	// parking window when one is configured, else a default probe
	// interval.
	base time.Duration

	inflight       atomic.Int64
	shedAdmissions atomic.Int64
	shedOps        atomic.Int64
}

func newShedder(pol ShedPolicy, lc *Lifecycle, admitTimeout time.Duration) *shedder {
	base := admitTimeout
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return &shedder{pol: pol, lc: lc, base: base}
}

// retryAfterMillis computes the backoff hint for a shed decision:
// one parking window per connection already queued ahead, clamped.
// The shape is deliberate — the hint grows with the backlog, so a
// thundering herd spreads itself out instead of re-arriving in step.
func (sh *shedder) retryAfterMillis(queued int64) uint32 {
	// Cap the multiplier before multiplying: a huge backlog must clamp
	// to maxRetryAfter, not overflow into a sub-millisecond hint.
	n := queued + 1
	if lim := int64(maxRetryAfter / sh.base); n > lim || n < 1 {
		n = lim
		if n < 1 {
			n = 1
		}
	}
	d := sh.base * time.Duration(n)
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return uint32(d / time.Millisecond)
}

// admit decides whether a new connection may proceed to admission
// (possibly parking), given the current parked-queue depth. A false
// return means shed: answer busy with the returned Retry-After hint
// and hang up. The watermark crossings are where the running ⇄
// degraded flips happen — routed through the lifecycle so a
// concurrent drain always wins.
func (sh *shedder) admit(queued int64) (retryAfterMillis uint32, ok bool) {
	if sh.pol.QueueHigh == 0 {
		return 0, true
	}
	switch {
	case queued >= int64(sh.pol.QueueHigh):
		sh.lc.advance(PhaseDegraded)
	case queued <= int64(sh.pol.QueueLow):
		// Only meaningful from degraded; from anywhere else this is a
		// refused (no-op) transition.
		sh.lc.advance(PhaseRunning)
	}
	if sh.lc.Phase() == PhaseDegraded {
		sh.shedAdmissions.Add(1)
		return sh.retryAfterMillis(queued), false
	}
	return 0, true
}

// opBegin admits one object operation under the in-flight ceiling. A
// false return means shed (answer busy, never apply); a true return
// must be paired with opEnd.
func (sh *shedder) opBegin() (retryAfterMillis uint32, ok bool) { return sh.opBeginN(1) }

// opBeginN admits a whole pipeline of n object operations as one unit:
// either all n fit under the ceiling (pair with opEndN(n)) or the whole
// pipeline is shed — never applied half-way — with every shed op
// counted. A pipeline deeper than MaxInFlight can therefore never be
// admitted; clients bound their depth accordingly.
func (sh *shedder) opBeginN(n int) (retryAfterMillis uint32, ok bool) {
	cur := sh.inflight.Add(int64(n))
	if sh.pol.MaxInFlight > 0 && cur > int64(sh.pol.MaxInFlight) {
		sh.inflight.Add(int64(-n))
		sh.shedOps.Add(int64(n))
		// In-flight operations are short (bounded by the wait-free
		// core); one base interval is the natural re-probe.
		return sh.retryAfterMillis(0), false
	}
	return 0, true
}

// opEnd releases an opBegin admission.
func (sh *shedder) opEnd() { sh.opEndN(1) }

// opEndN releases an opBeginN admission.
func (sh *shedder) opEndN(n int) { sh.inflight.Add(int64(-n)) }

// busyResponse answers a shed operation: StatusBusy, never applied,
// with the Retry-After hint in Value (milliseconds) — the response
// analogue of Hello.RetryAfterMillis.
func busyResponse(id uint64, retryAfterMillis uint32) wire.Response {
	return wire.Response{
		ID:     id,
		Status: wire.StatusBusy,
		Value:  int64(retryAfterMillis),
		Data:   []byte("server shedding load; operation not applied, retry after the hinted backoff"),
	}
}
