package server

import (
	"context"
	"fmt"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/resilient"
	"kexclusion/internal/wire"
)

// table is the server's sharded object store: each shard is one of the
// paper's resilient shared objects — a wait-free k-process core inside
// an (N, k)-assignment wrapper — holding an int64 register/counter. A
// session applies an operation under its leased process identity, so at
// most k sessions are inside any shard's wait-free core at a time, and a
// session that dies holding a slot (a disconnected client) costs that
// shard one of its k slots, never overall progress.
//
// Each shard gets its own obs.Metrics sink shared by every layer of that
// shard's stack (k-exclusion, renaming, universal construction), so the
// stats endpoint can show per-shard contention rather than one blurred
// aggregate.
type table struct {
	shards []tableShard
}

type tableShard struct {
	obj *resilient.Shared[int64]
	m   *obs.Metrics
}

// newTable builds shards independent resilient objects, each with the
// impl k-exclusion at its admission edge.
func newTable(n, k, shards int, impl core.Constructor) *table {
	t := &table{shards: make([]tableShard, shards)}
	for i := range t.shards {
		m := obs.New()
		excl := impl.New(n, k, core.WithMetrics(m))
		t.shards[i] = tableShard{
			obj: resilient.NewSharedConfig[int64](n, k, 0, nil, resilient.Config{Excl: excl, Metrics: m}),
			m:   m,
		}
	}
	return t
}

// snapshots copies every shard's metrics sink.
func (t *table) snapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(t.shards))
	for i := range t.shards {
		out[i] = t.shards[i].m.Snapshot()
	}
	return out
}

// apply runs one shard operation as process p under ctx. gate, when
// non-nil, is invoked inside the object operation — i.e. while p holds a
// k-assignment slot and a name inside the wait-free core — which is
// exactly where crash-fault tests need to stall a session before killing
// its socket. If ctx expires while p is still waiting for a slot, the
// acquisition withdraws and the answer is StatusTimeout: the operation
// was not applied and is safe to retry, even a non-idempotent one. Once
// p holds its slot the operation always runs to completion — a deadline
// can refuse work, never corrupt it.
func (t *table) apply(ctx context.Context, p int, req wire.Request, gate func(shard uint32, kind wire.Kind)) wire.Response {
	if int(req.Shard) >= len(t.shards) || req.Shard >= 1<<31 {
		return errResponse(req.ID, wire.StatusBadShard,
			fmt.Sprintf("shard %d out of range [0,%d)", req.Shard, len(t.shards)))
	}
	sh := t.shards[req.Shard]
	var op func(int64) (int64, any)
	switch req.Kind {
	case wire.KindGet:
		op = func(s int64) (int64, any) { return s, s }
	case wire.KindAdd:
		op = func(s int64) (int64, any) { s += req.Arg; return s, s }
	case wire.KindSet:
		op = func(int64) (int64, any) { return req.Arg, req.Arg }
	default:
		return errResponse(req.ID, wire.StatusBadRequest, fmt.Sprintf("unknown kind %s", req.Kind))
	}
	v, err := sh.obj.ApplyCtx(ctx, p, func(s int64) (int64, any) {
		if gate != nil {
			gate(req.Shard, req.Kind)
		}
		return op(s)
	})
	if err != nil {
		return errResponse(req.ID, wire.StatusTimeout,
			"deadline expired waiting for a slot; operation not applied, safe to retry")
	}
	return wire.Response{ID: req.ID, Status: wire.StatusOK, Value: v.(int64)}
}

// errResponse builds a non-OK response carrying human-readable detail.
func errResponse(id uint64, status wire.Status, msg string) wire.Response {
	return wire.Response{ID: id, Status: status, Data: []byte(msg)}
}
