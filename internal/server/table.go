package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"kexclusion/internal/core"
	"kexclusion/internal/durable"
	"kexclusion/internal/object"
	"kexclusion/internal/obs"
	"kexclusion/internal/resilient"
	"kexclusion/internal/wire"
)

// table is the server's sharded object store: each shard is one of the
// paper's resilient shared objects — a wait-free k-process core inside
// an (N, k)-assignment wrapper — holding a durable.ShardState (value,
// mutation version, dedup window). A session applies an operation
// under its leased process identity, so at most k sessions are inside
// any shard's wait-free core at a time, and a session that dies
// holding a slot (a disconnected client) costs that shard one of its k
// slots, never overall progress.
//
// The dedup window travels inside the shard state on purpose: the
// universal construction's helpers may execute an op closure several
// times against cloned states, and only the clone that wins the CAS
// becomes real — so "is this op ID a retry, and if not, apply it" is a
// single linearized step with no bookkeeping charged to speculative
// executions. Durability hangs off the same mechanism: every applied
// mutation gets the shard's next version number, and the WAL sequencer
// admits appends strictly in version order, making WAL order equal
// linearization order per shard. That gives prefix durability — a
// durable record implies every earlier mutation of its shard is
// durable — which is what lets a crash drop only un-acknowledged tail
// writes.
//
// Each shard gets its own obs.Metrics sink shared by every layer of
// that shard's stack (k-exclusion, renaming, universal construction),
// so the stats endpoint can show per-shard contention rather than one
// blurred aggregate.
type table struct {
	shards []tableShard
	window int
	log    *durable.Log // nil without -data-dir: dedup only, in memory
	dupes  *atomic.Int64
	// applied, when non-nil, is called once per applied (non-duplicate)
	// mutation after it is durable — the snapshot trigger.
	applied func()
	// batchMu is the atomic-group gate: single-op mutations hold it
	// shared across their Apply, an atomic group holds it exclusively
	// from validation through commit — so the states a group validated
	// against cannot move before it installs the stepped ones. Reads
	// skip it entirely (they only Peek committed cells), and the lock
	// order with the server's replMu is replMu → batchMu.
	batchMu sync.RWMutex
}

type tableShard struct {
	obj *resilient.Shared[durable.ShardState]
	m   *obs.Metrics
	seq *appendSequencer
}

// tableConfig carries the durability wiring into newTable.
type tableConfig struct {
	window    int
	log       *durable.Log
	recovered map[uint32]durable.ShardState
	dupes     *atomic.Int64
	applied   func()
}

// newTable builds shards independent resilient objects, each with the
// impl k-exclusion at its admission edge, seeded from recovered state
// when the server restarted from a data directory.
func newTable(n, k, shards int, impl core.Constructor, tc tableConfig) *table {
	t := &table{
		shards:  make([]tableShard, shards),
		window:  tc.window,
		log:     tc.log,
		dupes:   tc.dupes,
		applied: tc.applied,
	}
	for i := range t.shards {
		m := obs.New()
		excl := impl.New(n, k, core.WithMetrics(m))
		initial := tc.recovered[uint32(i)]
		t.shards[i] = tableShard{
			obj: resilient.NewSharedConfig(n, k, initial, durable.ShardState.Clone,
				resilient.Config{Excl: excl, Metrics: m}),
			m:   m,
			seq: newAppendSequencer(initial),
		}
	}
	return t
}

// snapshots copies every shard's metrics sink.
func (t *table) snapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(t.shards))
	for i := range t.shards {
		out[i] = t.shards[i].m.Snapshot()
	}
	return out
}

// peekAll images every shard for a snapshot. Peeked states are
// immutable committed cells, so reading them (and their dedup maps)
// races nothing.
func (t *table) peekAll() map[uint32]durable.ShardState {
	out := make(map[uint32]durable.ShardState, len(t.shards))
	for i := range t.shards {
		out[uint32(i)] = t.shards[i].obj.Peek()
	}
	return out
}

// applyStart runs one shard operation as process p under ctx, up to —
// but not including — its durability wait. gate, when non-nil, is
// invoked inside the object operation — i.e. while p holds a
// k-assignment slot and a name inside the wait-free core — which is
// exactly where crash-fault tests need to stall a session before
// killing its socket. If ctx expires while p is still waiting for a
// slot, the acquisition withdraws and the answer is StatusTimeout: the
// operation was not applied and is safe to retry, even a
// non-idempotent one. Once p holds its slot the operation always runs
// to completion — a deadline can refuse work, never corrupt it.
//
// Mutations are acknowledged only after the WAL covers them (when one
// is configured), but the wait itself is the caller's: applyStart
// returns the durability frontier the returned response is contingent
// on (lsn, with wait true), and the session loop funnels a whole
// pipeline's frontiers into ONE finishWait — one group-commit, one
// fsync, a batch of acks. An applied op's frontier is its own record's
// LSN; a deduplicated retry's is the log end after the original's
// append — conservative, but it guarantees the re-acknowledged result
// cannot be lost to a crash that the original ack would have survived.
// If the original's append FAILED, the sequencer has still advanced
// past it, but the log is poisoned and the wait refuses — a
// never-logged op is never re-acked as durable.
//
// applied reports a fresh (non-duplicate) mutation that reached the
// log: the caller charges the snapshot cadence for each, after the
// pipeline's wait succeeds.
//
// epoch is the shard's failover epoch at the op's linearization point.
// A clustered caller re-checks it after the quorum wait: if the shard
// was re-installed at a different epoch in between, the op's record
// may be a fenced fork and its ack must be withheld.
func (t *table) applyStart(ctx context.Context, p int, req wire.Request, gate func(shard uint32, kind wire.Kind)) (resp wire.Response, lsn, epoch uint64, wait, applied bool) {
	if int(req.Shard) >= len(t.shards) || req.Shard >= 1<<31 {
		return errResponse(req.ID, wire.StatusBadShard,
			fmt.Sprintf("shard %d out of range [0,%d)", req.Shard, len(t.shards))), 0, 0, false, false
	}
	sh := t.shards[req.Shard]

	if req.Kind == wire.KindGet {
		v, err := sh.obj.ApplyCtx(ctx, p, func(s durable.ShardState) (durable.ShardState, any) {
			if gate != nil {
				gate(req.Shard, req.Kind)
			}
			return s, s.Val
		})
		if err != nil {
			return timeoutResponse(req.ID), 0, 0, false, false
		}
		// Reads are linearized but do not wait for the log: the value
		// returned is some applied state, and reads move nothing that a
		// crash could lose.
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Value: v.(int64)}, 0, 0, false, false
	}
	op, ok := durableOp(req)
	if !ok {
		return errResponse(req.ID, wire.StatusBadRequest, fmt.Sprintf("unknown kind %s", req.Kind)), 0, 0, false, false
	}

	// Shared hold on the atomic-group gate: a group validating its
	// scratch states cannot interleave with this mutation's commit.
	t.batchMu.RLock()
	v, err := sh.obj.ApplyCtx(ctx, p, func(s durable.ShardState) (durable.ShardState, any) {
		if gate != nil {
			gate(req.Shard, req.Kind)
		}
		out := durable.StepOp(&s, t.window, req.Session, req.Seq, op)
		return s, out
	})
	t.batchMu.RUnlock()
	if err != nil {
		return timeoutResponse(req.ID), 0, 0, false, false
	}
	out := v.(durable.Outcome)
	flags := foundFlag(req.Kind, out.OK)
	switch {
	case out.Stale:
		return errResponse(req.ID, wire.StatusBadRequest,
			fmt.Sprintf("stale op: session %#x already moved past seq %d", req.Session, req.Seq)), 0, 0, false, false
	case out.Duplicate:
		sh.m.DupeHit()
		if t.dupes != nil {
			t.dupes.Add(1)
		}
		if t.log != nil {
			// The original application is at shard version out.Ver; once
			// its record is in the log, the log's current end bounds it.
			if !sh.seq.waitAppended(out.Ver, out.Epoch) {
				return errResponse(req.ID, wire.StatusInternal,
					"original write superseded by a replication state install; retry"), 0, 0, false, false
			}
			return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagDuplicate | flags, Value: out.Val},
				t.log.End(), out.Epoch, true, false
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagDuplicate | flags, Value: out.Val}, 0, 0, false, false
	}

	if t.log != nil {
		if !sh.seq.waitTurn(out.Ver, out.Epoch) {
			// A replication state install superseded the history this op
			// applied on before its record reached the log. The in-memory
			// application was discarded with the fork; the client retries
			// and either dedups against the installed state or re-applies.
			return errResponse(req.ID, wire.StatusInternal,
				"write superseded by a replication state install before it was logged; retry"), 0, 0, false, false
		}
		alsn, aerr := t.log.Append(durable.Record{
			Session: req.Session, Seq: req.Seq, Shard: req.Shard,
			Kind: op.Kind, Obj: op.Obj, Key: op.Key, Arg: op.Arg, Arg2: op.Arg2,
			Val: out.Val, Ver: out.Ver, Epoch: out.Epoch, OK: out.OK,
		})
		sh.seq.advance(out.Ver, out.Epoch)
		if aerr != nil {
			// The op IS applied in memory; only its durability failed.
			// Advancing the sequencer keeps later writers from wedging in
			// waitTurn, and is safe because the failed Append poisoned the
			// log: every later append (which would otherwise persist a
			// version past the hole) and every durability wait now fails,
			// so no mutation is acked as durable after this point — the
			// client sees internal errors, never a durable ack the next
			// recovery would contradict.
			return errResponse(req.ID, wire.StatusInternal, aerr.Error()), 0, 0, false, false
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: flags, Value: out.Val}, alsn, out.Epoch, true, true
	}
	return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: flags, Value: out.Val}, 0, 0, false, true
}

// durableOp maps a mutation request onto the durable op vocabulary.
// Reads and control kinds report false — they never reach StepOp.
func durableOp(req wire.Request) (durable.Op, bool) {
	var kind durable.OpKind
	switch req.Kind {
	case wire.KindAdd:
		kind = durable.OpAdd
	case wire.KindSet:
		kind = durable.OpSet
	case wire.KindCreate:
		kind = durable.OpCreate
	case wire.KindRegAdd:
		kind = durable.OpRegAdd
	case wire.KindRegSet:
		kind = durable.OpRegSet
	case wire.KindMapPut:
		kind = durable.OpMapPut
	case wire.KindMapCAS:
		kind = durable.OpMapCAS
	case wire.KindMapDel:
		kind = durable.OpMapDel
	case wire.KindQEnq:
		kind = durable.OpQEnq
	case wire.KindQDeq:
		kind = durable.OpQDeq
	case wire.KindSnapUpdate:
		kind = durable.OpSnapUpdate
	default:
		return durable.Op{}, false
	}
	return durable.Op{Kind: kind, Obj: req.Obj, Key: req.Key, Arg: req.Arg, Arg2: req.Arg2}, true
}

// foundFlag lifts an outcome's logical verdict into the response flags
// for object kinds; legacy kinds never carry it (their responses stay
// byte-identical to kx04).
func foundFlag(k wire.Kind, ok bool) wire.Flags {
	if k.IsObject() && ok {
		return wire.FlagFound
	}
	return 0
}

// readFast answers a pure object read from the shard's committed state
// — no slot acquisition, no WAL, no quorum. Peek returns the cell the
// universal construction last committed, so the read linearizes at
// that commit: valid single-copy semantics for a single node. In
// cluster mode the caller has already checked shard ownership, which
// bounds the staleness a fenced ex-primary could serve to one lease
// interval (the DESIGN §12 argument, unchanged). Missing objects and
// class mismatches answer StatusOK with FlagFound clear, mirroring
// the mutation-side always-applies contract.
func (t *table) readFast(req wire.Request) wire.Response {
	if int(req.Shard) >= len(t.shards) || req.Shard >= 1<<31 {
		return errResponse(req.ID, wire.StatusBadShard,
			fmt.Sprintf("shard %d out of range [0,%d)", req.Shard, len(t.shards)))
	}
	st := t.shards[req.Shard].obj.Peek()
	o := st.Objs[req.Obj]
	miss := wire.Response{ID: req.ID, Status: wire.StatusOK}
	switch req.Kind {
	case wire.KindRegGet:
		if o == nil || o.Type != object.TypeRegister {
			return miss
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagFound, Value: o.Reg}
	case wire.KindMapGet:
		if o == nil || o.Type != object.TypeMap {
			return miss
		}
		v, ok := o.M.Get(req.Key)
		if !ok {
			return miss
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagFound, Value: v}
	case wire.KindQLen:
		if o == nil || o.Type != object.TypeQueue {
			return miss
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagFound, Value: int64(o.Q.Len())}
	case wire.KindSnapScan:
		if o == nil || o.Type != object.TypeSnapshot {
			return miss
		}
		return wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: wire.FlagFound,
			Value: int64(len(o.Slots)), Data: wire.EncodeSlots(o.Slots)}
	}
	return errResponse(req.ID, wire.StatusBadRequest, fmt.Sprintf("%s is not a fast-path read", req.Kind))
}

// finishWait blocks until the pipeline's durability frontier — the max
// LSN any of its responses is contingent on — is covered. A nil return
// means every wait-marked response in the pipeline may be sent as is;
// an error means none of them may (the caller downgrades them to
// StatusInternal).
func (t *table) finishWait(lsn uint64) error {
	if t.log == nil {
		return nil
	}
	return t.log.WaitDurable(lsn)
}

// noteApplied charges n freshly applied (non-duplicate, durable)
// mutations to the snapshot cadence.
func (t *table) noteApplied(n int) {
	if t.applied == nil {
		return
	}
	for i := 0; i < n; i++ {
		t.applied()
	}
}

// appendSequencer admits WAL appends for one shard strictly in
// mutation-version order within a failover epoch. The universal
// construction linearizes mutations and hands each a dense version
// number, but the sessions carrying them race to the log; the
// sequencer restores the order, so the WAL is a prefix-faithful
// transcript of each shard's history.
//
// Versions only mean anything inside an epoch: a replication state
// install can supersede the local history with a higher-epoch image
// whose version is BELOW versions already applied here (a deposed
// primary inflates its counter with never-acked writes). The sequencer
// therefore tracks the epoch its version line belongs to, and both
// waits abort — returning false — when an install moves the line out
// from under a waiter. A pre-install wait API would instead wedge such
// a waiter forever: install used to be forward-only, so a waiter at a
// version the install retreated past could never match `next` again.
type appendSequencer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	next  uint64 // version whose append is admitted next
	epoch uint64 // epoch the version line belongs to
}

func newAppendSequencer(recovered durable.ShardState) *appendSequencer {
	g := &appendSequencer{next: recovered.Ver + 1, epoch: recovered.Epoch}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// waitTurn blocks until (epoch, ver) is the next append to admit and
// reports whether the caller may append. Every version below ver in
// the same epoch was applied by some live session goroutine that will
// append it (sessions survive their sockets), so the wait is bounded
// by those appends. A false return means the op was superseded: a
// state install replaced the history it applied on (epoch moved past
// the op's) or already covered its version — the record must not be
// written, and the op cannot be acked as durable.
func (g *appendSequencer) waitTurn(ver, epoch uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		switch {
		case g.epoch > epoch || (g.epoch == epoch && g.next > ver):
			return false
		case g.epoch == epoch && g.next == ver:
			return true
		}
		// g.epoch < epoch: the op linearized after an epoch bump whose
		// sequencer install is still in flight; wait for it.
		g.cond.Wait()
	}
}

// advance admits the version after (ver, epoch) (called after the
// append, success or not — an append failure must not wedge every
// later writer). It is a no-op when an install moved the sequencer
// while the append was in flight: the appended record belongs to a
// superseded line (replay fences it by epoch), and blindly bumping
// `next` would instead punch a version gap into the installed line.
func (g *appendSequencer) advance(ver, epoch uint64) {
	g.mu.Lock()
	if g.epoch == epoch && g.next == ver {
		g.next = ver + 1
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// install moves the sequencer to an installed state image or epoch
// bump: versions at or below ver in that epoch were made durable by
// the image's snapshot, not by local appends, so the next admitted
// append is ver+1. Within an epoch the sequencer never retreats; a
// higher epoch always wins, even when its version is lower — that is
// precisely the discarded-fork case, and the retreat is what aborts
// the fork's stranded waiters.
func (g *appendSequencer) install(ver, epoch uint64) {
	g.mu.Lock()
	if epoch > g.epoch || (epoch == g.epoch && g.next <= ver) {
		g.epoch = epoch
		g.next = ver + 1
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// waitAppended blocks until version ver's record in epoch has been
// appended, reporting false when an install superseded that epoch —
// the original record may have been fenced off, so the caller must
// not vouch for its durability.
func (g *appendSequencer) waitAppended(ver, epoch uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.epoch > epoch {
			return false
		}
		if g.epoch == epoch && g.next > ver {
			return true
		}
		g.cond.Wait()
	}
}

// timeoutResponse answers a withdrawn operation.
func timeoutResponse(id uint64) wire.Response {
	return errResponse(id, wire.StatusTimeout,
		"deadline expired waiting for a slot; operation not applied, safe to retry")
}

// errResponse builds a non-OK response carrying human-readable detail.
func errResponse(id uint64, status wire.Status, msg string) wire.Response {
	return wire.Response{ID: id, Status: status, Data: []byte(msg)}
}
