package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"kexclusion/internal/wire"
)

// Ops is kexserved's operational HTTP surface: the endpoints an
// orchestrator points probes and a Prometheus scraper at.
//
//   - GET /healthz — liveness: 200 "ok" whenever the process is up,
//     whatever the phase. Restart-worthy failure is the process dying,
//     not the server draining.
//   - GET /readyz — readiness: 200 with the phase name while the phase
//     is Ready (running or degraded), 503 with the phase name otherwise.
//     Not-ready while recovering and while draining is the contract a
//     rolling restart leans on: traffic only routes to a server that
//     will actually serve it.
//   - GET /metrics — the stats snapshot in Prometheus text format (see
//     renderMetrics), plus process gauges (goroutines, open fds).
//
// Ops is created around a Lifecycle, not a Server, so it can be bound
// and answering probes before server.New has finished recovering the
// data directory — exactly the window when /readyz must report
// recovering. Attach the server once New returns to light up the full
// /metrics snapshot.
type Ops struct {
	lc  *Lifecycle
	mux *http.ServeMux

	mu  sync.Mutex
	srv *Server

	hs *http.Server
}

// NewOps builds the endpoint set around lc.
func NewOps(lc *Lifecycle) *Ops {
	o := &Ops{lc: lc, mux: http.NewServeMux()}
	o.mux.HandleFunc("GET /healthz", o.healthz)
	o.mux.HandleFunc("GET /readyz", o.readyz)
	o.mux.HandleFunc("GET /metrics", o.metrics)
	return o
}

// Attach connects the server whose stats /metrics renders. Before
// Attach, /metrics reports only the phase and process gauges.
func (o *Ops) Attach(s *Server) {
	o.mu.Lock()
	o.srv = s
	o.mu.Unlock()
}

// Handler exposes the endpoint mux (for tests and embedding).
func (o *Ops) Handler() http.Handler { return o.mux }

// ListenAndServe binds addr (port 0 for ephemeral) and serves the
// endpoints in a background goroutine, returning the bound address.
func (o *Ops) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o.hs = &http.Server{Handler: o.mux, ReadHeaderTimeout: 5 * time.Second}
	go o.hs.Serve(ln)
	return ln.Addr(), nil
}

// Close stops the ops listener (no-op before ListenAndServe).
func (o *Ops) Close() error {
	if o.hs == nil {
		return nil
	}
	return o.hs.Close()
}

func (o *Ops) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (o *Ops) readyz(w http.ResponseWriter, _ *http.Request) {
	p := o.lc.Phase()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !p.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "%s\n", p)
}

func (o *Ops) metrics(w http.ResponseWriter, _ *http.Request) {
	o.mu.Lock()
	srv := o.srv
	o.mu.Unlock()
	var st wire.Stats
	if srv != nil {
		st = srv.Stats()
	} else {
		st.Phase = o.lc.Phase().String()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(renderMetrics(st, runtime.NumGoroutine(), countOpenFDs()))
}

// countOpenFDs reports the process's open file descriptor count via
// /proc (-1 where /proc is unavailable). The soak harness watches this
// gauge across rolling restarts to catch descriptor leaks.
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
