package server_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/wire"
)

// TestClusterLeaseExpiryRacesQuorumWait is the split-brain window at
// op granularity: a 2-of-2 cluster loses its follower while the
// primary has an op in flight. The quorum wait can never fill in, so
// the op must REFUSE — fast, via the lease lapsing mid-wait — and the
// primary must self-demote; what it must never do is ack. Pre-lease,
// the op stalled the full QuorumTimeout and the primary kept serving
// reads of a history it could no longer defend.
func TestClusterLeaseExpiryRacesQuorumWait(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node cluster test")
	}
	nodes := startTestCluster(t, 2, 1, 2)
	owner := ownerOf(t, nodes, 0)
	var follower *cnode
	for _, n := range nodes {
		if n != owner {
			follower = n
		}
	}

	c := dial(t, owner.addr)
	defer c.Close()
	if _, err := c.Add(0, 1); err != nil {
		t.Fatalf("Add with both members up: %v", err)
	}

	if err := follower.stop(); err != nil {
		t.Fatalf("stopping follower: %v", err)
	}

	// The next write has no quorum to wait for. FailAfter is 400ms and
	// QuorumTimeout 5s in this harness; the 200ms lease must surface
	// the refusal well before either.
	start := time.Now()
	_, err := c.Add(0, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Add acked with the follower gone at quorum 2")
	}
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("Add = %v, want a wire error", err)
	}
	switch we.Status {
	case wire.StatusInternal:
		if !strings.Contains(we.Msg, "lease") {
			t.Fatalf("internal refusal %q does not mention the lease", we.Msg)
		}
	case wire.StatusNotPrimary:
		// Also legal: the membership sweep demoted before the op landed.
	default:
		t.Fatalf("refusal status %v, want internal (lease lost) or not_primary", we.Status)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("refusal took %v; the lease must fail the wait fast, not ride out QuorumTimeout", elapsed)
	}

	// The primary is formally deposed: Owns flips, the sweep counts a
	// demotion, and stats say the lease is gone.
	deadline := time.Now().Add(5 * time.Second)
	for owner.srv.Node().Owns(0) {
		if time.Now().After(deadline) {
			t.Fatal("unwitnessed primary still claims shard 0")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for owner.srv.Node().LeaseDemotions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease sweep never recorded a demotion")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := owner.srv.Stats()
	if st.LeaseHeld {
		t.Fatal("stats still report the lease held")
	}
	if st.LeaseExpirations == 0 {
		t.Fatal("stats report zero lease expirations after a witnessed->unwitnessed transition")
	}

	// And subsequent ops refuse instantly as not_primary (no hint: the
	// ring collapsed to this node, so the refusal carries Retry-After
	// instead of a redirect target).
	if _, err := c.Add(0, 1); err == nil {
		t.Fatal("deposed primary acked a write")
	} else if errors.As(err, &we) && we.Status == wire.StatusNotPrimary {
		if we.Msg != "" {
			t.Fatalf("deposed lone survivor hinted %q, want no redirect target", we.Msg)
		}
		if we.RetryAfterMillis == 0 {
			t.Fatal("hintless not_primary refusal carries no Retry-After")
		}
	}
}

// TestClusterLoneMemberLeaseIndependence: a -quorum 1 member depends
// on no peers for acks, so its lease must be self-sufficient — it
// serves indefinitely with zero expirations, exactly like the
// unclustered server.
func TestClusterLoneMemberLeaseIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test")
	}
	nodes := startTestCluster(t, 1, 1, 1)
	owner := ownerOf(t, nodes, 0)
	c := dial(t, owner.addr)
	defer c.Close()
	if _, err := c.Add(0, 1); err != nil {
		t.Fatalf("Add on lone member: %v", err)
	}
	// Sit out several lease intervals (FailAfter 400ms -> lease 200ms)
	// with no peer traffic at all.
	time.Sleep(3 * owner.srv.Node().LeaseDuration())
	if v, err := c.Add(0, 1); err != nil || v != 2 {
		t.Fatalf("Add after idle lease intervals = %d, %v; want 2", v, err)
	}
	st := owner.srv.Stats()
	if !st.LeaseHeld {
		t.Fatal("lone member lost its vacuous lease")
	}
	if st.LeaseExpirations != 0 || st.LeaseDemotions != 0 {
		t.Fatalf("lone member counted expirations=%d demotions=%d, want zero",
			st.LeaseExpirations, st.LeaseDemotions)
	}
}
