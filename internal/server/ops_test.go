package server

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"

	"kexclusion/internal/obs"
	"kexclusion/internal/wire"
)

// Regenerate the golden with:
//
//	go test ./internal/server -run RenderMetricsGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenStats builds a fully-populated stats snapshot with fixed values
// so renderMetrics' output is a pure constant.
func goldenStats() wire.Stats {
	var snap obs.Snapshot
	snap.Acquires = 100
	snap.Releases = 99
	snap.FastPathTakes = 90
	snap.SlowPathTakes = 10
	snap.SpinPolls = 1234
	snap.Yields = 56
	snap.CASRetries = 7
	snap.NameAttempts = 100
	snap.TASFailures = 3
	snap.AppliedOps = 80
	snap.HelpingEvents = 4
	snap.Aborts = 2
	snap.DeadlineExpirations = 1
	snap.DupeHits = 5
	snap.CurrentHolders = 1
	snap.PeakHolders = 2
	// p50 lands in bucket 10 (2^10 ns), p99 in bucket 20 (2^20 ns).
	snap.LatencyNSPow2[10] = 98
	snap.LatencyNSPow2[20] = 2
	var idle obs.Snapshot // second shard: untouched
	return wire.Stats{
		ActiveSessions: 3, AdmitQueue: 1, Admitted: 42, AppliedDupes: 5,
		BatchAtomic: 6, Draining: false, IdleReclaims: 2, Impl: "fastpath",
		InflightOps: 4, K: 2, LeaseDemotions: 2, LeaseExpirations: 1,
		LeaseHeld: true, N: 8, ObjMapOps: 21, ObjQueueOps: 13,
		ObjRegisterOps: 8, ObjSnapshotOps: 2, OpDeadlines: 1,
		PerShard: []obs.Snapshot{snap, idle},
		Phase:    "degraded", ReadFastpath: 33, Reclaimed: 39,
		RecoveredOps: 17, Rejected: 6, RestartCount: 3, Shards: 2,
		ShedAdmissions: 11, ShedOps: 9,
	}
}

// TestRenderMetricsGolden pins the Prometheus exposition byte-for-byte:
// family order, HELP/TYPE text, label layout, and number formatting are
// all part of the contract a scraper and its dashboards depend on.
// Adding a metric means regenerating the golden — deliberately.
func TestRenderMetricsGolden(t *testing.T) {
	got := renderMetrics(goldenStats(), 12, 34)
	const path = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("metrics output drifted from golden at line %d:\n got  %q\n want %q", i+1, g, w)
			}
		}
		t.Fatal("metrics output drifted from golden (length only)")
	}
}

// TestRenderMetricsFamiliesSortedAndComplete: families appear in strict
// alphabetical order, each exactly once, each with HELP and TYPE.
func TestRenderMetricsFamiliesSortedAndComplete(t *testing.T) {
	out := string(renderMetrics(goldenStats(), 12, 34))
	var families []string
	typed := map[string]bool{}
	helped := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			if helped[name] {
				t.Fatalf("family %s has two HELP lines", name)
			}
			helped[name] = true
			families = append(families, name)
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if parts[1] != "gauge" && parts[1] != "counter" {
				t.Fatalf("family %s has type %q", parts[0], parts[1])
			}
			typed[parts[0]] = true
		case line == "":
		default:
			name := strings.SplitN(line, "{", 2)[0]
			name = strings.SplitN(name, " ", 2)[0]
			if !helped[name] || !typed[name] {
				t.Fatalf("sample %q precedes its HELP/TYPE", line)
			}
			if !strings.HasPrefix(name, "kexserved_") {
				t.Fatalf("sample %q lacks the kexserved_ namespace", line)
			}
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not alphabetically sorted:\n%s", strings.Join(families, "\n"))
	}
	if len(families) == 0 {
		t.Fatal("no families rendered")
	}
	for name := range typed {
		if !helped[name] {
			t.Fatalf("family %s has TYPE but no HELP", name)
		}
	}
}

func opsGet(t *testing.T, o *Ops, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestOpsHealthzAlwaysOK(t *testing.T) {
	lc := NewLifecycle()
	o := NewOps(lc)
	for _, p := range []Phase{PhaseRecovering, PhaseRunning, PhaseDraining, PhaseStopped} {
		lc.advance(p)
		if code, body := opsGet(t, o, "/healthz"); code != http.StatusOK || body != "ok\n" {
			t.Fatalf("in %v: /healthz = %d %q, want 200 ok", p, code, body)
		}
	}
}

// TestOpsReadyzTracksPhase pins the readiness contract: not-ready while
// starting, recovering, draining and stopped; ready while running AND
// degraded (a degraded server still serves admitted sessions). The body
// always names the phase so an operator can read the probe.
func TestOpsReadyzTracksPhase(t *testing.T) {
	lc := NewLifecycle()
	o := NewOps(lc)
	steps := []struct {
		to   Phase
		code int
	}{
		{PhaseStarting, http.StatusServiceUnavailable},
		{PhaseRecovering, http.StatusServiceUnavailable},
		{PhaseRunning, http.StatusOK},
		{PhaseDegraded, http.StatusOK},
		{PhaseRunning, http.StatusOK},
		{PhaseDraining, http.StatusServiceUnavailable},
		{PhaseStopped, http.StatusServiceUnavailable},
	}
	for _, st := range steps {
		lc.advance(st.to)
		code, body := opsGet(t, o, "/readyz")
		if code != st.code {
			t.Fatalf("in %v: /readyz = %d, want %d", st.to, code, st.code)
		}
		if body != st.to.String()+"\n" {
			t.Fatalf("in %v: /readyz body = %q, want the phase name", st.to, body)
		}
	}
}

// TestOpsMetricsBeforeAttach: the ops listener answers /metrics during
// the recovery window, before any Server exists — phase and process
// gauges only, zero server stats.
func TestOpsMetricsBeforeAttach(t *testing.T) {
	lc := NewLifecycle()
	lc.advance(PhaseRecovering)
	o := NewOps(lc)
	code, body := opsGet(t, o, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, want := range []string{
		`kexserved_phase{phase="recovering"} 1`,
		`kexserved_phase{phase="running"} 0`,
		"kexserved_ready 0\n",
		"kexserved_goroutines ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics before attach missing %q:\n%s", want, body)
		}
	}
}

// TestOpsEndToEnd runs a real server with a real ops listener: probes
// flip with the lifecycle and /metrics reflects live server stats.
func TestOpsEndToEnd(t *testing.T) {
	lc := NewLifecycle()
	o := NewOps(lc)
	opsAddr, err := o.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	s, err := New(Config{N: 4, K: 2, Shards: 2, Lifecycle: lc})
	if err != nil {
		t.Fatal(err)
	}
	o.Attach(s)
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Shutdown(t.Context())

	httpGet := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", opsAddr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	waitReady := func(want int) {
		t.Helper()
		for i := 0; i < 200; i++ {
			if code, _ := httpGet("/readyz"); code == want {
				return
			}
		}
		code, body := httpGet("/readyz")
		t.Fatalf("/readyz stuck at %d %q, want %d", code, body, want)
	}
	waitReady(http.StatusOK)

	if code, body := httpGet("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := httpGet("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"kexserved_n 4\n", "kexserved_k 2\n", "kexserved_shards 2\n",
		`kexserved_phase{phase="running"} 1`,
		`kexserved_shard_acquires_total{shard="1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	waitReady(http.StatusServiceUnavailable)
	if _, body := httpGet("/readyz"); body != "stopped\n" {
		t.Fatalf("/readyz after shutdown = %q, want stopped", body)
	}
}
