package server

import (
	"fmt"
	"sort"
	"time"

	"kexclusion/internal/durable"
	"kexclusion/internal/wire"
)

// Atomic groups (the kx05 0xC2 frame) commit up to wire.MaxAtomicOps
// mutations all-or-nothing, across shards, under ONE WAL record.
//
// The protocol is validate-then-install. The group takes the table's
// batchMu exclusively (single-op mutations hold it shared across their
// Apply) and the server's replMu (excluding replicated applies and
// state installs), Peeks every touched shard's committed state, and
// steps the whole group against private clones. Only if every fresh
// member's logical verdict is OK does it commit: one Apply per touched
// shard installs the pre-stepped clone — under the two locks the
// committed state cannot have moved, so the install is exactly the
// transition the validation computed — then one type-9 WAL record
// carries every member, so recovery and replication replay the group
// as a unit. Any rejected member (CAS mismatch, empty dequeue, class
// conflict...) aborts the whole group before anything is installed:
// every member answers StatusAtomicAbort and no object is touched.
//
// Retries follow the windowed dedup contract, per member: a member
// whose op ID is already in its shard's window is answered from
// history (FlagDuplicate) and does not move state; the remaining fresh
// members re-validate and re-commit. A fully duplicated group is
// answered entirely from history with no new record.
//
// Atomicity is with respect to mutations and durability, not reads:
// the per-shard commits land one Apply at a time, so a concurrent
// fast-path read may observe one member's effect before another's —
// the same per-shard linearizability every other operation gets.
//
// Atomic groups run without a per-op deadline and skip the ApplyGate
// hook: the group holds batchMu exclusively, so parking it on a chaos
// gate would stall every mutation on the server.

// atomicAck marks one response in an atomic group whose ack is
// contingent on the group's durability frontier (index relative to
// the group).
type atomicAck struct {
	idx   int
	id    uint64
	shard uint32
	epoch uint64
}

// applyAtomicStart validates and commits one atomic group as process
// p, up to — but not including — its durability wait (the caller
// funnels lsn into the pipeline's finishWait, like applyStart). resps
// has one entry per request, in order. fresh is the number of newly
// applied members, charged to the snapshot cadence by the caller.
//
// The caller must hold the server's replMu.
func (t *table) applyAtomicStart(p int, reqs []wire.Request) (resps []wire.Response, acks []atomicAck, lsn uint64, fresh int) {
	abortAll := func(at int, reason string) []wire.Response {
		out := make([]wire.Response, len(reqs))
		for i, req := range reqs {
			out[i] = wire.Response{ID: req.ID, Status: wire.StatusAtomicAbort}
			if i == at {
				out[i].Data = []byte(reason)
			}
		}
		return out
	}
	internalAll := func(reason string) []wire.Response {
		out := make([]wire.Response, len(reqs))
		for i, req := range reqs {
			out[i] = errResponse(req.ID, wire.StatusInternal, reason)
		}
		return out
	}

	// Cheap validation before any lock: every member must be a mutation
	// the durable layer knows, addressed inside the table.
	ops := make([]durable.Op, len(reqs))
	for i, req := range reqs {
		op, ok := durableOp(req)
		if !ok {
			return abortAll(i, fmt.Sprintf("%s is not a mutation; atomic groups carry only mutations", req.Kind)), nil, 0, 0
		}
		if int(req.Shard) >= len(t.shards) || req.Shard >= 1<<31 {
			return abortAll(i, fmt.Sprintf("shard %d out of range [0,%d)", req.Shard, len(t.shards))), nil, 0, 0
		}
		ops[i] = op
	}

	t.batchMu.Lock()
	defer t.batchMu.Unlock()

	// Step the group against private clones of the committed states.
	type scratchShard struct {
		st        durable.ShardState
		baseVer   uint64
		baseEpoch uint64
		touched   bool
	}
	scratch := make(map[uint32]*scratchShard)
	var order []uint32
	outs := make([]durable.Outcome, len(reqs))
	var subs []durable.Record
	for i, req := range reqs {
		sc := scratch[req.Shard]
		if sc == nil {
			base := t.shards[req.Shard].obj.Peek()
			sc = &scratchShard{st: base.Clone(), baseVer: base.Ver, baseEpoch: base.Epoch}
			scratch[req.Shard] = sc
			order = append(order, req.Shard)
		}
		out := durable.StepOp(&sc.st, t.window, req.Session, req.Seq, ops[i])
		outs[i] = out
		switch {
		case out.Stale:
			return abortAll(i, fmt.Sprintf("stale op: session %#x already moved past seq %d", req.Session, req.Seq)), nil, 0, 0
		case out.Duplicate:
			// Answered from history below; moves nothing.
		default:
			if !out.OK {
				// A fresh member would be logically rejected: the group
				// aborts before anything is installed. The scratch clones
				// are discarded, so the members stepped before this one
				// never existed.
				return abortAll(i, fmt.Sprintf("%s rejected (observed value %d)", req.Kind, out.Val)), nil, 0, 0
			}
			sc.touched = true
			subs = append(subs, durable.Record{
				Session: req.Session, Seq: req.Seq, Shard: req.Shard,
				Kind: ops[i].Kind, Obj: ops[i].Obj, Key: ops[i].Key,
				Arg: ops[i].Arg, Arg2: ops[i].Arg2,
				Val: out.Val, Ver: out.Ver, Epoch: out.Epoch, OK: true,
			})
		}
	}

	resps = make([]wire.Response, len(reqs))
	for i, req := range reqs {
		fl := foundFlag(req.Kind, outs[i].OK)
		if outs[i].Duplicate {
			fl |= wire.FlagDuplicate
			t.shards[req.Shard].m.DupeHit()
			if t.dupes != nil {
				t.dupes.Add(1)
			}
		}
		resps[i] = wire.Response{ID: req.ID, Status: wire.StatusOK, Flags: fl, Value: outs[i].Val}
	}

	// Commit: install each touched shard's stepped clone. Under batchMu
	// (no client mutations) and replMu (no replicated applies or state
	// installs) the committed state cannot have moved since the Peek, so
	// the version check cannot fail; it stands guard over that invariant
	// rather than handling a reachable case.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, sid := range order {
		sc := scratch[sid]
		if !sc.touched {
			continue
		}
		v := t.shards[sid].obj.Apply(p, func(st durable.ShardState) (durable.ShardState, any) {
			if st.Ver != sc.baseVer || st.Epoch != sc.baseEpoch {
				return st, false
			}
			return sc.st, true
		})
		if !v.(bool) {
			return internalAll("atomic commit invariant violated: shard state moved under the group lock"), nil, 0, 0
		}
	}
	fresh = len(subs)

	if t.log == nil {
		return resps, nil, 0, fresh
	}

	// Durability. Duplicated members piggyback on their original
	// records: once those are appended, the group's frontier bounds
	// them. Fresh members ride the single atomic record.
	if len(subs) > 0 {
		for _, sid := range order {
			sc := scratch[sid]
			if !sc.touched {
				continue
			}
			if !t.shards[sid].seq.waitTurn(sc.baseVer+1, sc.baseEpoch) {
				// Unreachable under replMu (only a state install moves the
				// sequencer backward); answered honestly if it ever fires.
				return internalAll("atomic group superseded by a state install before it was logged; retry"), nil, 0, 0
			}
		}
		alsn, aerr := t.log.Append(durable.Record{Atomic: subs})
		for _, sid := range order {
			sc := scratch[sid]
			if sc.touched {
				// The group advanced the shard possibly several versions
				// under one record; same-epoch forward install admits the
				// next append after all of them.
				t.shards[sid].seq.install(sc.st.Ver, sc.baseEpoch)
			}
		}
		if aerr != nil {
			// Applied in memory, durability failed; the poisoned log fails
			// every later wait (see applyStart's twin comment).
			return internalAll(aerr.Error()), nil, 0, 0
		}
		lsn = alsn
	} else {
		lsn = t.log.End()
	}
	for i, req := range reqs {
		if outs[i].Duplicate {
			if !t.shards[req.Shard].seq.waitAppended(outs[i].Ver, outs[i].Epoch) {
				resps[i] = errResponse(req.ID, wire.StatusInternal,
					"original write superseded by a replication state install; retry")
				continue
			}
		}
		acks = append(acks, atomicAck{idx: i, id: req.ID, shard: req.Shard, epoch: outs[i].Epoch})
	}
	return resps, acks, lsn, fresh
}

// applyAtomicGroup is the server-side wrapper: shard-ownership gate,
// the replMu hold, and the committed-group counter.
func (s *Server) applyAtomicGroup(p int, reqs []wire.Request) (resps []wire.Response, acks []atomicAck, lsn uint64, fresh int) {
	if s.node != nil {
		for _, req := range reqs {
			if int(req.Shard) < s.cfg.Shards && !s.node.Owns(req.Shard) {
				s.notPrimary.Add(1)
				hint := s.node.PrimaryAddr(req.Shard)
				resps = make([]wire.Response, len(reqs))
				for i, r := range reqs {
					resps[i] = wire.Response{ID: r.ID, Status: wire.StatusNotPrimary, Data: []byte(hint)}
					if hint == "" {
						resps[i].Value = int64(s.node.LeaseDuration() / time.Millisecond)
					}
				}
				return resps, nil, 0, 0
			}
		}
	}
	s.replMu.Lock()
	resps, acks, lsn, fresh = s.tab.applyAtomicStart(p, reqs)
	s.replMu.Unlock()
	if fresh > 0 {
		s.batchAtomic.Add(1)
	}
	return resps, acks, lsn, fresh
}
