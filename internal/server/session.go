package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/renaming"
)

// sessionManager puts k-assignment's admission question — which of the N
// process identities is acting? — at the network edge. Every accepted
// connection leases an identity p in [0, N) from a long-lived
// renaming.IDPool; the identity is what the session passes to every
// object operation, and returning it on teardown is what lets the server
// outlive any number of client lifetimes with a fixed-size identity
// space.
//
// Connection N+1 is backpressure, not a failure: admit parks it for the
// configured window waiting for an identity to free, then rejects with
// wire.StatusBusy.
type sessionManager struct {
	pool  *renaming.IDPool
	parkT time.Duration

	mu     sync.Mutex
	active map[int]*session

	// parked is the admission queue depth: connections currently inside
	// admit's parking loop waiting for an identity. The shed policy's
	// watermarks read it.
	parked atomic.Int64

	admitted  atomic.Int64
	rejected  atomic.Int64
	reclaimed atomic.Int64
}

// session is one admitted connection: its socket, its identity lease,
// and the drain bookkeeping.
type session struct {
	conn  net.Conn
	lease *renaming.Lease
}

func newSessionManager(n int, parkTimeout time.Duration) *sessionManager {
	return &sessionManager{
		pool:   renaming.NewIDPool(n),
		parkT:  parkTimeout,
		active: make(map[int]*session),
	}
}

// admit leases an identity for conn, parking up to the configured window
// when the pool is exhausted. stop (the server's drain signal) aborts
// parking early. On success the session is registered as active.
func (sm *sessionManager) admit(conn net.Conn, stop <-chan struct{}) (*session, bool) {
	lease, ok := sm.pool.TryLease()
	if !ok && sm.parkT > 0 {
		sm.parked.Add(1)
		deadline := time.Now().Add(sm.parkT)
		for !ok && time.Now().Before(deadline) {
			select {
			case <-stop:
				sm.parked.Add(-1)
				sm.rejected.Add(1)
				return nil, false
			case <-time.After(time.Millisecond):
			}
			lease, ok = sm.pool.TryLease()
		}
		sm.parked.Add(-1)
	}
	if !ok {
		sm.rejected.Add(1)
		return nil, false
	}
	s := &session{conn: conn, lease: lease}
	sm.mu.Lock()
	sm.active[lease.ID()] = s
	sm.mu.Unlock()
	sm.admitted.Add(1)
	return s, true
}

// release tears a session down: it is removed from the active set and
// its identity returned to the pool. Release is idempotent through the
// lease, so the normal teardown path and any crash-reclaim caller can
// race safely; reclaimed counts the call that actually returned it.
func (sm *sessionManager) release(s *session) {
	sm.mu.Lock()
	if sm.active[s.lease.ID()] == s {
		delete(sm.active, s.lease.ID())
	}
	sm.mu.Unlock()
	if s.lease.Release() {
		sm.reclaimed.Add(1)
	}
}

// parkedCount reports the admission queue depth.
func (sm *sessionManager) parkedCount() int64 { return sm.parked.Load() }

// activeCount reports the number of admitted, not-yet-torn-down sessions.
func (sm *sessionManager) activeCount() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return int64(len(sm.active))
}

// abortReads wakes every session blocked in a socket read by expiring
// its read deadline; sessions mid-operation are untouched and finish
// their in-flight Apply first. Used by graceful drain.
func (sm *sessionManager) abortReads() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for _, s := range sm.active {
		s.conn.SetReadDeadline(time.Now())
	}
}

// forceClose hard-closes every remaining session socket. Used when the
// drain deadline expires.
func (sm *sessionManager) forceClose() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for _, s := range sm.active {
		s.conn.Close()
	}
}
