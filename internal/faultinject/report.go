package faultinject

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"kexclusion/internal/obs"
)

// Report is the deterministic record of one injected run: everything in
// it is a function of the plan, the object's shape and the workload —
// plus the progress verdict, which the harness's phasing makes a
// function of the plan too (survivors start only after every planned
// crash has taken effect, so whether they can finish depends only on
// how many slots the plan charged). The same seed therefore yields a
// byte-identical Report across runs; schedule-dependent observations
// (latencies, interim counts) live in Metrics instead.
type Report struct {
	// Impl names the implementation under injection.
	Impl string `json:"impl"`
	// N and K are the wrapped object's shape.
	N int `json:"n"`
	K int `json:"k"`
	// Seed is the plan's seed.
	Seed int64 `json:"seed"`
	// OpsPerProc is the fixed workload per surviving process.
	OpsPerProc int `json:"ops_per_proc"`
	// Crashes is the injected plan, ordered by process id.
	Crashes []Event `json:"crashes"`
	// SlotsLost is how many of the K slots the crashes permanently
	// consumed (entry, holding and mid-renaming crashes cost one each;
	// exit crashes cost none).
	SlotsLost int `json:"slots_lost"`
	// SlotsRemaining is the capacity left to survivors.
	SlotsRemaining int `json:"slots_remaining"`
	// Survivors is how many processes the plan leaves alive.
	Survivors int `json:"survivors"`
	// SurvivorOps is the total operations the survivors completed:
	// Survivors*OpsPerProc when the run completed, 0 on loss of
	// progress (partial counts are schedule-dependent; see Metrics).
	SurvivorOps int `json:"survivor_ops"`
	// Aborts is how many of the plan's events are bounded withdrawals
	// rather than stop-failures. Aborting processes survive, complete
	// the full workload, and cost no slot; how many withdrawals actually
	// landed (an expired context only withdraws if it had to wait) is
	// schedule-dependent and lives in Metrics.AbortsLanded.
	Aborts int `json:"aborts"`
	// AppliedTotal is the expected number of object operations applied
	// end to end (survivor workload plus victims' pre-crash operations,
	// counting a crashed operation only when its crash point lies after
	// the protected operation). Set by the Shared harness, where the
	// final counter value proves it; -1 elsewhere.
	AppliedTotal int `json:"applied_total"`
	// Completed reports whether every planned crash fired and every
	// survivor finished its workload before the watchdog deadline.
	Completed bool `json:"completed"`
	// ProgressLost is the paper's failure boundary made observable:
	// true when the plan's slot charge reached K (or beyond) and the
	// harness had to cut the run off rather than hang.
	ProgressLost bool `json:"progress_lost"`
}

// Canonical renders the report as deterministic bytes: same seed and
// configuration, same bytes, regardless of goroutine interleaving.
func (r Report) Canonical() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Report contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("faultinject: canonical encoding failed: %v", err))
	}
	return b
}

// String renders a human-readable summary for the CLI and logs.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: N=%d K=%d seed=%d ops/proc=%d\n", r.Impl, r.N, r.K, r.Seed, r.OpsPerProc)
	if len(r.Crashes) == 0 {
		b.WriteString("crashes: none\n")
	} else {
		b.WriteString("crashes:")
		for _, ev := range r.Crashes {
			fmt.Fprintf(&b, " p%d@op%d:%s", ev.Proc, ev.Op, ev.Kind)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "slots lost=%d remaining=%d; survivors=%d completed %d ops", r.SlotsLost, r.SlotsRemaining, r.Survivors, r.SurvivorOps)
	if r.AppliedTotal >= 0 {
		fmt.Fprintf(&b, "; applied total=%d", r.AppliedTotal)
	}
	if r.Aborts > 0 {
		fmt.Fprintf(&b, "; aborts=%d", r.Aborts)
	}
	b.WriteByte('\n')
	switch {
	case r.ProgressLost:
		fmt.Fprintf(&b, "verdict: LOSS OF PROGRESS (charge %d of %d slots) — detected, not hung\n", r.SlotsLost, r.K)
	default:
		fmt.Fprintf(&b, "verdict: resilient — %d failure(s) cost %d slot(s), never progress\n", len(r.Crashes)-r.Aborts, r.SlotsLost)
	}
	return b.String()
}

// Metrics holds the schedule-dependent observations of a run. Two runs
// with the same seed agree on Report but not, in general, on Metrics.
type Metrics struct {
	// CompletedOps counts operations finished by anyone before the
	// harness returned (survivor workload plus victims' pre-crash
	// operations). On a completed run this matches the deterministic
	// accounting; on a cut-off run it is whatever survivors managed.
	CompletedOps int64
	// MaxAcquire is the longest successful survivor acquisition.
	MaxAcquire time.Duration
	// CrashesFired is how many planned crashes took effect before the
	// harness returned (all of them unless the run was cut off).
	CrashesFired int
	// EntryLanded is how many abandoned entry acquisitions had been
	// granted their (then leaked) slot when the harness returned.
	EntryLanded int
	// AbortsLanded is how many planned withdrawals actually happened:
	// an abort-entry acquisition under an expired context withdraws
	// only if it would have had to wait, so this is schedule-dependent
	// and at most Report.Aborts.
	AbortsLanded int
	// NameViolations counts Figure 7 contract breaches observed by the
	// assignment harnesses: a granted name out of 0..K-1 or shared by
	// two concurrent holders. Always zero for a correct implementation.
	NameViolations int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Result pairs the deterministic Report with the observed Metrics and,
// when Config.Metrics was set, the final observability snapshot of the
// run (schedule-dependent, like Metrics).
type Result struct {
	Report  Report
	Metrics Metrics
	Obs     obs.Snapshot
}
