package faultinject

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/renaming"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range []Kind{CrashInEntry, CrashWhileHolding, CrashInExit, CrashMidRenaming} {
		parsed, err := parseKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("round trip failed for %v: parsed=%v err=%v", k, parsed, err)
		}
	}
	if _, err := parseKind("reboot"); err == nil {
		t.Error("expected error for unknown kind")
	}
	kinds, err := ParseKinds("entry, holding,exit")
	if err != nil || !reflect.DeepEqual(kinds, []Kind{CrashInEntry, CrashWhileHolding, CrashInExit}) {
		t.Errorf("ParseKinds wrong: %v err=%v", kinds, err)
	}
	if _, err := ParseKinds(","); err == nil {
		t.Error("expected error for empty kind list")
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 16, 10, 5)
	b := NewPlan(42, 16, 10, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	// Distinct victims, in range, sorted.
	seen := map[int]bool{}
	for i, ev := range a.Events {
		if ev.Proc < 0 || ev.Proc >= 16 || ev.Op < 0 || ev.Op >= 10 {
			t.Fatalf("event out of range: %+v", ev)
		}
		if seen[ev.Proc] {
			t.Fatalf("duplicate victim %d", ev.Proc)
		}
		seen[ev.Proc] = true
		if i > 0 && a.Events[i-1].Proc > ev.Proc {
			t.Fatalf("events not sorted by proc: %+v", a.Events)
		}
	}
	// Different seeds disagree on at least one of a few tries.
	diff := false
	for _, seed := range []int64{43, 44, 45} {
		if !reflect.DeepEqual(NewPlan(seed, 16, 10, 5).Events, a.Events) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("three different seeds all produced the seed-42 plan")
	}
}

func TestPlanValidation(t *testing.T) {
	kx := core.NewCounting(4, 2)
	bad := []Plan{
		{Events: []Event{{Proc: 4, Op: 0, Kind: CrashWhileHolding}}},
		{Events: []Event{{Proc: -1, Op: 0, Kind: CrashWhileHolding}}},
		{Events: []Event{{Proc: 1, Op: 0, Kind: CrashWhileHolding}, {Proc: 1, Op: 1, Kind: CrashInExit}}},
		{Events: []Event{{Proc: 1, Op: 8, Kind: CrashWhileHolding}}}, // beyond workload
		{Events: []Event{{Proc: 1, Op: 0, Kind: CrashMidRenaming}}},  // needs assignment harness
		{Events: []Event{{Proc: 1, Op: 0, Kind: Kind(99)}}},
	}
	for i, pl := range bad {
		if _, err := Run(kx, pl, Config{OpsPerProc: 4}); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
}

func TestSlotAccounting(t *testing.T) {
	pl := Plan{Events: []Event{
		{Proc: 0, Op: 0, Kind: CrashInEntry},
		{Proc: 1, Op: 0, Kind: CrashWhileHolding},
		{Proc: 2, Op: 0, Kind: CrashInExit},
		{Proc: 3, Op: 0, Kind: CrashMidRenaming},
	}}
	if got := pl.SlotsCharged(); got != 3 {
		t.Fatalf("SlotsCharged=%d want 3 (exit crashes are free)", got)
	}
	if got := pl.Victims(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Victims=%v", got)
	}
}

// TestExitCrashCostsNoSlot: a process stopping in its (bounded) exit
// section loses itself but not a slot — even mutual exclusion survives.
func TestExitCrashCostsNoSlot(t *testing.T) {
	kx := core.NewInductive(4, 1, core.WithSpinBudget(8))
	pl := Plan{Seed: 5, Events: []Event{{Proc: 0, Op: 1, Kind: CrashInExit}}}
	res, err := Run(kx, pl, Config{Name: "inductive", OpsPerProc: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if !r.Completed || r.ProgressLost || r.SlotsLost != 0 || r.SlotsRemaining != 1 {
		t.Fatalf("unexpected report: %s", r)
	}
	if r.Survivors != 3 || r.SurvivorOps != 3*8 {
		t.Fatalf("survivor accounting wrong: %s", r)
	}
}

// TestEntryCrashChargesOneSlot: an acquisition abandoned mid-entry
// still consumes exactly one slot once granted.
func TestEntryCrashChargesOneSlot(t *testing.T) {
	kx := core.NewFastPath(6, 2, core.WithSpinBudget(8))
	pl := Plan{Seed: 9, Events: []Event{{Proc: 3, Op: 0, Kind: CrashInEntry}}}
	res, err := Run(kx, pl, Config{Name: "fastpath", OpsPerProc: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if !r.Completed || r.SlotsLost != 1 || r.SlotsRemaining != 1 {
		t.Fatalf("unexpected report: %s", r)
	}
	if res.Metrics.EntryLanded != 1 {
		t.Fatalf("abandoned entry acquisition never landed: %+v", res.Metrics)
	}
}

// TestVictimsRunPreCrashOps: a victim crashing at operation j completes
// j operations first, observable in Metrics on a completed run.
func TestVictimsRunPreCrashOps(t *testing.T) {
	kx := core.NewCounting(4, 2)
	pl := Plan{Events: []Event{{Proc: 0, Op: 3, Kind: CrashWhileHolding}}}
	res, err := Run(kx, pl, Config{OpsPerProc: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3*6 + 3) // three survivors' workload + victim's pre-crash ops
	if res.Metrics.CompletedOps != want {
		t.Fatalf("CompletedOps=%d want %d", res.Metrics.CompletedOps, want)
	}
	if res.Metrics.CrashesFired != 1 {
		t.Fatalf("CrashesFired=%d want 1", res.Metrics.CrashesFired)
	}
}

func TestReportDeterminismAcrossRuns(t *testing.T) {
	build := func() core.KExclusion { return core.NewLocalSpin(8, 3, core.WithSpinBudget(8)) }
	pl := NewPlan(1234, 8, 12, 2, CrashInEntry, CrashWhileHolding, CrashInExit)
	cfg := Config{Name: "localspin", OpsPerProc: 12}

	first, err := Run(build(), pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(build(), pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Report.Canonical(), second.Report.Canonical()) {
		t.Fatalf("same seed produced different reports:\n%s\n%s",
			first.Report.Canonical(), second.Report.Canonical())
	}
	// Different seed, different plan, different report bytes.
	other, err := Run(build(), NewPlan(99, 8, 12, 2, CrashWhileHolding), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first.Report.Canonical(), other.Report.Canonical()) {
		t.Fatal("different seeds produced byte-identical reports")
	}
}

// TestAssignmentCrashDegradesOneName: Figure 7's contract on the
// runtime — a crashed holder leaks exactly one name, and the survivors
// keep renaming correctly within the remaining space.
func TestAssignmentCrashDegradesOneName(t *testing.T) {
	asg := renaming.NewAssignment(core.NewFastPath(8, 3, core.WithSpinBudget(8)))
	pl := Plan{Seed: 21, Events: []Event{
		{Proc: 2, Op: 1, Kind: CrashMidRenaming},
		{Proc: 5, Op: 0, Kind: CrashInExit},
	}}
	res, err := RunAssignment(asg, pl, Config{Name: "fastpath+renaming", OpsPerProc: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if !r.Completed || r.SlotsLost != 1 || r.SlotsRemaining != 2 {
		t.Fatalf("unexpected report: %s", r)
	}
	if res.Metrics.NameViolations != 0 {
		t.Fatalf("name uniqueness violated %d times", res.Metrics.NameViolations)
	}
}

// TestSharedCounterAccounting: the §1 methodology end to end — the
// final counter value proves exactly which operations were applied
// across every crash kind.
func TestSharedCounterAccounting(t *testing.T) {
	pl := Plan{Seed: 31, Events: []Event{
		{Proc: 0, Op: 2, Kind: CrashInEntry},      // 2 applied, slot charged
		{Proc: 3, Op: 1, Kind: CrashWhileHolding}, // op 1 never applied; nothing released
		{Proc: 6, Op: 0, Kind: CrashMidRenaming},  // op 0 applied; nothing released
	}}
	kx := core.NewLocalSpinFastPath(10, 4, core.WithSpinBudget(8))
	res, err := RunShared(kx, pl, Config{Name: "lsfastpath+shared", OpsPerProc: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if !r.Completed {
		t.Fatalf("run did not complete: %s", r)
	}
	want := 7*8 + 2 + 1 + 1 // survivors + pre-crash applies + mid-renaming's own op
	if r.AppliedTotal != want {
		t.Fatalf("AppliedTotal=%d want %d", r.AppliedTotal, want)
	}
	if r.SlotsLost != 3 || r.SlotsRemaining != 1 {
		t.Fatalf("slot accounting wrong: %s", r)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.OpsPerProc <= 0 || cfg.Deadline <= 0 {
		t.Fatalf("defaults missing: %+v", cfg)
	}
	if d := (Config{Deadline: time.Second}).withDefaults().Deadline; d != time.Second {
		t.Fatalf("explicit deadline overridden: %v", d)
	}
}
