package faultinject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
)

// expiredCtx is the pre-cancelled context behind abort-entry injection:
// an acquisition under it withdraws the moment it would have to wait.
var expiredCtx = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// procState is the per-process view of the plan. Only the goroutine
// that owns identity p touches its entry, mirroring the per-process
// contract of the wrapped algorithms.
type procState struct {
	op   int  // completed operations
	dead bool // crash already fired
}

// crashTracker is the bookkeeping shared by both injectors: how many
// planned crashes have fired, and — when every charged slot can still
// be granted — whether abandoned entry acquisitions have landed, so a
// harness can order survivors strictly after the crash phase.
type crashTracker struct {
	events map[int]Event
	procs  []procState

	fired  sync.WaitGroup // one Done per planned crash (aborts excluded)
	landed sync.WaitGroup // one Done per awaited background acquisition

	nFired   atomic.Int32
	nLanded  atomic.Int32
	nAborted atomic.Int32 // withdrawals that actually happened

	// cancels[p] is the pending context cancellation of an abort-exit
	// event: armed at acquisition, fired just before the release. Only
	// p's owner goroutine touches its entry.
	cancels []context.CancelFunc

	// metrics, when non-nil, receives a CrashCharged event per fired
	// slot-costing crash, so injected capacity loss shows up in the same
	// sink as the acquisition counters of the object under test.
	metrics *obs.Metrics

	// awaitLanded is true when the plan's slot charge fits within K, in
	// which case every abandoned entry acquisition is guaranteed to be
	// granted and AwaitCrashes can (and must, for a deterministic
	// verdict) wait for it. With charge > K some acquisition necessarily
	// blocks forever; waiting would deadlock the barrier, and the run is
	// a loss-of-progress scenario regardless.
	awaitLanded bool
}

func newCrashTracker(plan Plan, n, k int) *crashTracker {
	t := &crashTracker{
		events:  make(map[int]Event, len(plan.Events)),
		procs:   make([]procState, n),
		cancels: make([]context.CancelFunc, n),
	}
	t.awaitLanded = plan.SlotsCharged() <= k
	t.fired.Add(plan.CrashCount())
	for _, ev := range plan.Events {
		t.events[ev.Proc] = ev
		if ev.Kind == CrashInEntry && t.awaitLanded {
			t.landed.Add(1)
		}
	}
	return t
}

func (t *crashTracker) fire(p int) {
	t.procs[p].dead = true
	if ev, ok := t.events[p]; ok && ev.Kind.CostsSlot() {
		t.metrics.CrashCharged()
	}
	t.nFired.Add(1)
	t.fired.Done()
}

// pending returns the crash planned for process p's current operation.
func (t *crashTracker) pending(p int) (Event, bool) {
	ev, ok := t.events[p]
	if !ok || ev.Op != t.procs[p].op {
		return Event{}, false
	}
	return ev, true
}

// Alive reports whether process p has not crashed yet. Only p's owner
// goroutine may call it.
func (t *crashTracker) Alive(p int) bool { return !t.procs[p].dead }

// Ops reports how many operations process p has completed. Only p's
// owner goroutine may call it while the run is live.
func (t *crashTracker) Ops(p int) int { return t.procs[p].op }

// CrashesFired reports how many planned crashes have taken effect.
func (t *crashTracker) CrashesFired() int { return int(t.nFired.Load()) }

// noteAbort records one withdrawal that actually happened (an
// abort-entry event whose acquisition had to wait). The obs sink's
// abort counter is charged by the algorithm itself at the withdrawal
// point, not here.
func (t *crashTracker) noteAbort() {
	t.nAborted.Add(1)
}

// armExitAbort stores the cancellation an abort-exit event fires just
// before its release.
func (t *crashTracker) armExitAbort(p int, cancel context.CancelFunc) {
	t.cancels[p] = cancel
}

// fireExitAbort runs and clears p's pending exit-abort cancellation.
func (t *crashTracker) fireExitAbort(p int) {
	if c := t.cancels[p]; c != nil {
		c()
		t.cancels[p] = nil
	}
}

// AwaitCrashes blocks until every planned crash has fired — including,
// when the slot charge fits within K, until every abandoned entry
// acquisition has consumed its slot — or until the deadline elapses,
// reporting whether the crash phase completed. A false return means the
// plan itself wedged the object (slot charge at or beyond capacity),
// which is the loss-of-progress verdict.
func (t *crashTracker) AwaitCrashes(deadline <-chan time.Time) bool {
	done := make(chan struct{})
	go func() {
		t.fired.Wait()
		t.landed.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-deadline:
		return false
	}
}

// Injector wraps a core.KExclusion with the plan's crash points. The
// per-process Acquire/Release mirror the wrapped interface but report
// liveness: a false return means the plan stopped process p at this
// point and the caller must cease using that identity.
//
// Crash points relative to the protected operation: an entry crash
// abandons the acquisition mid-flight (it continues on a background
// goroutine — a stopped process's pending entry still consumes
// capacity — and the slot, once granted, is never returned); a holding
// crash stops the process immediately after its acquisition, before
// the protected operation runs, and never releases; an exit crash lets
// the bounded exit section complete and stops the process right after,
// recovering the slot.
type Injector struct {
	*crashTracker
	kx core.KExclusion
}

// NewInjector validates plan against kx's shape and binds them. The
// opsPerProc argument bounds the workload so every planned crash is
// reachable.
func NewInjector(kx core.KExclusion, plan Plan, opsPerProc int) (*Injector, error) {
	if err := plan.validate(kx.N(), opsPerProc, false); err != nil {
		return nil, err
	}
	if plan.AbortCount() > 0 {
		if _, ok := kx.(core.Abortable); !ok {
			return nil, fmt.Errorf("faultinject: plan injects withdrawals but %T does not implement core.Abortable", kx)
		}
	}
	return &Injector{crashTracker: newCrashTracker(plan, kx.N(), kx.K()), kx: kx}, nil
}

// K reports the wrapped object's slot count.
func (in *Injector) K() int { return in.kx.K() }

// N reports the wrapped object's identity count.
func (in *Injector) N() int { return in.kx.N() }

// Acquire acquires a slot for process p, firing the plan's entry and
// holding crashes. alive=false means p stopped here: on an entry crash
// before the slot was usable, on a holding crash with the slot held
// forever.
func (in *Injector) Acquire(p int) (alive bool) {
	if in.procs[p].dead {
		return false
	}
	if ev, ok := in.pending(p); ok {
		switch ev.Kind {
		case CrashInEntry:
			in.fire(p)
			go func() {
				in.kx.Acquire(p)
				in.nLanded.Add(1)
				if in.awaitLanded {
					in.landed.Done()
				}
			}()
			return false
		case CrashWhileHolding:
			in.kx.Acquire(p)
			in.fire(p)
			return false
		case AbortInEntry:
			// Expired context: the acquisition withdraws iff it would
			// have had to wait. Either way the operation completes — a
			// withdrawal is followed by a blocking retry, which is what
			// a well-behaved timed-out caller does.
			ab := in.kx.(core.Abortable)
			if err := ab.AcquireCtx(expiredCtx, p); err != nil {
				in.noteAbort()
				in.kx.Acquire(p)
			}
			return true
		case AbortWhileHolding:
			// Cancellation after admission must be inert: the slot is
			// granted under a live context that dies immediately after.
			ab := in.kx.(core.Abortable)
			ctx, cancel := context.WithCancel(context.Background())
			err := ab.AcquireCtx(ctx, p)
			cancel()
			if err != nil { // unreachable with a live context; stay safe
				in.kx.Acquire(p)
			}
			return true
		case AbortInExit:
			// Arm a cancellation that Release fires just before the
			// bounded exit section runs.
			ab := in.kx.(core.Abortable)
			ctx, cancel := context.WithCancel(context.Background())
			if err := ab.AcquireCtx(ctx, p); err != nil {
				in.kx.Acquire(p)
			}
			in.armExitAbort(p, cancel)
			return true
		}
	}
	in.kx.Acquire(p)
	return true
}

// Release completes process p's operation, firing the plan's exit
// crash: the bounded exit runs to completion, then p stops. An
// abort-exit event cancels the acquisition's context first — the dead
// context must not perturb the exit section.
func (in *Injector) Release(p int) (alive bool) {
	if in.procs[p].dead {
		return false
	}
	if ev, ok := in.pending(p); ok && ev.Kind == CrashInExit {
		in.kx.Release(p)
		in.fire(p)
		return false
	}
	in.fireExitAbort(p)
	in.kx.Release(p)
	in.procs[p].op++
	return true
}

// AssignmentInjector is the Injector analogue for the paper's §4
// k-assignment: crashes additionally leak the leased name, so each
// slot-costing failure consumes one slot and one identity of the name
// space — the runtime analogue of Figure 7's degradation contract.
// CrashMidRenaming stops the process after its protected operation but
// before the release, leaking slot and name with the operation's
// effect already applied (where CrashWhileHolding leaks them with the
// operation never run).
type AssignmentInjector struct {
	*crashTracker
	asg *renaming.Assignment
}

// NewAssignmentInjector validates plan against asg's shape and binds
// them.
func NewAssignmentInjector(asg *renaming.Assignment, plan Plan, opsPerProc int) (*AssignmentInjector, error) {
	if err := plan.validate(asg.N(), opsPerProc, true); err != nil {
		return nil, err
	}
	return &AssignmentInjector{crashTracker: newCrashTracker(plan, asg.N(), asg.K()), asg: asg}, nil
}

// K reports the name-space size.
func (in *AssignmentInjector) K() int { return in.asg.K() }

// N reports the identity count.
func (in *AssignmentInjector) N() int { return in.asg.N() }

// Acquire obtains a slot and name for process p, firing the plan's
// entry and holding crashes.
func (in *AssignmentInjector) Acquire(p int) (name int, alive bool) {
	if in.procs[p].dead {
		return 0, false
	}
	if ev, ok := in.pending(p); ok {
		switch ev.Kind {
		case CrashInEntry:
			in.fire(p)
			go func() {
				in.asg.Acquire(p)
				in.nLanded.Add(1)
				if in.awaitLanded {
					in.landed.Done()
				}
			}()
			return 0, false
		case CrashWhileHolding:
			in.asg.Acquire(p)
			in.fire(p)
			return 0, false
		case AbortInEntry:
			name, err := in.asg.AcquireCtx(expiredCtx, p)
			if err != nil {
				in.noteAbort()
				name = in.asg.Acquire(p)
			}
			return name, true
		case AbortWhileHolding:
			ctx, cancel := context.WithCancel(context.Background())
			name, err := in.asg.AcquireCtx(ctx, p)
			cancel()
			if err != nil { // unreachable with a live context; stay safe
				name = in.asg.Acquire(p)
			}
			return name, true
		case AbortInExit:
			ctx, cancel := context.WithCancel(context.Background())
			name, err := in.asg.AcquireCtx(ctx, p)
			if err != nil {
				name = in.asg.Acquire(p)
			}
			in.armExitAbort(p, cancel)
			return name, true
		}
	}
	return in.asg.Acquire(p), true
}

// Release returns process p's slot and name, firing the plan's
// mid-renaming crash (slot and name leak after the protected operation
// ran) or exit crash (the bounded exit completes, then p stops).
func (in *AssignmentInjector) Release(p, name int) (alive bool) {
	if in.procs[p].dead {
		return false
	}
	if ev, ok := in.pending(p); ok {
		switch ev.Kind {
		case CrashMidRenaming:
			in.fire(p)
			return false
		case CrashInExit:
			in.asg.Release(p, name)
			in.fire(p)
			return false
		}
	}
	in.fireExitAbort(p)
	in.asg.Release(p, name)
	in.procs[p].op++
	return true
}
