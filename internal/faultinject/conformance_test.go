package faultinject

import (
	"fmt"
	"testing"

	"kexclusion/internal/core"
)

// confSpinBudget keeps any goroutine that ends up spinning (abandoned
// entries, survivors in loss scenarios) yielding frequently, so the
// injected runs behave on oversubscribed CI hosts.
const confSpinBudget = 8

// passScenarios are the crash tables every (k-1)-resilient
// implementation must survive: with at most k-1 slot-costing crashes,
// every surviving process completes the fixed workload.
func passScenarios(n, k, ops int) []struct {
	name string
	plan Plan
} {
	type sc = struct {
		name string
		plan Plan
	}
	out := []sc{{name: "no-crashes", plan: Plan{}}}
	if k >= 2 {
		out = append(out,
			sc{"one-holder", Plan{Seed: 1, Events: []Event{{Proc: 0, Op: 1, Kind: CrashWhileHolding}}}},
			sc{"one-entry", Plan{Seed: 2, Events: []Event{{Proc: n - 1, Op: 0, Kind: CrashInEntry}}}},
		)
	}
	// Exit crashes are free at every k, mutual exclusion included.
	out = append(out, sc{"one-exit", Plan{Seed: 3, Events: []Event{{Proc: 1, Op: 0, Kind: CrashInExit}}}})
	if k >= 3 {
		events := make([]Event, k-1)
		for i := range events {
			events[i] = Event{Proc: i, Op: i % ops, Kind: CrashWhileHolding}
		}
		out = append(out,
			sc{"kminus1-holders", Plan{Seed: 4, Events: events}},
			sc{"mixed", Plan{Seed: 5, Events: []Event{
				{Proc: 0, Op: 0, Kind: CrashInEntry},
				{Proc: 2, Op: 2, Kind: CrashWhileHolding},
				{Proc: 4, Op: 1, Kind: CrashInExit},
			}}},
			sc{"seeded", NewPlan(1337, n, ops, k-1, CrashWhileHolding)},
		)
	}
	return out
}

// TestConformanceResilience runs every registered constructor through
// the shared crash table and asserts the paper's resilience contract on
// the goroutine runtime: at most k-1 slot-costing crashes leave every
// survivor able to finish the workload before the watchdog. The k-crash
// boundary (and MCS's collapse at a single crash) lives in
// zz_loss_test.go, last in the package so its intentionally leaked
// spinners cannot slow these runs.
func TestConformanceResilience(t *testing.T) {
	const ops = 12
	for _, c := range core.Registry() {
		n, k := 8, 3
		if c.FixedK != 0 {
			k = c.FixedK
		}
		scenarios := passScenarios(n, k, ops)
		if !c.Resilient {
			// Non-resilient comparators only pass the crash-free and
			// exit-crash (slot charge zero) rows.
			var free []struct {
				name string
				plan Plan
			}
			for _, sc := range scenarios {
				if sc.plan.SlotsCharged() == 0 {
					free = append(free, sc)
				}
			}
			scenarios = free
		}
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", c.Name, sc.name), func(t *testing.T) {
				kx := c.New(n, k, core.WithSpinBudget(confSpinBudget))
				res, err := Run(kx, sc.plan, Config{Name: c.Name, OpsPerProc: ops})
				if err != nil {
					t.Fatal(err)
				}
				r := res.Report
				if !r.Completed || r.ProgressLost {
					t.Fatalf("survivors did not complete with %d slot(s) charged of %d:\n%s",
						r.SlotsLost, k, r)
				}
				if want := (n - len(sc.plan.Events)) * ops; r.SurvivorOps != want {
					t.Fatalf("SurvivorOps=%d want %d", r.SurvivorOps, want)
				}
				if want := sc.plan.SlotsCharged(); r.SlotsLost != want {
					t.Fatalf("SlotsLost=%d want %d", r.SlotsLost, want)
				}
				if res.Metrics.CrashesFired != len(sc.plan.Events) {
					t.Fatalf("CrashesFired=%d want %d", res.Metrics.CrashesFired, len(sc.plan.Events))
				}
			})
		}
	}
}

// TestConformanceSeededSweep: every resilient constructor under a few
// purely seed-derived plans — the same sweep cmd/kexchaos scripts.
func TestConformanceSeededSweep(t *testing.T) {
	const n, k, ops = 10, 4, 8
	for _, c := range core.Registry() {
		if !c.Resilient || c.FixedK != 0 {
			continue
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", c.Name, seed), func(t *testing.T) {
				// Up to k-1 crashes of any kind: charge is at most k-1,
				// so the run must complete.
				plan := NewPlan(seed, n, ops, k-1)
				kx := c.New(n, k, core.WithSpinBudget(confSpinBudget))
				res, err := Run(kx, plan, Config{Name: c.Name, OpsPerProc: ops})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Report.Completed {
					t.Fatalf("seeded run lost progress with charge %d < k=%d:\n%s",
						res.Report.SlotsLost, k, res.Report)
				}
			})
		}
	}
}
