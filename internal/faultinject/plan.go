// Package faultinject is a deterministic crash-fault injection harness
// for the native (goroutine) layer. It drives any core.KExclusion — and
// the renaming/resilient wrappers built on one — through a seeded plan
// of stop-failures at named crash points and checks the paper's central
// contract on the real runtime: with fewer than k holder-crashes every
// surviving goroutine keeps completing operations (each failure costs
// one slot), and with k of them the harness detects and reports the
// loss of progress instead of hanging the test binary.
//
// Goroutines cannot be killed, so a "crash" is simulated at operation
// boundaries: a crashed process stops participating and never returns
// what it holds. The wrapped algorithms run unmodified — their internal
// atomicity is untouched — which is exactly the paper's failure model
// of processes that stop undetectably between their own steps.
//
// Determinism: the injection plan (who crashes, at which operation, at
// which crash point) is a pure function of the seed, and Report carries
// only plan-derived facts plus the progress verdict, so the same seed
// yields a byte-identical Report across runs even though goroutine
// interleaving differs. Wall-clock observations live in Metrics, which
// is deliberately excluded from Report.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind names a crash point: where in its operation cycle a process
// stops forever.
type Kind uint8

const (
	// CrashInEntry stops the process inside its entry section: the
	// acquisition continues in the background (a stopped process's
	// pending decrement still consumes capacity) and the slot, once
	// granted, is never returned. Costs one slot.
	CrashInEntry Kind = iota
	// CrashWhileHolding stops the process between Acquire and Release:
	// the slot is never returned. Costs one slot.
	CrashWhileHolding
	// CrashInExit stops the process in its exit section. Exit sections
	// are bounded (no waiting), so at operation granularity the release
	// steps complete and the crash bites immediately after: the process
	// is lost but its slot is recovered. Costs no slot.
	CrashInExit
	// CrashMidRenaming stops the process while it holds both a slot
	// and a name from the k-assignment wrapper: neither is returned, so
	// the name space degrades by exactly one identity alongside the
	// slot. Only meaningful for the Assignment and Shared harnesses.
	CrashMidRenaming
	// AbortInEntry expires the process's acquisition context while it
	// may still be waiting in the entry section: if it had to wait it
	// withdraws (core.Abortable), restoring the entry-section state,
	// then retries and completes the operation. The process lives on.
	// Costs no slot — a withdrawal is the anti-crash.
	AbortInEntry
	// AbortWhileHolding cancels the acquisition context immediately
	// after admission: cancellation past the entry section must be
	// inert, so the operation runs and releases normally. Costs no slot.
	AbortWhileHolding
	// AbortInExit cancels the acquisition context just before the
	// release: the bounded exit section must be insensitive to the dead
	// context. Costs no slot.
	AbortInExit
)

var kindNames = map[Kind]string{
	CrashInEntry:      "entry",
	CrashWhileHolding: "holding",
	CrashInExit:       "exit",
	CrashMidRenaming:  "renaming",
	AbortInEntry:      "abort-entry",
	AbortWhileHolding: "abort-holding",
	AbortInExit:       "abort-exit",
}

// String returns the CLI-facing name of the crash point.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalText renders the kind by name so Reports serialize readably.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	parsed, err := parseKind(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown crash kind %q (have entry, holding, exit, renaming, abort-entry, abort-holding, abort-exit)", s)
}

// ParseKinds parses a comma-separated kind list ("entry,holding,exit").
func ParseKinds(csv string) ([]Kind, error) {
	var out []Kind
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := parseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty crash-kind list %q", csv)
	}
	return out, nil
}

// CostsSlot reports whether a crash at this point permanently consumes
// one of the K slots.
func (k Kind) CostsSlot() bool {
	return k == CrashInEntry || k == CrashWhileHolding || k == CrashMidRenaming
}

// IsAbort reports whether the event is a bounded withdrawal rather than
// a stop-failure: the process survives it, completes the operation, and
// keeps working.
func (k Kind) IsAbort() bool {
	return k == AbortInEntry || k == AbortWhileHolding || k == AbortInExit
}

// Event is one planned crash: process Proc stops at crash point Kind
// during its Op-th operation (0-based).
type Event struct {
	Proc int  `json:"proc"`
	Op   int  `json:"op"`
	Kind Kind `json:"kind"`
}

// Plan is a reproducible crash schedule. At most one crash per process:
// a stopped process stays stopped.
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// NewPlan derives a crash plan from seed alone: crashes distinct victim
// processes out of n, each stopping at a crash point drawn from kinds
// (defaulting to entry/holding/exit) during one of its first opsPerProc
// operations. crashes is clamped to [0, n] — there is at most one crash
// per process. The same arguments always produce the same plan.
func NewPlan(seed int64, n, opsPerProc, crashes int, kinds ...Kind) Plan {
	if crashes > n {
		crashes = n
	}
	if crashes < 0 {
		crashes = 0
	}
	if len(kinds) == 0 {
		kinds = []Kind{CrashInEntry, CrashWhileHolding, CrashInExit}
	}
	r := rand.New(rand.NewSource(seed))
	pl := Plan{Seed: seed}
	for _, proc := range r.Perm(n)[:crashes] {
		op := 0
		if opsPerProc > 1 {
			op = r.Intn(opsPerProc)
		}
		pl.Events = append(pl.Events, Event{
			Proc: proc,
			Op:   op,
			Kind: kinds[r.Intn(len(kinds))],
		})
	}
	sort.Slice(pl.Events, func(i, j int) bool { return pl.Events[i].Proc < pl.Events[j].Proc })
	return pl
}

// SlotsCharged is the number of slots the plan permanently consumes.
func (pl Plan) SlotsCharged() int {
	charged := 0
	for _, ev := range pl.Events {
		if ev.Kind.CostsSlot() {
			charged++
		}
	}
	return charged
}

// Victims returns the crashing process ids in ascending order. Abort
// events are not crashes: their processes survive and are excluded.
func (pl Plan) Victims() []int {
	out := make([]int, 0, len(pl.Events))
	for _, ev := range pl.Events {
		if !ev.Kind.IsAbort() {
			out = append(out, ev.Proc)
		}
	}
	return out
}

// CrashCount is the number of stop-failures in the plan (every event
// that is not an abort).
func (pl Plan) CrashCount() int {
	n := 0
	for _, ev := range pl.Events {
		if !ev.Kind.IsAbort() {
			n++
		}
	}
	return n
}

// AbortCount is the number of planned withdrawals.
func (pl Plan) AbortCount() int { return len(pl.Events) - pl.CrashCount() }

// validate rejects plans that the harness cannot execute faithfully.
func (pl Plan) validate(n, opsPerProc int, renamingOK bool) error {
	seen := make(map[int]bool, len(pl.Events))
	for _, ev := range pl.Events {
		if ev.Proc < 0 || ev.Proc >= n {
			return fmt.Errorf("faultinject: crash proc %d out of range [0,%d)", ev.Proc, n)
		}
		if seen[ev.Proc] {
			return fmt.Errorf("faultinject: duplicate crash for proc %d (a stopped process stays stopped)", ev.Proc)
		}
		seen[ev.Proc] = true
		if ev.Op < 0 || ev.Op >= opsPerProc {
			return fmt.Errorf("faultinject: crash op %d for proc %d outside workload [0,%d)", ev.Op, ev.Proc, opsPerProc)
		}
		if ev.Kind == CrashMidRenaming && !renamingOK {
			return fmt.Errorf("faultinject: crash kind %q needs the assignment harness", ev.Kind)
		}
		if _, ok := kindNames[ev.Kind]; !ok {
			return fmt.Errorf("faultinject: unknown crash kind %d", ev.Kind)
		}
	}
	return nil
}
