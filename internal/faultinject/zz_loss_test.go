// Loss-of-progress scenarios: k slot-costing crashes exhaust the
// object, and the harness must detect and report that instead of
// hanging the test binary. Cut-off runs intentionally leave survivor
// goroutines blocked in Acquire for the life of the binary (goroutines
// cannot be killed), so this file is named to sort — and therefore run
// — after every other test in the package.
package faultinject

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/renaming"
)

// lossDeadline bounds each cut-off run. Loss scenarios genuinely cannot
// complete — every slot is gone — so a short watchdog only has to
// outlast the crash phase, whose victims acquire without contention.
const lossDeadline = 1500 * time.Millisecond

func holdingCrashes(count, ops int) Plan {
	pl := Plan{Seed: 77}
	for i := 0; i < count; i++ {
		pl.Events = append(pl.Events, Event{Proc: i, Op: i % ops, Kind: CrashWhileHolding})
	}
	return pl
}

// TestLossAtKCrashes: the failure boundary of the paper's contract —
// with k holder-crashes nothing guarantees survivor progress, and the
// harness must say so within the watchdog deadline.
func TestLossAtKCrashes(t *testing.T) {
	const ops = 6
	for _, c := range core.Registry() {
		n, k := 8, 3
		if c.FixedK != 0 {
			k = c.FixedK
		}
		t.Run(c.Name, func(t *testing.T) {
			kx := c.New(n, k, core.WithSpinBudget(confSpinBudget))
			res, err := Run(kx, holdingCrashes(k, ops), Config{
				Name: c.Name, OpsPerProc: ops, Deadline: lossDeadline,
			})
			if err != nil {
				t.Fatal(err)
			}
			r := res.Report
			if !r.ProgressLost || r.Completed {
				t.Fatalf("expected loss of progress with %d crashes against k=%d:\n%s", k, k, r)
			}
			if r.SlotsRemaining != 0 || r.SurvivorOps != 0 {
				t.Fatalf("loss report inconsistent: %s", r)
			}
			// All k crashes fired (capacity sufficed for the crash
			// phase); the loss is the survivors', exactly as planned.
			if res.Metrics.CrashesFired != k {
				t.Fatalf("CrashesFired=%d want %d", res.Metrics.CrashesFired, k)
			}
		})
	}
}

// TestLossBeyondCapacity: more slot-costing crashes than slots wedge
// the crash phase itself; the harness still reports rather than hangs.
func TestLossBeyondCapacity(t *testing.T) {
	kx := core.NewCounting(8, 2)
	res, err := Run(kx, holdingCrashes(3, 4), Config{
		Name: "counting", OpsPerProc: 4, Deadline: lossDeadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ProgressLost {
		t.Fatalf("expected loss: %s", res.Report)
	}
	// Only the first k=2 crashes can fire; the third victim blocks.
	if res.Metrics.CrashesFired != 2 {
		t.Fatalf("CrashesFired=%d want 2", res.Metrics.CrashesFired)
	}
}

// TestLossReportDeterminism: the acceptance bar — same seed, byte
// identical Report, on the loss side of the boundary too.
func TestLossReportDeterminism(t *testing.T) {
	run := func() Report {
		kx := core.NewFastPath(8, 3, core.WithSpinBudget(confSpinBudget))
		res, err := Run(kx, NewPlan(2024, 8, 6, 3, CrashWhileHolding), Config{
			Name: "fastpath", OpsPerProc: 6, Deadline: lossDeadline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	a, b := run(), run()
	if !a.ProgressLost {
		t.Fatalf("expected loss: %s", a)
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("same seed, different loss reports:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

// TestMCSWedgesOnSingleCrash: the paper's motivating contrast — the
// fast queue lock loses everything to one crash, and the harness
// observes it on the runtime just as internal/check proves it on the
// simulator.
func TestMCSWedgesOnSingleCrash(t *testing.T) {
	kx := core.NewMCS(4, core.WithSpinBudget(confSpinBudget))
	pl := Plan{Seed: 11, Events: []Event{{Proc: 0, Op: 0, Kind: CrashWhileHolding}}}
	res, err := Run(kx, pl, Config{Name: "mcs", OpsPerProc: 4, Deadline: lossDeadline})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ProgressLost {
		t.Fatalf("MCS should wedge after one holder crash:\n%s", res.Report)
	}
}

// TestAssignmentLossAtKRenamingCrashes: the wrapper inherits the same
// boundary — k leaked names exhaust both slots and the name space.
func TestAssignmentLossAtKRenamingCrashes(t *testing.T) {
	asg := renaming.NewAssignment(core.NewFastPath(8, 3, core.WithSpinBudget(confSpinBudget)))
	pl := Plan{Seed: 13, Events: []Event{
		{Proc: 0, Op: 0, Kind: CrashMidRenaming},
		{Proc: 1, Op: 0, Kind: CrashMidRenaming},
		{Proc: 2, Op: 0, Kind: CrashMidRenaming},
	}}
	res, err := RunAssignment(asg, pl, Config{
		Name: "fastpath+renaming", OpsPerProc: 4, Deadline: lossDeadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ProgressLost || res.Metrics.NameViolations != 0 {
		t.Fatalf("expected clean loss report: %s (violations=%d)",
			res.Report, res.Metrics.NameViolations)
	}
	if !strings.Contains(res.Report.String(), "LOSS OF PROGRESS") {
		t.Fatalf("loss verdict missing from report text:\n%s", res.Report)
	}
}
