package faultinject

import (
	"testing"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
)

func TestAbortKindProperties(t *testing.T) {
	for _, k := range []Kind{AbortInEntry, AbortWhileHolding, AbortInExit} {
		if k.CostsSlot() {
			t.Errorf("%s must not cost a slot", k)
		}
		if !k.IsAbort() {
			t.Errorf("%s must report IsAbort", k)
		}
	}
	for _, k := range []Kind{CrashInEntry, CrashWhileHolding, CrashInExit, CrashMidRenaming} {
		if k.IsAbort() {
			t.Errorf("%s must not report IsAbort", k)
		}
	}
	plan := Plan{Seed: 9, Events: []Event{
		{Proc: 0, Op: 0, Kind: CrashWhileHolding},
		{Proc: 1, Op: 1, Kind: AbortInEntry},
		{Proc: 2, Op: 0, Kind: AbortInExit},
	}}
	if got := plan.CrashCount(); got != 1 {
		t.Errorf("CrashCount = %d, want 1", got)
	}
	if got := plan.AbortCount(); got != 2 {
		t.Errorf("AbortCount = %d, want 2", got)
	}
	if got := plan.SlotsCharged(); got != 1 {
		t.Errorf("SlotsCharged = %d, want 1: aborts are free", got)
	}
	if got := plan.Victims(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Victims = %v, want [0]", got)
	}
}

// TestConformanceWithAborts is the acceptance row: the (k-1)-resilience
// contract must hold with withdrawals injected at entry, holding and
// exit points on top of k-1 slot-costing crashes. Aborting processes
// are survivors — they complete the full workload — so a lost slot or a
// stranded waiter caused by a withdrawal shows up as loss of progress.
func TestConformanceWithAborts(t *testing.T) {
	const n, k, ops = 8, 3, 12
	for _, c := range core.Registry() {
		if !c.Resilient || c.FixedK != 0 {
			continue
		}
		plan := Plan{Seed: 11, Events: []Event{
			{Proc: 0, Op: 0, Kind: CrashWhileHolding},
			{Proc: 1, Op: 2, Kind: CrashInEntry},
			{Proc: 3, Op: 1, Kind: AbortInEntry},
			{Proc: 5, Op: 0, Kind: AbortWhileHolding},
			{Proc: 7, Op: 3, Kind: AbortInExit},
		}}
		t.Run(c.Name, func(t *testing.T) {
			sink := obs.New()
			kx := c.New(n, k, core.WithSpinBudget(confSpinBudget), core.WithMetrics(sink))
			res, err := Run(kx, plan, Config{Name: c.Name, OpsPerProc: ops, Metrics: sink})
			if err != nil {
				t.Fatal(err)
			}
			r := res.Report
			if !r.Completed || r.ProgressLost {
				t.Fatalf("aborts broke the resilience contract:\n%s", r)
			}
			if r.Survivors != n-2 {
				t.Fatalf("Survivors=%d want %d: aborting processes are survivors", r.Survivors, n-2)
			}
			if r.SurvivorOps != (n-2)*ops {
				t.Fatalf("SurvivorOps=%d want %d", r.SurvivorOps, (n-2)*ops)
			}
			if r.SlotsLost != 2 {
				t.Fatalf("SlotsLost=%d want 2: withdrawals must not be charged", r.SlotsLost)
			}
			if r.Aborts != 3 {
				t.Fatalf("Aborts=%d want 3", r.Aborts)
			}
			if res.Metrics.CrashesFired != 2 {
				t.Fatalf("CrashesFired=%d want 2: abort events are not crashes", res.Metrics.CrashesFired)
			}
			if res.Metrics.AbortsLanded > r.Aborts {
				t.Fatalf("AbortsLanded=%d exceeds planned aborts %d", res.Metrics.AbortsLanded, r.Aborts)
			}
		})
	}
}

// TestAbortEntryForcedToLand drives an abort-entry event on a saturated
// object (every slot leaked by holding crashes) so the withdrawal
// cannot be dodged: the expired-context acquisition must wait, so it
// must withdraw, retry, and still complete once capacity frees... which
// it never does here — so instead saturate with k-1 crashes and one
// live holder, guaranteeing contention at the abort op.
func TestAbortEntryForcedToLand(t *testing.T) {
	const n, k, ops = 6, 2, 6
	// Proc 0 leaks one slot (phase one). Proc 1 runs abort-entry at its
	// first op in phase two, concurrently with procs 2..5 hammering the
	// single remaining slot — the expired-context acquisition overlaps
	// other holders with overwhelming likelihood, but the contract under
	// test is stability, not the landing count: the run must complete
	// with full survivor accounting whether or not withdrawals landed.
	plan := Plan{Seed: 13, Events: []Event{
		{Proc: 0, Op: 0, Kind: CrashWhileHolding},
		{Proc: 1, Op: 0, Kind: AbortInEntry},
	}}
	sink := obs.New()
	kx := core.NewFastPath(n, k, core.WithSpinBudget(confSpinBudget), core.WithMetrics(sink))
	res, err := Run(kx, plan, Config{Name: "fastpath", OpsPerProc: ops, Metrics: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Completed {
		t.Fatalf("run lost progress:\n%s", res.Report)
	}
	if res.Obs.Aborts < int64(res.Metrics.AbortsLanded) {
		t.Fatalf("obs aborts=%d < harness landed=%d: sink missed withdrawals", res.Obs.Aborts, res.Metrics.AbortsLanded)
	}
}

func TestSharedAccountingWithAborts(t *testing.T) {
	const n, k, ops = 8, 3, 10
	plan := Plan{Seed: 17, Events: []Event{
		{Proc: 2, Op: 1, Kind: CrashMidRenaming},
		{Proc: 4, Op: 0, Kind: AbortInEntry},
		{Proc: 6, Op: 2, Kind: AbortInExit},
	}}
	kx := core.NewLocalSpin(n, k, core.WithSpinBudget(confSpinBudget))
	res, err := RunShared(kx, plan, Config{Name: "localspin+shared", OpsPerProc: ops})
	if err != nil {
		t.Fatal(err) // includes the exactly-once counter check
	}
	r := res.Report
	if !r.Completed {
		t.Fatalf("shared run lost progress:\n%s", r)
	}
	// Survivors: n-1 (only the renaming crash kills). Applied total:
	// survivors' full workload + victim's 1 pre-crash op + the crashed
	// op itself (mid-renaming applies before stopping).
	if want := (n-1)*ops + 1 + 1; r.AppliedTotal != want {
		t.Fatalf("AppliedTotal=%d want %d", r.AppliedTotal, want)
	}
}

func TestAssignmentRunWithAborts(t *testing.T) {
	const n, k, ops = 8, 3, 8
	plan := Plan{Seed: 19, Events: []Event{
		{Proc: 1, Op: 0, Kind: CrashWhileHolding},
		{Proc: 3, Op: 1, Kind: AbortInEntry},
		{Proc: 5, Op: 2, Kind: AbortWhileHolding},
	}}
	asg := renaming.New(n, k, core.WithSpinBudget(confSpinBudget))
	res, err := RunAssignment(asg, plan, Config{Name: "fastpath+renaming", OpsPerProc: ops})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Completed {
		t.Fatalf("assignment run lost progress:\n%s", res.Report)
	}
	if res.Metrics.NameViolations != 0 {
		t.Fatalf("name violations with aborts: %d", res.Metrics.NameViolations)
	}
}

func TestAbortPlanRejectedForNonAbortable(t *testing.T) {
	plan := Plan{Seed: 23, Events: []Event{{Proc: 0, Op: 0, Kind: AbortInEntry}}}
	mcs := core.NewMCS(4)
	if _, err := NewInjector(mcs, plan, 4); err == nil {
		t.Fatal("abort plan accepted for a non-abortable implementation")
	}
}

func TestReportDeterminismWithAborts(t *testing.T) {
	const n, k, ops = 8, 3, 8
	mixed := []Kind{CrashWhileHolding, AbortInEntry, AbortInExit}
	var first []byte
	for i := 0; i < 2; i++ {
		plan := NewPlan(29, n, ops, 3, mixed...)
		kx := core.NewInductive(n, k, core.WithSpinBudget(confSpinBudget))
		res, err := Run(kx, plan, Config{Name: "inductive", OpsPerProc: ops})
		if err != nil {
			t.Fatal(err)
		}
		b := res.Report.Canonical()
		if first == nil {
			first = b
		} else if string(first) != string(b) {
			t.Fatalf("same seed, different reports:\n%s\n%s", first, b)
		}
	}
}
