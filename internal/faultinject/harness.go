package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
	"kexclusion/internal/resilient"
)

// Config tunes one harness run.
type Config struct {
	// Name labels the implementation in the Report.
	Name string
	// OpsPerProc is the fixed workload: how many acquire/release (or
	// Apply) cycles each surviving process must complete. Victims run
	// the same loop until their crash fires. Default 16.
	OpsPerProc int
	// Deadline is the watchdog: if the planned crashes or the survivor
	// workload have not completed by then, the run is cut off and
	// reported as loss of progress instead of hanging. Default 30s.
	Deadline time.Duration
	// CS, when non-nil, runs as the critical-section body of every
	// completed operation (Run and RunAssignment only).
	CS func(p, op int)
	// Metrics, when non-nil, receives the slot-costing crash charges of
	// the run, and its final Snapshot is attached to the Result. Pass
	// the same sink to the object under test (core.WithMetrics and the
	// wrappers' WithMetrics) to get one unified view of acquisitions,
	// spin traffic and injected capacity loss.
	Metrics *obs.Metrics
}

func (cfg Config) withDefaults() Config {
	if cfg.OpsPerProc <= 0 {
		cfg.OpsPerProc = 16
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	return cfg
}

// engine drives victims and survivors through a tracker-wrapped object
// in two phases. Phase one runs only the victims, until every planned
// crash has taken effect (AwaitCrashes); phase two runs the survivors'
// fixed workload under the watchdog. The phasing is what makes the
// progress verdict deterministic: whether survivors can finish depends
// only on how many slots the plan charged, never on how the crash and
// survivor goroutines happened to interleave.
type engine struct {
	tracker *crashTracker
	cfg     Config

	completedOps   atomic.Int64
	maxAcqNanos    atomic.Int64
	nameViolations atomic.Int64
}

// doOp performs one full operation for process p and reports whether p
// is still alive; it must stop at the injector's crash points.
type doOp func(p int, timeAcquire bool) (alive bool)

func (e *engine) worker(p int, op doOp, timeAcquire bool, wg *sync.WaitGroup) {
	defer wg.Done()
	for e.tracker.Alive(p) && e.tracker.Ops(p) < e.cfg.OpsPerProc {
		if !op(p, timeAcquire) {
			return
		}
		e.completedOps.Add(1)
	}
}

func (e *engine) noteAcquire(d time.Duration) {
	for {
		cur := e.maxAcqNanos.Load()
		if int64(d) <= cur || e.maxAcqNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// run executes the two phases and assembles the Result for an object
// with n identities and k slots.
func (e *engine) run(n, k int, plan Plan, op doOp) Result {
	start := time.Now()
	watchdog := time.After(e.cfg.Deadline)

	// Abort events are perturbations, not failures: their processes
	// survive, complete the full workload, and run with the other
	// survivors in phase two.
	isVictim := make([]bool, n)
	for _, ev := range plan.Events {
		if !ev.Kind.IsAbort() {
			isVictim[ev.Proc] = true
		}
	}

	// Phase one: victims run (concurrently with each other only) until
	// every planned crash has fired and charged its slot.
	var victims sync.WaitGroup
	for p := 0; p < n; p++ {
		if isVictim[p] {
			victims.Add(1)
			go e.worker(p, op, false, &victims)
		}
	}
	crashesDone := e.tracker.AwaitCrashes(watchdog)

	// Phase two: survivors run the fixed workload — unless the plan
	// already wedged the object, in which case starting them would only
	// leak more blocked goroutines.
	survivorsDone := crashesDone
	if crashesDone {
		var survivors sync.WaitGroup
		for p := 0; p < n; p++ {
			if !isVictim[p] {
				survivors.Add(1)
				go e.worker(p, op, true, &survivors)
			}
		}
		done := make(chan struct{})
		go func() { survivors.Wait(); close(done) }()
		select {
		case <-done:
		case <-watchdog:
			survivorsDone = false
		}
	}

	completed := crashesDone && survivorsDone
	nSurvivors := n - plan.CrashCount()
	charge := plan.SlotsCharged()
	remaining := k - charge
	if remaining < 0 {
		remaining = 0
	}
	survivorOps := 0
	if completed {
		survivorOps = nSurvivors * e.cfg.OpsPerProc
	}
	return Result{
		Report: Report{
			Impl:           e.cfg.Name,
			N:              n,
			K:              k,
			Seed:           plan.Seed,
			OpsPerProc:     e.cfg.OpsPerProc,
			Crashes:        append([]Event{}, plan.Events...),
			SlotsLost:      charge,
			SlotsRemaining: remaining,
			Survivors:      nSurvivors,
			SurvivorOps:    survivorOps,
			Aborts:         plan.AbortCount(),
			AppliedTotal:   -1,
			Completed:      completed,
			ProgressLost:   !completed,
		},
		Metrics: Metrics{
			CompletedOps: e.completedOps.Load(),
			MaxAcquire:   time.Duration(e.maxAcqNanos.Load()),
			CrashesFired: e.tracker.CrashesFired(),
			EntryLanded:  int(e.tracker.nLanded.Load()),
			AbortsLanded: int(e.tracker.nAborted.Load()),
			Elapsed:      time.Since(start),
		},
		Obs: e.cfg.Metrics.Snapshot(),
	}
}

// Run drives kx through plan: victims crash at their planned points,
// then every survivor must complete cfg.OpsPerProc acquire/release
// cycles before the watchdog. The paper's contract, checked on the
// real runtime: with the plan charging fewer than K slots the run
// completes; at K or beyond it is reported as loss of progress.
func Run(kx core.KExclusion, plan Plan, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	in, err := NewInjector(kx, plan, cfg.OpsPerProc)
	if err != nil {
		return Result{}, err
	}
	in.metrics = cfg.Metrics
	e := &engine{tracker: in.crashTracker, cfg: cfg}
	op := func(p int, timeAcquire bool) bool {
		begin := time.Time{}
		if timeAcquire {
			begin = time.Now()
		}
		if !in.Acquire(p) {
			return false
		}
		if timeAcquire {
			e.noteAcquire(time.Since(begin))
		}
		if cfg.CS != nil {
			cfg.CS(p, in.Ops(p))
		}
		return in.Release(p)
	}
	return e.run(kx.N(), kx.K(), plan, op), nil
}

// RunAssignment drives a k-assignment through plan. In addition to the
// progress contract it checks Figure 7's guarantees operation by
// operation: every granted name is in 0..K-1 and no two concurrent
// holders share one (violations are counted in Metrics); crashed
// holders leak their name, degrading the name space by exactly one
// identity per slot-costing failure.
func RunAssignment(asg *renaming.Assignment, plan Plan, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	in, err := NewAssignmentInjector(asg, plan, cfg.OpsPerProc)
	if err != nil {
		return Result{}, err
	}
	in.metrics = cfg.Metrics
	e := &engine{tracker: in.crashTracker, cfg: cfg}
	holders := make([]atomic.Int32, asg.K())
	op := func(p int, timeAcquire bool) bool {
		begin := time.Time{}
		if timeAcquire {
			begin = time.Now()
		}
		name, alive := in.Acquire(p)
		if !alive {
			return false
		}
		if timeAcquire {
			e.noteAcquire(time.Since(begin))
		}
		if name < 0 || name >= asg.K() || holders[name].Add(1) > 1 {
			e.nameViolations.Add(1)
		}
		if cfg.CS != nil {
			cfg.CS(p, in.Ops(p))
		}
		if name >= 0 && name < asg.K() {
			holders[name].Add(-1)
		}
		return in.Release(p, name)
	}
	res := e.run(asg.N(), asg.K(), plan, op)
	res.Metrics.NameViolations = e.nameViolations.Load()
	return res, nil
}

// RunShared drives the paper's §1 methodology end to end: a wait-free
// k-process counter (the Universal construction) encased in the
// k-assignment built over kx, with crashes injected at the wrapper's
// crash points. Every completed operation increments the counter, so
// on a completed run the final value proves the exact operation
// accounting: survivors' full workload plus each victim's pre-crash
// operations (a crashed operation counts only when its crash point
// lies after the protected operation — mid-renaming and exit crashes —
// never for entry and holding crashes, which stop the process before
// it applies). A mismatch is returned as an error.
func RunShared(kx core.KExclusion, plan Plan, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	asg := renaming.NewAssignment(kx).WithMetrics(cfg.Metrics)
	in, err := NewAssignmentInjector(asg, plan, cfg.OpsPerProc)
	if err != nil {
		return Result{}, err
	}
	in.metrics = cfg.Metrics
	u := resilient.NewUniversal(kx.K(), int64(0), nil).WithMetrics(cfg.Metrics)
	inc := func(s int64) (int64, any) { return s + 1, s + 1 }

	e := &engine{tracker: in.crashTracker, cfg: cfg}
	op := func(p int, timeAcquire bool) bool {
		begin := time.Time{}
		if timeAcquire {
			begin = time.Now()
		}
		name, alive := in.Acquire(p)
		if !alive {
			return false
		}
		if timeAcquire {
			e.noteAcquire(time.Since(begin))
		}
		u.Apply(name, inc)
		return in.Release(p, name)
	}
	res := e.run(kx.N(), kx.K(), plan, op)

	expected := res.Report.Survivors * cfg.OpsPerProc
	for _, ev := range plan.Events {
		if ev.Kind.IsAbort() {
			continue // the aborting process is a survivor, counted above
		}
		expected += ev.Op
		if ev.Kind == CrashMidRenaming || ev.Kind == CrashInExit {
			expected++ // the crashed operation itself was applied
		}
	}
	res.Report.AppliedTotal = expected
	if res.Report.Completed {
		if got := u.Peek(); got != int64(expected) {
			return res, fmt.Errorf("faultinject: applied-operation accounting broken: counter=%d want %d", got, expected)
		}
	}
	return res, nil
}
