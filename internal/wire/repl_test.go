package wire

import (
	"bytes"
	"reflect"
	"testing"

	"kexclusion/internal/durable"
)

func TestReplHandshakeRoundTrip(t *testing.T) {
	h, err := ParseReplHello(ReplHello{NodeID: "node-b"}.Encode())
	if err != nil || h.NodeID != "node-b" {
		t.Fatalf("hello round trip: %+v, err %v", h, err)
	}
	w := ReplWelcome{Status: StatusOK, NodeID: "node-a", Shards: 4, End: 99}
	got, err := ParseReplWelcome(w.Encode())
	if err != nil || got != w {
		t.Fatalf("welcome round trip: %+v, err %v", got, err)
	}

	// A client-dialect Hello must not parse as a repl hello (distinct
	// magic), and vice versa — cross-dialing fails at the handshake.
	if _, err := ParseReplHello(Hello{Status: StatusOK}.Encode()); err == nil {
		t.Fatal("client hello accepted as repl hello")
	}
	if _, err := ParseHello(ReplHello{NodeID: "x"}.Encode()); err == nil {
		t.Fatal("repl hello accepted as client hello")
	}
}

func TestReplRequestRoundTrip(t *testing.T) {
	pull := PullRequest{FromLSN: 7, AckLSN: 5, WaitMillis: 250, MaxRecords: 64}
	k, got, err := ParseReplRequest(pull.Encode())
	if err != nil || k != ReplPull || got != pull {
		t.Fatalf("pull round trip: kind %v, %+v, err %v", k, got, err)
	}
	if k, _, err := ParseReplRequest(EncodeStateRequest()); err != nil || k != ReplState {
		t.Fatalf("state request: kind %v, err %v", k, err)
	}
	if k, _, err := ParseReplRequest(EncodeFrontierRequest()); err != nil || k != ReplFrontier {
		t.Fatalf("frontier request: kind %v, err %v", k, err)
	}
	if _, _, err := ParseReplRequest(nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, _, err := ParseReplRequest([]byte{99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := ParseReplRequest([]byte{byte(ReplPull), 1, 2}); err == nil {
		t.Fatal("short pull accepted")
	}
}

func TestReplResponseRoundTrips(t *testing.T) {
	pr := PullResponse{
		Status: StatusOK, ResumeLSN: 12, End: 20,
		Records: []durable.Record{
			{Session: 1, Seq: 2, Shard: 3, Kind: durable.OpAdd, Arg: -4, Val: 5, Ver: 6, Epoch: 2, OK: true},
			{Session: 7, Seq: 8, Shard: 0, Kind: durable.OpSet, Arg: 9, Val: 9, Ver: 10, OK: true},
			{Session: 9, Seq: 1, Shard: 2, Kind: durable.OpMapCAS, Obj: "m", Key: "k",
				Arg: 7, Arg2: 3, Val: 4, Ver: 11, Epoch: 1},
			{Atomic: []durable.Record{
				{Session: 3, Seq: 4, Shard: 0, Kind: durable.OpQEnq, Obj: "q", Arg: 8, Val: 1, Ver: 12, OK: true},
				{Session: 3, Seq: 5, Shard: 1, Kind: durable.OpRegSet, Obj: "r", Arg: 5, Val: 5, Ver: 2, OK: true},
			}},
		},
	}
	got, err := ParsePullResponse(pr.Encode())
	if err != nil || !reflect.DeepEqual(got, pr) {
		t.Fatalf("pull response round trip:\n got %+v\nwant %+v\nerr %v", got, pr, err)
	}
	pruned := PullResponse{Status: StatusOK, Pruned: true, ResumeLSN: 3, End: 40}
	if got, err := ParsePullResponse(pruned.Encode()); err != nil || !reflect.DeepEqual(got, pruned) {
		t.Fatalf("pruned response round trip: %+v, err %v", got, err)
	}
	if _, err := ParsePullResponse([]byte{0, 0, 0}); err == nil {
		t.Fatal("short pull response accepted")
	}

	st := StateResponse{Status: StatusOK, ResumeLSN: 33, Image: []byte("img")}
	if got, err := ParseStateResponse(st.Encode()); err != nil || !reflect.DeepEqual(got, st) {
		t.Fatalf("state response round trip: %+v, err %v", got, err)
	}

	fr := FrontierResponse{Status: StatusOK, Vers: []uint64{0, 9, 4}, Epochs: []uint64{0, 2, 1}}
	if got, err := ParseFrontierResponse(fr.Encode()); err != nil || !reflect.DeepEqual(got, fr) {
		t.Fatalf("frontier response round trip: %+v, err %v", got, err)
	}
}

func TestReplFrameLimitExceedsClientLimit(t *testing.T) {
	// A state image larger than the client-dialect MaxFrame must travel
	// on the repl framing.
	payload := make([]byte, MaxFrame+1)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err == nil {
		t.Fatal("client framing accepted an oversized payload")
	}
	if err := WriteReplFrame(&buf, payload); err != nil {
		t.Fatalf("repl framing rejected a state-sized payload: %v", err)
	}
	got, err := ReadReplFrame(&buf)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("repl frame round trip: %d bytes, err %v", len(got), err)
	}
}
