package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	in := BatchRequest{Reqs: []Request{
		{ID: 1, Kind: KindAdd, Shard: 3, Arg: -7, Session: 0xfeed, Seq: 9},
		{ID: 2, Kind: KindGet, Shard: 0},
		{ID: 3, Kind: KindSet, Shard: 1, Arg: 42, Session: 0xfeed, Seq: 10},
	}}
	out, err := ParseBatchRequest(in.Encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out.Reqs) != 3 {
		t.Fatalf("got %d ops, want 3", len(out.Reqs))
	}
	for i := range in.Reqs {
		if out.Reqs[i] != in.Reqs[i] {
			t.Errorf("op %d: got %+v, want %+v", i, out.Reqs[i], in.Reqs[i])
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	in := BatchResponse{Resps: []Response{
		{ID: 1, Status: StatusOK, Value: 5},
		{ID: 2, Status: StatusOK, Flags: FlagDuplicate, Value: 5},
		{ID: 3, Status: StatusBadShard, Data: []byte("shard 9 out of range")},
	}}
	out, err := ParseBatchResponse(in.Encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out.Resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(out.Resps))
	}
	if out.Resps[1].Flags != FlagDuplicate || out.Resps[1].Value != 5 {
		t.Errorf("dupe response mangled: %+v", out.Resps[1])
	}
	if string(out.Resps[2].Data) != "shard 9 out of range" {
		t.Errorf("data mangled: %q", out.Resps[2].Data)
	}
}

// TestParseAnyRequest: the two request shapes are discriminated without
// ambiguity — a plain request is exactly requestLen bytes, a batch
// never is.
func TestParseAnyRequest(t *testing.T) {
	single := Request{ID: 7, Kind: KindAdd, Shard: 1, Arg: 2}
	reqs, batched, err := ParseAnyRequest(single.Encode())
	if err != nil || batched || len(reqs) != 1 || reqs[0] != single {
		t.Fatalf("single: reqs=%v batched=%v err=%v", reqs, batched, err)
	}
	b := BatchRequest{Reqs: []Request{single}}
	reqs, batched, err = ParseAnyRequest(b.Encode())
	if err != nil || !batched || len(reqs) != 1 || reqs[0] != single {
		t.Fatalf("batch-of-1: reqs=%v batched=%v err=%v", reqs, batched, err)
	}
	if _, _, err := ParseAnyRequest([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBatchBounds(t *testing.T) {
	// Zero ops is corrupt, not an empty pipeline.
	empty := []byte{batchReqMarker, 0, 0, 0, 0}
	if _, err := ParseBatchRequest(empty); err == nil {
		t.Error("empty batch accepted")
	}
	// A count beyond MaxBatchOps is refused before any allocation.
	huge := []byte{batchReqMarker, 0xff, 0xff, 0xff, 0xff}
	if _, err := ParseBatchRequest(huge); err == nil {
		t.Error("oversized batch count accepted")
	}
	// A count that disagrees with the body length is refused.
	lying := make([]byte, 5+requestLen)
	lying[0] = batchReqMarker
	binary.BigEndian.PutUint32(lying[1:], 2)
	if _, err := ParseBatchRequest(lying); err == nil {
		t.Error("count/body mismatch accepted")
	}
	// Same discipline on the response side.
	if _, err := ParseBatchResponse(empty); err == nil {
		t.Error("empty batch response accepted (and wrong marker besides)")
	}
	trailing := append(BatchResponse{Resps: []Response{{ID: 1}}}.Encode(), 0x00)
	if _, err := ParseBatchResponse(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestWriteBatchResponsesSplits: a response set too large for one frame
// is split across several, preserving order and count.
func TestWriteBatchResponsesSplits(t *testing.T) {
	big := make([]byte, MaxFrame/3)
	resps := []Response{
		{ID: 1, Status: StatusOK, Data: big},
		{ID: 2, Status: StatusOK, Data: big},
		{ID: 3, Status: StatusOK, Data: big},
		{ID: 4, Status: StatusOK},
	}
	var buf bytes.Buffer
	if err := WriteBatchResponses(&buf, resps); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got []Response
	frames := 0
	for buf.Len() > 0 {
		br, err := ReadBatchResponse(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		got = append(got, br.Resps...)
		frames++
	}
	if frames < 2 {
		t.Errorf("expected a split, got %d frame(s)", frames)
	}
	if len(got) != len(resps) {
		t.Fatalf("got %d responses, want %d", len(got), len(resps))
	}
	for i := range resps {
		if got[i].ID != resps[i].ID {
			t.Errorf("response %d: id %d, want %d", i, got[i].ID, resps[i].ID)
		}
	}
}

func TestHelloSupportsBatch(t *testing.T) {
	for _, tc := range []struct {
		h    Hello
		want bool
	}{
		{Hello{Status: StatusOK, Msg: FeatureBatch}, true},
		{Hello{Status: StatusOK, Msg: "kx04 future-token"}, true},
		{Hello{Status: StatusOK, Msg: ""}, false},
		{Hello{Status: StatusOK, Msg: "kx04x"}, false},
		{Hello{Status: StatusBusy, Msg: FeatureBatch}, false},
	} {
		if got := tc.h.SupportsBatch(); got != tc.want {
			t.Errorf("SupportsBatch(%+v) = %v, want %v", tc.h, got, tc.want)
		}
	}
	// The advertisement survives an encode/decode round trip a kx03
	// parser also accepts.
	b := Hello{Status: StatusOK, Identity: 2, N: 8, K: 2, Shards: 4, Msg: FeatureBatch}.Encode()
	h, err := ParseHello(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !h.SupportsBatch() {
		t.Error("advertisement lost in round trip")
	}
}

// FuzzBatchDecode: the kx04 decoders must never panic or over-allocate
// on adversarial payloads, and everything they accept must re-encode
// to an equivalent batch.
func FuzzBatchDecode(f *testing.F) {
	f.Add(BatchRequest{Reqs: []Request{{ID: 1, Kind: KindAdd, Shard: 0, Arg: 1, Session: 2, Seq: 3}}}.Encode())
	f.Add(BatchRequest{Reqs: []Request{{ID: 1, Kind: KindGet}, {ID: 2, Kind: KindSet, Arg: -1}}}.Encode())
	f.Add(BatchResponse{Resps: []Response{{ID: 1, Status: StatusOK, Value: 9}}}.Encode())
	f.Add(BatchResponse{Resps: []Response{{ID: 2, Status: StatusBusy, Data: []byte("shed")}}}.Encode())
	f.Add([]byte{batchReqMarker, 0, 0, 0, 1})
	f.Add([]byte{batchRespMarker, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		if br, err := ParseBatchRequest(b); err == nil {
			again, err := ParseBatchRequest(br.Encode())
			if err != nil {
				t.Fatalf("re-parse of accepted batch request failed: %v", err)
			}
			if len(again.Reqs) != len(br.Reqs) {
				t.Fatalf("op count changed across round trip: %d != %d", len(again.Reqs), len(br.Reqs))
			}
		}
		if br, err := ParseBatchResponse(b); err == nil {
			again, err := ParseBatchResponse(br.Encode())
			if err != nil {
				t.Fatalf("re-parse of accepted batch response failed: %v", err)
			}
			if len(again.Resps) != len(br.Resps) {
				t.Fatalf("response count changed across round trip: %d != %d", len(again.Resps), len(br.Resps))
			}
		}
		// Either shape, via the server's entry point: must not panic.
		ParseAnyRequest(b)
	})
}
