// Replication dialect: the node-to-node frames internal/cluster speaks
// between kexserved peers, kept in this package so cluster and server
// share one codec the way server and client share the client dialect.
//
// The dialect is pull-based. A follower dials the peer's replication
// listener, introduces itself with a ReplHello, and then issues typed
// requests on the same connection:
//
//   - ReplPull: "send me op records above FromLSN" — an AppendEntries
//     batch inverted into a fetch. The request piggybacks AckLSN, the
//     highest peer LSN the follower has locally fsynced, which is the
//     quorum-ack signal AND the retention pin AND (by its cadence) the
//     liveness heartbeat. A caught-up pull long-polls server-side for
//     WaitMillis, so the reply latency of a quiet cluster is one
//     network round after the primary's append, not a poll interval.
//   - ReplState: snapshot catch-up for a follower whose resume point
//     was pruned — the full per-shard state image (durable.EncodeState)
//     at the peer's log end.
//   - ReplFrontier: the per-shard (epoch, version) frontier, queried
//     during promotion so a new primary can prove it is at least as
//     new as every reachable peer — epoch first, then version —
//     before serving.
//
// Replication frames use the same length-prefix framing as the client
// dialect but under MaxReplFrame, because a state image legitimately
// exceeds the 1 MiB client bound.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"kexclusion/internal/durable"
)

// ReplMagic opens a ReplHello ("kxr3"); bump the digit on incompatible
// change — kxr1→kxr2 added per-shard epochs to records and frontiers,
// kxr2→kxr3 switched pull batches from fixed-width register records to
// the durable record codec so object and atomic records replicate.
// Distinct from Magic so a client dialing the repl port (or a follower
// dialing the client port) fails loudly at the handshake.
const ReplMagic uint32 = 0x6b787233

// MaxReplFrame bounds a replication frame. Sized for a full state
// image (durable caps snapshot bodies at 64 MiB) plus headroom.
const MaxReplFrame = 80 << 20

// MaxPullRecords caps one PullResponse batch: 8192 records ≈ 360 KiB,
// comfortably inside MaxReplFrame while amortizing the round trip.
const MaxPullRecords = 8192

// ReplKind identifies a replication request.
type ReplKind uint8

const (
	// ReplPull fetches op records above a resume LSN (long-polling when
	// caught up) and piggybacks the follower's durable ack.
	ReplPull ReplKind = 1 + iota
	// ReplState fetches the full per-shard state image.
	ReplState
	// ReplFrontier fetches the per-shard version frontier.
	ReplFrontier
)

// String names the kind for logs and errors.
func (k ReplKind) String() string {
	switch k {
	case ReplPull:
		return "pull"
	case ReplState:
		return "state"
	case ReplFrontier:
		return "frontier"
	}
	return fmt.Sprintf("replkind(%d)", uint8(k))
}

// ReplHello is the follower's first frame on a replication connection.
type ReplHello struct {
	// NodeID names the dialing node (its -node-id), identifying the
	// connection for ack tracking and retention pinning.
	NodeID string
}

// ReplWelcome answers a ReplHello.
type ReplWelcome struct {
	// Status is StatusOK on acceptance; StatusDraining when the peer is
	// shutting down. Non-OK closes the connection.
	Status Status
	// NodeID names the answering node.
	NodeID string
	// Shards is the peer's table width; peers must agree on it.
	Shards uint32
	// End is the peer's current log end, an immediate lag reading.
	End uint64
}

// PullRequest asks for op records above FromLSN in the peer's LSN
// space.
type PullRequest struct {
	// FromLSN is the resume position: records at or below it are
	// already consumed.
	FromLSN uint64
	// AckLSN is the highest peer LSN whose records the follower has
	// locally fsynced — the piggybacked quorum ack.
	AckLSN uint64
	// WaitMillis is the long-poll budget: a caught-up pull parks at
	// most this long server-side before answering empty.
	WaitMillis uint32
	// MaxRecords bounds the reply batch (0 means MaxPullRecords).
	MaxRecords uint32
}

// PullResponse carries one replication batch.
type PullResponse struct {
	// Status is StatusOK, or StatusDraining when the peer is shutting
	// down.
	Status Status
	// Pruned reports that FromLSN predates the peer's oldest live
	// segment: Records is empty and the follower must catch up via
	// ReplState before pulling again.
	Pruned bool
	// ResumeLSN is the position the next pull should continue from:
	// the last peer LSN this batch consumed (restart markers are
	// consumed silently, so ResumeLSN can advance past len(Records)).
	ResumeLSN uint64
	// End is the peer's log end at reply time (lag = End - ResumeLSN).
	End uint64
	// Records are the op records, in peer LSN order.
	Records []durable.Record
}

// StateResponse carries a full state image for snapshot catch-up.
type StateResponse struct {
	// Status is StatusOK or StatusDraining.
	Status Status
	// ResumeLSN is the peer log position the image covers: pulls
	// resume above it.
	ResumeLSN uint64
	// Image is the durable.EncodeState serialization of every shard.
	Image []byte
}

// FrontierResponse carries the per-shard (epoch, version) frontier.
// Promotion compares the pairs lexicographically: a higher epoch is
// ahead regardless of version, because a deposed primary's version
// counter keeps inflating with writes that never reached quorum.
type FrontierResponse struct {
	// Status is StatusOK or StatusDraining.
	Status Status
	// Vers holds each shard's current mutation version, indexed by
	// shard.
	Vers []uint64
	// Epochs holds each shard's failover epoch, parallel to Vers.
	Epochs []uint64
}

// replRecordOverhead is the per-record length prefix in a pull batch.
// Since kxr3, records travel as [u32 len][durable record body] using
// the same body codec as the WAL (durable.EncodeRecordBody), so
// variable-width object and atomic records replicate verbatim and a
// follower appends exactly the bytes the primary logged.
const replRecordOverhead = 4

// Encode serializes the repl hello payload.
func (h ReplHello) Encode() []byte {
	id := []byte(h.NodeID)
	b := make([]byte, 0, 8+len(id))
	b = binary.BigEndian.AppendUint32(b, ReplMagic)
	b = binary.BigEndian.AppendUint32(b, uint32(len(id)))
	return append(b, id...)
}

// ParseReplHello decodes a repl hello payload, checking the dialect
// magic.
func ParseReplHello(b []byte) (ReplHello, error) {
	if len(b) < 8 {
		return ReplHello{}, fmt.Errorf("wire: repl hello payload is %d bytes, want >= 8", len(b))
	}
	if m := binary.BigEndian.Uint32(b[0:]); m != ReplMagic {
		return ReplHello{}, fmt.Errorf("wire: bad repl magic %#x (want %#x) — not a kexserved replication endpoint?", m, ReplMagic)
	}
	n := binary.BigEndian.Uint32(b[4:])
	if int(n) != len(b)-8 {
		return ReplHello{}, fmt.Errorf("wire: repl hello declares %d id bytes, has %d", n, len(b)-8)
	}
	return ReplHello{NodeID: string(b[8:])}, nil
}

// Encode serializes the repl welcome payload.
func (w ReplWelcome) Encode() []byte {
	id := []byte(w.NodeID)
	b := make([]byte, 0, 21+len(id))
	b = binary.BigEndian.AppendUint32(b, ReplMagic)
	b = append(b, byte(w.Status))
	b = binary.BigEndian.AppendUint32(b, w.Shards)
	b = binary.BigEndian.AppendUint64(b, w.End)
	b = binary.BigEndian.AppendUint32(b, uint32(len(id)))
	return append(b, id...)
}

// ParseReplWelcome decodes a repl welcome payload.
func ParseReplWelcome(b []byte) (ReplWelcome, error) {
	if len(b) < 21 {
		return ReplWelcome{}, fmt.Errorf("wire: repl welcome payload is %d bytes, want >= 21", len(b))
	}
	if m := binary.BigEndian.Uint32(b[0:]); m != ReplMagic {
		return ReplWelcome{}, fmt.Errorf("wire: bad repl magic %#x (want %#x) — not a kexserved replication endpoint?", m, ReplMagic)
	}
	n := binary.BigEndian.Uint32(b[17:])
	if int(n) != len(b)-21 {
		return ReplWelcome{}, fmt.Errorf("wire: repl welcome declares %d id bytes, has %d", n, len(b)-21)
	}
	return ReplWelcome{
		Status: Status(b[4]),
		Shards: binary.BigEndian.Uint32(b[5:]),
		End:    binary.BigEndian.Uint64(b[9:]),
		NodeID: string(b[21:]),
	}, nil
}

// Encode serializes a pull request (kind byte first, like every repl
// request).
func (p PullRequest) Encode() []byte {
	b := make([]byte, 0, 25)
	b = append(b, byte(ReplPull))
	b = binary.BigEndian.AppendUint64(b, p.FromLSN)
	b = binary.BigEndian.AppendUint64(b, p.AckLSN)
	b = binary.BigEndian.AppendUint32(b, p.WaitMillis)
	b = binary.BigEndian.AppendUint32(b, p.MaxRecords)
	return b
}

// EncodeStateRequest serializes a state-image request.
func EncodeStateRequest() []byte { return []byte{byte(ReplState)} }

// EncodeFrontierRequest serializes a frontier request.
func EncodeFrontierRequest() []byte { return []byte{byte(ReplFrontier)} }

// ParseReplRequest decodes any repl request payload, returning its
// kind and — for ReplPull — the request body.
func ParseReplRequest(b []byte) (ReplKind, PullRequest, error) {
	if len(b) < 1 {
		return 0, PullRequest{}, fmt.Errorf("wire: empty repl request")
	}
	switch k := ReplKind(b[0]); k {
	case ReplPull:
		if len(b) != 25 {
			return 0, PullRequest{}, fmt.Errorf("wire: pull request payload is %d bytes, want 25", len(b))
		}
		return k, PullRequest{
			FromLSN:    binary.BigEndian.Uint64(b[1:]),
			AckLSN:     binary.BigEndian.Uint64(b[9:]),
			WaitMillis: binary.BigEndian.Uint32(b[17:]),
			MaxRecords: binary.BigEndian.Uint32(b[21:]),
		}, nil
	case ReplState, ReplFrontier:
		if len(b) != 1 {
			return 0, PullRequest{}, fmt.Errorf("wire: %s request payload is %d bytes, want 1", k, len(b))
		}
		return k, PullRequest{}, nil
	default:
		return 0, PullRequest{}, fmt.Errorf("wire: unknown repl request kind %d", b[0])
	}
}

// Encode serializes a pull response.
func (p PullResponse) Encode() []byte {
	b := make([]byte, 0, 23+len(p.Records)*(replRecordOverhead+64))
	b = append(b, byte(p.Status))
	var pruned byte
	if p.Pruned {
		pruned = 1
	}
	b = append(b, pruned)
	b = binary.BigEndian.AppendUint64(b, p.ResumeLSN)
	b = binary.BigEndian.AppendUint64(b, p.End)
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Records)))
	for _, r := range p.Records {
		body := durable.EncodeRecordBody(r)
		b = binary.BigEndian.AppendUint32(b, uint32(len(body)))
		b = append(b, body...)
	}
	return b
}

// ParsePullResponse decodes a pull response payload.
func ParsePullResponse(b []byte) (PullResponse, error) {
	if len(b) < 22 {
		return PullResponse{}, fmt.Errorf("wire: pull response payload is %d bytes, want >= 22", len(b))
	}
	n := int(binary.BigEndian.Uint32(b[18:]))
	if n < 0 || n > MaxPullRecords {
		return PullResponse{}, fmt.Errorf("wire: pull response declares %d records, cap %d", n, MaxPullRecords)
	}
	p := PullResponse{
		Status:    Status(b[0]),
		Pruned:    b[1] != 0,
		ResumeLSN: binary.BigEndian.Uint64(b[2:]),
		End:       binary.BigEndian.Uint64(b[10:]),
	}
	off := 22
	if n > 0 {
		p.Records = make([]durable.Record, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(b)-off < replRecordOverhead {
			return PullResponse{}, fmt.Errorf("wire: pull response truncated at record %d", i)
		}
		ln := int(binary.BigEndian.Uint32(b[off:]))
		off += replRecordOverhead
		if ln < 0 || len(b)-off < ln {
			return PullResponse{}, fmt.Errorf("wire: pull response record %d declares %d bytes, has %d", i, ln, len(b)-off)
		}
		rec, err := durable.ParseRecordBody(b[off : off+ln])
		if err != nil {
			return PullResponse{}, fmt.Errorf("wire: pull response record %d: %w", i, err)
		}
		p.Records = append(p.Records, rec)
		off += ln
	}
	if off != len(b) {
		return PullResponse{}, fmt.Errorf("wire: pull response has %d trailing bytes", len(b)-off)
	}
	return p, nil
}

// Encode serializes a state response.
func (s StateResponse) Encode() []byte {
	b := make([]byte, 0, 13+len(s.Image))
	b = append(b, byte(s.Status))
	b = binary.BigEndian.AppendUint64(b, s.ResumeLSN)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Image)))
	return append(b, s.Image...)
}

// ParseStateResponse decodes a state response payload.
func ParseStateResponse(b []byte) (StateResponse, error) {
	if len(b) < 13 {
		return StateResponse{}, fmt.Errorf("wire: state response payload is %d bytes, want >= 13", len(b))
	}
	n := binary.BigEndian.Uint32(b[9:])
	if int(n) != len(b)-13 {
		return StateResponse{}, fmt.Errorf("wire: state response declares %d image bytes, has %d", n, len(b)-13)
	}
	s := StateResponse{Status: Status(b[0]), ResumeLSN: binary.BigEndian.Uint64(b[1:])}
	if n > 0 {
		s.Image = append([]byte(nil), b[13:]...)
	}
	return s, nil
}

// Encode serializes a frontier response as [epoch][ver] pairs per
// shard. Vers and Epochs must be the same length (a short Epochs
// encodes missing entries as 0, for hand-built test values).
func (f FrontierResponse) Encode() []byte {
	b := make([]byte, 0, 5+len(f.Vers)*16)
	b = append(b, byte(f.Status))
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Vers)))
	for i, v := range f.Vers {
		var e uint64
		if i < len(f.Epochs) {
			e = f.Epochs[i]
		}
		b = binary.BigEndian.AppendUint64(b, e)
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

// ParseFrontierResponse decodes a frontier response payload.
func ParseFrontierResponse(b []byte) (FrontierResponse, error) {
	if len(b) < 5 {
		return FrontierResponse{}, fmt.Errorf("wire: frontier response payload is %d bytes, want >= 5", len(b))
	}
	n := int(binary.BigEndian.Uint32(b[1:]))
	if n*16 != len(b)-5 {
		return FrontierResponse{}, fmt.Errorf("wire: frontier response declares %d shards, has %d bytes for them", n, len(b)-5)
	}
	f := FrontierResponse{Status: Status(b[0])}
	if n > 0 {
		f.Vers = make([]uint64, n)
		f.Epochs = make([]uint64, n)
		for i := range f.Vers {
			f.Epochs[i] = binary.BigEndian.Uint64(b[5+i*16:])
			f.Vers[i] = binary.BigEndian.Uint64(b[13+i*16:])
		}
	}
	return f, nil
}

// WriteReplFrame frames and writes one replication payload under the
// replication size limit.
func WriteReplFrame(w io.Writer, payload []byte) error {
	return WriteFrameLimit(w, payload, MaxReplFrame)
}

// ReadReplFrame reads one replication frame under the replication size
// limit.
func ReadReplFrame(r io.Reader) ([]byte, error) {
	return ReadFrameLimit(r, MaxReplFrame)
}
