// Object frames are the kx05 extension of the protocol: operations on
// named, typed objects (registers, maps, queues, snapshot objects) plus
// multi-shard atomic groups.
//
// kx05 follows the kx04 playbook exactly: the Hello layout is untouched
// and the extension is advertised by the FeatureObjects token in the
// Hello's Msg field, so kx03 and kx04 clients keep working bit-for-bit
// — a kx04 client against a kx05 server exchanges byte-identical
// frames, pinned by a golden test. A client that saw the token may send
// three new payload shapes, each opened by a marker byte that collides
// with neither the plain 37-byte request nor the kx04 batch marker:
//
//   - 0xC0 ObjRequest: one operation carrying the kx05 fields (Obj,
//     Key, Arg2) the legacy layout has no room for. Answered with a
//     plain Response frame, mirroring the kx03 request/response shape.
//   - 0xC1 ObjBatch: a pipeline of up to MaxBatchOps operations, the
//     kx04 batch with the wider op encoding. Legacy kinds may ride
//     along (name and key empty), so a mixed pipeline needs one frame.
//     Answered with BatchResponse frames, exactly like kx04.
//   - 0xC2 atomic ObjBatch: up to MaxAtomicOps mutations applied
//     all-or-nothing across shards — either every member commits under
//     one WAL record or every member answers StatusAtomicAbort and no
//     object is touched. Answered with BatchResponse frames.
//
// The op encoding is self-describing: a fixed header carrying every
// numeric field plus name/key lengths, then the name and key bytes.
// A single ObjRequest payload is 49+len(name)+len(key) bytes; since
// name is mandatory (≥ 1 byte) it can never be 37 bytes long, so the
// length discrimination that separates plain requests from batches
// keeps working unchanged.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"kexclusion/internal/object"
)

// FeatureObjects is the capability token a kx05 server adds to the Msg
// field of an admission Hello, alongside FeatureBatch.
const FeatureObjects = "kx05"

// MaxAtomicOps bounds the operations in one atomic group — small by
// design, because the server holds every touched shard exclusively for
// the group's duration.
const MaxAtomicOps = object.MaxAtomicOps

// Object payload markers (the 0xB4/0xB5 pattern continued).
const (
	objReqMarker    = 0xC0
	objBatchMarker  = 0xC1
	objAtomicMarker = 0xC2
)

// objOpFixedLen is the fixed header of one op inside an object frame:
// id + kind + shard + arg + session + seq + arg2 + nameLen + keyLen.
const objOpFixedLen = 8 + 1 + 4 + 8 + 8 + 8 + 8 + 1 + 2

// SupportsObjects reports whether an admission hello advertises the
// kx05 object extension.
func (h Hello) SupportsObjects() bool {
	if h.Status != StatusOK {
		return false
	}
	for _, tok := range strings.Fields(h.Msg) {
		if tok == FeatureObjects {
			return true
		}
	}
	return false
}

// validateObjFields checks the kx05 fields against the object caps.
// Object kinds require a name; legacy kinds (which may ride inside
// object frames) must leave name, key and arg2 zero so their encoding
// stays canonical.
func validateObjFields(r Request) error {
	if r.Kind.IsObject() {
		if len(r.Obj) == 0 || len(r.Obj) > object.MaxNameLen {
			return fmt.Errorf("wire: object name of %d bytes outside [1,%d]", len(r.Obj), object.MaxNameLen)
		}
	} else if r.Obj != "" || r.Key != "" || r.Arg2 != 0 {
		return fmt.Errorf("wire: %s op carries object fields", r.Kind)
	}
	if len(r.Key) > object.MaxKeyLen {
		return fmt.Errorf("wire: object key of %d bytes exceeds %d", len(r.Key), object.MaxKeyLen)
	}
	return nil
}

// appendObjOp serializes one op in the object encoding.
func appendObjOp(b []byte, r Request) []byte {
	b = binary.BigEndian.AppendUint64(b, r.ID)
	b = append(b, byte(r.Kind))
	b = binary.BigEndian.AppendUint32(b, r.Shard)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Arg))
	b = binary.BigEndian.AppendUint64(b, r.Session)
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Arg2))
	b = append(b, byte(len(r.Obj)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Key)))
	b = append(b, r.Obj...)
	return append(b, r.Key...)
}

// parseObjOp decodes one op in the object encoding, returning the
// bytes consumed.
func parseObjOp(b []byte) (Request, int, error) {
	if len(b) < objOpFixedLen {
		return Request{}, 0, fmt.Errorf("wire: object op truncated (%d bytes)", len(b))
	}
	r := Request{
		ID:      binary.BigEndian.Uint64(b[0:]),
		Kind:    Kind(b[8]),
		Shard:   binary.BigEndian.Uint32(b[9:]),
		Arg:     int64(binary.BigEndian.Uint64(b[13:])),
		Session: binary.BigEndian.Uint64(b[21:]),
		Seq:     binary.BigEndian.Uint64(b[29:]),
		Arg2:    int64(binary.BigEndian.Uint64(b[37:])),
	}
	nameLen, keyLen := int(b[45]), int(binary.BigEndian.Uint16(b[46:]))
	n := objOpFixedLen + nameLen + keyLen
	if len(b) < n {
		return Request{}, 0, fmt.Errorf("wire: object op declares %d name+key bytes, has %d", nameLen+keyLen, len(b)-objOpFixedLen)
	}
	r.Obj = string(b[objOpFixedLen : objOpFixedLen+nameLen])
	r.Key = string(b[objOpFixedLen+nameLen : n])
	if err := validateObjFields(r); err != nil {
		return Request{}, 0, err
	}
	return r, n, nil
}

// EncodeObjRequest serializes one operation as a single kx05 object
// payload (marker 0xC0).
func EncodeObjRequest(r Request) ([]byte, error) {
	if err := validateObjFields(r); err != nil {
		return nil, err
	}
	return appendObjOp([]byte{objReqMarker}, r), nil
}

// ParseObjRequest decodes a single object request payload.
func ParseObjRequest(b []byte) (Request, error) {
	if len(b) < 1 || b[0] != objReqMarker {
		return Request{}, fmt.Errorf("wire: not an object request payload")
	}
	r, n, err := parseObjOp(b[1:])
	if err != nil {
		return Request{}, err
	}
	if n != len(b)-1 {
		return Request{}, fmt.Errorf("wire: object request has %d trailing bytes", len(b)-1-n)
	}
	return r, nil
}

// ObjBatch is a pipeline (or, when Atomic, an all-or-nothing group) of
// operations in one kx05 frame.
type ObjBatch struct {
	Reqs []Request
	// Atomic selects the 0xC2 all-or-nothing group encoding: every
	// member must be a dedup-eligible mutation and the count is capped
	// at MaxAtomicOps instead of MaxBatchOps.
	Atomic bool
}

// Encode serializes the batch payload: marker, count, then the
// self-describing op encodings back to back.
func (ob ObjBatch) Encode() ([]byte, error) {
	marker, cap := byte(objBatchMarker), MaxBatchOps
	if ob.Atomic {
		marker, cap = objAtomicMarker, MaxAtomicOps
	}
	if len(ob.Reqs) == 0 || len(ob.Reqs) > cap {
		return nil, fmt.Errorf("wire: object batch of %d ops outside [1,%d]", len(ob.Reqs), cap)
	}
	out := make([]byte, 3, 3+len(ob.Reqs)*(objOpFixedLen+16))
	out[0] = marker
	binary.BigEndian.PutUint16(out[1:], uint16(len(ob.Reqs)))
	for _, r := range ob.Reqs {
		if err := validateObjFields(r); err != nil {
			return nil, err
		}
		out = appendObjOp(out, r)
	}
	return out, nil
}

// ParseObjBatch decodes an object batch payload of either flavor.
func ParseObjBatch(b []byte) (ObjBatch, error) {
	if len(b) < 3 || (b[0] != objBatchMarker && b[0] != objAtomicMarker) {
		return ObjBatch{}, fmt.Errorf("wire: not an object batch payload")
	}
	ob := ObjBatch{Atomic: b[0] == objAtomicMarker}
	cap := MaxBatchOps
	if ob.Atomic {
		cap = MaxAtomicOps
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if n == 0 || n > cap {
		return ObjBatch{}, fmt.Errorf("wire: object batch of %d ops outside [1,%d]", n, cap)
	}
	ob.Reqs = make([]Request, 0, n)
	off := 3
	for i := 0; i < n; i++ {
		r, used, err := parseObjOp(b[off:])
		if err != nil {
			return ObjBatch{}, fmt.Errorf("wire: object batch op %d: %w", i, err)
		}
		ob.Reqs = append(ob.Reqs, r)
		off += used
	}
	if off != len(b) {
		return ObjBatch{}, fmt.Errorf("wire: object batch has %d trailing bytes", len(b)-off)
	}
	return ob, nil
}

// ReqFrame is one decoded inbound request frame of any dialect. The
// response framing mirrors the request shape: plain frames (Batched
// false) are answered with one plain Response frame, batched frames
// with BatchResponse frames carrying that frame's responses in order.
type ReqFrame struct {
	Reqs []Request
	// Batched reports batch framing (kx04 batch or kx05 object batch).
	Batched bool
	// Atomic reports an all-or-nothing group (implies Batched).
	Atomic bool
}

// ParseRequestFrame decodes a request payload of any dialect: plain
// kx03, kx04 batch, or the three kx05 object shapes.
func ParseRequestFrame(b []byte) (ReqFrame, error) {
	if len(b) == requestLen {
		r, err := ParseRequest(b)
		if err != nil {
			return ReqFrame{}, err
		}
		return ReqFrame{Reqs: []Request{r}}, nil
	}
	if len(b) == 0 {
		return ReqFrame{}, fmt.Errorf("wire: empty request payload")
	}
	switch b[0] {
	case batchReqMarker:
		br, err := ParseBatchRequest(b)
		if err != nil {
			return ReqFrame{}, err
		}
		return ReqFrame{Reqs: br.Reqs, Batched: true}, nil
	case objReqMarker:
		r, err := ParseObjRequest(b)
		if err != nil {
			return ReqFrame{}, err
		}
		return ReqFrame{Reqs: []Request{r}}, nil
	case objBatchMarker, objAtomicMarker:
		ob, err := ParseObjBatch(b)
		if err != nil {
			return ReqFrame{}, err
		}
		return ReqFrame{Reqs: ob.Reqs, Batched: true, Atomic: ob.Atomic}, nil
	}
	return ReqFrame{}, fmt.Errorf("wire: unknown request payload shape (%d bytes, marker %#x)", len(b), b[0])
}

// ReadRequestFrame reads one frame and decodes it as any request
// dialect.
func ReadRequestFrame(r io.Reader) (ReqFrame, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return ReqFrame{}, err
	}
	return ParseRequestFrame(b)
}

// EncodeSlots serializes a snapshot scan result (8 bytes per slot),
// the Data payload of a KindSnapScan response.
func EncodeSlots(slots []int64) []byte {
	b := make([]byte, 0, len(slots)*8)
	for _, v := range slots {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// DecodeSlots deserializes a snapshot scan Data payload.
func DecodeSlots(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("wire: snapshot scan payload of %d bytes is not a multiple of 8", len(b))
	}
	slots := make([]int64, len(b)/8)
	for i := range slots {
		slots[i] = int64(binary.BigEndian.Uint64(b[i*8:]))
	}
	return slots, nil
}
