// Package wire is the kexserved network protocol: a small length-prefixed
// binary codec with an explicit error model, shared by internal/server and
// internal/server/client so neither imports the other.
//
// Every message travels in a frame — a 4-byte big-endian payload length
// followed by the payload — and payloads use fixed-order big-endian fields
// so encodings are deterministic. Three payload shapes exist:
//
//   - Hello: the server's first frame on an accepted connection. Either it
//     grants admission (StatusOK plus the leased process identity and the
//     server's (N, k, shards) shape) or it rejects with backpressure
//     (StatusBusy) and closes.
//   - Request: client → server. An operation against one shard of the
//     object table, or a control operation (ping, stats).
//   - Response: server → client. Status, a value, and an optional opaque
//     Data payload (stats JSON, error detail).
//
// The error model is the Status byte: non-OK responses surface on the
// client as *wire.Error carrying the status and the human-readable detail
// from Data, so callers can branch on class (busy, draining, bad shard...)
// without string matching.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"kexclusion/internal/obs"
)

// ErrFrameTooLarge marks a peer announcing a frame beyond MaxFrame.
// Wrapped (never returned bare) by ReadFrame, so the serving side can
// distinguish an oversized announcement — answerable with a clean typed
// response before hanging up — from garbled framing.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Magic opens every Hello frame; it doubles as the protocol version
// ("kx03" — bump the digit on incompatible change; 02 added the
// RetryAfterMillis field to Hello, 03 added the client-assigned op ID
// (Session, Seq) to Request and the Flags byte to Response). The kx04
// batch extension (see batch.go) is a compatible superset — its frames
// are opt-in, negotiated via the FeatureBatch token in Hello.Msg — so
// the magic deliberately stays at kx03: a stock kx03 client must keep
// parsing a kx04 server's Hello unchanged.
const Magic uint32 = 0x6b783033

// MaxFrame bounds a frame payload; a peer announcing more is treated as
// corrupt rather than trusted with an allocation.
const MaxFrame = 1 << 20

// Kind identifies a request operation.
type Kind uint8

const (
	// KindPing is a no-op round trip.
	KindPing Kind = 1 + iota
	// KindGet reads a shard's value (linearized with updates).
	KindGet
	// KindAdd adds Arg to a shard and returns the new value.
	KindAdd
	// KindSet overwrites a shard with Arg.
	KindSet
	// KindStats returns the server's metrics snapshot as JSON in Data.
	KindStats

	// kx05 object kinds (see object.go): operations on named, typed
	// objects. They never travel in plain kx03 request frames — the
	// object frames carry the Obj/Key/Arg2 fields the legacy layout has
	// no room for.

	// KindCreate creates object Obj of type Arg (object.Type); Arg2 is
	// the slot count for snapshot objects. Idempotent per type.
	KindCreate
	// KindRegGet/KindRegAdd/KindRegSet operate on a named register.
	KindRegGet
	KindRegAdd
	KindRegSet
	// KindMapGet/Put/CAS/Del operate on map Obj at Key. CAS stores Arg
	// if the current value equals Arg2 (missing key compares as 0);
	// a mismatch answers OK-status with FlagFound clear and the
	// observed value.
	KindMapGet
	KindMapPut
	KindMapCAS
	KindMapDel
	// KindQEnq/QDeq/QLen operate on queue Obj. QDeq on an empty queue
	// answers with FlagFound clear.
	KindQEnq
	KindQDeq
	KindQLen
	// KindSnapUpdate writes Arg into slot Arg2 of snapshot Obj;
	// KindSnapScan reads all slots atomically (8 bytes each in Data).
	KindSnapUpdate
	KindSnapScan
)

// IsObject reports whether the kind is a kx05 named-object operation.
func (k Kind) IsObject() bool { return k >= KindCreate && k <= KindSnapScan }

// IsRead reports whether the kind is a pure read: no state movement,
// eligible for the server's read-only fast path (no WAL, no quorum).
func (k Kind) IsRead() bool {
	switch k {
	case KindGet, KindRegGet, KindMapGet, KindQLen, KindSnapScan:
		return true
	}
	return false
}

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindPing:
		return "ping"
	case KindGet:
		return "get"
	case KindAdd:
		return "add"
	case KindSet:
		return "set"
	case KindStats:
		return "stats"
	case KindCreate:
		return "create"
	case KindRegGet:
		return "reg.get"
	case KindRegAdd:
		return "reg.add"
	case KindRegSet:
		return "reg.set"
	case KindMapGet:
		return "map.get"
	case KindMapPut:
		return "map.put"
	case KindMapCAS:
		return "map.cas"
	case KindMapDel:
		return "map.del"
	case KindQEnq:
		return "queue.enq"
	case KindQDeq:
		return "queue.deq"
	case KindQLen:
		return "queue.len"
	case KindSnapUpdate:
		return "snap.update"
	case KindSnapScan:
		return "snap.scan"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Status classifies a response (or a Hello). StatusOK is the zero value.
type Status uint8

const (
	// StatusOK: the operation succeeded.
	StatusOK Status = iota
	// StatusBusy: admission rejected — all N process identities are
	// leased and the parking window (if any) elapsed. Backpressure, not
	// failure: retry later.
	StatusBusy
	// StatusBadRequest: the request was malformed or its kind unknown.
	StatusBadRequest
	// StatusBadShard: the shard index is outside the server's table.
	StatusBadShard
	// StatusDraining: the server is shutting down gracefully and no
	// longer starts operations.
	StatusDraining
	// StatusInternal: the server failed; Data carries detail.
	StatusInternal
	// StatusTimeout: the operation's per-request deadline expired while
	// it was still waiting for a slot and it was withdrawn — the
	// operation was NOT applied and the object is untouched, so even
	// non-idempotent operations are safe to retry on this status.
	StatusTimeout
	// StatusNotPrimary: this node does not own the request's shard in
	// the cluster placement; the operation was NOT applied. Data
	// carries the owning primary's client address (empty when the owner
	// is unknown, e.g. mid-failover) — clients should redial there and
	// retry with the same op ID.
	StatusNotPrimary
	// StatusAtomicAbort: the operation belonged to an atomic group that
	// aborted — some member would have been logically rejected, so no
	// member was applied. Every response in the group carries this
	// status; the failing member's Data explains why. The group is safe
	// to retry with the same op IDs.
	StatusAtomicAbort
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusBadRequest:
		return "bad_request"
	case StatusBadShard:
		return "bad_shard"
	case StatusDraining:
		return "draining"
	case StatusInternal:
		return "internal"
	case StatusTimeout:
		return "timeout"
	case StatusNotPrimary:
		return "not_primary"
	case StatusAtomicAbort:
		return "atomic_abort"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Error is the client-side form of a non-OK response.
type Error struct {
	Status Status
	Msg    string
	// RetryAfterMillis is the server's backoff hint on StatusBusy (0 = no
	// hint). Carried in Response.Value, lifted here by Response.Err.
	RetryAfterMillis uint32
}

// Error formats the status and detail.
func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: server returned %s", e.Status)
	}
	return fmt.Sprintf("wire: server returned %s: %s", e.Status, e.Msg)
}

// Request is one client operation.
type Request struct {
	// ID is echoed verbatim in the matching Response.
	ID uint64
	// Kind selects the operation.
	Kind Kind
	// Shard addresses the object table (ignored by ping/stats).
	Shard uint32
	// Arg is the operand of add/set.
	Arg int64
	// Session and Seq are the client-assigned op ID for mutations:
	// Session is a client-chosen identity stable across reconnects,
	// Seq a per-session sequence number assigned once per logical
	// operation and reused verbatim on every retry. A server that
	// keeps dedup state answers a retried (Session, Seq) with the
	// original result (FlagDuplicate set) instead of re-applying.
	// Either being zero opts the operation out of deduplication.
	Session uint64
	Seq     uint64
	// Obj names the target object for kx05 object kinds (see object.go);
	// Key addresses a map entry; Arg2 is the second operand (CAS expected
	// value, snapshot slot index, snapshot slot count on create). These
	// travel only in object frames — the plain kx03 request layout has no
	// room for them and Encode/ParseRequest deliberately ignore them, so
	// legacy exchanges stay byte-identical.
	Obj  string
	Key  string
	Arg2 int64
}

// Flags qualifies a successful Response.
type Flags uint8

const (
	// FlagDuplicate: the request's op ID matched an already-applied
	// operation; Value is the originally acknowledged result and the
	// object was not touched again.
	FlagDuplicate Flags = 1 << iota
	// FlagFound: the operation's logical verdict. Set on a map.get whose
	// key exists, a successful CAS, a delete that removed a key, a
	// dequeue that yielded an element, and every unconditional success.
	// Clear means the op completed but observed "miss" (Value then
	// carries the observed/zero value). Only meaningful on kx05 object
	// responses; legacy responses never set it.
	FlagFound
)

// Response answers one Request.
type Response struct {
	// ID echoes the request.
	ID uint64
	// Status classifies the outcome.
	Status Status
	// Flags qualifies an OK outcome (see FlagDuplicate).
	Flags Flags
	// Value is the operation result (new/current shard value).
	Value int64
	// Data is an optional opaque payload: error detail on non-OK
	// statuses, the stats JSON for KindStats.
	Data []byte
}

// Err converts a non-OK response into an *Error (nil when OK). On
// StatusBusy and StatusNotPrimary the response's Value field carries
// the server's Retry-After hint in milliseconds (the response analogue
// of Hello.RetryAfterMillis — Value is otherwise unused on errors, so
// the frame layout is unchanged); Err lifts it into the Error. A
// hintless NotPrimary carries the primary's address in Msg; a hinted
// one means the refusing node knows no better primary (its own lease
// expired), so the client should back off rather than rotate.
func (r Response) Err() error {
	e := &Error{Status: r.Status, Msg: string(r.Data)}
	if r.Status == StatusOK {
		return nil
	}
	if (r.Status == StatusBusy || r.Status == StatusNotPrimary) && r.Value > 0 {
		e.RetryAfterMillis = uint32(r.Value)
	}
	return e
}

// Hello is the server's first frame on a connection.
type Hello struct {
	// Status is StatusOK on admission, StatusBusy on rejection.
	Status Status
	// Identity is the leased process identity p in [0, N) (admission only).
	Identity uint32
	// N, K, Shards describe the server's shape.
	N, K, Shards uint32
	// RetryAfterMillis is the server's backoff hint on StatusBusy: how
	// long, in milliseconds, the client should wait before redialing
	// (0 = no hint, retry at the client's own pace). Servers derive it
	// from the configured admission parking window so rejected clients
	// come back when an identity is plausibly free.
	RetryAfterMillis uint32
	// Msg carries rejection detail on non-OK hellos. On an admission
	// (StatusOK) hello it is a space-separated capability token list
	// (see FeatureBatch); kx03 clients ignore it, which is what makes
	// the kx04 extension negotiable without a layout change.
	Msg string
}

// Stats is the schema of the KindStats payload and the kexserved -json
// dump: the server shape, session-manager counters, recovery tallies,
// and one metrics snapshot per shard (each shard's k-exclusion,
// renaming and universal construction share that shard's sink). Fields
// are declared in alphabetical order of their JSON keys, so the
// marshalled schema is deterministic and sorted — pinned by a golden
// test.
type Stats struct {
	// ActiveSessions counts currently leased identities; Admitted,
	// Rejected and Reclaimed are lifetime totals, where Reclaimed counts
	// identities returned by the session teardown path (every session
	// end, including disconnect-as-crash reclaims).
	ActiveSessions int64 `json:"active_sessions"`
	// AdmitQueue is the instantaneous admission queue depth: connections
	// parked waiting for an identity (the shed watermarks' input).
	AdmitQueue int64 `json:"admit_queue"`
	Admitted   int64 `json:"admitted"`
	// AppliedDupes counts mutations answered from the dedup window — a
	// retried op whose first application was already acknowledged (or
	// was in flight); the object was not touched again.
	AppliedDupes int64 `json:"applied_dupes"`
	// BatchAtomic counts atomic groups committed all-or-nothing (one WAL
	// record each; aborted groups are not counted).
	BatchAtomic int64 `json:"batch_atomic"`
	// Draining reports whether graceful shutdown has begun.
	Draining bool `json:"draining"`
	// IdleReclaims counts sessions torn down by the idle watchdog (a
	// silent connection exceeded the idle timeout).
	IdleReclaims int64  `json:"idle_reclaims"`
	Impl         string `json:"impl"`
	// InflightOps is the instantaneous count of object operations
	// executing (the shed ceiling's input).
	InflightOps int64 `json:"inflight_ops"`
	K           int   `json:"k"`
	// LeaseDemotions counts shards this node self-demoted because its
	// leader lease expired; LeaseExpirations counts held->expired lease
	// transitions; LeaseHeld reports whether a quorum of peers
	// currently witnesses this node's lease (true off-cluster and at
	// quorum 1, where the lease is vacuous).
	LeaseDemotions   int64 `json:"lease_demotions"`
	LeaseExpirations int64 `json:"lease_expirations"`
	LeaseHeld        bool  `json:"lease_held"`
	N                int   `json:"n"`
	// NotPrimaryRedirects counts operations refused with
	// StatusNotPrimary because the addressed shard is owned by another
	// node in the cluster placement (never applied; zero off-cluster).
	NotPrimaryRedirects int64 `json:"notprimary_redirects"`
	// ObjMapOps, ObjQueueOps, ObjRegisterOps and ObjSnapshotOps count
	// completed kx05 object operations by object class (reads and
	// mutations both; creates count toward the class being created).
	ObjMapOps      int64 `json:"obj_map_ops"`
	ObjQueueOps    int64 `json:"obj_queue_ops"`
	ObjRegisterOps int64 `json:"obj_register_ops"`
	ObjSnapshotOps int64 `json:"obj_snapshot_ops"`
	// OpDeadlines counts operations withdrawn because their per-op
	// deadline expired while waiting for a slot (StatusTimeout).
	OpDeadlines int64 `json:"op_deadlines"`
	// PerShard holds one acquisition-metrics snapshot per shard.
	PerShard []obs.Snapshot `json:"per_shard"`
	// Phase is the server's lifecycle phase (starting, recovering,
	// running, degraded, draining, stopped).
	Phase string `json:"phase"`
	// QuorumAcks counts mutations acknowledged after the replication
	// quorum confirmed durability (zero off-cluster or at quorum 1).
	QuorumAcks int64 `json:"quorum_acks"`
	// ReadFastpath counts pure reads served from committed shard state
	// without touching the WAL or the replication quorum.
	ReadFastpath int64 `json:"read_fastpath"`
	Reclaimed    int64 `json:"reclaimed"`
	// RecoveredOps is the number of mutations reconstructed from the
	// data directory at startup (snapshot plus WAL replay); zero when
	// the server runs without durability or booted fresh.
	RecoveredOps int64 `json:"recovered_ops"`
	Rejected     int64 `json:"rejected"`
	// ReplicaLagLSN is the instantaneous worst-case replication lag:
	// this node's log end minus the lowest follower-acknowledged LSN
	// (zero off-cluster, when fully caught up, or with no followers).
	ReplicaLagLSN int64 `json:"replica_lag_lsn"`
	// RestartCount is how many prior incarnations opened this data
	// directory: 0 on first boot, 1 after one crash or restart.
	RestartCount int64 `json:"restart_count"`
	Shards       int   `json:"shards"`
	// ShedAdmissions counts connections refused by the load-shedding
	// watermark policy (before parking); ShedOps counts operations
	// refused by the in-flight ceiling (never applied).
	ShedAdmissions int64 `json:"shed_admissions"`
	ShedOps        int64 `json:"shed_ops"`
}

// JSON marshals the stats deterministically.
func (s Stats) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Stats contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("wire: stats encoding failed: %v", err))
	}
	return b
}

// ParseStats decodes a KindStats Data payload.
func ParseStats(b []byte) (Stats, error) {
	var s Stats
	if err := json.Unmarshal(b, &s); err != nil {
		return Stats{}, fmt.Errorf("wire: bad stats payload: %w", err)
	}
	return s, nil
}

// WriteFrame writes one length-prefixed frame under the client-dialect
// limit.
func WriteFrame(w io.Writer, payload []byte) error {
	return WriteFrameLimit(w, payload, MaxFrame)
}

// WriteFrameLimit writes one length-prefixed frame under an explicit
// size limit (the replication dialect carries state images larger than
// MaxFrame).
func WriteFrameLimit(w io.Writer, payload []byte, limit int) error {
	if len(payload) > limit {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), limit)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame under the client-dialect
// limit, rejecting oversized announcements before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameLimit(r, MaxFrame)
}

// ReadFrameLimit reads one length-prefixed frame under an explicit
// size limit.
func ReadFrameLimit(r io.Reader, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(limit) {
		return nil, fmt.Errorf("%w: peer announced %d bytes, limit %d", ErrFrameTooLarge, n, limit)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return payload, nil
}

const requestLen = 8 + 1 + 4 + 8 + 8 + 8

// Encode serializes the request payload.
func (r Request) Encode() []byte {
	b := make([]byte, requestLen)
	binary.BigEndian.PutUint64(b[0:], r.ID)
	b[8] = byte(r.Kind)
	binary.BigEndian.PutUint32(b[9:], r.Shard)
	binary.BigEndian.PutUint64(b[13:], uint64(r.Arg))
	binary.BigEndian.PutUint64(b[21:], r.Session)
	binary.BigEndian.PutUint64(b[29:], r.Seq)
	return b
}

// ParseRequest decodes a request payload.
func ParseRequest(b []byte) (Request, error) {
	if len(b) != requestLen {
		return Request{}, fmt.Errorf("wire: request payload is %d bytes, want %d", len(b), requestLen)
	}
	return Request{
		ID:      binary.BigEndian.Uint64(b[0:]),
		Kind:    Kind(b[8]),
		Shard:   binary.BigEndian.Uint32(b[9:]),
		Arg:     int64(binary.BigEndian.Uint64(b[13:])),
		Session: binary.BigEndian.Uint64(b[21:]),
		Seq:     binary.BigEndian.Uint64(b[29:]),
	}, nil
}

// Encode serializes the response payload.
func (r Response) Encode() []byte {
	b := make([]byte, 8+1+1+8+4+len(r.Data))
	binary.BigEndian.PutUint64(b[0:], r.ID)
	b[8] = byte(r.Status)
	b[9] = byte(r.Flags)
	binary.BigEndian.PutUint64(b[10:], uint64(r.Value))
	binary.BigEndian.PutUint32(b[18:], uint32(len(r.Data)))
	copy(b[22:], r.Data)
	return b
}

// ParseResponse decodes a response payload.
func ParseResponse(b []byte) (Response, error) {
	if len(b) < 22 {
		return Response{}, fmt.Errorf("wire: response payload is %d bytes, want >= 22", len(b))
	}
	dlen := binary.BigEndian.Uint32(b[18:])
	if int(dlen) != len(b)-22 {
		return Response{}, fmt.Errorf("wire: response declares %d data bytes, has %d", dlen, len(b)-22)
	}
	r := Response{
		ID:     binary.BigEndian.Uint64(b[0:]),
		Status: Status(b[8]),
		Flags:  Flags(b[9]),
		Value:  int64(binary.BigEndian.Uint64(b[10:])),
	}
	if dlen > 0 {
		r.Data = append([]byte(nil), b[22:]...)
	}
	return r, nil
}

// Encode serializes the hello payload.
func (h Hello) Encode() []byte {
	msg := []byte(h.Msg)
	b := make([]byte, 4+1+4+4+4+4+4+4+len(msg))
	binary.BigEndian.PutUint32(b[0:], Magic)
	b[4] = byte(h.Status)
	binary.BigEndian.PutUint32(b[5:], h.Identity)
	binary.BigEndian.PutUint32(b[9:], h.N)
	binary.BigEndian.PutUint32(b[13:], h.K)
	binary.BigEndian.PutUint32(b[17:], h.Shards)
	binary.BigEndian.PutUint32(b[21:], h.RetryAfterMillis)
	binary.BigEndian.PutUint32(b[25:], uint32(len(msg)))
	copy(b[29:], msg)
	return b
}

// ParseHello decodes a hello payload, checking the protocol magic.
func ParseHello(b []byte) (Hello, error) {
	if len(b) < 29 {
		return Hello{}, fmt.Errorf("wire: hello payload is %d bytes, want >= 29", len(b))
	}
	if m := binary.BigEndian.Uint32(b[0:]); m != Magic {
		return Hello{}, fmt.Errorf("wire: bad protocol magic %#x (want %#x) — not a kexserved endpoint, or an old protocol version?", m, Magic)
	}
	mlen := binary.BigEndian.Uint32(b[25:])
	if int(mlen) != len(b)-29 {
		return Hello{}, fmt.Errorf("wire: hello declares %d message bytes, has %d", mlen, len(b)-29)
	}
	return Hello{
		Status:           Status(b[4]),
		Identity:         binary.BigEndian.Uint32(b[5:]),
		N:                binary.BigEndian.Uint32(b[9:]),
		K:                binary.BigEndian.Uint32(b[13:]),
		Shards:           binary.BigEndian.Uint32(b[17:]),
		RetryAfterMillis: binary.BigEndian.Uint32(b[21:]),
		Msg:              string(b[29:]),
	}, nil
}

// WriteRequest frames and writes one request.
func WriteRequest(w io.Writer, r Request) error { return WriteFrame(w, r.Encode()) }

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader) (Request, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return Request{}, err
	}
	return ParseRequest(b)
}

// WriteResponse frames and writes one response.
func WriteResponse(w io.Writer, r Response) error { return WriteFrame(w, r.Encode()) }

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader) (Response, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return Response{}, err
	}
	return ParseResponse(b)
}

// WriteHello frames and writes one hello.
func WriteHello(w io.Writer, h Hello) error { return WriteFrame(w, h.Encode()) }

// ReadHello reads and decodes one hello frame.
func ReadHello(r io.Reader) (Hello, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return Hello{}, err
	}
	return ParseHello(b)
}
