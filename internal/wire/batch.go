// Batch frames are the kx04 extension of the protocol: request
// pipelining with multi-op framing.
//
// kx04 is a strict superset of kx03 negotiated in the Hello. The Hello
// frame layout (magic included) is unchanged — a kx03 client parses a
// kx04 server's Hello bit-for-bit — and the server advertises the
// extension by carrying the FeatureBatch token in the Hello's Msg
// field, which kx03 clients ignore on an OK hello. A client that saw
// the token may then pack up to MaxBatchOps operations into a single
// BatchRequest frame; one that didn't (or a stock kx03 client) keeps
// sending plain Request frames, which the server still accepts.
//
// Framing is mirrored: the server answers a plain Request frame with a
// plain Response frame and a BatchRequest frame with BatchResponse
// frames carrying exactly that batch's responses in order (split
// across several BatchResponse frames only when the encoded responses
// would exceed MaxFrame). A client therefore always knows the shape of
// the next response frame from the shape of what it sent, and the two
// shapes can never be confused on the wire anyway: a Request payload
// is exactly requestLen bytes while a BatchRequest payload is
// 5+requestLen·n bytes, and both batch payloads open with a marker
// byte checked on decode.
//
// Ordering and acknowledgement guarantees are per-operation and
// unchanged from kx03: operations apply in the order sent on the
// connection, every response carries its request's ID, and a mutation
// is acknowledged only at the configured durability point. What
// batching changes is the cost: the server drains a whole pipeline,
// funnels its WAL appends into one group-commit wait (one fsync can
// acknowledge the entire batch under -fsync always), and flushes all
// responses in one write.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// FeatureBatch is the capability token a kx04 server puts in the Msg
// field of an admission (StatusOK) Hello. Msg is a space-separated
// token list on OK hellos; kx03 clients ignore it, kx04 clients switch
// to batch framing when the token is present.
const FeatureBatch = "kx04"

// MaxBatchOps bounds the operations in one BatchRequest frame (and the
// responses in one BatchResponse frame). A peer announcing more is
// treated as corrupt, like an oversized frame.
const MaxBatchOps = 1024

// Batch payload markers. A marker byte opens every batch payload so a
// decoder never mistakes one for a single-op payload (defense in depth
// on top of the length discrimination above).
const (
	batchReqMarker  = 0xB4
	batchRespMarker = 0xB5
)

// SupportsBatch reports whether an admission hello advertises the kx04
// batch extension.
func (h Hello) SupportsBatch() bool {
	if h.Status != StatusOK {
		return false
	}
	for _, tok := range strings.Fields(h.Msg) {
		if tok == FeatureBatch {
			return true
		}
	}
	return false
}

// BatchRequest is a pipeline of operations in one frame.
type BatchRequest struct {
	Reqs []Request
}

// Encode serializes the batch payload: marker, count, then the fixed-
// width request encodings back to back.
func (b BatchRequest) Encode() []byte {
	out := make([]byte, 5, 5+len(b.Reqs)*requestLen)
	out[0] = batchReqMarker
	binary.BigEndian.PutUint32(out[1:], uint32(len(b.Reqs)))
	for _, r := range b.Reqs {
		out = append(out, r.Encode()...)
	}
	return out
}

// ParseBatchRequest decodes a batch request payload.
func ParseBatchRequest(b []byte) (BatchRequest, error) {
	if len(b) < 5 || b[0] != batchReqMarker {
		return BatchRequest{}, fmt.Errorf("wire: not a batch request payload")
	}
	n := binary.BigEndian.Uint32(b[1:])
	if n == 0 || n > MaxBatchOps {
		return BatchRequest{}, fmt.Errorf("wire: batch of %d ops outside [1,%d]", n, MaxBatchOps)
	}
	if int(n)*requestLen != len(b)-5 {
		return BatchRequest{}, fmt.Errorf("wire: batch declares %d ops (%d bytes), has %d bytes", n, int(n)*requestLen, len(b)-5)
	}
	reqs := make([]Request, n)
	for i := range reqs {
		r, err := ParseRequest(b[5+i*requestLen : 5+(i+1)*requestLen])
		if err != nil {
			return BatchRequest{}, err
		}
		reqs[i] = r
	}
	return BatchRequest{Reqs: reqs}, nil
}

// BatchResponse answers (part of) a BatchRequest: responses in request
// order, each length-prefixed because Data makes them variable-width.
type BatchResponse struct {
	Resps []Response
}

// Encode serializes the batch response payload.
func (b BatchResponse) Encode() []byte {
	out := []byte{batchRespMarker, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(out[1:], uint32(len(b.Resps)))
	for _, r := range b.Resps {
		enc := r.Encode()
		var ln [4]byte
		binary.BigEndian.PutUint32(ln[:], uint32(len(enc)))
		out = append(out, ln[:]...)
		out = append(out, enc...)
	}
	return out
}

// ParseBatchResponse decodes a batch response payload.
func ParseBatchResponse(b []byte) (BatchResponse, error) {
	if len(b) < 5 || b[0] != batchRespMarker {
		return BatchResponse{}, fmt.Errorf("wire: not a batch response payload")
	}
	n := binary.BigEndian.Uint32(b[1:])
	if n == 0 || n > MaxBatchOps {
		return BatchResponse{}, fmt.Errorf("wire: batch of %d responses outside [1,%d]", n, MaxBatchOps)
	}
	resps := make([]Response, 0, n)
	off := 5
	for i := uint32(0); i < n; i++ {
		if len(b)-off < 4 {
			return BatchResponse{}, fmt.Errorf("wire: batch response truncated at op %d", i)
		}
		ln := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if ln < 0 || len(b)-off < ln {
			return BatchResponse{}, fmt.Errorf("wire: batch response op %d declares %d bytes, has %d", i, ln, len(b)-off)
		}
		r, err := ParseResponse(b[off : off+ln])
		if err != nil {
			return BatchResponse{}, err
		}
		resps = append(resps, r)
		off += ln
	}
	if off != len(b) {
		return BatchResponse{}, fmt.Errorf("wire: batch response has %d trailing bytes", len(b)-off)
	}
	return BatchResponse{Resps: resps}, nil
}

// ParseAnyRequest decodes a request payload of either shape: a plain
// kx03 Request (batched false) or a kx04 BatchRequest (batched true).
// The shapes cannot collide — a plain request is exactly requestLen
// bytes, a batch is 5+requestLen·n — and the marker byte is checked
// besides.
func ParseAnyRequest(b []byte) (reqs []Request, batched bool, err error) {
	if len(b) == requestLen {
		r, err := ParseRequest(b)
		if err != nil {
			return nil, false, err
		}
		return []Request{r}, false, nil
	}
	br, err := ParseBatchRequest(b)
	if err != nil {
		return nil, false, err
	}
	return br.Reqs, true, nil
}

// ReadRequests reads one frame and decodes it as a plain Request or a
// BatchRequest, returning the operations in order.
func ReadRequests(r io.Reader) (reqs []Request, batched bool, err error) {
	b, err := ReadFrame(r)
	if err != nil {
		return nil, false, err
	}
	return ParseAnyRequest(b)
}

// WriteBatchRequest frames and writes one batch request.
func WriteBatchRequest(w io.Writer, b BatchRequest) error { return WriteFrame(w, b.Encode()) }

// ReadBatchResponse reads and decodes one batch response frame.
func ReadBatchResponse(r io.Reader) (BatchResponse, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return BatchResponse{}, err
	}
	return ParseBatchResponse(b)
}

// WriteBatchResponses frames and writes responses for one inbound
// batch, splitting into several BatchResponse frames only when the
// encoded responses would overflow MaxFrame (stats payloads can be
// large). Responses stay in order across the split; the client
// consumes them by count, not by frame.
func WriteBatchResponses(w io.Writer, resps []Response) error {
	enc := make([][]byte, len(resps))
	for i, r := range resps {
		enc[i] = r.Encode()
	}
	for len(enc) > 0 {
		n, size := 0, 5
		for n < len(enc) && n < MaxBatchOps {
			step := 4 + len(enc[n])
			if n > 0 && size+step > MaxFrame {
				break
			}
			size += step
			n++
		}
		out := make([]byte, 5, size)
		out[0] = batchRespMarker
		binary.BigEndian.PutUint32(out[1:], uint32(n))
		for _, e := range enc[:n] {
			var ln [4]byte
			binary.BigEndian.PutUint32(ln[:], uint32(len(e)))
			out = append(out, ln[:]...)
			out = append(out, e...)
		}
		if err := WriteFrame(w, out); err != nil {
			return err
		}
		enc = enc[n:]
	}
	return nil
}
