package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"
)

func objKinds() []Kind {
	return []Kind{
		KindCreate, KindRegGet, KindRegAdd, KindRegSet,
		KindMapGet, KindMapPut, KindMapCAS, KindMapDel,
		KindQEnq, KindQDeq, KindQLen, KindSnapUpdate, KindSnapScan,
	}
}

func TestObjRequestRoundTrip(t *testing.T) {
	for _, k := range objKinds() {
		r := Request{
			ID: 7, Kind: k, Shard: 3, Arg: -42, Session: 9, Seq: 11,
			Arg2: 1 << 40, Obj: "orders",
		}
		if k == KindMapGet || k == KindMapPut || k == KindMapCAS || k == KindMapDel {
			r.Key = "user:1234"
		}
		b, err := EncodeObjRequest(r)
		if err != nil {
			t.Fatalf("%v: encode: %v", k, err)
		}
		got, err := ParseObjRequest(b)
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("%v: round trip got %+v want %+v err %v", k, got, r, err)
		}
		// And through the frame dispatcher.
		f, err := ParseRequestFrame(b)
		if err != nil || f.Batched || f.Atomic || len(f.Reqs) != 1 || !reflect.DeepEqual(f.Reqs[0], r) {
			t.Fatalf("%v: frame dispatch: %+v err %v", k, f, err)
		}
	}
}

func TestObjBatchRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Kind: KindCreate, Shard: 0, Arg: 2, Session: 5, Seq: 1, Obj: "m"},
		{ID: 2, Kind: KindMapPut, Shard: 0, Arg: 10, Session: 5, Seq: 2, Obj: "m", Key: "k"},
		// Legacy kinds ride along in object frames with empty kx05 fields.
		{ID: 3, Kind: KindAdd, Shard: 1, Arg: 4, Session: 5, Seq: 3},
		{ID: 4, Kind: KindMapGet, Shard: 0, Obj: "m", Key: "k"},
	}
	for _, atomic := range []bool{false, true} {
		ob := ObjBatch{Reqs: reqs, Atomic: atomic}
		b, err := ob.Encode()
		if err != nil {
			t.Fatalf("atomic=%v: encode: %v", atomic, err)
		}
		got, err := ParseObjBatch(b)
		if err != nil || !reflect.DeepEqual(got, ob) {
			t.Fatalf("atomic=%v: round trip got %+v want %+v err %v", atomic, got, ob, err)
		}
		f, err := ParseRequestFrame(b)
		if err != nil || !f.Batched || f.Atomic != atomic || !reflect.DeepEqual(f.Reqs, reqs) {
			t.Fatalf("atomic=%v: frame dispatch: %+v err %v", atomic, f, err)
		}
	}
}

func TestObjEncodingRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		r    Request
	}{
		{"object kind without name", Request{Kind: KindRegGet}},
		{"name over cap", Request{Kind: KindRegGet, Obj: strings.Repeat("n", 65)}},
		{"key over cap", Request{Kind: KindMapGet, Obj: "m", Key: strings.Repeat("k", 513)}},
		{"legacy kind with name", Request{Kind: KindAdd, Obj: "x"}},
		{"legacy kind with key", Request{Kind: KindSet, Key: "x"}},
		{"legacy kind with arg2", Request{Kind: KindGet, Arg2: 1}},
	}
	for _, c := range cases {
		if _, err := EncodeObjRequest(c.r); err == nil {
			t.Errorf("%s: encode accepted", c.name)
		}
		if _, err := (ObjBatch{Reqs: []Request{c.r}}).Encode(); err == nil {
			t.Errorf("%s: batch encode accepted", c.name)
		}
	}
	if _, err := (ObjBatch{}).Encode(); err == nil {
		t.Error("empty batch encode accepted")
	}
	big := make([]Request, MaxAtomicOps+1)
	for i := range big {
		big[i] = Request{Kind: KindRegAdd, Obj: "r", Arg: 1}
	}
	if _, err := (ObjBatch{Reqs: big, Atomic: true}).Encode(); err == nil {
		t.Error("oversized atomic group accepted")
	}
	if _, err := (ObjBatch{Reqs: big}).Encode(); err != nil {
		t.Errorf("pipeline of %d ops rejected: %v", len(big), err)
	}
}

func TestObjParseRejectsGarbage(t *testing.T) {
	good, err := EncodeObjRequest(Request{Kind: KindRegSet, Obj: "r", Arg: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseObjRequest(append(good, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := ParseObjRequest(good[:len(good)-1]); err == nil {
		t.Error("truncated name accepted")
	}
	// Batch declaring more ops than it carries.
	ob, err := (ObjBatch{Reqs: []Request{{Kind: KindRegSet, Obj: "r"}}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	ob[2] = 2 // count 1 -> 2
	if _, err := ParseObjBatch(ob); err == nil {
		t.Error("overdeclared batch accepted")
	}
	if _, err := ParseRequestFrame([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Error("unknown marker accepted")
	}
	if _, err := ParseRequestFrame(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestSupportsObjects(t *testing.T) {
	h := Hello{Status: StatusOK, Msg: FeatureBatch + " " + FeatureObjects}
	if !h.SupportsBatch() || !h.SupportsObjects() {
		t.Fatalf("capability tokens not detected in %q", h.Msg)
	}
	if (Hello{Status: StatusOK, Msg: FeatureBatch}).SupportsObjects() {
		t.Error("kx04-only hello claims objects")
	}
	if (Hello{Status: StatusBusy, Msg: FeatureObjects}).SupportsObjects() {
		t.Error("non-OK hello claims objects")
	}
}

func TestSlotsRoundTrip(t *testing.T) {
	slots := []int64{0, -1, 1 << 50, 42}
	got, err := DecodeSlots(EncodeSlots(slots))
	if err != nil || !reflect.DeepEqual(got, slots) {
		t.Fatalf("slots round trip: %v err %v", got, err)
	}
	if _, err := DecodeSlots(make([]byte, 7)); err == nil {
		t.Error("ragged slots payload accepted")
	}
}

// TestLegacyEncodingGolden pins the kx03/kx04 register exchange byte
// for byte: a kx04 client talking to a kx05 server must produce and
// consume frames identical to what a kx04 server exchanged. If this
// test breaks, the object extension leaked into the legacy layout.
func TestLegacyEncodingGolden(t *testing.T) {
	req := Request{ID: 0x0102030405060708, Kind: KindAdd, Shard: 7, Arg: -2,
		Session: 0xAABB, Seq: 9}
	const wantReq = "0102030405060708" + "03" + "00000007" +
		"fffffffffffffffe" + "000000000000aabb" + "0000000000000009"
	if got := hex.EncodeToString(req.Encode()); got != wantReq {
		t.Fatalf("plain request drifted:\n got  %s\n want %s", got, wantReq)
	}
	// The kx05 fields must not leak into the legacy layout.
	leaky := req
	leaky.Obj, leaky.Key, leaky.Arg2 = "x", "y", 3
	if !bytes.Equal(leaky.Encode(), req.Encode()) {
		t.Fatal("kx05 fields leaked into the plain request encoding")
	}

	resp := Response{ID: 0x0102030405060708, Status: StatusOK,
		Flags: FlagDuplicate, Value: 40}
	const wantResp = "0102030405060708" + "00" + "01" +
		"0000000000000028" + "00000000"
	if got := hex.EncodeToString(resp.Encode()); got != wantResp {
		t.Fatalf("response drifted:\n got  %s\n want %s", got, wantResp)
	}

	batch := BatchRequest{Reqs: []Request{req, req}}
	const wantBatch = "b4" + "00000002" + wantReq + wantReq
	if got := hex.EncodeToString(batch.Encode()); got != wantBatch {
		t.Fatalf("batch request drifted:\n got  %s\n want %s", got, wantBatch)
	}

	// A kx05 server's admission hello parses identically for a kx03
	// client (which ignores Msg) and advertises both extensions.
	h := Hello{Status: StatusOK, Identity: 2, N: 8, K: 2, Shards: 4,
		Msg: FeatureBatch + " " + FeatureObjects}
	got, err := ParseHello(h.Encode())
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v err %v", got, err)
	}
	if !got.SupportsBatch() || !got.SupportsObjects() {
		t.Fatal("hello lost capability tokens")
	}
}

// FuzzObjectDecode hammers the kx05 frame dispatcher: no input may
// panic, and anything that parses must re-encode to an equivalent
// frame (encode/decode form a closed loop).
func FuzzObjectDecode(f *testing.F) {
	for _, k := range objKinds() {
		r := Request{ID: 1, Kind: k, Shard: 2, Arg: 3, Session: 4, Seq: 5,
			Arg2: 6, Obj: "obj"}
		if k == KindMapGet || k == KindMapPut || k == KindMapCAS || k == KindMapDel {
			r.Key = "key"
		}
		b, err := EncodeObjRequest(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if ob, err := (ObjBatch{Reqs: []Request{r}}).Encode(); err == nil {
			f.Add(ob)
		}
		if ob, err := (ObjBatch{Reqs: []Request{r}, Atomic: true}).Encode(); err == nil {
			f.Add(ob)
		}
	}
	f.Add(Request{ID: 1, Kind: KindAdd, Arg: 1}.Encode())
	f.Add(BatchRequest{Reqs: []Request{{ID: 1, Kind: KindGet}}}.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, err := ParseRequestFrame(b)
		if err != nil {
			return
		}
		var reenc []byte
		switch {
		case frame.Batched && len(b) > 0 && b[0] == batchReqMarker:
			reenc = BatchRequest{Reqs: frame.Reqs}.Encode()
		case frame.Batched:
			reenc, err = ObjBatch{Reqs: frame.Reqs, Atomic: frame.Atomic}.Encode()
		case len(b) == requestLen:
			reenc = frame.Reqs[0].Encode()
		default:
			reenc, err = EncodeObjRequest(frame.Reqs[0])
		}
		if err != nil {
			t.Fatalf("parsed frame failed to re-encode: %v", err)
		}
		got, err := ParseRequestFrame(reenc)
		if err != nil || !reflect.DeepEqual(got, frame) {
			t.Fatalf("re-encode not closed: %+v vs %+v (err %v)", got, frame, err)
		}
	})
}
