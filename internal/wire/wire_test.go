package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"sort"
	"strings"
	"testing"

	"kexclusion/internal/obs"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 0, Kind: KindPing},
		{ID: 1, Kind: KindGet, Shard: 3},
		{ID: 42, Kind: KindAdd, Shard: 7, Arg: -5},
		{ID: 1<<64 - 1, Kind: KindSet, Shard: 1<<32 - 1, Arg: -1 << 62},
		{ID: 9, Kind: KindStats},
		{ID: 10, Kind: KindAdd, Shard: 2, Arg: 1, Session: 0xfeedface, Seq: 17},
		{ID: 11, Kind: KindSet, Arg: 5, Session: 1<<64 - 1, Seq: 1<<64 - 1},
	}
	var buf bytes.Buffer
	for _, want := range cases {
		buf.Reset()
		if err := WriteRequest(&buf, want); err != nil {
			t.Fatalf("write %+v: %v", want, err)
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Status: StatusOK, Value: 99},
		{ID: 2, Status: StatusBadShard, Value: 0, Data: []byte("shard 9 out of range")},
		{ID: 3, Status: StatusOK, Data: []byte(`{"n":4}`)},
		{ID: 4, Status: StatusDraining, Value: -7},
		{ID: 5, Status: StatusOK, Flags: FlagDuplicate, Value: 12},
	}
	var buf bytes.Buffer
	for _, want := range cases {
		buf.Reset()
		if err := WriteResponse(&buf, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got.ID != want.ID || got.Status != want.Status || got.Flags != want.Flags || got.Value != want.Value || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		{Status: StatusOK, Identity: 3, N: 64, K: 8, Shards: 16},
		{Status: StatusBusy, Msg: "all 64 identities leased"},
		{Status: StatusBusy, RetryAfterMillis: 750, Msg: "all leased; come back"},
		{Status: StatusOK, Identity: 1, N: 4, K: 2, Shards: 1, RetryAfterMillis: 1 << 31},
	}
	var buf bytes.Buffer
	for _, want := range cases {
		buf.Reset()
		if err := WriteHello(&buf, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadHello(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestHelloRejectsBadMagic(t *testing.T) {
	h := Hello{Status: StatusOK}
	b := h.Encode()
	binary.BigEndian.PutUint32(b[0:], 0xdeadbeef)
	if _, err := ParseHello(b); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

func TestFrameLimits(t *testing.T) {
	// Oversized announcement is rejected before allocation, with the
	// typed sentinel so a server can answer before hanging up.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame announcement: got %v, want ErrFrameTooLarge", err)
	}
	// Oversized write is rejected.
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame write not rejected")
	}
	// Truncated payload is an error, not a short read.
	var buf bytes.Buffer
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame not rejected")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseRequest(make([]byte, 5)); err == nil {
		t.Error("short request accepted")
	}
	if _, err := ParseResponse(make([]byte, 5)); err == nil {
		t.Error("short response accepted")
	}
	// Response with a data length that disagrees with the payload.
	r := Response{ID: 1, Data: []byte("abc")}
	b := r.Encode()
	binary.BigEndian.PutUint32(b[18:], 99)
	if _, err := ParseResponse(b); err == nil {
		t.Error("inconsistent data length accepted")
	}
}

func TestErrorModel(t *testing.T) {
	if err := (Response{Status: StatusOK}).Err(); err != nil {
		t.Fatalf("OK response produced error %v", err)
	}
	err := (Response{Status: StatusBusy, Data: []byte("park elsewhere")}).Err()
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("want *wire.Error, got %T", err)
	}
	if we.Status != StatusBusy || !strings.Contains(we.Error(), "busy") || !strings.Contains(we.Error(), "park elsewhere") {
		t.Errorf("bad error: %v", we)
	}
	// A busy response's Value carries the Retry-After hint; Err lifts it.
	err = (Response{Status: StatusBusy, Value: 250, Data: []byte("shed")}).Err()
	if !errors.As(err, &we) || we.RetryAfterMillis != 250 {
		t.Errorf("busy hint not lifted: %v", err)
	}
	// Non-busy statuses never grow a hint, whatever Value holds.
	err = (Response{Status: StatusDraining, Value: 99}).Err()
	if !errors.As(err, &we) || we.RetryAfterMillis != 0 {
		t.Errorf("non-busy error grew a hint: %v", err)
	}
	// Every named status has a stable string (no fallthrough to the
	// numeric form).
	for _, s := range []Status{StatusOK, StatusBusy, StatusBadRequest, StatusBadShard, StatusDraining, StatusInternal, StatusTimeout, StatusNotPrimary} {
		if strings.HasPrefix(s.String(), "status(") {
			t.Errorf("status %d has no name", s)
		}
	}
	for _, k := range []Kind{KindPing, KindGet, KindAdd, KindSet, KindStats} {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	m := obs.New()
	m.Acquired(5)
	m.Released()
	s := Stats{
		N: 8, K: 2, Shards: 4, Impl: "fastpath",
		ActiveSessions: 3, Admitted: 10, Rejected: 2, Reclaimed: 7,
		IdleReclaims: 4, OpDeadlines: 6,
		AppliedDupes: 5, RecoveredOps: 11, RestartCount: 1,
		AdmitQueue: 12, InflightOps: 13, ShedAdmissions: 14, ShedOps: 15,
		NotPrimaryRedirects: 16, QuorumAcks: 17, ReplicaLagLSN: 18,
		LeaseHeld: true, LeaseExpirations: 19, LeaseDemotions: 20,
		Phase:    "degraded",
		Draining: true,
		PerShard: []obs.Snapshot{m.Snapshot()},
	}
	got, err := ParseStats(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 8 || got.Impl != "fastpath" || !got.Draining || len(got.PerShard) != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.IdleReclaims != 4 || got.OpDeadlines != 6 {
		t.Errorf("watchdog counters lost: %+v", got)
	}
	if got.AppliedDupes != 5 || got.RecoveredOps != 11 || got.RestartCount != 1 {
		t.Errorf("durability counters lost: %+v", got)
	}
	if got.AdmitQueue != 12 || got.InflightOps != 13 || got.ShedAdmissions != 14 || got.ShedOps != 15 || got.Phase != "degraded" {
		t.Errorf("lifecycle/shed fields lost: %+v", got)
	}
	if got.NotPrimaryRedirects != 16 || got.QuorumAcks != 17 || got.ReplicaLagLSN != 18 {
		t.Errorf("cluster counters lost: %+v", got)
	}
	if !got.LeaseHeld || got.LeaseExpirations != 19 || got.LeaseDemotions != 20 {
		t.Errorf("lease fields lost: %+v", got)
	}
	for _, key := range []string{"idle_reclaims", "op_deadlines", "applied_dupes", "recovered_ops", "restart_count", "admit_queue", "inflight_ops", "phase", "shed_admissions", "shed_ops", "notprimary_redirects", "quorum_acks", "replica_lag_lsn", "lease_held", "lease_expirations", "lease_demotions"} {
		if !bytes.Contains(s.JSON(), []byte(`"`+key+`"`)) {
			t.Errorf("stats JSON missing %q", key)
		}
	}
	if got.PerShard[0].Acquires != 1 || got.PerShard[0].Releases != 1 {
		t.Errorf("snapshot not preserved: %+v", got.PerShard[0])
	}
	if _, err := ParseStats([]byte("{")); err == nil {
		t.Error("bad stats payload accepted")
	}
}

// TestStatsJSONGolden pins the stats schema byte-for-byte: keys are
// alphabetically sorted (the struct declares fields in key order), so
// tooling that diffs or greps dumps sees a stable layout. Adding a
// field means updating this golden string — deliberately.
func TestStatsJSONGolden(t *testing.T) {
	s := Stats{
		ActiveSessions: 1, AdmitQueue: 10, Admitted: 2, AppliedDupes: 3,
		BatchAtomic: 19, Draining: true, IdleReclaims: 4, Impl: "fastpath",
		InflightOps: 11, K: 2, LeaseDemotions: 18, LeaseExpirations: 17,
		LeaseHeld: true, N: 8, NotPrimaryRedirects: 14,
		ObjMapOps: 20, ObjQueueOps: 21, ObjRegisterOps: 22, ObjSnapshotOps: 23,
		OpDeadlines: 5, PerShard: nil,
		Phase: "running", QuorumAcks: 15, ReadFastpath: 24, Reclaimed: 6,
		RecoveredOps: 7, Rejected: 8, ReplicaLagLSN: 16, RestartCount: 9,
		Shards: 4, ShedAdmissions: 12, ShedOps: 13,
	}
	const want = `{"active_sessions":1,"admit_queue":10,"admitted":2,"applied_dupes":3,` +
		`"batch_atomic":19,` +
		`"draining":true,"idle_reclaims":4,"impl":"fastpath","inflight_ops":11,` +
		`"k":2,"lease_demotions":18,"lease_expirations":17,"lease_held":true,` +
		`"n":8,"notprimary_redirects":14,` +
		`"obj_map_ops":20,"obj_queue_ops":21,"obj_register_ops":22,"obj_snapshot_ops":23,` +
		`"op_deadlines":5,"per_shard":null,` +
		`"phase":"running","quorum_acks":15,"read_fastpath":24,"reclaimed":6,` +
		`"recovered_ops":7,` +
		`"rejected":8,"replica_lag_lsn":16,` +
		`"restart_count":9,"shards":4,"shed_admissions":12,"shed_ops":13}`
	if got := string(s.JSON()); got != want {
		t.Fatalf("stats JSON drifted from golden schema:\n got  %s\n want %s", got, want)
	}
	// Belt and braces: top-level keys must appear in sorted order.
	var keys []string
	for _, part := range strings.Split(want[1:len(want)-1], ",") {
		keys = append(keys, strings.SplitN(part, ":", 2)[0])
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("golden keys are not sorted: %v", keys)
	}
}
