package core

import "kexclusion/internal/obs"

// Tree is Theorem 2's (N,k)-exclusion: an arbitration tree of (2k,k)
// building blocks over ceil(N/k) leaf groups. A process acquires the
// blocks on its leaf-to-root path, so entry cost grows with
// log2(N/k) instead of N-k.
type Tree struct {
	paths [][]*figTwo // per leaf group, leaf-to-root
	m     *obs.Metrics
	n, k  int
}

var _ KExclusion = (*Tree)(nil)

// NewTree builds Theorem 2's arbitration tree.
func NewTree(n, k int, opts ...Option) *Tree {
	validate(n, k)
	o := buildOptions(opts)
	groups := (n + k - 1) / k
	t := &Tree{paths: make([][]*figTwo, groups), m: o.metrics, n: n, k: k}
	if groups > 1 {
		buildTreeLevel(t.paths, 0, groups, k, o)
	}
	return t
}

// buildTreeLevel constructs the subtree over leaf groups [lo,hi),
// appending each node's (2k,k) chain to the paths of the groups it
// covers, in leaf-to-root order.
func buildTreeLevel(paths [][]*figTwo, lo, hi, k int, o options) {
	if hi-lo <= 1 {
		return
	}
	mid := lo + (hi-lo+1)/2
	buildTreeLevel(paths, lo, mid, k, o)
	buildTreeLevel(paths, mid, hi, k, o)
	node := newChain(2*k, k, o)
	for g := lo; g < hi; g++ {
		paths[g] = append(paths[g], node)
	}
}

func (t *Tree) group(p int) int {
	g := p / t.k
	if g >= len(t.paths) {
		g = len(t.paths) - 1
	}
	return g
}

// Acquire implements KExclusion.
func (t *Tree) Acquire(p int) {
	checkPID(p, t.n)
	start := acqStart(t.m)
	for _, node := range t.paths[t.group(p)] {
		node.acquire(p)
	}
	acqDone(t.m, start)
}

// Release implements KExclusion.
func (t *Tree) Release(p int) {
	checkPID(p, t.n)
	path := t.paths[t.group(p)]
	for i := len(path) - 1; i >= 0; i-- {
		path[i].release(p)
	}
	t.m.Released()
}

// K implements KExclusion.
func (t *Tree) K() int { return t.k }

// N implements KExclusion.
func (t *Tree) N() int { return t.n }

// FastPath is Theorem 3's (N,k)-exclusion (Figure 4): when contention
// stays at or below k, an acquisition touches only a bounded-decrement
// counter and one (2k,k) building block; the arbitration-tree slow path
// is paid only when contention exceeds k.
type FastPath struct {
	x     padInt64
	slow  *Tree
	block *figTwo
	// tookSlow[p] records Figure 4's private "slow" flag: which path
	// process p's current acquisition took. Only p accesses its entry;
	// padding prevents false sharing.
	tookSlow []padInt32
	m        *obs.Metrics
	n, k     int
}

var _ KExclusion = (*FastPath)(nil)

// NewFastPath builds Theorem 3's fast-path composition with a tree slow
// path.
func NewFastPath(n, k int, opts ...Option) *FastPath {
	validate(n, k)
	o := buildOptions(opts)
	f := &FastPath{
		n:        n,
		k:        k,
		m:        o.metrics,
		block:    newChain(2*k, k, o),
		tookSlow: make([]padInt32, n),
	}
	f.x.v.Store(int64(k))
	if n > 2*k {
		// The slow-path tree shares the sink but not the top-level
		// accounting: only the composition's own Acquire records the
		// acquisition, so sink totals count end-to-end acquisitions.
		f.slow = newTreeUncounted(n, k, o)
	}
	return f
}

// newTreeUncounted builds a Tree whose figTwo layers feed spin counters
// into o's sink but whose own Acquire/Release record nothing (t.m stays
// nil) — for use as an inner layer of a composition that does its own
// top-level accounting.
func newTreeUncounted(n, k int, o options) *Tree {
	groups := (n + k - 1) / k
	t := &Tree{paths: make([][]*figTwo, groups), n: n, k: k}
	if groups > 1 {
		buildTreeLevel(t.paths, 0, groups, k, o)
	}
	return t
}

// Acquire implements KExclusion.
func (f *FastPath) Acquire(p int) {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if f.slow == nil {
		f.block.acquire(p)
		f.m.Path(false)
		acqDone(f.m, start)
		return
	}
	slow := decIfPositive(&f.x.v, f.m) == 0 // statements 1-3
	if slow {
		f.slow.Acquire(p) // statement 4
	}
	f.tookSlow[p].v.Store(boolToInt32(slow))
	f.block.acquire(p) // statement 5
	f.m.Path(slow)
	acqDone(f.m, start)
}

// Release implements KExclusion.
func (f *FastPath) Release(p int) {
	checkPID(p, f.n)
	if f.slow == nil {
		f.block.release(p)
		f.m.Released()
		return
	}
	f.block.release(p) // statement 6
	if f.tookSlow[p].v.Load() != 0 {
		f.slow.Release(p) // statement 8
	} else {
		f.x.v.Add(1) // statement 9
	}
	f.m.Released()
}

// K implements KExclusion.
func (f *FastPath) K() int { return f.k }

// N implements KExclusion.
func (f *FastPath) N() int { return f.n }

func boolToInt32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Graceful is Theorem 4's (N,k)-exclusion (Figure 3(b)): fast paths
// nested recursively, so an acquisition at contention c pays for about
// ceil(c/k) counter-plus-block levels — throughput degrades linearly
// with contention instead of stepping when it first exceeds k.
type Graceful struct {
	levels []*gracefulLevel
	base   *figTwo // innermost (2k,k) block
	depth  []padInt32
	m      *obs.Metrics
	n, k   int
}

type gracefulLevel struct {
	x     padInt64
	block *figTwo
}

var _ KExclusion = (*Graceful)(nil)

// NewGraceful builds Theorem 4's nested fast paths.
func NewGraceful(n, k int, opts ...Option) *Graceful {
	validate(n, k)
	o := buildOptions(opts)
	g := &Graceful{
		base:  newChain(2*k, k, o),
		depth: make([]padInt32, n),
		m:     o.metrics,
		n:     n,
		k:     k,
	}
	for count := n; count > 2*k; count -= k {
		lvl := &gracefulLevel{block: newChain(2*k, k, o)}
		lvl.x.v.Store(int64(k))
		g.levels = append(g.levels, lvl)
	}
	return g
}

// Acquire implements KExclusion.
func (g *Graceful) Acquire(p int) {
	checkPID(p, g.n)
	start := acqStart(g.m)
	// Descend until a level grants a fast slot (statement 2 at each
	// nesting level of Figure 3(b)).
	d := 0
	for d < len(g.levels) && decIfPositive(&g.levels[d].x.v, g.m) == 0 {
		d++
	}
	g.depth[p].v.Store(int32(d))
	descended := d
	if d == len(g.levels) {
		g.base.acquire(p)
		d = len(g.levels) - 1
	}
	// Climb back out, acquiring each level's building block.
	for i := d; i >= 0; i-- {
		g.levels[i].block.acquire(p)
	}
	// A fast take is one that got the outermost level's counter slot
	// (or the degenerate no-level shape); deeper descents pay extra
	// levels, the graceful analogue of the slow path.
	g.m.Path(descended != 0)
	acqDone(g.m, start)
}

// Release implements KExclusion.
func (g *Graceful) Release(p int) {
	checkPID(p, g.n)
	d := int(g.depth[p].v.Load())
	last := d
	if last >= len(g.levels) {
		last = len(g.levels) - 1
	}
	for i := 0; i <= last; i++ {
		g.levels[i].block.release(p)
	}
	if d == len(g.levels) {
		g.base.release(p)
	} else {
		g.levels[d].x.v.Add(1)
	}
	g.m.Released()
}

// K implements KExclusion.
func (g *Graceful) K() int { return g.k }

// N implements KExclusion.
func (g *Graceful) N() int { return g.n }
