package core

import (
	"context"
	"runtime"

	"kexclusion/internal/obs"
)

// This file adds bounded withdrawal to every resilient algorithm in the
// package, in the spirit of the abortable-mutual-exclusion line of work
// (Jayanti's and Giakkoupis/Woelfel's abortable locks): a process whose
// context expires while it is busy-waiting in an entry section may give
// up, and giving up is itself a bounded-step operation that restores the
// process's spin slot and queue state, so the object stays usable and no
// capacity is lost.
//
// The protocols make this cheap: every unbounded wait in the package is
// a busy-wait on a condition, and everything else in an entry section is
// bounded. Withdrawal therefore only ever starts from inside a spin
// loop, and the undo is the exact inverse of the bookkeeping the entry
// section did on the way in — re-increment the slot counter whose
// decrement registered the process as a waiter, and back out of any
// inner layers already acquired by running their ordinary (bounded) exit
// sections. Crucially, the algorithms already tolerate the one state a
// withdrawer can leave behind — a stale spin-word registration in Q —
// because the same state arises in normal operation after a waiter is
// woken: releasers may signal a stale registration spuriously, and both
// Figure 2 (unconditional overwrite) and Figure 6 (the R[]-guarded word
// recycling) are built to absorb that.
//
// A withdrawal is not a failure: it costs no slot, and it is counted in
// the shared metrics sink as an abort rather than a crash charge.

// Abortable is a KExclusion whose entry section supports bounded
// withdrawal. All the paper's algorithms in this package implement it;
// the MCS comparator — where abandoning a queue node would wedge every
// successor — deliberately does not.
type Abortable interface {
	KExclusion
	// AcquireCtx blocks process p until it holds one of the K slots or
	// ctx is done, whichever comes first. A nil return means p holds a
	// slot and must Release it; otherwise p has withdrawn from the
	// entry section — the object is untouched, no slot is consumed, and
	// the ctx error is returned. Cancellation is only observed while
	// waiting: once a slot is granted the acquisition succeeds even if
	// ctx has expired, so callers must always Release on nil error.
	AcquireCtx(ctx context.Context, p int) error
	// TryAcquire acquires a slot only if that requires no waiting,
	// reporting success. Equivalent to AcquireCtx with an
	// already-expired context.
	TryAcquire(p int) bool
}

// closedDone is the pre-expired done channel behind TryAcquire.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// spinUntilCtx is spinUntil with withdrawal: it polls cond until true
// (returning true) or done is closed (returning false). cond is always
// polled before done is consulted, so a waiter whose condition is
// already satisfied wins over a simultaneous cancellation, and
// TryAcquire-style calls (done already closed) still observe an
// immediately-true condition.
func spinUntilCtx(budget int, m *obs.Metrics, done <-chan struct{}, cond func() bool) bool {
	var polls, yields int64
	for i := 0; ; i++ {
		polls++
		if cond() {
			m.Spun(polls, yields)
			return true
		}
		select {
		case <-done:
			m.Spun(polls, yields)
			return false
		default:
		}
		if i >= budget {
			yields++
			runtime.Gosched()
			i = 0
		}
	}
}

// abortErr converts a withdrawal into the caller-visible error, charging
// the abort counter. ctx is done whenever this is reached, so Err() is
// non-nil; context.Canceled covers the TryAcquire path, where no real
// context exists.
func abortErr(m *obs.Metrics, ctx context.Context) error {
	m.Aborted()
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// ---- Figure 2 chain (Inductive, Tree, FastPath, Graceful) ----

// acquireCtx is figTwo.acquire with withdrawal. On abort it undoes this
// layer's registration — re-incrementing X to cancel the waiter
// decrement and clearing Q if it still holds p's registration — and
// backs out of the inner layers via their normal exit sections, in the
// same order release uses.
func (f *figTwo) acquireCtx(p int, done <-chan struct{}) bool {
	if f.inner != nil && !f.inner.acquireCtx(p, done) {
		return false
	}
	if f.x.v.Add(-1) <= -1 { // no slot free: p becomes the layer's waiter
		withdraw := func() {
			f.x.v.Add(1)
			f.q.v.CompareAndSwap(int64(p), qBottom)
			if f.inner != nil {
				f.inner.release(p)
			}
		}
		select {
		case <-done: // withdraw before registering at all
			withdraw()
			return false
		default:
		}
		f.q.v.Store(int64(p))
		if f.x.v.Load() < 0 {
			if !spinUntilCtx(f.spin, f.m, done, func() bool { return f.q.v.Load() != int64(p) }) {
				withdraw()
				return false
			}
		}
	}
	return true
}

// acquireCtxPath walks p's leaf-to-root path with withdrawal, backing
// out of already-acquired nodes on abort.
func (t *Tree) acquireCtxPath(p int, done <-chan struct{}) bool {
	path := t.paths[t.group(p)]
	for i, node := range path {
		if !node.acquireCtx(p, done) {
			for j := i - 1; j >= 0; j-- {
				path[j].release(p)
			}
			return false
		}
	}
	return true
}

var _ Abortable = (*Inductive)(nil)

// AcquireCtx implements Abortable.
func (i *Inductive) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, i.n)
	start := acqStart(i.m)
	if i.chain != nil && !i.chain.acquireCtx(p, ctx.Done()) {
		return abortErr(i.m, ctx)
	}
	acqDone(i.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (i *Inductive) TryAcquire(p int) bool {
	checkPID(p, i.n)
	start := acqStart(i.m)
	if i.chain != nil && !i.chain.acquireCtx(p, closedDone) {
		i.m.Aborted()
		return false
	}
	acqDone(i.m, start)
	return true
}

var _ Abortable = (*Tree)(nil)

// AcquireCtx implements Abortable.
func (t *Tree) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, t.n)
	start := acqStart(t.m)
	if !t.acquireCtxPath(p, ctx.Done()) {
		return abortErr(t.m, ctx)
	}
	acqDone(t.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (t *Tree) TryAcquire(p int) bool {
	checkPID(p, t.n)
	start := acqStart(t.m)
	if !t.acquireCtxPath(p, closedDone) {
		t.m.Aborted()
		return false
	}
	acqDone(t.m, start)
	return true
}

var _ Abortable = (*FastPath)(nil)

// acquireCtxInner is the shared withdrawal-aware body of AcquireCtx and
// TryAcquire. On abort it returns the fast-path counter slot (if one was
// taken) or backs out of the slow-path tree, so no capacity leaks.
func (f *FastPath) acquireCtxInner(p int, done <-chan struct{}) bool {
	if f.slow == nil {
		if !f.block.acquireCtx(p, done) {
			return false
		}
		f.m.Path(false)
		return true
	}
	slow := decIfPositive(&f.x.v, f.m) == 0
	if slow && !f.slow.acquireCtxPath(p, done) {
		return false // the counter granted nothing, so nothing to undo
	}
	f.tookSlow[p].v.Store(boolToInt32(slow))
	if !f.block.acquireCtx(p, done) {
		if slow {
			f.slow.Release(p)
		} else {
			f.x.v.Add(1)
		}
		return false
	}
	f.m.Path(slow)
	return true
}

// AcquireCtx implements Abortable.
func (f *FastPath) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if !f.acquireCtxInner(p, ctx.Done()) {
		return abortErr(f.m, ctx)
	}
	acqDone(f.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (f *FastPath) TryAcquire(p int) bool {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if !f.acquireCtxInner(p, closedDone) {
		f.m.Aborted()
		return false
	}
	acqDone(f.m, start)
	return true
}

var _ Abortable = (*Graceful)(nil)

// acquireCtxInner descends the nested fast paths exactly like Acquire
// (the descent itself never waits), then climbs the building blocks with
// withdrawal, releasing whatever the climb already acquired on abort.
func (g *Graceful) acquireCtxInner(p int, done <-chan struct{}) bool {
	d := 0
	for d < len(g.levels) && decIfPositive(&g.levels[d].x.v, g.m) == 0 {
		d++
	}
	g.depth[p].v.Store(int32(d))
	descended := d
	usedBase := d == len(g.levels)
	if usedBase {
		if !g.base.acquireCtx(p, done) {
			return false // no level counter was taken, nothing to undo
		}
		d = len(g.levels) - 1
	}
	for i := d; i >= 0; i-- {
		if !g.levels[i].block.acquireCtx(p, done) {
			for j := i + 1; j <= d; j++ {
				g.levels[j].block.release(p)
			}
			if usedBase {
				g.base.release(p)
			} else {
				g.levels[descended].x.v.Add(1)
			}
			return false
		}
	}
	g.m.Path(descended != 0)
	return true
}

// AcquireCtx implements Abortable.
func (g *Graceful) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, g.n)
	start := acqStart(g.m)
	if !g.acquireCtxInner(p, ctx.Done()) {
		return abortErr(g.m, ctx)
	}
	acqDone(g.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (g *Graceful) TryAcquire(p int) bool {
	checkPID(p, g.n)
	start := acqStart(g.m)
	if !g.acquireCtxInner(p, closedDone) {
		g.m.Aborted()
		return false
	}
	acqDone(g.m, start)
	return true
}

// ---- Figure 6 chain (LocalSpin, LocalSpinFastPath) ----

// acquireCtxWith is figSix.acquireWith with withdrawal. An abort
// re-increments X to cancel the waiter decrement; the stale registration
// it may leave in Q is the same state a woken waiter leaves behind, and
// the R[] discipline (statement 15 still runs on the way out) keeps the
// word-recycling bookkeeping exact.
func (f *figSix) acquireCtxWith(p int, st *figSixState, done <-chan struct{}) bool {
	if old := f.x.v.Add(-1) + 1; old <= 0 { // statement 2
		select {
		case <-done: // withdraw before registering a spin word
			f.x.v.Add(1)
			return false
		default:
		}
		next := (st.last + 1) % f.nloc       // statement 3
		for f.r[p*f.nloc+next].Load() != 0 { // statements 4-5 (local reads)
			next = (next + 1) % f.nloc
		}
		f.p[p*f.nloc+next].v.Store(0) // statement 6 (own word)
		u := f.q.v.Load()             // statement 7
		f.r[u].Add(1)                 // statement 8
		if f.q.v.Load() == u {        // statement 9
			f.p[u].v.Store(1) // statement 10: release current waiter
		}
		granted := true
		if f.q.v.CompareAndSwap(u, f.pack(p, next)) { // statement 11
			st.last = next        // statement 12
			if f.x.v.Load() < 0 { // statement 13
				w := &f.p[p*f.nloc+next].v // statement 14: spin on own line
				granted = spinUntilCtx(f.spin, f.m, done, func() bool { return w.Load() != 0 })
			}
		}
		f.r[u].Add(-1) // statement 15
		if !granted {
			f.x.v.Add(1) // withdraw: cancel the waiter decrement
			return false
		}
	}
	return true
}

// acquireCtx walks the chain with withdrawal, backing out of
// already-acquired layers (their ordinary bounded exits) on abort.
func (c *figSixChain) acquireCtx(p int, done <-chan struct{}) bool {
	for i, layer := range c.layers {
		if !layer.acquireCtxWith(p, &c.state[i*c.nIDs+p], done) {
			for j := i - 1; j >= 0; j-- {
				c.layers[j].releaseWith(p)
			}
			return false
		}
	}
	return true
}

var _ Abortable = (*LocalSpin)(nil)

// AcquireCtx implements Abortable.
func (l *LocalSpin) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, l.n)
	start := acqStart(l.m)
	if !l.chain.acquireCtx(p, ctx.Done()) {
		return abortErr(l.m, ctx)
	}
	acqDone(l.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (l *LocalSpin) TryAcquire(p int) bool {
	checkPID(p, l.n)
	start := acqStart(l.m)
	if !l.chain.acquireCtx(p, closedDone) {
		l.m.Aborted()
		return false
	}
	acqDone(l.m, start)
	return true
}

var _ Abortable = (*LocalSpinFastPath)(nil)

// acquireCtxInner mirrors FastPath.acquireCtxInner over Figure 6
// building blocks.
func (f *LocalSpinFastPath) acquireCtxInner(p int, done <-chan struct{}) bool {
	if f.slowTree == nil {
		if !f.block.acquireCtx(p, done) {
			return false
		}
		f.m.Path(false)
		return true
	}
	slow := decIfPositive(&f.x.v, f.m) == 0
	if slow {
		path := f.slowTree[f.group(p)]
		for i, node := range path {
			if !node.acquireCtx(p, done) {
				for j := i - 1; j >= 0; j-- {
					path[j].release(p)
				}
				return false
			}
		}
	}
	f.tookSlow[p].v.Store(boolToInt32(slow))
	if !f.block.acquireCtx(p, done) {
		if slow {
			path := f.slowTree[f.group(p)]
			for i := len(path) - 1; i >= 0; i-- {
				path[i].release(p)
			}
		} else {
			f.x.v.Add(1)
		}
		return false
	}
	f.m.Path(slow)
	return true
}

// AcquireCtx implements Abortable.
func (f *LocalSpinFastPath) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if !f.acquireCtxInner(p, ctx.Done()) {
		return abortErr(f.m, ctx)
	}
	acqDone(f.m, start)
	return nil
}

// TryAcquire implements Abortable.
func (f *LocalSpinFastPath) TryAcquire(p int) bool {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if !f.acquireCtxInner(p, closedDone) {
		f.m.Aborted()
		return false
	}
	acqDone(f.m, start)
	return true
}

// ---- Baselines ----

var _ Abortable = (*Counting)(nil)

// AcquireCtx implements Abortable. The counting semaphore has no
// registration to undo: a withdrawer simply stops retrying the bounded
// decrement, which never consumed a slot on failure.
func (c *Counting) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, c.n)
	start := acqStart(c.m)
	if !spinUntilCtx(c.spin, c.m, ctx.Done(), func() bool { return decIfPositive(&c.x, c.m) > 0 }) {
		return abortErr(c.m, ctx)
	}
	acqDone(c.m, start)
	return nil
}

var _ Abortable = (*ChanSem)(nil)

// AcquireCtx implements Abortable.
func (c *ChanSem) AcquireCtx(ctx context.Context, p int) error {
	checkPID(p, c.n)
	start := acqStart(c.m)
	select {
	case c.ch <- struct{}{}: // uncontended: never observe cancellation
		acqDone(c.m, start)
		return nil
	default:
	}
	select {
	case c.ch <- struct{}{}:
		acqDone(c.m, start)
		return nil
	case <-ctx.Done():
		return abortErr(c.m, ctx)
	}
}

// TryAcquire implements Abortable.
func (c *ChanSem) TryAcquire(p int) bool {
	checkPID(p, c.n)
	start := acqStart(c.m)
	select {
	case c.ch <- struct{}{}:
		acqDone(c.m, start)
		return true
	default:
		c.m.Aborted()
		return false
	}
}
