// Package core implements the paper's local-spin k-exclusion algorithms
// natively for Go goroutines using sync/atomic: the Figure 2 building
// block and its inductive chain (Theorem 1), the arbitration tree
// (Theorem 2), the fast-path compositions (Theorems 3 and 4), and the
// bounded local-spin algorithm of Figure 6, in which every waiter spins
// on its own 64-byte-padded word — the cache-line analogue of the
// paper's DSM locality.
//
// All implementations are (k-1)-resilient in the paper's sense: a
// goroutine that stops (or is abandoned) while holding a slot costs that
// one slot, never overall progress, as long as fewer than k holders
// disappear.
//
// Process identities: the algorithms are per-process, so callers pass a
// process id p in [0,N) to Acquire and Release; at most one goroutine may
// use a given id at a time.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"kexclusion/internal/obs"
)

// KExclusion is an N-process k-exclusion lock: at most K goroutines hold
// it simultaneously, and a holder that never releases costs one slot
// only.
type KExclusion interface {
	// Acquire blocks process p until it holds one of the K slots.
	Acquire(p int)
	// Release returns process p's slot. It must only be called by the
	// current holder p.
	Release(p int)
	// K reports the number of slots.
	K() int
	// N reports the number of process identities.
	N() int
}

// defaultSpinBudget is how many times a waiter re-checks its spin word
// before yielding the processor. Spinning must eventually yield: on a
// host with few OS threads an unyielding spinner can starve the very
// goroutine that would release it.
const defaultSpinBudget = 64

type options struct {
	spinBudget int
	metrics    *obs.Metrics
}

// Option configures a k-exclusion constructor.
type Option interface {
	apply(*options)
}

type spinBudgetOption int

func (o spinBudgetOption) apply(opts *options) { opts.spinBudget = int(o) }

// WithSpinBudget sets how many consecutive polls a waiter performs
// before calling runtime.Gosched. Smaller values favour fairness on
// oversubscribed hosts; larger values favour latency when spare CPUs
// exist. The budget contract is polls >= 1: a waiter always re-checks
// its condition at least once between yields. Zero and negative budgets
// are clamped to 1 (the maximally-fair yield-per-poll floor) rather
// than silently turning every poll into a yield with a nonsense budget.
func WithSpinBudget(polls int) Option {
	if polls < 1 {
		polls = 1
	}
	return spinBudgetOption(polls)
}

type metricsOption struct{ m *obs.Metrics }

func (o metricsOption) apply(opts *options) { opts.metrics = o.m }

// WithMetrics attaches an observability sink: the constructed object
// counts acquisitions, releases, fast- vs slow-path takes, spin polls,
// yields, bounded-decrement CAS retries, slot occupancy and an
// acquisition-latency histogram into m. Several objects may share one
// sink. A nil m (the default) keeps every hot path on its
// uninstrumented branch.
func WithMetrics(m *obs.Metrics) Option { return metricsOption{m: m} }

func buildOptions(opts []Option) options {
	o := options{spinBudget: defaultSpinBudget}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.spinBudget < 1 {
		o.spinBudget = 1
	}
	return o
}

// spinUntil polls cond, yielding every budget polls, until cond is
// true. Poll and yield counts accumulate locally and flush to m once on
// exit, so instrumentation costs nothing per poll and one nil check per
// wait when no sink is attached.
func spinUntil(budget int, m *obs.Metrics, cond func() bool) {
	var polls, yields int64
	for i := 0; ; i++ {
		polls++
		if cond() {
			m.Spun(polls, yields)
			return
		}
		if i >= budget {
			yields++
			runtime.Gosched()
			i = 0
		}
	}
}

// acqStart returns the start time for acquisition-latency recording,
// skipping the clock read entirely when no sink is attached.
func acqStart(m *obs.Metrics) time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// acqDone records a completed acquisition against m; a nil sink is one
// predicted branch.
func acqDone(m *obs.Metrics, start time.Time) {
	if m == nil {
		return
	}
	m.Acquired(time.Since(start))
}

// checkPID panics on out-of-range process ids; misuse here silently
// corrupts the protocols, so fail loudly instead.
func checkPID(p, n int) {
	if p < 0 || p >= n {
		panic(fmt.Sprintf("kexclusion: process id %d out of range [0,%d)", p, n))
	}
}

// validate panics on nonsensical (n, k) shapes.
func validate(n, k int) {
	if k < 1 {
		panic(fmt.Sprintf("kexclusion: k must be at least 1, got %d", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("kexclusion: n must be at least 1, got %d", n))
	}
}

// padInt64 is an atomic.Int64 alone on its cache line, preventing false
// sharing between hot words of the protocols.
type padInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// padInt32 is an atomic.Int32 alone on its cache line; used for the
// per-process spin words so each waiter spins on its own line (the
// cache-coherent analogue of the paper's DSM-local spin variables).
type padInt32 struct {
	v atomic.Int32
	_ [60]byte
}

// decIfPositive is the bounded decrement of the paper's footnote 2:
// atomically decrement x unless it is already <= 0; returns the previous
// value either way. Failed CAS attempts — the contended-counter traffic
// the paper's local-spin algorithms exist to avoid — are counted into m.
func decIfPositive(x *atomic.Int64, m *obs.Metrics) int64 {
	var retries int64
	for {
		v := x.Load()
		if v <= 0 {
			m.CASRetried(retries)
			return v
		}
		if x.CompareAndSwap(v, v-1) {
			m.CASRetried(retries)
			return v
		}
		retries++
	}
}
