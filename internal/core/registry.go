package core

import (
	"fmt"
	"sort"
)

// Constructor describes one native k-exclusion implementation so that
// generic drivers — the shared invariant tests, the fault-injection
// conformance suite, cmd/kexchaos — can enumerate every algorithm
// without hand-maintained lists.
type Constructor struct {
	// Name identifies the implementation (stable, CLI-friendly).
	Name string
	// Doc is a one-line description.
	Doc string
	// Resilient reports whether the algorithm honours the paper's
	// (k-1)-resilience contract: a holder that stops costs one slot,
	// never overall progress. MCS is deliberately false — a crashed
	// holder wedges the queue, which is the gap the paper fills.
	Resilient bool
	// FixedK is nonzero when the implementation supports only that
	// k (MCS is mutual exclusion, k=1). Zero means any 1 <= k <= n.
	FixedK int
	// New builds an instance for n process identities and k slots.
	New func(n, k int, opts ...Option) KExclusion
}

// Registry returns every native k-exclusion implementation in a stable
// order: the paper's algorithms first, then the baselines and the k=1
// comparator.
func Registry() []Constructor {
	return []Constructor{
		{
			Name: "inductive", Doc: "Theorem 1: inductive chain of Figure 2 layers",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewInductive(n, k, opts...) },
		},
		{
			Name: "tree", Doc: "Theorem 2: arbitration tree of (2k,k) blocks",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewTree(n, k, opts...) },
		},
		{
			Name: "fastpath", Doc: "Theorem 3: Figure 4 fast path over a tree slow path",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewFastPath(n, k, opts...) },
		},
		{
			Name: "graceful", Doc: "Theorem 4: nested fast paths (Figure 3b)",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewGraceful(n, k, opts...) },
		},
		{
			Name: "localspin", Doc: "Theorem 5: Figure 6 bounded local-spin chain",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewLocalSpin(n, k, opts...) },
		},
		{
			Name: "lsfastpath", Doc: "Theorem 7: fast path over Figure 6 building blocks",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewLocalSpinFastPath(n, k, opts...) },
		},
		{
			Name: "counting", Doc: "baseline: bounded-decrement counting semaphore",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewCounting(n, k, opts...) },
		},
		{
			Name: "chansem", Doc: "baseline: buffered-channel semaphore (parking waiters)",
			Resilient: true,
			New:       func(n, k int, opts ...Option) KExclusion { return NewChanSem(n, k, opts...) },
		},
		{
			Name: "mcs", Doc: "k=1 comparator: MCS queue lock (NOT crash-tolerant)",
			Resilient: false, FixedK: 1,
			New: func(n, k int, opts ...Option) KExclusion {
				if k != 1 {
					panic(fmt.Sprintf("kexclusion: mcs supports only k=1, got k=%d", k))
				}
				return NewMCS(n, opts...)
			},
		},
	}
}

// ByName looks an implementation up by its registry name.
func ByName(name string) (Constructor, error) {
	for _, c := range Registry() {
		if c.Name == name {
			return c, nil
		}
	}
	return Constructor{}, fmt.Errorf("kexclusion: unknown implementation %q (have %v)", name, Names())
}

// Names lists all registry names, sorted.
func Names() []string {
	var names []string
	for _, c := range Registry() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}
