package core

import (
	"sync"
	"testing"
)

func TestHandleLocker(t *testing.T) {
	kx := NewFastPath(4, 2)
	hs := Handles(kx)
	if len(hs) != 4 {
		t.Fatalf("got %d handles, want 4", len(hs))
	}
	shared := 0
	var wg sync.WaitGroup
	for p := range hs {
		wg.Add(1)
		go func(l sync.Locker) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Lock()
				shared++ // k=2 would race; serialize with an inner mutex-free check
				l.Unlock()
			}
		}(hs[p])
	}
	wg.Wait()
	// k=2 means increments can race; just check no deadlock/panic and
	// the PID accessor.
	if hs[3].PID() != 3 {
		t.Fatal("PID wrong")
	}
	_ = shared
}

func TestHandleMutualExclusion(t *testing.T) {
	kx := NewLocalSpin(4, 1)
	hs := Handles(kx)
	shared := 0
	var wg sync.WaitGroup
	for p := range hs {
		wg.Add(1)
		go func(l sync.Locker) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Lock()
				shared++
				l.Unlock()
			}
		}(hs[p])
	}
	wg.Wait()
	if shared != 4*200 {
		t.Fatalf("lost updates through handles: %d", shared)
	}
}

func TestWithReleasesOnPanic(t *testing.T) {
	kx := NewCounting(2, 1)
	func() {
		defer func() { recover() }()
		With(kx, 0, func() { panic("boom") })
	}()
	// The slot must have been released.
	if !kx.TryAcquire(1) {
		t.Fatal("slot leaked after panic inside With")
	}
	kx.Release(1)
}

func TestNewHandleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad pid")
		}
	}()
	NewHandle(NewCounting(2, 1), 5)
}
