package core

import (
	"sync"
	"testing"
	"time"
)

func TestMCSMutualExclusion(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		m := NewMCS(n)
		shared := 0
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for r := 0; r < 100; r++ {
					m.Acquire(p)
					shared++
					m.Release(p)
				}
			}(p)
		}
		wg.Wait()
		if shared != n*100 {
			t.Fatalf("n=%d: lost updates, shared=%d want %d", n, shared, n*100)
		}
	}
}

func TestMCSFIFOHandoff(t *testing.T) {
	// With a holder parked, queued waiters must be released in the
	// order they enqueued.
	m := NewMCS(4)
	m.Acquire(0)

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 1; p <= 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			m.Acquire(p)
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			m.Release(p)
		}(p)
		time.Sleep(5 * time.Millisecond) // serialize enqueue order
	}
	m.Release(0)
	wg.Wait()
	for i, p := range order {
		if p != i+1 {
			t.Fatalf("handoff order %v, want [1 2 3]", order)
		}
	}
}

func TestMCSUncontendedFastCase(t *testing.T) {
	m := NewMCS(2)
	for i := 0; i < 1000; i++ {
		m.Acquire(0)
		m.Release(0)
	}
	if m.tail.Load() != nil {
		t.Fatal("tail not reset after uncontended cycles")
	}
}

func TestMCSAccessors(t *testing.T) {
	m := NewMCS(6)
	if m.K() != 1 || m.N() != 6 {
		t.Fatalf("accessors wrong: K=%d N=%d", m.K(), m.N())
	}
}
