package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/obs"
)

// abortableImpls returns every registry implementation that supports
// bounded withdrawal, constructed at (n, k) with a fresh sink.
func abortableImpls(t *testing.T, n, k int) map[string]struct {
	kx KExclusion
	m  *obs.Metrics
} {
	t.Helper()
	out := make(map[string]struct {
		kx KExclusion
		m  *obs.Metrics
	})
	for _, c := range Registry() {
		kk := k
		if c.FixedK != 0 {
			kk = c.FixedK
		}
		m := obs.New()
		kx := c.New(n, kk, WithMetrics(m), WithSpinBudget(8))
		if _, ok := kx.(Abortable); !ok {
			if c.Name != "mcs" {
				t.Errorf("%s: expected Abortable, MCS is the only opt-out", c.Name)
			}
			continue
		}
		out[c.Name] = struct {
			kx KExclusion
			m  *obs.Metrics
		}{kx, m}
	}
	return out
}

// fill acquires pids [0,count) and returns a release function.
func fill(kx KExclusion, count int) func() {
	for p := 0; p < count; p++ {
		kx.Acquire(p)
	}
	return func() {
		for p := 0; p < count; p++ {
			kx.Release(p)
		}
	}
}

func TestTryAcquireFullThenFree(t *testing.T) {
	for name, tc := range abortableImpls(t, 8, 2) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			k := tc.kx.K()
			drain := fill(tc.kx, k)
			if a.TryAcquire(k) {
				t.Fatalf("TryAcquire succeeded with all %d slots held", k)
			}
			if got := tc.m.Snapshot().Aborts; got < 1 {
				t.Fatalf("aborts = %d, want >= 1 after failed TryAcquire", got)
			}
			drain()
			if !a.TryAcquire(k) {
				t.Fatalf("TryAcquire failed with every slot free")
			}
			tc.kx.Release(k)
			// The lock is still at full capacity after the failed try.
			fill(tc.kx, k)()
		})
	}
}

func TestAcquireCtxExpiredWithdraws(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, tc := range abortableImpls(t, 8, 2) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			k := tc.kx.K()
			drain := fill(tc.kx, k)
			for i := 0; i < 3; i++ { // repeated withdrawal must not decay state
				if err := a.AcquireCtx(ctx, k); !errors.Is(err, context.Canceled) {
					t.Fatalf("AcquireCtx on full lock = %v, want context.Canceled", err)
				}
			}
			drain()
			// Full capacity must survive the withdrawals: k fresh
			// acquisitions (including the former withdrawer's id) all
			// complete without waiting forever.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for p := 0; p < k; p++ {
					tc.kx.Acquire(p)
				}
				for p := 0; p < k; p++ {
					tc.kx.Release(p)
				}
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("lock lost capacity after withdrawals")
			}
			if got := tc.m.Snapshot().Aborts; got < 3 {
				t.Fatalf("aborts = %d, want >= 3", got)
			}
		})
	}
}

func TestAcquireCtxUncontendedSucceeds(t *testing.T) {
	// Cancellation is only observed while waiting: with free slots even
	// an expired context acquires (callers must Release on nil error).
	ctx := context.Background()
	for name, tc := range abortableImpls(t, 8, 2) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			if err := a.AcquireCtx(ctx, 0); err != nil {
				t.Fatalf("AcquireCtx uncontended = %v", err)
			}
			tc.kx.Release(0)
		})
	}
}

func TestAcquireCtxWakesOnRelease(t *testing.T) {
	for name, tc := range abortableImpls(t, 8, 2) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			k := tc.kx.K()
			drain := fill(tc.kx, k)
			got := make(chan error, 1)
			go func() {
				got <- a.AcquireCtx(context.Background(), k)
			}()
			time.Sleep(5 * time.Millisecond) // let the waiter register
			drain()
			select {
			case err := <-got:
				if err != nil {
					t.Fatalf("AcquireCtx = %v after release", err)
				}
				tc.kx.Release(k)
			case <-time.After(10 * time.Second):
				t.Fatalf("waiter never woke after release")
			}
		})
	}
}

// TestAbortStressHoldsInvariant mixes blocking acquisitions, timed-out
// acquisitions and tries under -race, asserting the k-exclusion bound
// throughout and full capacity afterwards. This is the abortable
// analogue of the resilience conformance loop: withdrawals must never
// lose or mint slots.
func TestAbortStressHoldsInvariant(t *testing.T) {
	const (
		n    = 12
		k    = 3
		iter = 200
	)
	for name, tc := range abortableImpls(t, n, k) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			kk := tc.kx.K()
			var inCS atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < iter; i++ {
						var held bool
						switch i % 3 {
						case 0:
							tc.kx.Acquire(p)
							held = true
						case 1:
							ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
							held = a.AcquireCtx(ctx, p) == nil
							cancel()
						default:
							held = a.TryAcquire(p)
						}
						if !held {
							continue
						}
						if got := inCS.Add(1); got > int64(kk) {
							t.Errorf("%d holders inside (%d,%d)-exclusion", got, n, kk)
						}
						inCS.Add(-1)
						tc.kx.Release(p)
					}
				}(p)
			}
			wg.Wait()
			if got := inCS.Load(); got != 0 {
				t.Fatalf("holders = %d after drain, want 0", got)
			}
			// No capacity lost: k simultaneous holders still fit.
			fill(tc.kx, kk)()
			s := tc.m.Snapshot()
			if s.Acquires != s.Releases {
				t.Fatalf("acquires=%d releases=%d, want equal after drain", s.Acquires, s.Releases)
			}
		})
	}
}

// TestAbortDoesNotStrandWaiters aborts one registered waiter while
// another keeps waiting; the survivor must still be woken by the next
// release (the withdrawal must not eat the releaser's signal).
func TestAbortDoesNotStrandWaiters(t *testing.T) {
	for name, tc := range abortableImpls(t, 8, 2) {
		t.Run(name, func(t *testing.T) {
			a := tc.kx.(Abortable)
			k := tc.kx.K()
			drain := fill(tc.kx, k)

			ctx, cancel := context.WithCancel(context.Background())
			aborted := make(chan error, 1)
			go func() { aborted <- a.AcquireCtx(ctx, k) }()
			survivor := make(chan error, 1)
			go func() { survivor <- a.AcquireCtx(context.Background(), k+1) }()
			time.Sleep(5 * time.Millisecond) // both register

			cancel()
			if err := <-aborted; err == nil {
				// The waiter may legitimately win a slot if a racing
				// wake-up beat the cancellation; then it simply releases.
				tc.kx.Release(k)
			}
			drain()
			select {
			case err := <-survivor:
				if err != nil {
					t.Fatalf("survivor AcquireCtx = %v", err)
				}
				tc.kx.Release(k + 1)
			case <-time.After(10 * time.Second):
				t.Fatalf("survivor stranded after peer withdrawal")
			}
		})
	}
}

func TestHandleTryAcquireCtx(t *testing.T) {
	// The Abortable surface must compose with the fixed-k registry entry
	// (mcs) being the only exception — exercised via direct construction
	// since Handle wraps a single pid.
	kx := NewInductive(4, 2)
	var a Abortable = kx
	if !a.TryAcquire(0) {
		t.Fatal("TryAcquire on empty lock failed")
	}
	if err := a.AcquireCtx(context.Background(), 1); err != nil {
		t.Fatalf("AcquireCtx = %v", err)
	}
	kx.Release(0)
	kx.Release(1)
}
