package core

import "sync"

// Handle binds a process identity to a KExclusion, yielding a
// sync.Locker so a goroutine that owns identity p can use the familiar
// Lock/Unlock idiom (and defer-based unlocking) without threading p
// through every call.
type Handle struct {
	kx KExclusion
	p  int
}

var _ sync.Locker = Handle{}

// NewHandle returns the per-process view of kx for identity p.
func NewHandle(kx KExclusion, p int) Handle {
	checkPID(p, kx.N())
	return Handle{kx: kx, p: p}
}

// Lock implements sync.Locker.
func (h Handle) Lock() { h.kx.Acquire(h.p) }

// Unlock implements sync.Locker.
func (h Handle) Unlock() { h.kx.Release(h.p) }

// PID reports the bound process identity.
func (h Handle) PID() int { return h.p }

// Handles returns one Handle per process identity of kx.
func Handles(kx KExclusion) []Handle {
	out := make([]Handle, kx.N())
	for p := range out {
		out[p] = Handle{kx: kx, p: p}
	}
	return out
}

// With runs fn while holding a slot of kx as process p, releasing on
// the way out even if fn panics.
func With(kx KExclusion, p int, fn func()) {
	kx.Acquire(p)
	defer kx.Release(p)
	fn()
}
