package core

import (
	"sync/atomic"

	"kexclusion/internal/obs"
)

// MCS is the Mellor-Crummey & Scott queue lock (the paper's reference
// [12]), natively: the mutual-exclusion (k=1) comparator the concluding
// remarks measure the k-exclusion algorithms against. Each waiter spins
// on its own padded node. It is NOT fault-tolerant — a goroutine that
// stops while holding or waiting wedges the queue — which is exactly the
// gap the paper's resilient algorithms fill.
type MCS struct {
	tail  atomic.Pointer[mcsNode]
	nodes []mcsNode
	spin  int
	m     *obs.Metrics
	n     int
}

type mcsNode struct {
	locked atomic.Int32
	next   atomic.Pointer[mcsNode]
	_      [48]byte
}

var _ KExclusion = (*MCS)(nil)

// NewMCS builds an MCS lock for n process identities.
func NewMCS(n int, opts ...Option) *MCS {
	validate(n, 1)
	o := buildOptions(opts)
	return &MCS{nodes: make([]mcsNode, n), spin: o.spinBudget, m: o.metrics, n: n}
}

// Acquire implements KExclusion.
func (m *MCS) Acquire(p int) {
	checkPID(p, m.n)
	start := acqStart(m.m)
	node := &m.nodes[p]
	node.next.Store(nil)
	pred := m.tail.Swap(node)
	if pred != nil {
		node.locked.Store(1)
		pred.next.Store(node)
		spinUntil(m.spin, m.m, func() bool { return node.locked.Load() == 0 })
	}
	acqDone(m.m, start)
}

// Release implements KExclusion.
func (m *MCS) Release(p int) {
	checkPID(p, m.n)
	node := &m.nodes[p]
	if node.next.Load() == nil {
		if m.tail.CompareAndSwap(node, nil) {
			m.m.Released()
			return
		}
		// A successor is between its swap and its link; wait for it.
		spinUntil(m.spin, m.m, func() bool { return node.next.Load() != nil })
	}
	node.next.Load().locked.Store(0)
	m.m.Released()
}

// K implements KExclusion.
func (m *MCS) K() int { return 1 }

// N implements KExclusion.
func (m *MCS) N() int { return m.n }
