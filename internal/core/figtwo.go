package core

import (
	"sync/atomic"

	"kexclusion/internal/obs"
)

// qBottom is the sentinel distinct from every process id written to the
// spin word by the exit section (the paper's "Q := p̄").
const qBottom = -1

// figTwo is one Figure 2 layer: a slot counter X (initially k) and a
// single spin word Q holding the id of the currently waiting process.
// The layer admits k processes provided at most k+1 participate
// concurrently, which the inner layer guarantees (nil inner means the
// guarantee holds trivially).
type figTwo struct {
	inner *figTwo
	x     padInt64
	q     padInt64
	spin  int
	m     *obs.Metrics
}

func newFigTwo(k int, inner *figTwo, o options) *figTwo {
	f := &figTwo{inner: inner, spin: o.spinBudget, m: o.metrics}
	f.x.v.Store(int64(k))
	f.q.v.Store(qBottom)
	return f
}

func (f *figTwo) acquire(p int) {
	if f.inner != nil {
		f.inner.acquire(p) // statement 1: Acquire(N,k+1)
	}
	if f.x.v.Add(-1) <= -1 { // statement 2: old value <= 0, no slot free
		f.q.v.Store(int64(p)) // statement 3
		if f.x.v.Load() < 0 { // statement 4: still no slot
			// Statement 5: wait until a releaser overwrites Q.
			spinUntil(f.spin, f.m, func() bool { return f.q.v.Load() != int64(p) })
		}
	}
}

func (f *figTwo) release(p int) {
	f.x.v.Add(1)         // statement 6
	f.q.v.Store(qBottom) // statement 7: release the waiting process
	if f.inner != nil {
		f.inner.release(p) // statement 8: Release(N,k+1)
	}
}

// newChain builds Theorem 1's inductive chain: Figure 2 layers for
// j = n-1 down to k ((n,n)-exclusion being skip). The chain only
// requires that at most n processes participate concurrently, not that
// their ids are known, so it doubles as the (2k,k) building block.
func newChain(n, k int, o options) *figTwo {
	var inner *figTwo
	for j := n - 1; j >= k; j-- {
		inner = newFigTwo(j, inner, o)
	}
	return inner
}

// Inductive is Theorem 1's (N,k)-exclusion: a chain of Figure 2 layers.
// Simple and compact; entry cost grows linearly in N-K, so prefer Tree
// or FastPath for large N.
type Inductive struct {
	chain *figTwo
	m     *obs.Metrics
	n, k  int
}

var _ KExclusion = (*Inductive)(nil)

// NewInductive builds Theorem 1's chain for n processes and k slots.
func NewInductive(n, k int, opts ...Option) *Inductive {
	validate(n, k)
	o := buildOptions(opts)
	return &Inductive{chain: newChain(n, k, o), m: o.metrics, n: n, k: k}
}

// Acquire implements KExclusion.
func (i *Inductive) Acquire(p int) {
	checkPID(p, i.n)
	start := acqStart(i.m)
	if i.chain != nil {
		i.chain.acquire(p)
	}
	acqDone(i.m, start)
}

// Release implements KExclusion.
func (i *Inductive) Release(p int) {
	checkPID(p, i.n)
	if i.chain != nil {
		i.chain.release(p)
	}
	i.m.Released()
}

// K implements KExclusion.
func (i *Inductive) K() int { return i.k }

// N implements KExclusion.
func (i *Inductive) N() int { return i.n }

// Counting is the folklore atomic-counter semaphore: the practical
// baseline the paper's algorithms are benchmarked against. It is
// (k-1)-resilient but not starvation-free, and every waiter spins on the
// one shared counter — the remote-reference hot spot local-spin
// algorithms eliminate.
type Counting struct {
	x    atomic.Int64
	spin int
	m    *obs.Metrics
	n, k int
}

var _ KExclusion = (*Counting)(nil)

// NewCounting builds the counting-semaphore baseline.
func NewCounting(n, k int, opts ...Option) *Counting {
	validate(n, k)
	o := buildOptions(opts)
	c := &Counting{spin: o.spinBudget, m: o.metrics, n: n, k: k}
	c.x.Store(int64(k))
	return c
}

// Acquire implements KExclusion.
func (c *Counting) Acquire(p int) {
	checkPID(p, c.n)
	start := acqStart(c.m)
	spinUntil(c.spin, c.m, func() bool { return decIfPositive(&c.x, c.m) > 0 })
	acqDone(c.m, start)
}

// TryAcquire acquires a slot without blocking, reporting success.
func (c *Counting) TryAcquire(p int) bool {
	checkPID(p, c.n)
	start := acqStart(c.m)
	if decIfPositive(&c.x, c.m) <= 0 {
		c.m.Aborted()
		return false
	}
	acqDone(c.m, start)
	return true
}

// Release implements KExclusion.
func (c *Counting) Release(p int) {
	checkPID(p, c.n)
	c.x.Add(1)
	c.m.Released()
}

// K implements KExclusion.
func (c *Counting) K() int { return c.k }

// N implements KExclusion.
func (c *Counting) N() int { return c.n }

// ChanSem is a channel-based semaphore, the idiomatic Go baseline.
// Blocking waiters park in the runtime instead of spinning.
type ChanSem struct {
	ch   chan struct{}
	m    *obs.Metrics
	n, k int
}

var _ KExclusion = (*ChanSem)(nil)

// NewChanSem builds the channel-semaphore baseline. Spin options do not
// apply (waiters park in the runtime); WithMetrics does.
func NewChanSem(n, k int, opts ...Option) *ChanSem {
	validate(n, k)
	o := buildOptions(opts)
	return &ChanSem{ch: make(chan struct{}, k), m: o.metrics, n: n, k: k}
}

// Acquire implements KExclusion.
func (c *ChanSem) Acquire(p int) {
	checkPID(p, c.n)
	start := acqStart(c.m)
	c.ch <- struct{}{}
	acqDone(c.m, start)
}

// Release implements KExclusion.
func (c *ChanSem) Release(p int) {
	checkPID(p, c.n)
	<-c.ch
	c.m.Released()
}

// K implements KExclusion.
func (c *ChanSem) K() int { return c.k }

// N implements KExclusion.
func (c *ChanSem) N() int { return c.n }
