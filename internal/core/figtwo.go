package core

import "sync/atomic"

// qBottom is the sentinel distinct from every process id written to the
// spin word by the exit section (the paper's "Q := p̄").
const qBottom = -1

// figTwo is one Figure 2 layer: a slot counter X (initially k) and a
// single spin word Q holding the id of the currently waiting process.
// The layer admits k processes provided at most k+1 participate
// concurrently, which the inner layer guarantees (nil inner means the
// guarantee holds trivially).
type figTwo struct {
	inner *figTwo
	x     padInt64
	q     padInt64
	spin  int
}

func newFigTwo(k int, inner *figTwo, spinBudget int) *figTwo {
	f := &figTwo{inner: inner, spin: spinBudget}
	f.x.v.Store(int64(k))
	f.q.v.Store(qBottom)
	return f
}

func (f *figTwo) acquire(p int) {
	if f.inner != nil {
		f.inner.acquire(p) // statement 1: Acquire(N,k+1)
	}
	if f.x.v.Add(-1) <= -1 { // statement 2: old value <= 0, no slot free
		f.q.v.Store(int64(p)) // statement 3
		if f.x.v.Load() < 0 { // statement 4: still no slot
			// Statement 5: wait until a releaser overwrites Q.
			spinUntil(f.spin, func() bool { return f.q.v.Load() != int64(p) })
		}
	}
}

func (f *figTwo) release(p int) {
	f.x.v.Add(1)         // statement 6
	f.q.v.Store(qBottom) // statement 7: release the waiting process
	if f.inner != nil {
		f.inner.release(p) // statement 8: Release(N,k+1)
	}
}

// newChain builds Theorem 1's inductive chain: Figure 2 layers for
// j = n-1 down to k ((n,n)-exclusion being skip). The chain only
// requires that at most n processes participate concurrently, not that
// their ids are known, so it doubles as the (2k,k) building block.
func newChain(n, k, spinBudget int) *figTwo {
	var inner *figTwo
	for j := n - 1; j >= k; j-- {
		inner = newFigTwo(j, inner, spinBudget)
	}
	return inner
}

// Inductive is Theorem 1's (N,k)-exclusion: a chain of Figure 2 layers.
// Simple and compact; entry cost grows linearly in N-K, so prefer Tree
// or FastPath for large N.
type Inductive struct {
	chain *figTwo
	n, k  int
}

var _ KExclusion = (*Inductive)(nil)

// NewInductive builds Theorem 1's chain for n processes and k slots.
func NewInductive(n, k int, opts ...Option) *Inductive {
	validate(n, k)
	o := buildOptions(opts)
	return &Inductive{chain: newChain(n, k, o.spinBudget), n: n, k: k}
}

// Acquire implements KExclusion.
func (i *Inductive) Acquire(p int) {
	checkPID(p, i.n)
	if i.chain != nil {
		i.chain.acquire(p)
	}
}

// Release implements KExclusion.
func (i *Inductive) Release(p int) {
	checkPID(p, i.n)
	if i.chain != nil {
		i.chain.release(p)
	}
}

// K implements KExclusion.
func (i *Inductive) K() int { return i.k }

// N implements KExclusion.
func (i *Inductive) N() int { return i.n }

// Counting is the folklore atomic-counter semaphore: the practical
// baseline the paper's algorithms are benchmarked against. It is
// (k-1)-resilient but not starvation-free, and every waiter spins on the
// one shared counter — the remote-reference hot spot local-spin
// algorithms eliminate.
type Counting struct {
	x    atomic.Int64
	spin int
	n, k int
}

var _ KExclusion = (*Counting)(nil)

// NewCounting builds the counting-semaphore baseline.
func NewCounting(n, k int, opts ...Option) *Counting {
	validate(n, k)
	o := buildOptions(opts)
	c := &Counting{spin: o.spinBudget, n: n, k: k}
	c.x.Store(int64(k))
	return c
}

// Acquire implements KExclusion.
func (c *Counting) Acquire(p int) {
	checkPID(p, c.n)
	spinUntil(c.spin, func() bool { return decIfPositive(&c.x) > 0 })
}

// TryAcquire acquires a slot without blocking, reporting success.
func (c *Counting) TryAcquire(p int) bool {
	checkPID(p, c.n)
	return decIfPositive(&c.x) > 0
}

// Release implements KExclusion.
func (c *Counting) Release(p int) {
	checkPID(p, c.n)
	c.x.Add(1)
}

// K implements KExclusion.
func (c *Counting) K() int { return c.k }

// N implements KExclusion.
func (c *Counting) N() int { return c.n }

// ChanSem is a channel-based semaphore, the idiomatic Go baseline.
// Blocking waiters park in the runtime instead of spinning.
type ChanSem struct {
	ch   chan struct{}
	n, k int
}

var _ KExclusion = (*ChanSem)(nil)

// NewChanSem builds the channel-semaphore baseline.
func NewChanSem(n, k int) *ChanSem {
	validate(n, k)
	return &ChanSem{ch: make(chan struct{}, k), n: n, k: k}
}

// Acquire implements KExclusion.
func (c *ChanSem) Acquire(p int) {
	checkPID(p, c.n)
	c.ch <- struct{}{}
}

// Release implements KExclusion.
func (c *ChanSem) Release(p int) {
	checkPID(p, c.n)
	<-c.ch
}

// K implements KExclusion.
func (c *ChanSem) K() int { return c.k }

// N implements KExclusion.
func (c *ChanSem) N() int { return c.n }
