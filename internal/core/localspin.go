package core

import (
	"sync/atomic"

	"kexclusion/internal/obs"
)

// lock is the internal composition interface satisfied by both building
// blocks (the Figure 2 chain and the Figure 6 local-spin chain).
type lock interface {
	acquire(p int)
	// acquireCtx is acquire with bounded withdrawal: it reports false —
	// with the block's state restored — if done closes while waiting.
	acquireCtx(p int, done <-chan struct{}) bool
	release(p int)
}

var _ lock = (*figTwo)(nil)

// figSix is one Figure 6 layer, natively: every process owns k+2
// cache-line-padded spin words P[p][v] and in-use counters R[p][v]; the
// packed register Q = (pid, loc) names the spin word of the currently
// waiting process. A waiter always spins on one of its own padded words,
// so under cache coherence its busy-wait stays within its own cache line
// — the native analogue of the paper's DSM-local spinning.
type figSix struct {
	x    padInt64
	q    padInt64 // packed (pid*nloc + loc)
	p    []padInt32
	r    []atomic.Int32
	nloc int
	spin int
	m    *obs.Metrics
}

func newFigSix(n, k int, o options) *figSix {
	f := &figSix{
		nloc: k + 2,
		spin: o.spinBudget,
		m:    o.metrics,
	}
	f.p = make([]padInt32, n*f.nloc)
	f.r = make([]atomic.Int32, n*f.nloc)
	f.x.v.Store(int64(k))
	f.q.v.Store(0) // (pid 0, loc 0); never spun on (first use is loc 1)
	return f
}

// figSixState is a process's private per-layer state (the paper's "last"
// variable). The chain allocates one per (process, layer) and threads it
// explicitly; see figSixChain.
type figSixState struct {
	last int
}

func (f *figSix) pack(p, loc int) int64 { return int64(p*f.nloc + loc) }

func (f *figSix) acquireWith(p int, st *figSixState) {
	if old := f.x.v.Add(-1) + 1; old <= 0 { // statement 2
		next := (st.last + 1) % f.nloc       // statement 3
		for f.r[p*f.nloc+next].Load() != 0 { // statements 4-5 (local reads)
			next = (next + 1) % f.nloc
		}
		f.p[p*f.nloc+next].v.Store(0) // statement 6 (own word)
		u := f.q.v.Load()             // statement 7
		f.r[u].Add(1)                 // statement 8
		if f.q.v.Load() == u {        // statement 9
			f.p[u].v.Store(1) // statement 10: release current waiter
		}
		if f.q.v.CompareAndSwap(u, f.pack(p, next)) { // statement 11
			st.last = next        // statement 12
			if f.x.v.Load() < 0 { // statement 13
				w := &f.p[p*f.nloc+next].v // statement 14: spin on own line
				spinUntil(f.spin, f.m, func() bool { return w.Load() != 0 })
			}
		}
		f.r[u].Add(-1) // statement 15
	}
}

func (f *figSix) releaseWith(p int) {
	f.x.v.Add(1)           // statement 16
	u := f.q.v.Load()      // statement 17
	f.r[u].Add(1)          // statement 18
	if f.q.v.Load() == u { // statement 19
		f.p[u].v.Store(1) // statement 20
	}
	f.r[u].Add(-1) // statement 21
}

// figSixChain is Theorem 5's inductive chain of Figure 6 layers with the
// per-process, per-layer private state ("last") managed alongside.
type figSixChain struct {
	layers []*figSix     // outermost (j=n-1) first
	state  []figSixState // len(layers) * nIDs, layer-major
	nIDs   int
}

// newFigSixChain builds the (count,k)-exclusion chain over n process
// identities; count bounds concurrency, n sizes the per-process arrays.
func newFigSixChain(nIDs, count, k int, o options) *figSixChain {
	c := &figSixChain{nIDs: nIDs}
	for j := count - 1; j >= k; j-- {
		c.layers = append(c.layers, newFigSix(nIDs, j, o))
	}
	c.state = make([]figSixState, len(c.layers)*nIDs)
	return c
}

func (c *figSixChain) acquire(p int) {
	for i, layer := range c.layers {
		layer.acquireWith(p, &c.state[i*c.nIDs+p])
	}
}

func (c *figSixChain) release(p int) {
	for i := len(c.layers) - 1; i >= 0; i-- {
		c.layers[i].releaseWith(p)
	}
}

var _ lock = (*figSixChain)(nil)

// LocalSpin is Theorem 5's (N,k)-exclusion natively: the bounded
// local-spin chain of Figure 6 layers. Each waiter spins on a word in
// its own cache line, bounding coherence traffic per acquisition the way
// the paper bounds remote references.
type LocalSpin struct {
	chain *figSixChain
	m     *obs.Metrics
	n, k  int
}

var _ KExclusion = (*LocalSpin)(nil)

// NewLocalSpin builds the Figure 6 chain for n processes and k slots.
func NewLocalSpin(n, k int, opts ...Option) *LocalSpin {
	validate(n, k)
	o := buildOptions(opts)
	return &LocalSpin{chain: newFigSixChain(n, n, k, o), m: o.metrics, n: n, k: k}
}

// Acquire implements KExclusion.
func (l *LocalSpin) Acquire(p int) {
	checkPID(p, l.n)
	start := acqStart(l.m)
	l.chain.acquire(p)
	acqDone(l.m, start)
}

// Release implements KExclusion.
func (l *LocalSpin) Release(p int) {
	checkPID(p, l.n)
	l.chain.release(p)
	l.m.Released()
}

// K implements KExclusion.
func (l *LocalSpin) K() int { return l.k }

// N implements KExclusion.
func (l *LocalSpin) N() int { return l.n }

// LocalSpinFastPath composes Figure 4's fast path with Figure 6 building
// blocks (Theorem 7's structure): bounded coherence traffic both below
// and above contention k, with every wait a local spin.
type LocalSpinFastPath struct {
	x        padInt64
	slowTree [][]lock // per leaf group, leaf-to-root
	groups   int
	block    *figSixChain
	tookSlow []padInt32
	m        *obs.Metrics
	n, k     int
}

var _ KExclusion = (*LocalSpinFastPath)(nil)

// NewLocalSpinFastPath builds the Theorem 7 composition.
func NewLocalSpinFastPath(n, k int, opts ...Option) *LocalSpinFastPath {
	validate(n, k)
	o := buildOptions(opts)
	f := &LocalSpinFastPath{
		block:    newFigSixChain(n, 2*k, k, o),
		tookSlow: make([]padInt32, n),
		m:        o.metrics,
		n:        n,
		k:        k,
	}
	f.x.v.Store(int64(k))
	if n > 2*k {
		groups := (n + k - 1) / k
		f.groups = groups
		f.slowTree = make([][]lock, groups)
		buildFigSixTree(f.slowTree, 0, groups, n, k, o)
	}
	return f
}

func buildFigSixTree(paths [][]lock, lo, hi, n, k int, o options) {
	if hi-lo <= 1 {
		return
	}
	mid := lo + (hi-lo+1)/2
	buildFigSixTree(paths, lo, mid, n, k, o)
	buildFigSixTree(paths, mid, hi, n, k, o)
	node := newFigSixChain(n, 2*k, k, o)
	for g := lo; g < hi; g++ {
		paths[g] = append(paths[g], node)
	}
}

func (f *LocalSpinFastPath) group(p int) int {
	g := p / f.k
	if g >= f.groups {
		g = f.groups - 1
	}
	return g
}

// Acquire implements KExclusion.
func (f *LocalSpinFastPath) Acquire(p int) {
	checkPID(p, f.n)
	start := acqStart(f.m)
	if f.slowTree == nil {
		f.block.acquire(p)
		f.m.Path(false)
		acqDone(f.m, start)
		return
	}
	slow := decIfPositive(&f.x.v, f.m) == 0
	if slow {
		for _, node := range f.slowTree[f.group(p)] {
			node.acquire(p)
		}
	}
	f.tookSlow[p].v.Store(boolToInt32(slow))
	f.block.acquire(p)
	f.m.Path(slow)
	acqDone(f.m, start)
}

// Release implements KExclusion.
func (f *LocalSpinFastPath) Release(p int) {
	checkPID(p, f.n)
	if f.slowTree == nil {
		f.block.release(p)
		f.m.Released()
		return
	}
	f.block.release(p)
	if f.tookSlow[p].v.Load() != 0 {
		path := f.slowTree[f.group(p)]
		for i := len(path) - 1; i >= 0; i-- {
			path[i].release(p)
		}
	} else {
		f.x.v.Add(1)
	}
	f.m.Released()
}

// K implements KExclusion.
func (f *LocalSpinFastPath) K() int { return f.k }

// N implements KExclusion.
func (f *LocalSpinFastPath) N() int { return f.n }
