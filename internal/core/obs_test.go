package core

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kexclusion/internal/obs"
)

func TestWithSpinBudgetClamp(t *testing.T) {
	// The contract is polls >= 1: zero or negative budgets would make
	// spinUntil yield on every poll (or, before the clamp existed, made
	// the budget comparison meaningless). Both bounds clamp to 1.
	for _, budget := range []int{0, -1, -100} {
		kx := NewInductive(4, 2, WithSpinBudget(budget))
		if kx.chain.spin != 1 {
			t.Errorf("WithSpinBudget(%d): spin=%d, want clamp to 1", budget, kx.chain.spin)
		}
	}
	if kx := NewInductive(4, 2, WithSpinBudget(1)); kx.chain.spin != 1 {
		t.Errorf("WithSpinBudget(1): spin=%d, want 1", kx.chain.spin)
	}
	if kx := NewInductive(4, 2, WithSpinBudget(2)); kx.chain.spin != 2 {
		t.Errorf("WithSpinBudget(2): spin=%d, want 2 (clamp must not touch valid budgets)", kx.chain.spin)
	}
	// A clamped instance must still work: budget 1 yields on every
	// failed poll but must not change semantics.
	exercise(t, NewCounting(4, 2, WithSpinBudget(0)), 30)
}

// TestLocalSpinFastPathDegenerateGroupChurn drives the Theorem 7
// composition at a shape where n is not divisible by k (n=10, k=4): the
// last leaf group {8,9} has fewer than k members, exercising group()'s
// clamp, and the churn (goroutines racing through short and long
// critical sections) forces the bounded-decrement pool to empty so the
// tookSlow handoff runs both release paths concurrently. Run under
// -race this checks the happens-before edges of the handoff; the
// metrics sink proves both paths were actually taken.
func TestLocalSpinFastPathDegenerateGroupChurn(t *testing.T) {
	const (
		n, k   = 10, 4
		rounds = 80
	)
	m := obs.New()
	f := NewLocalSpinFastPath(n, k, WithMetrics(m))
	if f.groups != 3 {
		t.Fatalf("groups=%d, want 3 for (n,k)=(%d,%d)", f.groups, n, k)
	}
	for p := 0; p < n; p++ {
		if g := f.group(p); g < 0 || g >= f.groups {
			t.Fatalf("group(%d)=%d out of range [0,%d)", p, g, f.groups)
		}
	}

	var occ, maxOcc atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f.Acquire(p)
				cur := occ.Add(1)
				for {
					mx := maxOcc.Load()
					if cur <= mx || maxOcc.CompareAndSwap(mx, cur) {
						break
					}
				}
				// Churn: odd rounds hold the slot across a scheduling
				// point so the fast-path pool drains and later arrivals
				// are forced onto the slow tree.
				if r%2 == 1 {
					time.Sleep(time.Microsecond)
				}
				occ.Add(-1)
				f.Release(p)
			}
		}(p)
	}
	wg.Wait()

	if got := maxOcc.Load(); got > k {
		t.Fatalf("k-exclusion violated under churn: occupancy %d > k=%d", got, k)
	}

	// The sleepy churn above usually drains the fast-path pool, but a
	// serially-scheduled run can finish without a single slow take, so
	// exercise the tookSlow handoff deterministically too: with the
	// counter drained — as if k fast holders were inside — an arrival
	// must pay the slow tree, and its release must return the slot
	// through the tree, not the counter.
	f.x.v.Add(int64(-k))
	f.Acquire(0)
	if f.tookSlow[0].v.Load() == 0 {
		t.Fatal("arrival with a drained fast-path counter took the fast path")
	}
	f.Release(0)
	f.x.v.Add(int64(k))

	s := m.Snapshot()
	total := int64(n*rounds + 1)
	if s.Acquires != total || s.Releases != total {
		t.Fatalf("metrics accounting wrong: acquires=%d releases=%d, want %d", s.Acquires, s.Releases, total)
	}
	if s.FastPathTakes+s.SlowPathTakes != total {
		t.Fatalf("path split %d+%d does not cover %d acquisitions", s.FastPathTakes, s.SlowPathTakes, total)
	}
	if s.SlowPathTakes == 0 {
		t.Fatal("churn never drained the fast-path pool; tookSlow handoff untested")
	}
	if s.PeakHolders > k {
		t.Fatalf("metrics saw peak occupancy %d > k=%d", s.PeakHolders, k)
	}
	if s.CurrentHolders != 0 {
		t.Fatalf("current_holders=%d after quiescence", s.CurrentHolders)
	}
}

// seedSpinUntil and seedDecIfPositive replicate the pre-instrumentation
// originals exactly — same call structure, same closure, no counters —
// so baselineCounting below is the "current code path" the nil-sink
// zero-overhead contract is measured against.
func seedSpinUntil(budget int, cond func() bool) {
	for i := 0; ; i++ {
		if cond() {
			return
		}
		if i >= budget {
			runtime.Gosched()
			i = 0
		}
	}
}

func seedDecIfPositive(x *atomic.Int64) int64 {
	for {
		v := x.Load()
		if v <= 0 {
			return v
		}
		if x.CompareAndSwap(v, v-1) {
			return v
		}
	}
}

type baselineCounting struct {
	x    atomic.Int64
	spin int
	n, k int
}

func (c *baselineCounting) Acquire(p int) {
	checkPID(p, c.n)
	seedSpinUntil(c.spin, func() bool { return seedDecIfPositive(&c.x) > 0 })
}

func (c *baselineCounting) Release(p int) {
	checkPID(p, c.n)
	c.x.Add(1)
}

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		c := &baselineCounting{spin: defaultSpinBudget, n: 4, k: 2}
		c.x.Store(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Acquire(0)
			c.Release(0)
		}
	})
	b.Run("nilsink", func(b *testing.B) {
		c := NewCounting(4, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Acquire(0)
			c.Release(0)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		c := NewCounting(4, 2, WithMetrics(obs.New()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Acquire(0)
			c.Release(0)
		}
	})
}

// TestNilSinkOverhead asserts the nil-sink zero-overhead contract
// numerically: an uncontended acquire/release pair through the
// instrumented code with a nil sink must cost within 2% of the
// uninstrumented baseline. Timing assertions flake on loaded shared
// runners, so the strict check is opt-in via KEX_OBS_OVERHEAD_STRICT=1
// (the benchmark above always reports the numbers).
func TestNilSinkOverhead(t *testing.T) {
	if os.Getenv("KEX_OBS_OVERHEAD_STRICT") == "" {
		t.Skip("set KEX_OBS_OVERHEAD_STRICT=1 to enforce the 2% bound")
	}
	best := func(f func(b *testing.B)) float64 {
		lo := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if lo == 0 || ns < lo {
				lo = ns
			}
		}
		return lo
	}
	base := best(func(b *testing.B) {
		c := &baselineCounting{spin: defaultSpinBudget, n: 4, k: 2}
		c.x.Store(2)
		for i := 0; i < b.N; i++ {
			c.Acquire(0)
			c.Release(0)
		}
	})
	nilSink := best(func(b *testing.B) {
		c := NewCounting(4, 2)
		for i := 0; i < b.N; i++ {
			c.Acquire(0)
			c.Release(0)
		}
	})
	if nilSink > base*1.02 {
		t.Fatalf("nil-sink overhead: baseline %.2fns/op, nil sink %.2fns/op (>2%%)", base, nilSink)
	}
	t.Logf("baseline %.2fns/op, nil sink %.2fns/op", base, nilSink)
}
