package core

import (
	"fmt"
	"runtime"
	"testing"
)

// TestDegreeOfExclusion is the shared table-driven safety test: for
// every registered implementation and a spread of (n, k) shapes, a
// concurrent-holder counter must never exceed K — checked at several
// GOMAXPROCS settings, because both the single-threaded (pure Gosched
// interleaving) and the genuinely parallel schedules have caught
// distinct bug classes in spin protocols. Run it under -race; the
// counter doubles as a happens-before probe for the acquire/release
// edges.
func TestDegreeOfExclusion(t *testing.T) {
	shapes := []struct{ n, k int }{{4, 1}, {5, 2}, {8, 3}, {7, 7}, {12, 4}}
	procs := []int{1, 4, runtime.NumCPU()}
	if procs[2] == procs[1] || procs[2] == procs[0] {
		procs = procs[:2] // NumCPU duplicates a fixed setting
	}
	for _, gmp := range procs {
		prev := runtime.GOMAXPROCS(gmp)
		for _, c := range Registry() {
			for _, sh := range shapes {
				k := sh.k
				if c.FixedK != 0 {
					if sh.k != 1 {
						continue
					}
					k = c.FixedK
				}
				t.Run(fmt.Sprintf("gomaxprocs%d/%s/N%dk%d", gmp, c.Name, sh.n, k), func(t *testing.T) {
					exercise(t, c.New(sh.n, k), 40)
				})
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

func TestRegistryByName(t *testing.T) {
	for _, c := range Registry() {
		got, err := ByName(c.Name)
		if err != nil || got.Name != c.Name {
			t.Errorf("ByName(%q) = %v, %v", c.Name, got.Name, err)
		}
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("expected error for unknown name")
	}
	names := Names()
	if len(names) != len(Registry()) {
		t.Errorf("Names() has %d entries, registry %d", len(names), len(Registry()))
	}
}

func TestRegistryMCSRejectsK(t *testing.T) {
	mcs, err := ByName("mcs")
	if err != nil {
		t.Fatal(err)
	}
	if mcs.Resilient || mcs.FixedK != 1 {
		t.Fatalf("mcs must be registered non-resilient with FixedK=1: %+v", mcs)
	}
	defer func() {
		if recover() == nil {
			t.Error("mcs constructor must panic for k != 1")
		}
	}()
	mcs.New(4, 2)
}

// TestRegistryShapesAgree: the registry's constructors honour the
// shape they are given — guards against a registry entry wiring the
// wrong constructor.
func TestRegistryShapesAgree(t *testing.T) {
	for _, c := range Registry() {
		k := 2
		if c.FixedK != 0 {
			k = c.FixedK
		}
		kx := c.New(6, k)
		if kx.N() != 6 || kx.K() != k {
			t.Errorf("%s: built (N=%d,K=%d), want (6,%d)", c.Name, kx.N(), kx.K(), k)
		}
	}
}
