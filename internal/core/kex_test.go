package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// builders enumerates every registered k-exclusion implementation that
// supports arbitrary (n, k) shapes; fixed-k entries (MCS) have
// dedicated coverage in mcs_test.go.
func builders() map[string]func(n, k int) KExclusion {
	m := make(map[string]func(n, k int) KExclusion)
	for _, c := range Registry() {
		if c.FixedK != 0 {
			continue
		}
		m[c.Name] = func(n, k int) KExclusion { return c.New(n, k) }
	}
	return m
}

// exercise runs n goroutines through rounds acquisitions each, asserting
// the k-exclusion invariant with an occupancy counter.
func exercise(t *testing.T, kx KExclusion, rounds int) {
	t.Helper()
	n, k := kx.N(), kx.K()
	var (
		occupancy atomic.Int64
		maxSeen   atomic.Int64
		wg        sync.WaitGroup
	)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				kx.Acquire(p)
				occ := occupancy.Add(1)
				for {
					m := maxSeen.Load()
					if occ <= m || maxSeen.CompareAndSwap(m, occ) {
						break
					}
				}
				// A short critical section with a scheduling point so
				// overlap actually happens on a single-CPU host.
				if r%2 == 0 {
					time.Sleep(time.Microsecond)
				}
				occupancy.Add(-1)
				kx.Release(p)
			}
		}(p)
	}
	wg.Wait()
	if got := maxSeen.Load(); got > int64(k) {
		t.Fatalf("k-exclusion violated: %d goroutines in CS, k=%d", got, k)
	}
	if occupancy.Load() != 0 {
		t.Fatalf("occupancy counter not balanced: %d", occupancy.Load())
	}
}

func TestExclusionInvariant(t *testing.T) {
	shapes := []struct{ n, k int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 4}, {6, 2}, {8, 3}, {16, 4}, {9, 8},
	}
	for name, build := range builders() {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/N%dk%d", name, sh.n, sh.k), func(t *testing.T) {
				exercise(t, build(sh.n, sh.k), 60)
			})
		}
	}
}

// TestAbandonedHoldersCostOnlySlots is the paper's resiliency property,
// natively: j < k goroutines acquire and never release (simulating
// undetected failures); the survivors must still make progress — the
// failures cost j slots, not liveness.
func TestAbandonedHoldersCostOnlySlots(t *testing.T) {
	for name, build := range builders() {
		if name == "chansem" || name == "counting" {
			// Baselines are also resilient in this sense; keep them in.
		}
		t.Run(name, func(t *testing.T) {
			n, k := 8, 3
			kx := build(n, k)
			// Two "failed" holders (j = k-1).
			for p := 0; p < k-1; p++ {
				kx.Acquire(p)
			}
			// The remaining goroutines share the last slot.
			var wg sync.WaitGroup
			var done atomic.Int64
			for p := k - 1; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 20; r++ {
						kx.Acquire(p)
						done.Add(1)
						kx.Release(p)
					}
				}(p)
			}
			finished := make(chan struct{})
			go func() { wg.Wait(); close(finished) }()
			select {
			case <-finished:
			case <-time.After(30 * time.Second):
				t.Fatalf("survivors starved after %d acquisitions with %d abandoned holders",
					done.Load(), k-1)
			}
		})
	}
}

// TestMutualExclusionDataRace drives k=1 instances with a deliberately
// racy critical section; under -race this verifies the acquire/release
// pair establishes happens-before edges.
func TestMutualExclusionDataRace(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			kx := build(4, 1)
			shared := 0 // unsynchronized: protected only by the lock
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 50; r++ {
						kx.Acquire(p)
						shared++
						kx.Release(p)
					}
				}(p)
			}
			wg.Wait()
			if shared != 4*50 {
				t.Fatalf("lost updates: shared=%d want %d", shared, 4*50)
			}
		})
	}
}

func TestCountingTryAcquire(t *testing.T) {
	c := NewCounting(4, 2)
	if !c.TryAcquire(0) || !c.TryAcquire(1) {
		t.Fatal("TryAcquire should win while slots remain")
	}
	if c.TryAcquire(2) {
		t.Fatal("TryAcquire should fail with no slots")
	}
	c.Release(0)
	if !c.TryAcquire(2) {
		t.Fatal("TryAcquire should win after release")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("k=0", func() { NewInductive(4, 0) })
	mustPanic("n=0", func() { NewTree(0, 1) })
	mustPanic("bad pid", func() { NewFastPath(4, 2).Acquire(4) })
	mustPanic("negative pid", func() { NewLocalSpin(4, 2).Acquire(-1) })
}

func TestAccessors(t *testing.T) {
	for name, build := range builders() {
		kx := build(6, 2)
		if kx.N() != 6 || kx.K() != 2 {
			t.Errorf("%s: accessors wrong: N=%d K=%d", name, kx.N(), kx.K())
		}
	}
}

func TestNLessEqualK(t *testing.T) {
	// Degenerate shapes: k >= n means no synchronization needed; all
	// implementations must still work.
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			exercise(t, build(3, 3), 30)
		})
	}
}

func TestDecIfPositive(t *testing.T) {
	var x atomic.Int64
	x.Store(2)
	if decIfPositive(&x, nil) != 2 || decIfPositive(&x, nil) != 1 {
		t.Fatal("decrements wrong")
	}
	if decIfPositive(&x, nil) != 0 || x.Load() != 0 {
		t.Fatal("bounded decrement must stop at zero")
	}
	x.Store(-3)
	if decIfPositive(&x, nil) != -3 || x.Load() != -3 {
		t.Fatal("bounded decrement must not touch negative values")
	}
}

// TestQuickShapes property-tests random (n,k,rounds) shapes for the
// composition-heavy implementations.
func TestQuickShapes(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := 1 + int(rawN%10)
		k := 1 + int(rawK)%n
		for _, build := range []func(n, k int) KExclusion{
			func(n, k int) KExclusion { return NewFastPath(n, k) },
			func(n, k int) KExclusion { return NewGraceful(n, k) },
			func(n, k int) KExclusion { return NewLocalSpinFastPath(n, k) },
		} {
			kx := build(n, k)
			var occ, bad atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 10; r++ {
						kx.Acquire(p)
						if occ.Add(1) > int64(k) {
							bad.Store(1)
						}
						occ.Add(-1)
						kx.Release(p)
					}
				}(p)
			}
			wg.Wait()
			if bad.Load() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWithSpinBudgetOption(t *testing.T) {
	kx := NewInductive(4, 2, WithSpinBudget(8))
	if kx.chain.spin != 8 {
		t.Fatalf("spin budget not applied: %d", kx.chain.spin)
	}
	ls := NewLocalSpin(4, 2, WithSpinBudget(128))
	if ls.chain.layers[0].spin != 128 {
		t.Fatalf("spin budget not applied to local-spin: %d", ls.chain.layers[0].spin)
	}
	// The option must not leak between instances.
	def := NewInductive(4, 2)
	if def.chain.spin != defaultSpinBudget {
		t.Fatalf("default budget wrong: %d", def.chain.spin)
	}
}
