package resilient

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"kexclusion/internal/core"
	"kexclusion/internal/renaming"
)

func TestUniversalSequential(t *testing.T) {
	u := NewUniversal[int64](3, 10, nil)
	got := u.Apply(0, func(s int64) (int64, any) { return s + 5, s + 5 })
	if got.(int64) != 15 {
		t.Fatalf("apply result = %v, want 15", got)
	}
	got = u.Apply(2, func(s int64) (int64, any) { return s * 2, s * 2 })
	if got.(int64) != 30 || u.Peek() != 30 {
		t.Fatalf("state = %v / %d, want 30", got, u.Peek())
	}
}

func TestUniversalAppliesEachOpExactlyOnce(t *testing.T) {
	// Helpers may *execute* an op several times against throwaway
	// copies, but its effect lands in the linearized state exactly
	// once: k processes each add 1 repeatedly; the final state is the
	// exact total.
	k, rounds := 4, 200
	u := NewUniversal[int64](k, 0, nil)
	var wg sync.WaitGroup
	for name := 0; name < k; name++ {
		wg.Add(1)
		go func(name int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				u.Apply(name, func(s int64) (int64, any) { return s + 1, nil })
			}
		}(name)
	}
	wg.Wait()
	if got := u.Peek(); got != int64(k*rounds) {
		t.Fatalf("final state %d, want %d (lost or duplicated ops)", got, k*rounds)
	}
}

func TestUniversalResultsPerName(t *testing.T) {
	// Each process must get its own op's result even when another
	// process's helping installed it.
	k := 3
	u := NewUniversal[int64](k, 0, nil)
	var wg sync.WaitGroup
	for name := 0; name < k; name++ {
		wg.Add(1)
		go func(name int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				res := u.Apply(name, func(s int64) (int64, any) {
					return s + 1, int64(name*1000 + r)
				})
				if res.(int64) != int64(name*1000+r) {
					t.Errorf("name %d round %d got foreign result %v", name, r, res)
					return
				}
			}
		}(name)
	}
	wg.Wait()
}

func TestUniversalValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad name")
		}
	}()
	u := NewUniversal[int](2, 0, nil)
	u.Apply(2, func(s int) (int, any) { return s, nil })
}

func TestCounterLinearizedTotal(t *testing.T) {
	n, k := 8, 3
	c := NewCounter(n, k)
	rounds := 100
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c.Add(p, 1)
			}
		}(p)
	}
	wg.Wait()
	if got := c.Value(0); got != int64(n*rounds) {
		t.Fatalf("counter = %d, want %d", got, n*rounds)
	}
}

func TestCounterMonotoneReads(t *testing.T) {
	n, k := 4, 2
	c := NewCounter(n, k)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.Value(0)
			if v < last {
				t.Errorf("non-monotone read: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	for p := 1; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < 150; r++ {
				c.Add(p, 1)
			}
		}(p)
	}
	// Wait for the writers (they are wg members 2..n), then stop the reader.
	time.Sleep(time.Millisecond)
	for c.Value(0) < int64((n-1)*150) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

func TestQueueFIFOPerProducer(t *testing.T) {
	n, k := 6, 2
	q := NewQueue[[2]int](n, k)
	producers, items := 3, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				q.Enqueue(p, [2]int{p, i})
			}
		}(p)
	}
	var mu sync.Mutex
	got := make(map[int][]int)
	for p := producers; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				v, ok := q.Dequeue(p)
				if !ok {
					mu.Lock()
					total := 0
					for _, s := range got {
						total += len(s)
					}
					mu.Unlock()
					if total == producers*items {
						return
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				mu.Lock()
				got[v[0]] = append(got[v[0]], v[1])
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < producers; p++ {
		seq := got[p]
		if len(seq) != items {
			t.Fatalf("producer %d: %d items consumed, want %d", p, len(seq), items)
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				t.Fatalf("producer %d order violated: %v", p, seq)
			}
		}
	}
}

func TestRegisterCompareAndSet(t *testing.T) {
	n, k := 6, 3
	r := NewRegister(n, k, 0)
	// n goroutines race CAS-increments; exactly one wins each value.
	var wg sync.WaitGroup
	var wins atomic.Int64
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cur := r.Read(p)
				if r.CompareAndSet(p, cur, cur+1) {
					wins.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	if got := int64(r.Read(0)); got != wins.Load() {
		t.Fatalf("register %d != successful CAS count %d", got, wins.Load())
	}
}

// TestMethodologyResilience is the paper's headline claim, end to end:
// k-1 processes fail while holding slots of the k-assignment wrapper
// (the worst place to fail), and every remaining process still completes
// operations on the wait-free core.
func TestMethodologyResilience(t *testing.T) {
	n, k := 8, 3
	excl := core.NewFastPath(n, k)
	asg := renaming.NewAssignment(excl)
	u := NewUniversal[int64](k, 0, nil)

	// k-1 processes "fail" while inside the wrapper: they acquire a
	// slot and name and never come back.
	for p := 0; p < k-1; p++ {
		name := asg.Acquire(p)
		// Announce an operation too, as a process that died mid-Apply
		// would have; helpers must apply it exactly once.
		_ = name
	}

	var wg sync.WaitGroup
	var done atomic.Int64
	for p := k - 1; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				name := asg.Acquire(p)
				u.Apply(name, func(s int64) (int64, any) { return s + 1, nil })
				asg.Release(p, name)
				done.Add(1)
			}
		}(p)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatalf("survivors starved: only %d ops completed", done.Load())
	}
	if got := u.Peek(); got != int64((n-k+1)*50) {
		t.Fatalf("state %d, want %d", got, (n-k+1)*50)
	}
}

// TestSharedResilientCounterWithCustomExclusion exercises the Config
// hook with every exclusion algorithm.
func TestSharedResilientCounterWithCustomExclusion(t *testing.T) {
	n, k := 6, 2
	for name, excl := range map[string]core.KExclusion{
		"inductive": core.NewInductive(n, k),
		"localspin": core.NewLocalSpin(n, k),
		"graceful":  core.NewGraceful(n, k),
	} {
		t.Run(name, func(t *testing.T) {
			s := NewSharedConfig(n, k, int64(0), nil, Config{Excl: excl})
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < 40; r++ {
						s.Apply(p, func(v int64) (int64, any) { return v + 1, nil })
					}
				}(p)
			}
			wg.Wait()
			if got := s.Peek(); got != int64(n*40) {
				t.Fatalf("counter = %d, want %d", got, n*40)
			}
		})
	}
}

// TestQuickRegisterSequences property-tests the register against a
// sequential model under a single process.
func TestQuickRegisterSequences(t *testing.T) {
	f := func(writes []int16) bool {
		r := NewRegister(2, 1, 0)
		model := 0
		for _, w := range writes {
			r.Write(0, int(w))
			model = int(w)
			if r.Read(1) != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedAccessors covers the trivial accessors.
func TestSharedAccessors(t *testing.T) {
	s := NewShared(5, 2, 0, nil)
	if s.N() != 5 || s.K() != 2 {
		t.Fatalf("accessors wrong: N=%d K=%d", s.N(), s.K())
	}
	u := NewUniversal(3, 0, nil)
	if u.K() != 3 {
		t.Fatal("Universal.K wrong")
	}
	if s.Peek() != 0 {
		t.Fatal("Peek on fresh object should return the initial state")
	}
}
