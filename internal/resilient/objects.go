package resilient

import "kexclusion/internal/object"

// Concrete resilient objects built on Shared, demonstrating the paper's
// methodology on the object types its introduction motivates.

// Counter is a (k-1)-resilient shared counter for n processes.
type Counter struct {
	s *Shared[int64]
}

// NewCounter creates a resilient counter.
func NewCounter(n, k int) *Counter {
	return &Counter{s: NewShared[int64](n, k, 0, nil)}
}

// Add adds delta as process p and returns the new value.
func (c *Counter) Add(p int, delta int64) int64 {
	v := c.s.Apply(p, func(s int64) (int64, any) {
		s += delta
		return s, s
	})
	return v.(int64)
}

// Value reads the counter as process p (linearized with updates).
func (c *Counter) Value(p int) int64 {
	v := c.s.Apply(p, func(s int64) (int64, any) { return s, s })
	return v.(int64)
}

// Queue is a (k-1)-resilient FIFO queue for n processes. Its state is
// a copy-on-write chunked deque (object.Deque), so the clone the
// universal construction takes before every speculative execution
// copies a fixed-size chunk spine — O(len/chunk) pointers — instead of
// every element the queue holds. The earlier []T representation cloned
// all of it, which made each operation on a queue of m elements cost
// O(m) copying; BenchmarkQueueDeepVsSliceClone pins the difference.
type Queue[T any] struct {
	s *Shared[object.Deque[T]]
}

// NewQueue creates a resilient FIFO queue.
func NewQueue[T any](n, k int) *Queue[T] {
	clone := func(d object.Deque[T]) object.Deque[T] { return d.Clone() }
	return &Queue[T]{s: NewShared(n, k, object.Deque[T]{}, clone)}
}

// Enqueue appends v as process p.
func (q *Queue[T]) Enqueue(p int, v T) {
	q.s.Apply(p, func(d object.Deque[T]) (object.Deque[T], any) {
		d.PushBack(v)
		return d, nil
	})
}

// Dequeue removes and returns the head as process p; ok is false if the
// queue was empty.
func (q *Queue[T]) Dequeue(p int) (v T, ok bool) {
	r := q.s.Apply(p, func(d object.Deque[T]) (object.Deque[T], any) {
		v, ok := d.PopFront()
		return d, dequeued[T]{v: v, ok: ok}
	})
	d := r.(dequeued[T])
	return d.v, d.ok
}

// Len reports the queue length as process p.
func (q *Queue[T]) Len(p int) int {
	r := q.s.Apply(p, func(d object.Deque[T]) (object.Deque[T], any) { return d, d.Len() })
	return r.(int)
}

type dequeued[T any] struct {
	v  T
	ok bool
}

// Stack is a (k-1)-resilient LIFO stack for n processes.
type Stack[T any] struct {
	s *Shared[[]T]
}

// NewStack creates a resilient stack.
func NewStack[T any](n, k int) *Stack[T] {
	clone := func(s []T) []T { return append([]T(nil), s...) }
	return &Stack[T]{s: NewShared(n, k, []T(nil), clone)}
}

// Push pushes v as process p.
func (st *Stack[T]) Push(p int, v T) {
	st.s.Apply(p, func(s []T) ([]T, any) {
		return append(s, v), nil
	})
}

// Pop removes and returns the top as process p; ok is false if empty.
func (st *Stack[T]) Pop(p int) (v T, ok bool) {
	r := st.s.Apply(p, func(s []T) ([]T, any) {
		if len(s) == 0 {
			return s, dequeued[T]{}
		}
		return s[:len(s)-1], dequeued[T]{v: s[len(s)-1], ok: true}
	})
	d := r.(dequeued[T])
	return d.v, d.ok
}

// Len reports the stack depth as process p.
func (st *Stack[T]) Len(p int) int {
	r := st.s.Apply(p, func(s []T) ([]T, any) { return s, len(s) })
	return r.(int)
}

// Store is a (k-1)-resilient key-value map for n processes.
type Store[K comparable, V any] struct {
	s *Shared[map[K]V]
}

// NewStore creates a resilient key-value store.
func NewStore[K comparable, V any](n, k int) *Store[K, V] {
	clone := func(m map[K]V) map[K]V {
		out := make(map[K]V, len(m))
		for key, v := range m {
			out[key] = v
		}
		return out
	}
	return &Store[K, V]{s: NewShared(n, k, make(map[K]V), clone)}
}

// Put stores v under key as process p.
func (kv *Store[K, V]) Put(p int, key K, v V) {
	kv.s.Apply(p, func(m map[K]V) (map[K]V, any) {
		m[key] = v // helpers operate on clones, so in-place is safe
		return m, nil
	})
}

// Get reads key as process p.
func (kv *Store[K, V]) Get(p int, key K) (V, bool) {
	r := kv.s.Apply(p, func(m map[K]V) (map[K]V, any) {
		v, ok := m[key]
		return m, dequeued[V]{v: v, ok: ok}
	})
	d := r.(dequeued[V])
	return d.v, d.ok
}

// Delete removes key as process p, reporting whether it was present.
func (kv *Store[K, V]) Delete(p int, key K) bool {
	r := kv.s.Apply(p, func(m map[K]V) (map[K]V, any) {
		_, ok := m[key]
		delete(m, key)
		return m, ok
	})
	return r.(bool)
}

// Len reports the number of keys as process p.
func (kv *Store[K, V]) Len(p int) int {
	r := kv.s.Apply(p, func(m map[K]V) (map[K]V, any) { return m, len(m) })
	return r.(int)
}

// Register is a (k-1)-resilient read/write register with a
// compare-and-set extension.
type Register[T comparable] struct {
	s *Shared[T]
}

// NewRegister creates a resilient register with the given initial value.
func NewRegister[T comparable](n, k int, initial T) *Register[T] {
	return &Register[T]{s: NewShared(n, k, initial, nil)}
}

// Read returns the current value as process p.
func (r *Register[T]) Read(p int) T {
	v := r.s.Apply(p, func(s T) (T, any) { return s, s })
	return v.(T)
}

// Write stores v as process p.
func (r *Register[T]) Write(p int, v T) {
	r.s.Apply(p, func(T) (T, any) { return v, nil })
}

// CompareAndSet writes v if the register equals old, reporting success —
// stronger-than-register semantics for free, since every Op runs
// atomically in the universal construction.
func (r *Register[T]) CompareAndSet(p int, old, v T) bool {
	res := r.s.Apply(p, func(s T) (T, any) {
		if s == old {
			return v, true
		}
		return s, false
	})
	return res.(bool)
}
