package resilient

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSnapshotSequential(t *testing.T) {
	s := NewSnapshot[int](3)
	if got := s.Scan(); len(got) != 3 || got[0] != 0 || got[2] != 0 {
		t.Fatalf("fresh scan = %v", got)
	}
	s.Update(0, 10)
	s.Update(2, 30)
	if got := s.Scan(); got[0] != 10 || got[1] != 0 || got[2] != 30 {
		t.Fatalf("scan = %v, want [10 0 30]", got)
	}
	s.Update(0, 11)
	if got := s.Scan(); got[0] != 11 {
		t.Fatalf("scan = %v, want slot 0 = 11", got)
	}
	if s.K() != 3 {
		t.Fatal("K wrong")
	}
}

func TestSnapshotValidation(t *testing.T) {
	s := NewSnapshot[int](2)
	for _, f := range []func(){
		func() { s.Update(2, 1) },
		func() { s.Update(-1, 1) },
		func() { NewSnapshot[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestSnapshotMonotoneViews: writers publish strictly increasing values;
// every scan must be a consistent cut, so per-slot values seen by a
// single scanner across consecutive scans never go backwards.
func TestSnapshotMonotoneViews(t *testing.T) {
	const k = 4
	s := NewSnapshot[int](k)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				s.Update(w, v)
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	prev := make([]int, k)
	scans := 0
	for time.Now().Before(deadline) {
		view := s.Scan()
		scans++
		for i := range view {
			if view[i] < prev[i] {
				close(stop)
				wg.Wait()
				t.Fatalf("slot %d went backwards: %d after %d", i, view[i], prev[i])
			}
			prev[i] = view[i]
		}
	}
	close(stop)
	wg.Wait()
	if scans == 0 {
		t.Fatal("no scans completed: Scan is not wait-free under churn")
	}
}

// TestSnapshotScanIsConsistentCut: with two slots updated in lockstep
// (slot 1 always written after slot 0 with the same round number), a
// consistent cut can never show slot 1 ahead of slot 0.
func TestSnapshotScanIsConsistentCut(t *testing.T) {
	s := NewSnapshot[int](2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Update(0, round)
			s.Update(1, round)
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		view := s.Scan()
		if view[1] > view[0] {
			close(stop)
			wg.Wait()
			t.Fatalf("inconsistent cut: slot1=%d written after slot0=%d", view[1], view[0])
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotScannerProgressUnderChurn: a pure scanner makes progress
// even when every writer updates continuously (the double-collect alone
// would livelock; the embedded views guarantee termination).
func TestSnapshotScannerProgressUnderChurn(t *testing.T) {
	const k = 3
	s := NewSnapshot[int](k)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				s.Update(w, v)
			}
		}(w)
	}
	var scans atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Scan()
			scans.Add(1)
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if scans.Load() < 10 {
		t.Fatalf("scanner starved: only %d scans under churn", scans.Load())
	}
}
