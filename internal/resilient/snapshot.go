package resilient

import (
	"fmt"
	"sync/atomic"
)

// Snapshot is a wait-free single-writer atomic snapshot object for k
// processes (Afek et al.'s construction), the object class the paper's
// footnote 1 singles out: its operations return O(k) state, so it is the
// textbook example of a wait-free k-process core to place inside the
// k-assignment wrapper — slot i is written by whichever process
// currently holds name i.
//
// Update(i, v) writes slot i; Scan returns a consistent cut of all k
// slots: every returned vector was the simultaneous contents of the
// slots at some instant between the invocation and the response.
type Snapshot[T any] struct {
	segs []segSlot[T]
	k    int
}

type segSlot[T any] struct {
	p atomic.Pointer[segment[T]]
	_ [48]byte
}

// segment is one slot's register: the value, a sequence number, and the
// embedded snapshot the writer took just before writing (the helping
// that makes Scan wait-free).
type segment[T any] struct {
	value T
	seq   uint64
	view  []T
}

// NewSnapshot creates a snapshot object with k slots holding zero
// values.
func NewSnapshot[T any](k int) *Snapshot[T] {
	if k < 1 {
		panic(fmt.Sprintf("resilient: k must be at least 1, got %d", k))
	}
	s := &Snapshot[T]{segs: make([]segSlot[T], k), k: k}
	for i := range s.segs {
		s.segs[i].p.Store(&segment[T]{})
	}
	return s
}

// K reports the number of slots.
func (s *Snapshot[T]) K() int { return s.k }

// Update writes v into slot i. It embeds a fresh scan so that
// concurrent scanners who observe this writer move twice can adopt its
// view instead of retrying forever.
func (s *Snapshot[T]) Update(i int, v T) {
	if i < 0 || i >= s.k {
		panic(fmt.Sprintf("resilient: slot %d out of range [0,%d)", i, s.k))
	}
	view := s.Scan()
	old := s.segs[i].p.Load()
	s.segs[i].p.Store(&segment[T]{value: v, seq: old.seq + 1, view: view})
}

// Scan returns a consistent view of all k slots. Wait-free: either two
// consecutive collects are identical (a clean double collect), or some
// writer moved twice during the scan, in which case its second write
// embeds a view taken entirely within our interval, which we borrow.
func (s *Snapshot[T]) Scan() []T {
	first := s.collect()
	moved := make([]bool, s.k)
	for {
		a := s.collect()
		b := s.collect()
		if same(a, b) {
			out := make([]T, s.k)
			for i, seg := range b {
				out[i] = seg.value
			}
			return out
		}
		for i := range a {
			if a[i] != b[i] || a[i] != first[i] {
				if moved[i] {
					// Slot i moved twice since the scan began: its
					// latest embedded view was taken inside our
					// interval.
					view := b[i].view
					out := make([]T, s.k)
					copy(out, view)
					return out
				}
				moved[i] = true
			}
		}
		first = b
	}
}

func (s *Snapshot[T]) collect() []*segment[T] {
	out := make([]*segment[T], s.k)
	for i := range s.segs {
		out[i] = s.segs[i].p.Load()
	}
	return out
}

func same[T any](a, b []*segment[T]) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
