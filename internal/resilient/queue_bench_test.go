package resilient

import (
	"fmt"
	"testing"
)

// BenchmarkQueueDeepVsSliceClone is satellite evidence for the Queue
// representation change: the universal construction clones the state
// before every speculative execution, so a []T-backed queue paid O(m)
// element copying per operation on a queue holding m elements, while
// the chunked COW deque copies only the chunk spine. The two cases
// run the same enqueue+dequeue workload against queues pre-filled to
// the given depth; the deque's per-op cost should stay near-flat as
// depth grows while the slice's grows linearly.
func BenchmarkQueueDeepVsSliceClone(b *testing.B) {
	for _, depth := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("deque/depth=%d", depth), func(b *testing.B) {
			q := NewQueue[int64](4, 2)
			for i := 0; i < depth; i++ {
				q.Enqueue(0, int64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(0, int64(i))
				q.Dequeue(0)
			}
		})
		b.Run(fmt.Sprintf("slice/depth=%d", depth), func(b *testing.B) {
			q := newSliceQueue[int64](4, 2)
			for i := 0; i < depth; i++ {
				q.Enqueue(0, int64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(0, int64(i))
				q.Dequeue(0)
			}
		})
	}
}

// sliceQueue is the pre-change representation, kept test-side as the
// benchmark baseline.
type sliceQueue[T any] struct {
	s *Shared[[]T]
}

func newSliceQueue[T any](n, k int) *sliceQueue[T] {
	clone := func(s []T) []T { return append([]T(nil), s...) }
	return &sliceQueue[T]{s: NewShared(n, k, []T(nil), clone)}
}

func (q *sliceQueue[T]) Enqueue(p int, v T) {
	q.s.Apply(p, func(s []T) ([]T, any) { return append(s, v), nil })
}

func (q *sliceQueue[T]) Dequeue(p int) (v T, ok bool) {
	r := q.s.Apply(p, func(s []T) ([]T, any) {
		if len(s) == 0 {
			return s, dequeued[T]{}
		}
		return s[1:], dequeued[T]{v: s[0], ok: true}
	})
	d := r.(dequeued[T])
	return d.v, d.ok
}

// TestQueueDequeBehaviorUnchanged re-runs FIFO semantics against the
// new representation at depths that cross chunk boundaries.
func TestQueueDequeBehaviorUnchanged(t *testing.T) {
	q := NewQueue[int](4, 2)
	const total = 1000 // crosses several 64-element chunks
	for i := 0; i < total; i++ {
		q.Enqueue(i%4, i)
	}
	if n := q.Len(0); n != total {
		t.Fatalf("Len = %d, want %d", n, total)
	}
	for i := 0; i < total; i++ {
		v, ok := q.Dequeue(i % 4)
		if !ok || v != i {
			t.Fatalf("Dequeue %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("Dequeue on empty reported ok")
	}
	// Interleaved enqueue/dequeue across a chunk seam.
	for i := 0; i < 200; i++ {
		q.Enqueue(0, i)
		if v, ok := q.Dequeue(1); !ok || v != i {
			t.Fatalf("interleaved Dequeue %d = %d, %v", i, v, ok)
		}
	}
}
