package resilient

import (
	"context"
	"errors"
	"sync"
	"testing"

	"kexclusion/internal/obs"
)

func TestApplyCtxExactlyOnceOrNotAtAll(t *testing.T) {
	const n, k = 6, 2
	m := obs.New()
	s := NewSharedConfig(n, k, int64(0), nil, Config{Metrics: m})
	inc := func(st int64) (int64, any) { return st + 1, st + 1 }

	// Occupy both slots with ops parked inside the critical section.
	var hold sync.WaitGroup
	entered := make(chan int, k)
	release := make(chan struct{})
	for p := 0; p < k; p++ {
		hold.Add(1)
		go func(p int) {
			defer hold.Done()
			s.Apply(p, func(st int64) (int64, any) {
				entered <- p
				<-release
				return st + 1, st + 1
			})
		}(p)
	}
	for i := 0; i < k; i++ {
		<-entered
	}

	// A third process with an expired context withdraws: its op is not
	// applied and no capacity is consumed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ApplyCtx(ctx, k, inc); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx on full object = %v, want context.Canceled", err)
	}

	close(release)
	hold.Wait()

	// The withdrawn op must not have been applied; the retried op must
	// apply exactly once.
	if got := s.Peek(); got != int64(k) {
		t.Fatalf("state = %d after %d held ops and one withdrawal, want %d", got, k, k)
	}
	v, err := s.ApplyCtx(context.Background(), k, inc)
	if err != nil {
		t.Fatalf("ApplyCtx retry = %v", err)
	}
	if v != int64(k+1) || s.Peek() != int64(k+1) {
		t.Fatalf("retry result %v, state %d; want %d", v, s.Peek(), k+1)
	}
	if got := m.Snapshot().Aborts; got < 1 {
		t.Fatalf("aborts = %d, want >= 1 after withdrawal", got)
	}
}

func TestApplyCtxConcurrentMixedDeadlines(t *testing.T) {
	const n, k, iters = 8, 2, 50
	s := NewShared(n, k, int64(0), nil)
	inc := func(st int64) (int64, any) { return st + 1, nil }

	var applied int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%4 == 0 {
					cancel() // pre-expired: may still succeed uncontended
				}
				_, err := s.ApplyCtx(ctx, p, inc)
				cancel()
				if err == nil {
					mu.Lock()
					applied++
					mu.Unlock()
				}
			}
		}(p)
	}
	wg.Wait()
	if got := s.Peek(); got != applied {
		t.Fatalf("state %d != successful ApplyCtx count %d: an op was lost or doubled", got, applied)
	}
}
