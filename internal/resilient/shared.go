package resilient

import (
	"context"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
)

// Shared is the paper's resilient shared object: a wait-free k-process
// core (Universal) encased in an (N,k)-assignment wrapper. Any of N
// processes may call Apply; at most k are inside the core at a time,
// each under a unique name. The object is (k-1)-resilient: operations by
// live processes complete in a bounded number of steps provided fewer
// than k processes fail, and a failed process costs exactly one slot.
type Shared[S any] struct {
	u   *Universal[S]
	asg *renaming.Assignment
}

// Config tunes the wrapper of a Shared object.
type Config struct {
	// Excl overrides the k-exclusion used by the wrapper; nil selects
	// the paper's fast-path algorithm (Theorem 9's composition), which
	// makes operations cheap whenever contention stays at or below k.
	Excl core.KExclusion
	// Metrics, when non-nil, collects acquisition metrics across the
	// whole stack: the renaming name counters and the universal core's
	// applied/helping counters, plus — when Excl is nil — the default
	// fast-path k-exclusion's counters. A caller-supplied Excl is
	// instrumented by passing core.WithMetrics at its construction,
	// typically with this same sink.
	Metrics *obs.Metrics
}

// NewShared creates a (k-1)-resilient shared object for n processes with
// the given initial state. clone copies the state (nil for value types).
func NewShared[S any](n, k int, initial S, clone func(S) S) *Shared[S] {
	return NewSharedConfig(n, k, initial, clone, Config{})
}

// NewSharedConfig is NewShared with wrapper configuration.
func NewSharedConfig[S any](n, k int, initial S, clone func(S) S, cfg Config) *Shared[S] {
	excl := cfg.Excl
	if excl == nil {
		excl = core.NewFastPath(n, k, core.WithMetrics(cfg.Metrics))
	}
	return &Shared[S]{
		u:   NewUniversal(k, initial, clone).WithMetrics(cfg.Metrics),
		asg: renaming.NewAssignment(excl).WithMetrics(cfg.Metrics),
	}
}

// Apply performs op as process p and returns its result.
func (s *Shared[S]) Apply(p int, op Op[S]) any {
	name := s.asg.Acquire(p)
	defer s.asg.Release(p, name)
	return s.u.Apply(name, op)
}

// ApplyCtx is Apply with bounded withdrawal: if ctx is done while p is
// still waiting for a slot, p withdraws from the wrapper's entry
// section — the operation is NOT applied, the object's capacity is
// untouched, and the ctx error is returned. Once a slot is granted the
// operation always runs to completion (the wait-free core is bounded),
// so a nil error means op was applied exactly once and a non-nil error
// means it was applied not at all — there is no third state, which is
// what makes timed-out operations safe to retry.
func (s *Shared[S]) ApplyCtx(ctx context.Context, p int, op Op[S]) (any, error) {
	name, err := s.asg.AcquireCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	defer s.asg.Release(p, name)
	return s.u.Apply(name, op), nil
}

// Peek returns the current state without synchronization; treat the
// result as immutable.
func (s *Shared[S]) Peek() S { return s.u.Peek() }

// K reports the resiliency parameter (the object tolerates K-1 failures).
func (s *Shared[S]) K() int { return s.asg.K() }

// N reports the number of process identities.
func (s *Shared[S]) N() int { return s.asg.N() }
