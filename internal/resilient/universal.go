// Package resilient implements the paper's §1 methodology end to end: a
// (k-1)-resilient shared object for N processes is built by encasing a
// wait-free k-process object implementation inside a k-assignment
// wrapper. The wrapper (internal/renaming over internal/core) admits at
// most k processes and hands each a unique name in 0..k-1, which indexes
// the wait-free core's announce array. The result is effectively
// wait-free whenever contention stays at or below k, tolerates up to
// k-1 undetected process failures, and its resiliency level k is chosen
// on performance grounds rather than pinned to N-1 as with wait-free
// objects — the paper's central argument.
package resilient

import (
	"fmt"
	"sync/atomic"

	"kexclusion/internal/obs"
)

// Op is an operation on an object with state S: it receives the current
// state and returns the next state and the operation's result. Ops must
// be pure functions of the state (helpers may execute them against
// copies any number of times, but each announced op's effect is applied
// exactly once).
type Op[S any] func(S) (S, any)

// Universal is a wait-free universal construction for k processes using
// compare&swap: the shared object the paper assumes exists for its
// wrapper to protect. Every operation completes within a bounded number
// of its caller's own steps regardless of the other k-1 processes,
// because helpers apply all announced operations when installing a new
// version.
//
// Callers are identified by a name in 0..k-1 and must be sequential per
// name — exactly what the k-assignment wrapper guarantees.
type Universal[S any] struct {
	head     atomic.Pointer[cell[S]]
	announce []announceSlot[S]
	clone    func(S) S
	k        int
	m        *obs.Metrics
}

type announceSlot[S any] struct {
	d atomic.Pointer[opDesc[S]]
	_ [48]byte // keep hot announce slots on separate cache lines
}

type opDesc[S any] struct {
	op  Op[S]
	seq uint64
}

// cell is one immutable version of the object: the state plus, per name,
// how many of its operations have been applied and the last result.
type cell[S any] struct {
	state S
	seq   []uint64
	res   []any
}

// NewUniversal creates a wait-free k-process object with the given
// initial state. clone must produce an independent copy of the state
// (helpers mutate copies); pass nil if S is a value type that copies by
// assignment.
func NewUniversal[S any](k int, initial S, clone func(S) S) *Universal[S] {
	if k < 1 {
		panic(fmt.Sprintf("resilient: k must be at least 1, got %d", k))
	}
	if clone == nil {
		clone = func(s S) S { return s }
	}
	u := &Universal[S]{
		announce: make([]announceSlot[S], k),
		clone:    clone,
		k:        k,
	}
	u.head.Store(&cell[S]{
		state: initial,
		seq:   make([]uint64, k),
		res:   make([]any, k),
	})
	return u
}

// K reports the number of supported processes.
func (u *Universal[S]) K() int { return u.k }

// WithMetrics attaches an observability sink counting applied
// operations and helping events; nil detaches. Returns u for chaining.
func (u *Universal[S]) WithMetrics(m *obs.Metrics) *Universal[S] {
	u.m = m
	return u
}

// Apply performs op as the process named name and returns its result.
// It is wait-free: the loop below runs at most three iterations, since
// any version installed after the announce includes the announced op.
func (u *Universal[S]) Apply(name int, op Op[S]) any {
	if name < 0 || name >= u.k {
		panic(fmt.Sprintf("resilient: name %d out of range [0,%d)", name, u.k))
	}
	var seq uint64 = 1
	if prev := u.announce[name].d.Load(); prev != nil {
		seq = prev.seq + 1
	}
	u.announce[name].d.Store(&opDesc[S]{op: op, seq: seq})

	for {
		h := u.head.Load()
		if h.seq[name] >= seq {
			u.m.OpApplied()
			return h.res[name]
		}
		u.head.CompareAndSwap(h, u.buildNext(h, name))
	}
}

// Peek returns the current state without announcing an operation. The
// returned value must be treated as immutable (it may share structure
// with the live version).
func (u *Universal[S]) Peek() S {
	return u.head.Load().state
}

// buildNext creates the successor version of h, applying every announced
// operation that h has not applied yet — the helping that makes the
// construction wait-free rather than merely lock-free. builder is the
// name of the process installing the version; operations it folds in
// for other names count as helping events. The helping count is an
// over-approximation of effects (a built version may lose its CAS), but
// it tracks the helping *work* performed, which is the observable cost.
func (u *Universal[S]) buildNext(h *cell[S], builder int) *cell[S] {
	next := &cell[S]{
		state: u.clone(h.state),
		seq:   append([]uint64(nil), h.seq...),
		res:   append([]any(nil), h.res...),
	}
	var helped int64
	for i := 0; i < u.k; i++ {
		a := u.announce[i].d.Load()
		if a != nil && a.seq == next.seq[i]+1 {
			var r any
			next.state, r = a.op(next.state)
			next.seq[i]++
			next.res[i] = r
			if i != builder {
				helped++
			}
		}
	}
	u.m.Helped(helped)
	return next
}
