package resilient

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStackSequential(t *testing.T) {
	st := NewStack[string](4, 2)
	if _, ok := st.Pop(0); ok {
		t.Fatal("pop on empty stack must fail")
	}
	st.Push(0, "a")
	st.Push(1, "b")
	if st.Len(2) != 2 {
		t.Fatal("len wrong")
	}
	if v, ok := st.Pop(3); !ok || v != "b" {
		t.Fatalf("pop = %q %v, want b", v, ok)
	}
	if v, ok := st.Pop(0); !ok || v != "a" {
		t.Fatalf("pop = %q %v, want a", v, ok)
	}
}

// TestStackConcurrentConservation: every pushed element is popped
// exactly once across concurrent pushers and poppers.
func TestStackConcurrentConservation(t *testing.T) {
	const n, k, items = 6, 2, 40
	st := NewStack[int](n, k)
	var wg sync.WaitGroup
	var popped atomic.Int64
	var sum atomic.Int64

	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				st.Push(p, p*items+i)
			}
		}(p)
	}
	for p := 3; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for popped.Load() < 3*items {
				if v, ok := st.Pop(p); ok {
					popped.Add(1)
					sum.Add(int64(v))
				}
			}
		}(p)
	}
	wg.Wait()
	wantSum := int64(0)
	for p := 0; p < 3; p++ {
		for i := 0; i < items; i++ {
			wantSum += int64(p*items + i)
		}
	}
	if sum.Load() != wantSum {
		t.Fatalf("element sum %d, want %d (lost or duplicated pops)", sum.Load(), wantSum)
	}
	if st.Len(0) != 0 {
		t.Fatalf("stack not drained: %d left", st.Len(0))
	}
}

func TestStoreSequential(t *testing.T) {
	kv := NewStore[string, int](4, 2)
	if _, ok := kv.Get(0, "x"); ok {
		t.Fatal("get on empty store must miss")
	}
	kv.Put(0, "x", 1)
	kv.Put(1, "y", 2)
	if v, ok := kv.Get(2, "x"); !ok || v != 1 {
		t.Fatalf("get x = %d %v", v, ok)
	}
	kv.Put(3, "x", 7)
	if v, _ := kv.Get(0, "x"); v != 7 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if kv.Len(1) != 2 {
		t.Fatal("len wrong")
	}
	if !kv.Delete(2, "y") || kv.Delete(2, "y") {
		t.Fatal("delete semantics wrong")
	}
	if kv.Len(1) != 1 {
		t.Fatal("len after delete wrong")
	}
}

// TestStoreConcurrentDistinctKeys: writers on distinct keys never
// clobber each other (helpers clone the map before mutating).
func TestStoreConcurrentDistinctKeys(t *testing.T) {
	const n, k, rounds = 6, 3, 50
	kv := NewStore[int, int](n, k)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				kv.Put(p, p, i)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		if v, ok := kv.Get(0, p); !ok || v != rounds {
			t.Fatalf("key %d = %d %v, want %d", p, v, ok, rounds)
		}
	}
}

// TestQuickStoreModel checks the store against a plain map under a
// sequential op stream.
func TestQuickStoreModel(t *testing.T) {
	type op struct {
		Key byte
		Val int16
		Del bool
	}
	f := func(ops []op) bool {
		kv := NewStore[byte, int16](2, 1)
		model := map[byte]int16{}
		for _, o := range ops {
			if o.Del {
				wantOK := false
				if _, ok := model[o.Key]; ok {
					wantOK = true
					delete(model, o.Key)
				}
				if kv.Delete(0, o.Key) != wantOK {
					return false
				}
			} else {
				kv.Put(0, o.Key, o.Val)
				model[o.Key] = o.Val
			}
			if kv.Len(1) != len(model) {
				return false
			}
		}
		for key, want := range model {
			if got, ok := kv.Get(0, key); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueLen(t *testing.T) {
	q := NewQueue[int](4, 2)
	if q.Len(0) != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Enqueue(1, 10)
	q.Enqueue(2, 20)
	if q.Len(3) != 2 {
		t.Fatalf("len = %d, want 2", q.Len(3))
	}
	q.Dequeue(0)
	if q.Len(0) != 1 {
		t.Fatalf("len after dequeue = %d, want 1", q.Len(0))
	}
}
