package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// queueInstance is Figure 1: (N,k)-exclusion from a queue manipulated in
// large atomic statements (the angle brackets of the paper). It stands in
// for the prior algorithms of Fischer, Lynch, Burns and Borodin compared
// in Table 1: constant cost in the absence of contention, but it requires
// unrealistically large atomic operations, a crashed waiter blocks every
// process behind it in the queue, and the waiters' busy-wait on the
// shared queue generates unbounded remote traffic under contention.
//
// Memory layout: X (slot counter), qhead (wrapped index), qcount, and a
// ring of N+1 slots. Indices wrap so the state space stays finite for
// the model checker.
type queueInstance struct {
	x, qhead, qcount, ring machine.Addr
	size                   int
	k                      int
}

func newQueueExclusion(m *machine.Mem, n, k int) *queueInstance {
	inst := &queueInstance{
		x:      m.Alloc1(machine.HomeShared),
		qhead:  m.Alloc1(machine.HomeShared),
		qcount: m.Alloc1(machine.HomeShared),
		size:   n + 1,
		k:      k,
	}
	inst.ring = m.Alloc(inst.size, machine.HomeShared)
	m.Poke(inst.x, int64(k))
	return inst
}

func (in *queueInstance) K() int { return in.k }

func (in *queueInstance) NewSession(p int) proto.Session {
	return &queueSession{inst: in, pc: q1Try}
}

const (
	q1Try  = iota // statement 1: <if f&i(X,-1) <= 0 then Enqueue(p,Q)>
	q1Wait        // statement 2: while Element(p,Q) (one evaluation per step)
	q1InCS
	q1Release // statement 3: <Dequeue(Q); f&i(X,1)>
)

type queueSession struct {
	inst *queueInstance
	pc   int
}

func (s *queueSession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case q1Try:
		// One large atomic statement: decrement and, if no slot was
		// available, enqueue. Every word it touches is charged.
		if old := m.FAA(p, in.x, -1); old <= 0 {
			head := m.Read(p, in.qhead)
			count := m.Read(p, in.qcount)
			m.Write(p, in.ring+machine.Addr((head+count)%int64(in.size)), int64(p))
			m.Write(p, in.qcount, count+1)
			s.pc = q1Wait
		} else {
			s.pc = q1InCS
			return true
		}
	case q1Wait:
		// One evaluation of Element(p,Q): scan the queue for p. This
		// is the busy-wait the paper criticizes: it is not a local
		// spin, so each re-check re-traverses shared memory.
		head := m.Read(p, in.qhead)
		count := m.Read(p, in.qcount)
		found := false
		for i := int64(0); i < count; i++ {
			if m.Read(p, in.ring+machine.Addr((head+i)%int64(in.size))) == int64(p) {
				found = true
				break
			}
		}
		if !found {
			s.pc = q1InCS
			return true
		}
	default:
		panic("fig1: StepAcquire called in wrong state")
	}
	return false
}

func (s *queueSession) StepRelease(m *machine.Mem, p int) bool {
	in := s.inst
	if s.pc != q1InCS {
		panic("fig1: StepRelease called in wrong state")
	}
	// One large atomic statement: remove the first waiting process (if
	// any) and release a slot.
	count := m.Read(p, in.qcount)
	if count > 0 {
		head := m.Read(p, in.qhead)
		m.Write(p, in.ring+machine.Addr(head%int64(in.size)), 0)
		m.Write(p, in.qhead, (head+1)%int64(in.size))
		m.Write(p, in.qcount, count-1)
	}
	m.FAA(p, in.x, 1)
	s.pc = q1Try
	return true
}

func (s *queueSession) AssignedName() int { return -1 }

func (s *queueSession) Clone() proto.Session {
	return &queueSession{inst: s.inst, pc: s.pc}
}

func (s *queueSession) Key() string { return proto.KeyF("q1:%d", s.pc) }

// Queue is the Figure 1 baseline protocol ("large critical sections",
// Table 1 rows [9] and [10]).
type Queue struct{}

func (Queue) Name() string { return "fig1-queue" }

func (Queue) Traits() proto.Traits {
	return proto.Traits{
		// A crashed process at the head of the queue blocks everyone
		// behind it: not resilient (the reason the paper rejects
		// queue-based approaches).
		Resilient:      false,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

func (Queue) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	return newQueueExclusion(m, n, k)
}
