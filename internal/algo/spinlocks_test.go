package algo

import (
	"fmt"
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// TestSpinLocksSafety checks mutual exclusion for the k=1 comparator
// locks under fair and adversarial schedules.
func TestSpinLocksSafety(t *testing.T) {
	for _, pr := range SpinLocks() {
		for _, model := range pr.Traits().Models {
			for _, n := range []int{2, 3, 5, 8} {
				t.Run(fmt.Sprintf("%s/%v/N%d", pr.Name(), model, n), func(t *testing.T) {
					for seed := int64(0); seed < 15; seed++ {
						var sched machine.Scheduler = machine.NewRoundRobin()
						if seed > 0 {
							sched = machine.NewRandom(seed)
						}
						res := proto.RunProtocol(pr, model, n, 1, proto.Config{
							Acquisitions: 4,
							Sched:        sched,
						})
						for _, v := range res.Violations {
							t.Fatal(v)
						}
						if !res.Completed {
							t.Fatalf("seed %d: incomplete", seed)
						}
						if res.MaxOccupancy != 1 {
							t.Fatalf("occupancy %d", res.MaxOccupancy)
						}
					}
				})
			}
		}
	}
}

// TestSpinLocksFIFO: both comparator locks are FIFO from the doorway
// on. Under round-robin (everyone reaches the doorway in arrival order)
// no waiter is ever overtaken; under adversarial schedules only the
// bounded doorway race can reorder (contrast: spinfaa's overtaking is
// limited only by the number of waiters — see TestBypassContrast).
func TestSpinLocksFIFO(t *testing.T) {
	for _, pr := range SpinLocks() {
		t.Run(pr.Name(), func(t *testing.T) {
			res := proto.RunProtocol(pr, machine.CacheCoherent, 6, 1, proto.Config{
				Acquisitions: 5,
			})
			if !res.Completed {
				t.Fatal("incomplete")
			}
			if res.MaxBypassed != 0 {
				t.Fatalf("%s overtook %d waiters under round-robin; queue locks are FIFO", pr.Name(), res.MaxBypassed)
			}
			for seed := int64(0); seed < 10; seed++ {
				res := proto.RunProtocol(pr, machine.CacheCoherent, 6, 1, proto.Config{
					Acquisitions: 5,
					Sched:        machine.NewRandom(seed),
				})
				if res.MaxBypassed > 2 {
					t.Fatalf("seed %d: %s overtook %d waiters; doorway race is bounded", seed, pr.Name(), res.MaxBypassed)
				}
			}
		})
	}
}

// TestBypassContrast: the naive spin counter overtakes without bound —
// under an adversarial schedule a late arrival can jump past nearly
// every waiter, which is the unfairness queue locks and the paper's
// algorithms avoid.
func TestBypassContrast(t *testing.T) {
	var worst int
	for seed := int64(0); seed < 20; seed++ {
		res := proto.RunProtocol(SpinFAA{}, machine.CacheCoherent, 8, 1, proto.Config{
			Acquisitions: 5,
			Sched:        machine.NewRandom(seed),
		})
		if res.MaxBypassed > worst {
			worst = res.MaxBypassed
		}
	}
	if worst < 5 {
		t.Fatalf("expected spinfaa to overtake most of the 7 waiters under some schedule, got %d", worst)
	}
}

// TestMCSLocalSpinCost: MCS generates O(1) remote references per
// acquisition on the DSM model even at full contention — the bar the
// paper's concluding remarks set for k=1.
func TestMCSLocalSpinCost(t *testing.T) {
	for _, n := range []int{4, 16, 32} {
		res := proto.RunProtocol(MCS{}, machine.Distributed, n, 1, proto.Config{
			Acquisitions: 4,
		})
		if !res.Completed {
			t.Fatal("incomplete")
		}
		// Entry: swap + link; exit: next-check is local, CAS or
		// handoff write: a handful of remote refs, independent of N.
		if res.MaxAcqRemote > 6 {
			t.Fatalf("N=%d: MCS cost %d remote refs, want O(1)", n, res.MaxAcqRemote)
		}
	}
}

// TestTicketInvalidationCost: the ticket lock's spin is on the shared
// grant word, so on the CC model its per-acquisition cost grows with
// contention (each release invalidates every waiter) — the behaviour
// local-spin algorithms eliminate.
func TestTicketInvalidationCost(t *testing.T) {
	cost := func(n int) uint64 {
		res := proto.RunProtocol(Ticket{}, machine.CacheCoherent, n, 1, proto.Config{
			Acquisitions: 4,
		})
		if !res.Completed {
			t.Fatal("incomplete")
		}
		return res.MaxAcqRemote
	}
	small, large := cost(4), cost(32)
	if large <= small {
		t.Fatalf("ticket lock cost should grow with contention: %d (N=4) vs %d (N=32)", small, large)
	}
}

// TestK1Comparison is the concluding-remarks experiment: at k=1 the
// paper's fast path should be within a small constant of MCS, and both
// should be far below the naive spin counter at high contention.
func TestK1Comparison(t *testing.T) {
	const n = 16
	measure := func(pr proto.Protocol) uint64 {
		var worst uint64
		for seed := int64(0); seed < 6; seed++ {
			res := proto.RunProtocol(pr, machine.Distributed, n, 1, proto.Config{
				Acquisitions: 3,
				Sched:        machine.NewRandom(seed),
			})
			for _, v := range res.Violations {
				t.Fatal(v)
			}
			if res.MaxAcqRemote > worst {
				worst = res.MaxAcqRemote
			}
		}
		return worst
	}
	mcs := measure(MCS{})
	fp := measure(FastPathDSM{})
	t.Logf("k=1, N=%d, DSM: mcs=%d dsm-fastpath=%d (paper bound %d)", n, mcs, fp,
		14*(log2ceil(n, 1)+1)+2)
	if fp > uint64(14*(log2ceil(n, 1)+1)+2) {
		t.Fatalf("fast path exceeded its bound: %d", fp)
	}
	// The resilient algorithm pays a bounded factor over MCS for its
	// fault tolerance; it must not be unboundedly worse.
	if fp > mcs*40 {
		t.Fatalf("fast path %d implausibly worse than MCS %d", fp, mcs)
	}
}

// TestSpinLockK1Guard: the comparators refuse k != 1.
func TestSpinLockK1Guard(t *testing.T) {
	for _, pr := range SpinLocks() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted k=2", pr.Name())
				}
			}()
			m := machine.NewMem(machine.CacheCoherent, 4)
			pr.Build(m, 4, 2, proto.BuildOptions{})
		}()
	}
}

// TestMCSWedgesOnWaiterCrash documents why MCS cannot serve the paper's
// purpose despite its speed: a crashed waiter wedges the whole queue.
func TestMCSWedgesOnWaiterCrash(t *testing.T) {
	res := proto.RunProtocol(MCS{}, machine.CacheCoherent, 4, 1, proto.Config{
		Acquisitions: 3,
		Crashes:      []proto.Crash{{Proc: 1, Phase: proto.PhaseEntry, AfterSteps: 3}},
		StepLimit:    20000,
	})
	if res.Completed {
		t.Fatal("MCS unexpectedly survived a waiter crash")
	}
}
