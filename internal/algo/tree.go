package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// BlockFactory builds a (2k,k)-exclusion building block. The paper uses
// the Theorem 1 chain on cache-coherent machines (BlockCC) and the
// Theorem 5 chain on distributed shared-memory machines (BlockDSM).
type BlockFactory func(m *machine.Mem, k int, opt proto.BuildOptions) proto.Instance

// treeInstance is the arbitration tree of Figure 3(a): processes are
// partitioned into ceil(N/k) leaf groups of at most k, and every internal
// node of a binary tree over the groups is a (2k,k)-exclusion block. A
// process acquires the blocks on its leaf-to-root path in order; each
// level halves the number of admitted processes until at most k reach the
// root's critical section. Depth is ceil(log2(ceil(N/k))) levels, giving
// Theorem 2's 7k*ceil(log2(N/k)) (CC) and Theorem 6's 14k*... (DSM).
type treeInstance struct {
	k int
	// path[g] lists, leaf-to-root, the blocks a process in leaf group g
	// acquires.
	path [][]proto.Instance
}

func newTree(m *machine.Mem, n, k int, block BlockFactory, opt proto.BuildOptions) proto.Instance {
	groups := (n + k - 1) / k
	if groups <= 1 {
		return proto.Trivial(k)
	}
	paths := make([][]proto.Instance, groups)
	buildSubtree(m, k, block, opt, paths, 0, groups)
	inst := &treeInstance{k: k, path: make([][]proto.Instance, groups)}
	for g := range paths {
		// buildSubtree appends root-last at each recursion level in
		// leaf-to-root order already.
		inst.path[g] = paths[g]
	}
	return inst
}

// buildSubtree constructs the arbitration tree over leaf groups
// [lo, hi) and appends each subtree's root block to the path of every
// group it covers. Recursion is top-down but blocks are appended
// post-order, so each group's path ends up ordered leaf-to-root.
func buildSubtree(m *machine.Mem, k int, block BlockFactory, opt proto.BuildOptions, paths [][]proto.Instance, lo, hi int) {
	if hi-lo <= 1 {
		return
	}
	mid := lo + (hi-lo+1)/2
	buildSubtree(m, k, block, opt, paths, lo, mid)
	buildSubtree(m, k, block, opt, paths, mid, hi)
	node := block(m, k, opt)
	for g := lo; g < hi; g++ {
		paths[g] = append(paths[g], node)
	}
}

func (t *treeInstance) K() int { return t.k }

func (t *treeInstance) NewSession(p int) proto.Session {
	g := p / t.k % len(t.path)
	blocks := t.path[g]
	s := &treeSession{sessions: make([]proto.Session, len(blocks))}
	for i, b := range blocks {
		s.sessions[i] = b.NewSession(p)
	}
	return s
}

type treeSession struct {
	sessions []proto.Session // leaf-to-root
	level    int             // next level to acquire / release progress
}

func (s *treeSession) StepAcquire(m *machine.Mem, p int) bool {
	if s.sessions[s.level].StepAcquire(m, p) {
		s.level++
		if s.level == len(s.sessions) {
			return true
		}
	}
	return false
}

func (s *treeSession) StepRelease(m *machine.Mem, p int) bool {
	// Release root-first (reverse acquisition order), unwinding the
	// path so lower levels admit successors only after the root slot
	// is free.
	if s.sessions[s.level-1].StepRelease(m, p) {
		s.level--
		if s.level == 0 {
			return true
		}
	}
	return false
}

func (s *treeSession) AssignedName() int { return -1 }

func (s *treeSession) Clone() proto.Session {
	c := &treeSession{sessions: make([]proto.Session, len(s.sessions)), level: s.level}
	for i, ss := range s.sessions {
		c.sessions[i] = ss.Clone()
	}
	return c
}

func (s *treeSession) Key() string {
	parts := make([]string, 0, len(s.sessions)+1)
	parts = append(parts, proto.KeyF("tr:%d", s.level))
	for _, ss := range s.sessions {
		parts = append(parts, ss.Key())
	}
	return proto.KeyJoin(parts...)
}

// Tree is Theorem 2: cache-coherent (N,k)-exclusion via an arbitration
// tree of (2k,k) building blocks, complexity 7k*ceil(log2(N/k)).
type Tree struct{}

func (Tree) Name() string { return "cc-tree" }

func (Tree) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent},
	}
}

func (Tree) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return newTree(m, n, k, func(m *machine.Mem, k int, _ proto.BuildOptions) proto.Instance {
		return BlockCC(m, k)
	}, opt)
}
