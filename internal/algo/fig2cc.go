// Package algo implements every algorithm in Anderson & Moir (PODC 1994)
// — Figures 1, 2, 4, 5, 6, 7 and the tree / fast-path / graceful
// compositions of Theorems 1-10 — plus the prior-work baselines compared
// in the paper's Table 1, as explicit state machines over the simulated
// machine. Each numbered statement of the paper executes as exactly one
// atomic step, so remote-reference counts match the paper's analysis.
package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// qBottom is the sentinel written to Figure 2's spin word by the exit
// section ("Q := p̄" in the paper): any value distinct from every process
// id releases the waiter.
const qBottom = -1

// fig2Instance is one (N,k)-exclusion layer of Figure 2, built over an
// inner (N,k+1)-exclusion instance (nil means the paper's "skip", valid
// when k+1 >= N).
//
// Shared variables (paper's Figure 2):
//
//	X : -1..k   counter of available slots, initially k
//	Q : 0..N-1  spin location, initially ⊥
type fig2Instance struct {
	inner proto.Instance
	x, q  machine.Addr
	k     int
}

// newFig2 allocates one Figure 2 layer in m admitting k processes, gated
// by inner (which must admit k+1, or be nil when no gating is needed).
func newFig2(m *machine.Mem, k int, inner proto.Instance) *fig2Instance {
	inst := &fig2Instance{
		inner: inner,
		x:     m.Alloc1(machine.HomeShared),
		q:     m.Alloc1(machine.HomeShared),
		k:     k,
	}
	m.Poke(inst.x, int64(k))
	m.Poke(inst.q, qBottom)
	return inst
}

func (in *fig2Instance) K() int { return in.k }

func (in *fig2Instance) NewSession(p int) proto.Session {
	s := &fig2Session{inst: in}
	if in.inner != nil {
		s.inner = in.inner.NewSession(p)
	}
	s.reset()
	return s
}

// fig2Session program counters. Statement numbers follow Figure 2.
const (
	f2Stmt1 = iota // Acquire(N,k+1)
	f2Stmt2        // if fetch_and_increment(X,-1) <= 0
	f2Stmt3        // Q := p
	f2Stmt4        // if X < 0
	f2Stmt5        // while Q = p (spin)
	f2InCS         // critical section reached
	f2Stmt6        // fetch_and_increment(X,1)
	f2Stmt7        // Q := ⊥
	f2Stmt8        // Release(N,k+1)
)

type fig2Session struct {
	inst  *fig2Instance
	inner proto.Session
	pc    int
}

func (s *fig2Session) reset() {
	if s.inner != nil {
		s.pc = f2Stmt1
	} else {
		s.pc = f2Stmt2
	}
}

func (s *fig2Session) StepAcquire(m *machine.Mem, p int) bool {
	switch s.pc {
	case f2Stmt1:
		if s.inner.StepAcquire(m, p) {
			s.pc = f2Stmt2
		}
	case f2Stmt2:
		if old := m.FAA(p, s.inst.x, -1); old <= 0 {
			s.pc = f2Stmt3
		} else {
			s.pc = f2InCS
			return true
		}
	case f2Stmt3:
		m.Write(p, s.inst.q, int64(p))
		s.pc = f2Stmt4
	case f2Stmt4:
		if m.Read(p, s.inst.x) < 0 {
			s.pc = f2Stmt5
		} else {
			s.pc = f2InCS
			return true
		}
	case f2Stmt5:
		if m.Read(p, s.inst.q) != int64(p) {
			s.pc = f2InCS
			return true
		}
	default:
		panic("fig2: StepAcquire called in wrong state")
	}
	return false
}

func (s *fig2Session) StepRelease(m *machine.Mem, p int) bool {
	switch s.pc {
	case f2InCS:
		m.FAA(p, s.inst.x, 1) // statement 6
		s.pc = f2Stmt7
	case f2Stmt7:
		m.Write(p, s.inst.q, qBottom)
		if s.inner != nil {
			s.pc = f2Stmt8
		} else {
			s.reset()
			return true
		}
	case f2Stmt8:
		if s.inner.StepRelease(m, p) {
			s.reset()
			return true
		}
	default:
		panic("fig2: StepRelease called in wrong state")
	}
	return false
}

func (s *fig2Session) AssignedName() int { return -1 }

func (s *fig2Session) Clone() proto.Session {
	c := &fig2Session{inst: s.inst, pc: s.pc}
	if s.inner != nil {
		c.inner = s.inner.Clone()
	}
	return c
}

func (s *fig2Session) Key() string {
	if s.inner == nil {
		return proto.KeyF("f2:%d", s.pc)
	}
	return proto.KeyJoin(proto.KeyF("f2:%d", s.pc), s.inner.Key())
}

// newInductiveChain builds Theorem 1's (n,k)-exclusion for up to n
// concurrent participants: a chain of Figure 2 layers for j = n-1 down
// to k, the (n,n) base case being skip. Block factories (newBlockCC)
// reuse it for the (2k,k) building block, which works for any process
// identities because only the number of concurrent participants matters.
func newInductiveChain(m *machine.Mem, n, k int) proto.Instance {
	if n <= k {
		return proto.Trivial(k)
	}
	var inner proto.Instance // (n,n)-exclusion = skip
	for j := n - 1; j >= k; j-- {
		inner = newFig2(m, j, inner)
	}
	return inner
}

// Inductive is Theorem 1: cache-coherent (N,k)-exclusion with complexity
// 7(N-k), built by chaining Figure 2 layers.
type Inductive struct{}

func (Inductive) Name() string { return "cc-inductive" }

func (Inductive) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent},
	}
}

func (Inductive) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	return newInductiveChain(m, n, k)
}

// BlockCC is the paper's (2k,k) "building block" (Theorem 1 applied with
// N=2k, cost 7k), exported for the tree and fast-path compositions.
func BlockCC(m *machine.Mem, k int) proto.Instance {
	return newInductiveChain(m, 2*k, k)
}
