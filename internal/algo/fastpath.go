package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// fastPathInstance is Figure 4: a bounded fetch&increment counter X
// (initially k) admits up to k processes straight into a (2k,k)
// building block; the rest take the slow path — an (N-k,k)-exclusion —
// first, so at most 2k processes access the building block at a time.
//
// With contention at most k the test at statement 2 always succeeds and
// an acquisition costs only the building block plus the two counter
// operations (Theorems 3 and 7); the slow path determines behaviour
// above k (tree: sudden step; recursive fast paths: Theorems 4 and 8's
// graceful ceil(c/k)*(block+2) degradation, Figure 3(b)).
type fastPathInstance struct {
	x     machine.Addr
	slow  proto.Instance // (N-k, k)-exclusion
	block proto.Instance // (2k, k) building block
	k     int
	// plainFAA selects the footnote 2 variant: the paper assumes a
	// bounded decrement (fetch&increment that leaves X=0 unchanged)
	// "for simplicity"; with a plain fetch&add, a process that finds
	// no fast slot must undo its decrement before taking the slow
	// path — the "slightly more complicated algorithm [with] a small
	// constant factor increase in time complexity" the footnote
	// promises (+1 remote reference per slow-path acquisition).
	plainFAA bool
}

// newFastPath builds Figure 4 with the given slow-path instance.
func newFastPath(m *machine.Mem, k int, slow, block proto.Instance) *fastPathInstance {
	inst := &fastPathInstance{
		x:     m.Alloc1(machine.HomeShared),
		slow:  slow,
		block: block,
		k:     k,
	}
	m.Poke(inst.x, int64(k))
	return inst
}

func (in *fastPathInstance) K() int { return in.k }

func (in *fastPathInstance) NewSession(p int) proto.Session {
	return &fastPathSession{
		inst:  in,
		slow:  in.slow.NewSession(p),
		block: in.block.NewSession(p),
		pc:    fpStmt2,
	}
}

// fastPathSession program counters; statement numbers follow Figure 4
// (statements 1 and 3, which only set the private flag, are folded into
// statement 2's step since they access no shared memory).
const (
	fpStmt2     = iota // slow := fetch_and_increment(X,-1) = 0
	fpStmt2Undo        // plainFAA variant only: fetch_and_increment(X,1)
	fpStmt4            // Acquire(N-k) — slow path
	fpStmt5            // Acquire(2k) — building block
	fpInCS
	fpStmt6 // Release(2k)
	fpStmt8 // Release(N-k)
	fpStmt9 // fetch_and_increment(X,1)
)

type fastPathSession struct {
	inst  *fastPathInstance
	slow  proto.Session
	block proto.Session
	pc    int
	isSlo bool
}

func (s *fastPathSession) StepAcquire(m *machine.Mem, p int) bool {
	switch s.pc {
	case fpStmt2:
		if s.inst.plainFAA {
			s.isSlo = m.FAA(p, s.inst.x, -1) <= 0
			if s.isSlo {
				s.pc = fpStmt2Undo
			} else {
				s.pc = fpStmt5
			}
		} else {
			s.isSlo = m.FAADec0(p, s.inst.x) == 0
			if s.isSlo {
				s.pc = fpStmt4
			} else {
				s.pc = fpStmt5
			}
		}
	case fpStmt2Undo:
		m.FAA(p, s.inst.x, 1) // return the slot we could not use
		s.pc = fpStmt4
	case fpStmt4:
		if s.slow.StepAcquire(m, p) {
			s.pc = fpStmt5
		}
	case fpStmt5:
		if s.block.StepAcquire(m, p) {
			s.pc = fpInCS
			return true
		}
	default:
		panic("fastpath: StepAcquire called in wrong state")
	}
	return false
}

func (s *fastPathSession) StepRelease(m *machine.Mem, p int) bool {
	switch s.pc {
	case fpInCS, fpStmt6:
		s.pc = fpStmt6
		if s.block.StepRelease(m, p) {
			if s.isSlo {
				s.pc = fpStmt8
			} else {
				s.pc = fpStmt9
			}
		}
	case fpStmt8:
		if s.slow.StepRelease(m, p) {
			s.pc = fpStmt2
			return true
		}
	case fpStmt9:
		m.FAA(p, s.inst.x, 1)
		s.pc = fpStmt2
		return true
	default:
		panic("fastpath: StepRelease called in wrong state")
	}
	return false
}

func (s *fastPathSession) AssignedName() int { return -1 }

func (s *fastPathSession) Clone() proto.Session {
	return &fastPathSession{
		inst:  s.inst,
		slow:  s.slow.Clone(),
		block: s.block.Clone(),
		pc:    s.pc,
		isSlo: s.isSlo,
	}
}

func (s *fastPathSession) Key() string {
	return proto.KeyJoin(proto.KeyF("fp:%d:%t", s.pc, s.isSlo), s.slow.Key(), s.block.Key())
}

// buildFastPath assembles Figure 4 with a tree slow path (Theorems 3, 7).
// The slow path admits at most N-k concurrent processes, but which
// processes they are changes over time, so the tree's fixed leaf-group
// assignment must cover all N identities (keeping per-leaf concurrency at
// most k); its depth is therefore ceil(log2(N/k)), which is exactly the
// term appearing in the Theorem 3 and Theorem 7 bounds.
func buildFastPath(m *machine.Mem, n, k int, block BlockFactory, opt proto.BuildOptions) proto.Instance {
	if n <= 2*k {
		return block(m, k, opt)
	}
	slow := newTree(m, n, k, block, opt)
	return newFastPath(m, k, slow, block(m, k, opt))
}

// buildGraceful assembles Figure 3(b): fast paths nested recursively so
// that each additional k of contention pays for one more level
// (Theorems 4, 8).
func buildGraceful(m *machine.Mem, n, k int, block BlockFactory, opt proto.BuildOptions) proto.Instance {
	if n <= 2*k {
		return block(m, k, opt)
	}
	slow := buildGraceful(m, n-k, k, block, opt)
	return newFastPath(m, k, slow, block(m, k, opt))
}

// FastPath is Theorem 3: cache-coherent (N,k)-exclusion costing 7k+2
// when contention is at most k and 7k(ceil(log2(N/k))+1)+2 above.
type FastPath struct{}

func (FastPath) Name() string { return "cc-fastpath" }

func (FastPath) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent},
	}
}

func (FastPath) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return buildFastPath(m, n, k, func(m *machine.Mem, k int, _ proto.BuildOptions) proto.Instance {
		return BlockCC(m, k)
	}, opt)
}

// FastPathFAA is the footnote 2 variant of Theorem 3: the fast path
// implemented with a plain fetch&add (undoing the decrement on the slow
// branch) instead of the bounded decrement the paper assumes for
// simplicity. One extra remote reference per slow-path acquisition.
type FastPathFAA struct{}

func (FastPathFAA) Name() string { return "cc-fastpath-faa" }

func (FastPathFAA) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent},
	}
}

func (FastPathFAA) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	inst := buildFastPath(m, n, k, func(m *machine.Mem, k int, _ proto.BuildOptions) proto.Instance {
		return BlockCC(m, k)
	}, opt)
	if fp, ok := inst.(*fastPathInstance); ok {
		fp.plainFAA = true
	}
	return inst
}

// Graceful is Theorem 4: cache-coherent (N,k)-exclusion costing
// ceil(c/k)*(7k+2) at contention c — performance degrades linearly with
// contention instead of stepping when contention exceeds k.
type Graceful struct{}

func (Graceful) Name() string { return "cc-graceful" }

func (Graceful) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent},
	}
}

func (Graceful) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return buildGraceful(m, n, k, func(m *machine.Mem, k int, _ proto.BuildOptions) proto.Instance {
		return BlockCC(m, k)
	}, opt)
}
