package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// This file implements the mutual-exclusion (k=1) spin locks the paper
// cites as the performance target for its algorithms when k approaches 1
// (concluding remarks; references [2] and [12]): the MCS queue lock and
// the ticket lock. They are NOT k-exclusion algorithms — a crashed
// holder or waiter wedges them — but they calibrate the k=1 corner of
// the evaluation: how close the resilient algorithms come to the fastest
// known non-resilient locks.

// mcsNil encodes a nil queue-node pointer (node ids are pid+1).
const mcsNil = 0

// mcsInstance is the Mellor-Crummey & Scott queue lock: a tail pointer
// swapped with fetch&store, per-process queue nodes (locked flag and
// next pointer) in each process's own memory module, and purely local
// spinning — O(1) remote references per acquisition on both models.
type mcsInstance struct {
	tail machine.Addr
	// node p occupies two words at nodes + 2p: locked, next.
	nodes machine.Addr
}

func newMCS(m *machine.Mem, n int) *mcsInstance {
	inst := &mcsInstance{tail: m.Alloc1(machine.HomeShared)}
	for p := 0; p < n; p++ {
		base := m.Alloc(2, p)
		if p == 0 {
			inst.nodes = base
		}
	}
	return inst
}

func (in *mcsInstance) lockedAddr(p int) machine.Addr { return in.nodes + machine.Addr(2*p) }
func (in *mcsInstance) nextAddr(p int) machine.Addr   { return in.nodes + machine.Addr(2*p+1) }

func (in *mcsInstance) K() int { return 1 }

func (in *mcsInstance) NewSession(p int) proto.Session {
	return &mcsSession{inst: in}
}

const (
	mcsInit = iota // next[p] := nil
	mcsSwap        // pred := fetch&store(tail, p)
	mcsLink        // locked[p] := true; next[pred] := p
	mcsSpin        // while locked[p] (local spin)
	mcsInCS
	mcsCheckNext // if next[p] = nil try CAS(tail, p, nil)
	mcsWaitNext  // spin until next[p] != nil
	mcsHandoff   // locked[next[p]] := false
)

type mcsSession struct {
	inst *mcsInstance
	pc   int
	pred int64
}

func (s *mcsSession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case mcsInit:
		m.Write(p, in.nextAddr(p), mcsNil) // local
		s.pc = mcsSwap
	case mcsSwap:
		s.pred = m.Swap(p, in.tail, int64(p)+1)
		if s.pred == mcsNil {
			s.pc = mcsInCS
			return true
		}
		s.pc = mcsLink
	case mcsLink:
		// Two writes modelled as two statements would be more
		// faithful; MCS's published cost counts them both, so split:
		// first arm the local flag, then link (the link is the remote
		// reference).
		m.Write(p, in.lockedAddr(p), 1) // local
		m.Write(p, in.nextAddr(int(s.pred)-1), int64(p)+1)
		s.pc = mcsSpin
	case mcsSpin:
		if m.Read(p, in.lockedAddr(p)) == 0 { // local spin
			s.pc = mcsInCS
			return true
		}
	default:
		panic("mcs: StepAcquire called in wrong state")
	}
	return false
}

func (s *mcsSession) StepRelease(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case mcsInCS, mcsCheckNext:
		if m.Read(p, in.nextAddr(p)) == mcsNil { // local
			if m.CAS(p, in.tail, int64(p)+1, mcsNil) {
				s.pc = mcsInit
				return true
			}
			// A successor is linking itself; wait for the link.
			s.pc = mcsWaitNext
		} else {
			s.pc = mcsHandoff
		}
	case mcsWaitNext:
		if m.Read(p, in.nextAddr(p)) != mcsNil { // local spin
			s.pc = mcsHandoff
		}
	case mcsHandoff:
		next := m.Read(p, in.nextAddr(p))
		m.Write(p, in.lockedAddr(int(next)-1), 0)
		s.pc = mcsInit
		return true
	default:
		panic("mcs: StepRelease called in wrong state")
	}
	return false
}

func (s *mcsSession) AssignedName() int { return -1 }

func (s *mcsSession) Clone() proto.Session {
	c := *s
	return &c
}

func (s *mcsSession) Key() string { return proto.KeyF("mcs:%d:%d", s.pc, s.pred) }

// MCS is the queue lock of Mellor-Crummey and Scott (the paper's [12]),
// k=1 only.
type MCS struct{}

func (MCS) Name() string { return "mcs" }

func (MCS) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      false, // a crashed holder or waiter wedges the queue
		StarvationFree: true,  // FIFO, absent failures
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

// Build implements proto.Protocol; k must be 1.
func (MCS) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	if k != 1 {
		panic("mcs: mutual exclusion only (k=1)")
	}
	return newMCS(m, n)
}

// ticketInstance is the classic ticket lock: fetch&increment a ticket
// dispenser, spin until the grant counter reaches your ticket. FIFO and
// O(1) uncontended, but all waiters spin on the one grant word, so on
// cache-coherent machines every release invalidates every waiter
// (O(c) per acquisition) and on DSM the spin is fully remote.
type ticketInstance struct {
	next, owner machine.Addr
}

func (in *ticketInstance) K() int { return 1 }

func (in *ticketInstance) NewSession(p int) proto.Session {
	return &ticketSession{inst: in}
}

const (
	tkTake = iota // t := fetch&increment(next)
	tkSpin        // while owner != t
	tkInCS
)

type ticketSession struct {
	inst   *ticketInstance
	pc     int
	ticket int64
}

func (s *ticketSession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case tkTake:
		s.ticket = m.FAA(p, in.next, 1)
		s.pc = tkSpin
		return false
	case tkSpin:
		if m.Read(p, in.owner) == s.ticket {
			s.pc = tkInCS
			return true
		}
		return false
	default:
		panic("ticket: StepAcquire called in wrong state")
	}
}

func (s *ticketSession) StepRelease(m *machine.Mem, p int) bool {
	if s.pc != tkInCS {
		panic("ticket: StepRelease called in wrong state")
	}
	m.FAA(p, s.inst.owner, 1)
	s.pc = tkTake
	return true
}

func (s *ticketSession) AssignedName() int { return -1 }

func (s *ticketSession) Clone() proto.Session {
	c := *s
	return &c
}

func (s *ticketSession) Key() string { return proto.KeyF("tk:%d:%d", s.pc, s.ticket) }

// Ticket is the ticket lock (in the family surveyed by the paper's [2]),
// k=1 only.
type Ticket struct{}

func (Ticket) Name() string { return "ticket" }

func (Ticket) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      false,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

// Build implements proto.Protocol; k must be 1.
func (Ticket) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	if k != 1 {
		panic("ticket: mutual exclusion only (k=1)")
	}
	return &ticketInstance{next: m.Alloc1(machine.HomeShared), owner: m.Alloc1(machine.HomeShared)}
}

// SpinLocks returns the k=1 comparator locks (kept out of All() because
// they only implement mutual exclusion).
func SpinLocks() []proto.Protocol {
	return []proto.Protocol{MCS{}, Ticket{}}
}
