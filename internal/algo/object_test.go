package algo

import (
	"fmt"
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// runObject builds and runs the methodology protocol, returning the
// result and the final counter value.
func runObject(t *testing.T, model machine.Model, n, k int, cfg proto.Config, wrapper proto.Protocol) (proto.Result, int64) {
	t.Helper()
	m := machine.NewMem(model, n)
	pr := ResilientObject{Wrapper: wrapper}
	inst := pr.Build(m, n, k, proto.BuildOptions{MaxAcquisitions: cfg.Acquisitions})
	res := proto.Run(m, inst, false, cfg)
	for _, v := range res.Violations {
		t.Fatalf("N=%d k=%d: %s", n, k, v)
	}
	return res, CounterValue(m, inst)
}

// TestObjectLinearizedExactlyOnce: every completed operation increments
// the counter exactly once, under fair and adversarial schedules.
func TestObjectLinearizedExactlyOnce(t *testing.T) {
	shapes := []struct{ n, k int }{{4, 2}, {6, 3}, {9, 4}}
	for _, sh := range shapes {
		for seed := int64(0); seed < 10; seed++ {
			var sched machine.Scheduler = machine.NewRoundRobin()
			if seed > 0 {
				sched = machine.NewBurst(seed, 8)
			}
			res, counter := runObject(t, machine.CacheCoherent, sh.n, sh.k, proto.Config{
				Acquisitions: 4,
				Sched:        sched,
			}, nil)
			if !res.Completed {
				t.Fatalf("N=%d k=%d seed=%d: incomplete", sh.n, sh.k, seed)
			}
			want := int64(sh.n * 4)
			if counter != want {
				t.Fatalf("N=%d k=%d seed=%d: counter=%d want %d (lost or duplicated ops)",
					sh.n, sh.k, seed, counter, want)
			}
		}
	}
}

// TestObjectSurvivesCrashes: k-1 processes die mid-operation (inside the
// wrapper or the wait-free core); survivors complete, and every
// *completed* operation is counted at least... exactly once each, while
// a victim's announced-but-unfinished operation may legitimately be
// helped to completion (counted) or not reached yet — so the final value
// lies between completed and completed+crashed.
func TestObjectSurvivesCrashes(t *testing.T) {
	n, k := 8, 3
	for seed := int64(0); seed < 8; seed++ {
		var crashes []proto.Crash
		for j := 0; j < k-1; j++ {
			crashes = append(crashes, proto.Crash{
				Proc:       (int(seed) + 2*j) % n,
				Phase:      proto.PhaseEntry,
				AfterSteps: 3 + j,
			})
		}
		res, counter := runObject(t, machine.CacheCoherent, n, k, proto.Config{
			Acquisitions: 3,
			Sched:        machine.NewRandom(seed),
			Crashes:      crashes,
		}, nil)
		if !res.Completed {
			t.Fatalf("seed %d: survivors did not complete", seed)
		}
		completed := int64(len(res.Records))
		if counter < completed || counter > completed+int64(k-1) {
			t.Fatalf("seed %d: counter=%d outside [%d,%d]", seed, counter, completed, completed+int64(k-1))
		}
	}
}

// TestObjectOperationCostBounded: at contention <= k, a full object
// operation (k-assignment acquire + wait-free apply + release) stays
// within the wrapper's Theorem 9 bound plus the core's bounded helping
// cost — the "effectively wait-free" claim of §1, in remote references.
func TestObjectOperationCostBounded(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{8, 2}, {16, 4}} {
		var worst uint64
		for seed := int64(0); seed < 8; seed++ {
			var sched machine.Scheduler = machine.NewRoundRobin()
			if seed > 0 {
				sched = machine.NewRandom(seed)
			}
			res, _ := runObject(t, machine.CacheCoherent, sh.n, sh.k, proto.Config{
				Acquisitions:  3,
				MaxContention: sh.k,
				Sched:         sched,
			}, nil)
			if res.MaxAcqRemote > worst {
				worst = res.MaxAcqRemote
			}
		}
		wrapper := 7*sh.k + 2 + sh.k // Theorem 9, contention <= k
		// Core: announce (2) + at most 3 rounds of read-head, check,
		// build (3k+5 worst case each) before the operation lands.
		core := 2 + 3*(3*sh.k+8)
		bound := uint64(wrapper + core)
		if worst > bound {
			t.Errorf("N=%d k=%d: operation cost %d exceeds bound %d", sh.n, sh.k, worst, bound)
		} else {
			t.Logf("N=%d k=%d: operation cost %d <= wrapper %d + core %d", sh.n, sh.k, worst, wrapper, core)
		}
	}
}

// TestObjectOverDSMWrapper exercises the methodology over the DSM
// assignment wrapper too.
func TestObjectOverDSMWrapper(t *testing.T) {
	res, counter := runObject(t, machine.Distributed, 6, 2, proto.Config{
		Acquisitions: 3,
	}, Assignment{Excl: FastPathDSM{}})
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if counter != 18 {
		t.Fatalf("counter=%d want 18", counter)
	}
}

// TestObjectHelpingObservable: with a burst scheduler a process's
// operation is regularly completed by a helper rather than its own CAS;
// detect it via operations that finish in the check state right after a
// failed CAS window — indirectly, by requiring that total CAS successes
// recorded in the arena allocator is smaller than total operations plus
// retries would imply. A simpler observable: the arena allocates fewer
// cells than operations * attempts ceiling.
func TestObjectHelpingObservable(t *testing.T) {
	n, k := 8, 4
	m := machine.NewMem(machine.CacheCoherent, n)
	pr := ResilientObject{}
	inst := pr.Build(m, n, k, proto.BuildOptions{MaxAcquisitions: 5})
	res := proto.Run(m, inst, false, proto.Config{
		Acquisitions: 5,
		Sched:        machine.NewBurst(3, 10),
	})
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if got := CounterValue(m, inst); got != int64(n*5) {
		t.Fatalf("counter=%d want %d", got, n*5)
	}
}

func TestObjectName(t *testing.T) {
	pr := ResilientObject{}
	if pr.Name() != fmt.Sprintf("resilient-counter(%s)", (Assignment{Excl: FastPath{}}).Name()) {
		t.Fatalf("unexpected name %q", pr.Name())
	}
	if !pr.Traits().Resilient {
		t.Fatal("methodology object must be resilient")
	}
}
