package algo

import (
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// TestModelAffectsOnlyAccounting: the CC and DSM memory models classify
// references differently but must never change behaviour — the same
// protocol under the same schedule takes exactly the same steps and
// completes the same acquisitions on both models. This pins the
// simulator's core design claim (DESIGN.md §5, "Cost model fidelity").
func TestModelAffectsOnlyAccounting(t *testing.T) {
	for _, pr := range All() {
		t.Run(pr.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				runOn := func(model machine.Model) proto.Result {
					return proto.RunProtocol(pr, model, 6, 2, proto.Config{
						Acquisitions: 3,
						Sched:        machine.NewRandom(seed),
						NCSSteps:     1,
					})
				}
				cc := runOn(machine.CacheCoherent)
				dsm := runOn(machine.Distributed)

				if cc.Steps != dsm.Steps {
					t.Fatalf("seed %d: step counts diverge across models: CC=%d DSM=%d",
						seed, cc.Steps, dsm.Steps)
				}
				if cc.Completed != dsm.Completed || len(cc.Records) != len(dsm.Records) {
					t.Fatalf("seed %d: outcomes diverge: CC(%v,%d) DSM(%v,%d)",
						seed, cc.Completed, len(cc.Records), dsm.Completed, len(dsm.Records))
				}
				if cc.MaxOccupancy != dsm.MaxOccupancy {
					t.Fatalf("seed %d: occupancy diverges: %d vs %d",
						seed, cc.MaxOccupancy, dsm.MaxOccupancy)
				}
				// Acquisition order and fairness metrics (but not
				// remote-reference costs) must match exactly.
				for i := range cc.Records {
					a, b := cc.Records[i], dsm.Records[i]
					if a.Proc != b.Proc || a.EntrySteps != b.EntrySteps || a.Bypassed != b.Bypassed {
						t.Fatalf("seed %d: record %d diverges: %+v vs %+v", seed, i, a, b)
					}
				}
			}
		})
	}
}
