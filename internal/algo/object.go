package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// This file realizes the paper's §1 methodology on the simulated
// machine, so the end-to-end cost of an operation on a resilient shared
// object can be measured in the paper's own metric (remote references):
// a wait-free k-process universal construction — announce array,
// helping, compare&swap on a version pointer — executed under an
// (N,k)-assignment wrapper. The assigned name indexes the announce
// array, exactly as §1 prescribes ("assigns entering processes unique
// names from a range of size k to use within that implementation").
//
// The object is a counter (each operation adds one); per-name operation
// sequence numbers make "applied exactly once" checkable from the final
// memory state.
//
// The driver's entry section covers wrapper acquisition PLUS the
// wait-free operation, and the exit section covers wrapper release, so
// one AcqRecord = one full object operation.

// objInstance lays out the construction's shared memory:
//
//	announce[name]          highest sequence number announced per name
//	head                    arena index of the current version cell
//	arenaNext               bump allocator for fresh cells
//	arena[cell]             cells of 1+k words: state, then seq[0..k-1]
type objInstance struct {
	wrapper  proto.Instance
	announce machine.Addr
	head     machine.Addr
	arenaNxt machine.Addr
	arena    machine.Addr
	cellSize int
	cells    int
	k        int
}

// ResilientObject is the methodology protocol: Build creates the
// wait-free core plus the chosen k-assignment wrapper (the paper's
// fast-path composition by default).
type ResilientObject struct {
	// Wrapper supplies the (N,k)-assignment; nil selects
	// Assignment{Excl: FastPath{}} on CC and the DSM fast path on DSM
	// at Build time based on n, k.
	Wrapper proto.Protocol
}

func (r ResilientObject) wrapperProto() proto.Protocol {
	if r.Wrapper == nil {
		return Assignment{Excl: FastPath{}}
	}
	return r.Wrapper
}

func (r ResilientObject) Name() string { return "resilient-counter(" + r.wrapperProto().Name() + ")" }

func (r ResilientObject) Traits() proto.Traits {
	t := r.wrapperProto().Traits()
	return proto.Traits{
		// The composite is a k-assignment user, not itself an
		// assignment protocol (names are internal).
		Resilient:      t.Resilient,
		StarvationFree: t.StarvationFree,
		Models:         t.Models,
	}
}

// Build implements proto.Protocol.
func (r ResilientObject) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	acqs := opt.MaxAcquisitions
	if acqs <= 0 {
		acqs = 16
	}
	// Every operation allocates at most 3 cells (the wait-free loop
	// runs at most 3 iterations), plus the initial cell.
	cells := 3*n*acqs + 2
	inst := &objInstance{
		wrapper:  r.wrapperProto().Build(m, n, k, opt),
		announce: m.Alloc(k, machine.HomeShared),
		head:     m.Alloc1(machine.HomeShared),
		arenaNxt: m.Alloc1(machine.HomeShared),
		cellSize: 1 + k,
		cells:    cells,
		k:        k,
	}
	inst.arena = m.Alloc(cells*inst.cellSize, machine.HomeShared)
	m.Poke(inst.arenaNxt, 1) // cell 0 is the initial version (all zeros)
	return inst
}

func (in *objInstance) K() int { return in.k }

func (in *objInstance) cellAddr(cell int64, word int) machine.Addr {
	return in.arena + machine.Addr(int(cell)*in.cellSize+word)
}

func (in *objInstance) NewSession(p int) proto.Session {
	return &objSession{inst: in, wrap: in.wrapper.NewSession(p), pc: objAcq}
}

// objSession program counters.
const (
	objAcq      = iota // wrapper entry section (k-assignment)
	objReadSeq         // read announce[name]
	objAnnounce        // announce[name] := seq+1
	objReadHead        // h := head
	objCheck           // if cell h has seq[name] >= myseq: done
	objBuild           // read state + announces, allocate and fill new cell
	objCAS             // compare&swap(head, h, new)
	objInCS
	objRel // wrapper exit section
)

type objSession struct {
	inst  *objInstance
	wrap  proto.Session
	pc    int
	name  int
	mySeq int64
	h     int64
	// build scratch
	buildStep int
	newCell   int64
	state     int64
	seqs      []int64
}

func (s *objSession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case objAcq:
		if s.wrap.StepAcquire(m, p) {
			s.name = s.wrap.AssignedName()
			if s.name < 0 || s.name >= in.k {
				panic("resilient object: wrapper did not assign a name")
			}
			s.pc = objReadSeq
		}
	case objReadSeq:
		s.mySeq = m.Read(p, in.announce+machine.Addr(s.name)) + 1
		s.pc = objAnnounce
	case objAnnounce:
		m.Write(p, in.announce+machine.Addr(s.name), s.mySeq)
		s.pc = objReadHead
	case objReadHead:
		s.h = m.Read(p, in.head)
		s.pc = objCheck
	case objCheck:
		if m.Read(p, in.cellAddr(s.h, 1+s.name)) >= s.mySeq {
			// Some helper applied our operation.
			s.pc = objInCS
			return true
		}
		s.buildStep = 0
		s.pc = objBuild
	case objBuild:
		// One statement per word touched, mirroring the numbered-
		// statement granularity of the rest of the suite.
		switch {
		case s.buildStep == 0: // read current state
			s.state = m.Read(p, in.cellAddr(s.h, 0))
			s.seqs = append(s.seqs[:0], make([]int64, in.k)...)
			s.buildStep++
		case s.buildStep <= in.k: // read applied seq per name
			i := s.buildStep - 1
			s.seqs[i] = m.Read(p, in.cellAddr(s.h, 1+i))
			s.buildStep++
		case s.buildStep <= 2*in.k: // read announces, apply pending ops
			i := s.buildStep - in.k - 1
			ann := m.Read(p, in.announce+machine.Addr(i))
			if ann == s.seqs[i]+1 {
				// Apply name i's pending increment.
				s.state++
				s.seqs[i] = ann
			}
			s.buildStep++
		case s.buildStep == 2*in.k+1: // allocate a fresh cell
			s.newCell = m.FAA(p, in.arenaNxt, 1)
			if int(s.newCell) >= in.cells {
				panic("resilient object: cell arena exhausted; raise MaxAcquisitions")
			}
			s.buildStep++
		case s.buildStep == 2*in.k+2: // write new state
			m.Write(p, in.cellAddr(s.newCell, 0), s.state)
			s.buildStep++
		case s.buildStep <= 3*in.k+2: // write applied seqs
			i := s.buildStep - 2*in.k - 3
			m.Write(p, in.cellAddr(s.newCell, 1+i), s.seqs[i])
			s.buildStep++
			if s.buildStep == 3*in.k+3 {
				s.pc = objCAS
			}
		}
	case objCAS:
		m.CAS(p, in.head, s.h, s.newCell)
		// Success or failure, re-read head: on success our op is in;
		// on failure someone else advanced and may have helped us.
		s.pc = objReadHead
	default:
		panic("resilient object: StepAcquire called in wrong state")
	}
	return false
}

func (s *objSession) StepRelease(m *machine.Mem, p int) bool {
	if s.pc != objInCS && s.pc != objRel {
		panic("resilient object: StepRelease called in wrong state")
	}
	s.pc = objRel
	if s.wrap.StepRelease(m, p) {
		s.pc = objAcq
		s.name = -1
		return true
	}
	return false
}

func (s *objSession) AssignedName() int { return -1 }

func (s *objSession) Clone() proto.Session {
	c := *s
	c.wrap = s.wrap.Clone()
	c.seqs = append([]int64(nil), s.seqs...)
	return &c
}

func (s *objSession) Key() string {
	return proto.KeyJoin(
		proto.KeyF("obj:%d:%d:%d:%d:%d:%d", s.pc, s.name, s.mySeq, s.h, s.buildStep, s.newCell),
		s.wrap.Key(),
	)
}

// CounterValue reads the object's linearized value from memory after a
// run (for test assertions).
func CounterValue(m *machine.Mem, inst proto.Instance) int64 {
	in, ok := inst.(*objInstance)
	if !ok {
		panic("CounterValue: not a resilient object instance")
	}
	head := m.Peek(in.head)
	return m.Peek(in.cellAddr(head, 0))
}
