package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// ---------------------------------------------------------------------------
// spinfaa: the folklore semaphore loop practitioners write — retry
// fetch&add on one counter. O(1) remote references without contention,
// unbounded with contention on both machine models, and not
// starvation-free. Included as the practical foil for Table 1.

type spinFAAInstance struct {
	x machine.Addr
	k int
}

func (in *spinFAAInstance) K() int { return in.k }

func (in *spinFAAInstance) NewSession(p int) proto.Session {
	return &spinFAASession{inst: in}
}

type spinFAASession struct {
	inst *spinFAAInstance
	pc   int // 0: try, 1: undo, 2: in CS
}

func (s *spinFAASession) StepAcquire(m *machine.Mem, p int) bool {
	switch s.pc {
	case 0:
		if m.FAA(p, s.inst.x, -1) > 0 {
			s.pc = 2
			return true
		}
		s.pc = 1
	case 1:
		m.FAA(p, s.inst.x, 1)
		s.pc = 0
	default:
		panic("spinfaa: StepAcquire called in wrong state")
	}
	return false
}

func (s *spinFAASession) StepRelease(m *machine.Mem, p int) bool {
	if s.pc != 2 {
		panic("spinfaa: StepRelease called in wrong state")
	}
	m.FAA(p, s.inst.x, 1)
	s.pc = 0
	return true
}

func (s *spinFAASession) AssignedName() int { return -1 }

func (s *spinFAASession) Clone() proto.Session {
	return &spinFAASession{inst: s.inst, pc: s.pc}
}

func (s *spinFAASession) Key() string { return proto.KeyF("sf:%d", s.pc) }

// SpinFAA is the retry-loop counting semaphore baseline.
type SpinFAA struct{}

func (SpinFAA) Name() string { return "spinfaa" }

func (SpinFAA) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true, // a crashed waiter blocks nobody
		StarvationFree: false,
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

func (SpinFAA) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	inst := &spinFAAInstance{x: m.Alloc1(machine.HomeShared), k: k}
	m.Poke(inst.x, int64(k))
	return inst
}

// ---------------------------------------------------------------------------
// bakery / scanquad: read/write-only k-exclusion baselines standing in
// for Table 1's rows [1] (Afek et al., O(N) without contention) and [8]
// (Dolev-Gafni-Shavit, O(N^2) without contention). Both generalize
// Lamport's bakery: take a ticket from a read-all doorway, then admit
// yourself once fewer than k processes hold smaller tickets. scanquad
// must observe N consecutive successful admission scans, which makes the
// uncontended cost quadratic like the safe-bits algorithm it stands in
// for. Unlike the originals these stand-ins are not resilient — a crashed
// ticket-holder blocks higher tickets — which is documented in DESIGN.md
// and is irrelevant to the complexity comparison.
//
// Memory layout per process p (home p): choosing[p], number[p].

type bakeryInstance struct {
	choosing, number machine.Addr // stride 2 per process
	n, k, needStreak int
}

func newBakery(m *machine.Mem, n, k, needStreak int) *bakeryInstance {
	inst := &bakeryInstance{n: n, k: k, needStreak: needStreak}
	for p := 0; p < n; p++ {
		c := m.Alloc(2, p)
		if p == 0 {
			inst.choosing = c
			inst.number = c + 1
		}
	}
	return inst
}

func (in *bakeryInstance) choosingAt(q int) machine.Addr {
	return in.choosing + machine.Addr(2*q)
}

func (in *bakeryInstance) numberAt(q int) machine.Addr {
	return in.number + machine.Addr(2*q)
}

func (in *bakeryInstance) K() int { return in.k }

func (in *bakeryInstance) NewSession(p int) proto.Session {
	return &bakerySession{inst: in}
}

const (
	bkChoosing = iota // choosing[p] := 1
	bkScanMax         // read number[q], one per step
	bkWriteNum        // number[p] := max+1
	bkDoorway         // choosing[p] := 0
	bkPassChse        // wait choosing[idx] = 0
	bkPassNum         // read number[idx], count smaller tickets
	bkInCS
)

type bakerySession struct {
	inst   *bakeryInstance
	pc     int
	idx    int
	max    int64
	my     int64
	count  int
	streak int
}

func (s *bakerySession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case bkChoosing:
		m.Write(p, in.choosingAt(p), 1)
		s.idx, s.max = 0, 0
		s.pc = bkScanMax
	case bkScanMax:
		if v := m.Read(p, in.numberAt(s.idx)); v > s.max {
			s.max = v
		}
		s.idx++
		if s.idx == in.n {
			s.pc = bkWriteNum
		}
	case bkWriteNum:
		s.my = s.max + 1
		m.Write(p, in.numberAt(p), s.my)
		s.pc = bkDoorway
	case bkDoorway:
		m.Write(p, in.choosingAt(p), 0)
		s.idx, s.count, s.streak = 0, 0, 0
		s.pc = bkPassChse
	case bkPassChse:
		if s.idx == p {
			s.idx++
			if s.idx == in.n {
				return s.finishPass()
			}
			return false
		}
		if m.Read(p, in.choosingAt(s.idx)) == 0 {
			s.pc = bkPassNum
		}
	case bkPassNum:
		v := m.Read(p, in.numberAt(s.idx))
		if v != 0 && (v < s.my || (v == s.my && s.idx < p)) {
			s.count++
		}
		s.idx++
		s.pc = bkPassChse
		if s.idx == in.n {
			return s.finishPass()
		}
	default:
		panic("bakery: StepAcquire called in wrong state")
	}
	return false
}

func (s *bakerySession) finishPass() bool {
	if s.count < s.inst.k {
		s.streak++
		if s.streak >= s.inst.needStreak {
			s.pc = bkInCS
			return true
		}
	} else {
		s.streak = 0
	}
	s.idx, s.count = 0, 0
	s.pc = bkPassChse
	return false
}

func (s *bakerySession) StepRelease(m *machine.Mem, p int) bool {
	if s.pc != bkInCS {
		panic("bakery: StepRelease called in wrong state")
	}
	m.Write(p, s.inst.numberAt(p), 0)
	s.pc = bkChoosing
	return true
}

func (s *bakerySession) AssignedName() int { return -1 }

func (s *bakerySession) Clone() proto.Session {
	c := *s
	return &c
}

func (s *bakerySession) Key() string {
	return proto.KeyF("bk:%d:%d:%d:%d:%d:%d", s.pc, s.idx, s.max, s.my, s.count, s.streak)
}

// Bakery is the O(N)-without-contention read/write baseline (Table 1
// row [1] stand-in).
type Bakery struct{}

func (Bakery) Name() string { return "bakery" }

func (Bakery) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      false,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

func (Bakery) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	return newBakery(m, n, k, 1)
}

// ScanQuad is the O(N^2)-without-contention read/write baseline (Table 1
// row [8] stand-in): the admission scan must succeed N times in a row.
type ScanQuad struct{}

func (ScanQuad) Name() string { return "scanquad" }

func (ScanQuad) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      false,
		StarvationFree: true,
		Models:         []machine.Model{machine.CacheCoherent, machine.Distributed},
	}
}

func (ScanQuad) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	return newBakery(m, n, k, n)
}
