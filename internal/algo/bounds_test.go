package algo

import (
	"fmt"
	"math"
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// log2ceil returns ceil(log2(ceil(n/k))), the tree depth term of
// Theorems 2, 3, 6 and 7.
func log2ceil(n, k int) int {
	groups := (n + k - 1) / k
	d := 0
	for (1 << d) < groups {
		d++
	}
	return d
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// worstAcq searches for the worst-case remote references per acquisition
// (entry + exit) over the fair scheduler and many seeded adversarial
// schedules, at the given contention cap.
func worstAcq(t *testing.T, p proto.Protocol, model machine.Model, n, k, contention, seeds int) uint64 {
	t.Helper()
	var worst uint64
	run := func(s machine.Scheduler, ncs int) {
		res := proto.RunProtocol(p, model, n, k, proto.Config{
			Acquisitions:  4,
			MaxContention: contention,
			Sched:         s,
			NCSSteps:      ncs,
		})
		for _, v := range res.Violations {
			t.Fatalf("%s N=%d k=%d c=%d: %s", p.Name(), n, k, contention, v)
		}
		if !res.Completed {
			t.Fatalf("%s N=%d k=%d c=%d: incomplete", p.Name(), n, k, contention)
		}
		if res.MaxAcqRemote > worst {
			worst = res.MaxAcqRemote
		}
	}
	run(machine.NewRoundRobin(), 0)
	run(machine.NewRoundRobin(), 2)
	for seed := 0; seed < seeds; seed++ {
		run(machine.NewRandom(int64(seed)), seed%3)
		run(machine.NewBurst(int64(seed), 10), seed%3)
	}
	return worst
}

// checkBound asserts measured <= bound and reports both, building the
// paper-vs-measured record for EXPERIMENTS.md.
func checkBound(t *testing.T, label string, measured uint64, bound int) {
	t.Helper()
	if measured > uint64(bound) {
		t.Errorf("%s: measured %d remote refs exceeds paper bound %d", label, measured, bound)
	} else {
		t.Logf("%s: measured %d <= paper bound %d", label, measured, bound)
	}
}

// TestTheorem1Bound: CC inductive (N,k)-exclusion within 7(N-k).
func TestTheorem1Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{3, 1}, {4, 2}, {6, 2}, {8, 4}, {12, 8}} {
		m := worstAcq(t, Inductive{}, machine.CacheCoherent, sh.n, sh.k, 0, 10)
		checkBound(t, fmt.Sprintf("Thm1 N=%d k=%d", sh.n, sh.k), m, 7*(sh.n-sh.k))
	}
}

// TestTheorem2Bound: CC tree within 7k*ceil(log2(N/k)).
func TestTheorem2Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{8, 1}, {8, 2}, {16, 4}, {24, 4}, {30, 3}} {
		m := worstAcq(t, Tree{}, machine.CacheCoherent, sh.n, sh.k, 0, 8)
		checkBound(t, fmt.Sprintf("Thm2 N=%d k=%d", sh.n, sh.k), m, 7*sh.k*log2ceil(sh.n, sh.k))
	}
}

// TestTheorem3Bound: CC fast path, both contention regimes.
func TestTheorem3Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{12, 2}, {16, 4}, {24, 3}} {
		low := worstAcq(t, FastPath{}, machine.CacheCoherent, sh.n, sh.k, sh.k, 10)
		checkBound(t, fmt.Sprintf("Thm3 low N=%d k=%d", sh.n, sh.k), low, 7*sh.k+2)
		high := worstAcq(t, FastPath{}, machine.CacheCoherent, sh.n, sh.k, 0, 8)
		checkBound(t, fmt.Sprintf("Thm3 high N=%d k=%d", sh.n, sh.k), high,
			7*sh.k*(log2ceil(sh.n, sh.k)+1)+2)
	}
}

// TestFootnote2VariantBound: the plain-fetch&add fast path keeps the
// Theorem 3 structure with one extra remote reference on slow-path
// acquisitions (the undo).
func TestFootnote2VariantBound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{12, 2}, {16, 4}} {
		low := worstAcq(t, FastPathFAA{}, machine.CacheCoherent, sh.n, sh.k, sh.k, 10)
		checkBound(t, fmt.Sprintf("fn2 low N=%d k=%d", sh.n, sh.k), low, 7*sh.k+2)
		high := worstAcq(t, FastPathFAA{}, machine.CacheCoherent, sh.n, sh.k, 0, 8)
		checkBound(t, fmt.Sprintf("fn2 high N=%d k=%d", sh.n, sh.k), high,
			7*sh.k*(log2ceil(sh.n, sh.k)+1)+3)
	}
}

// TestTheorem4Bound: CC graceful degradation within ceil(c/k)*(7k+2) at
// every contention level c.
func TestTheorem4Bound(t *testing.T) {
	n, k := 16, 2
	for _, c := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		m := worstAcq(t, Graceful{}, machine.CacheCoherent, n, k, c, 6)
		checkBound(t, fmt.Sprintf("Thm4 c=%d", c), m, ceilDiv(c, k)*(7*k+2))
	}
}

// TestTheorem5Bound: DSM inductive within 14(N-k).
func TestTheorem5Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{3, 1}, {4, 2}, {6, 2}, {8, 4}} {
		m := worstAcq(t, InductiveDSM{}, machine.Distributed, sh.n, sh.k, 0, 10)
		checkBound(t, fmt.Sprintf("Thm5 N=%d k=%d", sh.n, sh.k), m, 14*(sh.n-sh.k))
	}
}

// TestTheorem6Bound: DSM tree within 14k*ceil(log2(N/k)).
func TestTheorem6Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{8, 2}, {16, 4}, {24, 4}} {
		m := worstAcq(t, TreeDSM{}, machine.Distributed, sh.n, sh.k, 0, 8)
		checkBound(t, fmt.Sprintf("Thm6 N=%d k=%d", sh.n, sh.k), m, 14*sh.k*log2ceil(sh.n, sh.k))
	}
}

// TestTheorem7Bound: DSM fast path, both regimes.
func TestTheorem7Bound(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{12, 2}, {16, 4}} {
		low := worstAcq(t, FastPathDSM{}, machine.Distributed, sh.n, sh.k, sh.k, 10)
		checkBound(t, fmt.Sprintf("Thm7 low N=%d k=%d", sh.n, sh.k), low, 14*sh.k+2)
		high := worstAcq(t, FastPathDSM{}, machine.Distributed, sh.n, sh.k, 0, 6)
		checkBound(t, fmt.Sprintf("Thm7 high N=%d k=%d", sh.n, sh.k), high,
			14*sh.k*(log2ceil(sh.n, sh.k)+1)+2)
	}
}

// TestTheorem8Bound: DSM graceful degradation.
func TestTheorem8Bound(t *testing.T) {
	n, k := 12, 2
	for _, c := range []int{1, 2, 4, 6, 8, 12} {
		m := worstAcq(t, GracefulDSM{}, machine.Distributed, n, k, c, 5)
		checkBound(t, fmt.Sprintf("Thm8 c=%d", c), m, ceilDiv(c, k)*(14*k+2))
	}
}

// TestTheorem9Bound: CC k-assignment adds at most k remote references.
func TestTheorem9Bound(t *testing.T) {
	n, k := 16, 4
	p := Assignment{Excl: FastPath{}}
	low := worstAcq(t, p, machine.CacheCoherent, n, k, k, 10)
	checkBound(t, "Thm9 low", low, 7*k+2+k)
	high := worstAcq(t, p, machine.CacheCoherent, n, k, 0, 8)
	checkBound(t, "Thm9 high", high, 7*k*(log2ceil(n, k)+1)+2+k)
}

// TestTheorem10Bound: DSM k-assignment adds at most k remote references.
func TestTheorem10Bound(t *testing.T) {
	n, k := 16, 4
	p := Assignment{Excl: FastPathDSM{}}
	low := worstAcq(t, p, machine.Distributed, n, k, k, 8)
	checkBound(t, "Thm10 low", low, 14*k+2+k)
	high := worstAcq(t, p, machine.Distributed, n, k, 0, 5)
	checkBound(t, "Thm10 high", high, 14*k*(log2ceil(n, k)+1)+2+k)
}

// TestUncontendedConstants pins the exact uncontended cost of each paper
// protocol at a representative shape: with contention 1, an acquisition
// must stay within the paper's no-contention figure.
func TestUncontendedConstants(t *testing.T) {
	n, k := 16, 4
	cases := []struct {
		p     proto.Protocol
		model machine.Model
		bound int
	}{
		{Inductive{}, machine.CacheCoherent, 7 * (n - k)},
		{Tree{}, machine.CacheCoherent, 7 * k * log2ceil(n, k)},
		{FastPath{}, machine.CacheCoherent, 7*k + 2},
		{Graceful{}, machine.CacheCoherent, 7*k + 2},
		{InductiveDSM{}, machine.Distributed, 14 * (n - k)},
		{TreeDSM{}, machine.Distributed, 14 * k * log2ceil(n, k)},
		{FastPathDSM{}, machine.Distributed, 14*k + 2},
		{GracefulDSM{}, machine.Distributed, 14*k + 2},
	}
	for _, tc := range cases {
		m := worstAcq(t, tc.p, tc.model, n, k, 1, 4)
		checkBound(t, "uncontended "+tc.p.Name(), m, tc.bound)
	}
}

// TestBaselinesDegradeUnboundedly reproduces the "infinity with
// contention" column of Table 1: the baselines' per-acquisition remote
// references grow with the number of competing processes (they busy-wait
// on shared locations), while the paper's fast-path algorithm stays
// bounded by its contention-independent worst case.
func TestBaselinesDegradeUnboundedly(t *testing.T) {
	k := 2
	grows := func(p proto.Protocol, model machine.Model) (small, large uint64) {
		small = worstAcq(t, p, model, 4, k, 0, 4)
		large = worstAcq(t, p, model, 16, k, 0, 4)
		return
	}
	for _, b := range []proto.Protocol{SpinFAA{}, Queue{}, Bakery{}} {
		s, l := grows(b, machine.CacheCoherent)
		if l <= s {
			t.Errorf("%s: expected remote refs to grow with contention (4 procs: %d, 16 procs: %d)", b.Name(), s, l)
		}
	}
	// The paper's algorithm is bounded by its N-dependent worst case
	// regardless of schedule adversity.
	s, l := grows(FastPath{}, machine.CacheCoherent)
	bound := uint64(7*k*(log2ceil(16, k)+1) + 2)
	if s > bound || l > bound {
		t.Errorf("cc-fastpath exceeded bound %d (got %d, %d)", bound, s, l)
	}
}

// TestUncontendedComplexityClasses reproduces Table 1's "complexity
// without contention" column. The read/write baselines stand in for
// algorithms designed before local-spin cost models, so they are
// measured on the model without caches (DSM), where every non-home
// access is remote: bakery pays O(N), scanquad pays O(N^2), and the
// paper's fast path pays O(k) — independent of N.
func TestUncontendedComplexityClasses(t *testing.T) {
	k := 2
	measure := func(p proto.Protocol, n int) uint64 {
		return worstAcq(t, p, machine.Distributed, n, k, 1, 2)
	}
	for _, n := range []int{8, 16, 32} {
		bak := measure(Bakery{}, n)
		quad := measure(ScanQuad{}, n)
		fp := measure(FastPathDSM{}, n)
		t.Logf("N=%d: bakery=%d scanquad=%d dsm-fastpath=%d", n, bak, quad, fp)
		if bak < uint64(n) {
			t.Errorf("bakery at N=%d should cost at least N remote refs, got %d", n, bak)
		}
		if float64(quad) < 0.5*float64(n)*float64(n) {
			t.Errorf("scanquad at N=%d should cost ~N^2 remote refs, got %d", n, quad)
		}
		if fp > uint64(14*k+2) {
			t.Errorf("dsm-fastpath at N=%d should cost at most 14k+2=%d, got %d", n, 14*k+2, fp)
		}
	}
	// Growth rates: bakery ~linear, scanquad ~quadratic.
	b8, b32 := measure(Bakery{}, 8), measure(Bakery{}, 32)
	ratio := float64(b32) / float64(b8)
	if math.Abs(ratio-4) > 2 {
		t.Errorf("bakery growth 8->32 procs should be ~4x, got %.1fx", ratio)
	}
	q8, q32 := measure(ScanQuad{}, 8), measure(ScanQuad{}, 32)
	if float64(q32)/float64(q8) < 8 {
		t.Errorf("scanquad growth 8->32 procs should be >=8x, got %.1fx", float64(q32)/float64(q8))
	}
}
