package algo

import (
	"fmt"
	"sort"

	"kexclusion/internal/proto"
)

// All returns every protocol in the repository, paper algorithms and
// Table 1 baselines alike, in a stable order.
func All() []proto.Protocol {
	return []proto.Protocol{
		// The paper's algorithms.
		Inductive{},
		Tree{},
		FastPath{},
		FastPathFAA{},
		Graceful{},
		Unbounded{},
		InductiveDSM{},
		TreeDSM{},
		FastPathDSM{},
		GracefulDSM{},
		Assignment{Excl: FastPath{}},
		Assignment{Excl: FastPathDSM{}},
		ResilientObject{},
		// Table 1 baselines.
		Queue{},
		SpinFAA{},
		Bakery{},
		ScanQuad{},
	}
}

// ByName looks a protocol up by its Name().
func ByName(name string) (proto.Protocol, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("algo: unknown protocol %q (have %v)", name, Names())
}

// Names lists all protocol names, sorted.
func Names() []string {
	var names []string
	for _, p := range All() {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return names
}
