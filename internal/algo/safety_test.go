package algo

import (
	"fmt"
	"testing"
	"testing/quick"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// modelsFor returns the machine models a protocol's complexity claims
// target; safety must hold on either, so safety tests use these only to
// pick a representative model.
func modelsFor(p proto.Protocol) []machine.Model {
	return p.Traits().Models
}

func runOnce(t *testing.T, p proto.Protocol, model machine.Model, n, k int, cfg proto.Config) proto.Result {
	t.Helper()
	res := proto.RunProtocol(p, model, n, k, cfg)
	for _, v := range res.Violations {
		t.Errorf("%s N=%d k=%d %v: %s", p.Name(), n, k, model, v)
	}
	return res
}

// TestSafetyRoundRobin checks the k-exclusion invariant for every
// protocol under the fair scheduler across several (N,k) shapes.
func TestSafetyRoundRobin(t *testing.T) {
	shapes := []struct{ n, k int }{
		{2, 1}, {3, 1}, {3, 2}, {5, 2}, {8, 3}, {9, 4}, {16, 4},
	}
	for _, p := range All() {
		for _, model := range modelsFor(p) {
			for _, sh := range shapes {
				name := fmt.Sprintf("%s/%v/N%dk%d", p.Name(), model, sh.n, sh.k)
				t.Run(name, func(t *testing.T) {
					res := runOnce(t, p, model, sh.n, sh.k, proto.Config{
						Acquisitions: 6,
					})
					if !res.Completed {
						t.Fatalf("run did not complete in %d steps", res.Steps)
					}
					if res.MaxOccupancy > sh.k {
						t.Fatalf("occupancy %d exceeds k=%d", res.MaxOccupancy, sh.k)
					}
					if want := sh.n * 6; len(res.Records) != want {
						t.Fatalf("recorded %d acquisitions, want %d", len(res.Records), want)
					}
				})
			}
		}
	}
}

// TestSafetyRandomSchedules drives every protocol with many seeded random
// and bursty schedules, asserting the k-exclusion invariant throughout.
func TestSafetyRandomSchedules(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	shapes := []struct{ n, k int }{{4, 2}, {7, 3}, {12, 4}}
	for _, p := range All() {
		for _, model := range modelsFor(p) {
			for _, sh := range shapes {
				name := fmt.Sprintf("%s/%v/N%dk%d", p.Name(), model, sh.n, sh.k)
				t.Run(name, func(t *testing.T) {
					for seed := 0; seed < seeds; seed++ {
						var sched machine.Scheduler
						if seed%2 == 0 {
							sched = machine.NewRandom(int64(seed))
						} else {
							sched = machine.NewBurst(int64(seed), 12)
						}
						res := runOnce(t, p, model, sh.n, sh.k, proto.Config{
							Acquisitions: 4,
							Sched:        sched,
							NCSSteps:     seed % 3,
						})
						if !res.Completed {
							t.Fatalf("seed %d: run did not complete", seed)
						}
					}
				})
			}
		}
	}
}

// TestSafetyUnderCrashes verifies that for the paper's resilient
// protocols, up to k-1 processes crashing at arbitrary points (including
// inside their critical sections) never breaks the invariant and never
// prevents the survivors from completing — the paper's definition of a
// (k-1)-resilient implementation.
func TestSafetyUnderCrashes(t *testing.T) {
	shapes := []struct{ n, k int }{{4, 2}, {6, 3}, {9, 4}}
	phases := []proto.Phase{proto.PhaseEntry, proto.PhaseCritical, proto.PhaseExit}
	for _, p := range All() {
		if !p.Traits().Resilient {
			continue
		}
		for _, model := range modelsFor(p) {
			for _, sh := range shapes {
				name := fmt.Sprintf("%s/%v/N%dk%d", p.Name(), model, sh.n, sh.k)
				t.Run(name, func(t *testing.T) {
					for seed := 0; seed < 12; seed++ {
						// Crash k-1 processes at scheduler-dependent points.
						var crashes []proto.Crash
						for j := 0; j < sh.k-1; j++ {
							crashes = append(crashes, proto.Crash{
								Proc:       (seed + 3*j) % sh.n,
								Phase:      phases[(seed+j)%len(phases)],
								AfterSteps: seed % 5,
							})
						}
						res := proto.RunProtocol(p, model, sh.n, sh.k, proto.Config{
							Acquisitions: 4,
							Sched:        machine.NewRandom(int64(seed)),
							Crashes:      crashes,
						})
						for _, v := range res.Violations {
							t.Fatalf("seed %d: %s", seed, v)
						}
						if !res.Completed {
							t.Fatalf("seed %d: survivors did not complete with %d crashes (steps=%d)",
								seed, len(crashes), res.Steps)
						}
					}
				})
			}
		}
	}
}

// TestStarvationFreedom asserts the paper's progress property: under a
// fair scheduler with at most k-1 crashed processes, every live process
// in its entry section reaches its critical section within a bounded
// number of its own steps.
func TestStarvationFreedom(t *testing.T) {
	for _, p := range All() {
		tr := p.Traits()
		if !tr.StarvationFree || !tr.Resilient {
			continue
		}
		for _, model := range modelsFor(p) {
			n, k := 8, 3
			t.Run(fmt.Sprintf("%s/%v", p.Name(), model), func(t *testing.T) {
				var crashes []proto.Crash
				for j := 0; j < k-1; j++ {
					crashes = append(crashes, proto.Crash{
						Proc:       j,
						Phase:      proto.PhaseCritical,
						AfterSteps: 0,
					})
				}
				res := proto.RunProtocol(p, model, n, k, proto.Config{
					Acquisitions: 8,
					Crashes:      crashes,
					// Generous but finite: a starved process fails this.
					EntryStepBound: 200 * n,
				})
				for _, v := range res.Violations {
					t.Fatal(v)
				}
				if !res.Completed {
					t.Fatalf("live processes failed to complete (steps=%d)", res.Steps)
				}
			})
		}
	}
}

// TestAssignmentNames checks Figure 7's k-assignment guarantee: names of
// processes concurrently in their critical sections are distinct and
// drawn from 0..k-1 (the driver validates at every entry; here we also
// assert the full name range gets used under full contention).
func TestAssignmentNames(t *testing.T) {
	for _, p := range []proto.Protocol{
		Assignment{Excl: FastPath{}},
		Assignment{Excl: Inductive{}},
		Assignment{Excl: FastPathDSM{}},
	} {
		model := p.Traits().Models[0]
		t.Run(p.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				res := proto.RunProtocol(p, model, 9, 3, proto.Config{
					Acquisitions: 5,
					Sched:        machine.NewRandom(seed),
					CSSteps:      3,
				})
				for _, v := range res.Violations {
					t.Fatal(v)
				}
				if !res.Completed {
					t.Fatal("did not complete")
				}
			}
		})
	}
}

// TestQuickRandomConfigs property-tests the flagship protocols over
// random (n, k, seed, contention) configurations.
func TestQuickRandomConfigs(t *testing.T) {
	protocols := []proto.Protocol{FastPath{}, Graceful{}, FastPathDSM{}, GracefulDSM{}}
	f := func(rawN, rawK uint8, seed int64, rawC uint8) bool {
		n := 2 + int(rawN%14)
		k := 1 + int(rawK)%n
		if k >= n {
			k = n - 1
		}
		if k < 1 {
			k = 1
		}
		c := 1 + int(rawC)%n
		for _, p := range protocols {
			res := proto.RunProtocol(p, p.Traits().Models[0], n, k, proto.Config{
				Acquisitions:  3,
				MaxContention: c,
				Sched:         machine.NewRandom(seed),
			})
			if len(res.Violations) > 0 || !res.Completed || res.MaxOccupancy > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueBaselineLeaksSlotOnWaiterCrash documents why the paper
// rejects queue-based k-exclusion (its §3 motivation): a process that
// crashes while waiting in the queue still consumes the critical-section
// slot that a releaser hands it, so every waiter crash permanently leaks
// a slot. With k=1 a single waiter crash therefore deadlocks the system,
// while the paper's algorithms tolerate k-1 crashes anywhere.
func TestQueueBaselineLeaksSlotOnWaiterCrash(t *testing.T) {
	// Proc 1 loses the race for the single slot, enqueues itself, and
	// crashes while waiting. The next release dequeues the corpse and
	// hands it the slot, which is never returned: procs 2 and 3
	// deadlock. (With k=1 the paper's algorithms tolerate zero crashes
	// too — their advantage, a crash budget of k-1 anywhere including
	// entry sections, is exercised by TestSafetyUnderCrashes.)
	res := proto.RunProtocol(Queue{}, machine.CacheCoherent, 4, 1, proto.Config{
		Acquisitions: 3,
		Crashes:      []proto.Crash{{Proc: 1, Phase: proto.PhaseEntry, AfterSteps: 2}},
		StepLimit:    20000,
	})
	if res.Completed {
		t.Fatal("queue baseline unexpectedly survived a waiter crash with k=1")
	}
}
