package algo

import (
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// FuzzExclusionSafety fuzzes (protocol, shape, seed, contention, crash
// pattern) and asserts the k-exclusion invariant and completion. Run
// with `go test -fuzz=FuzzExclusionSafety ./internal/algo` for a
// continuous search; the seed corpus runs in every ordinary test pass.
func FuzzExclusionSafety(f *testing.F) {
	f.Add(uint8(0), uint8(6), uint8(2), int64(1), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(9), uint8(3), int64(42), uint8(4), uint8(1))
	f.Add(uint8(7), uint8(12), uint8(4), int64(7), uint8(12), uint8(2))
	f.Add(uint8(1), uint8(5), uint8(1), int64(99), uint8(2), uint8(0))

	protocols := All()
	f.Fuzz(func(t *testing.T, prIdx, rawN, rawK uint8, seed int64, rawC, rawCrash uint8) {
		pr := protocols[int(prIdx)%len(protocols)]
		n := 2 + int(rawN%12)
		k := 1 + int(rawK)%(n-1)
		c := int(rawC) % (n + 1)

		var crashes []proto.Crash
		tr := pr.Traits()
		nCrash := int(rawCrash) % k // at most k-1
		if !tr.Resilient {
			nCrash = 0
		}
		for j := 0; j < nCrash; j++ {
			crashes = append(crashes, proto.Crash{
				Proc:       (j*3 + int(seed)%n + n) % n,
				Phase:      []proto.Phase{proto.PhaseEntry, proto.PhaseCritical, proto.PhaseExit}[j%3],
				AfterSteps: j,
			})
		}

		for _, model := range tr.Models {
			res := proto.RunProtocol(pr, model, n, k, proto.Config{
				Acquisitions:  2,
				MaxContention: c,
				Sched:         machine.NewRandom(seed),
				Crashes:       crashes,
			})
			for _, v := range res.Violations {
				t.Fatalf("%s N=%d k=%d c=%d crashes=%d seed=%d: %s",
					pr.Name(), n, k, c, nCrash, seed, v)
			}
			if res.MaxOccupancy > k {
				t.Fatalf("%s: occupancy %d > k=%d", pr.Name(), res.MaxOccupancy, k)
			}
			// Starvation-free resilient protocols must complete even
			// with the injected crashes; others at least without them.
			if tr.Resilient && tr.StarvationFree && !res.Completed {
				t.Fatalf("%s N=%d k=%d c=%d crashes=%d seed=%d: incomplete",
					pr.Name(), n, k, c, nCrash, seed)
			}
		}
	})
}

// FuzzBurstSchedules drives the flagship protocols with fuzzed bursty
// schedules, the shape most likely to expose handoff races.
func FuzzBurstSchedules(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(77), uint8(15))
	f.Fuzz(func(t *testing.T, seed int64, rawBurst uint8) {
		burst := 1 + int(rawBurst%31)
		for _, pr := range []proto.Protocol{FastPath{}, GracefulDSM{}, Assignment{Excl: FastPath{}}} {
			res := proto.RunProtocol(pr, pr.Traits().Models[0], 8, 3, proto.Config{
				Acquisitions: 3,
				Sched:        machine.NewBurst(seed, burst),
			})
			for _, v := range res.Violations {
				t.Fatalf("%s seed=%d burst=%d: %s", pr.Name(), seed, burst, v)
			}
			if !res.Completed {
				t.Fatalf("%s seed=%d burst=%d: incomplete", pr.Name(), seed, burst)
			}
		}
	})
}
