package algo

import (
	"strings"
	"testing"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// stepUntilCS drives a session's entry section to completion, bounding
// the number of steps, optionally interleaving another function between
// steps.
func stepUntilCS(t *testing.T, m *machine.Mem, s proto.Session, p, limit int) int {
	t.Helper()
	for i := 1; i <= limit; i++ {
		if s.StepAcquire(m, p) {
			return i
		}
	}
	t.Fatalf("proc %d did not enter CS within %d steps", p, limit)
	return 0
}

func stepUntilNCS(t *testing.T, m *machine.Mem, s proto.Session, p, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if s.StepRelease(m, p) {
			return
		}
	}
	t.Fatalf("proc %d did not finish exit within %d steps", p, limit)
}

// TestFig2StatementSemantics walks one Figure 2 layer through the
// uncontended and contended paths, checking the shared variables after
// each statement against the paper's annotations.
func TestFig2StatementSemantics(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 3)
	layer := newFig2(m, 1, nil) // (2,1)-exclusion building block

	if m.Peek(layer.x) != 1 || m.Peek(layer.q) != qBottom {
		t.Fatal("initialization wrong: X must be k, Q must be bottom")
	}

	s0 := layer.NewSession(0)
	// Uncontended: statement 2 takes the slot and enters directly.
	if steps := stepUntilCS(t, m, s0, 0, 1); steps != 1 {
		t.Fatalf("uncontended entry took %d steps, want 1", steps)
	}
	if m.Peek(layer.x) != 0 {
		t.Fatalf("X = %d after acquisition, want 0", m.Peek(layer.x))
	}

	// Contended: proc 1 must record itself in Q and wait.
	s1 := layer.NewSession(1)
	if s1.StepAcquire(m, 1) { // statement 2: no slot
		t.Fatal("proc 1 entered CS with no slot available")
	}
	if m.Peek(layer.x) != -1 {
		t.Fatalf("X = %d with one holder and one waiter, want -1", m.Peek(layer.x))
	}
	if s1.StepAcquire(m, 1) { // statement 3: Q := 1
		t.Fatal("statement 3 must not enter CS")
	}
	if m.Peek(layer.q) != 1 {
		t.Fatalf("Q = %d after statement 3, want 1", m.Peek(layer.q))
	}
	if s1.StepAcquire(m, 1) { // statement 4: X < 0, so wait
		t.Fatal("statement 4 must not enter CS while X < 0")
	}
	for i := 0; i < 3; i++ {
		if s1.StepAcquire(m, 1) { // statement 5: spin
			t.Fatal("spin must not terminate before release")
		}
	}

	// Proc 0 releases: statement 6 frees the slot, statement 7 frees
	// the waiter.
	if s0.StepRelease(m, 0) { // statement 6
		t.Fatal("release must take two statements")
	}
	if m.Peek(layer.x) != 0 {
		t.Fatalf("X = %d after statement 6, want 0", m.Peek(layer.x))
	}
	if !s0.StepRelease(m, 0) { // statement 7
		t.Fatal("single layer release must finish at statement 7")
	}
	if m.Peek(layer.q) != qBottom {
		t.Fatalf("Q = %d after statement 7, want bottom", m.Peek(layer.q))
	}
	if !s1.StepAcquire(m, 1) {
		t.Fatal("waiter must enter CS after the release overwrote Q")
	}
	stepUntilNCS(t, m, s1, 1, 4)
}

// TestFig2WaiterOvertakenByFreshSlot: if a slot frees between a waiter's
// statements 3 and 4, statement 4 lets it in without spinning.
func TestFig2WaiterAdmittedAtStatement4(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 3)
	layer := newFig2(m, 1, nil)

	s0 := layer.NewSession(0)
	stepUntilCS(t, m, s0, 0, 1)

	s1 := layer.NewSession(1)
	s1.StepAcquire(m, 1) // statement 2: miss
	s1.StepAcquire(m, 1) // statement 3: Q := 1

	// Proc 0 releases completely before proc 1 reads X.
	stepUntilNCS(t, m, s0, 0, 3)
	if !s1.StepAcquire(m, 1) { // statement 4 sees X >= 0
		t.Fatal("waiter must be admitted at statement 4 once X >= 0")
	}
}

// TestSessionCloneIndependence: cloned sessions advance independently
// and keys reflect the program counter.
func TestSessionCloneIndependence(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 2)
	layer := newFig2(m, 1, nil)

	s := layer.NewSession(0)
	k0 := s.Key()
	s.StepAcquire(m, 0)
	k1 := s.Key()
	if k0 == k1 {
		t.Fatal("key must change with the program counter")
	}
	c := s.Clone()
	if c.Key() != k1 {
		t.Fatal("clone must snapshot the key")
	}
	s.StepRelease(m, 0)
	s.StepRelease(m, 0)
	if c.Key() != k1 {
		t.Fatal("advancing the original must not disturb the clone")
	}
}

// TestCloneKeyContractAllProtocols: for every protocol, a fresh session
// equals its clone's key, and the key changes as the session advances
// through a full acquisition under zero contention.
func TestCloneKeyContractAllProtocols(t *testing.T) {
	protocols := append(All(), SpinLocks()...)
	for _, pr := range protocols {
		t.Run(pr.Name(), func(t *testing.T) {
			k := 1
			m := machine.NewMem(pr.Traits().Models[0], 4)
			inst := pr.Build(m, 4, k, proto.BuildOptions{MaxAcquisitions: 4})
			s := inst.NewSession(2)
			if s.Key() != s.Clone().Key() {
				t.Fatal("fresh session and clone keys differ")
			}
			seen := map[string]bool{s.Key(): true}
			changed := false
			for i := 0; i < 1000; i++ {
				done := s.StepAcquire(m, 2)
				if !seen[s.Key()] {
					changed = true
				}
				seen[s.Key()] = true
				if done {
					break
				}
			}
			if !changed {
				t.Fatal("key never changed during an acquisition")
			}
			if s.AssignedName() >= k {
				t.Fatal("assigned name out of range")
			}
			stepUntilNCS(t, m, s, 2, 1000)
		})
	}
}

// TestFig6SpinLocationRotation: Figure 6 cycles through its k+2 spin
// locations, never reusing one whose R counter is nonzero.
func TestFig6SpinLocationRotation(t *testing.T) {
	m := machine.NewMem(machine.Distributed, 3)
	layer := newFig6(m, 3, 1, nil)
	if layer.nloc != 3 {
		t.Fatalf("k+2 spin locations expected, got %d", layer.nloc)
	}

	// Occupy the slot so proc 1 must take the waiting path repeatedly.
	s0 := layer.NewSession(0)
	stepUntilCS(t, m, s0, 0, 1)

	s1 := layer.NewSession(1).(*fig6Session)
	var locs []int
	for round := 0; round < 3; round++ {
		// Drive proc 1 until it parks at statement 14.
		for i := 0; i < 50 && s1.pc != f6Stmt14; i++ {
			if s1.StepAcquire(m, 1) {
				t.Fatal("waiter entered CS while the slot is held")
			}
		}
		if s1.pc != f6Stmt14 {
			t.Fatal("waiter never reached the local spin")
		}
		locs = append(locs, s1.nextLoc)
		// Release and let the waiter in, then re-occupy.
		stepUntilNCS(t, m, s0, 0, 10)
		stepUntilCS(t, m, s1, 1, 50)
		stepUntilNCS(t, m, s1, 1, 10)
		stepUntilCS(t, m, s0, 0, 10)
	}
	if locs[0] == locs[1] && locs[1] == locs[2] {
		t.Fatalf("spin locations never rotated: %v", locs)
	}
	stepUntilNCS(t, m, s0, 0, 10)
}

// TestQueueStatementSemantics: Figure 1's large atomic statements
// enqueue losers and hand slots to dequeued processes in FIFO order.
func TestQueueStatementSemantics(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 3)
	inst := newQueueExclusion(m, 3, 1)

	s0, s1, s2 := inst.NewSession(0), inst.NewSession(1), inst.NewSession(2)
	if !s0.StepAcquire(m, 0) {
		t.Fatal("first process must enter directly")
	}
	if s1.StepAcquire(m, 1) || s2.StepAcquire(m, 2) {
		t.Fatal("losers must enqueue, not enter")
	}
	if count := m.Peek(inst.qcount); count != 2 {
		t.Fatalf("queue should hold 2 waiters, count=%d", count)
	}
	// Waiters spin while enqueued.
	if s1.StepAcquire(m, 1) || s2.StepAcquire(m, 2) {
		t.Fatal("waiters must keep spinning")
	}
	// Release dequeues proc 1 (FIFO), not proc 2.
	if !s0.StepRelease(m, 0) {
		t.Fatal("queue release is one atomic statement")
	}
	if s2.StepAcquire(m, 2) {
		t.Fatal("proc 2 entered ahead of proc 1: FIFO violated")
	}
	if !s1.StepAcquire(m, 1) {
		t.Fatal("proc 1 was dequeued and must enter")
	}
}

// TestRenamingScanSemantics: the Figure 7 scan takes the first clear
// bit, and the k-th process needs no bit at all.
func TestRenamingScanSemantics(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 4)
	inst := NewAssignment(m, proto.Trivial(3)).(*assignInstance)

	// Pre-set bit 0, as if another process holds name 0.
	m.Poke(inst.bits, 1)

	s := inst.NewSession(0)
	s.StepAcquire(m, 0) // trivial exclusion enters immediately... scan next
	// The trivial inner returns true on the first call, moving to the
	// scan; subsequent steps test bits.
	for i := 0; i < 4; i++ {
		if s.StepAcquire(m, 0) {
			break
		}
	}
	if got := s.AssignedName(); got != 1 {
		t.Fatalf("name = %d, want 1 (bit 0 is taken)", got)
	}

	// Take bit 1's and ensure the last name is bit-free.
	m.Poke(inst.bits+1, 1)
	s2 := inst.NewSession(1)
	for i := 0; i < 6; i++ {
		if s2.StepAcquire(m, 1) {
			break
		}
	}
	if got := s2.AssignedName(); got != 2 {
		t.Fatalf("name = %d, want 2 (both bits taken)", got)
	}

	// Releasing name 1 clears its bit; name 2 has no bit to clear.
	for i := 0; i < 4; i++ {
		if s.StepRelease(m, 0) {
			break
		}
	}
	if m.Peek(inst.bits+1) != 0 {
		t.Fatal("bit 1 must be cleared on release")
	}
}

// TestTreeDepths: the arbitration tree's per-group path length equals
// ceil(log2(ceil(N/k))) at the deepest leaf.
func TestTreeDepths(t *testing.T) {
	cases := []struct{ n, k, wantDepth int }{
		{8, 1, 3},
		{16, 4, 2},
		{24, 4, 3},
		{9, 4, 2},
		{4, 2, 1},
	}
	for _, tc := range cases {
		m := machine.NewMem(machine.CacheCoherent, tc.n)
		inst := Tree{}.Build(m, tc.n, tc.k, proto.BuildOptions{}).(*treeInstance)
		maxDepth := 0
		for _, path := range inst.path {
			if len(path) > maxDepth {
				maxDepth = len(path)
			}
		}
		if maxDepth != tc.wantDepth {
			t.Errorf("N=%d k=%d: depth %d, want %d", tc.n, tc.k, maxDepth, tc.wantDepth)
		}
	}
}

// TestGracefulLevelCount: the nested fast paths peel k participants per
// level until at most 2k remain.
func TestGracefulLevelCount(t *testing.T) {
	m := machine.NewMem(machine.CacheCoherent, 16)
	inst := Graceful{}.Build(m, 16, 2, proto.BuildOptions{})
	// Count nesting by walking session keys: each fast-path level
	// contributes one "fp:" fragment.
	key := inst.NewSession(0).Key()
	levels := strings.Count(key, "fp:")
	// n=16, k=2: counts 16,14,12,...,6 are >2k=4 -> 6 levels.
	if levels != 6 {
		t.Fatalf("nested fast path levels = %d, want 6 (key %q)", levels, key)
	}
}

// TestRegistryLookups covers the registry helpers.
func TestRegistryLookups(t *testing.T) {
	if _, err := ByName("cc-fastpath"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() returned %d entries for %d protocols", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
