package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// fig5Instance is Figure 5: (N,k)-exclusion for distributed
// shared-memory machines in which every process busy-waits only on spin
// locations stored in its own memory module — a fresh location P[p][v]
// for every acquisition, so space is unbounded (bounded here by
// maxLoc, sized from the run's acquisition budget). The shared register
// Q names the spin location of the currently blocked process as a
// (pid, loc) record, updated with compare&swap so that a process can
// detect that the blocked process it read has already been released.
//
// Shared variables (paper's Figure 5):
//
//	X : -1..k                   slot counter, initially k
//	Q : (pid, loc)              current spin location, initially (0,0)
//	P : array[N][maxLoc] bool   P[p][*] local to process p
type fig5Instance struct {
	inner  proto.Instance
	x, q   machine.Addr
	p0     machine.Addr // base of P; P[p][v] = p0 + p*maxLoc + v
	maxLoc int
	k      int
}

func newFig5(m *machine.Mem, n, k int, inner proto.Instance, maxLoc int) *fig5Instance {
	if maxLoc < 2 {
		maxLoc = 2
	}
	inst := &fig5Instance{
		inner:  inner,
		x:      m.Alloc1(machine.HomeShared),
		q:      m.Alloc1(machine.HomeShared),
		maxLoc: maxLoc,
		k:      k,
	}
	// Allocate each process's spin locations in its own memory module.
	for p := 0; p < n; p++ {
		base := m.Alloc(maxLoc, p)
		if p == 0 {
			inst.p0 = base
		}
	}
	m.Poke(inst.x, int64(k))
	m.Poke(inst.q, inst.pack(0, 0))
	return inst
}

func (in *fig5Instance) pack(pid, loc int) int64 { return int64(pid*in.maxLoc + loc) }
func (in *fig5Instance) spin(packed int64) machine.Addr {
	return in.p0 + machine.Addr(packed)
}

func (in *fig5Instance) K() int { return in.k }

func (in *fig5Instance) NewSession(p int) proto.Session {
	s := &fig5Session{inst: in}
	if in.inner != nil {
		s.inner = in.inner.NewSession(p)
	}
	s.reset()
	return s
}

// fig5Session program counters; statement numbers follow Figure 5.
const (
	f5Stmt1 = iota // Acquire(N,k+1)
	f5Stmt2        // if fetch_and_increment(X,-1) <= 0
	f5Stmt3        // next.loc := next.loc+1
	f5Stmt4        // P[p][next.loc] := false
	f5Stmt5        // v := Q
	f5Stmt6        // P[v.pid][v.loc] := true
	f5Stmt7        // if compare_and_swap(Q, v, next)
	f5Stmt8        // if X < 0
	f5Stmt9        // while !P[p][next.loc] (local spin)
	f5InCS
	f5Stmt10 // fetch_and_increment(X,1)
	f5Stmt11 // v := Q
	f5Stmt12 // P[v.pid][v.loc] := true
	f5Stmt13 // Release(N,k+1)
)

type fig5Session struct {
	inst    *fig5Instance
	inner   proto.Session
	pc      int
	nextLoc int
	v       int64
}

func (s *fig5Session) reset() {
	if s.inner != nil {
		s.pc = f5Stmt1
	} else {
		s.pc = f5Stmt2
	}
}

func (s *fig5Session) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case f5Stmt1:
		if s.inner.StepAcquire(m, p) {
			s.pc = f5Stmt2
		}
	case f5Stmt2:
		if old := m.FAA(p, in.x, -1); old <= 0 {
			s.pc = f5Stmt3
		} else {
			s.pc = f5InCS
			return true
		}
	case f5Stmt3:
		s.nextLoc++ // private; a spin location never used before
		if s.nextLoc >= in.maxLoc {
			panic("fig5: spin locations exhausted; raise BuildOptions.MaxAcquisitions")
		}
		s.pc = f5Stmt4
	case f5Stmt4:
		m.Write(p, in.spin(in.pack(p, s.nextLoc)), 0)
		s.pc = f5Stmt5
	case f5Stmt5:
		s.v = m.Read(p, in.q)
		s.pc = f5Stmt6
	case f5Stmt6:
		m.Write(p, in.spin(s.v), 1) // release currently spinning process
		s.pc = f5Stmt7
	case f5Stmt7:
		if m.CAS(p, in.q, s.v, in.pack(p, s.nextLoc)) {
			s.pc = f5Stmt8
		} else {
			// Q changed between statements 5 and 7: the process we
			// read has already been released; do not wait.
			s.pc = f5InCS
			return true
		}
	case f5Stmt8:
		if m.Read(p, in.x) < 0 {
			s.pc = f5Stmt9
		} else {
			s.pc = f5InCS
			return true
		}
	case f5Stmt9:
		if m.Read(p, in.spin(in.pack(p, s.nextLoc))) != 0 {
			s.pc = f5InCS
			return true
		}
	default:
		panic("fig5: StepAcquire called in wrong state")
	}
	return false
}

func (s *fig5Session) StepRelease(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case f5InCS:
		m.FAA(p, in.x, 1) // statement 10
		s.pc = f5Stmt11
	case f5Stmt11:
		s.v = m.Read(p, in.q)
		s.pc = f5Stmt12
	case f5Stmt12:
		m.Write(p, in.spin(s.v), 1)
		if s.inner != nil {
			s.pc = f5Stmt13
		} else {
			s.reset()
			return true
		}
	case f5Stmt13:
		if s.inner.StepRelease(m, p) {
			s.reset()
			return true
		}
	default:
		panic("fig5: StepRelease called in wrong state")
	}
	return false
}

func (s *fig5Session) AssignedName() int { return -1 }

func (s *fig5Session) Clone() proto.Session {
	c := &fig5Session{inst: s.inst, pc: s.pc, nextLoc: s.nextLoc, v: s.v}
	if s.inner != nil {
		c.inner = s.inner.Clone()
	}
	return c
}

func (s *fig5Session) Key() string {
	key := proto.KeyF("f5:%d:%d:%d", s.pc, s.nextLoc, s.v)
	if s.inner == nil {
		return key
	}
	return proto.KeyJoin(key, s.inner.Key())
}

// Unbounded is Figure 5 as a full (N,k)-exclusion protocol (inductive
// chain of Figure 5 layers). It demonstrates DSM local-spin k-exclusion
// before the paper bounds its space; complexity per layer is lower than
// Figure 6's but space grows with the number of acquisitions.
type Unbounded struct{}

func (Unbounded) Name() string { return "dsm-unbounded" }

func (Unbounded) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.Distributed},
	}
}

func (Unbounded) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	if n <= k {
		return proto.Trivial(k)
	}
	maxLoc := opt.MaxAcquisitions + 2
	if opt.MaxAcquisitions <= 0 {
		maxLoc = 1 << 10
	}
	var inner proto.Instance
	for j := n - 1; j >= k; j-- {
		inner = newFig5(m, n, j, inner, maxLoc)
	}
	return inner
}
