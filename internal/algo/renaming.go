package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// assignInstance is Figure 7 / §4: long-lived renaming via test&set,
// layered over any (N,k)-exclusion to produce (N,k)-assignment. After
// acquiring the k-exclusion, a process test&sets the bits X[0..k-2] in
// order; the index of the first successful test&set is its name. If all
// k-1 bits are taken the paper shows the process is alone in reaching
// the last name, so it takes name k-1 without a bit. Releasing clears
// the bit (if any) before the k-exclusion exit section. The wrapper adds
// at most k remote references per acquisition (Theorems 9 and 10).
type assignInstance struct {
	excl proto.Instance
	bits machine.Addr // X[0..k-2]
	k    int
}

// NewAssignment wraps an (N,k)-exclusion instance into (N,k)-assignment.
func NewAssignment(m *machine.Mem, excl proto.Instance) proto.Instance {
	k := excl.K()
	inst := &assignInstance{excl: excl, k: k}
	if k > 1 {
		inst.bits = m.Alloc(k-1, machine.HomeShared)
	}
	return inst
}

func (in *assignInstance) K() int { return in.k }

func (in *assignInstance) NewSession(p int) proto.Session {
	return &assignSession{inst: in, excl: in.excl.NewSession(p), name: -1}
}

const (
	asAcquire = iota // statement 1: Acquire(N,k)
	asScan           // statement 2: test&set scan (one bit per step)
	asInCS
	asClear   // statement 3: X[name] := false
	asRelease // statement 4: Release(N,k)
)

type assignSession struct {
	inst *assignInstance
	excl proto.Session
	pc   int
	name int
}

func (s *assignSession) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case asAcquire:
		if s.excl.StepAcquire(m, p) {
			s.pc = asScan
			s.name = 0
		}
	case asScan:
		if s.name == in.k-1 {
			// All k-1 bits were set; the paper shows at most one
			// process reaches this point, so the last name is free.
			s.pc = asInCS
			return true
		}
		if m.TAS(p, in.bits+machine.Addr(s.name)) {
			s.pc = asInCS
			return true
		}
		s.name++
	default:
		panic("assignment: StepAcquire called in wrong state")
	}
	return false
}

func (s *assignSession) StepRelease(m *machine.Mem, p int) bool {
	in := s.inst
	if s.pc == asInCS {
		// Bookkeeping-only transition out of the critical section;
		// the same step executes the first real exit statement below.
		if s.name < in.k-1 {
			s.pc = asClear
		} else {
			s.pc = asRelease
		}
	}
	switch s.pc {
	case asClear:
		m.Write(p, in.bits+machine.Addr(s.name), 0)
		s.pc = asRelease
	case asRelease:
		if s.excl.StepRelease(m, p) {
			s.pc = asAcquire
			s.name = -1
			return true
		}
	default:
		panic("assignment: StepRelease called in wrong state")
	}
	return false
}

func (s *assignSession) AssignedName() int {
	if s.pc == asInCS {
		return s.name
	}
	return -1
}

func (s *assignSession) Clone() proto.Session {
	return &assignSession{inst: s.inst, excl: s.excl.Clone(), pc: s.pc, name: s.name}
}

func (s *assignSession) Key() string {
	return proto.KeyJoin(proto.KeyF("as:%d:%d", s.pc, s.name), s.excl.Key())
}

// Assignment is Theorems 9 and 10: (N,k)-assignment built from a chosen
// k-exclusion protocol plus the Figure 7 renaming wrapper.
type Assignment struct {
	// Excl is the underlying k-exclusion protocol (FastPath by default).
	Excl proto.Protocol
}

func (a Assignment) excl() proto.Protocol {
	if a.Excl == nil {
		return FastPath{}
	}
	return a.Excl
}

func (a Assignment) Name() string { return a.excl().Name() + "+renaming" }

func (a Assignment) Traits() proto.Traits {
	t := a.excl().Traits()
	t.Assignment = true
	return t
}

func (a Assignment) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return NewAssignment(m, a.excl().Build(m, n, k, opt))
}
