package algo

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// fig6Instance is Figure 6: the bounded-space version of Figure 5. Each
// process cycles through k+2 spin locations; the counter R[p][v] records
// how many processes have read (p,v) from Q and might still write
// P[p][v], so a process never reuses a location that could be set
// prematurely. One layer costs at most 14 remote references (8 entry,
// 6 exit), giving Theorem 5's 14(N-k) for the inductive chain.
//
// Shared variables (paper's Figure 6):
//
//	X : -1..k                 slot counter, initially k
//	Q : (pid, loc)            current spin location, initially (0,0)
//	P : array[N][k+2] bool    P[p][*] local to process p
//	R : array[N][k+2] 0..k+1  R[p][*] local to process p
type fig6Instance struct {
	inner proto.Instance
	x, q  machine.Addr
	p0    machine.Addr
	r0    machine.Addr
	nloc  int // k+2 spin locations per process
	k     int
}

func newFig6(m *machine.Mem, n, k int, inner proto.Instance) *fig6Instance {
	inst := &fig6Instance{
		inner: inner,
		x:     m.Alloc1(machine.HomeShared),
		q:     m.Alloc1(machine.HomeShared),
		nloc:  k + 2,
		k:     k,
	}
	for p := 0; p < n; p++ {
		pBase := m.Alloc(inst.nloc, p)
		rBase := m.Alloc(inst.nloc, p)
		if p == 0 {
			inst.p0 = pBase
			inst.r0 = rBase
		}
	}
	m.Poke(inst.x, int64(k))
	m.Poke(inst.q, inst.pack(0, 0))
	return inst
}

func (in *fig6Instance) pack(pid, loc int) int64 { return int64(pid*in.nloc + loc) }

// spinAddr and ctrAddr locate P[.] and R[.] for a packed (pid,loc).
// Each process's (P,R) pair occupies 2*nloc consecutive words.
func (in *fig6Instance) spinAddr(packed int64) machine.Addr {
	pid, loc := int(packed)/in.nloc, int(packed)%in.nloc
	return in.p0 + machine.Addr(pid*2*in.nloc+loc)
}

func (in *fig6Instance) ctrAddr(packed int64) machine.Addr {
	pid, loc := int(packed)/in.nloc, int(packed)%in.nloc
	return in.r0 + machine.Addr(pid*2*in.nloc+loc)
}

func (in *fig6Instance) K() int { return in.k }

func (in *fig6Instance) NewSession(p int) proto.Session {
	s := &fig6Session{inst: in}
	if in.inner != nil {
		s.inner = in.inner.NewSession(p)
	}
	s.resetPC()
	return s
}

// fig6Session program counters; statement numbers follow Figure 6.
const (
	f6Stmt1  = iota // Acquire(N,k+1)
	f6Stmt2         // if fetch_and_increment(X,-1) <= 0
	f6Stmt3         // next.loc := (last+1) mod (k+2)
	f6Stmt4         // while R[p][next.loc] != 0 (one read per step)
	f6Stmt6         // P[p][next.loc] := false
	f6Stmt7         // u := Q
	f6Stmt8         // fetch_and_increment(R[u], 1)
	f6Stmt9         // if Q = u
	f6Stmt10        // P[u] := true
	f6Stmt11        // if compare_and_swap(Q, u, next); 12: last := next.loc
	f6Stmt13        // if X < 0
	f6Stmt14        // while !P[p][next.loc] (local spin)
	f6Stmt15        // fetch_and_increment(R[u], -1)
	f6InCS
	f6Stmt16 // fetch_and_increment(X, 1)
	f6Stmt17 // u := Q
	f6Stmt18 // fetch_and_increment(R[u], 1)
	f6Stmt19 // if Q = u
	f6Stmt20 // P[u] := true
	f6Stmt21 // fetch_and_increment(R[u], -1)
	f6Stmt22 // Release(N,k+1)
)

type fig6Session struct {
	inst    *fig6Instance
	inner   proto.Session
	pc      int
	nextLoc int
	last    int
	u       int64
	scans   int // statement 4 iterations this acquisition (terminates <= k+2)
}

func (s *fig6Session) resetPC() {
	if s.inner != nil {
		s.pc = f6Stmt1
	} else {
		s.pc = f6Stmt2
	}
}

func (s *fig6Session) StepAcquire(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case f6Stmt1:
		if s.inner.StepAcquire(m, p) {
			s.pc = f6Stmt2
		}
	case f6Stmt2:
		if old := m.FAA(p, in.x, -1); old <= 0 {
			s.pc = f6Stmt3
		} else {
			s.pc = f6InCS
			return true
		}
	case f6Stmt3:
		s.nextLoc = (s.last + 1) % in.nloc
		s.scans = 0
		s.pc = f6Stmt4
	case f6Stmt4:
		// Statements 4-5: search (locally) for a spin location whose
		// in-use counter is zero. The paper proves some R[p][v] = 0
		// with v != last persists until read, so this terminates
		// within k+2 iterations.
		if m.Read(p, in.ctrAddr(in.pack(p, s.nextLoc))) != 0 {
			s.nextLoc = (s.nextLoc + 1) % in.nloc
			s.scans++
			if s.scans > in.nloc {
				panic("fig6: no free spin location; in-use invariant broken")
			}
		} else {
			s.pc = f6Stmt6
		}
	case f6Stmt6:
		m.Write(p, in.spinAddr(in.pack(p, s.nextLoc)), 0)
		s.pc = f6Stmt7
	case f6Stmt7:
		s.u = m.Read(p, in.q)
		s.pc = f6Stmt8
	case f6Stmt8:
		m.FAA(p, in.ctrAddr(s.u), 1) // announce a pending write of P[u]
		s.pc = f6Stmt9
	case f6Stmt9:
		if m.Read(p, in.q) == s.u {
			s.pc = f6Stmt10
		} else {
			s.pc = f6Stmt11
		}
	case f6Stmt10:
		m.Write(p, in.spinAddr(s.u), 1) // release currently spinning process
		s.pc = f6Stmt11
	case f6Stmt11:
		if m.CAS(p, in.q, s.u, in.pack(p, s.nextLoc)) {
			s.last = s.nextLoc // statement 12 (private)
			s.pc = f6Stmt13
		} else {
			s.pc = f6Stmt15
		}
	case f6Stmt13:
		if m.Read(p, in.x) < 0 {
			s.pc = f6Stmt14
		} else {
			s.pc = f6Stmt15
		}
	case f6Stmt14:
		if m.Read(p, in.spinAddr(in.pack(p, s.nextLoc))) != 0 {
			s.pc = f6Stmt15
		}
	case f6Stmt15:
		m.FAA(p, in.ctrAddr(s.u), -1) // done with u's spin location
		s.pc = f6InCS
		return true
	default:
		panic("fig6: StepAcquire called in wrong state")
	}
	return false
}

func (s *fig6Session) StepRelease(m *machine.Mem, p int) bool {
	in := s.inst
	switch s.pc {
	case f6InCS:
		m.FAA(p, in.x, 1) // statement 16
		s.pc = f6Stmt17
	case f6Stmt17:
		s.u = m.Read(p, in.q)
		s.pc = f6Stmt18
	case f6Stmt18:
		m.FAA(p, in.ctrAddr(s.u), 1)
		s.pc = f6Stmt19
	case f6Stmt19:
		if m.Read(p, in.q) == s.u {
			s.pc = f6Stmt20
		} else {
			s.pc = f6Stmt21
		}
	case f6Stmt20:
		m.Write(p, in.spinAddr(s.u), 1)
		s.pc = f6Stmt21
	case f6Stmt21:
		m.FAA(p, in.ctrAddr(s.u), -1)
		if s.inner != nil {
			s.pc = f6Stmt22
		} else {
			s.resetPC()
			return true
		}
	case f6Stmt22:
		if s.inner.StepRelease(m, p) {
			s.resetPC()
			return true
		}
	default:
		panic("fig6: StepRelease called in wrong state")
	}
	return false
}

func (s *fig6Session) AssignedName() int { return -1 }

func (s *fig6Session) Clone() proto.Session {
	c := &fig6Session{
		inst:    s.inst,
		pc:      s.pc,
		nextLoc: s.nextLoc,
		last:    s.last,
		u:       s.u,
		scans:   s.scans,
	}
	if s.inner != nil {
		c.inner = s.inner.Clone()
	}
	return c
}

func (s *fig6Session) Key() string {
	key := proto.KeyF("f6:%d:%d:%d:%d", s.pc, s.nextLoc, s.last, s.u)
	if s.inner == nil {
		return key
	}
	return proto.KeyJoin(key, s.inner.Key())
}

// newInductiveChainDSM builds Theorem 5's (n,k)-exclusion: a chain of
// Figure 6 layers, 14 remote references each.
func newInductiveChainDSM(m *machine.Mem, n, k int) proto.Instance {
	if n <= k {
		return proto.Trivial(k)
	}
	var inner proto.Instance
	for j := n - 1; j >= k; j-- {
		inner = newFig6(m, n, j, inner)
	}
	return inner
}

// InductiveDSM is Theorem 5: DSM (N,k)-exclusion, complexity 14(N-k).
type InductiveDSM struct{}

func (InductiveDSM) Name() string { return "dsm-inductive" }

func (InductiveDSM) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.Distributed},
	}
}

func (InductiveDSM) Build(m *machine.Mem, n, k int, _ proto.BuildOptions) proto.Instance {
	return newInductiveChainDSM(m, n, k)
}

// BlockDSM is the DSM (2k,k) building block of Theorem 5 (cost 14k) used
// by the Theorem 6-8 compositions. The Figure 6 layers inside must span
// all n process identities because any process may enter the block.
func BlockDSM(n int) BlockFactory {
	return func(m *machine.Mem, k int, _ proto.BuildOptions) proto.Instance {
		var inner proto.Instance
		for j := 2*k - 1; j >= k; j-- {
			inner = newFig6(m, n, j, inner)
		}
		return inner
	}
}

// TreeDSM is Theorem 6: DSM (N,k)-exclusion via the arbitration tree,
// complexity 14k*ceil(log2(N/k)).
type TreeDSM struct{}

func (TreeDSM) Name() string { return "dsm-tree" }

func (TreeDSM) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.Distributed},
	}
}

func (TreeDSM) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return newTree(m, n, k, BlockDSM(n), opt)
}

// FastPathDSM is Theorem 7: DSM fast path, 14k+2 when contention is at
// most k and 14k(ceil(log2(N/k))+1)+2 above.
type FastPathDSM struct{}

func (FastPathDSM) Name() string { return "dsm-fastpath" }

func (FastPathDSM) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.Distributed},
	}
}

func (FastPathDSM) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return buildFastPath(m, n, k, BlockDSM(n), opt)
}

// GracefulDSM is Theorem 8: DSM graceful degradation,
// ceil(c/k)*(14k+2) at contention c.
type GracefulDSM struct{}

func (GracefulDSM) Name() string { return "dsm-graceful" }

func (GracefulDSM) Traits() proto.Traits {
	return proto.Traits{
		Resilient:      true,
		StarvationFree: true,
		Models:         []machine.Model{machine.Distributed},
	}
}

func (GracefulDSM) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	return buildGraceful(m, n, k, BlockDSM(n), opt)
}
