package object

// chunkCap is the fan-out of the chunked deque: Clone copies one
// pointer per chunkCap elements, and a copy-on-write PushBack copies at
// most one chunk.
const chunkCap = 64

// chunk is one fixed-size block of deque storage. Chunks are shared
// between clones and treated as immutable once shared; only a chunk the
// deque exclusively owns (ownBack) is written in place.
type chunk[T any] struct {
	vals [chunkCap]T
}

// Deque is a copy-on-write chunked FIFO deque. Clone is O(len/chunkCap)
// — it copies the chunk-pointer spine, never the elements — so a
// resilient queue's per-Apply clone stops being O(len): PushBack
// copies at most one chunk (amortized O(1)) and PopFront is O(1).
//
// The zero value is an empty deque. After Clone, mutate only the clone;
// the receiver is treated as the immutable committed copy (the usage
// contract of resilient.Shared's clone hook).
type Deque[T any] struct {
	// chunks is the spine. Element i lives at linear position head+i:
	// chunk (head+i)/chunkCap, slot (head+i)%chunkCap.
	chunks []*chunk[T]
	// head indexes the first element within chunks[0]; 0 ≤ head < chunkCap.
	head int
	// tail counts filled slots in the last chunk; 1 ≤ tail ≤ chunkCap
	// when size > 0.
	tail int
	// size is the element count. size == 0 implies chunks == nil.
	size int
	// ownBack is true while the last chunk is exclusively owned and may
	// be appended to in place. Clone clears it on the copy, forcing the
	// first PushBack after a clone to copy the shared chunk.
	ownBack bool
}

// Len reports the number of elements.
func (d *Deque[T]) Len() int { return d.size }

// Clone copies the deque sharing all chunks. It never writes the
// receiver, so concurrent Clones of one committed deque are safe. The
// spine copy has exact capacity: a later PushBack that grows the spine
// reallocates instead of writing a backing array a sibling shares.
func (d Deque[T]) Clone() Deque[T] {
	c := d
	c.ownBack = false
	if d.chunks != nil {
		spine := make([]*chunk[T], len(d.chunks))
		copy(spine, d.chunks)
		c.chunks = spine
	}
	return c
}

// PushBack appends v.
func (d *Deque[T]) PushBack(v T) {
	if len(d.chunks) == 0 || d.tail == chunkCap {
		c := new(chunk[T])
		c.vals[0] = v
		d.chunks = append(d.chunks, c)
		d.tail = 1
		d.ownBack = true
		d.size++
		return
	}
	if !d.ownBack {
		// The back chunk is shared with a clone: copy before writing.
		last := len(d.chunks) - 1
		c := *d.chunks[last]
		spine := make([]*chunk[T], len(d.chunks))
		copy(spine, d.chunks)
		spine[last] = &c
		d.chunks = spine
		d.ownBack = true
	}
	d.chunks[len(d.chunks)-1].vals[d.tail] = v
	d.tail++
	d.size++
}

// PopFront removes and returns the head; ok is false if the deque is
// empty. Popped slots are not zeroed while their chunk is shared; a
// chunk's storage is released when the spine drops it.
func (d *Deque[T]) PopFront() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	v = d.chunks[0].vals[d.head]
	d.size--
	if d.size == 0 {
		d.chunks, d.head, d.tail, d.ownBack = nil, 0, 0, false
		return v, true
	}
	d.head++
	if d.head == chunkCap {
		d.chunks = d.chunks[1:]
		d.head = 0
	}
	return v, true
}

// At returns element i (0 ≤ i < Len) without bounds checking beyond
// the underlying array's.
func (d *Deque[T]) At(i int) T {
	pos := d.head + i
	return d.chunks[pos/chunkCap].vals[pos%chunkCap]
}
