package object

import (
	"bytes"
	"fmt"
	"testing"
)

func TestDequeFIFO(t *testing.T) {
	var d Deque[int64]
	const n = 1000
	for i := int64(0); i < n; i++ {
		d.PushBack(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if got := d.At(int(i)); got != i {
			t.Fatalf("At(%d) = %d, want %d", i, got, i)
		}
	}
	for i := int64(0); i < n; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque reported ok")
	}
	if d.Len() != 0 {
		t.Fatalf("Len after drain = %d", d.Len())
	}
}

func TestDequeInterleaved(t *testing.T) {
	var d Deque[int64]
	next, expect := int64(0), int64(0)
	for round := 0; round < 500; round++ {
		for i := 0; i < 3; i++ {
			d.PushBack(next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := d.PopFront()
			if !ok || v != expect {
				t.Fatalf("round %d: PopFront = (%d,%v), want (%d,true)", round, v, ok, expect)
			}
			expect++
		}
	}
	for d.Len() > 0 {
		v, _ := d.PopFront()
		if v != expect {
			t.Fatalf("drain: got %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained to %d, pushed %d", expect, next)
	}
}

// TestDequeCloneIsolation drives the exact resilient.Shared usage:
// clone a committed deque several times, mutate each clone, and check
// no clone's mutations leak into the original or a sibling.
func TestDequeCloneIsolation(t *testing.T) {
	var base Deque[int64]
	for i := int64(0); i < 100; i++ { // crosses a chunk boundary at 64
		base.PushBack(i)
	}
	snap := func(d *Deque[int64]) []int64 {
		out := make([]int64, d.Len())
		for i := range out {
			out[i] = d.At(i)
		}
		return out
	}
	want := snap(&base)

	a := base.Clone()
	b := base.Clone()
	a.PushBack(1000) // must copy the shared back chunk, not write it
	a.PushBack(1001)
	if v, _ := b.PopFront(); v != 0 {
		t.Fatalf("b.PopFront = %d, want 0", v)
	}
	b.PushBack(2000)

	if got := snap(&base); !equal(got, want) {
		t.Fatalf("original changed by clone mutations:\n got %v\nwant %v", got, want)
	}
	if a.Len() != 102 || a.At(100) != 1000 || a.At(101) != 1001 || a.At(0) != 0 {
		t.Fatalf("clone a wrong: len=%d", a.Len())
	}
	if b.Len() != 100 || b.At(0) != 1 || b.At(99) != 2000 {
		t.Fatalf("clone b wrong: len=%d", b.Len())
	}

	// Chained clones: mutate a clone of a clone.
	c := a.Clone()
	c.PushBack(3000)
	if a.Len() != 102 {
		t.Fatalf("a grew when its clone pushed: len=%d", a.Len())
	}
	if c.At(102) != 3000 {
		t.Fatal("c missing its own push")
	}
}

func TestDequeEmptyCloneAndReset(t *testing.T) {
	var d Deque[int64]
	c := d.Clone()
	c.PushBack(1)
	if d.Len() != 0 || c.Len() != 1 {
		t.Fatalf("empty-clone isolation broken: %d/%d", d.Len(), c.Len())
	}
	// Drain to empty, then reuse.
	c.PopFront()
	c.PushBack(7)
	if v, ok := c.PopFront(); !ok || v != 7 {
		t.Fatalf("reuse after drain = (%d,%v)", v, ok)
	}
}

func TestMapBasics(t *testing.T) {
	var m Map
	if _, ok := m.Get("x"); ok {
		t.Fatal("empty map Get reported ok")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 3)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = (%d,%v)", v, ok)
	}
	if old, ok := m.Delete("a"); !ok || old != 3 {
		t.Fatalf("Delete(a) = (%d,%v)", old, ok)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := m.Delete("missing"); ok {
		t.Fatal("Delete(missing) reported ok")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMapCloneIsolation(t *testing.T) {
	var base Map
	for i := 0; i < 300; i++ {
		base.Put(fmt.Sprintf("key-%03d", i), int64(i))
	}
	a := base.Clone()
	b := base.Clone()
	a.Put("key-000", 999)
	a.Delete("key-001")
	b.Put("new", 1)

	if v, _ := base.Get("key-000"); v != 0 {
		t.Fatalf("original key-000 = %d, want 0", v)
	}
	if _, ok := base.Get("key-001"); !ok {
		t.Fatal("original lost key-001")
	}
	if _, ok := base.Get("new"); ok {
		t.Fatal("original gained clone b's key")
	}
	if v, _ := a.Get("key-000"); v != 999 {
		t.Fatal("clone a lost its put")
	}
	if _, ok := a.Get("new"); ok {
		t.Fatal("clone a sees clone b's key")
	}
	if base.Len() != 300 || a.Len() != 299 || b.Len() != 301 {
		t.Fatalf("lens: base=%d a=%d b=%d", base.Len(), a.Len(), b.Len())
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	objs := map[string]*State{
		"counter": {Type: TypeRegister, Reg: -42},
		"kv":      New(TypeMap, 0),
		"jobs":    New(TypeQueue, 0),
		"snap":    New(TypeSnapshot, 4),
	}
	objs["kv"].M.Put("alpha", 1)
	objs["kv"].M.Put("beta", -2)
	for i := int64(0); i < 70; i++ {
		objs["jobs"].Q.PushBack(i * 3)
	}
	objs["snap"].Slots[2] = 77

	b := AppendTable(nil, objs)
	// Determinism: re-encoding a decoded table yields identical bytes.
	got, n, err := DecodeTable(b)
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if !bytes.Equal(AppendTable(nil, got), b) {
		t.Fatal("re-encode of decoded table differs")
	}
	if got["counter"].Reg != -42 {
		t.Fatal("register lost")
	}
	if v, ok := got["kv"].M.Get("beta"); !ok || v != -2 {
		t.Fatal("map entry lost")
	}
	if got["jobs"].Q.Len() != 70 || got["jobs"].Q.At(69) != 69*3 {
		t.Fatal("queue lost")
	}
	if got["snap"].Slots[2] != 77 || len(got["snap"].Slots) != 4 {
		t.Fatal("snapshot slots lost")
	}

	// Empty table round-trips too.
	eb := AppendTable(nil, nil)
	em, n, err := DecodeTable(eb)
	if err != nil || n != len(eb) || len(em) != 0 {
		t.Fatalf("empty table: %v %d %d", err, n, len(em))
	}
}

func TestTableCodecRejectsGarbage(t *testing.T) {
	objs := map[string]*State{"a": {Type: TypeRegister, Reg: 1}, "b": {Type: TypeRegister, Reg: 2}}
	good := AppendTable(nil, objs)
	cases := [][]byte{
		good[:len(good)-1],          // truncated payload
		good[:3],                    // truncated count
		{0xff, 0xff, 0xff, 0xff},    // absurd count vs body
		{0, 0, 0, 1, 0},             // zero-length name
		{0, 0, 0, 1, 1, 'x', 99, 0}, // unknown type
	}
	for i, c := range cases {
		if _, _, err := DecodeTable(c); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
	// Names out of order (duplicate) must be rejected.
	dup := AppendTable(nil, map[string]*State{"a": {Type: TypeRegister}})
	dup = append(dup, AppendTable(nil, map[string]*State{"a": {Type: TypeRegister}})[4:]...)
	// Patch the count to 2.
	dup[3] = 2
	if _, _, err := DecodeTable(dup); err == nil {
		t.Fatal("duplicate names decoded without error")
	}
}

func TestStateClone(t *testing.T) {
	s := New(TypeSnapshot, 3)
	s.Slots[1] = 5
	c := s.Clone()
	c.Slots[1] = 9
	if s.Slots[1] != 5 {
		t.Fatal("slot mutation leaked into original")
	}
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
