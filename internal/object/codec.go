package object

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Table codec: the deterministic byte image of a shard's named-object
// table, embedded in durable snapshots and replication state images.
// Objects are emitted in strictly ascending name order and map keys in
// strictly ascending key order, so two equal tables encode to identical
// bytes (state-image comparison relies on this).
//
// Layout (big-endian, matching the WAL codec):
//
//	[u32 objectCount]
//	per object, names strictly ascending:
//	  [u8 nameLen][name][u8 type]
//	  register: [8 value]
//	  map:      [u32 n] then per key, strictly ascending: [u16 keyLen][key][8 value]
//	  queue:    [u32 n] then n × [8 value]
//	  snapshot: [u16 slots] then slots × [8 value]

// AppendTable appends the table image of objs to dst.
func AppendTable(dst []byte, objs map[string]*State) []byte {
	names := make([]string, 0, len(objs))
	for n := range objs {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(names)))
	for _, n := range names {
		s := objs[n]
		dst = append(dst, byte(len(n)))
		dst = append(dst, n...)
		dst = append(dst, byte(s.Type))
		switch s.Type {
		case TypeRegister:
			dst = binary.BigEndian.AppendUint64(dst, uint64(s.Reg))
		case TypeMap:
			keys := s.M.SortedKeys()
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
			for _, k := range keys {
				v, _ := s.M.Get(k)
				dst = binary.BigEndian.AppendUint16(dst, uint16(len(k)))
				dst = append(dst, k...)
				dst = binary.BigEndian.AppendUint64(dst, uint64(v))
			}
		case TypeQueue:
			dst = binary.BigEndian.AppendUint32(dst, uint32(s.Q.Len()))
			for i := 0; i < s.Q.Len(); i++ {
				dst = binary.BigEndian.AppendUint64(dst, uint64(s.Q.At(i)))
			}
		case TypeSnapshot:
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Slots)))
			for _, v := range s.Slots {
				dst = binary.BigEndian.AppendUint64(dst, uint64(v))
			}
		}
	}
	return dst
}

// DecodeTable decodes a table image from the front of b, returning the
// table and the bytes consumed. Counts are validated against the
// remaining bytes before any allocation trusts them; names and keys
// must be strictly ascending (rejecting duplicates and pinning the
// deterministic layout). A nil map is returned for an empty table.
func DecodeTable(b []byte) (map[string]*State, int, error) {
	pos := 0
	need := func(n int) error {
		if len(b)-pos < n {
			return fmt.Errorf("object: table image truncated at byte %d (need %d more)", pos, n)
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, 0, err
	}
	count := int(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	// Each object costs at least nameLen(1)+name(1)+type(1)+payload(2).
	if count < 0 || count > (len(b)-pos)/5 {
		return nil, 0, fmt.Errorf("object: table count %d exceeds %d remaining bytes", count, len(b)-pos)
	}
	var objs map[string]*State
	prevName := ""
	for i := 0; i < count; i++ {
		if err := need(1); err != nil {
			return nil, 0, err
		}
		nameLen := int(b[pos])
		pos++
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, 0, fmt.Errorf("object: name length %d outside (0,%d]", nameLen, MaxNameLen)
		}
		if err := need(nameLen + 1); err != nil {
			return nil, 0, err
		}
		name := string(b[pos : pos+nameLen])
		pos += nameLen
		if i > 0 && name <= prevName {
			return nil, 0, fmt.Errorf("object: table names not strictly ascending at %q", name)
		}
		prevName = name
		typ := Type(b[pos])
		pos++
		s := &State{Type: typ}
		switch typ {
		case TypeRegister:
			if err := need(8); err != nil {
				return nil, 0, err
			}
			s.Reg = int64(binary.BigEndian.Uint64(b[pos:]))
			pos += 8
		case TypeMap:
			if err := need(4); err != nil {
				return nil, 0, err
			}
			n := int(binary.BigEndian.Uint32(b[pos:]))
			pos += 4
			// Each entry costs at least keyLen(2)+key(1)+value(8).
			if n > (len(b)-pos)/11 {
				return nil, 0, fmt.Errorf("object: map %q count %d exceeds %d remaining bytes", name, n, len(b)-pos)
			}
			prevKey := ""
			for j := 0; j < n; j++ {
				if err := need(2); err != nil {
					return nil, 0, err
				}
				keyLen := int(binary.BigEndian.Uint16(b[pos:]))
				pos += 2
				if keyLen == 0 || keyLen > MaxKeyLen {
					return nil, 0, fmt.Errorf("object: key length %d outside (0,%d]", keyLen, MaxKeyLen)
				}
				if err := need(keyLen + 8); err != nil {
					return nil, 0, err
				}
				key := string(b[pos : pos+keyLen])
				pos += keyLen
				if j > 0 && key <= prevKey {
					return nil, 0, fmt.Errorf("object: map %q keys not strictly ascending at %q", name, key)
				}
				prevKey = key
				s.M.Put(key, int64(binary.BigEndian.Uint64(b[pos:])))
				pos += 8
			}
		case TypeQueue:
			if err := need(4); err != nil {
				return nil, 0, err
			}
			n := int(binary.BigEndian.Uint32(b[pos:]))
			pos += 4
			if n > (len(b)-pos)/8 {
				return nil, 0, fmt.Errorf("object: queue %q count %d exceeds %d remaining bytes", name, n, len(b)-pos)
			}
			for j := 0; j < n; j++ {
				s.Q.PushBack(int64(binary.BigEndian.Uint64(b[pos:])))
				pos += 8
			}
		case TypeSnapshot:
			if err := need(2); err != nil {
				return nil, 0, err
			}
			n := int(binary.BigEndian.Uint16(b[pos:]))
			pos += 2
			if n > MaxSnapSlots {
				return nil, 0, fmt.Errorf("object: snapshot %q slot count %d exceeds %d", name, n, MaxSnapSlots)
			}
			if err := need(8 * n); err != nil {
				return nil, 0, err
			}
			s.Slots = make([]int64, n)
			for j := range s.Slots {
				s.Slots[j] = int64(binary.BigEndian.Uint64(b[pos:]))
				pos += 8
			}
		default:
			return nil, 0, fmt.Errorf("object: unknown object type %d for %q", uint8(typ), name)
		}
		if objs == nil {
			objs = make(map[string]*State, count)
		}
		objs[name] = s
	}
	return objs, pos, nil
}
