package object

import "sort"

// mapBuckets is the fixed bucket fan-out of the COW map: Clone shares
// all buckets and a mutation copies exactly one, so per-mutation copy
// cost is O(len/mapBuckets) instead of O(len).
const mapBuckets = 64

// mapBucket holds one bucket's entries in parallel slices. Buckets are
// immutable once shared between clones: every mutation builds a fresh
// bucket and swaps the pointer.
type mapBucket struct {
	keys []string
	vals []int64
}

// Map is a copy-on-write string→int64 map. The zero value is an empty
// map; Clone is a value copy of the bucket-pointer array. After Clone,
// mutate only the clone (the resilient.Shared clone contract).
type Map struct {
	buckets [mapBuckets]*mapBucket
	size    int
}

// bucketOf hashes key with FNV-1a (32-bit) into a bucket index.
func bucketOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % mapBuckets)
}

// Len reports the number of keys.
func (m *Map) Len() int { return m.size }

// Clone copies the map sharing every bucket. It never writes the
// receiver.
func (m Map) Clone() Map { return m }

// Get reads key.
func (m *Map) Get(key string) (int64, bool) {
	b := m.buckets[bucketOf(key)]
	if b == nil {
		return 0, false
	}
	for i, k := range b.keys {
		if k == key {
			return b.vals[i], true
		}
	}
	return 0, false
}

// Put stores v under key, copying only the affected bucket.
func (m *Map) Put(key string, v int64) {
	i := bucketOf(key)
	old := m.buckets[i]
	if old == nil {
		m.buckets[i] = &mapBucket{keys: []string{key}, vals: []int64{v}}
		m.size++
		return
	}
	fresh := &mapBucket{
		keys: append(make([]string, 0, len(old.keys)+1), old.keys...),
		vals: append(make([]int64, 0, len(old.vals)+1), old.vals...),
	}
	for j, k := range fresh.keys {
		if k == key {
			fresh.vals[j] = v
			m.buckets[i] = fresh
			return
		}
	}
	fresh.keys = append(fresh.keys, key)
	fresh.vals = append(fresh.vals, v)
	m.buckets[i] = fresh
	m.size++
}

// Delete removes key, reporting whether it was present. The affected
// bucket is rebuilt without the key.
func (m *Map) Delete(key string) (old int64, existed bool) {
	i := bucketOf(key)
	b := m.buckets[i]
	if b == nil {
		return 0, false
	}
	at := -1
	for j, k := range b.keys {
		if k == key {
			at = j
			break
		}
	}
	if at < 0 {
		return 0, false
	}
	old = b.vals[at]
	if len(b.keys) == 1 {
		m.buckets[i] = nil
	} else {
		fresh := &mapBucket{
			keys: make([]string, 0, len(b.keys)-1),
			vals: make([]int64, 0, len(b.vals)-1),
		}
		fresh.keys = append(append(fresh.keys, b.keys[:at]...), b.keys[at+1:]...)
		fresh.vals = append(append(fresh.vals, b.vals[:at]...), b.vals[at+1:]...)
		m.buckets[i] = fresh
	}
	m.size--
	return old, true
}

// SortedKeys returns every key in ascending order — the deterministic
// iteration the durable codec needs.
func (m *Map) SortedKeys() []string {
	out := make([]string, 0, m.size)
	for _, b := range m.buckets {
		if b != nil {
			out = append(out, b.keys...)
		}
	}
	sort.Strings(out)
	return out
}
