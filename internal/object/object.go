// Package object is the typed object layer of kexserved's table: named,
// versioned objects (register, map, queue, snapshot) that live inside a
// shard's linearized state and travel through the universal
// construction's clone-and-CAS cycle.
//
// Every type here is copy-on-write: Clone is O(1) in the object's size
// (it shares immutable structure with the receiver) and mutating a
// clone never changes the original. That is the contract
// resilient.Shared needs — the wait-free core's helpers may clone one
// committed state concurrently and speculatively mutate each clone, so
// Clone must not write its receiver and clones must not alias mutable
// storage.
//
// The package is deliberately free of dependencies on the durability or
// wire layers; internal/durable imports it to embed object tables in
// shard state, never the other way around.
package object

import "fmt"

// Type identifies an object class on the wire and in durable state.
type Type uint8

const (
	// TypeRegister is an int64 register with add/set — the shard-root
	// semantics of kx03, now nameable.
	TypeRegister Type = 1
	// TypeMap is a string→int64 map with get/put/cas/delete.
	TypeMap Type = 2
	// TypeQueue is a FIFO int64 queue; its dequeue is the canonical
	// non-idempotent op the dedup window exists for.
	TypeQueue Type = 3
	// TypeSnapshot is the paper's footnote-1 object: a k-slot
	// single-writer-per-slot atomic snapshot with update/scan.
	TypeSnapshot Type = 4
)

// Valid reports whether t names a known object class.
func (t Type) Valid() bool { return t >= TypeRegister && t <= TypeSnapshot }

// String names the type for logs and errors.
func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeMap:
		return "map"
	case TypeQueue:
		return "queue"
	case TypeSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Wire and durable-format limits. They bound allocations driven by
// untrusted bytes, so decoders check them before trusting any count.
const (
	// MaxNameLen bounds an object name.
	MaxNameLen = 64
	// MaxKeyLen bounds a map key.
	MaxKeyLen = 512
	// MaxAtomicOps bounds the ops in one atomic batch — small enough
	// that the batch's single WAL record stays well under the record
	// body cap.
	MaxAtomicOps = 64
	// MaxSnapSlots bounds a snapshot object's slot count (its "k").
	MaxSnapSlots = 1024
)

// State is one named object's value. Exactly one of the payload fields
// is live, selected by Type; the others stay zero.
type State struct {
	Type Type
	// Reg is the register value (TypeRegister).
	Reg int64
	// M is the key-value payload (TypeMap).
	M Map
	// Q is the FIFO payload (TypeQueue).
	Q Deque[int64]
	// Slots is the snapshot payload (TypeSnapshot): one slot per
	// writer, scanned atomically. Its length is fixed at create time.
	Slots []int64
}

// New returns a fresh object of the given type. slots sizes a snapshot
// object and is ignored for the other types.
func New(t Type, slots int) *State {
	s := &State{Type: t}
	if t == TypeSnapshot {
		s.Slots = make([]int64, slots)
	}
	return s
}

// Clone copies the object. Shared structure (map buckets, queue
// chunks) is reused copy-on-write; mutating the clone never changes
// the receiver, and Clone itself never writes the receiver.
func (s *State) Clone() *State {
	c := &State{Type: s.Type, Reg: s.Reg, M: s.M.Clone(), Q: s.Q.Clone()}
	if s.Slots != nil {
		c.Slots = append([]int64(nil), s.Slots...)
	}
	return c
}
