package bench

import (
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		N: 8, K: 2,
		Options:        Options{Seeds: 1, Acquisitions: 2},
		SkipSlowChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Experiments",
		"## Table 1",
		"Theorem 1:",
		"Theorem 10:",
		"## Figure 3",
		"k=1 comparison",
		"exhaustively verified",
		"lockout-free",
		"LOCKOUT (expected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// No theorem sweep may exceed its bound.
	if strings.Contains(out, "\tfalse\n") {
		t.Error("a theorem sweep exceeded its bound in the report")
	}
}

func TestWriteReportDefaults(t *testing.T) {
	// Zero config gets defaults; use a tiny option set so the test
	// stays fast, but verify N/K defaulting via the header line.
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		Options:        Options{Seeds: 1, Acquisitions: 2},
		SkipSlowChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "N=32, k=4") {
		t.Error("default configuration not applied")
	}
}

func TestK1ComparisonContent(t *testing.T) {
	out := K1Comparison(8, Options{Seeds: 1, Acquisitions: 2})
	for _, want := range []string{"mcs", "ticket", "cc-fastpath", "dsm-graceful", "crash-tolerant"} {
		if !strings.Contains(out, want) {
			t.Errorf("k1 comparison missing %q", want)
		}
	}
}

func TestAllTheoremsFormat(t *testing.T) {
	out := AllTheorems(Options{Seeds: 1, Acquisitions: 2})
	for num := 1; num <= 10; num++ {
		if !strings.Contains(out, "Theorem "+string(rune('0'+num%10))) && num != 10 {
			t.Errorf("missing theorem %d", num)
		}
	}
	if !strings.Contains(out, "Theorem 10") {
		t.Error("missing theorem 10")
	}
	if strings.Contains(out, "\tfalse\n") {
		t.Error("a theorem exceeded its bound")
	}
}

func TestSeriesFormatAndOk(t *testing.T) {
	s := Series{
		Title:  "test series",
		XLabel: "N",
		Points: []Point{{X: 4, Max: 10, Mean: 8.5, Bound: 12}},
	}
	if !s.Ok() {
		t.Fatal("series within bound must be Ok")
	}
	out := s.Format()
	if !strings.Contains(out, "test series") || !strings.Contains(out, "8.5") {
		t.Fatalf("format wrong:\n%s", out)
	}
	s.Points = append(s.Points, Point{X: 8, Max: 20, Bound: 12})
	if s.Ok() {
		t.Fatal("series exceeding bound must not be Ok")
	}
}

func TestLookupUnknownTheorem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown theorem")
		}
	}()
	lookup(42)
}
