package bench

import (
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		N: 8, K: 2,
		Options:        Options{Seeds: 1, Acquisitions: 2},
		SkipSlowChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Experiments",
		"## Table 1",
		"Theorem 1:",
		"Theorem 10:",
		"## Figure 3",
		"k=1 comparison",
		"exhaustively verified",
		"lockout-free",
		"LOCKOUT (expected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// No theorem sweep may exceed its bound.
	if strings.Contains(out, "\tfalse\n") {
		t.Error("a theorem sweep exceeded its bound in the report")
	}
}

func TestWriteReportDefaults(t *testing.T) {
	// Zero config gets defaults; use a tiny option set so the test
	// stays fast, but verify N/K defaulting via the header line.
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		Options:        Options{Seeds: 1, Acquisitions: 2},
		SkipSlowChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "N=32, k=4") {
		t.Error("default configuration not applied")
	}
}

func TestContentionLevels(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{8, 2, []int{1, 2, 4, 6, 8}},
		{32, 4, []int{1, 4, 8, 12, 16, 20, 24, 28, 32}},
		// k=1: the first multiple of k is 1 itself — must not repeat.
		{8, 1, []int{1, 2, 3, 4, 5, 6, 7, 8}},
		{2, 1, []int{1, 2}},
		// n == k: no multiples below n, and n must appear exactly once.
		{4, 4, []int{1, 4}},
		// n < k: degenerate but must still be duplicate-free.
		{3, 4, []int{1, 3}},
		{1, 1, []int{1}},
		// Non-divisible n: final point is n, not a multiple of k.
		{10, 4, []int{1, 4, 8, 10}},
	}
	for _, c := range cases {
		got := ContentionLevels(c.n, c.k)
		if len(got) != len(c.want) {
			t.Errorf("ContentionLevels(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("ContentionLevels(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
				break
			}
		}
	}
}

func TestWriteReportByteStable(t *testing.T) {
	// Two regenerations at the same configuration must be byte-identical
	// when no timestamp is injected — the CI drift-check contract. The
	// chaos blocks are seeded and the sweeps are deterministic, so any
	// divergence is a real nondeterminism bug.
	gen := func() string {
		var b strings.Builder
		err := WriteReport(&b, ReportConfig{
			N: 6, K: 2,
			Options:        Options{Seeds: 1, Acquisitions: 2},
			SkipSlowChecks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := gen(), gen()
	if a != b {
		t.Fatal("same configuration produced different report bytes")
	}
	if strings.Contains(a, "Generated 2") {
		t.Error("report contains a timestamp despite empty GeneratedAt")
	}
	var c strings.Builder
	err := WriteReport(&c, ReportConfig{
		N: 6, K: 2,
		Options:        Options{Seeds: 1, Acquisitions: 2},
		SkipSlowChecks: true,
		GeneratedAt:    "2026-01-02T03:04:05Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "Generated 2026-01-02T03:04:05Z.") {
		t.Error("injected GeneratedAt not stamped")
	}
}

func TestK1ComparisonContent(t *testing.T) {
	out := K1Comparison(8, Options{Seeds: 1, Acquisitions: 2})
	for _, want := range []string{"mcs", "ticket", "cc-fastpath", "dsm-graceful", "crash-tolerant"} {
		if !strings.Contains(out, want) {
			t.Errorf("k1 comparison missing %q", want)
		}
	}
}

func TestAllTheoremsFormat(t *testing.T) {
	out := AllTheorems(Options{Seeds: 1, Acquisitions: 2})
	for num := 1; num <= 10; num++ {
		if !strings.Contains(out, "Theorem "+string(rune('0'+num%10))) && num != 10 {
			t.Errorf("missing theorem %d", num)
		}
	}
	if !strings.Contains(out, "Theorem 10") {
		t.Error("missing theorem 10")
	}
	if strings.Contains(out, "\tfalse\n") {
		t.Error("a theorem exceeded its bound")
	}
}

func TestSeriesFormatAndOk(t *testing.T) {
	s := Series{
		Title:  "test series",
		XLabel: "N",
		Points: []Point{{X: 4, Max: 10, Mean: 8.5, Bound: 12}},
	}
	if !s.Ok() {
		t.Fatal("series within bound must be Ok")
	}
	out := s.Format()
	if !strings.Contains(out, "test series") || !strings.Contains(out, "8.5") {
		t.Fatalf("format wrong:\n%s", out)
	}
	s.Points = append(s.Points, Point{X: 8, Max: 20, Bound: 12})
	if s.Ok() {
		t.Fatal("series exceeding bound must not be Ok")
	}
}

func TestLookupUnknownTheorem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown theorem")
		}
	}()
	lookup(42)
}
