package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
)

// Table1Row is one row of the reproduced Table 1: a k-exclusion
// algorithm's measured remote references per acquisition with contention
// at most k ("w/o contention" in the paper's sense) and at full
// contention N, on its target machine model(s).
type Table1Row struct {
	Algorithm  string
	Model      string
	Primitives string
	PaperRow   string
	Low        Measurement
	High       Measurement
	Resilient  bool
}

// primitives documents the "Instructions Used" column of Table 1.
var primitives = map[string]string{
	"fig1-queue":            "large atomic sections",
	"spinfaa":               "fetch&add",
	"bakery":                "read/write",
	"scanquad":              "read/write",
	"cc-inductive":          "read, write, fetch&inc",
	"cc-tree":               "read, write, fetch&inc",
	"cc-fastpath":           "read, write, fetch&inc",
	"cc-fastpath-faa":       "read, write, fetch&inc",
	"cc-graceful":           "read, write, fetch&inc",
	"dsm-unbounded":         "above + compare&swap",
	"dsm-inductive":         "above + compare&swap",
	"dsm-tree":              "above + compare&swap",
	"dsm-fastpath":          "above + compare&swap",
	"dsm-graceful":          "above + compare&swap",
	"cc-fastpath+renaming":  "above + test&set",
	"dsm-fastpath+renaming": "above + test&set",
	"resilient-counter(cc-fastpath+renaming)": "above + test&set",
}

// paperRows maps our protocols to the Table 1 row they reproduce.
var paperRows = map[string]string{
	"fig1-queue":            "[9],[10] (Fig. 1)",
	"spinfaa":               "(folklore)",
	"bakery":                "[1] stand-in",
	"scanquad":              "[8] stand-in",
	"cc-inductive":          "Thm. 1",
	"cc-tree":               "Thm. 2",
	"cc-fastpath":           "Thm. 3",
	"cc-fastpath-faa":       "Thm. 3 (fn. 2)",
	"cc-graceful":           "Thm. 4",
	"dsm-unbounded":         "Fig. 5",
	"dsm-inductive":         "Thm. 5",
	"dsm-tree":              "Thm. 6",
	"dsm-fastpath":          "Thm. 7",
	"dsm-graceful":          "Thm. 8",
	"cc-fastpath+renaming":  "Thm. 9",
	"dsm-fastpath+renaming": "Thm. 10",
	"resilient-counter(cc-fastpath+renaming)": "§1 methodology",
}

// Table1 measures every registered protocol at (n,k), with contention k
// (the "without contention" column: the fast-path threshold) and at full
// contention.
func Table1(n, k int, opt Options) []Table1Row {
	var rows []Table1Row
	for _, pr := range algo.All() {
		for _, model := range pr.Traits().Models {
			rows = append(rows, Table1Row{
				Algorithm:  pr.Name(),
				Model:      model.String(),
				Primitives: primitives[pr.Name()],
				PaperRow:   paperRows[pr.Name()],
				Low:        Measure(pr, model, n, k, k, opt),
				High:       Measure(pr, model, n, k, 0, opt),
				Resilient:  pr.Traits().Resilient,
			})
		}
	}
	return rows
}

// FormatTable1 renders rows as the reproduced Table 1.
func FormatTable1(rows []Table1Row, n, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (reproduced): remote references per acquisition, N=%d k=%d\n", n, k)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tmodel\tpaper row\tcontention<=k max(mean)\tcontention=N max(mean)\tresilient\tprimitives")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d (%.1f)\t%d (%.1f)\t%v\t%s\n",
			r.Algorithm, r.Model, r.PaperRow,
			r.Low.Max, r.Low.Mean, r.High.Max, r.High.Mean,
			r.Resilient, r.Primitives)
	}
	w.Flush()
	return b.String()
}

// ModelByName parses "cc" or "dsm".
func ModelByName(s string) (machine.Model, error) {
	switch strings.ToLower(s) {
	case "cc":
		return machine.CacheCoherent, nil
	case "dsm":
		return machine.Distributed, nil
	default:
		return 0, fmt.Errorf("bench: unknown model %q (want cc or dsm)", s)
	}
}
