package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"kexclusion/internal/core"
)

func TestRunNativeWorkloadAccounting(t *testing.T) {
	cfg := NativeConfig{N: 6, K: 2, OpsPerProc: 8, Seed: 3}
	rep := RunNative(cfg)

	wantRows := len(core.Registry()) + 2 // + assignment + shared
	if len(rep.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), wantRows)
	}
	total := int64(cfg.N * cfg.OpsPerProc)
	for _, row := range rep.Rows {
		if row.Impl == "fastpath+shared" {
			// The shared stack counts applied operations, not raw slots
			// (its acquisitions are the wrapper's, checked below).
			if row.Obs.AppliedOps != total {
				t.Errorf("%s: applied_ops=%d, want %d", row.Impl, row.Obs.AppliedOps, total)
			}
		}
		if row.Obs.Acquires != row.Obs.Releases {
			t.Errorf("%s: acquires=%d releases=%d, want equal", row.Impl, row.Obs.Acquires, row.Obs.Releases)
		}
		if row.Obs.Acquires < total {
			t.Errorf("%s: acquires=%d, want >= %d (workload is fixed)", row.Impl, row.Obs.Acquires, total)
		}
		if row.Obs.CurrentHolders != 0 {
			t.Errorf("%s: current_holders=%d after quiescence", row.Impl, row.Obs.CurrentHolders)
		}
		if row.Obs.PeakHolders > int64(row.K)+int64(cfg.K) {
			// Each row's sink may aggregate two stacked objects (fast path
			// over its slow path shares the sink with the wrapper), but
			// occupancy per object never exceeds its k.
			t.Errorf("%s: peak_holders=%d implausible for k=%d", row.Impl, row.Obs.PeakHolders, row.K)
		}
	}
}

func TestNativeReportJSONSchema(t *testing.T) {
	rep := RunNative(NativeConfig{N: 4, K: 2, OpsPerProc: 2})
	b := rep.JSON()
	if !bytes.HasSuffix(b, []byte("\n")) {
		t.Error("JSON artifact must end in a newline")
	}
	var decoded struct {
		Seed int64 `json:"seed"`
		Rows []struct {
			Impl string `json:"impl"`
			Obs  struct {
				Latency []int64 `json:"latency_ns_pow2"`
			} `json:"obs"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Seed != 1 {
		t.Errorf("default seed = %d, want 1", decoded.Seed)
	}
	for _, row := range decoded.Rows {
		if len(row.Obs.Latency) != 32 {
			t.Errorf("%s: latency histogram has %d buckets, want fixed 32", row.Impl, len(row.Obs.Latency))
		}
	}
	// Schema stability: two runs of the same shape produce the same keys
	// in the same order even though counter values differ.
	keys := func(b []byte) []string {
		var rows []json.RawMessage
		var top map[string]json.RawMessage
		if err := json.Unmarshal(b, &top); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(top["rows"], &rows); err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(bytes.NewReader(rows[0]))
		var ks []string
		depth := 0
		for {
			tok, err := dec.Token()
			if err != nil {
				break
			}
			switch v := tok.(type) {
			case json.Delim:
				if v == '{' || v == '[' {
					depth++
				} else {
					depth--
				}
			case string:
				if depth >= 1 {
					ks = append(ks, v)
				}
			}
		}
		return ks
	}
	a := keys(b)
	c := keys(RunNative(NativeConfig{N: 4, K: 2, OpsPerProc: 2}).JSON())
	if len(a) == 0 || len(a) != len(c) {
		t.Fatalf("key streams differ in length: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("key order differs at %d: %q vs %q", i, a[i], c[i])
		}
	}
}
