package bench

import (
	"strings"
	"testing"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
)

func TestMeasureBasics(t *testing.T) {
	m := Measure(algo.FastPath{}, machine.CacheCoherent, 8, 2, 2, Options{Seeds: 2})
	if m.Max == 0 || m.Mean == 0 || m.Runs != 6 {
		t.Fatalf("unexpected measurement %+v", m)
	}
	if m.Max > uint64(7*2+2) {
		t.Fatalf("fast path low-contention max %d exceeds 7k+2", m.Max)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(8, 2, Options{Seeds: 1, Acquisitions: 2})
	if len(rows) < 15 {
		t.Fatalf("Table 1 has %d rows, expected at least 15", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Algorithm+"/"+r.Model] = true
		if r.Low.Max == 0 && r.Algorithm != "trivial" {
			t.Errorf("row %s/%s measured no cost", r.Algorithm, r.Model)
		}
	}
	for _, want := range []string{"cc-fastpath/CC", "dsm-fastpath/DSM", "fig1-queue/CC", "bakery/DSM"} {
		if !seen[want] {
			t.Errorf("Table 1 missing row %s", want)
		}
	}
	out := FormatTable1(rows, 8, 2)
	if !strings.Contains(out, "cc-fastpath") || !strings.Contains(out, "Thm. 3") {
		t.Fatalf("formatted table missing expected content:\n%s", out)
	}
}

func TestTheoremSweepsWithinBounds(t *testing.T) {
	opt := Options{Seeds: 2, Acquisitions: 3}
	for _, num := range []int{1, 2, 5, 6} {
		s := TheoremNSweep(num, 2, []int{4, 8, 16}, opt)
		if !s.Ok() {
			t.Errorf("theorem %d exceeded bound:\n%s", num, s.Format())
		}
	}
	for _, num := range []int{3, 4, 7, 8, 9, 10} {
		s := TheoremContentionSweep(num, 12, 3, []int{1, 3, 6, 12}, opt)
		if !s.Ok() {
			t.Errorf("theorem %d exceeded bound:\n%s", num, s.Format())
		}
	}
}

func TestFig3bSweepShapes(t *testing.T) {
	opt := Options{Seeds: 2, Acquisitions: 3}
	series := Fig3bSweep(machine.CacheCoherent, 16, 2, []int{2, 16}, opt)
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	// The fast path must be cheaper than the plain tree at low
	// contention, and the graceful variant must degrade between the
	// fast path's two regimes.
	var tree, fast, graceful Series
	for _, s := range series {
		switch {
		case strings.Contains(s.Title, "cc-tree"):
			tree = s
		case strings.Contains(s.Title, "cc-fastpath"):
			fast = s
		case strings.Contains(s.Title, "cc-graceful"):
			graceful = s
		}
	}
	if fast.Points[0].Max >= tree.Points[0].Max {
		t.Errorf("fast path at low contention (%d) should beat the tree (%d)",
			fast.Points[0].Max, tree.Points[0].Max)
	}
	if graceful.Points[1].Max <= graceful.Points[0].Max {
		t.Errorf("graceful degradation should cost more at high contention (low=%d high=%d)",
			graceful.Points[0].Max, graceful.Points[1].Max)
	}
}

func TestModelByName(t *testing.T) {
	if m, err := ModelByName("cc"); err != nil || m != machine.CacheCoherent {
		t.Fatal("cc parse failed")
	}
	if m, err := ModelByName("DSM"); err != nil || m != machine.Distributed {
		t.Fatal("dsm parse failed")
	}
	if _, err := ModelByName("numa"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestHelpers(t *testing.T) {
	if Log2Ceil(16, 4) != 2 || Log2Ceil(17, 4) != 3 || Log2Ceil(4, 4) != 0 {
		t.Fatal("Log2Ceil wrong")
	}
	if CeilDiv(5, 2) != 3 || CeilDiv(4, 2) != 2 {
		t.Fatal("CeilDiv wrong")
	}
}
