package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"kexclusion/internal/core"
	"kexclusion/internal/obs"
	"kexclusion/internal/renaming"
	"kexclusion/internal/resilient"
)

// NativeConfig shapes one native-runtime benchmark sweep: real goroutines
// driving the real implementations (as opposed to the simulated CC/DSM
// machines of the rest of this package), observed through an obs.Metrics
// sink.
type NativeConfig struct {
	// N is the number of goroutine identities (default 16).
	N int
	// K is the slot count for the variable-k implementations (default 4).
	// Fixed-k entries (MCS) always run at their own k.
	K int
	// OpsPerProc is the acquire/release (or Apply) cycles each goroutine
	// performs (default 64).
	OpsPerProc int
	// Seed parameterizes the critical-section work so the workload is a
	// pure function of the configuration (default 1).
	Seed int64
}

func (c NativeConfig) withDefaults() NativeConfig {
	if c.N <= 0 {
		c.N = 16
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NativeRow is one implementation's observed run. The schema — field set
// and order — is fixed; counter totals that are functions of the workload
// (acquires = releases = N*OpsPerProc) are deterministic, while timing
// and contention counters (latency buckets, spin polls, path splits)
// vary with the scheduler.
type NativeRow struct {
	Impl       string       `json:"impl"`
	N          int          `json:"n"`
	K          int          `json:"k"`
	OpsPerProc int          `json:"ops_per_proc"`
	Obs        obs.Snapshot `json:"obs"`
}

// NativeReport is the full sweep: every registry entry, then the Figure 7
// assignment wrapper and the §1 shared-object stack over the fast path.
type NativeReport struct {
	Seed int64       `json:"seed"`
	Rows []NativeRow `json:"rows"`
}

// JSON renders the report with a deterministic schema (fixed key order,
// fixed latency-array length), indented for artifact diffing.
func (r NativeReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// The report contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("bench: native report encoding failed: %v", err))
	}
	return append(b, '\n')
}

// String renders a compact human-readable summary, one line per row.
func (r NativeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "native runtime sweep (seed=%d)\n", r.Seed)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s n=%-3d k=%-2d acquires=%-6d fast=%-6d slow=%-6d spin polls=%-8d yields=%-6d peak holders=%d\n",
			row.Impl, row.N, row.K, row.Obs.Acquires, row.Obs.FastPathTakes, row.Obs.SlowPathTakes,
			row.Obs.SpinPolls, row.Obs.Yields, row.Obs.PeakHolders)
	}
	return b.String()
}

// splitmix64 is the seed expander for the critical-section work: tiny,
// deterministic, and good enough to decorrelate (seed, proc, op) triples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// csWork burns a small, seed-determined amount of CPU inside the
// critical section so acquisitions overlap realistically.
func csWork(seed int64, p, op int) {
	spins := splitmix64(uint64(seed)^uint64(p)<<20^uint64(op)) & 0x3f
	for i := uint64(0); i < spins; i++ {
		_ = i * i
	}
}

// drive runs the fixed workload: N goroutines, each performing
// OpsPerProc cycles of op.
func drive(cfg NativeConfig, op func(p, i int)) {
	var wg sync.WaitGroup
	for p := 0; p < cfg.N; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerProc; i++ {
				op(p, i)
			}
		}(p)
	}
	wg.Wait()
}

// RunNative executes the fixed seeded workload against every registry
// entry on the real goroutine runtime and collects each run's metrics
// snapshot, followed by two composition rows: the fast path under the
// Figure 7 k-assignment, and the full §1 shared-object stack (wait-free
// counter encased in the assignment).
func RunNative(cfg NativeConfig) NativeReport {
	cfg = cfg.withDefaults()
	rep := NativeReport{Seed: cfg.Seed}

	for _, c := range core.Registry() {
		kk := cfg.K
		if c.FixedK != 0 {
			kk = c.FixedK
		}
		m := obs.New()
		kx := c.New(cfg.N, kk, core.WithMetrics(m))
		drive(cfg, func(p, i int) {
			kx.Acquire(p)
			csWork(cfg.Seed, p, i)
			kx.Release(p)
		})
		rep.Rows = append(rep.Rows, NativeRow{
			Impl: c.Name, N: cfg.N, K: kk, OpsPerProc: cfg.OpsPerProc, Obs: m.Snapshot(),
		})
	}

	// Figure 7 assignment over the fast path: name grants and test&set
	// failures join the underlying k-exclusion's counters in one sink.
	{
		m := obs.New()
		asg := renaming.NewAssignment(core.NewFastPath(cfg.N, cfg.K, core.WithMetrics(m))).WithMetrics(m)
		drive(cfg, func(p, i int) {
			name := asg.Acquire(p)
			csWork(cfg.Seed, p, i)
			asg.Release(p, name)
		})
		rep.Rows = append(rep.Rows, NativeRow{
			Impl: "fastpath+renaming", N: cfg.N, K: cfg.K, OpsPerProc: cfg.OpsPerProc, Obs: m.Snapshot(),
		})
	}

	// The §1 stack: wait-free counter under the assignment; applied-op
	// and helping counters come from the universal core.
	{
		m := obs.New()
		sh := resilient.NewSharedConfig(cfg.N, cfg.K, int64(0), nil, resilient.Config{Metrics: m})
		inc := func(s int64) (int64, any) { return s + 1, s + 1 }
		drive(cfg, func(p, i int) {
			csWork(cfg.Seed, p, i)
			sh.Apply(p, inc)
		})
		rep.Rows = append(rep.Rows, NativeRow{
			Impl: "fastpath+shared", N: cfg.N, K: cfg.K, OpsPerProc: cfg.OpsPerProc, Obs: m.Snapshot(),
		})
	}
	return rep
}
