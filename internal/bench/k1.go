package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// ResilientObjectSweep measures the §1 methodology protocol (wait-free
// counter under the Theorem 9 wrapper) across contention levels.
func ResilientObjectSweep(n, k int, opt Options) Series {
	s := Series{
		Title:  fmt.Sprintf("§1 resilient counter over Thm. 9 wrapper, N=%d k=%d (remote refs per operation)", n, k),
		XLabel: "contention",
	}
	pr := algo.ResilientObject{}
	for _, c := range []int{1, k, 2 * k, n} {
		m := Measure(pr, machine.CacheCoherent, n, k, c, opt)
		s.Points = append(s.Points, Point{X: c, Max: m.Max, Mean: m.Mean})
	}
	return s
}

// K1Comparison is the concluding-remarks experiment: at k=1, how close
// do the paper's resilient algorithms come to the fastest (but
// non-resilient) spin locks — MCS and the ticket lock? Measured on both
// machine models at low and full contention.
func K1Comparison(n int, opt Options) string {
	type row struct {
		pr        proto.Protocol
		model     machine.Model
		resilient bool
	}
	rows := []row{
		{algo.MCS{}, machine.CacheCoherent, false},
		{algo.MCS{}, machine.Distributed, false},
		{algo.Ticket{}, machine.CacheCoherent, false},
		{algo.Ticket{}, machine.Distributed, false},
		{algo.FastPath{}, machine.CacheCoherent, true},
		{algo.Graceful{}, machine.CacheCoherent, true},
		{algo.FastPathDSM{}, machine.Distributed, true},
		{algo.GracefulDSM{}, machine.Distributed, true},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "k=1 comparison (concluding remarks), N=%d: remote refs per acquisition\n", n)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "lock\tmodel\tcontention=1 max(mean)\tcontention=N max(mean)\tcrash-tolerant")
	for _, r := range rows {
		low := Measure(r.pr, r.model, n, 1, 1, opt)
		high := Measure(r.pr, r.model, n, 1, 0, opt)
		fmt.Fprintf(w, "%s\t%s\t%d (%.1f)\t%d (%.1f)\t%v\n",
			r.pr.Name(), r.model, low.Max, low.Mean, high.Max, high.Mean, r.resilient)
	}
	w.Flush()
	return b.String()
}
