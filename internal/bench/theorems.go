package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// Point is one measured point of a theorem series, with the paper's
// bound at the same coordinates.
type Point struct {
	X     int
	Max   uint64
	Mean  float64
	Bound int
}

// Series is one theorem's measured curve.
type Series struct {
	Title  string
	XLabel string
	Points []Point
}

// Ok reports whether every measured maximum respects the paper's bound.
// Points with no bound (Bound == 0, e.g. descriptive sweeps) are skipped.
func (s Series) Ok() bool {
	for _, p := range s.Points {
		if p.Bound > 0 && p.Max > uint64(p.Bound) {
			return false
		}
	}
	return true
}

// Format renders the series as an aligned table. Points without a bound
// render a dash in the bound columns.
func (s Series) Format() string {
	var b strings.Builder
	fmt.Fprintln(&b, s.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tmeasured max\tmeasured mean\tpaper bound\twithin\n", s.XLabel)
	for _, p := range s.Points {
		if p.Bound > 0 {
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%d\t%v\n", p.X, p.Max, p.Mean, p.Bound, p.Max <= uint64(p.Bound))
		} else {
			fmt.Fprintf(w, "%d\t%d\t%.1f\t-\t-\n", p.X, p.Max, p.Mean)
		}
	}
	w.Flush()
	return b.String()
}

// theoremSpec describes one theorem's protocol, model and bound.
type theoremSpec struct {
	num   int
	pr    proto.Protocol
	model machine.Model
	// bound computes the paper's bound for (n, k, contention c).
	bound func(n, k, c int) int
}

func specs() []theoremSpec {
	return []theoremSpec{
		{1, algo.Inductive{}, machine.CacheCoherent,
			func(n, k, _ int) int { return 7 * (n - k) }},
		{2, algo.Tree{}, machine.CacheCoherent,
			func(n, k, _ int) int { return 7 * k * Log2Ceil(n, k) }},
		{3, algo.FastPath{}, machine.CacheCoherent,
			func(n, k, c int) int {
				if c > 0 && c <= k {
					return 7*k + 2
				}
				return 7*k*(Log2Ceil(n, k)+1) + 2
			}},
		{4, algo.Graceful{}, machine.CacheCoherent,
			func(n, k, c int) int {
				if c <= 0 {
					c = n
				}
				return CeilDiv(c, k) * (7*k + 2)
			}},
		{5, algo.InductiveDSM{}, machine.Distributed,
			func(n, k, _ int) int { return 14 * (n - k) }},
		{6, algo.TreeDSM{}, machine.Distributed,
			func(n, k, _ int) int { return 14 * k * Log2Ceil(n, k) }},
		{7, algo.FastPathDSM{}, machine.Distributed,
			func(n, k, c int) int {
				if c > 0 && c <= k {
					return 14*k + 2
				}
				return 14*k*(Log2Ceil(n, k)+1) + 2
			}},
		{8, algo.GracefulDSM{}, machine.Distributed,
			func(n, k, c int) int {
				if c <= 0 {
					c = n
				}
				return CeilDiv(c, k) * (14*k + 2)
			}},
		{9, algo.Assignment{Excl: algo.FastPath{}}, machine.CacheCoherent,
			func(n, k, c int) int {
				if c > 0 && c <= k {
					return 7*k + 2 + k
				}
				return 7*k*(Log2Ceil(n, k)+1) + 2 + k
			}},
		{10, algo.Assignment{Excl: algo.FastPathDSM{}}, machine.Distributed,
			func(n, k, c int) int {
				if c > 0 && c <= k {
					return 14*k + 2 + k
				}
				return 14*k*(Log2Ceil(n, k)+1) + 2 + k
			}},
	}
}

// TheoremNSweep measures a theorem's cost as N grows at fixed k, at full
// contention (the regime the N-dependent bounds describe).
func TheoremNSweep(num, k int, ns []int, opt Options) Series {
	sp := lookup(num)
	s := Series{
		Title:  fmt.Sprintf("Theorem %d: %s on %s, k=%d, full contention", num, sp.pr.Name(), sp.model, k),
		XLabel: "N",
	}
	for _, n := range ns {
		m := Measure(sp.pr, sp.model, n, k, 0, opt)
		s.Points = append(s.Points, Point{X: n, Max: m.Max, Mean: m.Mean, Bound: sp.bound(n, k, 0)})
	}
	return s
}

// TheoremContentionSweep measures a theorem's cost as contention grows at
// fixed (N,k) — the regime distinguishing the fast-path theorems (3, 7)
// from the graceful-degradation theorems (4, 8).
func TheoremContentionSweep(num, n, k int, cs []int, opt Options) Series {
	sp := lookup(num)
	s := Series{
		Title:  fmt.Sprintf("Theorem %d: %s on %s, N=%d k=%d, contention sweep", num, sp.pr.Name(), sp.model, n, k),
		XLabel: "contention",
	}
	for _, c := range cs {
		m := Measure(sp.pr, sp.model, n, k, c, opt)
		s.Points = append(s.Points, Point{X: c, Max: m.Max, Mean: m.Mean, Bound: sp.bound(n, k, c)})
	}
	return s
}

// Fig3bSweep reproduces the Figure 3 comparison: at fixed (N,k), how the
// tree (a), tree-slow-path fast path, and nested fast paths (b) behave
// as contention rises. The fast path steps up once contention passes k;
// the nested version degrades in increments of roughly one level per k
// of contention.
func Fig3bSweep(model machine.Model, n, k int, cs []int, opt Options) []Series {
	var prs []proto.Protocol
	switch model {
	case machine.CacheCoherent:
		prs = []proto.Protocol{algo.Tree{}, algo.FastPath{}, algo.Graceful{}}
	default:
		prs = []proto.Protocol{algo.TreeDSM{}, algo.FastPathDSM{}, algo.GracefulDSM{}}
	}
	var out []Series
	for _, pr := range prs {
		s := Series{
			Title:  fmt.Sprintf("Fig. 3 sweep: %s on %s, N=%d k=%d", pr.Name(), model, n, k),
			XLabel: "contention",
		}
		for _, c := range cs {
			m := Measure(pr, model, n, k, c, opt)
			s.Points = append(s.Points, Point{X: c, Max: m.Max, Mean: m.Mean, Bound: 0})
		}
		out = append(out, s)
	}
	return out
}

// AllTheorems runs the canonical sweep for every theorem and returns the
// formatted report.
func AllTheorems(opt Options) string {
	var b strings.Builder
	ns := []int{4, 8, 16, 32}
	for _, num := range []int{1, 5} {
		s := TheoremNSweep(num, 2, ns, opt)
		b.WriteString(s.Format())
		b.WriteByte('\n')
	}
	for _, num := range []int{2, 6} {
		s := TheoremNSweep(num, 4, []int{8, 16, 32, 64}, opt)
		b.WriteString(s.Format())
		b.WriteByte('\n')
	}
	for _, num := range []int{3, 4, 7, 8, 9, 10} {
		s := TheoremContentionSweep(num, 16, 4, []int{1, 2, 4, 8, 12, 16}, opt)
		b.WriteString(s.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(num int) theoremSpec {
	for _, sp := range specs() {
		if sp.num == num {
			return sp
		}
	}
	panic(fmt.Sprintf("bench: no theorem %d", num))
}
