// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts: Table 1 (the k-exclusion algorithm comparison)
// and the complexity claims of Theorems 1-10, including the Figure 3(b)
// contention-sweep that contrasts the tree slow path's step behaviour
// with the nested fast paths' graceful degradation. Results are measured
// in the paper's own metric — remote memory references per
// critical-section acquisition on the simulated CC and DSM machines —
// and rendered as aligned text tables.
package bench

import (
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// Measurement summarizes the remote-reference cost observed for one
// protocol at one configuration, searched across schedulers and seeds.
type Measurement struct {
	Max  uint64
	Mean float64
	Runs int
}

// Options control the measurement effort.
type Options struct {
	// Acquisitions per process per run (default 4).
	Acquisitions int
	// Seeds is the number of random/burst scheduler seeds searched in
	// addition to two round-robin runs (default 8).
	Seeds int
}

func (o Options) withDefaults() Options {
	if o.Acquisitions <= 0 {
		o.Acquisitions = 4
	}
	if o.Seeds <= 0 {
		o.Seeds = 8
	}
	return o
}

// Measure runs protocol pr on the given machine model at the given
// contention cap (0 = unbounded) and returns the worst and mean
// per-acquisition remote-reference cost over all runs.
func Measure(pr proto.Protocol, model machine.Model, n, k, contention int, opt Options) Measurement {
	opt = opt.withDefaults()
	var m Measurement
	var meanSum float64

	run := func(s machine.Scheduler, ncs int) {
		res := proto.RunProtocol(pr, model, n, k, proto.Config{
			Acquisitions:  opt.Acquisitions,
			MaxContention: contention,
			Sched:         s,
			NCSSteps:      ncs,
		})
		if len(res.Violations) > 0 {
			// Measurement harness is not a test; surface loudly.
			panic("bench: protocol " + pr.Name() + " violated safety during measurement: " + res.Violations[0])
		}
		// Runs may be incomplete for baselines that are not
		// starvation-free (spinfaa can starve a process forever under
		// an adversarial schedule — part of what Table 1 reports);
		// completed acquisitions still carry valid costs.
		if len(res.Records) == 0 {
			return
		}
		if res.MaxAcqRemote > m.Max {
			m.Max = res.MaxAcqRemote
		}
		meanSum += res.MeanAcqRemote
		m.Runs++
	}

	run(machine.NewRoundRobin(), 0)
	run(machine.NewRoundRobin(), 2)
	for seed := 0; seed < opt.Seeds; seed++ {
		run(machine.NewRandom(int64(seed)), seed%3)
		run(machine.NewBurst(int64(seed), 10), seed%3)
	}
	m.Mean = meanSum / float64(m.Runs)
	return m
}

// Log2Ceil returns ceil(log2(ceil(n/k))), the arbitration-tree depth
// appearing in Theorems 2, 3, 6 and 7.
func Log2Ceil(n, k int) int {
	groups := (n + k - 1) / k
	d := 0
	for (1 << d) < groups {
		d++
	}
	return d
}

// CeilDiv returns ceil(a/b).
func CeilDiv(a, b int) int { return (a + b - 1) / b }
