package durable

import (
	"fmt"
	"testing"
)

func TestStepAppliesAndVersions(t *testing.T) {
	var s ShardState
	out := Step(&s, 0, 1, 1, OpAdd, 5)
	if !out.Applied || out.Val != 5 || out.Ver != 1 {
		t.Fatalf("add: %+v", out)
	}
	out = Step(&s, 0, 1, 2, OpSet, 40)
	if !out.Applied || out.Val != 40 || out.Ver != 2 {
		t.Fatalf("set: %+v", out)
	}
	out = Step(&s, 0, 1, 3, OpAdd, 2)
	if !out.Applied || out.Val != 42 || out.Ver != 3 {
		t.Fatalf("add after set: %+v", out)
	}
	if s.Val != 42 || s.Ver != 3 {
		t.Fatalf("state: %+v", s)
	}
}

func TestStepDeduplicatesRetries(t *testing.T) {
	var s ShardState
	first := Step(&s, 0, 7, 1, OpAdd, 10)
	if !first.Applied {
		t.Fatalf("first: %+v", first)
	}
	// A retry of the same op ID must not move the state and must
	// return the originally acknowledged value and version.
	retry := Step(&s, 0, 7, 1, OpAdd, 10)
	if retry.Applied || !retry.Duplicate || retry.Val != 10 || retry.Ver != first.Ver {
		t.Fatalf("retry: %+v", retry)
	}
	if s.Val != 10 || s.Ver != 1 {
		t.Fatalf("state moved on duplicate: %+v", s)
	}
	// The session's recent history answers older seqs too — a pipelined
	// burst healing after a connection loss re-issues every un-acked op,
	// and each must get its ORIGINAL value back.
	Step(&s, 0, 7, 2, OpAdd, 1)
	old := Step(&s, 0, 7, 1, OpAdd, 10)
	if !old.Duplicate || old.Applied || old.Val != 10 || old.Ver != first.Ver {
		t.Fatalf("windowed retry of seq 1: %+v", old)
	}
	if s.Val != 11 {
		t.Fatalf("windowed retry moved state: %+v", s)
	}
	// A seq that has aged past DedupDepth is stale, not a duplicate.
	for i := 0; i < DedupDepth; i++ {
		Step(&s, 0, 7, uint64(3+i), OpAdd, 1)
	}
	stale := Step(&s, 0, 7, 1, OpAdd, 10)
	if !stale.Stale || stale.Applied || stale.Duplicate {
		t.Fatalf("stale: %+v", stale)
	}
	if s.Val != 11+DedupDepth {
		t.Fatalf("stale op moved state: %+v", s)
	}
}

func TestStepHistoryDepthBound(t *testing.T) {
	var s ShardState
	const n = DedupDepth * 2
	for i := 1; i <= n; i++ {
		Step(&s, 0, 9, uint64(i), OpAdd, 1)
	}
	e := s.Dedup[9]
	if got := 1 + len(e.Recent); got != DedupDepth {
		t.Fatalf("history holds %d ops, want %d", got, DedupDepth)
	}
	// The newest DedupDepth seqs answer as duplicates with their
	// original running totals; anything older is stale.
	for i := n - DedupDepth + 1; i <= n; i++ {
		out := Step(&s, 0, 9, uint64(i), OpAdd, 1)
		if !out.Duplicate || out.Val != int64(i) {
			t.Fatalf("seq %d: %+v, want duplicate with val %d", i, out, i)
		}
	}
	if out := Step(&s, 0, 9, uint64(n-DedupDepth), OpAdd, 1); !out.Stale {
		t.Fatalf("aged-out seq: %+v, want stale", out)
	}
}

func TestStepAnonymousOpsSkipDedup(t *testing.T) {
	var s ShardState
	for i := 0; i < 3; i++ {
		out := Step(&s, 0, 0, 0, OpAdd, 1)
		if !out.Applied {
			t.Fatalf("anonymous op %d: %+v", i, out)
		}
	}
	if s.Val != 3 || len(s.Dedup) != 0 {
		t.Fatalf("anonymous ops recorded dedup state: %+v", s)
	}
}

func TestDedupWindowEvictionUnderChurn(t *testing.T) {
	const window = 8
	var s ShardState
	// Sessions churn far past the window: memory must stay bounded and
	// the survivor set must always be the most recently active
	// sessions (largest versions).
	for sess := uint64(1); sess <= 100; sess++ {
		Step(&s, window, sess, 1, OpAdd, 1)
		if len(s.Dedup) > window {
			t.Fatalf("after session %d: window holds %d entries, cap %d", sess, len(s.Dedup), window)
		}
	}
	if len(s.Dedup) != window {
		t.Fatalf("window not full after churn: %d", len(s.Dedup))
	}
	for sess := uint64(100 - window + 1); sess <= 100; sess++ {
		if _, ok := s.Dedup[sess]; !ok {
			t.Fatalf("recently active session %d was evicted; window: %v", sess, s.Dedup)
		}
	}
	// An evicted session's retry is past the exactly-once window: it
	// re-applies (the documented bounded-window tradeoff) rather than
	// erroring or blowing memory.
	out := Step(&s, window, 1, 1, OpAdd, 1)
	if !out.Applied {
		t.Fatalf("evicted session's retry: %+v", out)
	}

	// Re-touching a session refreshes its version, so churn evicts
	// idle sessions, not busy ones.
	busy := uint64(200)
	Step(&s, window, busy, 1, OpAdd, 1)
	for sess := uint64(300); sess < 300+window; sess++ {
		Step(&s, window, busy, s.Dedup[busy].Seq+1, OpAdd, 1)
		Step(&s, window, sess, 1, OpAdd, 1)
	}
	if _, ok := s.Dedup[busy]; !ok {
		t.Fatalf("busy session evicted while idle sessions churned")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := ShardState{Ver: 3, Val: 9, Dedup: map[uint64]DedupEntry{4: {Seq: 2, Val: 9, Ver: 3}}}
	c := s.Clone()
	Step(&c, 0, 5, 1, OpAdd, 1)
	if s.Val != 9 || s.Ver != 3 || len(s.Dedup) != 1 {
		t.Fatalf("mutating the clone changed the original: %+v", s)
	}
	if c.Val != 10 || c.Ver != 4 || len(c.Dedup) != 2 {
		t.Fatalf("clone: %+v", c)
	}
}

func TestStepReplayEquivalence(t *testing.T) {
	// The property recovery depends on: feeding the same op sequence
	// through Step yields identical states, dedup windows included.
	type op struct {
		sess, seq uint64
		kind      OpKind
		arg       int64
	}
	var ops []op
	for i := 0; i < 50; i++ {
		ops = append(ops, op{sess: uint64(i%5 + 1), seq: uint64(i/5 + 1), kind: OpAdd, arg: int64(i)})
		if i%7 == 0 { // sprinkle retries
			ops = append(ops, ops[len(ops)-1])
		}
	}
	var a, b ShardState
	for _, o := range ops {
		Step(&a, 3, o.sess, o.seq, o.kind, o.arg)
	}
	for _, o := range ops {
		Step(&b, 3, o.sess, o.seq, o.kind, o.arg)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replay diverged:\n a=%+v\n b=%+v", a, b)
	}
}
