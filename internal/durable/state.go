package durable

// ShardState is the value type the server's resilient.Shared table
// holds per shard: the visible counter value plus the durability
// bookkeeping that must travel with it through the universal
// construction's clone-and-CAS cycle. Keeping the dedup window inside
// the shard state is what makes "check for a duplicate, then apply" a
// single linearized step — the wait-free core's helpers may execute an
// op closure several times against cloned copies, and only the clone
// that wins the CAS becomes real, so any bookkeeping outside the state
// would be charged once per speculative execution instead of once per
// applied op.
type ShardState struct {
	// Ver counts applied mutations: it increments by exactly one per
	// Step that applies, in linearization order. The server's WAL
	// sequencer appends records in Ver order, so Ver is also the
	// record's position in the shard's durable history.
	Ver uint64
	// Epoch fences forked histories across failovers: a promoted
	// primary mints Epoch+1 for the shards it takes over, and every
	// reconciliation (replicated applies, state-image installs,
	// promotion catch-up, replay) orders histories by (Epoch, Ver)
	// lexicographically — a higher epoch wins even at a lower version,
	// because version numbers on a deposed primary keep inflating with
	// writes that never reached quorum. Step never changes it; only
	// promotion and state installs do.
	Epoch uint64
	// Val is the shard's visible value.
	Val int64
	// Dedup maps a client session identity to its recent ops. One
	// entry per session, holding the newest op inline plus a short
	// history (see DedupDepth): a pipelined client can have several
	// un-acked ops in flight at once, and after a mid-burst connection
	// loss it re-issues all of them — each must be recognized, not just
	// the newest.
	Dedup map[uint64]DedupEntry
}

// DedupDepth is how many recent ops per (session, shard) the dedup
// window recognizes: the newest plus DedupDepth-1 older ones. A
// re-issued op older than that answers Stale — so a client pipelining
// deeper than DedupDepth onto one shard loses exactly-once coverage
// for the burst's oldest ops; bound pipeline depth accordingly.
const DedupDepth = 32

// DedupEntry records a session's recent ops on this shard: the newest
// inline (Seq/Val/Ver), older ones in Recent, newest first.
type DedupEntry struct {
	// Seq is the newest op's client-assigned sequence number.
	Seq uint64
	// Val is the result that was (or will be) acknowledged; a retry of
	// the same op is answered with it.
	Val int64
	// Ver is the shard version the newest op produced — the eviction
	// key (the window drops the longest-idle session first) and the WAL
	// position a duplicate must wait on before it can be
	// re-acknowledged.
	Ver uint64
	// Recent holds up to DedupDepth-1 older ops in descending seq
	// order. Never mutated in place: Step builds a fresh slice on every
	// update, so clones sharing the backing array stay consistent.
	Recent []DedupOp
}

// DedupOp is one historical op in a DedupEntry.
type DedupOp struct {
	Seq uint64
	Val int64
	Ver uint64
}

// Outcome reports what Step did with an op.
type Outcome struct {
	// Val is the value to acknowledge: the new shard value when
	// Applied, the originally recorded value when Duplicate.
	Val int64
	// Applied: the op executed and moved the state (Ver is its new
	// shard version, to be logged).
	Applied bool
	// Duplicate: the op ID matched the session's recorded entry; the
	// state did not move and Ver is the *original* application's
	// version.
	Duplicate bool
	// Stale: the op's sequence number is below the session's recorded
	// entry — a protocol error (the client already moved past it).
	Stale bool
	// Ver: shard version of the (original) application. Zero when
	// Stale.
	Ver uint64
	// Epoch is the shard's epoch at the op's linearization point — the
	// epoch its WAL record must carry, and the fencing token the
	// append sequencer and the quorum gate compare against to detect
	// that a state install superseded the op before it was
	// acknowledged. Zero when Stale.
	Epoch uint64
}

// Clone deep-copies the state. resilient.Shared calls it before every
// speculative op execution, so Step may mutate its receiver freely.
// Entries are copied by value; the Recent slices they point at are
// shared, which is safe because Step treats them as immutable
// (copy-on-write).
func (s ShardState) Clone() ShardState {
	c := s
	if s.Dedup != nil {
		c.Dedup = make(map[uint64]DedupEntry, len(s.Dedup))
		for k, v := range s.Dedup {
			c.Dedup[k] = v
		}
	}
	return c
}

// Step executes one mutation against s with dedup: the single source
// of truth for both live ops (inside the universal construction's op
// closure) and WAL replay, so a recovered table is bit-identical to
// the pre-crash one — same values, same dedup entries, same evictions.
//
// session==0 or seq==0 disables dedup for the op (anonymous clients,
// idempotent kinds). window bounds the dedup map; <=0 means unbounded.
func Step(s *ShardState, window int, session, seq uint64, kind OpKind, arg int64) Outcome {
	if session != 0 && seq != 0 {
		if e, ok := s.Dedup[session]; ok {
			if seq == e.Seq {
				return Outcome{Val: e.Val, Duplicate: true, Ver: e.Ver, Epoch: s.Epoch}
			}
			if seq < e.Seq {
				// An older seq: answer from the history if the window
				// still holds it (a pipelined burst healing after a
				// connection loss re-issues every un-acked op, oldest
				// included), stale only once it has aged out.
				for _, old := range e.Recent {
					if old.Seq == seq {
						return Outcome{Val: old.Val, Duplicate: true, Ver: old.Ver, Epoch: s.Epoch}
					}
				}
				return Outcome{Stale: true}
			}
		}
	}
	switch kind {
	case OpAdd:
		s.Val += arg
	case OpSet:
		s.Val = arg
	}
	s.Ver++
	if session != 0 && seq != 0 {
		if s.Dedup == nil {
			s.Dedup = make(map[uint64]DedupEntry)
		}
		prev, had := s.Dedup[session]
		entry := DedupEntry{Seq: seq, Val: s.Val, Ver: s.Ver}
		if had {
			// Push the superseded newest op into the history: a fresh
			// slice every time (never append to prev.Recent in place —
			// speculative clones share its backing array).
			keep := len(prev.Recent)
			if keep > DedupDepth-2 {
				keep = DedupDepth - 2
			}
			entry.Recent = make([]DedupOp, 0, keep+1)
			entry.Recent = append(entry.Recent, DedupOp{Seq: prev.Seq, Val: prev.Val, Ver: prev.Ver})
			entry.Recent = append(entry.Recent, prev.Recent[:keep]...)
		}
		s.Dedup[session] = entry
		if window > 0 && len(s.Dedup) > window {
			evictOldest(s.Dedup)
		}
	}
	return Outcome{Val: s.Val, Applied: true, Ver: s.Ver, Epoch: s.Epoch}
}

// evictOldest drops the entry with the smallest shard version — the
// session that has gone longest without touching this shard. Ties are
// impossible: versions are unique per shard.
func evictOldest(m map[uint64]DedupEntry) {
	var victim uint64
	first := true
	var minVer uint64
	for sess, e := range m {
		if first || e.Ver < minVer {
			victim, minVer, first = sess, e.Ver, false
		}
	}
	delete(m, victim)
}
