package durable

import "kexclusion/internal/object"

// ShardState is the value type the server's resilient.Shared table
// holds per shard: the visible counter value plus the durability
// bookkeeping that must travel with it through the universal
// construction's clone-and-CAS cycle. Keeping the dedup window inside
// the shard state is what makes "check for a duplicate, then apply" a
// single linearized step — the wait-free core's helpers may execute an
// op closure several times against cloned copies, and only the clone
// that wins the CAS becomes real, so any bookkeeping outside the state
// would be charged once per speculative execution instead of once per
// applied op.
type ShardState struct {
	// Ver counts applied mutations: it increments by exactly one per
	// Step that applies, in linearization order. The server's WAL
	// sequencer appends records in Ver order, so Ver is also the
	// record's position in the shard's durable history.
	Ver uint64
	// Epoch fences forked histories across failovers: a promoted
	// primary mints Epoch+1 for the shards it takes over, and every
	// reconciliation (replicated applies, state-image installs,
	// promotion catch-up, replay) orders histories by (Epoch, Ver)
	// lexicographically — a higher epoch wins even at a lower version,
	// because version numbers on a deposed primary keep inflating with
	// writes that never reached quorum. Step never changes it; only
	// promotion and state installs do.
	Epoch uint64
	// Val is the shard's visible value.
	Val int64
	// Objs is the shard's named-object table (kx05): registers, maps,
	// queues, and snapshot objects keyed by name. Nil until the first
	// create. Clone copies the map but shares the object states; a
	// mutation clones the one object it touches and swaps the pointer,
	// so per-op cost is O(objects in shard) for the map copy plus the
	// object's own COW cost, never O(total data).
	Objs map[string]*object.State
	// Dedup maps a client session identity to its recent ops. One
	// entry per session, holding the newest op inline plus a short
	// history (see DedupDepth): a pipelined client can have several
	// un-acked ops in flight at once, and after a mid-burst connection
	// loss it re-issues all of them — each must be recognized, not just
	// the newest.
	Dedup map[uint64]DedupEntry
}

// DedupDepth is how many recent ops per (session, shard) the dedup
// window recognizes: the newest plus DedupDepth-1 older ones. A
// re-issued op older than that answers Stale — so a client pipelining
// deeper than DedupDepth onto one shard loses exactly-once coverage
// for the burst's oldest ops; bound pipeline depth accordingly.
const DedupDepth = 32

// DedupEntry records a session's recent ops on this shard: the newest
// inline (Seq/Val/Ver), older ones in Recent, newest first.
type DedupEntry struct {
	// Seq is the newest op's client-assigned sequence number.
	Seq uint64
	// Val is the result that was (or will be) acknowledged; a retry of
	// the same op is answered with it.
	Val int64
	// OK is the op-level verdict that accompanied Val: false for a
	// logically rejected mutation (failed cas, dequeue on empty, type
	// conflict). A retry must be answered with the original verdict —
	// re-evaluating it against moved state would break exactly-once.
	OK bool
	// Ver is the shard version the newest op produced — the eviction
	// key (the window drops the longest-idle session first) and the WAL
	// position a duplicate must wait on before it can be
	// re-acknowledged.
	Ver uint64
	// Recent holds up to DedupDepth-1 older ops in descending seq
	// order. Never mutated in place: Step builds a fresh slice on every
	// update, so clones sharing the backing array stay consistent.
	Recent []DedupOp
}

// DedupOp is one historical op in a DedupEntry.
type DedupOp struct {
	Seq uint64
	Val int64
	OK  bool
	Ver uint64
}

// Op is one typed mutation against a shard: the legacy root-register
// kinds (OpAdd/OpSet, empty Obj) or a kx05 named-object kind. It is
// the in-memory twin of a WAL op record's mutation fields.
type Op struct {
	// Kind selects the mutation.
	Kind OpKind
	// Obj names the target object; empty for the legacy root register.
	Obj string
	// Key is the map key (map kinds only).
	Key string
	// Arg is the primary argument: delta, value, enqueue payload,
	// object type for creates.
	Arg int64
	// Arg2 is the secondary argument: cas expected value, snapshot
	// slot index, snapshot slot count for creates.
	Arg2 int64
}

// Outcome reports what Step did with an op.
type Outcome struct {
	// Val is the value to acknowledge: the new shard value when
	// Applied, the originally recorded value when Duplicate.
	Val int64
	// OK is the op-level verdict (true for every legacy kind that
	// applies; false when a typed op was logged as logically rejected —
	// cas mismatch, empty dequeue, missing object, type conflict).
	OK bool
	// Applied: the op executed and moved the state (Ver is its new
	// shard version, to be logged).
	Applied bool
	// Duplicate: the op ID matched the session's recorded entry; the
	// state did not move and Ver is the *original* application's
	// version.
	Duplicate bool
	// Stale: the op's sequence number is below the session's recorded
	// entry — a protocol error (the client already moved past it).
	Stale bool
	// Ver: shard version of the (original) application. Zero when
	// Stale.
	Ver uint64
	// Epoch is the shard's epoch at the op's linearization point — the
	// epoch its WAL record must carry, and the fencing token the
	// append sequencer and the quorum gate compare against to detect
	// that a state install superseded the op before it was
	// acknowledged. Zero when Stale.
	Epoch uint64
}

// Clone deep-copies the state. resilient.Shared calls it before every
// speculative op execution, so Step may mutate its receiver freely.
// Entries are copied by value; the Recent slices they point at are
// shared, which is safe because Step treats them as immutable
// (copy-on-write).
func (s ShardState) Clone() ShardState {
	c := s
	if s.Dedup != nil {
		c.Dedup = make(map[uint64]DedupEntry, len(s.Dedup))
		for k, v := range s.Dedup {
			c.Dedup[k] = v
		}
	}
	if s.Objs != nil {
		// The object states themselves are shared copy-on-write:
		// applyOp clones the one object it mutates and swaps the
		// pointer, so entries here are immutable once published.
		c.Objs = make(map[string]*object.State, len(s.Objs))
		for k, v := range s.Objs {
			c.Objs[k] = v
		}
	}
	return c
}

// Step executes one mutation against s with dedup: the single source
// of truth for both live ops (inside the universal construction's op
// closure) and WAL replay, so a recovered table is bit-identical to
// the pre-crash one — same values, same dedup entries, same evictions.
//
// session==0 or seq==0 disables dedup for the op (anonymous clients,
// idempotent kinds). window bounds the dedup map; <=0 means unbounded.
func Step(s *ShardState, window int, session, seq uint64, kind OpKind, arg int64) Outcome {
	return StepOp(s, window, session, seq, Op{Kind: kind, Arg: arg})
}

// StepOp is the typed-object generalization of Step: every mutation —
// legacy and kx05 alike — funnels through it, live and in replay.
//
// A mutation with an op ID ALWAYS applies (Ver advances and a record
// is logged) even when it is logically rejected (OK false: cas
// mismatch, dequeue on empty, missing object, type conflict). The
// rejection is part of the linearized history: a retry of the same op
// ID is answered with the original verdict from the dedup window, not
// re-evaluated against state that has since moved — exactly-once for
// failures, not just successes.
func StepOp(s *ShardState, window int, session, seq uint64, op Op) Outcome {
	if session != 0 && seq != 0 {
		if e, ok := s.Dedup[session]; ok {
			if seq == e.Seq {
				return Outcome{Val: e.Val, OK: e.OK, Duplicate: true, Ver: e.Ver, Epoch: s.Epoch}
			}
			if seq < e.Seq {
				// An older seq: answer from the history if the window
				// still holds it (a pipelined burst healing after a
				// connection loss re-issues every un-acked op, oldest
				// included), stale only once it has aged out.
				for _, old := range e.Recent {
					if old.Seq == seq {
						return Outcome{Val: old.Val, OK: old.OK, Duplicate: true, Ver: old.Ver, Epoch: s.Epoch}
					}
				}
				return Outcome{Stale: true}
			}
		}
	}
	val, ok := applyOp(s, op)
	s.Ver++
	if session != 0 && seq != 0 {
		if s.Dedup == nil {
			s.Dedup = make(map[uint64]DedupEntry)
		}
		prev, had := s.Dedup[session]
		entry := DedupEntry{Seq: seq, Val: val, OK: ok, Ver: s.Ver}
		if had {
			// Push the superseded newest op into the history: a fresh
			// slice every time (never append to prev.Recent in place —
			// speculative clones share its backing array).
			keep := len(prev.Recent)
			if keep > DedupDepth-2 {
				keep = DedupDepth - 2
			}
			entry.Recent = make([]DedupOp, 0, keep+1)
			entry.Recent = append(entry.Recent, DedupOp{Seq: prev.Seq, Val: prev.Val, OK: prev.OK, Ver: prev.Ver})
			entry.Recent = append(entry.Recent, prev.Recent[:keep]...)
		}
		s.Dedup[session] = entry
		if window > 0 && len(s.Dedup) > window {
			evictOldest(s.Dedup)
		}
	}
	return Outcome{Val: val, OK: ok, Applied: true, Ver: s.Ver, Epoch: s.Epoch}
}

// applyOp executes op's state change on s, returning the result value
// and the op-level verdict. It must be fully deterministic: replay
// re-executes it and cross-checks the recorded (Val, OK, Ver).
func applyOp(s *ShardState, op Op) (int64, bool) {
	switch op.Kind {
	case OpAdd:
		s.Val += op.Arg
		return s.Val, true
	case OpSet:
		s.Val = op.Arg
		return s.Val, true
	case OpCreate:
		t := object.Type(op.Arg)
		if cur, ok := s.Objs[op.Obj]; ok {
			// Idempotent: re-creating with the same type succeeds and
			// reports the type; a different type is a conflict.
			return int64(cur.Type), cur.Type == t
		}
		if !t.Valid() || op.Obj == "" {
			return 0, false
		}
		slots := int(op.Arg2)
		if t == object.TypeSnapshot && (slots < 1 || slots > object.MaxSnapSlots) {
			return 0, false
		}
		if s.Objs == nil {
			s.Objs = make(map[string]*object.State)
		}
		s.Objs[op.Obj] = object.New(t, slots)
		return int64(t), true
	}
	cur, ok := s.Objs[op.Obj]
	if !ok {
		return 0, false
	}
	// mutate clones the target object and republishes it, keeping the
	// previously published *State immutable for clones that share it.
	mutate := func() *object.State {
		c := cur.Clone()
		s.Objs[op.Obj] = c
		return c
	}
	switch op.Kind {
	case OpRegAdd:
		if cur.Type != object.TypeRegister {
			return 0, false
		}
		c := mutate()
		c.Reg += op.Arg
		return c.Reg, true
	case OpRegSet:
		if cur.Type != object.TypeRegister {
			return 0, false
		}
		mutate().Reg = op.Arg
		return op.Arg, true
	case OpMapPut:
		if cur.Type != object.TypeMap {
			return 0, false
		}
		mutate().M.Put(op.Key, op.Arg)
		return op.Arg, true
	case OpMapCAS:
		if cur.Type != object.TypeMap {
			return 0, false
		}
		// A missing key compares as 0, so cas(key, 0→v) initializes.
		cv, _ := cur.M.Get(op.Key)
		if cv != op.Arg2 {
			return cv, false // rejected: report the observed value
		}
		mutate().M.Put(op.Key, op.Arg)
		return op.Arg, true
	case OpMapDel:
		if cur.Type != object.TypeMap {
			return 0, false
		}
		if _, present := cur.M.Get(op.Key); !present {
			return 0, false
		}
		old, _ := mutate().M.Delete(op.Key)
		return old, true
	case OpQEnq:
		if cur.Type != object.TypeQueue {
			return 0, false
		}
		c := mutate()
		c.Q.PushBack(op.Arg)
		return int64(c.Q.Len()), true
	case OpQDeq:
		if cur.Type != object.TypeQueue {
			return 0, false
		}
		if cur.Q.Len() == 0 {
			return 0, false
		}
		v, _ := mutate().Q.PopFront()
		return v, true
	case OpSnapUpdate:
		if cur.Type != object.TypeSnapshot {
			return 0, false
		}
		slot := op.Arg2
		if slot < 0 || slot >= int64(len(cur.Slots)) {
			return 0, false
		}
		mutate().Slots[slot] = op.Arg
		return op.Arg, true
	}
	return 0, false
}

// evictOldest drops the entry with the smallest shard version — the
// session that has gone longest without touching this shard. Ties are
// impossible: versions are unique per shard.
func evictOldest(m map[uint64]DedupEntry) {
	var victim uint64
	first := true
	var minVer uint64
	for sess, e := range m {
		if first || e.Ver < minVer {
			victim, minVer, first = sess, e.Ver, false
		}
	}
	delete(m, victim)
}
