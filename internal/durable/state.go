package durable

// ShardState is the value type the server's resilient.Shared table
// holds per shard: the visible counter value plus the durability
// bookkeeping that must travel with it through the universal
// construction's clone-and-CAS cycle. Keeping the dedup window inside
// the shard state is what makes "check for a duplicate, then apply" a
// single linearized step — the wait-free core's helpers may execute an
// op closure several times against cloned copies, and only the clone
// that wins the CAS becomes real, so any bookkeeping outside the state
// would be charged once per speculative execution instead of once per
// applied op.
type ShardState struct {
	// Ver counts applied mutations: it increments by exactly one per
	// Step that applies, in linearization order. The server's WAL
	// sequencer appends records in Ver order, so Ver is also the
	// record's position in the shard's durable history.
	Ver uint64
	// Val is the shard's visible value.
	Val int64
	// Dedup maps a client session identity to its most recent op. One
	// entry per session: the wire protocol serializes each session's
	// ops, so a lower sequence number can only be a stale duplicate.
	Dedup map[uint64]DedupEntry
}

// DedupEntry records the last op a session applied to this shard.
type DedupEntry struct {
	// Seq is the op's client-assigned sequence number.
	Seq uint64
	// Val is the result that was (or will be) acknowledged; a retry of
	// the same op is answered with it.
	Val int64
	// Ver is the shard version the op produced — the eviction key (the
	// window drops the longest-idle session first) and the WAL position
	// a duplicate must wait on before it can be re-acknowledged.
	Ver uint64
}

// Outcome reports what Step did with an op.
type Outcome struct {
	// Val is the value to acknowledge: the new shard value when
	// Applied, the originally recorded value when Duplicate.
	Val int64
	// Applied: the op executed and moved the state (Ver is its new
	// shard version, to be logged).
	Applied bool
	// Duplicate: the op ID matched the session's recorded entry; the
	// state did not move and Ver is the *original* application's
	// version.
	Duplicate bool
	// Stale: the op's sequence number is below the session's recorded
	// entry — a protocol error (the client already moved past it).
	Stale bool
	// Ver: shard version of the (original) application. Zero when
	// Stale.
	Ver uint64
}

// Clone deep-copies the state. resilient.Shared calls it before every
// speculative op execution, so Step may mutate its receiver freely.
func (s ShardState) Clone() ShardState {
	c := s
	if s.Dedup != nil {
		c.Dedup = make(map[uint64]DedupEntry, len(s.Dedup))
		for k, v := range s.Dedup {
			c.Dedup[k] = v
		}
	}
	return c
}

// Step executes one mutation against s with dedup: the single source
// of truth for both live ops (inside the universal construction's op
// closure) and WAL replay, so a recovered table is bit-identical to
// the pre-crash one — same values, same dedup entries, same evictions.
//
// session==0 or seq==0 disables dedup for the op (anonymous clients,
// idempotent kinds). window bounds the dedup map; <=0 means unbounded.
func Step(s *ShardState, window int, session, seq uint64, kind OpKind, arg int64) Outcome {
	if session != 0 && seq != 0 {
		if e, ok := s.Dedup[session]; ok {
			if seq == e.Seq {
				return Outcome{Val: e.Val, Duplicate: true, Ver: e.Ver}
			}
			if seq < e.Seq {
				return Outcome{Stale: true}
			}
		}
	}
	switch kind {
	case OpAdd:
		s.Val += arg
	case OpSet:
		s.Val = arg
	}
	s.Ver++
	if session != 0 && seq != 0 {
		if s.Dedup == nil {
			s.Dedup = make(map[uint64]DedupEntry)
		}
		s.Dedup[session] = DedupEntry{Seq: seq, Val: s.Val, Ver: s.Ver}
		if window > 0 && len(s.Dedup) > window {
			evictOldest(s.Dedup)
		}
	}
	return Outcome{Val: s.Val, Applied: true, Ver: s.Ver}
}

// evictOldest drops the entry with the smallest shard version — the
// session that has gone longest without touching this shard. Ties are
// impossible: versions are unique per shard.
func evictOldest(m map[uint64]DedupEntry) {
	var victim uint64
	first := true
	var minVer uint64
	for sess, e := range m {
		if first || e.Ver < minVer {
			victim, minVer, first = sess, e.Ver, false
		}
	}
	delete(m, victim)
}
