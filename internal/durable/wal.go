package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy selects the durability point an acknowledgement waits for.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every acknowledgement: an acked op
	// survives both process and host crashes. The fsync happens at the
	// durability wait, not the append, so concurrent appenders — and a
	// pipelined batch waiting once for its last record — group-commit
	// under a single disk write.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: a background ticker fsyncs the log
	// and acknowledgements wait for the covering sync. An acked op
	// survives a process crash immediately (the write has left the
	// process) and a host crash after at most one interval.
	SyncInterval
	// SyncNever writes without fsync and acknowledges immediately: the
	// OS page cache is the only durability. A process crash typically
	// loses nothing; a host crash may lose the tail.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval or never)", s)
}

// String names the policy for logs and flags.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Policy is the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// Interval is the group-commit period for SyncInterval (default
	// 50ms).
	Interval time.Duration
	// SegmentBytes rotates the log once a segment reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// DedupWindow bounds each shard's dedup map during replay; the
	// same value the server passes to Step for live ops (default 1024,
	// <=0 means unbounded).
	DedupWindow int
	// Logf, when set, receives recovery notices (torn-tail drops,
	// snapshot fallbacks).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Recovery is what Open reconstructed from the data directory.
type Recovery struct {
	// Shards maps shard index to its recovered state. Empty on a
	// fresh directory.
	Shards map[uint32]ShardState
	// RestartCount is how many times a previous process instance had
	// already opened this directory: 0 on first boot, 1 after one
	// restart. Survives segment pruning (snapshots carry the tally).
	RestartCount uint64
	// RecoveredOps is the total number of mutations reconstructed
	// (snapshot plus replay) — the sum of recovered shard versions.
	RecoveredOps uint64
	// DroppedBytes counts torn-tail bytes truncated from the final
	// segment. Nonzero means the last (unacknowledged) write was cut
	// short by the crash.
	DroppedBytes int64
}

type segment struct {
	start uint64 // LSN of the segment's first record
	path  string
}

// Log is an open write-ahead log. Appends are assigned consecutive
// LSNs starting at 1; WaitDurable blocks until the configured sync
// policy has covered a given LSN.
type Log struct {
	opts Options
	dirF *os.File

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when durable advances or the log closes
	endCond  *sync.Cond // broadcast when end advances (WaitEnd long-polls)
	f        *os.File   // active segment
	segs     []segment  // all live segments, ascending; last is active
	segBytes int64      // bytes written to the active segment
	end      uint64     // last assigned LSN
	durable  uint64     // last LSN covered by an fsync
	markers  uint64     // restart markers ever appended (incl. pruned)
	syncs    uint64     // fsyncs issued (observability for group commit)
	closed   bool
	fail     error // sticky: set by the first failed append/fsync, fatal

	// pins maps a pin handle to the LSN its holder has consumed up to:
	// segments holding records above any pin survive pruning, so a
	// lagging log reader (a replication follower mid-catch-up) cannot
	// have its tail pruned out from under it.
	pins    map[int]uint64
	nextPin int

	snapMu sync.Mutex // serializes WriteSnapshot

	tickerStop chan struct{}
	tickerDone chan struct{}
}

// Open recovers the directory's state and returns a log ready for
// appends. A restart marker is appended (and synced) immediately so
// the next recovery can count this incarnation.
func Open(opts Options) (*Log, Recovery, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, Recovery{}, fmt.Errorf("durable: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	dirF, err := os.Open(opts.Dir)
	if err != nil {
		return nil, Recovery{}, err
	}

	l := &Log{opts: opts, dirF: dirF, pins: make(map[int]uint64)}
	l.cond = sync.NewCond(&l.mu)
	l.endCond = sync.NewCond(&l.mu)

	rec, err := l.recover()
	if err != nil {
		dirF.Close()
		return nil, Recovery{}, err
	}

	// This incarnation's restart marker: force-synced regardless of
	// policy, so the count survives even under SyncNever.
	l.mu.Lock()
	if err := l.appendLocked(encodeRestart()); err != nil {
		l.mu.Unlock()
		l.closeFiles()
		return nil, Recovery{}, err
	}
	l.markers++
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		l.closeFiles()
		return nil, Recovery{}, err
	}
	l.mu.Unlock()

	if opts.Policy == SyncInterval {
		l.tickerStop = make(chan struct{})
		l.tickerDone = make(chan struct{})
		go l.syncer()
	}
	return l, rec, nil
}

// recover loads the newest readable snapshot and replays the log tail.
// Called before any appends; the lock is not needed yet.
func (l *Log) recover() (Recovery, error) {
	rec := Recovery{Shards: make(map[uint32]ShardState)}
	snapCover, err := l.loadNewestSnapshot(&rec)
	if err != nil {
		return Recovery{}, err
	}

	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.seg"))
	if err != nil {
		return Recovery{}, err
	}
	sort.Strings(names)
	segs := make([]segment, 0, len(names))
	for _, p := range names {
		var start uint64
		base := filepath.Base(p)
		if _, err := fmt.Sscanf(base, "wal-%016d.seg", &start); err != nil || start == 0 {
			return Recovery{}, fmt.Errorf("durable: bad segment name %q", base)
		}
		segs = append(segs, segment{start: start, path: p})
	}

	next := uint64(1)
	if len(segs) > 0 {
		next = segs[0].start
	}
	for i, sg := range segs {
		if sg.start != next {
			return Recovery{}, fmt.Errorf("durable: segment %s: want first LSN %d, got %d (gap in log)",
				filepath.Base(sg.path), next, sg.start)
		}
		n, err := l.replaySegment(sg, i == len(segs)-1, snapCover, &rec)
		if err != nil {
			return Recovery{}, err
		}
		next = sg.start + n
	}
	l.end = next - 1
	l.durable = l.end // everything on disk at open time counts as durable
	l.markers = rec.RestartCount

	// Resume appending into the last segment, or start segment 1.
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return Recovery{}, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return Recovery{}, err
		}
		l.f, l.segs, l.segBytes = f, segs, st.Size()
	} else {
		if err := l.openSegmentLocked(1); err != nil {
			return Recovery{}, err
		}
	}

	for _, s := range rec.Shards {
		rec.RecoveredOps += s.Ver
	}
	return rec, nil
}

// replaySegment applies one segment's records to rec, returning how
// many records it held. Torn or corrupt data in the final segment is
// truncated away (a crash mid-write); the same damage in an earlier
// segment is a hard error, because records after it were acknowledged.
func (l *Log) replaySegment(sg segment, last bool, snapCover uint64, rec *Recovery) (uint64, error) {
	data, err := os.ReadFile(sg.path)
	if err != nil {
		return 0, err
	}
	var n uint64
	off := 0
	for off < len(data) {
		body, sz, err := decodeFrame(data[off:], maxBody)
		if err != nil {
			if !last {
				return 0, fmt.Errorf("durable: %s at offset %d: %w (not the final segment)",
					filepath.Base(sg.path), off, err)
			}
			return n, l.truncateTail(sg, data, off, err, rec)
		}
		r, isRestart, err := parseBody(body)
		if err != nil {
			if !last {
				return 0, fmt.Errorf("durable: %s at offset %d: %w (not the final segment)",
					filepath.Base(sg.path), off, err)
			}
			return n, l.truncateTail(sg, data, off, err, rec)
		}
		lsn := sg.start + n
		if isRestart {
			if lsn > snapCover {
				rec.RestartCount++
			}
		} else {
			if err := replayOp(r, lsn, l.opts.DedupWindow, rec); err != nil {
				return 0, err
			}
		}
		off += sz
		n++
	}
	return n, nil
}

// replayOp folds one op record into the recovering table. The snapshot
// image may already include records appended after the snapshot's
// cover LSN (the image is read after the cover is captured), so
// coverage is judged per shard by (epoch, version), not by LSN.
//
// Epoch ordering: a record from a lower epoch than the recovering
// state is the tail of a fork a replicated state install already
// superseded — the install's snapshot fenced it, so the record is
// skipped, never replayed over the acknowledged history. A record
// from a HIGHER epoch that continues the version line is adopted,
// epoch included: a follower that pulls a promoted primary's first
// post-bump record appends it before any local snapshot at the new
// epoch exists, so replay must cross epoch boundaries exactly the way
// the live apply path does (contiguous version, higher epoch). A
// higher-epoch record at or below the state's version would rewrite
// history without the install snapshot that is required to fence it,
// and is reported as corruption.
func replayOp(r Record, lsn uint64, window int, rec *Recovery) error {
	if len(r.Atomic) > 0 {
		// An atomic group replays sub by sub: each sub carries its own
		// shard's (epoch, version) coordinates, so the per-shard skip/
		// gap/fork logic below applies unchanged — a snapshot that
		// already covers some subs skips exactly those.
		for _, sub := range r.Atomic {
			if err := replayOp(sub, lsn, window, rec); err != nil {
				return err
			}
		}
		return nil
	}
	s := rec.Shards[r.Shard]
	if r.Epoch < s.Epoch {
		return nil // tail of a fork superseded by a state install
	}
	if r.Epoch > s.Epoch && r.Ver <= s.Ver {
		return fmt.Errorf("durable: shard %d: record LSN %d at epoch %d rewrites version %d inside epoch-%d state (missing epoch-fencing snapshot)",
			r.Shard, lsn, r.Epoch, r.Ver, s.Epoch)
	}
	if r.Ver <= s.Ver {
		return nil // already inside the snapshot image
	}
	if r.Ver != s.Ver+1 {
		return fmt.Errorf("durable: shard %d: record LSN %d has version %d, want %d (gap in shard history)",
			r.Shard, lsn, r.Ver, s.Ver+1)
	}
	s.Epoch = r.Epoch // adopt an epoch bump that continues the line
	out := StepOp(&s, window, r.Session, r.Seq, Op{Kind: r.Kind, Obj: r.Obj, Key: r.Key, Arg: r.Arg, Arg2: r.Arg2})
	if !out.Applied || out.Val != r.Val || out.Ver != r.Ver || out.OK != r.OK {
		return fmt.Errorf("durable: shard %d: replay of LSN %d diverged (applied=%v val=%d ok=%v ver=%d, recorded val=%d ok=%v ver=%d)",
			r.Shard, lsn, out.Applied, out.Val, out.OK, out.Ver, r.Val, r.OK, r.Ver)
	}
	rec.Shards[r.Shard] = s
	return nil
}

// truncateTail cuts a torn or corrupt tail off the final segment,
// keeping every record before it.
func (l *Log) truncateTail(sg segment, data []byte, off int, cause error, rec *Recovery) error {
	dropped := int64(len(data) - off)
	l.opts.Logf("durable: dropping %d torn byte(s) at end of %s: %v", dropped, filepath.Base(sg.path), cause)
	if err := os.Truncate(sg.path, int64(off)); err != nil {
		return fmt.Errorf("durable: truncating torn tail of %s: %w", filepath.Base(sg.path), err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	rec.DroppedBytes += dropped
	return nil
}

// Append writes one op record and returns its LSN. Pair with
// WaitDurable before acknowledging: that is where every policy's
// durability point lives (SyncAlways fsyncs there, group-committing
// whatever has been appended; SyncInterval waits for the ticker's
// covering sync; SyncNever returns immediately).
//
// A failed append or fsync poisons the log permanently: the record's
// version number is consumed by the caller's sequencer even though no
// record covers it, so letting later appends through would write a
// transcript with a hole in it — acknowledged as durable now,
// unrecoverable ("gap in shard history") at the next boot. Once
// poisoned, every Append and WaitDurable returns the original failure;
// the layer refuses to vouch for anything rather than lie.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("durable: log is closed")
	}
	if l.fail != nil {
		return 0, l.fail
	}
	if err := l.appendLocked(encodeOp(r)); err != nil {
		l.poisonLocked(err)
		return 0, l.fail
	}
	// Under SyncAlways the fsync happens in WaitDurable, not here:
	// deferring it to the acknowledgement point is what lets a pipeline
	// of appends — from one session or many — share a single group
	// commit. The contract is unchanged (an ack still implies the
	// record is on disk) because every ack waits.
	return l.end, nil
}

// poisonLocked records the first fatal durability failure and wakes
// every waiter so none blocks on a durable watermark that will never
// advance. Caller holds l.mu.
func (l *Log) poisonLocked(err error) {
	if l.fail == nil {
		l.fail = fmt.Errorf("durable: log poisoned by failed write: %w", err)
		l.opts.Logf("%v", l.fail)
		l.cond.Broadcast()
		l.endCond.Broadcast()
	}
}

// appendLocked writes one framed record, rotating first if the active
// segment is full.
func (l *Log) appendLocked(frame []byte) error {
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.segBytes += int64(len(frame))
	l.end++
	l.endCond.Broadcast()
	if l.opts.Policy == SyncNever {
		// Nothing ever waits under SyncNever; mark durable so End/
		// WaitDurable stay coherent for observers.
		l.durable = l.end
	}
	return nil
}

// rotateLocked syncs and retires the active segment, then opens the
// next one. Syncing before rotation keeps the durable watermark's
// invariant simple: only the active segment can have undurable bytes.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegmentLocked(l.end + 1)
}

// openSegmentLocked creates the segment whose first record will be
// LSN start and makes it active.
func (l *Log) openSegmentLocked(start uint64) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%016d.seg", start))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segment{start: start, path: path})
	l.segBytes = 0
	return nil
}

// syncLocked fsyncs the active segment and advances the durable
// watermark to everything appended so far.
func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	if l.durable < l.end {
		l.durable = l.end
		l.cond.Broadcast()
	}
	return nil
}

// syncer is the SyncInterval group-commit loop.
func (l *Log) syncer() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.tickerStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.closed || l.fail != nil {
				l.mu.Unlock()
				return
			}
			if l.durable < l.end {
				if err := l.syncLocked(); err != nil {
					// A failed group commit is as fatal as a failed append:
					// waiters parked on the durable watermark must get an
					// error, not an ack built on an fsync that never landed.
					l.poisonLocked(err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// WaitDurable blocks until lsn is covered by the sync policy. Under
// SyncAlways the first waiter fsyncs on the spot (group commit — see
// below); under SyncNever it returns immediately.
//
// A poisoned log fails every wait, even for an LSN that reached disk
// before the failure: after a poison, a caller may be asking about the
// wrong record entirely (the one whose append failed never got an LSN
// at all), so the only honest answer is the failure.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.fail != nil {
			return l.fail
		}
		if l.durable >= lsn {
			return nil
		}
		if l.closed {
			return fmt.Errorf("durable: log closed before LSN %d became durable", lsn)
		}
		if l.opts.Policy == SyncAlways {
			// Group commit at the wait point: the first waiter in
			// becomes the leader and fsyncs everything appended so far,
			// covering its own LSN and every concurrent appender's in
			// one disk write; followers arriving under the same lock
			// find the watermark already past them. This is what turns
			// a pipelined batch into one fsync per flush instead of one
			// per op.
			if err := l.syncLocked(); err != nil {
				l.poisonLocked(err)
				return l.fail
			}
			continue
		}
		l.cond.Wait()
	}
}

// End returns the last assigned LSN.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Syncs reports how many fsyncs the log has issued — under
// SyncInterval, far fewer than appends (group commit).
func (l *Log) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Close flushes, wakes all waiters, and closes the files. Appends and
// waits after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.opts.Policy != SyncNever && l.fail == nil && l.durable < l.end {
		err = l.syncLocked()
	}
	l.closed = true
	l.cond.Broadcast()
	l.endCond.Broadcast()
	l.mu.Unlock()

	if l.tickerStop != nil {
		close(l.tickerStop)
		<-l.tickerDone
	}
	if cerr := l.closeFiles(); err == nil {
		err = cerr
	}
	return err
}

func (l *Log) closeFiles() error {
	var err error
	if l.f != nil {
		err = l.f.Close()
	}
	if cerr := l.dirF.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs the data directory so created/renamed/removed file
// entries are durable.
func (l *Log) syncDir() error {
	return l.dirF.Sync()
}

// ErrPruned reports a ReadRecords position that predates the oldest
// live segment: the records there were pruned behind a snapshot, so a
// reader wanting them must take a state image instead of a log tail.
var ErrPruned = errors.New("durable: requested records have been pruned")

// Pin registers a retention pin at lsn and returns its handle: no
// segment holding records above lsn is pruned while the pin lives, so a
// reader consuming the log incrementally (a replication follower) can
// always continue from where it stopped. Advance it with UpdatePin as
// the reader progresses; Unpin releases the retention.
func (l *Log) Pin(lsn uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextPin++
	l.pins[l.nextPin] = lsn
	return l.nextPin
}

// UpdatePin moves pin id forward to lsn (a pin never retreats: moving
// it backward is a no-op, so a reordered ack cannot resurrect released
// retention).
func (l *Log) UpdatePin(id int, lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur, ok := l.pins[id]; ok && lsn > cur {
		l.pins[id] = lsn
	}
}

// Unpin releases pin id. Unknown handles are no-ops (Unpin is a
// teardown path; it must be safe to call twice).
func (l *Log) Unpin(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pins, id)
}

// minPinLocked returns the lowest live pin and whether any pin exists.
// Caller holds l.mu.
func (l *Log) minPinLocked() (uint64, bool) {
	var min uint64
	found := false
	for _, lsn := range l.pins {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// WaitEnd blocks until the log end reaches at least min, the timeout
// lapses, or the log closes/poisons, returning the current end. It is
// the long-poll primitive replication pulls park on: a caught-up
// follower's pull waits here instead of spinning.
func (l *Log) WaitEnd(min uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		l.mu.Lock()
		l.endCond.Broadcast()
		l.mu.Unlock()
	})
	defer timer.Stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.end < min && !l.closed && l.fail == nil && time.Now().Before(deadline) {
		l.endCond.Wait()
	}
	return l.end
}

// ReadRecords reads up to maxRecords op records with LSNs strictly
// above from, returning them in LSN order together with the last LSN
// consumed (restart markers are skipped but counted into end, so a
// caller resuming at end never re-reads them). A from below the oldest
// live segment returns ErrPruned — the tail was pruned behind a
// snapshot and the reader needs a state image instead. Safe against
// concurrent appends: only frames at or below the end captured at entry
// are decoded, and appends never mutate written bytes.
func (l *Log) ReadRecords(from uint64, maxRecords int) ([]Record, uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, from, fmt.Errorf("durable: log is closed")
	}
	end := l.end
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	if from >= end {
		return nil, from, nil
	}
	if len(segs) == 0 || segs[0].start > from+1 {
		return nil, from, fmt.Errorf("%w: want LSN %d, oldest live segment starts at %d", ErrPruned, from+1, oldestStart(segs))
	}

	var out []Record
	pos := from
	for _, sg := range segs {
		last := sg.start - 1 // LSN of the last record decoded so far in this segment
		if nextSegStart(segs, sg) <= from+1 {
			continue // segment entirely at or below from
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			if os.IsNotExist(err) {
				// The segment list was snapshotted under the mutex, but a
				// concurrent snapshot prune unlinked the file before the
				// read: same answer as arriving after the prune — the
				// reader needs a state image, not a broken stream.
				return nil, from, fmt.Errorf("%w: segment %s pruned mid-read", ErrPruned, filepath.Base(sg.path))
			}
			return nil, from, err
		}
		off := 0
		for off < len(data) && last < end {
			body, sz, err := decodeFrame(data[off:], maxBody)
			if err != nil {
				return nil, from, fmt.Errorf("durable: reading %s at offset %d: %w", filepath.Base(sg.path), off, err)
			}
			last++
			off += sz
			if last <= from {
				continue
			}
			rec, isRestart, err := parseBody(body)
			if err != nil {
				return nil, from, fmt.Errorf("durable: reading %s at offset %d: %w", filepath.Base(sg.path), off-sz, err)
			}
			pos = last
			if !isRestart {
				out = append(out, rec)
				if len(out) >= maxRecords {
					return out, pos, nil
				}
			}
		}
		if last >= end {
			break
		}
	}
	return out, pos, nil
}

// oldestStart names the first live LSN for the ErrPruned diagnostic.
func oldestStart(segs []segment) uint64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[0].start
}

// nextSegStart returns the first LSN after sg: the next segment's
// start, or infinity for the active (last) segment.
func nextSegStart(segs []segment, sg segment) uint64 {
	for i := range segs {
		if segs[i].start == sg.start {
			if i+1 < len(segs) {
				return segs[i+1].start
			}
			return ^uint64(0)
		}
	}
	return ^uint64(0)
}
