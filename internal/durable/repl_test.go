package durable

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// countSegments returns how many live WAL segment files dir holds.
func countSegments(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return len(segs)
}

func TestPinBlocksPruningAroundLSN(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	var s ShardState
	appendOps(t, l, &s, 0, 5, 1, 40)
	if countSegments(t, dir) < 3 {
		t.Fatalf("want >=3 segments before pruning, got %d", countSegments(t, dir))
	}

	// Pin early in the log: a full-cover snapshot must keep every
	// segment holding records above the pin.
	pin := l.Pin(5)
	peek := func() map[uint32]ShardState { return map[uint32]ShardState{0: s.Clone()} }
	if err := l.WriteSnapshot(peek); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	afterPinned := countSegments(t, dir)
	if afterPinned < 3 {
		t.Fatalf("pin at 5 did not hold segments: %d left", afterPinned)
	}
	if _, _, err := l.ReadRecords(5, 1); err != nil {
		t.Fatalf("pinned tail unreadable: %v", err)
	}

	// Moving the pin backward must be a no-op.
	l.UpdatePin(pin, 1)
	if err := l.WriteSnapshot(peek); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if got := countSegments(t, dir); got != afterPinned {
		t.Fatalf("backward pin update changed retention: %d -> %d", afterPinned, got)
	}

	// Advancing the pin releases the consumed prefix.
	l.UpdatePin(pin, l.End())
	if err := l.WriteSnapshot(peek); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	midCount := countSegments(t, dir)
	if midCount >= afterPinned {
		t.Fatalf("advanced pin released nothing: %d -> %d segments", afterPinned, midCount)
	}

	// Unpinning restores snapshot-only retention: everything covered
	// goes, leaving just the active segment.
	l.Unpin(pin)
	l.Unpin(pin) // double-release must be safe
	if err := l.WriteSnapshot(peek); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if got := countSegments(t, dir); got != 1 {
		t.Fatalf("want 1 segment after unpin+snapshot, got %d", got)
	}
	if _, _, err := l.ReadRecords(0, 1); !errors.Is(err, ErrPruned) {
		t.Fatalf("read of pruned prefix: err %v, want ErrPruned", err)
	}
}

func TestReadRecordsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	var s ShardState
	appendOps(t, l, &s, 0, 9, 1, 25)

	// From the origin: every op record, in order, across rotations.
	// LSN 1 is the boot restart marker — skipped but counted into pos.
	recs, pos, err := l.ReadRecords(0, 1000)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 25 || pos != l.End() {
		t.Fatalf("got %d records to pos %d, want 25 to %d", len(recs), pos, l.End())
	}
	for i, r := range recs {
		if r.Ver != uint64(i+1) || r.Val != int64(i+1) || r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}

	// Bounded read, then resume from the returned position: the two
	// halves splice into the same sequence.
	first, mid, err := l.ReadRecords(0, 10)
	if err != nil || len(first) != 10 {
		t.Fatalf("bounded read: %d records, err %v", len(first), err)
	}
	rest, end, err := l.ReadRecords(mid, 1000)
	if err != nil {
		t.Fatalf("resumed read: %v", err)
	}
	if end != l.End() || !reflect.DeepEqual(append(first, rest...), recs) {
		t.Fatalf("resume at %d did not splice: %d+%d records", mid, len(first), len(rest))
	}

	// Caught up: nothing to read, position unchanged.
	if recs, pos, err := l.ReadRecords(l.End(), 10); err != nil || len(recs) != 0 || pos != l.End() {
		t.Fatalf("read at end: %d records, pos %d, err %v", len(recs), pos, err)
	}
}

func TestWaitEndLongPoll(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	var s ShardState
	appendOps(t, l, &s, 0, 3, 1, 2)
	base := l.End()

	// Already satisfied: returns without waiting.
	if got := l.WaitEnd(base, 10*time.Second); got != base {
		t.Fatalf("satisfied wait returned %d, want %d", got, base)
	}

	// Timeout: no new appends, returns the unchanged end promptly.
	start := time.Now()
	if got := l.WaitEnd(base+1, 50*time.Millisecond); got != base {
		t.Fatalf("timed-out wait returned %d, want %d", got, base)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timed-out wait blocked %v", time.Since(start))
	}

	// Woken by a concurrent append.
	done := make(chan uint64, 1)
	go func() { done <- l.WaitEnd(base+1, 10*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	appendOps(t, l, &s, 0, 3, 3, 1)
	select {
	case got := <-done:
		if got < base+1 {
			t.Fatalf("woken wait returned %d, want >= %d", got, base+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitEnd did not wake on append")
	}
}

func TestEncodeStateRoundTrip(t *testing.T) {
	in := map[uint32]ShardState{
		0: {Ver: 7, Val: 42, Dedup: map[uint64]DedupEntry{
			11: {Seq: 3, Val: 40, Ver: 6, Recent: []DedupOp{{Seq: 2, Val: 39, Ver: 5}}},
		}},
		3: {Ver: 1, Val: -9},
	}
	out, err := DecodeState(EncodeState(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", in, out)
	}
	if _, err := DecodeState([]byte("not a state image")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
