package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"kexclusion/internal/object"
)

// Snapshot body layout (one CRC frame, like a WAL record):
//
//	[1 type=7][8 coverLSN][8 markers][4 shardCount]
//	  per shard, ascending id:
//	    [4 id][8 epoch][8 ver][8 val][4 dedupCount]
//	      per dedup entry, ascending session:
//	        [8 session][4 opCount][opCount × [8 seq][8 val][8 ver][1 ok]]
//	    [named-object table — object.AppendTable bytes]
//
// Each dedup entry carries the session's recent-op history, newest
// first (opCount ≥ 1; op 0 is the entry's inline newest). Three legacy
// layouts still decode so a server upgraded in place recovers its old
// snapshot: type 6 is the pre-kx05 layout (24-byte dedup ops with no
// verdict byte — every recorded op decodes as OK — and no object
// table), type 4 the pre-epoch layout (additionally no [8 epoch]
// field — epochs start at 0) and type 3 the pre-pipelining one
// (additionally one fixed 32-byte op per session; histories refill as
// sessions mutate).
//
// coverLSN is the log end captured BEFORE the shard images are read:
// every record at or below it is reflected in the images; records
// above it may or may not be, which replay resolves per shard by
// version. markers is the cumulative restart-marker tally, which must
// live here because the markers themselves get pruned with their
// segments.
const (
	recTypeSnapshotV1 = 3
	recTypeSnapshotV2 = 4
	recTypeSnapshot   = 6 // 5 is recTypeOp (WAL); one type-byte space
	// recTypeSnapObj extends the type-6 layout for kx05: every dedup op
	// gains a trailing [1 ok] verdict byte (25-byte ops) and every shard
	// is followed by its named-object table (object.AppendTable bytes).
	// 8 and 9 are WAL record types (record.go).
	recTypeSnapObj = 7
)

func encodeSnapshot(cover, markers uint64, shards map[uint32]ShardState) []byte {
	ids := make([]uint32, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	b01 := func(v bool) byte {
		if v {
			return 1
		}
		return 0
	}
	body := make([]byte, 0, 21+len(shards)*28)
	body = append(body, recTypeSnapObj)
	body = binary.BigEndian.AppendUint64(body, cover)
	body = binary.BigEndian.AppendUint64(body, markers)
	body = binary.BigEndian.AppendUint32(body, uint32(len(ids)))
	for _, id := range ids {
		s := shards[id]
		body = binary.BigEndian.AppendUint32(body, id)
		body = binary.BigEndian.AppendUint64(body, s.Epoch)
		body = binary.BigEndian.AppendUint64(body, s.Ver)
		body = binary.BigEndian.AppendUint64(body, uint64(s.Val))
		sessions := make([]uint64, 0, len(s.Dedup))
		for sess := range s.Dedup {
			sessions = append(sessions, sess)
		}
		sort.Slice(sessions, func(i, j int) bool { return sessions[i] < sessions[j] })
		body = binary.BigEndian.AppendUint32(body, uint32(len(sessions)))
		for _, sess := range sessions {
			e := s.Dedup[sess]
			body = binary.BigEndian.AppendUint64(body, sess)
			body = binary.BigEndian.AppendUint32(body, uint32(1+len(e.Recent)))
			body = binary.BigEndian.AppendUint64(body, e.Seq)
			body = binary.BigEndian.AppendUint64(body, uint64(e.Val))
			body = binary.BigEndian.AppendUint64(body, e.Ver)
			body = append(body, b01(e.OK))
			for _, op := range e.Recent {
				body = binary.BigEndian.AppendUint64(body, op.Seq)
				body = binary.BigEndian.AppendUint64(body, uint64(op.Val))
				body = binary.BigEndian.AppendUint64(body, op.Ver)
				body = append(body, b01(op.OK))
			}
		}
		body = object.AppendTable(body, s.Objs)
	}
	return body
}

func decodeSnapshot(body []byte) (cover, markers uint64, shards map[uint32]ShardState, err error) {
	fail := func(what string) (uint64, uint64, map[uint32]ShardState, error) {
		return 0, 0, nil, fmt.Errorf("%w: snapshot %s", errCorrupt, what)
	}
	if len(body) < 21 ||
		(body[0] != recTypeSnapObj && body[0] != recTypeSnapshot &&
			body[0] != recTypeSnapshotV2 && body[0] != recTypeSnapshotV1) {
		return fail("header malformed")
	}
	legacy := body[0] == recTypeSnapshotV1
	hasEpoch := body[0] == recTypeSnapshot || body[0] == recTypeSnapObj
	hasObjs := body[0] == recTypeSnapObj
	opSize := 24 // [8 seq][8 val][8 ver]
	if hasObjs {
		opSize = 25 // + [1 ok]
	}
	shardHdr := 24 // [4 id][8 ver][8 val][4 dedupCount]
	if hasEpoch {
		shardHdr = 32 // + [8 epoch] after the id
	}
	cover = binary.BigEndian.Uint64(body[1:])
	markers = binary.BigEndian.Uint64(body[9:])
	nShards := int(binary.BigEndian.Uint32(body[17:]))
	off := 21
	// Every shard needs at least a shard header, so a declared count
	// the remaining body cannot hold is corruption — checked BEFORE the
	// count becomes a map allocation hint, or a CRC-valid but crafted
	// frame could demand an allocation sized for 2^32 entries.
	if nShards > (len(body)-off)/shardHdr {
		return fail("shard count exceeds body size")
	}
	shards = make(map[uint32]ShardState, nShards)
	for i := 0; i < nShards; i++ {
		if len(body)-off < shardHdr {
			return fail("shard header truncated")
		}
		id := binary.BigEndian.Uint32(body[off:])
		off += 4
		var s ShardState
		if hasEpoch {
			s.Epoch = binary.BigEndian.Uint64(body[off:])
			off += 8
		}
		s.Ver = binary.BigEndian.Uint64(body[off:])
		s.Val = int64(binary.BigEndian.Uint64(body[off+8:]))
		nDedup := int(binary.BigEndian.Uint32(body[off+16:]))
		off += 20
		if nDedup > 0 {
			// A session entry is at least 12 bytes (v2+) / exactly 32 (v1);
			// bound the allocation hint before trusting the count.
			minEntry := 12
			if legacy {
				minEntry = 32
			}
			if nDedup > (len(body)-off)/minEntry {
				return fail("dedup entries truncated")
			}
			s.Dedup = make(map[uint64]DedupEntry, nDedup)
			for j := 0; j < nDedup; j++ {
				var e DedupEntry
				var sess uint64
				if legacy {
					if len(body)-off < 32 {
						return fail("dedup entries truncated")
					}
					sess = binary.BigEndian.Uint64(body[off:])
					e = DedupEntry{
						Seq: binary.BigEndian.Uint64(body[off+8:]),
						Val: int64(binary.BigEndian.Uint64(body[off+16:])),
						Ver: binary.BigEndian.Uint64(body[off+24:]),
						OK:  true,
					}
					off += 32
				} else {
					if len(body)-off < 12 {
						return fail("dedup entries truncated")
					}
					sess = binary.BigEndian.Uint64(body[off:])
					nOps := int(binary.BigEndian.Uint32(body[off+8:]))
					off += 12
					if nOps < 1 || nOps > (len(body)-off)/opSize {
						return fail("dedup history truncated")
					}
					e = DedupEntry{
						Seq: binary.BigEndian.Uint64(body[off:]),
						Val: int64(binary.BigEndian.Uint64(body[off+8:])),
						Ver: binary.BigEndian.Uint64(body[off+16:]),
						OK:  true, // pre-kx05 entries all carried OK verdicts
					}
					if hasObjs {
						e.OK = body[off+24] == 1
					}
					off += opSize
					if nOps > 1 {
						e.Recent = make([]DedupOp, nOps-1)
						for k := range e.Recent {
							e.Recent[k] = DedupOp{
								Seq: binary.BigEndian.Uint64(body[off:]),
								Val: int64(binary.BigEndian.Uint64(body[off+8:])),
								Ver: binary.BigEndian.Uint64(body[off+16:]),
								OK:  true,
							}
							if hasObjs {
								e.Recent[k].OK = body[off+24] == 1
							}
							off += opSize
						}
					}
				}
				s.Dedup[sess] = e
			}
			if len(s.Dedup) != nDedup {
				return fail("has repeated dedup sessions")
			}
		}
		if hasObjs {
			objs, n, derr := object.DecodeTable(body[off:])
			if derr != nil {
				return 0, 0, nil, fmt.Errorf("%w: snapshot shard %d: %v", errCorrupt, id, derr)
			}
			s.Objs = objs
			off += n
		}
		if _, dup := shards[id]; dup {
			return fail("has repeated shard ids")
		}
		shards[id] = s
	}
	if off != len(body) {
		return fail("has trailing bytes")
	}
	return cover, markers, shards, nil
}

// EncodeState serializes a per-shard state map (versions, values, and
// dedup windows) in the snapshot body layout, for shipping a state
// image to a replication peer. The cover/marker header fields are
// zero — they are meaningful only for a local snapshot file, where the
// receiver owns the log the cover refers to.
func EncodeState(shards map[uint32]ShardState) []byte {
	return encodeSnapshot(0, 0, shards)
}

// DecodeState parses a state image produced by EncodeState.
func DecodeState(data []byte) (map[uint32]ShardState, error) {
	_, _, shards, err := decodeSnapshot(data)
	return shards, err
}

// WriteSnapshot captures a point-in-time image of the table and writes
// it atomically (temp file, fsync, rename, directory fsync), then
// prunes segments and snapshots the new image makes redundant. peek is
// called once, after the cover LSN is captured, and must return a
// consistent per-shard image (resilient.Shared's Peek qualifies: each
// shard image is some linearized state at least as new as the capture
// point).
func (l *Log) WriteSnapshot(peek func() map[uint32]ShardState) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("durable: log is closed")
	}
	cover := l.end
	markers := l.markers
	l.mu.Unlock()

	shards := peek()
	frame := appendFrame(nil, encodeSnapshot(cover, markers, shards))

	final := filepath.Join(l.opts.Dir, fmt.Sprintf("snap-%016d.snap", cover))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	return l.prune(cover, final)
}

// prune removes snapshots older than the one just written and every
// segment whose records all sit at or below the cover. The active
// segment is never removed. A crash mid-prune is safe: recovery
// ignores older snapshots and version-skips already-covered records.
func (l *Log) prune(cover uint64, keepSnap string) error {
	snaps, err := filepath.Glob(filepath.Join(l.opts.Dir, "snap-*.snap"))
	if err != nil {
		return err
	}
	for _, p := range snaps {
		if p != keepSnap {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}

	l.mu.Lock()
	var drop []segment
	// Segment i's records span [segs[i].start, segs[i+1].start-1]; it
	// is redundant when that whole range is covered AND fully consumed
	// by every retention pin (a lagging log reader keeps its tail
	// alive). len(l.segs)-1 is the active segment and always stays.
	minPin, pinned := l.minPinLocked()
	for len(l.segs) > 1 && l.segs[1].start-1 <= cover &&
		(!pinned || l.segs[1].start-1 <= minPin) {
		drop = append(drop, l.segs[0])
		l.segs = l.segs[1:]
	}
	l.mu.Unlock()

	for _, sg := range drop {
		if err := os.Remove(sg.path); err != nil {
			return err
		}
	}
	if len(drop) > 0 || len(snaps) > 1 {
		return l.syncDir()
	}
	return nil
}

// loadNewestSnapshot restores the most recent readable snapshot into
// rec, returning its cover LSN. Newer-but-unreadable snapshots are
// skipped with a notice (a torn snapshot write); if snapshots exist
// but none is readable, recovery fails rather than silently serving
// partial state from a possibly-pruned log.
func (l *Log) loadNewestSnapshot(rec *Recovery) (uint64, error) {
	paths, err := filepath.Glob(filepath.Join(l.opts.Dir, "snap-*.snap"))
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	var lastErr error
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return 0, err
		}
		body, n, err := decodeFrame(data, maxSnapshotBody)
		if err == nil && n != len(data) {
			err = fmt.Errorf("%w: snapshot has trailing bytes", errCorrupt)
		}
		if err == nil {
			var cover, markers uint64
			var shards map[uint32]ShardState
			cover, markers, shards, err = decodeSnapshot(body)
			if err == nil {
				rec.Shards = shards
				rec.RestartCount = markers
				return cover, nil
			}
		}
		l.opts.Logf("durable: skipping unreadable snapshot %s: %v", filepath.Base(p), err)
		lastErr = err
	}
	return 0, fmt.Errorf("durable: no readable snapshot among %d candidate(s): %w", len(paths), lastErr)
}
