package durable

import (
	"reflect"
	"testing"

	"kexclusion/internal/object"
)

func TestStepOpObjectLifecycle(t *testing.T) {
	var s ShardState
	step := func(seq uint64, op Op) Outcome {
		return StepOp(&s, 0, 1, seq, op)
	}
	out := step(1, Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap)})
	if !out.Applied || !out.OK {
		t.Fatalf("create: %+v", out)
	}
	// Idempotent re-create with the same type (fresh seq, same verdict).
	if out = step(2, Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap)}); !out.OK {
		t.Fatalf("re-create same type: %+v", out)
	}
	// Type conflict: applied (Ver advances) but rejected.
	out = step(3, Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeQueue)})
	if !out.Applied || out.OK || out.Val != int64(object.TypeMap) {
		t.Fatalf("conflicting create: %+v", out)
	}

	if out = step(4, Op{Kind: OpMapPut, Obj: "kv", Key: "a", Arg: 10}); !out.OK || out.Val != 10 {
		t.Fatalf("put: %+v", out)
	}
	// CAS success, then CAS mismatch reporting the observed value.
	if out = step(5, Op{Kind: OpMapCAS, Obj: "kv", Key: "a", Arg: 20, Arg2: 10}); !out.OK || out.Val != 20 {
		t.Fatalf("cas hit: %+v", out)
	}
	out = step(6, Op{Kind: OpMapCAS, Obj: "kv", Key: "a", Arg: 99, Arg2: 10})
	if out.OK || out.Val != 20 || !out.Applied {
		t.Fatalf("cas miss: %+v", out)
	}
	// Missing key compares as 0: cas(0→v) initializes.
	if out = step(7, Op{Kind: OpMapCAS, Obj: "kv", Key: "fresh", Arg: 5, Arg2: 0}); !out.OK {
		t.Fatalf("cas init: %+v", out)
	}
	if out = step(8, Op{Kind: OpMapDel, Obj: "kv", Key: "a"}); !out.OK || out.Val != 20 {
		t.Fatalf("del: %+v", out)
	}
	if out = step(9, Op{Kind: OpMapDel, Obj: "kv", Key: "a"}); out.OK {
		t.Fatalf("del absent reported OK: %+v", out)
	}

	// Queue semantics.
	step(10, Op{Kind: OpCreate, Obj: "q", Arg: int64(object.TypeQueue)})
	if out = step(11, Op{Kind: OpQDeq, Obj: "q"}); out.OK {
		t.Fatalf("deq empty reported OK: %+v", out)
	}
	step(12, Op{Kind: OpQEnq, Obj: "q", Arg: 7})
	step(13, Op{Kind: OpQEnq, Obj: "q", Arg: 8})
	if out = step(14, Op{Kind: OpQDeq, Obj: "q"}); !out.OK || out.Val != 7 {
		t.Fatalf("deq: %+v", out)
	}

	// Snapshot slots.
	step(15, Op{Kind: OpCreate, Obj: "snap", Arg: int64(object.TypeSnapshot), Arg2: 3})
	if out = step(16, Op{Kind: OpSnapUpdate, Obj: "snap", Arg: 42, Arg2: 2}); !out.OK {
		t.Fatalf("snap update: %+v", out)
	}
	if out = step(17, Op{Kind: OpSnapUpdate, Obj: "snap", Arg: 42, Arg2: 3}); out.OK {
		t.Fatalf("snap update out of range reported OK: %+v", out)
	}

	// Ops on a missing object apply-and-reject.
	out = step(18, Op{Kind: OpRegAdd, Obj: "nope", Arg: 1})
	if !out.Applied || out.OK {
		t.Fatalf("missing object: %+v", out)
	}
	if s.Ver != 18 {
		t.Fatalf("Ver = %d, want 18 (every ID'd mutation advances it)", s.Ver)
	}
}

// TestStepOpCASReissueFromWindow is the exactly-once contract for
// non-idempotent rejections: a cas whose ack was lost and is re-issued
// must be answered with the ORIGINAL verdict from the dedup window —
// not re-evaluated against state that has since moved — at every depth
// the window covers.
func TestStepOpCASReissueFromWindow(t *testing.T) {
	var s ShardState
	StepOp(&s, 0, 1, 1, Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap)})
	StepOp(&s, 0, 1, 2, Op{Kind: OpMapPut, Obj: "kv", Key: "x", Arg: 1})
	// cas(1→2) succeeds.
	hit := StepOp(&s, 0, 1, 3, Op{Kind: OpMapCAS, Obj: "kv", Key: "x", Arg: 2, Arg2: 1})
	if !hit.OK {
		t.Fatalf("cas hit: %+v", hit)
	}
	// cas(1→3) now fails (value is 2).
	miss := StepOp(&s, 0, 1, 4, Op{Kind: OpMapCAS, Obj: "kv", Key: "x", Arg: 3, Arg2: 1})
	if miss.OK || miss.Val != 2 {
		t.Fatalf("cas miss: %+v", miss)
	}
	// Interleave more ops so the re-issues come from the Recent history,
	// not the inline newest entry — but stay within DedupDepth.
	for seq := uint64(5); seq < 20; seq++ {
		StepOp(&s, 0, 1, seq, Op{Kind: OpMapPut, Obj: "kv", Key: "y", Arg: int64(seq)})
	}
	// Someone else moves x so a re-evaluation WOULD now succeed for the
	// miss and fail for the hit; the window must not re-evaluate.
	StepOp(&s, 0, 2, 1, Op{Kind: OpMapPut, Obj: "kv", Key: "x", Arg: 1})

	re := StepOp(&s, 0, 1, 3, Op{Kind: OpMapCAS, Obj: "kv", Key: "x", Arg: 2, Arg2: 1})
	if !re.Duplicate || !re.OK || re.Val != hit.Val || re.Ver != hit.Ver {
		t.Fatalf("re-issued cas hit: %+v, want duplicate of %+v", re, hit)
	}
	re = StepOp(&s, 0, 1, 4, Op{Kind: OpMapCAS, Obj: "kv", Key: "x", Arg: 3, Arg2: 1})
	if !re.Duplicate || re.OK || re.Val != 2 || re.Ver != miss.Ver {
		t.Fatalf("re-issued cas miss: %+v, want rejected duplicate val 2", re)
	}
	// And the re-issues must not have moved the state.
	if v, _ := s.Objs["kv"].M.Get("x"); v != 1 {
		t.Fatalf("x = %d after re-issues, want 1", v)
	}
}

func TestShardStateCloneObjectIsolation(t *testing.T) {
	var s ShardState
	StepOp(&s, 0, 1, 1, Op{Kind: OpCreate, Obj: "q", Arg: int64(object.TypeQueue)})
	StepOp(&s, 0, 1, 2, Op{Kind: OpQEnq, Obj: "q", Arg: 5})

	c := s.Clone()
	StepOp(&c, 0, 1, 3, Op{Kind: OpQDeq, Obj: "q"})
	StepOp(&c, 0, 1, 4, Op{Kind: OpCreate, Obj: "r", Arg: int64(object.TypeRegister)})

	if s.Objs["q"].Q.Len() != 1 {
		t.Fatal("clone's dequeue drained the original")
	}
	if _, ok := s.Objs["r"]; ok {
		t.Fatal("clone's create leaked into the original")
	}
	if c.Objs["q"].Q.Len() != 0 {
		t.Fatal("clone missing its own dequeue")
	}
}

func TestObjectRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Session: 1, Seq: 2, Shard: 3, Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap), Val: int64(object.TypeMap), OK: true, Ver: 1, Epoch: 4},
		{Session: 1, Seq: 3, Shard: 3, Kind: OpMapCAS, Obj: "kv", Key: "some-key", Arg: 9, Arg2: 7, Val: 3, OK: false, Ver: 2},
		{Session: 1, Seq: 4, Shard: 0, Kind: OpQDeq, Obj: "q", Val: -8, OK: true, Ver: 77, Epoch: 1},
	}
	for i, want := range recs {
		got, err := ParseRecordBody(EncodeRecordBody(want))
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rec %d: got %+v, want %+v", i, got, want)
		}
	}

	// Legacy kinds keep the legacy body byte-for-byte.
	leg := Record{Session: 5, Seq: 6, Shard: 1, Kind: OpAdd, Arg: 2, Val: 10, Ver: 3, Epoch: 1, OK: true}
	body := EncodeRecordBody(leg)
	if len(body) != opBodyLen || body[0] != recTypeOp {
		t.Fatalf("legacy kind encoded as type %d len %d", body[0], len(body))
	}

	// Atomic group round-trips sub records.
	atomic := Record{Atomic: []Record{recs[0], leg, recs[2]}}
	got, err := ParseRecordBody(EncodeRecordBody(atomic))
	if err != nil {
		t.Fatalf("atomic: %v", err)
	}
	if !reflect.DeepEqual(got, atomic) {
		t.Fatalf("atomic round trip:\n got %+v\nwant %+v", got, atomic)
	}

	// Restart markers are not op records.
	if _, err := ParseRecordBody([]byte{recTypeRestart}); err == nil {
		t.Fatal("restart marker parsed as op record")
	}
}

// TestRecoveryReplaysObjectOps crashes (ungracefully closes) a log full
// of typed-object mutations — including an atomic group and a rejected
// cas — and checks recovery rebuilds identical state, dedup verdicts
// included.
func TestRecoveryReplaysObjectOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})

	var s ShardState
	appendOp := func(op Op, session, seq uint64) Outcome {
		t.Helper()
		out := StepOp(&s, 0, session, seq, op)
		if !out.Applied {
			t.Fatalf("op %+v did not apply: %+v", op, out)
		}
		lsn, err := l.Append(Record{
			Session: session, Seq: seq, Shard: 0, Kind: op.Kind, Obj: op.Obj,
			Key: op.Key, Arg: op.Arg, Arg2: op.Arg2, Val: out.Val, OK: out.OK,
			Ver: out.Ver, Epoch: out.Epoch,
		})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("wait: %v", err)
		}
		return out
	}
	appendOp(Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap)}, 9, 1)
	appendOp(Op{Kind: OpMapPut, Obj: "kv", Key: "k", Arg: 4}, 9, 2)
	appendOp(Op{Kind: OpMapCAS, Obj: "kv", Key: "k", Arg: 5, Arg2: 11}, 9, 3) // rejected
	appendOp(Op{Kind: OpCreate, Obj: "q", Arg: int64(object.TypeQueue)}, 9, 4)
	appendOp(Op{Kind: OpQEnq, Obj: "q", Arg: 31}, 9, 5)
	appendOp(Op{Kind: OpQDeq, Obj: "q"}, 9, 6)

	// One atomic group spanning two fresh sub-ops on the same shard.
	subs := []Record{}
	for i, op := range []Op{
		{Kind: OpMapPut, Obj: "kv", Key: "atomic", Arg: 1},
		{Kind: OpQEnq, Obj: "q", Arg: 99},
	} {
		out := StepOp(&s, 0, 9, 7+uint64(i), op)
		subs = append(subs, Record{
			Session: 9, Seq: 7 + uint64(i), Shard: 0, Kind: op.Kind, Obj: op.Obj,
			Key: op.Key, Arg: op.Arg, Arg2: op.Arg2, Val: out.Val, OK: out.OK,
			Ver: out.Ver, Epoch: out.Epoch,
		})
	}
	lsn, err := l.Append(Record{Atomic: subs})
	if err != nil {
		t.Fatalf("append atomic: %v", err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	got := rec.Shards[0]
	if got.Ver != s.Ver {
		t.Fatalf("recovered ver %d, want %d", got.Ver, s.Ver)
	}
	if v, _ := got.Objs["kv"].M.Get("k"); v != 4 {
		t.Fatalf("kv[k] = %d, want 4", v)
	}
	if v, _ := got.Objs["kv"].M.Get("atomic"); v != 1 {
		t.Fatalf("kv[atomic] = %d, want 1", v)
	}
	if got.Objs["q"].Q.Len() != 1 || got.Objs["q"].Q.At(0) != 99 {
		t.Fatalf("queue state wrong after replay")
	}
	// The rejected cas's verdict survived: re-issuing seq 3 answers the
	// original rejection.
	re := StepOp(&got, 0, 9, 3, Op{Kind: OpMapCAS, Obj: "kv", Key: "k", Arg: 5, Arg2: 11})
	if !re.Duplicate || re.OK {
		t.Fatalf("re-issued rejected cas after recovery: %+v", re)
	}
}

// TestSnapshotCarriesObjects writes a type-7 snapshot, drops the WAL
// tail's relevance by pruning, and recovers from the snapshot alone.
func TestSnapshotCarriesObjects(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})

	var s ShardState
	StepOp(&s, 0, 3, 1, Op{Kind: OpCreate, Obj: "kv", Arg: int64(object.TypeMap)})
	StepOp(&s, 0, 3, 2, Op{Kind: OpMapPut, Obj: "kv", Key: "a", Arg: 7})
	StepOp(&s, 0, 3, 3, Op{Kind: OpCreate, Obj: "snap", Arg: int64(object.TypeSnapshot), Arg2: 2})
	StepOp(&s, 0, 3, 4, Op{Kind: OpSnapUpdate, Obj: "snap", Arg: 5, Arg2: 1})
	miss := StepOp(&s, 0, 3, 5, Op{Kind: OpMapCAS, Obj: "kv", Key: "a", Arg: 1, Arg2: 99})
	if miss.OK {
		t.Fatal("cas expected to miss")
	}
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: s.Clone()}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	got := rec.Shards[0]
	if v, _ := got.Objs["kv"].M.Get("a"); v != 7 {
		t.Fatalf("kv[a] = %d", v)
	}
	if got.Objs["snap"].Slots[1] != 5 {
		t.Fatalf("snap slots = %v", got.Objs["snap"].Slots)
	}
	// The rejected verdict round-tripped through the snapshot.
	re := StepOp(&got, 0, 3, 5, Op{Kind: OpMapCAS, Obj: "kv", Key: "a", Arg: 1, Arg2: 99})
	if !re.Duplicate || re.OK {
		t.Fatalf("re-issue after snapshot recovery: %+v", re)
	}
}
