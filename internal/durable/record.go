// Package durable is kexserved's crash-restart recovery layer: a
// segmented, CRC-framed write-ahead log plus point-in-time snapshots
// for the server's sharded object table, and the dedup bookkeeping that
// turns client-assigned op IDs into exactly-once semantics across
// restarts.
//
// The contract mirrors the paper's resilience story one level up. The
// k-assignment wrapper makes a shared object (k-1)-resilient to client
// crashes; this package makes the *server* resilient to its own crash,
// the full-memory-loss fault of Golab & Ramaraju's recoverable mutual
// exclusion reformulation. The invariant it maintains:
//
//   - An operation is acknowledged only after it is durable at the
//     configured fsync level, so an acknowledged write survives any
//     later crash (SyncAlways and SyncInterval; SyncNever opts out).
//   - Every applied mutation carries the client's op ID (session
//     identity x sequence number); a bounded per-shard dedup window —
//     persisted with the snapshot and rebuilt by replay — recognizes a
//     retried op whose ack was lost and returns the original result
//     instead of double-applying.
//   - Recovery replays the newest valid snapshot plus the log tail. A
//     torn final record (truncated header, truncated body, bad CRC) is
//     dropped and the file truncated at the last valid boundary;
//     everything before it is kept.
//
// Layout inside the data directory:
//
//	wal-<firstLSN>.seg   log segments, records framed [len][crc][body]
//	snap-<coverLSN>.snap point-in-time table images (same framing)
//
// The WAL is ordered: the server appends each shard's records in that
// shard's linearization order, so a durable record implies every
// earlier record of its shard is durable too — the property that makes
// "retried unacked ops are not double-applied" hold across a crash
// that loses the tail of the log.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"kexclusion/internal/object"
)

// OpKind identifies a logged mutation. Reads are never logged — they
// do not move the state, so replay does not need them.
type OpKind uint8

const (
	// OpAdd adds Arg to the shard value.
	OpAdd OpKind = 1
	// OpSet overwrites the shard value with Arg.
	OpSet OpKind = 2
	// OpCreate creates named object Obj of type Arg (kx05). For
	// snapshot objects Arg2 is the slot count. Idempotent per type.
	OpCreate OpKind = 3
	// OpMapPut stores Arg under Key in map Obj.
	OpMapPut OpKind = 4
	// OpMapCAS stores Arg under Key if the current value equals Arg2
	// (a missing key compares as 0); rejected otherwise.
	OpMapCAS OpKind = 5
	// OpMapDel removes Key from map Obj; rejected if absent.
	OpMapDel OpKind = 6
	// OpQEnq appends Arg to queue Obj.
	OpQEnq OpKind = 7
	// OpQDeq pops the head of queue Obj; rejected if empty. The
	// canonical non-idempotent op: its retry safety IS the dedup window.
	OpQDeq OpKind = 8
	// OpRegAdd adds Arg to register Obj.
	OpRegAdd OpKind = 9
	// OpRegSet overwrites register Obj with Arg.
	OpRegSet OpKind = 10
	// OpSnapUpdate writes Arg into slot Arg2 of snapshot object Obj.
	OpSnapUpdate OpKind = 11

	opKindMax = OpSnapUpdate
)

// String names the kind for logs and errors.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpSet:
		return "set"
	case OpCreate:
		return "create"
	case OpMapPut:
		return "map.put"
	case OpMapCAS:
		return "map.cas"
	case OpMapDel:
		return "map.del"
	case OpQEnq:
		return "queue.enq"
	case OpQDeq:
		return "queue.deq"
	case OpRegAdd:
		return "reg.add"
	case OpRegSet:
		return "reg.set"
	case OpSnapUpdate:
		return "snap.update"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Record is one applied mutation, the unit of WAL replay.
type Record struct {
	// Session and Seq are the client-assigned op ID: a stable session
	// identity (surviving reconnects) and a per-session sequence
	// number. Session 0 or Seq 0 means the op carried no ID and is
	// excluded from dedup (it still replays).
	Session uint64
	Seq     uint64
	// Shard addresses the server's object table.
	Shard uint32
	// Kind and Arg re-execute the mutation during replay.
	Kind OpKind
	Arg  int64
	// Val is the shard value after the mutation — the acknowledged
	// result, re-served to a deduplicated retry and cross-checked
	// against re-execution during replay.
	Val int64
	// Ver is the shard's mutation version: consecutive per shard, in
	// linearization order. Replay uses it to skip records already
	// covered by a snapshot and to detect gaps.
	Ver uint64
	// Epoch is the shard's failover epoch when the mutation applied
	// (see ShardState.Epoch). Replay and replication order records by
	// (Epoch, Ver): a record from a lower epoch than the state it
	// meets is a discarded fork, never data. Records written before
	// epochs existed decode as epoch 0.
	Epoch uint64
	// Obj and Key address a named object and map key (kx05 kinds;
	// empty for the legacy root-register kinds, which keep their
	// byte-identical legacy record layout).
	Obj string
	Key string
	// Arg2 is the secondary argument (cas expected value, snapshot
	// slot, create slot count).
	Arg2 int64
	// OK is the op-level verdict that was acknowledged (see
	// Outcome.OK); replay cross-checks it like Val.
	OK bool
	// Atomic, when non-nil, makes this an atomic-group record: the sub
	// records applied all-or-nothing across shards under one LSN. The
	// top-level mutation fields are unused.
	Atomic []Record
}

// Record framing: [4-byte big-endian body length][4-byte CRC-32C of
// body][body]. The body opens with a type byte.
const (
	recHeaderLen   = 8
	recTypeOpV1    = 1 // an applied mutation, pre-epoch layout (opBodyLenV1 bytes)
	recTypeRestart = 2 // a process (re)start marker (1 byte)
	// 3 and 4 are snapshot body types (see snapshot.go); WAL and
	// snapshot frames share one type-byte space so a snapshot body can
	// never be mistaken for a log record.
	recTypeOp = 5 // an applied mutation with its epoch (opBodyLen bytes)
	// 6 is the current snapshot body type and 7 its object-table
	// successor (see snapshot.go).
	recTypeObjOp  = 8 // a typed-object mutation (opObjBodyLen fixed bytes + name + key)
	recTypeAtomic = 9 // an atomic group: [type][u16 count] then count × [u16 len][op body]

	// opBodyLenV1: type + session + seq + shard + kind + arg + val + ver.
	opBodyLenV1 = 1 + 8 + 8 + 4 + 1 + 8 + 8 + 8
	// opBodyLen appends the 8-byte epoch.
	opBodyLen = opBodyLenV1 + 8
	// opObjBodyLen is the fixed prefix of a typed-object record: type +
	// session + seq + shard + kind + arg + arg2 + val + ver + epoch +
	// ok + nameLen(u8) + keyLen(u16); name and key bytes follow.
	opObjBodyLen = 1 + 8 + 8 + 4 + 1 + 8 + 8 + 8 + 8 + 8 + 1 + 1 + 2

	// maxBody bounds a WAL record body; a longer announcement in a
	// header is corruption, not a record worth allocating for.
	maxBody = 1 << 16
	// maxSnapshotBody bounds a snapshot body (one frame for the whole
	// table image, dedup windows included).
	maxSnapshotBody = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete record at the end of a scan: the header
// or body is cut short. Recovery treats it as a torn tail write.
var errTorn = errors.New("durable: torn record")

// errCorrupt marks a record that is complete but wrong: absurd length,
// CRC mismatch, unknown type, or a malformed body. At the tail of the
// last segment it is handled like a torn write; anywhere else it is
// fatal.
var errCorrupt = errors.New("durable: corrupt record")

// appendFrame appends one framed record body to dst.
func appendFrame(dst, body []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// decodeFrame reads one framed body from the front of b, returning the
// body and the bytes consumed. errTorn means b ends mid-record;
// errCorrupt means the frame is complete but fails validation.
func decodeFrame(b []byte, maxLen int) ([]byte, int, error) {
	if len(b) < recHeaderLen {
		return nil, 0, errTorn
	}
	n := int(binary.BigEndian.Uint32(b[0:]))
	if n == 0 || n > maxLen {
		return nil, 0, fmt.Errorf("%w: body length %d outside (0,%d]", errCorrupt, n, maxLen)
	}
	if len(b) < recHeaderLen+n {
		return nil, 0, errTorn
	}
	body := b[recHeaderLen : recHeaderLen+n]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("%w: CRC %#x, want %#x", errCorrupt, got, want)
	}
	return body, recHeaderLen + n, nil
}

// encodeOp frames an op record.
func encodeOp(r Record) []byte {
	return appendFrame(nil, EncodeRecordBody(r))
}

// EncodeRecordBody serializes an op record body without the CRC frame
// — the shared codec for WAL appends and replication shipping. Legacy
// root-register kinds keep the pre-kx05 layout byte-for-byte; typed
// kinds use the object layout; a record with Atomic set becomes one
// atomic-group body.
func EncodeRecordBody(r Record) []byte {
	if len(r.Atomic) > 0 {
		body := []byte{recTypeAtomic}
		body = binary.BigEndian.AppendUint16(body, uint16(len(r.Atomic)))
		for _, sub := range r.Atomic {
			sb := EncodeRecordBody(sub)
			body = binary.BigEndian.AppendUint16(body, uint16(len(sb)))
			body = append(body, sb...)
		}
		return body
	}
	// Legacy register kinds always succeed (applyOp has no rejecting
	// path for add/set), so the OK-less legacy layout loses nothing:
	// decode normalizes their OK to true.
	if (r.Kind == OpAdd || r.Kind == OpSet) && r.Obj == "" && r.Key == "" && r.Arg2 == 0 {
		// Legacy layout, unchanged: pre-kx05 WALs and this one stay
		// interchangeable for register-only traffic.
		body := make([]byte, opBodyLen)
		body[0] = recTypeOp
		binary.BigEndian.PutUint64(body[1:], r.Session)
		binary.BigEndian.PutUint64(body[9:], r.Seq)
		binary.BigEndian.PutUint32(body[17:], r.Shard)
		body[21] = byte(r.Kind)
		binary.BigEndian.PutUint64(body[22:], uint64(r.Arg))
		binary.BigEndian.PutUint64(body[30:], uint64(r.Val))
		binary.BigEndian.PutUint64(body[38:], r.Ver)
		binary.BigEndian.PutUint64(body[46:], r.Epoch)
		return body
	}
	body := make([]byte, opObjBodyLen, opObjBodyLen+len(r.Obj)+len(r.Key))
	body[0] = recTypeObjOp
	binary.BigEndian.PutUint64(body[1:], r.Session)
	binary.BigEndian.PutUint64(body[9:], r.Seq)
	binary.BigEndian.PutUint32(body[17:], r.Shard)
	body[21] = byte(r.Kind)
	binary.BigEndian.PutUint64(body[22:], uint64(r.Arg))
	binary.BigEndian.PutUint64(body[30:], uint64(r.Arg2))
	binary.BigEndian.PutUint64(body[38:], uint64(r.Val))
	binary.BigEndian.PutUint64(body[46:], r.Ver)
	binary.BigEndian.PutUint64(body[54:], r.Epoch)
	if r.OK {
		body[62] = 1
	}
	body[63] = byte(len(r.Obj))
	binary.BigEndian.PutUint16(body[64:], uint16(len(r.Key)))
	body = append(body, r.Obj...)
	body = append(body, r.Key...)
	return body
}

// ParseRecordBody decodes an op or atomic-group record body produced
// by EncodeRecordBody. Restart markers and snapshot bodies are
// rejected — this is the replication-facing codec, and a peer has no
// business shipping those as ops.
func ParseRecordBody(body []byte) (Record, error) {
	if len(body) == 0 {
		return Record{}, fmt.Errorf("%w: empty record body", errCorrupt)
	}
	rec, isRestart, err := parseBody(body)
	if err != nil {
		return Record{}, err
	}
	if isRestart {
		return Record{}, fmt.Errorf("%w: restart marker where an op record was expected", errCorrupt)
	}
	return rec, nil
}

// encodeRestart frames a restart marker.
func encodeRestart() []byte {
	return appendFrame(nil, []byte{recTypeRestart})
}

// parseBody decodes a validated frame body into an op record or a
// restart marker (restart reports ok with isRestart true).
func parseBody(body []byte) (rec Record, isRestart bool, err error) {
	switch body[0] {
	case recTypeOp, recTypeOpV1:
		want := opBodyLen
		if body[0] == recTypeOpV1 {
			want = opBodyLenV1 // pre-epoch record: epoch decodes as 0
		}
		if len(body) != want {
			return Record{}, false, fmt.Errorf("%w: op body is %d bytes, want %d", errCorrupt, len(body), want)
		}
		rec = Record{
			Session: binary.BigEndian.Uint64(body[1:]),
			Seq:     binary.BigEndian.Uint64(body[9:]),
			Shard:   binary.BigEndian.Uint32(body[17:]),
			Kind:    OpKind(body[21]),
			Arg:     int64(binary.BigEndian.Uint64(body[22:])),
			Val:     int64(binary.BigEndian.Uint64(body[30:])),
			Ver:     binary.BigEndian.Uint64(body[38:]),
		}
		if body[0] == recTypeOp {
			rec.Epoch = binary.BigEndian.Uint64(body[46:])
		}
		rec.OK = true // legacy kinds always applied with an OK verdict
		if rec.Kind != OpAdd && rec.Kind != OpSet {
			return Record{}, false, fmt.Errorf("%w: unknown op kind %d", errCorrupt, body[21])
		}
		if rec.Ver == 0 {
			return Record{}, false, fmt.Errorf("%w: op record with version 0", errCorrupt)
		}
		return rec, false, nil
	case recTypeObjOp:
		if len(body) < opObjBodyLen {
			return Record{}, false, fmt.Errorf("%w: object op body is %d bytes, want >= %d", errCorrupt, len(body), opObjBodyLen)
		}
		nameLen := int(body[63])
		keyLen := int(binary.BigEndian.Uint16(body[64:]))
		if len(body) != opObjBodyLen+nameLen+keyLen {
			return Record{}, false, fmt.Errorf("%w: object op body is %d bytes, want %d", errCorrupt, len(body), opObjBodyLen+nameLen+keyLen)
		}
		if nameLen > object.MaxNameLen || keyLen > object.MaxKeyLen {
			return Record{}, false, fmt.Errorf("%w: object op name/key lengths %d/%d exceed caps", errCorrupt, nameLen, keyLen)
		}
		rec = Record{
			Session: binary.BigEndian.Uint64(body[1:]),
			Seq:     binary.BigEndian.Uint64(body[9:]),
			Shard:   binary.BigEndian.Uint32(body[17:]),
			Kind:    OpKind(body[21]),
			Arg:     int64(binary.BigEndian.Uint64(body[22:])),
			Arg2:    int64(binary.BigEndian.Uint64(body[30:])),
			Val:     int64(binary.BigEndian.Uint64(body[38:])),
			Ver:     binary.BigEndian.Uint64(body[46:]),
			Epoch:   binary.BigEndian.Uint64(body[54:]),
			OK:      body[62] == 1,
			Obj:     string(body[opObjBodyLen : opObjBodyLen+nameLen]),
			Key:     string(body[opObjBodyLen+nameLen:]),
		}
		if body[62] > 1 {
			return Record{}, false, fmt.Errorf("%w: object op ok byte %d", errCorrupt, body[62])
		}
		if rec.Kind == 0 || rec.Kind > opKindMax {
			return Record{}, false, fmt.Errorf("%w: unknown op kind %d", errCorrupt, body[21])
		}
		if rec.Ver == 0 {
			return Record{}, false, fmt.Errorf("%w: op record with version 0", errCorrupt)
		}
		return rec, false, nil
	case recTypeAtomic:
		if len(body) < 3 {
			return Record{}, false, fmt.Errorf("%w: atomic body is %d bytes", errCorrupt, len(body))
		}
		count := int(binary.BigEndian.Uint16(body[1:]))
		if count == 0 || count > object.MaxAtomicOps {
			return Record{}, false, fmt.Errorf("%w: atomic group of %d ops outside (0,%d]", errCorrupt, count, object.MaxAtomicOps)
		}
		rec = Record{Atomic: make([]Record, 0, count)}
		off := 3
		for i := 0; i < count; i++ {
			if len(body)-off < 2 {
				return Record{}, false, fmt.Errorf("%w: atomic sub %d truncated", errCorrupt, i)
			}
			n := int(binary.BigEndian.Uint16(body[off:]))
			off += 2
			if n == 0 || len(body)-off < n {
				return Record{}, false, fmt.Errorf("%w: atomic sub %d length %d exceeds body", errCorrupt, i, n)
			}
			sb := body[off : off+n]
			off += n
			if sb[0] != recTypeOp && sb[0] != recTypeObjOp {
				return Record{}, false, fmt.Errorf("%w: atomic sub %d has record type %d", errCorrupt, i, sb[0])
			}
			sub, _, err := parseBody(sb)
			if err != nil {
				return Record{}, false, err
			}
			rec.Atomic = append(rec.Atomic, sub)
		}
		if off != len(body) {
			return Record{}, false, fmt.Errorf("%w: atomic body has trailing bytes", errCorrupt)
		}
		return rec, false, nil
	case recTypeRestart:
		if len(body) != 1 {
			return Record{}, false, fmt.Errorf("%w: restart body is %d bytes, want 1", errCorrupt, len(body))
		}
		return Record{}, true, nil
	}
	return Record{}, false, fmt.Errorf("%w: unknown record type %d", errCorrupt, body[0])
}
