package durable

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// appendOps pushes n sequential adds for one shard through both the
// state machine and the log, exactly as the server does: Step first,
// then Append the outcome.
func appendOps(t *testing.T, l *Log, s *ShardState, shard uint32, sess uint64, startSeq uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		out := Step(s, 0, sess, startSeq+uint64(i), OpAdd, 1)
		if !out.Applied {
			t.Fatalf("op %d did not apply: %+v", i, out)
		}
		lsn, err := l.Append(Record{
			Session: sess, Seq: startSeq + uint64(i), Shard: shard,
			Kind: OpAdd, Arg: 1, Val: out.Val, Ver: out.Ver,
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("wait durable %d: %v", i, err)
		}
	}
}

func mustOpen(t *testing.T, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("open %s: %v", opts.Dir, err)
	}
	return l, rec
}

func TestFreshDirAndRestartCounting(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, Options{Dir: dir})
	if rec.RestartCount != 0 || rec.RecoveredOps != 0 || len(rec.Shards) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh recovery: %+v", rec)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for boot := 1; boot <= 3; boot++ {
		l, rec = mustOpen(t, Options{Dir: dir})
		if rec.RestartCount != uint64(boot) {
			t.Fatalf("boot %d: restart count %d", boot, rec.RestartCount)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	var s0, s1 ShardState
	appendOps(t, l, &s0, 0, 11, 1, 10)
	appendOps(t, l, &s1, 1, 12, 1, 7)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l, rec := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if got := rec.Shards[0]; got.Val != 10 || got.Ver != 10 {
		t.Fatalf("shard 0: %+v", got)
	}
	if got := rec.Shards[1]; got.Val != 7 || got.Ver != 7 {
		t.Fatalf("shard 1: %+v", got)
	}
	if rec.RecoveredOps != 17 {
		t.Fatalf("recovered ops: %d", rec.RecoveredOps)
	}
	// Dedup entries survive: a post-restart retry of the last op must
	// be recognized.
	s := rec.Shards[0]
	out := Step(&s, 0, 11, 10, OpAdd, 1)
	if !out.Duplicate || out.Val != 10 {
		t.Fatalf("post-restart retry not deduplicated: %+v", out)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	var s ShardState
	appendOps(t, l, &s, 0, 5, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", len(segs))
	}
	l, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	if got := rec.Shards[0]; got.Val != 40 || got.Ver != 40 {
		t.Fatalf("recovery across segments: %+v", got)
	}
}

// lastSegment returns the path of the newest WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	last := segs[0]
	for _, sg := range segs[1:] {
		if sg > last {
			last = sg
		}
	}
	return last
}

func TestTornTailFixtures(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
	}{
		{"truncated header", func(t *testing.T, path string) {
			st, _ := os.Stat(path)
			if err := os.Truncate(path, st.Size()+3); err != nil { // partial header bytes (zeroes)
				t.Fatal(err)
			}
		}},
		{"truncated body", func(t *testing.T, path string) {
			// Chop the last record mid-body.
			st, _ := os.Stat(path)
			if err := os.Truncate(path, st.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xff // flip a byte in the last record's body
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"trailing garbage", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, Options{Dir: dir})
			var s ShardState
			appendOps(t, l, &s, 0, 9, 1, 6)
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			tc.mangle(t, lastSegment(t, dir))

			// The torn record is the 6th op (or pure garbage): the five
			// (or six) records before it must survive, the tail must be
			// dropped, and the log must be appendable again.
			l, rec := mustOpen(t, Options{Dir: dir})
			if rec.DroppedBytes == 0 {
				t.Fatalf("recovery reported no dropped bytes")
			}
			got := rec.Shards[0]
			if got.Val != 5 && got.Val != 6 {
				t.Fatalf("recovered value %d, want 5 (torn last op) or 6 (garbage after valid log)", got.Val)
			}
			s = rec.Shards[0]
			appendOps(t, l, &s, 0, 9, uint64(got.Ver)+1, 2)
			if err := l.Close(); err != nil {
				t.Fatalf("close after truncation: %v", err)
			}

			// A second recovery sees a clean log: the tail was truncated
			// on disk, not just skipped.
			l, rec = mustOpen(t, Options{Dir: dir})
			defer l.Close()
			if rec.DroppedBytes != 0 {
				t.Fatalf("second recovery still dropping bytes: %d", rec.DroppedBytes)
			}
			if rec.Shards[0].Val != got.Val+2 {
				t.Fatalf("after re-append: val %d, want %d", rec.Shards[0].Val, got.Val+2)
			}
		})
	}
}

func TestCorruptionInEarlierSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	var s ShardState
	appendOps(t, l, &s, 0, 9, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, SegmentBytes: 256}); err == nil {
		t.Fatalf("open accepted corruption in a non-final segment")
	}
}

func TestSnapshotPruneAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	var s ShardState
	appendOps(t, l, &s, 0, 9, 1, 30)
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: s.Clone()}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("prune left %d segments, want only the active one", len(segs))
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly 1 snapshot, got %d", len(snaps))
	}
	// Ops after the snapshot replay on top of it.
	appendOps(t, l, &s, 0, 9, 31, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	if got := rec.Shards[0]; got.Val != 35 || got.Ver != 35 {
		t.Fatalf("snapshot+tail recovery: %+v", got)
	}
	if rec.RecoveredOps != 35 {
		t.Fatalf("recovered ops: %d", rec.RecoveredOps)
	}
	if rec.RestartCount != 1 {
		t.Fatalf("restart count through snapshot: %d", rec.RestartCount)
	}

	// A second snapshot replaces the first and survives another cycle,
	// proving restart tallies ride in snapshots (their markers' WAL
	// records are pruned away).
	s = rec.Shards[0]
	appendOps(t, l, &s, 0, 9, 36, 3)
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: s.Clone()}
	}); err != nil {
		t.Fatalf("snapshot 2: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l, rec = mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	if got := rec.Shards[0]; got.Val != 38 || rec.RestartCount != 2 {
		t.Fatalf("after second snapshot cycle: shard %+v, restarts %d", got, rec.RestartCount)
	}
}

func TestUnreadableNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	var s ShardState
	appendOps(t, l, &s, 0, 9, 1, 10)
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: s.Clone()}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	appendOps(t, l, &s, 0, 9, 11, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A disk-corrupted newer snapshot must be skipped in favor of the
	// valid older one; a stale .tmp from a torn snapshot write is
	// ignored outright.
	if err := os.WriteFile(filepath.Join(dir, "snap-9999999999999999.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000099.snap.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	if got := rec.Shards[0]; got.Val != 14 || got.Ver != 14 {
		t.Fatalf("fallback recovery: %+v", got)
	}
}

func TestOnlySnapshotUnreadableIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	var s ShardState
	appendOps(t, l, &s, 0, 9, 1, 5)
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: s.Clone()}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	if err := os.WriteFile(snaps[0], []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The snapshot's segments were pruned: serving the remaining tail
	// as if it were the whole history would silently lose data, so
	// recovery must refuse.
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatalf("open served partial state from an unreadable snapshot")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncInterval, Interval: 2 * time.Millisecond})
	defer l.Close()

	// Many concurrent appenders all waiting for durability: the
	// interval syncer must cover them in batches, issuing far fewer
	// fsyncs than there are acknowledged appends. Versions are pre-
	// assigned so the log's per-shard ordering invariant holds without
	// replicating the server's sequencer here.
	const writers, perWriter = 8, 25
	const total = writers * perWriter
	lsns := make(chan uint64, total)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(Record{Shard: uint32(w), Kind: OpAdd, Arg: 1, Val: int64(i + 1), Ver: uint64(i + 1)})
				if err != nil {
					t.Errorf("writer %d append: %v", w, err)
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					t.Errorf("writer %d wait: %v", w, err)
					return
				}
				lsns <- lsn
			}
		}(w)
	}
	wg.Wait()
	close(lsns)
	n := 0
	for range lsns {
		n++
	}
	if n != total {
		t.Fatalf("%d/%d appends acknowledged", n, total)
	}
	if s := l.Syncs(); s >= total/2 {
		t.Fatalf("group commit degenerated: %d fsyncs for %d appends", s, total)
	}
}

func TestSyncNeverDoesNotWait(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	lsn, err := l.Append(Record{Shard: 0, Kind: OpSet, Arg: 3, Val: 3, Ver: 1})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("WaitDurable blocked under SyncNever")
	}
	// Open's restart marker is force-synced even here; appends add none.
	if s := l.Syncs(); s != 1 {
		t.Fatalf("fsyncs under SyncNever: %d, want 1 (open marker)", s)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The data still recovers when the process exited cleanly.
	l, rec := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	defer l.Close()
	if rec.Shards[0].Val != 3 {
		t.Fatalf("recovery after SyncNever close: %+v", rec.Shards[0])
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := l.Append(Record{Shard: 0, Kind: OpAdd, Arg: 1, Val: 1, Ver: 1}); err == nil {
		t.Fatalf("append accepted after close")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestAppendFailurePoisonsLog guards the no-holes invariant: a failed
// append consumes a version number in the caller's sequencer without a
// record to back it, so if later appends were admitted the WAL would
// carry acknowledged-as-durable records past a gap — poison for the
// next recovery. The log must instead go fatal: every later Append and
// every WaitDurable (even for an LSN that made it to disk earlier)
// returns the failure, so nothing is acked as durable after the hole.
func TestAppendFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 forces a rotation before every op append, giving
	// the test a deterministic failure point: segment creation in a
	// directory that no longer exists.
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 1})
	var s ShardState
	appendOps(t, l, &s, 0, 11, 1, 1) // one durable record, LSN <= 2
	defer l.Close()

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	out := Step(&s, 0, 11, 2, OpAdd, 1)
	if _, err := l.Append(Record{Session: 11, Seq: 2, Shard: 0, Kind: OpAdd, Arg: 1, Val: out.Val, Ver: out.Ver}); err == nil {
		t.Fatal("append into a deleted data directory succeeded")
	}

	// The version for seq 2 is now a hole. A later append must be
	// refused outright, not written past the gap.
	out = Step(&s, 0, 11, 3, OpAdd, 1)
	_, err := l.Append(Record{Session: 11, Seq: 3, Shard: 0, Kind: OpAdd, Arg: 1, Val: out.Val, Ver: out.Ver})
	if err == nil {
		t.Fatal("append after a failed append succeeded: the WAL now has a hole")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("post-failure append error does not surface the poison: %v", err)
	}

	// Fail-first: even LSN 1 — durable before the failure — must not be
	// vouched for, or the server's duplicate path would re-ack an op
	// whose own record never landed (End() points before the hole).
	if err := l.WaitDurable(1); err == nil {
		t.Fatal("WaitDurable on a poisoned log succeeded")
	}
}

// TestDecodeSnapshotHugeShardCountRejected: a CRC-valid frame whose
// declared shard count the body cannot possibly hold must be rejected
// before the count is used as an allocation hint (a crafted count of
// 2^32-1 would otherwise demand a multi-GiB map at recovery time).
func TestDecodeSnapshotHugeShardCountRejected(t *testing.T) {
	body := []byte{recTypeSnapshot}
	body = binary.BigEndian.AppendUint64(body, 0) // cover
	body = binary.BigEndian.AppendUint64(body, 0) // markers
	body = binary.BigEndian.AppendUint32(body, ^uint32(0))
	if _, _, _, err := decodeSnapshot(body); !errors.Is(err, errCorrupt) {
		t.Fatalf("snapshot declaring 2^32-1 shards over an empty body: got %v, want errCorrupt", err)
	}
}

// TestSyncAlwaysGroupCommits: under SyncAlways the fsync lives at the
// durability wait, so a pipeline of appends followed by one wait costs
// one disk write, not one per record — and the wait still implies every
// appended record is on disk.
func TestSyncAlwaysGroupCommits(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	defer l.Close()
	var last uint64
	for i := 0; i < 16; i++ {
		lsn, err := l.Append(Record{Shard: 0, Kind: OpAdd, Arg: 1, Val: int64(i + 1), Ver: uint64(i + 1)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		last = lsn
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// One sync for Open's restart marker, one group commit for the
	// whole 16-record pipeline.
	if s := l.Syncs(); s != 2 {
		t.Fatalf("fsyncs: %d, want 2 (open marker + one group commit for 16 appends)", s)
	}
	// A second wait for an already-covered LSN adds nothing.
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("re-wait: %v", err)
	}
	if s := l.Syncs(); s != 2 {
		t.Fatalf("fsyncs after covered re-wait: %d, want 2", s)
	}
	// A fresh append re-arms the wait: one more sync, exactly.
	lsn, err := l.Append(Record{Shard: 0, Kind: OpAdd, Arg: 1, Val: 17, Ver: 17})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if s := l.Syncs(); s != 3 {
		t.Fatalf("fsyncs after depth-1 op: %d, want 3", s)
	}
}
