package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecordDecode hammers the WAL record decoder with arbitrary
// bytes: it must never panic, never over-read, and never mis-decode —
// any frame it accepts must re-encode to the identical bytes (the
// encoding is canonical: fixed-width fields, no padding freedom).
func FuzzRecordDecode(f *testing.F) {
	f.Add(encodeOp(Record{Session: 7, Seq: 3, Shard: 2, Kind: OpAdd, Arg: -5, Val: 37, Ver: 12}))
	f.Add(encodeOp(Record{Session: 0, Seq: 0, Shard: 0, Kind: OpSet, Arg: 1 << 60, Val: 1 << 60, Ver: 1}))
	f.Add(encodeRestart())
	f.Add(encodeOp(Record{Kind: OpAdd, Val: 1, Ver: 1})[:20])     // torn body
	f.Add([]byte{0, 0, 0, 1, 0xba, 0xdc, 0x0f, 0xee, 0x01})       // bad CRC
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1, 2, 3}) // absurd length
	f.Add(bytes.Repeat(encodeRestart(), 3))                       // several frames

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the input like segment replay does, stopping at the
		// first torn or corrupt frame.
		off := 0
		for off < len(data) {
			body, sz, err := decodeFrame(data[off:], maxBody)
			if err != nil {
				if !errors.Is(err, errTorn) && !errors.Is(err, errCorrupt) {
					t.Fatalf("decodeFrame: untyped error %v", err)
				}
				return
			}
			if sz <= 0 || off+sz > len(data) {
				t.Fatalf("decodeFrame consumed %d of %d available bytes", sz, len(data)-off)
			}
			rec, isRestart, err := parseBody(body)
			if err != nil {
				if !errors.Is(err, errCorrupt) {
					t.Fatalf("parseBody: untyped error %v", err)
				}
				return
			}
			var re []byte
			if isRestart {
				re = encodeRestart()
			} else {
				re = encodeOp(rec)
			}
			if !bytes.Equal(re, data[off:off+sz]) {
				t.Fatalf("decode/encode mismatch at offset %d:\n got %x\nfrom %x", off, re, data[off:off+sz])
			}
			off += sz
		}
	})
}
