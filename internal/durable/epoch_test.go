package durable

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// encodeOpV1 builds a legacy pre-epoch op body (recTypeOpV1), as written
// by servers from before records carried epochs.
func encodeOpV1(r Record) []byte {
	body := make([]byte, opBodyLenV1)
	body[0] = recTypeOpV1
	binary.BigEndian.PutUint64(body[1:], r.Session)
	binary.BigEndian.PutUint64(body[9:], r.Seq)
	binary.BigEndian.PutUint32(body[17:], r.Shard)
	body[21] = byte(r.Kind)
	binary.BigEndian.PutUint64(body[22:], uint64(r.Arg))
	binary.BigEndian.PutUint64(body[30:], uint64(r.Val))
	binary.BigEndian.PutUint64(body[38:], r.Ver)
	return appendFrame(nil, body)
}

func TestOpRecordEpochRoundTrip(t *testing.T) {
	want := Record{
		Session: 7, Seq: 9, Shard: 3, Kind: OpSet, Arg: -4, Val: -4,
		Ver: 12, Epoch: 5,
	}
	body, n, err := decodeFrame(encodeOp(want), maxBody)
	if err != nil {
		t.Fatalf("decode frame: %v", err)
	}
	if n != recHeaderLen+opBodyLen {
		t.Fatalf("frame consumed %d bytes, want %d", n, recHeaderLen+opBodyLen)
	}
	got, isRestart, err := parseBody(body)
	if err != nil || isRestart {
		t.Fatalf("parse: restart=%v err=%v", isRestart, err)
	}
	want.OK = true // legacy kinds decode with an OK verdict
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestOpRecordLegacyDecodesEpochZero(t *testing.T) {
	legacy := Record{
		Session: 7, Seq: 9, Shard: 3, Kind: OpAdd, Arg: 2, Val: 6, Ver: 12,
	}
	body, _, err := decodeFrame(encodeOpV1(legacy), maxBody)
	if err != nil {
		t.Fatalf("decode frame: %v", err)
	}
	got, isRestart, err := parseBody(body)
	if err != nil || isRestart {
		t.Fatalf("parse: restart=%v err=%v", isRestart, err)
	}
	if got.Epoch != 0 {
		t.Fatalf("legacy record decoded with epoch %d, want 0", got.Epoch)
	}
	legacy.OK = true
	if !reflect.DeepEqual(got, legacy) {
		t.Fatalf("round trip: got %+v, want %+v", got, legacy)
	}
}

func TestStateImageEpochRoundTrip(t *testing.T) {
	want := map[uint32]ShardState{
		0: {Epoch: 2, Ver: 9, Val: 42, Dedup: map[uint64]DedupEntry{
			11: {Seq: 3, Val: 42, Ver: 9},
		}},
		5: {Epoch: 0, Ver: 1, Val: -1},
	}
	got, err := DecodeState(EncodeState(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for id, w := range want {
		g := got[id]
		if g.Epoch != w.Epoch || g.Ver != w.Ver || g.Val != w.Val {
			t.Fatalf("shard %d: got %+v, want %+v", id, g, w)
		}
	}
	if e := got[0].Dedup[11]; e.Seq != 3 || e.Val != 42 || e.Ver != 9 {
		t.Fatalf("shard 0 dedup entry: %+v", e)
	}
}

// encodeSnapshotV2 builds a legacy pre-epoch snapshot body (type 4):
// same layout as the current one minus the per-shard epoch field.
func encodeSnapshotV2(cover, markers uint64, shards map[uint32]ShardState) []byte {
	ids := make([]uint32, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	body := []byte{recTypeSnapshotV2}
	body = binary.BigEndian.AppendUint64(body, cover)
	body = binary.BigEndian.AppendUint64(body, markers)
	body = binary.BigEndian.AppendUint32(body, uint32(len(ids)))
	for _, id := range ids {
		s := shards[id]
		body = binary.BigEndian.AppendUint32(body, id)
		body = binary.BigEndian.AppendUint64(body, s.Ver)
		body = binary.BigEndian.AppendUint64(body, uint64(s.Val))
		body = binary.BigEndian.AppendUint32(body, 0) // no dedup entries
	}
	return body
}

func TestSnapshotLegacyDecodesEpochZero(t *testing.T) {
	legacy := map[uint32]ShardState{2: {Ver: 8, Val: 80}}
	cover, markers, got, err := decodeSnapshot(encodeSnapshotV2(17, 4, legacy))
	if err != nil {
		t.Fatalf("decode legacy snapshot: %v", err)
	}
	if cover != 17 || markers != 4 {
		t.Fatalf("header: cover=%d markers=%d", cover, markers)
	}
	if g := got[2]; g.Epoch != 0 || g.Ver != 8 || g.Val != 80 {
		t.Fatalf("shard 2: %+v", g)
	}
}

// TestReplayEpochFencing is the recovery half of the forked-history fix:
// after a state install fences a shard at a higher epoch, a straggler
// record from the deposed epoch sitting later in the WAL must be
// skipped, same-epoch continuations must apply, and a contiguous
// higher-epoch record (a promotion observed before any new-epoch
// snapshot) must be adopted.
func TestReplayEpochFencing(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})

	// A replicated install left shard 0 at (epoch 1, ver 2), fenced by
	// this snapshot — exactly what InstallState persists.
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: {Epoch: 1, Ver: 2, Val: 50}}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	appendRec := func(r Record) {
		t.Helper()
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("wait durable: %v", err)
		}
	}
	// Fenced fork straggler: epoch 0 lost to the install above.
	appendRec(Record{Shard: 0, Kind: OpSet, Arg: 99, Val: 99, Ver: 4, Epoch: 0})
	// Same-epoch continuation of the installed line.
	appendRec(Record{Shard: 0, Kind: OpSet, Arg: 60, Val: 60, Ver: 3, Epoch: 1})
	// Cross-epoch continuation: a promoted primary's first post-bump
	// record, pulled before any epoch-2 snapshot exists locally.
	appendRec(Record{Shard: 0, Kind: OpSet, Arg: 70, Val: 70, Ver: 4, Epoch: 2})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l, rec := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	got := rec.Shards[0]
	if got.Epoch != 2 || got.Ver != 4 || got.Val != 70 {
		t.Fatalf("recovered shard 0: %+v, want epoch 2 ver 4 val 70", got)
	}
}

// TestReplayHigherEpochRewriteIsCorruption: a higher-epoch record at or
// below the recovering state's version would rewrite acknowledged
// history without the install snapshot required to fence it. Recovery
// must refuse rather than guess.
func TestReplayHigherEpochRewriteIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	if err := l.WriteSnapshot(func() map[uint32]ShardState {
		return map[uint32]ShardState{0: {Epoch: 1, Ver: 5, Val: 5}}
	}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	lsn, err := l.Append(Record{Shard: 0, Kind: OpSet, Arg: 9, Val: 9, Ver: 4, Epoch: 2})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("wait durable: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if _, _, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}}); err == nil ||
		!strings.Contains(err.Error(), "missing epoch-fencing snapshot") {
		t.Fatalf("reopen: err %v, want epoch-fencing corruption", err)
	}
}

// TestReadRecordsDeletedSegmentIsPruned: a segment file unlinked by a
// concurrent snapshot prune after the reader captured the segment list
// must read as ErrPruned (resync via state image), not a hard internal
// error that kills the replication stream.
func TestReadRecordsDeletedSegmentIsPruned(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	var s ShardState
	appendOps(t, l, &s, 0, 5, 1, 40)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d (err %v)", len(segs), err)
	}
	sort.Strings(segs)
	// Unlink the oldest segment while the log still lists it, exactly
	// the window a concurrent prune leaves open.
	if err := os.Remove(segs[0]); err != nil {
		t.Fatalf("remove %s: %v", segs[0], err)
	}
	if _, _, err := l.ReadRecords(0, 10); !errors.Is(err, ErrPruned) {
		t.Fatalf("read into deleted segment: err %v, want ErrPruned", err)
	}
}
