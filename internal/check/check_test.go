package check

import (
	"testing"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

func mustPass(t *testing.T, pr proto.Protocol, cfg Config) Result {
	t.Helper()
	res := Run(pr, cfg)
	for _, v := range res.Violations {
		t.Errorf("%s N=%d k=%d crashes<=%d: %s", pr.Name(), cfg.N, cfg.K, cfg.MaxCrashes, v)
	}
	if !res.Complete {
		t.Fatalf("%s N=%d k=%d: exploration truncated at %d states", pr.Name(), cfg.N, cfg.K, res.States)
	}
	t.Logf("%s N=%d k=%d crashes<=%d: %d states, %d transitions, max occupancy %d",
		pr.Name(), cfg.N, cfg.K, cfg.MaxCrashes, res.States, res.Transitions, res.MaxOccupancy)
	return res
}

// TestFig2ChainExhaustive model-checks Theorem 1's inductive algorithm
// (Figure 2 layers), mechanizing the invariants (I1)-(I4) of Lemma 1 for
// small configurations, with and without the k-1 tolerated crashes.
func TestFig2ChainExhaustive(t *testing.T) {
	shapes := []struct{ n, k, crashes int }{
		{2, 1, 0},
		{3, 1, 0},
		{3, 2, 1},
		{4, 2, 1},
		{4, 3, 2},
	}
	for _, sh := range shapes {
		res := mustPass(t, algo.Inductive{}, Config{
			N: sh.n, K: sh.k, Model: machine.CacheCoherent, MaxCrashes: sh.crashes,
		})
		// The bound must be tight somewhere: k processes do get in
		// simultaneously.
		if res.MaxOccupancy != sh.k {
			t.Errorf("N=%d k=%d: max occupancy %d, want exactly %d", sh.n, sh.k, res.MaxOccupancy, sh.k)
		}
	}
}

// TestFig6ChainExhaustive model-checks Theorem 5's bounded local-spin
// DSM algorithm (Figure 6 layers), mechanizing invariants (I5)-(I10) of
// Lemma 2. The N=2,k=1 configuration is explored exhaustively; larger
// shapes exceed exhaustive reach (N=3,k=2 has >8M states because of the
// per-process R counters), so TestFig6ChainBounded sweeps them instead.
func TestFig6ChainExhaustive(t *testing.T) {
	res := mustPass(t, algo.InductiveDSM{}, Config{
		N: 2, K: 1, Model: machine.Distributed, MaxCrashes: 0,
	})
	if res.MaxOccupancy != 1 {
		t.Errorf("max occupancy %d, want exactly 1", res.MaxOccupancy)
	}
}

// TestFig6ChainBounded sweeps the first 1.5M states of the N=3,k=2
// Figure 6 configuration (with a crash budget) breadth-first: every
// reachable state within that frontier satisfies k-exclusion and is not
// wedged. Truncation is expected and reported, not a failure.
func TestFig6ChainBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded sweep is slow")
	}
	res := Run(algo.InductiveDSM{}, Config{
		N: 3, K: 2, Model: machine.Distributed, MaxCrashes: 1, MaxStates: 1_500_000,
	})
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.MaxOccupancy != 2 {
		t.Errorf("max occupancy %d, want exactly 2", res.MaxOccupancy)
	}
	t.Logf("swept %d states (truncated as expected: complete=%v)", res.States, res.Complete)
}

// TestFastPathExhaustive model-checks the Figure 4 composition, the
// footnote 2 variant included.
func TestFastPathExhaustive(t *testing.T) {
	mustPass(t, algo.FastPath{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 0,
	})
	mustPass(t, algo.FastPathFAA{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 0,
	})
	mustPass(t, algo.Graceful{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 0,
	})
}

// TestSpinLocksExhaustive model-checks the k=1 comparator locks without
// crashes (they are FIFO and deadlock-free absent failures), and shows
// the checker catching MCS's wedge under a single crash.
func TestSpinLocksExhaustive(t *testing.T) {
	mustPass(t, algo.MCS{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 0,
	})
	// The ticket lock (like bakery) has an infinite state space — its
	// ticket counters grow without bound — so it gets a bounded sweep
	// instead of an exhaustive proof.
	sweep := Run(algo.Ticket{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 0, MaxStates: 200_000,
	})
	for _, v := range sweep.Violations {
		t.Error(v)
	}
	res := Run(algo.MCS{}, Config{
		N: 2, K: 1, Model: machine.CacheCoherent, MaxCrashes: 1,
	})
	if len(res.Violations) == 0 {
		t.Fatal("expected the checker to find MCS wedged after a crash")
	}
	t.Logf("found (expected): %s", res.Violations[0])
}

// TestAssignmentExhaustive model-checks Figure 7's renaming wrapper:
// name uniqueness in every reachable state, including after crashes.
func TestAssignmentExhaustive(t *testing.T) {
	mustPass(t, algo.Assignment{Excl: algo.Inductive{}}, Config{
		N: 3, K: 2, Model: machine.CacheCoherent, MaxCrashes: 1,
	})
}

// TestQueueWedgesAfterCrash shows the checker finding the Figure 1
// baseline's real defect: one crash wedges the system (every surviving
// process spins forever on the queue).
func TestQueueWedgesAfterCrash(t *testing.T) {
	res := Run(algo.Queue{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 1,
	})
	if len(res.Violations) == 0 {
		t.Fatal("expected the checker to find a wedged state in the queue baseline")
	}
	t.Logf("found (expected): %s", res.Violations[0])
}

// TestCheckerFindsSeededBug sanity-checks the checker itself with a
// deliberately broken protocol: k-exclusion with the slot counter
// initialized one too high must be caught.
func TestCheckerFindsSeededBug(t *testing.T) {
	res := Run(overAdmit{}, Config{N: 3, K: 1, Model: machine.CacheCoherent})
	if len(res.Violations) == 0 {
		t.Fatal("checker failed to detect a protocol admitting k+1 processes")
	}
	t.Logf("found (expected): %s", res.Violations[0])
}

// overAdmit is SpinFAA with an off-by-one slot counter: admits k+1.
type overAdmit struct{}

func (overAdmit) Name() string         { return "seeded-bug" }
func (overAdmit) Traits() proto.Traits { return proto.Traits{} }

func (overAdmit) Build(m *machine.Mem, n, k int, opt proto.BuildOptions) proto.Instance {
	inst := algo.SpinFAA{}.Build(m, n, k, opt)
	// Corrupt the counter: one extra slot.
	m.Poke(0, int64(k+1))
	return inst
}
