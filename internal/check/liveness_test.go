package check

import (
	"strings"
	"testing"

	"kexclusion/internal/algo"
	"kexclusion/internal/machine"
)

// TestLivenessPaperAlgorithms: the paper's algorithms are lockout-free
// under every pattern of up to k-1 crashes — from any reachable state,
// every surviving process can still get in.
func TestLivenessPaperAlgorithms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		res     LivenessResult
		n, k, c int
	}{
		{"cc-inductive", RunLiveness(algo.Inductive{}, Config{N: 3, K: 1, Model: machine.CacheCoherent}), 3, 1, 0},
		{"cc-inductive-k2", RunLiveness(algo.Inductive{}, Config{N: 3, K: 2, Model: machine.CacheCoherent, MaxCrashes: 1}), 3, 2, 1},
		{"cc-fastpath", RunLiveness(algo.FastPath{}, Config{N: 3, K: 1, Model: machine.CacheCoherent}), 3, 1, 0},
		{"cc-fastpath-faa", RunLiveness(algo.FastPathFAA{}, Config{N: 3, K: 1, Model: machine.CacheCoherent}), 3, 1, 0},
		{"assignment", RunLiveness(algo.Assignment{Excl: algo.Inductive{}}, Config{N: 3, K: 2, Model: machine.CacheCoherent, MaxCrashes: 1}), 3, 2, 1},
	} {
		if !tc.res.Complete {
			t.Fatalf("%s: graph truncated at %d states", tc.name, tc.res.States)
		}
		for _, v := range tc.res.Violations {
			t.Errorf("%s N=%d k=%d crashes<=%d: %s", tc.name, tc.n, tc.k, tc.c, v)
		}
		t.Logf("%s: lockout-freedom verified over %d states (crashes<=%d)", tc.name, tc.res.States, tc.c)
	}
}

// TestLivenessFastPathMultiCrash: the fast-path protocols keep
// lockout-freedom under crash patterns of size > 1 — here every
// pattern of up to k-1 = 2 crashes at N=4, k=3. The state graphs run
// to ~412k states, so this is the expensive end of what the 500k
// default decides exactly.
func TestLivenessFastPathMultiCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("~400k-state graphs; skipped in -short mode")
	}
	for _, tc := range []struct {
		name string
		res  LivenessResult
	}{
		{"cc-fastpath", RunLiveness(algo.FastPath{}, Config{N: 4, K: 3, Model: machine.CacheCoherent, MaxCrashes: 2})},
		{"cc-fastpath-faa", RunLiveness(algo.FastPathFAA{}, Config{N: 4, K: 3, Model: machine.CacheCoherent, MaxCrashes: 2})},
	} {
		if !tc.res.Complete {
			t.Fatalf("%s: graph truncated at %d states", tc.name, tc.res.States)
		}
		for _, v := range tc.res.Violations {
			t.Errorf("%s N=4 k=3 crashes<=2: %s", tc.name, v)
		}
		t.Logf("%s: lockout-freedom verified over %d states (crashes<=2)", tc.name, tc.res.States)
	}
}

// TestLivenessBoundaryAtKCrashes: the resilience bound is tight — the
// same fast-path protocols admit lockout as soon as k crashes are
// reachable (k holders die, no slot remains), so the checker must
// produce witnesses at MaxCrashes = k.
func TestLivenessBoundaryAtKCrashes(t *testing.T) {
	for _, tc := range []struct {
		name string
		res  LivenessResult
	}{
		{"cc-fastpath", RunLiveness(algo.FastPath{}, Config{N: 3, K: 2, Model: machine.CacheCoherent, MaxCrashes: 2})},
		{"cc-fastpath-faa", RunLiveness(algo.FastPathFAA{}, Config{N: 3, K: 2, Model: machine.CacheCoherent, MaxCrashes: 2})},
	} {
		if !tc.res.Complete {
			t.Fatalf("%s: graph truncated at %d states", tc.name, tc.res.States)
		}
		if len(tc.res.Violations) == 0 {
			t.Fatalf("%s: expected lockout witnesses at k crashes", tc.name)
		}
		if !strings.Contains(tc.res.Violations[0], "lockout") {
			t.Fatalf("%s: unexpected violation: %s", tc.name, tc.res.Violations[0])
		}
		t.Logf("%s: boundary confirmed — %d witnesses at crashes=k", tc.name, len(tc.res.Violations))
	}
}

// TestLivenessCatchesQueueLockout: one crash makes the Figure 1 queue
// lock survivors out forever; the backward-reachability check finds it.
func TestLivenessCatchesQueueLockout(t *testing.T) {
	res := RunLiveness(algo.Queue{}, Config{
		N: 3, K: 1, Model: machine.CacheCoherent, MaxCrashes: 1,
	})
	if !res.Complete {
		t.Fatalf("graph truncated at %d states", res.States)
	}
	if len(res.Violations) == 0 {
		t.Fatal("expected a lockout witness for the queue baseline")
	}
	if !strings.Contains(res.Violations[0], "lockout") {
		t.Fatalf("unexpected violation: %s", res.Violations[0])
	}
	t.Logf("found (expected): %s", res.Violations[0])
}

// TestLivenessCatchesMCSLockout: same for MCS — its speed does not
// survive a single crash.
func TestLivenessCatchesMCSLockout(t *testing.T) {
	res := RunLiveness(algo.MCS{}, Config{
		N: 2, K: 1, Model: machine.CacheCoherent, MaxCrashes: 1,
	})
	if len(res.Violations) == 0 {
		t.Fatal("expected a lockout witness for MCS under one crash")
	}
}

// TestLivenessTruncationReported: an undecidable (too large) instance
// must say so rather than claim success.
func TestLivenessTruncationReported(t *testing.T) {
	res := RunLiveness(algo.InductiveDSM{}, Config{
		N: 3, K: 2, Model: machine.Distributed, MaxStates: 2_000,
	})
	if res.Complete || len(res.Violations) == 0 {
		t.Fatal("truncated liveness run must be reported as undecided")
	}
	if !strings.Contains(res.Violations[0], "undecided") {
		t.Fatalf("unexpected message: %s", res.Violations[0])
	}
}
