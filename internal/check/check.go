// Package check is an explicit-state model checker for the protocols in
// internal/algo. It exhaustively enumerates every interleaving of the
// numbered atomic statements for small (N,k) configurations — including
// up to k-1 crash transitions at arbitrary points — and verifies the
// paper's safety properties: at most k processes in their critical
// sections, k-assignment name uniqueness, and absence of wedged states
// (true deadlocks where no step can ever change the state again).
//
// This mechanizes, for finite configurations, the invariant-based proofs
// the extended abstract sketches (its (I1)-(I10) and Lemmas 1-2).
package check

import (
	"fmt"
	"strconv"
	"strings"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// Phase mirrors the process cycle of the simulation driver, but with the
// critical and exit sections folded together (dwell time in the critical
// section adds no states: memory only changes when a statement runs).
type phase int8

const (
	phNoncrit phase = iota
	phEntry
	phCritical
	phExit
)

// Config parameterizes one model-checking run.
type Config struct {
	N, K int

	// Model picks the memory model; behaviour (and therefore the state
	// graph) is identical under both, so this only affects layout.
	Model machine.Model

	// MaxCrashes is the number of crash transitions to explore
	// (crashes are only modelled outside the noncritical section, per
	// the paper's failure model). Use K-1 to verify the paper's
	// resiliency claim.
	MaxCrashes int

	// MaxStates truncates exploration as a safety net. Zero means
	// 4,000,000 states.
	MaxStates int
}

// Result reports the outcome of exploration.
type Result struct {
	// States is the number of distinct reachable states visited.
	States int
	// Transitions is the number of edges traversed.
	Transitions int
	// Complete is true if the state space was fully explored (not
	// truncated by MaxStates).
	Complete bool
	// Violations lists safety violations found, with witness info.
	Violations []string
	// MaxOccupancy is the largest number of processes simultaneously
	// in their critical sections over all reachable states.
	MaxOccupancy int
}

type state struct {
	words    []int64
	sessions []proto.Session
	phases   []phase
	crashed  []bool
	ncrashed int
}

func (s *state) key() string {
	var b strings.Builder
	for _, w := range s.words {
		b.WriteString(strconv.FormatInt(w, 36))
		b.WriteByte(',')
	}
	for p := range s.sessions {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(int(s.phases[p])))
		if s.crashed[p] {
			b.WriteByte('!')
		}
		b.WriteByte(':')
		b.WriteString(s.sessions[p].Key())
	}
	return b.String()
}

func (s *state) clone() *state {
	c := &state{
		words:    append([]int64(nil), s.words...),
		sessions: make([]proto.Session, len(s.sessions)),
		phases:   append([]phase(nil), s.phases...),
		crashed:  append([]bool(nil), s.crashed...),
		ncrashed: s.ncrashed,
	}
	for i, sess := range s.sessions {
		c.sessions[i] = sess.Clone()
	}
	return c
}

// Run explores the full state space of pr under cfg.
func Run(pr proto.Protocol, cfg Config) Result {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4_000_000
	}
	mem := machine.NewMem(cfg.Model, cfg.N)
	inst := pr.Build(mem, cfg.N, cfg.K, proto.BuildOptions{MaxAcquisitions: 4})
	isAssignment := pr.Traits().Assignment

	init := &state{
		words:    mem.SnapshotWords(),
		sessions: make([]proto.Session, cfg.N),
		phases:   make([]phase, cfg.N),
		crashed:  make([]bool, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		init.sessions[p] = inst.NewSession(p)
	}

	var res Result
	seen := map[string]bool{init.key(): true}
	queue := []*state{init}

	checkState := func(st *state, via string) {
		occ := 0
		names := map[int]int{}
		for p := range st.phases {
			if st.phases[p] != phCritical {
				continue
			}
			occ++
			if !isAssignment {
				continue
			}
			name := st.sessions[p].AssignedName()
			if name < 0 || name >= cfg.K {
				res.addViolation("proc %d in CS with name %d outside 0..%d (%s)", p, name, cfg.K-1, via)
			} else if q, dup := names[name]; dup {
				res.addViolation("procs %d and %d in CS share name %d (%s)", q, p, name, via)
			} else {
				names[name] = p
			}
		}
		if occ > res.MaxOccupancy {
			res.MaxOccupancy = occ
		}
		if occ > cfg.K {
			res.addViolation("k-exclusion violated: %d procs in CS, k=%d (%s)", occ, cfg.K, via)
		}
	}
	checkState(init, "initial")

	truncated := false
	for len(queue) > 0 && len(res.Violations) == 0 {
		st := queue[0]
		queue = queue[1:]
		stKey := st.key()

		anyLive := false
		anyChange := false

		expand := func(succ *state, via string) {
			res.Transitions++
			k := succ.key()
			if k == stKey {
				return
			}
			anyChange = true
			if seen[k] {
				return
			}
			seen[k] = true
			checkState(succ, via)
			if len(seen) < cfg.MaxStates {
				queue = append(queue, succ)
			} else {
				truncated = true
			}
		}

		for p := 0; p < cfg.N; p++ {
			if st.crashed[p] {
				continue
			}
			anyLive = true

			// Normal step of process p.
			succ := st.clone()
			mem.RestoreWords(succ.words)
			switch succ.phases[p] {
			case phNoncrit, phEntry:
				if succ.sessions[p].StepAcquire(mem, p) {
					succ.phases[p] = phCritical
				} else {
					succ.phases[p] = phEntry
				}
			case phCritical, phExit:
				if succ.sessions[p].StepRelease(mem, p) {
					succ.phases[p] = phNoncrit
				} else {
					succ.phases[p] = phExit
				}
			}
			succ.words = mem.SnapshotWords()
			expand(succ, fmt.Sprintf("step p%d", p))

			// Crash transition: p fails undetectably outside its
			// noncritical section.
			if st.ncrashed < cfg.MaxCrashes && st.phases[p] != phNoncrit {
				crash := st.clone()
				crash.crashed[p] = true
				crash.ncrashed++
				expand(crash, fmt.Sprintf("crash p%d", p))
			}
		}

		// Wedged-state detection: live processes exist but every
		// enabled statement is a self-loop, so the system can never
		// change state again. (A state where everyone idles in the
		// noncritical section is not wedged: starting an acquisition
		// changes the session state.)
		if anyLive && !anyChange {
			res.addViolation("wedged state: no step changes state; phases=%v crashed=%v", st.phases, st.crashed)
		}
	}

	res.States = len(seen)
	res.Complete = !truncated && len(res.Violations) == 0
	return res
}

func (r *Result) addViolation(format string, args ...any) {
	if len(r.Violations) < 16 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}
