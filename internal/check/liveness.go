package check

import (
	"fmt"

	"kexclusion/internal/machine"
	"kexclusion/internal/proto"
)

// LivenessResult reports the outcome of RunLiveness.
type LivenessResult struct {
	States     int
	Complete   bool
	Violations []string
}

// RunLiveness verifies possibilistic lockout-freedom: in every reachable
// state, every non-crashed process can still reach its critical section
// via some continuation (no further crashes required). A protocol that
// is (k-1)-resilient in the paper's sense satisfies this for every crash
// pattern of at most k-1 processes; protocols the paper rejects (queue
// based, MCS) fail it as soon as one crash is reachable, because a
// surviving process ends up in a state from which no schedule ever
// admits it.
//
// This is the EF(p in CS) fragment of the paper's Starvation-Freedom:
// full starvation-freedom additionally needs fairness, which the
// scheduler-based tests cover; lockout-freedom is the part a state-space
// search can decide exactly.
func RunLiveness(pr proto.Protocol, cfg Config) LivenessResult {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 500_000
	}
	mem := machine.NewMem(cfg.Model, cfg.N)
	inst := pr.Build(mem, cfg.N, cfg.K, proto.BuildOptions{MaxAcquisitions: 4})

	init := &state{
		words:    mem.SnapshotWords(),
		sessions: make([]proto.Session, cfg.N),
		phases:   make([]phase, cfg.N),
		crashed:  make([]bool, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		init.sessions[p] = inst.NewSession(p)
	}

	var res LivenessResult

	// Forward exploration, recording the transition graph.
	ids := map[string]int{init.key(): 0}
	states := []*state{init}
	// succ[id] lists successor state ids (self-loops omitted).
	succ := [][]int32{nil}
	truncated := false

	for at := 0; at < len(states); at++ {
		st := states[at]
		stKey := st.key()

		addEdge := func(s2 *state) {
			k := s2.key()
			if k == stKey {
				return
			}
			id, ok := ids[k]
			if !ok {
				if len(states) >= cfg.MaxStates {
					truncated = true
					return
				}
				id = len(states)
				ids[k] = id
				states = append(states, s2)
				succ = append(succ, nil)
			}
			succ[at] = append(succ[at], int32(id))
		}

		for p := 0; p < cfg.N; p++ {
			if st.crashed[p] {
				continue
			}
			s2 := st.clone()
			mem.RestoreWords(s2.words)
			switch s2.phases[p] {
			case phNoncrit, phEntry:
				if s2.sessions[p].StepAcquire(mem, p) {
					s2.phases[p] = phCritical
				} else {
					s2.phases[p] = phEntry
				}
			case phCritical, phExit:
				if s2.sessions[p].StepRelease(mem, p) {
					s2.phases[p] = phNoncrit
				} else {
					s2.phases[p] = phExit
				}
			}
			s2.words = mem.SnapshotWords()
			addEdge(s2)

			if st.ncrashed < cfg.MaxCrashes && st.phases[p] != phNoncrit {
				s2 := st.clone()
				s2.crashed[p] = true
				s2.ncrashed++
				addEdge(s2)
			}
		}
	}

	res.States = len(states)
	res.Complete = !truncated
	if truncated {
		// A truncated graph cannot prove reachability; report and bail.
		res.Violations = append(res.Violations,
			fmt.Sprintf("state space exceeds %d states; liveness undecided", cfg.MaxStates))
		return res
	}

	// Reverse edges once.
	pred := make([][]int32, len(states))
	for from, outs := range succ {
		for _, to := range outs {
			pred[to] = append(pred[to], int32(from))
		}
	}

	// For each process: backward reachability from {p in CS}, then
	// every state where p is alive must be marked.
	for p := 0; p < cfg.N; p++ {
		canReach := make([]bool, len(states))
		var stack []int32
		for id, st := range states {
			if st.phases[p] == phCritical && !st.crashed[p] {
				canReach[id] = true
				stack = append(stack, int32(id))
			}
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, from := range pred[id] {
				if !canReach[from] {
					canReach[from] = true
					stack = append(stack, from)
				}
			}
		}
		for id, st := range states {
			if st.crashed[p] || canReach[id] {
				continue
			}
			if len(res.Violations) < 8 {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"lockout: from a reachable state, live process %d can never enter its CS (phases=%v crashed=%v)",
					p, st.phases, st.crashed))
			}
			break // one witness per process suffices
		}
	}
	return res
}
