package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// errQuorumTimeout marks a wait that lapsed without the quorum filling
// in — as opposed to the tracker closing. The lease-aware ack path
// waits in slices and needs to tell "slice expired, re-check the
// lease and keep waiting" apart from "the node is gone".
var errQuorumTimeout = errors.New("cluster: quorum wait timed out")

// quorumTracker counts follower durability acknowledgements in the
// local node's LSN space and parks ack-path waiters until enough have
// arrived.
//
// Prefix-durability invariant: each follower's ack is monotone (a
// follower acks LSN a only after every record at or below a is locally
// fsynced, and recordAck refuses to move backward), so "quorum reached
// at lsn" implies quorum reached at every lsn' <= lsn. A client ack
// therefore never vouches for a record whose prefix is still
// under-replicated — the wire-level analogue of the WAL's own ordered
// group commit.
type quorumTracker struct {
	mu    sync.Mutex
	cond  *sync.Cond
	acked map[string]uint64 // follower node ID -> highest acked LSN
	need  int               // acks required including the local node
	fail  error             // sticky: set on close, wakes all waiters
}

func newQuorumTracker(need int) *quorumTracker {
	q := &quorumTracker{acked: make(map[string]uint64), need: need}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// recordAck registers that node has locally fsynced everything at or
// below lsn. Backward movement is ignored: a reordered or replayed
// pull cannot retract an acknowledgement.
func (q *quorumTracker) recordAck(node string, lsn uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if lsn > q.acked[node] {
		q.acked[node] = lsn
		q.cond.Broadcast()
	}
}

// ackOf returns node's current acknowledged LSN.
func (q *quorumTracker) ackOf(node string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.acked[node]
}

// countLocked counts nodes at or past lsn, plus the local node (the
// caller only waits after local durability).
func (q *quorumTracker) countLocked(lsn uint64) int {
	n := 1
	for _, a := range q.acked {
		if a >= lsn {
			n++
		}
	}
	return n
}

// wait blocks until need nodes (the local one included) have acked
// lsn, the timeout lapses, or the tracker closes.
func (q *quorumTracker) wait(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer timer.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.countLocked(lsn) >= q.need {
			return nil
		}
		if q.fail != nil {
			return q.fail
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("%w: quorum %d not reached for LSN %d within %v (%d/%d acks)",
				errQuorumTimeout, q.need, lsn, timeout, q.countLocked(lsn), q.need)
		}
		q.cond.Wait()
	}
}

// close fails every current and future waiter.
func (q *quorumTracker) close(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.fail == nil {
		q.fail = err
		q.cond.Broadcast()
	}
}
